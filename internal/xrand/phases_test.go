package xrand

import "testing"

// TestPhasesDerivation pins the phase-stream contract: streams depend only
// on (seed, realization, phase[, chunk]), distinct names/chunks give
// distinct streams, and repeated derivation is idempotent.
func TestPhasesDerivation(t *testing.T) {
	t.Parallel()
	p := Phases{Seed: 7, Realization: 3}
	a1 := p.Stream("cm.degrees").Uint64()
	a2 := p.Stream("cm.degrees").Uint64()
	if a1 != a2 {
		t.Fatal("repeated Stream derivation is not idempotent")
	}
	if b := p.Stream("cm.wire").Uint64(); b == a1 {
		t.Fatal("distinct phase names produced the same stream")
	}
	if c := (Phases{Seed: 7, Realization: 4}).Stream("cm.degrees").Uint64(); c == a1 {
		t.Fatal("distinct realizations produced the same stream")
	}
	if d := (Phases{Seed: 8, Realization: 3}).Stream("cm.degrees").Uint64(); d == a1 {
		t.Fatal("distinct seeds produced the same stream")
	}
	c0 := p.Chunk("cm.degrees", 0).Uint64()
	c1 := p.Chunk("cm.degrees", 1).Uint64()
	if c0 == c1 {
		t.Fatal("distinct chunks produced the same stream")
	}
	if c0 == a1 {
		t.Fatal("chunk 0 aliases the phase stream")
	}
}

// TestPhasesDomainSeparation checks phase streams cannot alias the query
// scheduler's (seed, realization, source) streams for small source
// indices, thanks to the phaseTag path component.
func TestPhasesDomainSeparation(t *testing.T) {
	t.Parallel()
	p := Phases{Seed: 7, Realization: 0}
	phase := p.Stream("dapa.select").Uint64()
	for s := uint64(0); s < 64; s++ {
		if NewStream(7, 0, s).Uint64() == phase {
			t.Fatalf("phase stream aliases source stream s=%d", s)
		}
	}
}

// TestPhaseKeyStability pins the FNV-1a derivation so a refactor cannot
// silently re-seed every phased experiment.
func TestPhaseKeyStability(t *testing.T) {
	t.Parallel()
	if got, want := PhaseKey(""), uint64(14695981039346656037); got != want {
		t.Fatalf("PhaseKey(\"\") = %d, want %d", got, want)
	}
	if PhaseKey("cm.degrees") == PhaseKey("cm.wire") {
		t.Fatal("distinct names hash equal")
	}
}

// TestChunkU01MatchesChunk pins the allocation-free derivation against the
// RNG-materializing one: ChunkU01 must equal Chunk(...).Float64() bit for
// bit (the DES latency model depends on this equivalence) and must not
// allocate.
func TestChunkU01MatchesChunk(t *testing.T) {
	p := Phases{Seed: 11, Realization: 4}
	for _, tc := range []struct {
		name  string
		chunk int
	}{
		{"des.latency", 0}, {"des.latency", 1}, {"des.latency", 1 << 40}, {"other", 9},
	} {
		want := p.Chunk(tc.name, tc.chunk).Float64()
		if got := p.ChunkU01(tc.name, tc.chunk); got != want {
			t.Fatalf("ChunkU01(%q, %d) = %v, want %v", tc.name, tc.chunk, got, want)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		_ = p.ChunkU01("des.latency", 123)
	}); allocs > 0 {
		t.Fatalf("ChunkU01 allocates %v/op", allocs)
	}
}
