package xrand

import "testing"

// TestPhasesDerivation pins the phase-stream contract: streams depend only
// on (seed, realization, phase[, chunk]), distinct names/chunks give
// distinct streams, and repeated derivation is idempotent.
func TestPhasesDerivation(t *testing.T) {
	t.Parallel()
	p := Phases{Seed: 7, Realization: 3}
	a1 := p.Stream("cm.degrees").Uint64()
	a2 := p.Stream("cm.degrees").Uint64()
	if a1 != a2 {
		t.Fatal("repeated Stream derivation is not idempotent")
	}
	if b := p.Stream("cm.wire").Uint64(); b == a1 {
		t.Fatal("distinct phase names produced the same stream")
	}
	if c := (Phases{Seed: 7, Realization: 4}).Stream("cm.degrees").Uint64(); c == a1 {
		t.Fatal("distinct realizations produced the same stream")
	}
	if d := (Phases{Seed: 8, Realization: 3}).Stream("cm.degrees").Uint64(); d == a1 {
		t.Fatal("distinct seeds produced the same stream")
	}
	c0 := p.Chunk("cm.degrees", 0).Uint64()
	c1 := p.Chunk("cm.degrees", 1).Uint64()
	if c0 == c1 {
		t.Fatal("distinct chunks produced the same stream")
	}
	if c0 == a1 {
		t.Fatal("chunk 0 aliases the phase stream")
	}
}

// TestPhasesDomainSeparation checks phase streams cannot alias the query
// scheduler's (seed, realization, source) streams for small source
// indices, thanks to the phaseTag path component.
func TestPhasesDomainSeparation(t *testing.T) {
	t.Parallel()
	p := Phases{Seed: 7, Realization: 0}
	phase := p.Stream("dapa.select").Uint64()
	for s := uint64(0); s < 64; s++ {
		if NewStream(7, 0, s).Uint64() == phase {
			t.Fatalf("phase stream aliases source stream s=%d", s)
		}
	}
}

// TestPhaseKeyStability pins the FNV-1a derivation so a refactor cannot
// silently re-seed every phased experiment.
func TestPhaseKeyStability(t *testing.T) {
	t.Parallel()
	if got, want := PhaseKey(""), uint64(14695981039346656037); got != want {
		t.Fatalf("PhaseKey(\"\") = %d, want %d", got, want)
	}
	if PhaseKey("cm.degrees") == PhaseKey("cm.wire") {
		t.Fatal("distinct names hash equal")
	}
}
