// Package xrand provides a small, deterministic random number generator used
// throughout the library.
//
// All topology generators, search algorithms, and simulations take an
// explicit *RNG (or a seed from which one is derived). The generator is a
// hand-rolled xoshiro256** seeded through splitmix64, so sequences are
// reproducible bit-for-bit across Go releases and platforms — a property the
// standard library does not guarantee. Reproducibility matters here because
// the experiment harness records seeds alongside results, letting any figure
// in EXPERIMENTS.md be regenerated exactly.
//
// RNG is NOT safe for concurrent use. Parallel simulations derive an
// independent stream per goroutine with Split, which is cheap and produces
// statistically independent streams.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator
// (xoshiro256** with splitmix64 seeding).
// The zero value is not usable; construct with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns an RNG seeded from the given seed. Any seed value, including
// zero, yields a well-mixed internal state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	return r
}

// splitmix64 advances *x and returns the next splitmix64 output. It is used
// only to expand seeds into full xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	return mix64(*x)
}

// mix64 is the splitmix64 finalizer: a strong 64-bit bijective mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream derives a deterministic RNG for one position in a nested
// experiment, identified by a path of indices under a root seed — e.g.
// NewStream(seed, realization, source) for the source-sharded query
// scheduler. The stream depends only on (seed, path): never on scheduling
// order, worker count, or how many values any other stream consumed. Each
// path component passes through the splitmix64 finalizer, so neighboring
// indices yield statistically independent streams, and an offset constant
// domain-separates the result from New(seed) and its Split descendants.
func NewStream(seed uint64, path ...uint64) *RNG {
	x := mix64(seed + 0x6a09e667f3bcc909)
	for _, p := range path {
		x = mix64(x ^ (p + 0x9e3779b97f4a7c15))
	}
	return New(x)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives an independent RNG stream from r. The derived stream is
// seeded from fresh output of r, so successive Split calls give distinct,
// statistically independent generators. Use one split stream per goroutine.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// SplitN returns n independent streams derived from r.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand; callers validate n at API boundaries.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo32 := t & mask32
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & mask32
	hi1 := t >> 32
	t = aLo*bHi + mid1
	mid2 := t & mask32
	hi2 := t >> 32
	hi = aHi*bHi + hi1 + hi2
	lo = mid2<<32 | lo32
	return hi, lo
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits scaled to [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *RNG) Exp() float64 {
	// Inverse transform; guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// PowerLawInt samples an integer k in [kMin, kMax] from a discrete power-law
// distribution P(k) ∝ k^(-gamma). It uses the standard continuous
// approximation (Clauset et al.): sample x from the continuous power law on
// [kMin-1/2, kMax+1/2) by inverse transform, then round to the nearest
// integer. This keeps the discrete distribution consistent with the shifted
// Hill/MLE estimator used in internal/stats. It is the sampler behind
// configuration-model degree sequences.
// It panics if kMin < 1, kMax < kMin, or gamma <= 1.
//
// Each call rebuilds the transform's constants (two of its three math.Pow
// calls). Loop callers should hoist them with NewPowerLawSampler (one Pow
// per draw) or NewPowerLawTable (no Pow per draw); both are bit-identical
// to this method with identical RNG consumption.
func (r *RNG) PowerLawInt(kMin, kMax int, gamma float64) int {
	return NewPowerLawSampler(kMin, kMax, gamma).Sample(r)
}

// Choose returns a uniformly random element index from a slice of length n
// weighted by the provided weights. The total must be positive; Choose
// returns -1 if it is not. Used for preferential attachment over explicit
// candidate lists.
func (r *RNG) Choose(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
