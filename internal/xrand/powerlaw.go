package xrand

import "math"

// This file holds the two power-law sampling kernels behind PowerLawInt:
//
//   - PowerLawSampler hoists the per-call invariants (lo, hi, 1/a) of the
//     Clauset continuous inverse transform, leaving one math.Pow per draw.
//   - PowerLawTable additionally precomputes the transform's value at every
//     half-integer boundary in [kMin, kMax], so a draw classifies with
//     comparisons only — no math.Pow on the hot path at all.
//
// Both are bit-identical to the historical three-Pow PowerLawInt kernel and
// consume exactly one Float64 per draw, so swapping them in anywhere (the
// configuration-model degree sequences, the KS reference sampler) cannot
// perturb a single downstream random stream. That contract is pinned by
// property and fuzz tests in powerlaw_test.go.

// PowerLawSampler samples integers k in [kMin, kMax] from P(k) ∝ k^-gamma
// using the same continuous-approximation inverse transform as
// RNG.PowerLawInt, with the per-distribution constants hoisted out of the
// draw loop. A draw costs one Float64 and one math.Pow (down from three
// Pows for the closed-form one-shot kernel).
type PowerLawSampler struct {
	kMin, kMax int
	// lo = (kMin-1/2)^a and hi = (kMax+1/2)^a are the continuous
	// transform's endpoints; invA = 1/a with a = 1-gamma. Stored exactly
	// as the one-shot kernel computes them so Sample reproduces its
	// float operations bit for bit.
	lo, hi, invA float64
}

// NewPowerLawSampler validates the parameters with PowerLawInt's rules
// (panicking on violation, like the RNG method) and hoists the invariants.
func NewPowerLawSampler(kMin, kMax int, gamma float64) PowerLawSampler {
	if kMin < 1 || kMax < kMin {
		panic("xrand: PowerLawInt called with invalid bounds")
	}
	if gamma <= 1 {
		panic("xrand: PowerLawInt called with gamma <= 1")
	}
	a := 1 - gamma
	return PowerLawSampler{
		kMin: kMin,
		kMax: kMax,
		lo:   math.Pow(float64(kMin)-0.5, a),
		hi:   math.Pow(float64(kMax)+0.5, a),
		invA: 1 / a,
	}
}

// KMin returns the inclusive lower degree bound.
func (s PowerLawSampler) KMin() int { return s.kMin }

// KMax returns the inclusive upper degree bound.
func (s PowerLawSampler) KMax() int { return s.kMax }

// Sample draws one integer, consuming exactly one Float64 from r.
func (s PowerLawSampler) Sample(r *RNG) int { return s.fromU(r.Float64()) }

// fromU maps a uniform u in [0,1) to a degree with the identical sequence
// of float64 operations as RNG.PowerLawInt.
func (s PowerLawSampler) fromU(u float64) int {
	x := math.Pow(s.lo+u*(s.hi-s.lo), s.invA)
	k := int(x + 0.5)
	if k < s.kMin {
		k = s.kMin
	}
	if k > s.kMax {
		k = s.kMax
	}
	return k
}

// PowerLawTable is the table-driven fast path for power-law degree
// sampling. It precomputes the continuous transform's value at every
// half-integer boundary between adjacent degrees, so classifying a draw is
// one Float64, one fused multiply-add, and a short search — the math.Pow
// calls that dominate configuration-model build profiles at N=10⁶ happen
// once per (kMin, kMax, gamma), not once (historically three times) per
// sampled degree.
//
// Output is bit-identical to RNG.PowerLawInt with identical RNG
// consumption. The classification happens in the transform's own v-space:
// v := lo + u*(hi-lo) is computed with exactly the float operations the
// exact kernel uses, and the precomputed boundaries bounds[i] =
// (kMin+i+1/2)^a partition v-space into per-degree intervals. Because
// math.Pow is only faithfully rounded (not exactly rounded, and not
// guaranteed monotone), a draw landing within a tiny relative guard band of
// a boundary is re-derived through the exact kernel using the already-drawn
// u — rounding disagreement between the table and the exact kernel is
// confined to that band, so the common case is provably identical and the
// rare band case is identical by construction. The zero-size guard band
// failure mode (a boundary table that is not strictly descending, possible
// only for extreme gamma where the transform underflows) is detected at
// build time and falls back to the exact kernel for every draw.
//
// The table is read-only after construction and safe to share across
// goroutines (gen workers sample disjoint chunks from one table).
type PowerLawTable struct {
	s PowerLawSampler
	// bounds[i] = (kMin+i+1/2)^a for i in [0, kMax-kMin): the v-space
	// boundary between degree kMin+i and kMin+i+1. a < 0 makes the
	// sequence strictly descending, with lo > bounds[0] and
	// bounds[len-1] > hi.
	bounds []float64
	// guard is the relative half-width of the fallback band around each
	// boundary. Faithful-rounding error in v and in the boundaries is a
	// few ulps (≲1e-15 relative); the band is ~1e-12, covering it with
	// orders of magnitude to spare while keeping the fallback probability
	// negligible (~1e-12 per boundary per draw).
	guard float64
	// degenerate marks a table whose boundaries are not usable (not
	// strictly descending, underflowed to zero, or out of the (hi, lo)
	// range). Every draw then takes the exact kernel — still correct,
	// just not accelerated.
	degenerate bool
}

// NewPowerLawTable builds the boundary table for P(k) ∝ k^-gamma on
// [kMin, kMax]. Cost: kMax-kMin math.Pow calls and 8(kMax-kMin) bytes.
// Parameters are validated with PowerLawInt's rules (panics on violation).
func NewPowerLawTable(kMin, kMax int, gamma float64) *PowerLawTable {
	s := NewPowerLawSampler(kMin, kMax, gamma)
	a := 1 - gamma
	t := &PowerLawTable{
		s:      s,
		bounds: make([]float64, kMax-kMin),
		guard:  1e-12 * (1 + math.Abs(a)),
	}
	prev := s.lo
	for i := range t.bounds {
		b := math.Pow(float64(kMin+i)+0.5, a)
		t.bounds[i] = b
		if !(b < prev) || b <= s.hi {
			t.degenerate = true
		}
		prev = b
	}
	return t
}

// KMin returns the inclusive lower degree bound.
func (t *PowerLawTable) KMin() int { return t.s.kMin }

// KMax returns the inclusive upper degree bound.
func (t *PowerLawTable) KMax() int { return t.s.kMax }

// Degenerate reports whether the table fell back to the exact kernel for
// every draw (extreme parameters only; see the type comment).
func (t *PowerLawTable) Degenerate() bool { return t.degenerate }

// Sample draws one integer, consuming exactly one Float64 from r. The
// result is bit-identical to what r.PowerLawInt(kMin, kMax, gamma) would
// have returned from the same RNG state.
func (t *PowerLawTable) Sample(r *RNG) int { return t.fromU(r.Float64()) }

// linearPrefix bounds the unrolled scan before binary search takes over.
// Power-law mass concentrates at the smallest degrees (for gamma ≈ 2–3.5
// and kMin 1–2, >90% of draws land within the first handful), so most
// draws never reach the search.
const linearPrefix = 8

func (t *PowerLawTable) fromU(u float64) int {
	if t.degenerate {
		return t.s.fromU(u)
	}
	// Identical float ops to the exact kernel's argument computation.
	v := t.s.lo + u*(t.s.hi-t.s.lo)
	b := t.bounds
	// Find the smallest j with b[j] < v; then v lies in degree kMin+j's
	// interval (j == len(b) means the last degree, and v above b[0]
	// covers the exact kernel's k < kMin clamp region).
	j := 0
	lim := len(b)
	if lim > linearPrefix {
		lim = linearPrefix
	}
	for j < lim && b[j] >= v {
		j++
	}
	if j == lim && lim < len(b) {
		lo, hi := lim, len(b)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < v {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		j = lo
	}
	// Within the guard band of either enclosing boundary the exact
	// kernel's rounding is not predictable from the table; re-derive from
	// the same u (no extra RNG consumption).
	if j < len(b) && v-b[j] <= t.guard*b[j] {
		return t.s.fromU(u)
	}
	if j > 0 && b[j-1]-v <= t.guard*b[j-1] {
		return t.s.fromU(u)
	}
	return t.s.kMin + j
}
