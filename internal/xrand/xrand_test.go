package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	t.Parallel()
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	t.Parallel()
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	t.Parallel()
	r := New(0)
	// xoshiro with all-zero state would emit only zeros; splitmix seeding
	// must prevent that.
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	t.Parallel()
	r := New(7)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical outputs", same)
	}
}

func TestSplitN(t *testing.T) {
	t.Parallel()
	streams := New(9).SplitN(8)
	if len(streams) != 8 {
		t.Fatalf("SplitN(8) returned %d streams", len(streams))
	}
	seen := map[uint64]bool{}
	for _, s := range streams {
		v := s.Uint64()
		if seen[v] {
			t.Fatalf("two streams started with the same value %d", v)
		}
		seen[v] = true
	}
}

func TestIntnBounds(t *testing.T) {
	t.Parallel()
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	t.Parallel()
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	t.Parallel()
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("IntRange(3,9) = %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	r := New(13)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawIntBounds(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		r := New(seed)
		k := r.PowerLawInt(2, 100, 2.5)
		return k >= 2 && k <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawIntShape(t *testing.T) {
	t.Parallel()
	// For gamma=3, P(1)/P(2) should be ~8. Check the empirical ratio is
	// clearly decreasing and roughly power-law.
	r := New(21)
	const draws = 200000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[r.PowerLawInt(1, 1000, 3.0)]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[4] {
		t.Fatalf("power-law counts not decreasing: P(1)=%d P(2)=%d P(4)=%d",
			counts[1], counts[2], counts[4])
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 4 || ratio > 16 {
		t.Fatalf("P(1)/P(2) = %.2f, want roughly 8 for gamma=3", ratio)
	}
}

func TestPowerLawIntDegenerate(t *testing.T) {
	t.Parallel()
	r := New(2)
	for i := 0; i < 100; i++ {
		if k := r.PowerLawInt(5, 5, 2.2); k != 5 {
			t.Fatalf("PowerLawInt(5,5) = %d, want 5", k)
		}
	}
}

func TestChoose(t *testing.T) {
	t.Parallel()
	r := New(23)
	const draws = 100000
	counts := make([]int, 3)
	w := []float64{1, 2, 7}
	for i := 0; i < draws; i++ {
		idx := r.Choose(w)
		if idx < 0 || idx > 2 {
			t.Fatalf("Choose out of range: %d", idx)
		}
		counts[idx]++
	}
	// Expected proportions 0.1, 0.2, 0.7.
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Choose weight %d: got %.3f want %.3f", i, got, want)
		}
	}
}

func TestChooseZeroTotal(t *testing.T) {
	t.Parallel()
	if got := New(1).Choose([]float64{0, 0}); got != -1 {
		t.Fatalf("Choose with zero weights = %d, want -1", got)
	}
	if got := New(1).Choose(nil); got != -1 {
		t.Fatalf("Choose(nil) = %d, want -1", got)
	}
}

func TestExpPositive(t *testing.T) {
	t.Parallel()
	r := New(31)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp() = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %.4f, want ~1", mean)
	}
}

func TestBool(t *testing.T) {
	t.Parallel()
	r := New(37)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if got := float64(hits) / draws; math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %.4f", got)
	}
}

func TestShuffleFixedPoint(t *testing.T) {
	t.Parallel()
	// Shuffling a single element or empty slice must not call swap.
	called := false
	New(1).Shuffle(1, func(i, j int) { called = true })
	New(1).Shuffle(0, func(i, j int) { called = true })
	if called {
		t.Fatal("Shuffle called swap for n <= 1")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func BenchmarkPowerLawInt(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.PowerLawInt(1, 10000, 2.5)
	}
}

func TestNewStreamDeterministic(t *testing.T) {
	t.Parallel()
	a := NewStream(42, 3, 7)
	b := NewStream(42, 3, 7)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewStream with identical (seed, path) diverged")
		}
	}
}

func TestNewStreamPathSensitivity(t *testing.T) {
	t.Parallel()
	// Neighboring paths, permuted paths, different depths, and the plain
	// New(seed) stream must all start differently: the scheduler relies on
	// (seed, realization, source) uniquely naming a stream.
	streams := []*RNG{
		NewStream(42, 3, 7),
		NewStream(42, 3, 8),
		NewStream(42, 4, 7),
		NewStream(42, 7, 3),
		NewStream(42, 3),
		NewStream(42),
		NewStream(43, 3, 7),
		New(42),
		New(42).Split(),
	}
	seen := map[uint64]int{}
	for i, s := range streams {
		v := s.Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide on first draw", i, j)
		}
		seen[v] = i
	}
}

func TestNewStreamUniform(t *testing.T) {
	t.Parallel()
	// First draws across consecutive source indices should look uniform:
	// bucket them and check no bucket is wildly off. Guards against a
	// derivation that mixes the path poorly.
	const streams, buckets = 4096, 16
	counts := make([]int, buckets)
	for s := uint64(0); s < streams; s++ {
		counts[NewStream(7, 0, s).Uint64()%buckets]++
	}
	want := streams / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d has %d of %d draws (want ~%d)", b, c, streams, want)
		}
	}
}
