package xrand

import (
	"math"
	"testing"
)

// plGrid is the (kMin, kMax, gamma) grid shared by the equivalence tests:
// the registry's real parameters (kMin 1–2, gamma 2.2–3.5), the kMax≈N
// natural-cutoff regime, degenerate single-degree ranges, and steep/shallow
// exponents that stress the transform's dynamic range.
var plGrid = []struct {
	kMin, kMax int
	gamma      float64
}{
	{1, 2, 2.5},
	{1, 1, 2.5}, // kMin == kMax: clamps every draw, still consumes one Float64
	{2, 10, 2.2},
	{2, 1000, 2.2},
	{1, 10000, 2.5},
	{2, 100000, 2.2},  // kMax≈N natural-cutoff regime (paper-scale CM)
	{2, 1000000, 2.2}, // kMax≈N at xl scale
	{1, 100000, 3.5},
	{3, 300, 1.000001}, // a → 0⁻: transform nearly flat
	{1, 50, 8},         // steep tail
	{5, 7, 2.0},
}

func samplersAgree(t *testing.T, kMin, kMax int, gamma float64, draws int) {
	t.Helper()
	table := NewPowerLawTable(kMin, kMax, gamma)
	sampler := NewPowerLawSampler(kMin, kMax, gamma)
	rExact := New(99)
	rSamp := New(99)
	rTab := New(99)
	for i := 0; i < draws; i++ {
		want := rExact.PowerLawInt(kMin, kMax, gamma)
		if got := sampler.Sample(rSamp); got != want {
			t.Fatalf("(%d,%d,%g) draw %d: sampler %d != PowerLawInt %d",
				kMin, kMax, gamma, i, got, want)
		}
		if got := table.Sample(rTab); got != want {
			t.Fatalf("(%d,%d,%g) draw %d: table %d != PowerLawInt %d",
				kMin, kMax, gamma, i, got, want)
		}
	}
	// Identical RNG consumption: all three streams must be in the same
	// state after the draws.
	a, b, c := rExact.Uint64(), rSamp.Uint64(), rTab.Uint64()
	if a != b || a != c {
		t.Fatalf("(%d,%d,%g): RNG consumption diverged (exact %d, sampler %d, table %d)",
			kMin, kMax, gamma, a, b, c)
	}
}

func TestPowerLawSamplerAndTableMatchPowerLawInt(t *testing.T) {
	t.Parallel()
	for _, p := range plGrid {
		draws := 50_000
		if p.kMax >= 100000 {
			draws = 200_000
		}
		samplersAgree(t, p.kMin, p.kMax, p.gamma, draws)
	}
}

// TestPowerLawTableBoundaryHammer walks every half-integer boundary of
// small tables and a sample of boundaries of large ones, feeding u values a
// few ulps on either side of the closed-form threshold — exactly where the
// table's guard band has to hand off to the exact kernel. Any
// classification drift shows up here long before a random stream would
// find it.
func TestPowerLawTableBoundaryHammer(t *testing.T) {
	t.Parallel()
	for _, p := range plGrid {
		table := NewPowerLawTable(p.kMin, p.kMax, p.gamma)
		sampler := NewPowerLawSampler(p.kMin, p.kMax, p.gamma)
		span := sampler.hi - sampler.lo
		m := p.kMax - p.kMin
		step := 1
		if m > 4096 {
			step = m / 4096
		}
		for i := 0; i < m; i += step {
			// Closed-form u threshold for the boundary between
			// kMin+i and kMin+i+1.
			u := (table.bounds[i] - sampler.lo) / span
			for _, du := range []int{-3, -2, -1, 0, 1, 2, 3} {
				v := u
				for s := 0; s < du; s++ {
					v = math.Nextafter(v, 2)
				}
				for s := 0; s > du; s-- {
					v = math.Nextafter(v, -1)
				}
				if v < 0 || v >= 1 {
					continue
				}
				if got, want := table.fromU(v), sampler.fromU(v); got != want {
					t.Fatalf("(%d,%d,%g) boundary %d, u=%v (%+d ulp): table %d != exact %d",
						p.kMin, p.kMax, p.gamma, i, v, du, got, want)
				}
			}
		}
	}
}

// TestPowerLawTableClamping pins the k-clamp behavior at both bounds: u=0
// maps to the continuous endpoint lo (the exact kernel's k < kMin clamp
// region) and u→1⁻ maps next to hi (the k > kMax clamp region).
func TestPowerLawTableClamping(t *testing.T) {
	t.Parallel()
	uMax := math.Nextafter(1, 0)
	for _, p := range plGrid {
		table := NewPowerLawTable(p.kMin, p.kMax, p.gamma)
		sampler := NewPowerLawSampler(p.kMin, p.kMax, p.gamma)
		for _, u := range []float64{0, 5e-324, 1e-17, uMax, math.Nextafter(uMax, 0), 1 - 1e-14} {
			got, want := table.fromU(u), sampler.fromU(u)
			if got != want {
				t.Fatalf("(%d,%d,%g) u=%v: table %d != exact %d",
					p.kMin, p.kMax, p.gamma, u, got, want)
			}
			if got < p.kMin || got > p.kMax {
				t.Fatalf("(%d,%d,%g) u=%v: %d escaped [kMin,kMax]",
					p.kMin, p.kMax, p.gamma, u, got)
			}
		}
		if got := table.fromU(0); got != p.kMin {
			t.Fatalf("(%d,%d,%g): u=0 gave %d, want kMin", p.kMin, p.kMax, p.gamma, got)
		}
		// u→1⁻ reaches kMax only when the last degree interval is wider
		// than the u grid (for steep gamma at large kMax it legitimately
		// is not — the exact kernel can't reach kMax either); where the
		// exact kernel reaches it, the table must too.
		if want := sampler.fromU(uMax); want == p.kMax {
			if got := table.fromU(uMax); got != p.kMax {
				t.Fatalf("(%d,%d,%g): u→1 gave %d, want kMax", p.kMin, p.kMax, p.gamma, got)
			}
		}
	}
}

// TestPowerLawTableDegenerateFallback forces the transform to underflow
// (gamma so steep that (kMax+1/2)^(1-gamma) rounds to zero): the table must
// flag itself degenerate and route every draw through the exact kernel.
func TestPowerLawTableDegenerateFallback(t *testing.T) {
	t.Parallel()
	table := NewPowerLawTable(1, 1000, 200)
	if !table.Degenerate() {
		t.Fatal("underflowed boundary table not flagged degenerate")
	}
	samplersAgree(t, 1, 1000, 200, 10_000)
}

// FuzzPowerLawTableEquivalence lets the fuzzer roam the parameter space:
// for every sanitized (kMin, kMax, gamma) it checks a short stream of draws
// plus the specific u it was handed, against the one-shot kernel.
func FuzzPowerLawTableEquivalence(f *testing.F) {
	f.Add(uint64(1), uint(1), uint(10), int64(2200), uint64(1<<52))
	f.Add(uint64(7), uint(2), uint(5000), int64(3500), uint64(123456789))
	f.Add(uint64(9), uint(3), uint(0), int64(1001), uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64, kMinRaw, spanRaw uint, gammaMilli int64, uBits uint64) {
		kMin := int(kMinRaw%1000) + 1
		kMax := kMin + int(spanRaw%5000)
		gamma := 1.001 + float64(gammaMilli%10000)/1000 // (1.001, 11.001)
		if gamma <= 1 {
			gamma = 2.5
		}
		table := NewPowerLawTable(kMin, kMax, gamma)
		sampler := NewPowerLawSampler(kMin, kMax, gamma)
		u := float64(uBits>>11) / (1 << 53)
		if got, want := table.fromU(u), sampler.fromU(u); got != want {
			t.Fatalf("(%d,%d,%g) u=%v: table %d != exact %d", kMin, kMax, gamma, u, got, want)
		}
		rExact, rTab := New(seed), New(seed)
		for i := 0; i < 64; i++ {
			want := rExact.PowerLawInt(kMin, kMax, gamma)
			if got := table.Sample(rTab); got != want {
				t.Fatalf("(%d,%d,%g) draw %d: table %d != PowerLawInt %d",
					kMin, kMax, gamma, i, got, want)
			}
		}
		if rExact.Uint64() != rTab.Uint64() {
			t.Fatalf("(%d,%d,%g): RNG consumption diverged", kMin, kMax, gamma)
		}
	})
}

func BenchmarkPowerLawSampler(b *testing.B) {
	s := NewPowerLawSampler(1, 10000, 2.5)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(r)
	}
}

func BenchmarkPowerLawTable(b *testing.B) {
	t := NewPowerLawTable(1, 10000, 2.5)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Sample(r)
	}
}

// BenchmarkPowerLawTableXLCutoff measures the xl CM regime (kMax = N =
// 10⁶): the table is ~8 MB and draws concentrate in the linear prefix.
func BenchmarkPowerLawTableXLCutoff(b *testing.B) {
	t := NewPowerLawTable(2, 1_000_000, 2.2)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Sample(r)
	}
}
