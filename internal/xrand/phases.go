package xrand

// Phase sub-streams: the build-side counterpart of the query scheduler's
// (seed, realization, source) streams. A realization's topology build is
// decomposed into named phases ("cm.degrees", "dapa.select", ...), each
// drawing from its own RNG derived solely from (seed, realization, phase)
// — never from which pipeline worker runs the build, how many values any
// other phase consumed, or how the phase's own work is chunked across
// goroutines. That is what lets the experiment engine generate realization
// r+1 on any build worker, or parallelize inside a generator, while
// producing output bit-for-bit identical to a fully serial build.

// phaseTag domain-separates phase streams from the (seed, realization,
// source) query streams: a phase path is (realization, phaseTag, key[,
// chunk]) while a source path is (realization, source), so the two
// families can never alias even if a phase key happened to collide with a
// small source index.
const phaseTag = 0x7068617365746167 // "phasetag"

// PhaseKey hashes a phase name into a stream-path component (FNV-1a 64).
// Exposed so tests can pin the derivation.
func PhaseKey(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Phases derives the named phase sub-streams of one realization's build.
// The zero value is a valid derivation root (seed 0, realization 0);
// copies are free and safe — Phases holds no RNG state, every call
// derives a fresh stream.
type Phases struct {
	// Seed is the experiment's root seed.
	Seed uint64
	// Realization is the realization index the build belongs to.
	Realization uint64
}

// Stream returns the RNG for the named phase:
// NewStream(seed, realization, phaseTag, PhaseKey(name)). Calling it twice
// with the same name returns two independent RNG values positioned at the
// same stream start; a phase that must be consumed sequentially should
// derive once and thread the *RNG through.
func (p Phases) Stream(name string) *RNG {
	return NewStream(p.Seed, p.Realization, phaseTag, PhaseKey(name))
}

// Chunk returns the RNG for one fixed-size chunk of a parallelized phase.
// Chunk boundaries must depend only on the problem size (never on the
// worker count), so that any number of goroutines processing the chunks
// draws exactly the same values per chunk.
func (p Phases) Chunk(name string, chunk int) *RNG {
	return NewStream(p.Seed, p.Realization, phaseTag, PhaseKey(name), uint64(chunk))
}

// ChunkU01 returns the first uniform [0, 1) value of the named chunk
// stream — bit-identical to Chunk(name, chunk).Float64() — without
// materializing an RNG. It exists for per-key derived quantities drawn
// once per key on a hot path (the DES per-edge latencies draw one value
// per message send), where allocating a heap RNG per derivation would
// dominate the simulation's allocation profile.
func (p Phases) ChunkU01(name string, chunk int) float64 {
	x := mix64(p.Seed + 0x6a09e667f3bcc909)
	for _, q := range [...]uint64{p.Realization, phaseTag, PhaseKey(name), uint64(chunk)} {
		x = mix64(x ^ (q + 0x9e3779b97f4a7c15))
	}
	var r RNG
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	return float64(r.Uint64()>>11) / (1 << 53)
}
