package content

import (
	"math"
	"testing"
	"testing/quick"

	"scalefree/internal/xrand"
)

func mustCatalog(t testing.TB, items int, alpha float64) *Catalog {
	t.Helper()
	c, err := NewCatalog(items, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCatalogValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewCatalog(0, 1); err == nil {
		t.Error("zero items should fail")
	}
	if _, err := NewCatalog(10, -0.5); err == nil {
		t.Error("negative alpha should fail")
	}
	if _, err := NewCatalog(10, math.NaN()); err == nil {
		t.Error("NaN alpha should fail")
	}
}

func TestCatalogWeightsNormalizedAndMonotone(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 100, 0.8)
	var sum float64
	for i := 0; i < c.NumItems(); i++ {
		q := c.QueryRate(Item(i))
		if q <= 0 {
			t.Fatalf("rate %d = %v", i, q)
		}
		if i > 0 && q > c.QueryRate(Item(i-1)) {
			t.Fatalf("popularity not monotone at %d", i)
		}
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rates sum to %v, want 1", sum)
	}
}

func TestCatalogAlphaZeroUniform(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 50, 0)
	want := 1.0 / 50
	for i := 0; i < 50; i++ {
		if math.Abs(c.QueryRate(Item(i))-want) > 1e-12 {
			t.Fatalf("alpha=0 rate %d = %v, want %v", i, c.QueryRate(Item(i)), want)
		}
	}
}

func TestCatalogQueryRateOutOfRange(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 5, 1)
	if c.QueryRate(-1) != 0 || c.QueryRate(5) != 0 {
		t.Error("out-of-range items should have zero rate")
	}
}

func TestSampleQueryMatchesDistribution(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 20, 1.0)
	rng := xrand.New(42)
	const draws = 200000
	counts := make([]int, c.NumItems())
	for i := 0; i < draws; i++ {
		counts[c.SampleQuery(rng)]++
	}
	for i := 0; i < c.NumItems(); i++ {
		want := c.QueryRate(Item(i))
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("item %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestSampleQueryCoversSupport(t *testing.T) {
	t.Parallel()
	// Even the least popular item must be sampleable.
	c := mustCatalog(t, 4, 2.0)
	rng := xrand.New(7)
	seen := make(map[Item]bool)
	for i := 0; i < 50000; i++ {
		seen[c.SampleQuery(rng)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("sampled %d distinct items, want 4", len(seen))
	}
}

func TestStrategyString(t *testing.T) {
	t.Parallel()
	cases := map[Strategy]string{
		Uniform:      "uniform",
		Proportional: "proportional",
		SquareRoot:   "square-root",
		Strategy(9):  "strategy(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestReplicateValidation(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 10, 1)
	rng := xrand.New(1)
	if _, err := Replicate(c, 0, 100, Uniform, rng); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := Replicate(c, 100, 5, Uniform, rng); err == nil {
		t.Error("budget below item count should fail")
	}
	if _, err := Replicate(c, 100, 50, Strategy(42), rng); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestReplicateUniformEqualCopies(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 20, 1.2)
	p, err := Replicate(c, 500, 20*7, Uniform, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if got := p.Replicas(Item(i)); got != 7 {
			t.Errorf("uniform replicas(%d) = %d, want 7", i, got)
		}
	}
	if p.TotalCopies() != 140 {
		t.Errorf("total copies %d, want 140", p.TotalCopies())
	}
}

func TestReplicateProportionalOrdering(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 30, 1.0)
	p, err := Replicate(c, 2000, 3000, Proportional, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Replica counts must be non-increasing in rank (popularity order),
	// and the most popular item must get strictly more than the median.
	for i := 1; i < 30; i++ {
		if p.Replicas(Item(i)) > p.Replicas(Item(i-1)) {
			t.Fatalf("proportional replicas increased at rank %d", i)
		}
	}
	if p.Replicas(0) <= p.Replicas(15) {
		t.Fatalf("head item %d copies, median %d", p.Replicas(0), p.Replicas(15))
	}
}

func TestReplicateSquareRootBetweenUniformAndProportional(t *testing.T) {
	t.Parallel()
	// Square-root allocation is flatter than proportional, steeper than
	// uniform: for the top item, uniform <= sqrt <= proportional.
	c := mustCatalog(t, 50, 1.0)
	n, budget := 5000, 10000
	pu, err := Replicate(c, n, budget, Uniform, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Replicate(c, n, budget, SquareRoot, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Replicate(c, n, budget, Proportional, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !(pu.Replicas(0) <= ps.Replicas(0) && ps.Replicas(0) <= pp.Replicas(0)) {
		t.Fatalf("head copies uniform=%d sqrt=%d prop=%d not ordered",
			pu.Replicas(0), ps.Replicas(0), pp.Replicas(0))
	}
	// And the reverse for the least popular item.
	last := Item(49)
	if !(pu.Replicas(last) >= ps.Replicas(last) && ps.Replicas(last) >= pp.Replicas(last)) {
		t.Fatalf("tail copies uniform=%d sqrt=%d prop=%d not ordered",
			pu.Replicas(last), ps.Replicas(last), pp.Replicas(last))
	}
}

func TestReplicateHostsDistinctAndConsistent(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 15, 0.7)
	p, err := Replicate(c, 100, 300, SquareRoot, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		hosts := p.Hosts(Item(i))
		seen := make(map[int32]bool, len(hosts))
		for _, h := range hosts {
			if seen[h] {
				t.Fatalf("item %d hosted twice on node %d", i, h)
			}
			seen[h] = true
			if !p.HasItem(int(h), Item(i)) {
				t.Fatalf("HasItem(%d,%d) = false but node is a host", h, i)
			}
		}
	}
	if p.HasItem(-1, 0) || p.HasItem(1000, 0) {
		t.Error("out-of-range nodes should not host items")
	}
	if p.Replicas(-1) != 0 || p.Hosts(99) != nil {
		t.Error("out-of-range items should be empty")
	}
}

func TestReplicateEveryItemPlaced(t *testing.T) {
	t.Parallel()
	// Even with a strongly skewed catalog the floor guarantees one copy.
	c := mustCatalog(t, 200, 2.5)
	p, err := Replicate(c, 400, 400, Proportional, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if p.Replicas(Item(i)) < 1 {
			t.Fatalf("item %d has no replicas", i)
		}
	}
}

func TestReplicateCapsAtN(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 3, 1.5)
	p, err := Replicate(c, 5, 1000, Proportional, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if p.Replicas(Item(i)) > 5 {
			t.Fatalf("item %d has %d replicas on 5 nodes", i, p.Replicas(Item(i)))
		}
	}
}

func TestReplicateDeterministicWithSeed(t *testing.T) {
	t.Parallel()
	c := mustCatalog(t, 25, 0.9)
	a, err := Replicate(c, 300, 900, SquareRoot, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replicate(c, 300, 900, SquareRoot, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		ha, hb := a.Hosts(Item(i)), b.Hosts(Item(i))
		if len(ha) != len(hb) {
			t.Fatalf("item %d host counts differ", i)
		}
		for j := range ha {
			if ha[j] != hb[j] {
				t.Fatalf("item %d host %d differs", i, j)
			}
		}
	}
}

// TestReplicateBudgetProperty property-checks that the realized copy count
// stays within the floor/cap-adjusted envelope of the requested budget.
func TestReplicateBudgetProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, itemsRaw, nRaw uint8, alphaRaw uint8) bool {
		items := 1 + int(itemsRaw)%40
		n := 10 + int(nRaw)%200
		alpha := float64(alphaRaw%25) / 10
		c, err := NewCatalog(items, alpha)
		if err != nil {
			return false
		}
		budget := items * 4
		p, err := Replicate(c, n, budget, SquareRoot, xrand.New(seed))
		if err != nil {
			return false
		}
		// Envelope: at least one copy per item, at most n per item, and
		// rounding keeps the total within items/2 of the budget... rounding
		// can drift further with tiny catalogs, so allow the loose bound
		// items + budget.
		total := p.TotalCopies()
		return total >= items && total <= items*n && total <= budget+items
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSampleDistinctFullRange(t *testing.T) {
	t.Parallel()
	rng := xrand.New(29)
	got := sampleDistinct(nil, 6, 6, rng)
	if len(got) != 6 {
		t.Fatalf("want all 6, got %d", len(got))
	}
	got = sampleDistinct(nil, 6, 10, rng)
	if len(got) != 6 {
		t.Fatalf("r>n should clamp to n, got %d", len(got))
	}
}
