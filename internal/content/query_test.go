package content

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

func paGraph(t testing.TB, n, m int, seed uint64) *graph.Graph {
	t.Helper()
	g, _, err := gen.PA(gen.PAConfig{N: n, M: m}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWalkToItemImmediateHit(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 50, 2, 1)
	c := mustCatalog(t, 5, 1)
	p, err := Replicate(c, g.N(), 50, Uniform, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	src := int(p.Hosts(0)[0])
	steps, found := WalkToItem(g.Freeze(), p, src, 0, 10, xrand.New(3))
	if !found || steps != 0 {
		t.Fatalf("source hosts the item: steps=%d found=%v", steps, found)
	}
}

func TestWalkToItemFindsUbiquitousItem(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 200, 2, 5)
	c := mustCatalog(t, 1, 0)
	// One item replicated on every node: any first step finds it.
	p, err := Replicate(c, g.N(), g.N(), Uniform, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if p.Replicas(0) != g.N() {
		t.Fatalf("replicas %d, want %d", p.Replicas(0), g.N())
	}
	for src := 0; src < 10; src++ {
		steps, found := WalkToItem(g.Freeze(), p, src, 0, 5, xrand.New(uint64(src)))
		if !found || steps != 0 {
			t.Fatalf("src %d: steps=%d found=%v", src, steps, found)
		}
	}
}

func TestWalkToItemRespectsBudget(t *testing.T) {
	t.Parallel()
	// Item hosted nowhere near: a tiny budget must report not found.
	g := graph.New(4)
	for i := 0; i+1 < 4; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	p := &Placement{
		hosts:  [][]int32{{3}},
		onNode: []map[Item]struct{}{nil, nil, nil, {0: {}}},
	}
	steps, found := WalkToItem(g.Freeze(), p, 0, 0, 1, xrand.New(1))
	if found {
		t.Fatalf("budget 1 cannot reach node 3 (steps=%d)", steps)
	}
	// A generous budget must find it: the path graph walk is forced
	// forward by non-backtracking.
	steps, found = WalkToItem(g.Freeze(), p, 0, 0, 100, xrand.New(1))
	if !found || steps != 3 {
		t.Fatalf("path walk should arrive in 3 steps: steps=%d found=%v", steps, found)
	}
}

func TestWalkToItemIsolatedSource(t *testing.T) {
	t.Parallel()
	g := graph.New(2)
	p := &Placement{
		hosts:  [][]int32{{1}},
		onNode: []map[Item]struct{}{nil, {0: {}}},
	}
	if _, found := WalkToItem(g.Freeze(), p, 0, 0, 10, xrand.New(1)); found {
		t.Fatal("isolated source cannot find remote item")
	}
}

func TestExpectedSearchSizeValidation(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 100, 2, 9)
	c := mustCatalog(t, 5, 1)
	p, err := Replicate(c, 50, 25, Uniform, xrand.New(1)) // wrong node count
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedSearchSize(g.Freeze(), p, c, 10, 100, nil); err == nil {
		t.Error("size mismatch should fail")
	}
	p2, err := Replicate(c, g.N(), 25, Uniform, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedSearchSize(g.Freeze(), p2, c, 0, 100, nil); err == nil {
		t.Error("zero queries should fail")
	}
}

func TestExpectedSearchSizeMoreReplicasFasterSearch(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 2000, 2, 13)
	c := mustCatalog(t, 50, 0.8)
	rng := xrand.New(17)
	sparse, err := Replicate(c, g.N(), 100, Uniform, rng)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Replicate(c, g.N(), 2000, Uniform, rng)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ExpectedSearchSize(g.Freeze(), sparse, c, 300, 4000, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ExpectedSearchSize(g.Freeze(), dense, c, 300, 4000, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if rd.MeanSteps >= rs.MeanSteps {
		t.Fatalf("denser replication should cut ESS: dense %v >= sparse %v", rd.MeanSteps, rs.MeanSteps)
	}
	if rd.SuccessRate() < rs.SuccessRate() {
		t.Fatalf("denser replication should not lower success: %v < %v", rd.SuccessRate(), rs.SuccessRate())
	}
}

func TestSquareRootBeatsUniformAndProportionalESS(t *testing.T) {
	t.Parallel()
	// Cohen & Shenker's theorem: sqrt replication minimizes ESS under
	// random probing. Check the empirical ordering sqrt < uniform and
	// sqrt < proportional on a skewed catalog with a modest budget.
	g := paGraph(t, 3000, 2, 23)
	c := mustCatalog(t, 100, 1.2)
	const budget = 1500
	ess := func(s Strategy) float64 {
		t.Helper()
		p, err := Replicate(c, g.N(), budget, s, xrand.New(29))
		if err != nil {
			t.Fatal(err)
		}
		r, err := ExpectedSearchSize(g.Freeze(), p, c, 1500, 30000, xrand.New(31))
		if err != nil {
			t.Fatal(err)
		}
		if r.SuccessRate() < 0.95 {
			t.Fatalf("%s: success rate %v too low for ESS comparison", s, r.SuccessRate())
		}
		return r.MeanSteps
	}
	u, s, pr := ess(Uniform), ess(SquareRoot), ess(Proportional)
	if s >= u {
		t.Errorf("sqrt ESS %v should beat uniform %v", s, u)
	}
	if s >= pr {
		t.Errorf("sqrt ESS %v should beat proportional %v", s, pr)
	}
}

func TestFloodForItemAndSuccess(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 500, 2, 37)
	c := mustCatalog(t, 10, 1)
	p, err := Replicate(c, g.N(), 100, SquareRoot, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := FloodForItem(g.Freeze(), p, -1, 0, 3); err == nil {
		t.Error("bad source should fail")
	}
	// From a host, TTL 0 already finds the item with zero messages.
	src := int(p.Hosts(0)[0])
	found, msgs, err := FloodForItem(g.Freeze(), p, src, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !found || msgs != 0 {
		t.Fatalf("host flood TTL0: found=%v msgs=%d", found, msgs)
	}

	res, err := FloodSuccess(g.Freeze(), p, c, 200, 4, xrand.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 200 {
		t.Fatalf("queries %d", res.Queries)
	}
	if res.SuccessRate() <= 0 || res.SuccessRate() > 1 {
		t.Fatalf("success rate %v out of range", res.SuccessRate())
	}
	if res.MeanMessages <= 0 {
		t.Fatalf("flooding must cost messages: %v", res.MeanMessages)
	}
}

func TestFloodSuccessTTLMonotone(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 1000, 2, 47)
	c := mustCatalog(t, 20, 1)
	p, err := Replicate(c, g.N(), 100, Uniform, xrand.New(53))
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, ttl := range []int{1, 3, 6} {
		res, err := FloodSuccess(g.Freeze(), p, c, 300, ttl, xrand.New(59))
		if err != nil {
			t.Fatal(err)
		}
		if res.SuccessRate() < prev {
			t.Fatalf("success rate fell from %v at larger TTL %d (%v)", prev, ttl, res.SuccessRate())
		}
		prev = res.SuccessRate()
	}
	if prev < 0.9 {
		t.Fatalf("TTL=6 flood on N=1000 should nearly always succeed: %v", prev)
	}
}

func TestFloodSuccessValidation(t *testing.T) {
	t.Parallel()
	g := paGraph(t, 100, 2, 61)
	c := mustCatalog(t, 5, 1)
	p, err := Replicate(c, 50, 25, Uniform, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FloodSuccess(g.Freeze(), p, c, 10, 3, nil); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestESSResultZeroQueries(t *testing.T) {
	t.Parallel()
	var r ESSResult
	if r.SuccessRate() != 0 {
		t.Error("zero queries should have zero success rate")
	}
	var f FloodResult
	if f.SuccessRate() != 0 {
		t.Error("zero queries should have zero success rate")
	}
}

func TestPercentileInt(t *testing.T) {
	t.Parallel()
	if got := percentileInt(nil, 0.95); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
	xs := []int{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	if got := percentileInt(xs, 0.5); got != 5 {
		t.Errorf("median = %d, want 5", got)
	}
	if got := percentileInt(xs, 0.95); got != 10 {
		t.Errorf("p95 = %d, want 10", got)
	}
	if got := percentileInt([]int{42}, 0.95); got != 42 {
		t.Errorf("single = %d", got)
	}
}
