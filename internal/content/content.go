// Package content implements the data layer the paper's search algorithms
// serve: items with a popularity distribution, replicated onto peers under
// the classic strategies of Cohen & Shenker, "Replication strategies in
// unstructured peer-to-peer networks" (paper ref [22]) and Lv et al.
// (paper ref [23]).
//
// The paper evaluates search as a node sweep ("number of hits"); in a
// deployed Gnutella-like system those hits matter because each discovered
// peer may hold the queried item. This package closes that loop: it places
// item replicas, draws queries from a Zipf popularity law, and measures the
// expected search size (ESS) — the number of probes until the first
// replica — and flooding success rates on the very topologies
// internal/gen builds. Cohen & Shenker's headline result, that square-root
// replication minimizes ESS for random-probe search, is reproduced by the
// "replication" experiment in internal/sim.
package content

import (
	"errors"
	"fmt"
	"math"

	"scalefree/internal/xrand"
)

// Validation errors.
var (
	ErrBadItems  = errors.New("content: number of items must be >= 1")
	ErrBadAlpha  = errors.New("content: Zipf exponent must be >= 0")
	ErrBadBudget = errors.New("content: replication budget must be >= number of items")
	ErrBadNodes  = errors.New("content: node count must be >= 1")
)

// Item identifies one data item in a catalog.
type Item int

// Catalog is a set of items with Zipf-distributed query popularity:
// the i-th most popular item (0-based) is queried with probability
// proportional to (i+1)^-alpha. Alpha=0 is uniform popularity; measured
// Gnutella workloads are around alpha≈0.6-1.0.
type Catalog struct {
	weights []float64 // normalized query rates, weights[i] = q_i
	cdf     []float64 // prefix sums of weights for sampling
}

// NewCatalog builds a catalog of numItems items with Zipf exponent alpha.
func NewCatalog(numItems int, alpha float64) (*Catalog, error) {
	if numItems < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadItems, numItems)
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadAlpha, alpha)
	}
	weights := make([]float64, numItems)
	var sum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -alpha)
		sum += weights[i]
	}
	cdf := make([]float64, numItems)
	var acc float64
	for i := range weights {
		weights[i] /= sum
		acc += weights[i]
		cdf[i] = acc
	}
	cdf[numItems-1] = 1 // guard against rounding drift
	return &Catalog{weights: weights, cdf: cdf}, nil
}

// NumItems returns the catalog size.
func (c *Catalog) NumItems() int { return len(c.weights) }

// QueryRate returns the normalized popularity q_i of an item.
func (c *Catalog) QueryRate(i Item) float64 {
	if i < 0 || int(i) >= len(c.weights) {
		return 0
	}
	return c.weights[i]
}

// SampleQuery draws an item according to the popularity distribution.
func (c *Catalog) SampleQuery(rng *xrand.RNG) Item {
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return Item(lo)
}

// Strategy selects a Cohen–Shenker replica-allocation rule.
type Strategy int

const (
	// Uniform gives every item the same number of replicas regardless of
	// popularity — optimal for none, fair to rare items.
	Uniform Strategy = iota
	// Proportional replicates each item in proportion to its query rate —
	// what passive caching produces; great for popular items, terrible ESS
	// on the tail.
	Proportional
	// SquareRoot replicates in proportion to the square root of the query
	// rate — Cohen & Shenker's optimum for expected search size under
	// random probing.
	SquareRoot
)

// String names the strategy as in the replication literature.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Proportional:
		return "proportional"
	case SquareRoot:
		return "square-root"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Placement records which nodes host which items.
type Placement struct {
	hosts  [][]int32 // item -> hosting nodes
	onNode []map[Item]struct{}
	copies int
}

// Replicas returns the number of copies of an item.
func (p *Placement) Replicas(i Item) int {
	if i < 0 || int(i) >= len(p.hosts) {
		return 0
	}
	return len(p.hosts[i])
}

// Hosts returns the nodes hosting an item (shared slice; do not mutate).
func (p *Placement) Hosts(i Item) []int32 {
	if i < 0 || int(i) >= len(p.hosts) {
		return nil
	}
	return p.hosts[i]
}

// HasItem reports whether a node hosts an item.
func (p *Placement) HasItem(node int, i Item) bool {
	if node < 0 || node >= len(p.onNode) || p.onNode[node] == nil {
		return false
	}
	_, ok := p.onNode[node][i]
	return ok
}

// Items returns the items hosted on a node, in unspecified order.
func (p *Placement) Items(node int) []Item {
	if node < 0 || node >= len(p.onNode) {
		return nil
	}
	out := make([]Item, 0, len(p.onNode[node]))
	for it := range p.onNode[node] {
		out = append(out, it)
	}
	return out
}

// TotalCopies returns the number of (item, node) placements made.
func (p *Placement) TotalCopies() int { return p.copies }

// Replicate places item replicas on n nodes under the given strategy with
// a total budget of `budget` copies. Every item receives at least one
// replica and at most n (replicas of one item live on distinct nodes,
// chosen uniformly at random). The realized total may differ slightly from
// the budget because of the per-item floor/ceiling and rounding.
func Replicate(c *Catalog, n, budget int, s Strategy, rng *xrand.RNG) (*Placement, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadNodes, n)
	}
	if budget < c.NumItems() {
		return nil, fmt.Errorf("%w: budget %d < items %d", ErrBadBudget, budget, c.NumItems())
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	k := c.NumItems()
	share := make([]float64, k)
	var norm float64
	for i := 0; i < k; i++ {
		switch s {
		case Uniform:
			share[i] = 1
		case Proportional:
			share[i] = c.QueryRate(Item(i))
		case SquareRoot:
			share[i] = math.Sqrt(c.QueryRate(Item(i)))
		default:
			return nil, fmt.Errorf("content: unknown strategy %d", int(s))
		}
		norm += share[i]
	}
	p := &Placement{
		hosts:  make([][]int32, k),
		onNode: make([]map[Item]struct{}, n),
	}
	scratch := make([]int32, 0, 64)
	for i := 0; i < k; i++ {
		r := int(math.Round(float64(budget) * share[i] / norm))
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		scratch = sampleDistinct(scratch[:0], n, r, rng)
		p.hosts[i] = append([]int32(nil), scratch...)
		for _, node := range scratch {
			if p.onNode[node] == nil {
				p.onNode[node] = make(map[Item]struct{})
			}
			p.onNode[node][Item(i)] = struct{}{}
		}
		p.copies += r
	}
	return p, nil
}

// sampleDistinct appends r distinct integers from [0,n) to dst. For small
// r it uses rejection against a set; for r close to n it shuffles.
func sampleDistinct(dst []int32, n, r int, rng *xrand.RNG) []int32 {
	if r >= n {
		for v := 0; v < n; v++ {
			dst = append(dst, int32(v))
		}
		return dst
	}
	if r > n/4 {
		perm := rng.Perm(n)
		for _, v := range perm[:r] {
			dst = append(dst, int32(v))
		}
		return dst
	}
	seen := make(map[int32]struct{}, r)
	for len(dst) < r {
		v := int32(rng.Intn(n))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		dst = append(dst, v)
	}
	return dst
}
