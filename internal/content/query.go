package content

// Query-resolution measurements over a placement: the expected search size
// of random-walk probing (Cohen & Shenker's objective) and flooding
// success rates at bounded TTL (the Gnutella deployment reality the paper
// opens with). Both resolvers read the topology through the CSR
// *graph.Frozen: a query workload is thousands of searches against one
// static overlay, exactly the freeze-once pattern.

import (
	"fmt"
	"sort"

	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// ErrBadGraph reports a placement/topology size mismatch.
var ErrBadGraph = fmt.Errorf("content: graph order does not match placement")

// ESSResult aggregates random-walk query resolution over a query workload.
type ESSResult struct {
	// Queries is the number of queries issued.
	Queries int
	// Found is how many located a replica within the step budget.
	Found int
	// MeanSteps is the mean number of probes over successful queries —
	// the empirical expected search size (ESS).
	MeanSteps float64
	// P95Steps is the 95th percentile of successful probe counts.
	P95Steps int
}

// SuccessRate returns Found/Queries (0 when no queries ran).
func (r ESSResult) SuccessRate() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Found) / float64(r.Queries)
}

// WalkToItem walks from src until it lands on a node hosting the item,
// counting the source itself as probe 0. It returns the number of probes
// (walk steps) used and whether the item was found within maxSteps.
func WalkToItem(f *graph.Frozen, p *Placement, src int, item Item, maxSteps int, rng *xrand.RNG) (steps int, found bool) {
	if p.HasItem(src, item) {
		return 0, true
	}
	cur, prev := src, -1
	for t := 1; t <= maxSteps; t++ {
		next, ok := search.Step(f, cur, prev, rng)
		if !ok {
			return t, false
		}
		prev, cur = cur, next
		if p.HasItem(cur, item) {
			return t, true
		}
	}
	return maxSteps, false
}

// ResolveQuery issues one popularity-distributed query from a uniformly
// random source and resolves it with a non-backtracking random walk
// bounded by maxSteps. It is the per-query kernel of ExpectedSearchSize,
// exposed so sharded workloads can run each query on its own RNG stream
// and aggregate the slots with CollectESS.
func ResolveQuery(f *graph.Frozen, p *Placement, c *Catalog, maxSteps int, rng *xrand.RNG) (steps int, found bool) {
	item := c.SampleQuery(rng)
	src := rng.Intn(f.N())
	return WalkToItem(f, p, src, item, maxSteps, rng)
}

// CollectESS aggregates per-query (steps, found) slots — indexed by query,
// in workload order — into the ESSResult ExpectedSearchSize returns. The
// mean sums integer step counts in slot order and the percentile sorts, so
// the result does not depend on how the queries were scheduled.
func CollectESS(steps []int, found []bool) ESSResult {
	res := ESSResult{Queries: len(steps)}
	var successSteps []int
	var sum float64
	for q, ok := range found {
		if !ok {
			continue
		}
		res.Found++
		sum += float64(steps[q])
		successSteps = append(successSteps, steps[q])
	}
	if res.Found > 0 {
		res.MeanSteps = sum / float64(res.Found)
		res.P95Steps = percentileInt(successSteps, 0.95)
	}
	return res
}

// ExpectedSearchSize issues `queries` popularity-distributed queries from
// uniformly random sources and resolves each with a non-backtracking
// random walk bounded by maxSteps, returning the aggregate ESS statistics.
// This is the measurement Cohen & Shenker optimize: square-root
// replication minimizes the popularity-weighted mean probe count.
func ExpectedSearchSize(f *graph.Frozen, p *Placement, c *Catalog, queries, maxSteps int, rng *xrand.RNG) (ESSResult, error) {
	if f.N() != len(p.onNode) {
		return ESSResult{}, fmt.Errorf("%w: graph %d, placement %d", ErrBadGraph, f.N(), len(p.onNode))
	}
	if queries < 1 {
		return ESSResult{}, fmt.Errorf("content: queries %d must be >= 1", queries)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	steps := make([]int, queries)
	found := make([]bool, queries)
	for q := 0; q < queries; q++ {
		steps[q], found[q] = ResolveQuery(f, p, c, maxSteps, rng)
	}
	return CollectESS(steps, found), nil
}

// FloodResult aggregates flooding query resolution over a workload.
type FloodResult struct {
	// Queries is the number of queries issued.
	Queries int
	// Found is how many located a replica within the TTL.
	Found int
	// MeanMessages is the mean flood transmissions per query (successful
	// or not) — the §V-B2 messaging-complexity axis applied to content.
	MeanMessages float64
}

// SuccessRate returns Found/Queries (0 when no queries ran).
func (r FloodResult) SuccessRate() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.Found) / float64(r.Queries)
}

// FloodForItem floods from src with the given TTL and reports whether any
// node within the TTL ball hosts the item, plus the messages the flood
// spent. In a deployed network the flood would stop early on a hit; the
// message count here is the worst case, as in the paper's FL model (the
// destination "cannot stop the search", §V-A1).
//
// FloodForItem allocates a fresh search scratch per call; query workloads
// should use FloodForItemScratch with a reused search.Scratch (as
// FloodSuccess does internally).
func FloodForItem(f *graph.Frozen, p *Placement, src int, item Item, ttl int) (found bool, messages int, err error) {
	var s search.Scratch
	return FloodForItemScratch(f, p, src, item, ttl, &s)
}

// FloodForItemScratch is FloodForItem reusing the caller's search scratch:
// repeated queries against one topology allocate nothing.
func FloodForItemScratch(f *graph.Frozen, p *Placement, src int, item Item, ttl int, s *search.Scratch) (found bool, messages int, err error) {
	if src < 0 || src >= f.N() {
		return false, 0, fmt.Errorf("content: source %d out of range", src)
	}
	if ttl < 0 {
		return false, 0, nil
	}
	// Message accounting matches search.Flood: every covered node forwards
	// to its neighbors except the sender, unless it sits on the TTL shell.
	err = s.FloodVisit(f, src, ttl, func(node, depth int) bool {
		if p.HasItem(node, item) {
			found = true
		}
		if depth == ttl {
			return true
		}
		deg := f.Degree(node)
		if depth == 0 {
			messages += deg
		} else if deg > 0 {
			messages += deg - 1
		}
		return true
	})
	return found, messages, err
}

// FloodSuccess issues popularity-distributed queries resolved by flooding
// with the given TTL and aggregates success rate and message cost.
func FloodSuccess(f *graph.Frozen, p *Placement, c *Catalog, queries, ttl int, rng *xrand.RNG) (FloodResult, error) {
	if f.N() != len(p.onNode) {
		return FloodResult{}, fmt.Errorf("%w: graph %d, placement %d", ErrBadGraph, f.N(), len(p.onNode))
	}
	if queries < 1 {
		return FloodResult{}, fmt.Errorf("content: queries %d must be >= 1", queries)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	res := FloodResult{Queries: queries}
	var msgSum float64
	var scratch search.Scratch // one BFS state reused across the workload
	for q := 0; q < queries; q++ {
		item := c.SampleQuery(rng)
		src := rng.Intn(f.N())
		found, msgs, err := FloodForItemScratch(f, p, src, item, ttl, &scratch)
		if err != nil {
			return FloodResult{}, err
		}
		if found {
			res.Found++
		}
		msgSum += float64(msgs)
	}
	res.MeanMessages = msgSum / float64(queries)
	return res, nil
}

// percentileInt returns the q-th percentile of xs (nearest-rank, xs is
// sorted in place).
func percentileInt(xs []int, q float64) int {
	if len(xs) == 0 {
		return 0
	}
	sort.Ints(xs)
	idx := int(q*float64(len(xs))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}
