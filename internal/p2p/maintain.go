package p2p

import (
	"sync"
	"time"
)

// Maintainer runs periodic self-healing for one peer: heartbeat pings
// detect dead neighbors (pruned after FailThreshold consecutive missed
// rounds), and whenever the peer's degree falls below its M it re-joins
// through a bootstrap provider using the paper's join rules — the
// per-peer form of the paper's §VI join/leave maintenance, requiring
// only local messages. Besides sweep/repair counts it reports
// time-to-reconnect: how long each degree-deficit episode lasted before
// maintenance (or inbound connections) restored the target degree.
//
// Lifecycle follows the package convention: New starts the background
// goroutine, Stop signals it and waits for exit.
type Maintainer struct {
	peer      *Peer
	bootstrap func() string
	strategy  JoinStrategy
	interval  time.Duration
	threshold int

	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	missed   map[string]int // consecutive heartbeat misses per neighbor
	repairs  int
	sweeps   int
	pruned   int
	lastErr  error
	stopOnce sync.Once

	// Recovery accounting: a deficit episode opens when degree < M is
	// first observed and closes when degree is back at M, however that
	// happened (successful re-join or inbound links).
	deficitSince  time.Time
	recoveries    int
	lastRecovery  time.Duration
	totalRecovery time.Duration
}

// MaintainerConfig parameterizes a Maintainer.
type MaintainerConfig struct {
	// Bootstrap supplies a re-join contact on demand (e.g. a random known
	// peer); returning "" skips that round.
	Bootstrap func() string
	// Strategy selects the re-join protocol.
	Strategy JoinStrategy
	// Interval is the heartbeat/sweep period; <= 0 defaults to 1s.
	Interval time.Duration
	// FailThreshold is how many consecutive missed heartbeats mark a
	// neighbor dead; <= 0 defaults to 1 (a single missed ping prunes —
	// the aggressive detector suited to in-process overlays; over lossy
	// transports 2–3 avoids evicting neighbors on one dropped pong).
	FailThreshold int
}

// MaintainerReport is a snapshot of maintenance activity and the
// overlay-healing metrics the robustness experiments read.
type MaintainerReport struct {
	// Sweeps counts completed heartbeat rounds; Repairs counts successful
	// re-joins; Pruned counts neighbors evicted by the failure detector.
	Sweeps, Repairs, Pruned int
	// Recoveries counts closed deficit episodes; LastRecovery and
	// MeanRecovery are their time-to-reconnect durations. InDeficit
	// reports an episode still open at snapshot time.
	Recoveries   int
	LastRecovery time.Duration
	MeanRecovery time.Duration
	InDeficit    bool
	// LastErr is the most recent re-join error (nil if none).
	LastErr error
}

// NewMaintainer starts background maintenance for p with the default
// single-miss failure detector. bootstrap supplies a re-join contact on
// demand; returning "" skips that round. interval <= 0 defaults to 1s.
func NewMaintainer(p *Peer, bootstrap func() string, strategy JoinStrategy, interval time.Duration) *Maintainer {
	return NewMaintainerWith(p, MaintainerConfig{
		Bootstrap: bootstrap, Strategy: strategy, Interval: interval,
	})
}

// NewMaintainerWith starts background maintenance with full control over
// the failure detector.
func NewMaintainerWith(p *Peer, cfg MaintainerConfig) *Maintainer {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 1
	}
	m := &Maintainer{
		peer:      p,
		bootstrap: cfg.Bootstrap,
		strategy:  cfg.Strategy,
		interval:  cfg.Interval,
		threshold: cfg.FailThreshold,
		missed:    make(map[string]int),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go m.run()
	return m
}

func (m *Maintainer) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.sweep()
		case <-m.stop:
			return
		}
	}
}

// sweep performs one maintenance round: heartbeat every neighbor, evict
// the ones past the miss threshold, then repair any degree deficit by
// re-running the join protocol.
func (m *Maintainer) sweep() {
	m.mu.Lock()
	m.sweeps++
	m.mu.Unlock()

	dead := m.peer.pingNeighbors()

	m.mu.Lock()
	deadSet := make(map[string]bool, len(dead))
	for _, a := range dead {
		deadSet[a] = true
	}
	// A pong resets the neighbor's miss streak — the detector requires
	// *consecutive* misses.
	for a := range m.missed {
		if !deadSet[a] {
			delete(m.missed, a)
		}
	}
	var evict []string
	for _, a := range dead {
		m.missed[a]++
		if m.missed[a] >= m.threshold {
			evict = append(evict, a)
			delete(m.missed, a)
		}
	}
	m.mu.Unlock()

	for _, a := range evict {
		if m.peer.forgetNeighbor(a) {
			m.mu.Lock()
			m.pruned++
			m.mu.Unlock()
		}
	}

	if m.settleDeficit() {
		return
	}
	boot := ""
	if m.bootstrap != nil {
		boot = m.bootstrap()
	}
	if boot == "" || boot == m.peer.Addr() {
		return
	}
	if _, err := m.peer.Join(boot, m.strategy); err != nil {
		m.mu.Lock()
		m.lastErr = err
		m.mu.Unlock()
		return
	}
	m.mu.Lock()
	m.repairs++
	m.mu.Unlock()
	m.settleDeficit()
}

// settleDeficit reconciles the deficit episode with the current degree:
// it opens an episode when degree < M, closes one (recording the
// time-to-reconnect) when degree is restored, and reports whether the
// peer is currently healthy.
func (m *Maintainer) settleDeficit() bool {
	healthy := m.peer.Degree() >= m.peer.cfg.M
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case healthy && !m.deficitSince.IsZero():
		d := time.Since(m.deficitSince)
		m.deficitSince = time.Time{}
		m.recoveries++
		m.lastRecovery = d
		m.totalRecovery += d
	case !healthy && m.deficitSince.IsZero():
		m.deficitSince = time.Now()
	}
	return healthy
}

// Stats reports maintenance activity: completed sweeps, successful
// repairs, and the last join error (nil if none).
func (m *Maintainer) Stats() (sweeps, repairs int, lastErr error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweeps, m.repairs, m.lastErr
}

// Report returns the full maintenance snapshot, including the
// failure-detector evictions and time-to-reconnect metrics.
func (m *Maintainer) Report() MaintainerReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := MaintainerReport{
		Sweeps: m.sweeps, Repairs: m.repairs, Pruned: m.pruned,
		Recoveries:   m.recoveries,
		LastRecovery: m.lastRecovery,
		InDeficit:    !m.deficitSince.IsZero(),
		LastErr:      m.lastErr,
	}
	if m.recoveries > 0 {
		r.MeanRecovery = m.totalRecovery / time.Duration(m.recoveries)
	}
	return r
}

// Stop terminates the maintenance goroutine and waits for it to exit.
// Idempotent.
func (m *Maintainer) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}
