package p2p

import (
	"sync"
	"time"
)

// Maintainer runs periodic self-healing for one peer: it prunes dead
// neighbors and re-joins through a bootstrap provider whenever the peer's
// degree falls below its M — the per-peer form of the paper's §VI
// join/leave maintenance, requiring only local messages.
//
// Lifecycle follows the package convention: New starts the background
// goroutine, Stop signals it and waits for exit.
type Maintainer struct {
	peer      *Peer
	bootstrap func() string
	strategy  JoinStrategy
	interval  time.Duration

	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	repairs  int
	sweeps   int
	lastErr  error
	stopOnce sync.Once
}

// NewMaintainer starts background maintenance for p. bootstrap supplies a
// re-join contact on demand (e.g. a random known peer); returning "" skips
// that round. interval <= 0 defaults to 1s.
func NewMaintainer(p *Peer, bootstrap func() string, strategy JoinStrategy, interval time.Duration) *Maintainer {
	if interval <= 0 {
		interval = time.Second
	}
	m := &Maintainer{
		peer:      p,
		bootstrap: bootstrap,
		strategy:  strategy,
		interval:  interval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go m.run()
	return m
}

func (m *Maintainer) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.sweep()
		case <-m.stop:
			return
		}
	}
}

// sweep performs one maintenance round.
func (m *Maintainer) sweep() {
	m.mu.Lock()
	m.sweeps++
	m.mu.Unlock()

	m.peer.PruneDead()
	if m.peer.Degree() >= m.peer.cfg.M {
		return
	}
	boot := ""
	if m.bootstrap != nil {
		boot = m.bootstrap()
	}
	if boot == "" || boot == m.peer.Addr() {
		return
	}
	if _, err := m.peer.Join(boot, m.strategy); err != nil {
		m.mu.Lock()
		m.lastErr = err
		m.mu.Unlock()
		return
	}
	m.mu.Lock()
	m.repairs++
	m.mu.Unlock()
}

// Stats reports maintenance activity: completed sweeps, successful
// repairs, and the last join error (nil if none).
func (m *Maintainer) Stats() (sweeps, repairs int, lastErr error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweeps, m.repairs, m.lastErr
}

// Stop terminates the maintenance goroutine and waits for it to exit.
// Idempotent.
func (m *Maintainer) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}
