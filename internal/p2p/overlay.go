package p2p

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// msDuration converts whole milliseconds to a time.Duration.
func msDuration(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// Overlay manages a population of in-process peers: bootstrapping, bulk
// joins, topology snapshots, and churn. It is the bridge between the live
// runtime and the analysis stack (internal/graph, internal/stats): grow an
// overlay with real protocol messages, then snapshot it as a graph.Graph
// and measure exactly what the paper measures.
type Overlay struct {
	// Net is the overlay's transport (a fresh InMemoryNetwork unless
	// OverlayConfig.Transport supplied one — e.g. a FaultyNetwork for
	// robustness experiments).
	Net Network

	cfg OverlayConfig

	mu     sync.Mutex
	peers  map[string]*Peer
	order  []string // join order, for deterministic snapshots
	nextID int
	rng    *xrand.RNG
}

// OverlayConfig parameterizes a peer population.
type OverlayConfig struct {
	// M, KC, TauSub are applied to every spawned peer (paper notation).
	M, KC, TauSub int
	// Strategy selects the join protocol.
	Strategy JoinStrategy
	// Seed derives every peer's RNG stream.
	Seed uint64
	// AddrPrefix names peers addrPrefix0, addrPrefix1, ...; defaults to
	// "peer".
	AddrPrefix string
	// DiscoverWindow overrides the per-peer reply-collection window
	// (shorter windows make big in-process overlays build faster).
	DiscoverWindow int // milliseconds; 0 = default
	// BehaviorFor, when non-nil, assigns a Behavior to the i-th spawned
	// peer (0-based) — the hook population experiments use to mix
	// cooperative and uncooperative peers deterministically.
	BehaviorFor func(i int) Behavior
	// Transport, when non-nil, is the network the overlay runs on (e.g. a
	// FaultyNetwork wrapping an InMemoryNetwork); nil means a fresh
	// InMemoryNetwork. Shutdown closes it if it supports closing.
	Transport Network
}

// NewOverlay returns an empty overlay on a fresh in-memory network.
func NewOverlay(cfg OverlayConfig) (*Overlay, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("%w: m=%d", ErrBadConfig, cfg.M)
	}
	if cfg.TauSub < 1 {
		cfg.TauSub = 4
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = JoinDAPA
	}
	if cfg.AddrPrefix == "" {
		cfg.AddrPrefix = "peer"
	}
	net := cfg.Transport
	if net == nil {
		net = NewInMemoryNetwork()
	}
	return &Overlay{
		Net:   net,
		cfg:   cfg,
		peers: make(map[string]*Peer),
		rng:   xrand.New(cfg.Seed),
	}, nil
}

// Size returns the current number of live peers.
func (o *Overlay) Size() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.peers)
}

// Peer returns the live peer at addr, or nil.
func (o *Overlay) Peer(addr string) *Peer {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.peers[addr]
}

// Addrs returns the live peer addresses in join order.
func (o *Overlay) Addrs() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.order...)
}

// RandomAddr returns a uniformly random live peer address, or "".
func (o *Overlay) RandomAddr() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.order) == 0 {
		return ""
	}
	return o.order[o.rng.Intn(len(o.order))]
}

// Spawn creates one peer with the overlay's parameters and the given
// content keys, without joining it to anything. The first spawned peer is
// the natural bootstrap.
func (o *Overlay) Spawn(keys ...string) (*Peer, error) {
	o.mu.Lock()
	id := o.nextID
	addr := o.cfg.AddrPrefix + strconv.Itoa(id)
	o.nextID++
	seed := o.rng.Uint64()
	o.mu.Unlock()

	cfg := Config{
		Addr: addr, M: o.cfg.M, KC: o.cfg.KC, TauSub: o.cfg.TauSub,
		Keys: keys, Seed: seed,
	}
	if o.cfg.BehaviorFor != nil {
		cfg.Behavior = o.cfg.BehaviorFor(id)
	}
	if o.cfg.DiscoverWindow > 0 {
		cfg.DiscoverWindow = msDuration(o.cfg.DiscoverWindow)
	}
	p, err := NewPeer(cfg, o.Net)
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	o.peers[addr] = p
	o.order = append(o.order, addr)
	o.mu.Unlock()
	return p, nil
}

// SpawnJoin spawns a peer and joins it through a random existing peer. The
// very first peer skips joining (it seeds the overlay).
func (o *Overlay) SpawnJoin(keys ...string) (*Peer, error) {
	bootstrap := o.RandomAddr()
	p, err := o.Spawn(keys...)
	if err != nil {
		return nil, err
	}
	if bootstrap == "" {
		return p, nil
	}
	if _, err := p.Join(bootstrap, o.cfg.Strategy); err != nil {
		return p, fmt.Errorf("join %s via %s: %w", p.Addr(), bootstrap, err)
	}
	return p, nil
}

// Grow spawns and joins n peers sequentially, the live analogue of the
// paper's growth models. Content keys can be attached per peer via the
// optional keysFor callback.
func (o *Overlay) Grow(n int, keysFor func(i int) []string) error {
	for i := 0; i < n; i++ {
		var keys []string
		if keysFor != nil {
			keys = keysFor(i)
		}
		if _, err := o.SpawnJoin(keys...); err != nil {
			return fmt.Errorf("grow peer %d: %w", i, err)
		}
	}
	return nil
}

// Remove makes the peer at addr leave gracefully (or crash if graceful is
// false) and forgets it.
func (o *Overlay) Remove(addr string, graceful bool) {
	o.mu.Lock()
	p := o.peers[addr]
	delete(o.peers, addr)
	for i, a := range o.order {
		if a == addr {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
	o.mu.Unlock()
	if p == nil {
		return
	}
	if graceful {
		p.Leave()
	} else {
		p.Close()
	}
}

// Shutdown closes every peer and the network.
func (o *Overlay) Shutdown() {
	o.mu.Lock()
	peers := make([]*Peer, 0, len(o.peers))
	for _, p := range o.peers {
		peers = append(peers, p)
	}
	o.peers = make(map[string]*Peer)
	o.order = nil
	o.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			p.Close()
		}(p)
	}
	wg.Wait()
	if c, ok := o.Net.(interface{ Close() }); ok {
		c.Close()
	}
}

// Maintain implements the paper's §VI future work: peers whose degree has
// fallen below M (because neighbors left or crashed) re-run the join
// protocol through a random live peer, restoring connectedness while the
// hard cutoff still bounds everyone's load. It returns the number of peers
// repaired. Join failures are tolerated (the peer will be retried on the
// next maintenance round).
func (o *Overlay) Maintain() int {
	o.mu.Lock()
	peers := make([]*Peer, 0, len(o.peers))
	for _, p := range o.peers {
		peers = append(peers, p)
	}
	o.mu.Unlock()

	// Sweep dead links first: crashed neighbors still occupy degree slots
	// and would mask the deficit.
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			p.PruneDead()
		}(p)
	}
	wg.Wait()

	repaired := 0
	for _, p := range peers {
		if p.Degree() >= o.cfg.M {
			continue
		}
		bootstrap := o.RandomAddr()
		if bootstrap == "" || bootstrap == p.Addr() {
			continue
		}
		if _, err := p.Join(bootstrap, o.cfg.Strategy); err == nil {
			repaired++
		}
	}
	return repaired
}

// RecoveryReport describes how an overlay healed after failures: how
// many maintenance rounds it took, how much re-wiring happened, and the
// coverage-recovery trajectory (giant-component fraction per round).
type RecoveryReport struct {
	// Rounds counts maintenance rounds run; Repaired sums successful
	// re-joins across them.
	Rounds, Repaired int
	// Recovered reports whether the surviving peers re-converged to one
	// connected component within the round budget.
	Recovered bool
	// Coverage[i] is the giant-component fraction of live peers after
	// round i — the coverage-recovery curve.
	Coverage []float64
	// Elapsed is the wall-clock time-to-reconnect (or the time spent
	// before giving up).
	Elapsed time.Duration
}

// Heal drives the overlay back to a connected topology after failures:
// it runs Maintain rounds (prune dead links, re-join deficit peers by
// the configured paper rule) until every live peer sits in one connected
// component or maxRounds is exhausted, reporting time-to-reconnect and
// the coverage recovery per round.
func (o *Overlay) Heal(maxRounds int) RecoveryReport {
	start := time.Now()
	var rep RecoveryReport
	for r := 0; r < maxRounds; r++ {
		rep.Rounds++
		rep.Repaired += o.Maintain()
		frac := o.giantFraction()
		rep.Coverage = append(rep.Coverage, frac)
		if frac >= 1 {
			rep.Recovered = true
			break
		}
		// Degree repair alone cannot merge a partition whose sides are
		// both internally healthy (every degree >= M, nothing deficits).
		// Bridge one stranded peer into the giant component per round so
		// coverage cannot plateau below 1 while peers are reachable.
		if o.bridge() {
			rep.Repaired++
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// bridge joins one peer from outside the giant component through a
// member of it. Returns false when the overlay is already connected (or
// too small to bridge).
func (o *Overlay) bridge() bool {
	g, idx := o.Snapshot()
	if g.N() <= 1 {
		return false
	}
	giant := g.GiantComponent()
	if len(giant) == g.N() {
		return false
	}
	inGiant := make([]bool, g.N())
	for _, v := range giant {
		inGiant[v] = true
	}
	addrOf := make([]string, g.N())
	for a, id := range idx {
		addrOf[id] = a
	}
	target := addrOf[giant[0]]
	for id := 0; id < g.N(); id++ {
		if inGiant[id] {
			continue
		}
		joiner := o.Peer(addrOf[id])
		if joiner == nil || target == joiner.Addr() {
			continue
		}
		if _, err := joiner.Join(target, o.cfg.Strategy); err == nil {
			return true
		}
	}
	return false
}

// giantFraction is the fraction of live peers inside the snapshot's
// largest connected component (1 for an empty or single-peer overlay).
func (o *Overlay) giantFraction() float64 {
	g, _ := o.Snapshot()
	if g.N() <= 1 {
		return 1
	}
	return float64(len(g.GiantComponent())) / float64(g.N())
}

// Snapshot freezes the overlay topology into a graph.Graph for analysis.
// Node IDs follow join order; the returned map translates address to node
// ID. Links are taken from each live peer's neighbor table; a link is
// included if either endpoint knows it (tolerating the brief asymmetry of
// in-flight connects).
func (o *Overlay) Snapshot() (*graph.Graph, map[string]int) {
	o.mu.Lock()
	order := append([]string(nil), o.order...)
	peers := make(map[string]*Peer, len(o.peers))
	for a, p := range o.peers {
		peers[a] = p
	}
	o.mu.Unlock()

	id := make(map[string]int, len(order))
	for i, a := range order {
		id[a] = i
	}
	g := graph.New(len(order))
	type edge struct{ u, v int }
	seen := make(map[edge]bool)
	for _, a := range order {
		p := peers[a]
		if p == nil {
			continue
		}
		for _, nb := range p.Neighbors() {
			j, ok := id[nb.Addr]
			if !ok {
				continue // neighbor already departed
			}
			u, v := id[a], j
			if u > v {
				u, v = v, u
			}
			if u == v || seen[edge{u, v}] {
				continue
			}
			seen[edge{u, v}] = true
			// Snapshot errors cannot happen: ids are in range by
			// construction.
			if err := g.AddEdge(u, v); err != nil {
				panic(fmt.Sprintf("p2p: snapshot edge: %v", err))
			}
		}
	}
	return g, id
}

// FrozenSnapshot is Snapshot in CSR form: the overlay topology frozen for
// read-heavy analysis, plus the address-to-node-ID map. The mutable
// intermediate Graph is discarded immediately.
func (o *Overlay) FrozenSnapshot() (*graph.Frozen, map[string]int) {
	g, id := o.Snapshot()
	return g.Freeze(), id
}

// DegreeHistogram returns the live overlay's degree histogram (from the
// snapshot graph).
func (o *Overlay) DegreeHistogram() []int {
	g, _ := o.Snapshot()
	return g.DegreeHistogram()
}

// SortedDegrees returns all live peer degrees ascending (diagnostic).
func (o *Overlay) SortedDegrees() []int {
	g, _ := o.Snapshot()
	seq := g.DegreeSequence()
	sort.Ints(seq)
	return seq
}
