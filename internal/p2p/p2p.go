// Package p2p is a live, message-passing implementation of the paper's
// protocols: every peer is a goroutine with a mailbox, joins are executed
// as real discovery/connect message exchanges using only locally available
// information, and the three search algorithms (flooding, normalized
// flooding, random walk) run as actual query protocols with GUID duplicate
// suppression, exactly as Gnutella-like systems do.
//
// Relationship to internal/sim: the simulator reproduces the paper's
// figures on static graphs; this package demonstrates that HAPA- and
// DAPA-style joining work as distributed protocols — the paper's
// motivating claim ("each peer has to figure out the optimal way of
// joining the P2P overlay by only using the locally available
// information", §I-A). Table II's locality classification is operational
// here: a joining peer sends messages only to peers it has discovered;
// there is no global degree table anywhere in the process.
//
// Transports are pluggable: an in-process channel network (used by the
// examples and tests, able to host tens of thousands of peers in one
// process) and a TCP transport with length-delimited JSON frames
// (cmd/peerd) share the same Peer implementation.
package p2p

import (
	"errors"
	"time"
)

// Errors returned by peer operations.
var (
	ErrPeerClosed   = errors.New("p2p: peer is shut down")
	ErrUnknownPeer  = errors.New("p2p: unknown peer address")
	ErrSaturated    = errors.New("p2p: peer rejected connection (at hard cutoff)")
	ErrJoinFailed   = errors.New("p2p: join could not establish any connection")
	ErrBadConfig    = errors.New("p2p: invalid peer configuration")
	ErrDupAddress   = errors.New("p2p: address already registered")
	ErrInboxOverrun = errors.New("p2p: inbox overrun, message dropped")
)

// NoCutoff disables the hard degree cutoff for a peer.
const NoCutoff = 0

// PeerInfo is what peers learn about each other from discovery: an address
// and the advertised degree (the only "topology information" the paper's
// local mechanisms rely on).
type PeerInfo struct {
	Addr   string `json:"addr"`
	Degree int    `json:"degree"`
}

// JoinStrategy selects how a peer attaches to the overlay.
type JoinStrategy int

const (
	// JoinRandom connects to m uniformly random discovered peers —
	// the naive baseline.
	JoinRandom JoinStrategy = iota + 1
	// JoinDAPA discovers peers within a TTL horizon and attaches
	// preferentially by advertised degree (Discover-and-Attempt, §IV-B).
	JoinDAPA
	// JoinHAPA lands on the bootstrap peer and walks random links,
	// attempting a degree-proportional connection at each stop
	// (Hop-and-Attempt, §IV-A).
	JoinHAPA
)

// String names the strategy.
func (s JoinStrategy) String() string {
	switch s {
	case JoinRandom:
		return "random"
	case JoinDAPA:
		return "dapa"
	case JoinHAPA:
		return "hapa"
	default:
		return "unknown"
	}
}

// Config parameterizes a peer.
type Config struct {
	// Addr is the peer's unique address on its network.
	Addr string
	// M is the number of links the peer tries to establish when joining.
	M int
	// KC is the hard cutoff on the peer's degree (NoCutoff disables);
	// the peer rejects inbound connections beyond it and never initiates
	// past it.
	KC int
	// TauSub is the discovery TTL for DAPA-style joins.
	TauSub int
	// Keys is the content this peer shares (searchable by exact match).
	Keys []string
	// Seed derives the peer's private RNG stream.
	Seed uint64
	// InboxSize bounds the mailbox; 0 means DefaultInboxSize. Overruns
	// drop messages and increment Stats.Dropped (unstructured overlays
	// tolerate loss; searches are best-effort by design).
	InboxSize int
	// OutboxSize bounds the send queue drained by the peer's writer
	// goroutine; 0 means DefaultOutboxSize. Under pressure the oldest
	// queued message is shed and Stats.Shed incremented — old protocol
	// traffic ages out fastest, and the dispatcher never blocks on a slow
	// transport.
	OutboxSize int
	// DiscoverWindow is how long a discovery or query collects replies;
	// 0 means DefaultDiscoverWindow.
	DiscoverWindow time.Duration
	// MaxTTL clamps the TTL of forwarded discovery and query floods
	// (0 means DefaultMaxTTL). Uncooperative peers cannot amplify
	// traffic by injecting huge TTLs: every forwarder re-clamps.
	MaxTTL int
	// Behavior makes the peer uncooperative (the paper's motivating
	// "distributed and potentially uncooperative environments", §I).
	// The zero value is a fully cooperative peer.
	Behavior Behavior
}

// Behavior models the uncooperative peers the paper motivates hard
// cutoffs with: peers that will not carry load for others. Each field
// enables one defection independently; all zero is full cooperation.
// These behaviors are protocol-compatible — an honest peer cannot tell a
// defector from an unlucky one — which is what makes them interesting to
// measure rather than forbid.
type Behavior struct {
	// FakeDegree, when > 0, is the degree the peer advertises in every
	// protocol reply regardless of its true degree. Inflating it attracts
	// preferential attachments the peer then rejects or carries poorly;
	// deflating it dodges them.
	FakeDegree int
	// RefuseConnects rejects every inbound link request even below the
	// hard cutoff (the peer still initiates its own M links — the classic
	// selfish joiner).
	RefuseConnects bool
	// DropQueryProb is the probability of silently discarding a query
	// instead of forwarding it (freeriding on others' relay work).
	DropQueryProb float64
	// NeverServeHits suppresses query-hit replies even for local matches
	// (leeching: consuming the index without contributing to it).
	NeverServeHits bool
}

func (b Behavior) validate() error {
	if b.DropQueryProb < 0 || b.DropQueryProb > 1 {
		return errors.New("p2p: DropQueryProb must be in [0,1]")
	}
	if b.FakeDegree < 0 {
		return errors.New("p2p: FakeDegree must be >= 0")
	}
	return nil
}

// Uncooperative reports whether any defection is enabled.
func (b Behavior) Uncooperative() bool {
	return b.FakeDegree > 0 || b.RefuseConnects || b.DropQueryProb > 0 || b.NeverServeHits
}

// Defaults for optional Config fields.
const (
	DefaultInboxSize      = 4096
	DefaultOutboxSize     = 4096
	DefaultDiscoverWindow = 200 * time.Millisecond
	DefaultMaxTTL         = 32
)

func (c Config) validate() error {
	if c.Addr == "" {
		return errors.New("p2p: empty address")
	}
	if c.M < 1 {
		return errors.New("p2p: m must be >= 1")
	}
	if c.KC != NoCutoff && c.KC < c.M {
		return errors.New("p2p: kc below m")
	}
	if c.TauSub < 1 {
		return errors.New("p2p: tau_sub must be >= 1")
	}
	return c.Behavior.validate()
}

// Stats counts a peer's protocol activity.
type Stats struct {
	// Sent and Received count envelopes.
	Sent, Received int64
	// Dropped counts messages lost to inbox overrun.
	Dropped int64
	// Shed counts outbound messages evicted from a full outbox (oldest
	// first) before they reached the transport.
	Shed int64
	// QueriesSeen counts distinct query GUIDs processed.
	QueriesSeen int64
	// QueriesForwarded counts query transmissions initiated by this peer.
	QueriesForwarded int64
	// HitsServed counts local key matches answered.
	HitsServed int64
	// ConnectsAccepted and ConnectsRejected count inbound link requests.
	ConnectsAccepted, ConnectsRejected int64
}
