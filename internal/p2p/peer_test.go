package p2p

import (
	"errors"
	"testing"
	"time"
)

// testConfig returns a fast-window config for unit tests.
func testConfig(addr string, seed uint64) Config {
	return Config{
		Addr: addr, M: 2, TauSub: 4, Seed: seed,
		DiscoverWindow: 60 * time.Millisecond,
	}
}

// spawn creates a peer on net, failing the test on error and closing it on
// cleanup.
func spawn(t *testing.T, net Network, cfg Config) *Peer {
	t.Helper()
	p, err := NewPeer(cfg, net)
	if err != nil {
		t.Fatalf("NewPeer(%s): %v", cfg.Addr, err)
	}
	t.Cleanup(p.Close)
	return p
}

// waitFor polls cond until true or the deadline elapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestNewPeerValidation(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	cases := []Config{
		{Addr: "", M: 1, TauSub: 1},
		{Addr: "a", M: 0, TauSub: 1},
		{Addr: "a", M: 2, KC: 1, TauSub: 1},
		{Addr: "a", M: 1, TauSub: 0},
	}
	for _, cfg := range cases {
		if _, err := NewPeer(cfg, net); !errors.Is(err, ErrBadConfig) {
			t.Errorf("NewPeer(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestDuplicateAddress(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	spawn(t, net, testConfig("a", 1))
	if _, err := NewPeer(testConfig("a", 2), net); !errors.Is(err, ErrDupAddress) {
		t.Fatalf("err = %v, want ErrDupAddress", err)
	}
}

func TestConnectEstablishesBothSides(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	a := spawn(t, net, testConfig("a", 1))
	b := spawn(t, net, testConfig("b", 2))
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if a.Degree() != 1 {
		t.Fatalf("a degree %d", a.Degree())
	}
	if !waitFor(t, time.Second, func() bool { return b.Degree() == 1 }) {
		t.Fatalf("b degree %d, want 1", b.Degree())
	}
	// Idempotent: reconnecting is a no-op.
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if a.Degree() != 1 {
		t.Fatalf("duplicate connect changed degree to %d", a.Degree())
	}
}

func TestConnectSelfIsNoOp(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	a := spawn(t, net, testConfig("a", 1))
	if err := a.Connect("a"); err != nil {
		t.Fatal(err)
	}
	if a.Degree() != 0 {
		t.Fatal("self connect created a link")
	}
}

func TestConnectRespectsHardCutoff(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	cfg := testConfig("hub", 1)
	cfg.KC = 2
	hub := spawn(t, net, cfg)
	var ok, rejected int
	for i := 0; i < 5; i++ {
		p := spawn(t, net, testConfig(string(rune('b'+i)), uint64(i+2)))
		if err := p.Connect("hub"); err != nil {
			if !errors.Is(err, ErrSaturated) {
				t.Fatalf("unexpected error: %v", err)
			}
			rejected++
		} else {
			ok++
		}
	}
	if ok != 2 || rejected != 3 {
		t.Fatalf("ok=%d rejected=%d, want 2/3", ok, rejected)
	}
	if hub.Degree() != 2 {
		t.Fatalf("hub degree %d, want kc=2", hub.Degree())
	}
	st := hub.Stats()
	if st.ConnectsAccepted != 2 || st.ConnectsRejected != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestConnectLocalCutoff(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	cfg := testConfig("a", 1)
	cfg.KC = 2 // m defaults to 2 in testConfig
	a := spawn(t, net, cfg)
	spawn(t, net, testConfig("b", 2))
	spawn(t, net, testConfig("c", 3))
	spawn(t, net, testConfig("d", 4))
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("c"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("d"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want local ErrSaturated", err)
	}
}

func TestDisconnect(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	a := spawn(t, net, testConfig("a", 1))
	b := spawn(t, net, testConfig("b", 2))
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return b.Degree() == 1 })
	a.Disconnect("b")
	if a.Degree() != 0 {
		t.Fatal("a kept the link")
	}
	if !waitFor(t, time.Second, func() bool { return b.Degree() == 0 }) {
		t.Fatal("b kept the link after disconnect")
	}
}

func TestLeaveNotifiesNeighbors(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	a, err := NewPeer(testConfig("a", 1), net)
	if err != nil {
		t.Fatal(err)
	}
	b := spawn(t, net, testConfig("b", 2))
	c := spawn(t, net, testConfig("c", 3))
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("c"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return b.Degree() == 1 && c.Degree() == 1 })
	a.Leave()
	if !waitFor(t, time.Second, func() bool { return b.Degree() == 0 && c.Degree() == 0 }) {
		t.Fatalf("neighbors kept links: b=%d c=%d", b.Degree(), c.Degree())
	}
}

func TestCloseIdempotent(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	a, err := NewPeer(testConfig("a", 1), net)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	a.Close() // must not panic or deadlock
}

func TestDiscoverHorizon(t *testing.T) {
	t.Parallel()
	// Path topology a-b-c-d: discovery from a fresh node via "a" with
	// TTL 2 must see a and b but not c or d.
	net := NewInMemoryNetwork()
	names := []string{"a", "b", "c", "d"}
	peers := make(map[string]*Peer, 4)
	for i, n := range names {
		peers[n] = spawn(t, net, testConfig(n, uint64(i+1)))
	}
	for i := 0; i+1 < len(names); i++ {
		if err := peers[names[i]].Connect(names[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	newcomer := spawn(t, net, testConfig("x", 99))
	found, err := newcomer.Discover("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, pi := range found {
		got[pi.Addr] = true
	}
	if !got["a"] || !got["b"] {
		t.Fatalf("horizon missing a/b: %v", found)
	}
	if got["c"] || got["d"] {
		t.Fatalf("TTL 2 leaked beyond horizon: %v", found)
	}
	// Wider horizon sees everyone.
	found, err = newcomer.Discover("a", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 4 {
		t.Fatalf("full horizon found %d peers, want 4", len(found))
	}
}

func TestDiscoverReportsDegrees(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	hub := spawn(t, net, testConfig("hub", 1))
	for i := 0; i < 3; i++ {
		p := spawn(t, net, testConfig(string(rune('b'+i)), uint64(i+2)))
		if err := p.Connect("hub"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return hub.Degree() == 3 })
	newcomer := spawn(t, net, testConfig("x", 9))
	found, err := newcomer.Discover("hub", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Addr != "hub" {
		t.Fatalf("found %v", found)
	}
	if found[0].Degree != 3 {
		t.Fatalf("hub advertised degree %d, want 3", found[0].Degree)
	}
}
