package p2p

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestFaultyNetworkZeroFaultTransparent pins the byte-transparency
// contract: with a zero FaultConfig the wrapper must forward every
// envelope in order, propagate the inner transport's errors verbatim,
// and record no faults.
func TestFaultyNetworkZeroFaultTransparent(t *testing.T) {
	t.Parallel()
	plain := NewInMemoryNetwork()
	wrapped := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{})

	run := func(n Network) ([]Envelope, []error) {
		inbox := make(chan Envelope, 64)
		if err := n.Register("sink", inbox); err != nil {
			t.Fatal(err)
		}
		var errs []error
		for i := 0; i < 20; i++ {
			errs = append(errs, n.Send(Envelope{From: "src", To: "sink", Msg: Message{Kind: KindPing, Hops: i}}))
		}
		errs = append(errs, n.Send(Envelope{From: "src", To: "nobody"}))
		var got []Envelope
		for len(inbox) > 0 {
			got = append(got, <-inbox)
		}
		return got, errs
	}

	wantEnv, wantErr := run(plain)
	gotEnv, gotErr := run(wrapped)
	if !reflect.DeepEqual(gotEnv, wantEnv) {
		t.Fatalf("zero-fault wrapper altered delivery:\n got %v\nwant %v", gotEnv, wantEnv)
	}
	if len(gotErr) != len(wantErr) {
		t.Fatalf("error counts diverged: %d vs %d", len(gotErr), len(wantErr))
	}
	for i := range gotErr {
		if (gotErr[i] == nil) != (wantErr[i] == nil) {
			t.Fatalf("send %d: error %v vs %v", i, gotErr[i], wantErr[i])
		}
		if gotErr[i] != nil && !errors.Is(gotErr[i], ErrUnknownPeer) {
			t.Fatalf("send %d: wrapper rewrote the inner error: %v", i, gotErr[i])
		}
	}
	st := wrapped.Stats()
	if st.Dropped != 0 || st.Duplicated != 0 || st.Delayed != 0 || st.Reordered != 0 || st.PartitionDropped != 0 {
		t.Fatalf("zero-fault config recorded faults: %+v", st)
	}
	if st.Delivered != 20 {
		t.Fatalf("delivered %d, want 20", st.Delivered)
	}
}

// TestFaultyNetworkDeterministicSchedule pins that the same seed and the
// same send sequence produce the same fault schedule.
func TestFaultyNetworkDeterministicSchedule(t *testing.T) {
	t.Parallel()
	schedule := func() FaultStats {
		fn := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{Seed: 42, Drop: 0.3, Dup: 0.2})
		inbox := make(chan Envelope, 256)
		if err := fn.Register("sink", inbox); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := fn.Send(Envelope{From: "src", To: "sink", Msg: Message{Hops: i}}); err != nil {
				t.Fatal(err)
			}
		}
		return fn.Stats()
	}
	a, b := schedule(), schedule()
	if a != b {
		t.Fatalf("schedules diverged: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 {
		t.Fatalf("faults never fired: %+v", a)
	}
	if a.Delivered+a.Dropped != 200 {
		t.Fatalf("delivered %d + dropped %d != 200 sends", a.Delivered, a.Dropped)
	}
}

func TestFaultyNetworkDrop(t *testing.T) {
	t.Parallel()
	fn := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{Seed: 7, Drop: 1})
	inbox := make(chan Envelope, 8)
	if err := fn.Register("sink", inbox); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fn.Send(Envelope{From: "src", To: "sink"}); err != nil {
			t.Fatalf("drops must look like successful sends, got %v", err)
		}
	}
	if len(inbox) != 0 {
		t.Fatalf("%d envelopes leaked through Drop=1", len(inbox))
	}
	if st := fn.Stats(); st.Dropped != 10 || st.Delivered != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultyNetworkDuplicate(t *testing.T) {
	t.Parallel()
	fn := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{Seed: 7, Dup: 1})
	inbox := make(chan Envelope, 16)
	if err := fn.Register("sink", inbox); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := fn.Send(Envelope{From: "src", To: "sink", Msg: Message{Hops: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(inbox) != 10 {
		t.Fatalf("got %d envelopes, want 10 (each doubled)", len(inbox))
	}
	if st := fn.Stats(); st.Duplicated != 5 || st.Delivered != 5 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultyNetworkDelay(t *testing.T) {
	t.Parallel()
	fn := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{
		Seed: 7, DelayProb: 1, MaxDelay: 10 * time.Millisecond,
	})
	inbox := make(chan Envelope, 8)
	if err := fn.Register("sink", inbox); err != nil {
		t.Fatal(err)
	}
	if err := fn.Send(Envelope{From: "src", To: "sink", Msg: Message{Kind: KindPing}}); err != nil {
		t.Fatal(err)
	}
	// The envelope is in flight, not delivered inline.
	if st := fn.Stats(); st.Delayed != 1 {
		t.Fatalf("stats %+v", st)
	}
	fn.Flush()
	select {
	case env := <-inbox:
		if env.Msg.Kind != KindPing {
			t.Fatalf("got %v", env.Msg.Kind)
		}
	default:
		t.Fatal("delayed envelope never delivered after Flush")
	}
}

func TestFaultyNetworkReorder(t *testing.T) {
	t.Parallel()
	fn := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{Seed: 7, Reorder: 1})
	inbox := make(chan Envelope, 8)
	if err := fn.Register("sink", inbox); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fn.Send(Envelope{From: "src", To: "sink", Msg: Message{Hops: i}}); err != nil {
			t.Fatal(err)
		}
	}
	fn.Flush()
	if len(inbox) != 2 {
		t.Fatalf("got %d envelopes, want 2", len(inbox))
	}
	first, second := <-inbox, <-inbox
	if first.Msg.Hops != 1 || second.Msg.Hops != 0 {
		t.Fatalf("not reordered: got hops %d then %d, want 1 then 0", first.Msg.Hops, second.Msg.Hops)
	}
	if st := fn.Stats(); st.Reordered == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultyNetworkPartition(t *testing.T) {
	t.Parallel()
	fn := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{})
	ina := make(chan Envelope, 8)
	inb := make(chan Envelope, 8)
	if err := fn.Register("a", ina); err != nil {
		t.Fatal(err)
	}
	if err := fn.Register("b", inb); err != nil {
		t.Fatal(err)
	}

	fn.Partition("island", "b")
	if err := fn.Send(Envelope{From: "a", To: "b"}); err != nil {
		t.Fatalf("partition drops must look like successful sends, got %v", err)
	}
	if err := fn.Send(Envelope{From: "b", To: "a"}); err != nil {
		t.Fatal(err)
	}
	if len(ina) != 0 || len(inb) != 0 {
		t.Fatalf("traffic crossed the partition: a=%d b=%d", len(ina), len(inb))
	}
	if st := fn.Stats(); st.PartitionDropped != 2 {
		t.Fatalf("stats %+v", st)
	}
	// Within one group traffic flows.
	fn.Partition("island", "a")
	if err := fn.Send(Envelope{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if len(inb) != 1 {
		t.Fatal("same-group traffic blocked")
	}

	fn.Heal()
	if err := fn.Send(Envelope{From: "b", To: "a"}); err != nil {
		t.Fatal(err)
	}
	if len(ina) != 1 {
		t.Fatal("healed partition still blocking")
	}
}

// TestFaultyNetworkOverlayGrows sanity-checks that a real overlay
// protocol survives a moderately lossy fault schedule end to end.
func TestFaultyNetworkOverlayGrows(t *testing.T) {
	t.Parallel()
	fn := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{Seed: 11, Drop: 0.05})
	o, err := NewOverlay(OverlayConfig{
		M: 2, TauSub: 3, Seed: 5, Transport: fn, DiscoverWindow: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	if err := o.Grow(16, nil); err != nil {
		t.Fatalf("overlay failed to grow over a 5%% lossy network: %v", err)
	}
	if st := fn.Stats(); st.Dropped == 0 {
		t.Fatalf("fault schedule never fired: %+v", st)
	}
}
