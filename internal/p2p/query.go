package p2p

import (
	"fmt"
	"time"
)

// QueryResult collects the outcome of one live content search.
type QueryResult struct {
	// Key is the content key searched.
	Key string
	// Hits are the peers that reported a local match, in arrival order.
	Hits []PeerInfo
	// FirstHopCount is the hop count of the earliest hit (0 if none) —
	// the delivery-time metric of §V-A.
	FirstHopCount int
	// Elapsed is the wall-clock collection time.
	Elapsed time.Duration
}

// Query runs a live content search from this peer using the given
// algorithm and TTL, collecting query-hits for the configured window.
// For AlgNF the fan-out is the peer's configured M (the paper runs NF
// "based on the predefined minimum degree value m"); walkers (AlgRW)
// interpret TTL as the step budget.
//
// The search is best-effort and asynchronous, exactly like Gnutella: late
// hits after the window are dropped.
func (p *Peer) Query(key string, alg Alg, ttl int) (QueryResult, error) {
	switch alg {
	case AlgFlood, AlgNF, AlgRW:
	default:
		return QueryResult{}, fmt.Errorf("%w: unknown algorithm %q", ErrBadConfig, alg)
	}
	if ttl < 1 {
		return QueryResult{}, fmt.Errorf("p2p: query TTL %d must be >= 1", ttl)
	}
	start := time.Now()
	id := p.newID()
	ch, cancel := p.await(id)
	defer cancel()

	msg := Message{
		Kind: KindQuery, ID: id, Origin: p.cfg.Addr, Key: key,
		Alg: alg, KMin: p.cfg.M, TTL: ttl,
		Hops: 1, // the origin's own transmission is the first hop
	}

	// Seed the search: the origin forwards like any node (FL: all
	// neighbors; NF: up to kMin; RW: one), and never re-processes its own
	// GUID.
	p.mu.Lock()
	p.markSeen(p.seen, id)
	p.markSeen(p.hitSent, id)
	cands := make([]string, 0, len(p.neighbors))
	for a := range p.neighbors {
		cands = append(cands, a)
	}
	switch alg {
	case AlgNF:
		if len(cands) > p.cfg.M {
			p.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			cands = cands[:p.cfg.M]
		}
	case AlgRW:
		if len(cands) > 0 {
			cands = []string{cands[p.rng.Intn(len(cands))]}
		}
	}
	p.mu.Unlock()
	for _, a := range cands {
		p.stats.queriesForwarded.Add(1)
		p.send(a, msg)
	}

	res := QueryResult{Key: key}
	deadline := time.NewTimer(p.cfg.DiscoverWindow)
	defer deadline.Stop()
	for {
		select {
		case hit := <-ch:
			if hit.Kind != KindQueryHit {
				continue
			}
			if len(res.Hits) == 0 {
				res.FirstHopCount = hit.Hops
			}
			res.Hits = append(res.Hits, hit.Peers...)
		case <-deadline.C:
			res.Elapsed = time.Since(start)
			return res, nil
		case <-p.stop:
			return res, ErrPeerClosed
		}
	}
}
