package p2p

import (
	"encoding/json"
	"errors"
	gonet "net"
	"strings"
	"testing"
	"time"
)

// tcpPeer spawns a peer on the TCP transport with a kernel-assigned port,
// returning the peer (addressed by its resolved listen address).
func tcpPeer(t *testing.T, net *TCPNetwork, seed uint64, keys ...string) *Peer {
	t.Helper()
	// Bind first to learn the port, since Config.Addr is the identity
	// other peers dial.
	probe := make(chan Envelope, 1)
	if err := net.Register("127.0.0.1:0", probe); err != nil {
		t.Fatal(err)
	}
	addr := net.ListenAddr("127.0.0.1:0")
	net.Unregister(addr)

	cfg := Config{
		Addr: addr, M: 2, TauSub: 4, Seed: seed, Keys: keys,
		DiscoverWindow: 150 * time.Millisecond,
	}
	p, err := NewPeer(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestTCPConnectAndQuery(t *testing.T) {
	t.Parallel()
	net := NewTCPNetwork()
	t.Cleanup(net.Close)

	a := tcpPeer(t, net, 1)
	b := tcpPeer(t, net, 2, "tcp-needle")
	c := tcpPeer(t, net, 3)

	if err := a.Connect(b.Addr()); err != nil {
		t.Fatalf("connect a-b over TCP: %v", err)
	}
	if err := b.Connect(c.Addr()); err != nil {
		t.Fatalf("connect b-c over TCP: %v", err)
	}
	if !waitFor(t, 2*time.Second, func() bool { return b.Degree() == 2 }) {
		t.Fatalf("b degree %d", b.Degree())
	}

	res, err := a.Query("tcp-needle", AlgFlood, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Addr != b.Addr() {
		t.Fatalf("hits %v", res.Hits)
	}
}

func TestTCPDiscoverAndJoin(t *testing.T) {
	t.Parallel()
	net := NewTCPNetwork()
	t.Cleanup(net.Close)

	boot := tcpPeer(t, net, 10)
	b := tcpPeer(t, net, 11)
	if err := b.Connect(boot.Addr()); err != nil {
		t.Fatal(err)
	}
	newcomer := tcpPeer(t, net, 12)
	made, err := newcomer.Join(boot.Addr(), JoinDAPA)
	if err != nil {
		t.Fatal(err)
	}
	if made < 1 {
		t.Fatalf("made %d links", made)
	}
}

func TestTCPSendToDeadPeer(t *testing.T) {
	t.Parallel()
	net := NewTCPNetwork()
	t.Cleanup(net.Close)
	err := net.Send(Envelope{To: "127.0.0.1:1"}) // reserved port, refused
	if err == nil {
		t.Fatal("send to dead address should fail")
	}
}

func TestTCPUnregisterStopsDelivery(t *testing.T) {
	t.Parallel()
	net := NewTCPNetwork()
	t.Cleanup(net.Close)
	inbox := make(chan Envelope, 4)
	if err := net.Register("127.0.0.1:0", inbox); err != nil {
		t.Fatal(err)
	}
	addr := net.ListenAddr("127.0.0.1:0")
	if err := net.Send(Envelope{From: "x", To: addr, Msg: Message{Kind: KindPing}}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-inbox:
		if env.Msg.Kind != KindPing {
			t.Fatalf("got %v", env.Msg.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("envelope not delivered over TCP")
	}
	net.Unregister(addr)
	// The cached conn may still accept a write, but eventually sends must
	// fail once the connection drops; at minimum re-registration works.
	if err := net.Register("127.0.0.1:0", make(chan Envelope, 1)); err != nil {
		t.Fatalf("re-register: %v", err)
	}
}

// TestTCPCloseWithLivePeerOnOtherNetwork is the regression test for the
// Close deadlock: closing a network that holds an ESTABLISHED inbound
// connection from a still-running remote peer must not block waiting for
// the remote to hang up. (Before the fix, Close only closed listeners and
// outbound conns; inbound readLoops blocked in Scan forever.)
func TestTCPCloseWithLivePeerOnOtherNetwork(t *testing.T) {
	t.Parallel()
	netA := NewTCPNetwork()
	netB := NewTCPNetwork()
	defer netB.Close()

	a := tcpPeer(t, netA, 1, "alpha")
	b := tcpPeer(t, netB, 2)
	if err := b.Connect(a.Addr()); err != nil {
		t.Fatal(err)
	}
	// b's dial created an inbound connection on netA, and netB caches the
	// outbound side, keeping it open. Closing netA must still return.
	a.Close()
	done := make(chan struct{})
	go func() {
		netA.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("TCPNetwork.Close deadlocked on a live inbound connection")
	}
}

// TestTCPDoublePortZeroRegister is the regression test for the ephemeral-
// bind collision: the second Register("127.0.0.1:0") used to fail with
// ErrDupAddress because the first registration occupied the literal
// "host:0" key. Both binds must coexist and deliver independently.
func TestTCPDoublePortZeroRegister(t *testing.T) {
	t.Parallel()
	tn := NewTCPNetwork()
	t.Cleanup(tn.Close)

	in1 := make(chan Envelope, 1)
	if err := tn.Register("127.0.0.1:0", in1); err != nil {
		t.Fatal(err)
	}
	addr1 := tn.ListenAddr("127.0.0.1:0")

	in2 := make(chan Envelope, 1)
	if err := tn.Register("127.0.0.1:0", in2); err != nil {
		t.Fatalf("second port-0 register: %v", err)
	}
	addr2 := tn.ListenAddr("127.0.0.1:0")
	if addr1 == addr2 {
		t.Fatalf("both ephemeral binds resolved to %s", addr1)
	}

	for _, c := range []struct {
		addr  string
		inbox chan Envelope
	}{{addr1, in1}, {addr2, in2}} {
		if err := tn.Send(Envelope{From: "x", To: c.addr, Msg: Message{Kind: KindPing}}); err != nil {
			t.Fatal(err)
		}
		select {
		case env := <-c.inbox:
			if env.Msg.Kind != KindPing {
				t.Fatalf("got %v", env.Msg.Kind)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("no delivery to %s", c.addr)
		}
	}
}

// TestTCPSendSurfacesWriteError is the regression test for the masked
// encode failure: when the dial succeeds but every write attempt fails,
// Send used to report ErrUnknownPeer, hiding the real transport error.
// The remote here accepts and immediately closes, so a large write runs
// into a reset on both attempts.
func TestTCPSendSurfacesWriteError(t *testing.T) {
	t.Parallel()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	tn := NewTCPNetwork()
	t.Cleanup(tn.Close)
	// The payload must exceed the kernel's socket buffering so the write
	// blocks until the remote's reset arrives instead of being absorbed.
	huge := strings.Repeat("x", 16<<20)
	err = tn.Send(Envelope{From: "x", To: ln.Addr().String(), Msg: Message{Kind: KindPing, Key: huge}})
	if err == nil {
		t.Fatal("send to a resetting remote should fail")
	}
	if errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("write failure misreported as unknown peer: %v", err)
	}
}

// TestTCPOversizedFrameSurvival is the regression test for the silent
// readLoop death: one inbound line beyond the 1 MiB frame cap used to end
// the scan and kill the healthy connection. The oversized frame must be
// discarded and the next frame on the same connection delivered.
func TestTCPOversizedFrameSurvival(t *testing.T) {
	t.Parallel()
	tn := NewTCPNetwork()
	t.Cleanup(tn.Close)
	inbox := make(chan Envelope, 4)
	if err := tn.Register("127.0.0.1:0", inbox); err != nil {
		t.Fatal(err)
	}
	addr := tn.ListenAddr("127.0.0.1:0")

	conn, err := gonet.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	big := make([]byte, 2<<20)
	for i := range big {
		big[i] = 'a'
	}
	big[len(big)-1] = '\n'
	if _, err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	frame, err := json.Marshal(Envelope{From: "x", To: addr, Msg: Message{Kind: KindPing}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(frame, '\n')); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-inbox:
		if env.Msg.Kind != KindPing {
			t.Fatalf("got %v", env.Msg.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("connection did not survive the oversized frame")
	}
}

// TestTCPUnregisterClosesInbound pins the other half of the unregister
// path: the accepted inbound connections of the unregistered listener are
// hung up, not left open for remotes to keep writing into.
func TestTCPUnregisterClosesInbound(t *testing.T) {
	t.Parallel()
	tn := NewTCPNetwork()
	t.Cleanup(tn.Close)
	inbox := make(chan Envelope, 1)
	if err := tn.Register("127.0.0.1:0", inbox); err != nil {
		t.Fatal(err)
	}
	addr := tn.ListenAddr("127.0.0.1:0")

	conn, err := gonet.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	// Deliver one frame so the connection is provably accepted and pumping
	// before the unregister.
	frame, err := json.Marshal(Envelope{From: "x", To: addr, Msg: Message{Kind: KindPing}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(frame, '\n')); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inbox:
	case <-time.After(2 * time.Second):
		t.Fatal("envelope not delivered before unregister")
	}

	tn.Unregister(addr)
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("inbound connection still open after unregister")
	} else if ne, ok := err.(gonet.Error); ok && ne.Timeout() {
		t.Fatal("inbound connection not closed by unregister (read timed out)")
	}
}

// TestTCPReconnectAfterRemoteRestart pins the automatic-reconnect path:
// a cached outbound connection broken by a remote restart must be
// re-dialed by Send's retry loop, with the resilience counters showing
// the reconnect.
func TestTCPReconnectAfterRemoteRestart(t *testing.T) {
	t.Parallel()
	sender := NewTCPNetwork()
	t.Cleanup(sender.Close)

	remote := NewTCPNetwork()
	inbox := make(chan Envelope, 16)
	if err := remote.Register("127.0.0.1:0", inbox); err != nil {
		t.Fatal(err)
	}
	addr := remote.ListenAddr("127.0.0.1:0")
	if err := sender.Send(Envelope{From: "x", To: addr, Msg: Message{Kind: KindPing}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inbox:
	case <-time.After(2 * time.Second):
		t.Fatal("first envelope not delivered")
	}

	// Restart the remote on the same address: the sender's cached conn is
	// now broken and must be replaced by the retry loop.
	remote.Close()
	restarted := NewTCPNetwork()
	t.Cleanup(restarted.Close)
	inbox2 := make(chan Envelope, 16)
	if err := restarted.Register(addr, inbox2); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}

	// The first post-restart write may be absorbed by the kernel before
	// the reset arrives, so send until one lands.
	deadline := time.Now().Add(5 * time.Second)
	delivered := false
	for time.Now().Before(deadline) && !delivered {
		_ = sender.Send(Envelope{From: "x", To: addr, Msg: Message{Kind: KindPing}})
		select {
		case <-inbox2:
			delivered = true
		case <-time.After(50 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("sender never reconnected to the restarted remote")
	}
	if st := sender.Stats(); st.Reconnects == 0 {
		t.Fatalf("reconnect not recorded: %+v", st)
	}
}

// TestTCPSendRetriesCountRetries pins that failed attempts increment the
// retry counter and still surface the dial error.
func TestTCPSendRetriesCountRetries(t *testing.T) {
	t.Parallel()
	tn := NewTCPNetwork()
	t.Cleanup(tn.Close)
	tn.BackoffBase = time.Millisecond
	if err := tn.Send(Envelope{To: "127.0.0.1:1"}); err == nil {
		t.Fatal("send to a dead address should fail")
	} else if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("dial failure should surface as ErrUnknownPeer: %v", err)
	}
	if st := tn.Stats(); st.Retries != int64(tn.RetryMax) {
		t.Fatalf("retries %d, want %d", st.Retries, tn.RetryMax)
	}
}

// TestTCPRegisterAfterClose verifies the closed network rejects new
// registrations instead of leaking listeners.
func TestTCPRegisterAfterClose(t *testing.T) {
	t.Parallel()
	net := NewTCPNetwork()
	net.Close()
	if err := net.Register("127.0.0.1:0", make(chan Envelope, 1)); err == nil {
		t.Fatal("register after close should fail")
	}
}

// TestTCPCloseInterruptsBackoff pins the shutdown latency fix: a Send
// sleeping in retry backoff must bail out the moment the network closes,
// not after its full jittered delay.
func TestTCPCloseInterruptsBackoff(t *testing.T) {
	t.Parallel()
	tn := NewTCPNetwork()
	tn.DialTimeout = 50 * time.Millisecond
	tn.RetryMax = 3
	tn.BackoffBase = 10 * time.Second // without the fix, Send stalls here
	tn.BackoffMax = 10 * time.Second

	done := make(chan error, 1)
	go func() {
		done <- tn.Send(Envelope{To: "127.0.0.1:1"}) // reserved port, refused
	}()
	time.Sleep(100 * time.Millisecond) // let Send fail once and enter backoff
	start := time.Now()
	tn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("send to a dead address should fail")
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("Send took %v to observe Close; backoff was not interrupted", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still sleeping in backoff long after Close")
	}
}

// TestTCPSendErrorNamesPeerAndAttempts pins the exhaustion diagnostics:
// the error must say which peer and how many attempts, and keep the
// underlying cause (ErrUnknownPeer for dial failures) in the chain.
func TestTCPSendErrorNamesPeerAndAttempts(t *testing.T) {
	t.Parallel()
	tn := NewTCPNetwork()
	defer tn.Close()
	tn.DialTimeout = 50 * time.Millisecond
	tn.RetryMax = 2
	tn.BackoffBase = time.Millisecond
	tn.BackoffMax = 2 * time.Millisecond

	const addr = "127.0.0.1:1"
	err := tn.Send(Envelope{To: addr})
	if err == nil {
		t.Fatal("send to a dead address should fail")
	}
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("cause lost from the chain: %v", err)
	}
	if !strings.Contains(err.Error(), addr) {
		t.Fatalf("error %q does not name the peer", err)
	}
	if !strings.Contains(err.Error(), "3 attempt(s)") {
		t.Fatalf("error %q does not report the attempt count", err)
	}
}
