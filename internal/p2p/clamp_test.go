package p2p

import (
	"fmt"
	"testing"
	"time"
)

func TestHostileTTLClamped(t *testing.T) {
	t.Parallel()
	// A chain a0-a1-...-a9 where every peer clamps TTL to 3. A hostile
	// query injected with TTL 1000 must die after the clamp horizon
	// instead of sweeping the chain.
	netw := NewInMemoryNetwork()
	const n = 10
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		cfg := testConfig(fmt.Sprintf("a%d", i), uint64(i+1))
		cfg.MaxTTL = 3
		if i == n-1 {
			cfg.Keys = []string{"deep"}
		}
		peers[i] = spawn(t, netw, cfg)
	}
	for i := 0; i+1 < n; i++ {
		if err := peers[i].Connect(peers[i+1].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	// Inject the hostile query directly, bypassing Query()'s own TTL.
	hostile := Envelope{
		From: "attacker", To: "a0",
		Msg: Message{
			Kind: KindQuery, ID: "evil-1", Origin: "attacker",
			Key: "deep", Alg: AlgFlood, TTL: 1000, Hops: 1,
		},
	}
	if err := netw.Send(hostile); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	// a0 clamps to 3: forwards reach a1 (ttl2), a2 (ttl1, no forward).
	// Peers beyond the clamp horizon must never see the query.
	for i := 3; i < n; i++ {
		if st := peers[i].Stats(); st.QueriesSeen != 0 {
			t.Fatalf("peer a%d saw the hostile query beyond the clamp horizon", i)
		}
	}
	if st := peers[1].Stats(); st.QueriesSeen != 1 {
		t.Fatalf("a1 should have processed the clamped query once, saw %d", st.QueriesSeen)
	}
}

func TestHostileDiscoverClamped(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	const n = 8
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		cfg := testConfig(fmt.Sprintf("d%d", i), uint64(i+1))
		cfg.MaxTTL = 2
		peers[i] = spawn(t, netw, cfg)
	}
	for i := 0; i+1 < n; i++ {
		if err := peers[i].Connect(peers[i+1].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	probe := spawn(t, netw, testConfig("probe", 99))
	// The probe requests a huge horizon, but every forwarder clamps to
	// 2, so only d0 (clamped ttl 2) and d1 (ttl 1) answer.
	found, err := probe.Discover("d0", 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) > 2 {
		t.Fatalf("clamped discover returned %d peers: %v", len(found), found)
	}
}

func TestDefaultMaxTTLApplied(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	p := spawn(t, netw, testConfig("x", 1))
	if p.cfg.MaxTTL != DefaultMaxTTL {
		t.Fatalf("default MaxTTL = %d, want %d", p.cfg.MaxTTL, DefaultMaxTTL)
	}
}
