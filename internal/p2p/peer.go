package p2p

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scalefree/internal/xrand"
)

// Peer is one overlay participant: a mailbox-driven actor processing the
// wire protocol on a single dispatcher goroutine. External API calls
// (Join, Query, Discover, Leave) run on the caller's goroutine and
// correlate replies through per-request channels, so the dispatcher never
// blocks on protocol round-trips.
type Peer struct {
	cfg Config
	net Network

	inbox chan Envelope
	stop  chan struct{}
	done  chan struct{}

	// Outbound path: send() enqueues, a single writer goroutine drains to
	// the transport. A full outbox sheds its oldest entry (Stats.Shed), so
	// the dispatcher and API callers never block on a slow transport (a
	// TCP dial to a dead peer takes seconds; an in-memory send never
	// should).
	outMu      sync.Mutex
	outCond    *sync.Cond
	outbox     []Envelope
	outHead    int
	outClosed  bool
	writerDone chan struct{}

	mu        sync.Mutex
	closed    bool
	neighbors map[string]int      // addr -> last advertised degree
	keys      map[string]struct{} // shared content
	seen      map[string]time.Time
	hitSent   map[string]time.Time
	pending   map[string]chan Message
	rng       *xrand.RNG

	stats peerStats
}

// peerStats mirrors Stats with atomic counters.
type peerStats struct {
	sent, received, dropped, shed    atomic.Int64
	queriesSeen, queriesForwarded    atomic.Int64
	hitsServed                       atomic.Int64
	connectsAccepted, connectsDenied atomic.Int64
}

// seenCap bounds the duplicate-suppression tables; beyond it, expired
// entries are pruned (and if none expired, the tables are reset — losing
// old GUIDs only risks re-answering a stale query, which is harmless).
const seenCap = 16384

// NewPeer registers a peer on the network and starts its dispatcher.
// Callers must eventually call Close or Leave.
func NewPeer(cfg Config, net Network) (*Peer, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = DefaultInboxSize
	}
	if cfg.OutboxSize <= 0 {
		cfg.OutboxSize = DefaultOutboxSize
	}
	if cfg.DiscoverWindow <= 0 {
		cfg.DiscoverWindow = DefaultDiscoverWindow
	}
	if cfg.MaxTTL <= 0 {
		cfg.MaxTTL = DefaultMaxTTL
	}
	p := &Peer{
		cfg:        cfg,
		net:        net,
		inbox:      make(chan Envelope, cfg.InboxSize),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
		neighbors:  make(map[string]int),
		keys:       make(map[string]struct{}, len(cfg.Keys)),
		seen:       make(map[string]time.Time),
		hitSent:    make(map[string]time.Time),
		pending:    make(map[string]chan Message),
		rng:        xrand.New(cfg.Seed),
	}
	p.outCond = sync.NewCond(&p.outMu)
	for _, k := range cfg.Keys {
		p.keys[k] = struct{}{}
	}
	if err := net.Register(cfg.Addr, p.inbox); err != nil {
		return nil, fmt.Errorf("register %s: %w", cfg.Addr, err)
	}
	go p.loop()
	go p.writer()
	return p, nil
}

// Addr returns the peer's address.
func (p *Peer) Addr() string { return p.cfg.Addr }

// Degree returns the current number of overlay links.
func (p *Peer) Degree() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.neighbors)
}

// Neighbors returns a snapshot of the peer's links, sorted by address.
func (p *Peer) Neighbors() []PeerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerInfo, 0, len(p.neighbors))
	for addr, deg := range p.neighbors {
		out = append(out, PeerInfo{Addr: addr, Degree: deg})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// HasKey reports whether the peer shares the given content key.
func (p *Peer) HasKey(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.keys[key]
	return ok
}

// AddKey publishes a content key on this peer.
func (p *Peer) AddKey(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.keys[key] = struct{}{}
}

// RemoveKey withdraws a content key.
func (p *Peer) RemoveKey(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.keys, key)
}

// Stats returns a snapshot of protocol counters.
func (p *Peer) Stats() Stats {
	return Stats{
		Sent:             p.stats.sent.Load(),
		Received:         p.stats.received.Load(),
		Dropped:          p.stats.dropped.Load(),
		Shed:             p.stats.shed.Load(),
		QueriesSeen:      p.stats.queriesSeen.Load(),
		QueriesForwarded: p.stats.queriesForwarded.Load(),
		HitsServed:       p.stats.hitsServed.Load(),
		ConnectsAccepted: p.stats.connectsAccepted.Load(),
		ConnectsRejected: p.stats.connectsDenied.Load(),
	}
}

// Close shuts the peer down without notifying neighbors (a crash, in
// protocol terms). Idempotent. Messages already queued in the outbox
// (e.g. Leave's disconnect notices) are flushed before the writer exits;
// sends enqueued after Close begins are silently discarded.
func (p *Peer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.net.Unregister(p.cfg.Addr)
	close(p.stop)
	<-p.done
	p.outMu.Lock()
	p.outClosed = true
	p.outCond.Broadcast()
	p.outMu.Unlock()
	<-p.writerDone
}

// Leave departs gracefully: it tells every neighbor to drop the link
// (paper §VI's join/leave future work), then closes.
func (p *Peer) Leave() {
	p.mu.Lock()
	addrs := make([]string, 0, len(p.neighbors))
	for a := range p.neighbors {
		addrs = append(addrs, a)
	}
	p.mu.Unlock()
	for _, a := range addrs {
		p.send(a, Message{Kind: KindDisconnect})
	}
	p.Close()
}

// send enqueues one message for the writer goroutine, shedding the
// oldest queued message when the outbox is full (best-effort delivery;
// unstructured overlays are loss-tolerant, and fresh traffic is worth
// more than stale traffic).
func (p *Peer) send(to string, msg Message) {
	env := Envelope{From: p.cfg.Addr, To: to, Msg: msg}
	p.outMu.Lock()
	if p.outClosed {
		p.outMu.Unlock()
		return
	}
	if len(p.outbox)-p.outHead >= p.cfg.OutboxSize {
		p.outbox[p.outHead] = Envelope{}
		p.outHead++
		p.stats.shed.Add(1)
	}
	if p.outHead >= p.cfg.OutboxSize {
		// Compact the consumed prefix so sustained shedding reuses the
		// backing array instead of growing it without bound.
		n := copy(p.outbox, p.outbox[p.outHead:])
		for i := n; i < len(p.outbox); i++ {
			p.outbox[i] = Envelope{}
		}
		p.outbox = p.outbox[:n]
		p.outHead = 0
	}
	p.outbox = append(p.outbox, env)
	p.outCond.Signal()
	p.outMu.Unlock()
}

// writer is the single outbound goroutine: it drains the outbox to the
// transport in FIFO order, counting successes and failures. It exits
// only once the outbox is closed AND empty, so queued farewells flush on
// Close.
func (p *Peer) writer() {
	defer close(p.writerDone)
	for {
		p.outMu.Lock()
		for p.outHead == len(p.outbox) && !p.outClosed {
			p.outCond.Wait()
		}
		if p.outHead == len(p.outbox) {
			p.outMu.Unlock()
			return // closed and drained
		}
		env := p.outbox[p.outHead]
		p.outbox[p.outHead] = Envelope{}
		p.outHead++
		if p.outHead == len(p.outbox) {
			// Reset the queue so the backing array is reused instead of
			// growing without bound.
			p.outbox = p.outbox[:0]
			p.outHead = 0
		}
		p.outMu.Unlock()
		if err := p.net.Send(env); err != nil {
			p.stats.dropped.Add(1)
			continue
		}
		p.stats.sent.Add(1)
	}
}

// newID mints a request GUID unique across the peer's lifetime.
func (p *Peer) newID() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Addr + "/" + strconv.FormatUint(p.rng.Uint64(), 36)
}

// await registers a reply channel for a request ID. The returned cancel
// must be called when the caller stops listening.
func (p *Peer) await(id string) (<-chan Message, func()) {
	ch := make(chan Message, 512)
	p.mu.Lock()
	p.pending[id] = ch
	p.mu.Unlock()
	cancel := func() {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
	}
	return ch, cancel
}

// route delivers a reply to its awaiting requester, dropping if nobody
// listens (late replies after timeout are normal).
func (p *Peer) route(id string, msg Message) {
	p.mu.Lock()
	ch, ok := p.pending[id]
	p.mu.Unlock()
	if !ok {
		return
	}
	select {
	case ch <- msg:
	default:
	}
}

// markSeen records a GUID in the given table, pruning when oversized.
// Returns false if the GUID was already present.
func (p *Peer) markSeen(table map[string]time.Time, id string) bool {
	if _, dup := table[id]; dup {
		return false
	}
	if len(table) >= seenCap {
		cutoff := time.Now().Add(-time.Minute)
		for k, t := range table {
			if t.Before(cutoff) {
				delete(table, k)
			}
		}
		if len(table) >= seenCap {
			for k := range table {
				delete(table, k)
			}
		}
	}
	table[id] = time.Now()
	return true
}

// loop is the dispatcher goroutine.
func (p *Peer) loop() {
	defer close(p.done)
	for {
		select {
		case env := <-p.inbox:
			p.stats.received.Add(1)
			p.handle(env)
		case <-p.stop:
			return
		}
	}
}

// handle dispatches one envelope. It runs only on the dispatcher
// goroutine.
func (p *Peer) handle(env Envelope) {
	switch env.Msg.Kind {
	case KindDiscover:
		p.handleDiscover(env)
	case KindDiscoverReply, KindConnectReply, KindNeighborReply, KindQueryHit, KindPong, KindPeersReply:
		if env.Msg.Kind == KindPong {
			p.refreshNeighborDegree(env.From, env.Msg.Degree)
		}
		p.route(env.Msg.ID, env.Msg)
	case KindConnect:
		p.handleConnect(env)
	case KindDisconnect:
		p.mu.Lock()
		delete(p.neighbors, env.From)
		p.mu.Unlock()
	case KindQuery:
		p.handleQuery(env)
	case KindNeighborReq:
		p.handleNeighborReq(env)
	case KindPeersReq:
		p.send(env.From, Message{Kind: KindPeersReply, ID: env.Msg.ID, Peers: p.Neighbors(), Degree: p.advertisedDegree(p.Degree())})
	case KindPing:
		p.send(env.From, Message{Kind: KindPong, ID: env.Msg.ID, Degree: p.advertisedDegree(p.Degree())})
	}
}

// advertisedDegree returns the degree this peer reports in protocol
// replies: the truth, unless Behavior.FakeDegree overrides it.
func (p *Peer) advertisedDegree(real int) int {
	if fd := p.cfg.Behavior.FakeDegree; fd > 0 {
		return fd
	}
	return real
}

// forgetNeighbor removes a link unilaterally — the neighbor is presumed
// dead, so no Disconnect is sent. Reports whether a link was removed.
func (p *Peer) forgetNeighbor(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.neighbors[addr]; !ok {
		return false
	}
	delete(p.neighbors, addr)
	return true
}

func (p *Peer) refreshNeighborDegree(addr string, degree int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.neighbors[addr]; ok {
		p.neighbors[addr] = degree
	}
}

// handleDiscover answers and propagates a DAPA horizon flood: reply with
// our own info directly to the origin, then forward with decremented TTL
// to all neighbors except the sender, suppressing duplicates by GUID.
func (p *Peer) handleDiscover(env Envelope) {
	msg := env.Msg
	if msg.TTL > p.cfg.MaxTTL {
		msg.TTL = p.cfg.MaxTTL // clamp hostile TTLs (amplification guard)
	}
	p.mu.Lock()
	fresh := p.markSeen(p.seen, msg.ID)
	degree := len(p.neighbors)
	var fwd []string
	if fresh && msg.TTL > 1 {
		for a := range p.neighbors {
			if a != env.From && a != msg.Origin {
				fwd = append(fwd, a)
			}
		}
	}
	p.mu.Unlock()
	if !fresh {
		return
	}
	if msg.Origin != p.cfg.Addr {
		p.send(msg.Origin, Message{
			Kind:  KindDiscoverReply,
			ID:    msg.ID,
			Peers: []PeerInfo{{Addr: p.cfg.Addr, Degree: p.advertisedDegree(degree)}},
		})
	}
	next := Message{
		Kind: KindDiscover, ID: msg.ID, Origin: msg.Origin,
		TTL: msg.TTL - 1, Hops: msg.Hops + 1,
	}
	for _, a := range fwd {
		p.send(a, next)
	}
}

// handleConnect arbitrates an inbound link request against the hard
// cutoff. Acceptance installs the link immediately on this side; the
// requester installs it on receiving the acceptance.
func (p *Peer) handleConnect(env Envelope) {
	p.mu.Lock()
	_, already := p.neighbors[env.From]
	ok := !already && env.From != p.cfg.Addr &&
		!p.cfg.Behavior.RefuseConnects &&
		(p.cfg.KC == NoCutoff || len(p.neighbors) < p.cfg.KC)
	if ok {
		p.neighbors[env.From] = env.Msg.Degree
	}
	degree := len(p.neighbors)
	p.mu.Unlock()
	if ok {
		p.stats.connectsAccepted.Add(1)
	} else {
		p.stats.connectsDenied.Add(1)
	}
	p.send(env.From, Message{Kind: KindConnectReply, ID: env.Msg.ID, Accept: ok, Degree: p.advertisedDegree(degree)})
}

// handleNeighborReq serves the HAPA hop primitive: a uniformly random
// neighbor plus our own advertised degree.
func (p *Peer) handleNeighborReq(env Envelope) {
	p.mu.Lock()
	var pick PeerInfo
	if len(p.neighbors) > 0 {
		idx := p.rng.Intn(len(p.neighbors))
		for a, d := range p.neighbors {
			if idx == 0 {
				pick = PeerInfo{Addr: a, Degree: d}
				break
			}
			idx--
		}
	}
	degree := len(p.neighbors)
	p.mu.Unlock()
	reply := Message{Kind: KindNeighborReply, ID: env.Msg.ID, Degree: p.advertisedDegree(degree)}
	if pick.Addr != "" {
		reply.Peers = []PeerInfo{pick}
	}
	p.send(env.From, reply)
}

// handleQuery implements the live search protocols. Local matches are
// reported directly to the origin (Gnutella query-hit routing). Forwarding
// follows the algorithm: FL to all neighbors but the sender, NF to at most
// KMin random neighbors, RW to exactly one (revisits allowed, so RW skips
// GUID suppression for propagation but still deduplicates hit reports).
func (p *Peer) handleQuery(env Envelope) {
	msg := env.Msg
	if msg.TTL > p.cfg.MaxTTL {
		msg.TTL = p.cfg.MaxTTL // clamp hostile TTLs (amplification guard)
	}
	p.mu.Lock()
	if msg.Alg != AlgRW {
		if !p.markSeen(p.seen, msg.ID) {
			p.mu.Unlock()
			return
		}
		p.stats.queriesSeen.Add(1)
	}
	_, match := p.keys[msg.Key]
	reportHit := match && msg.Origin != p.cfg.Addr &&
		!p.cfg.Behavior.NeverServeHits && p.markSeen(p.hitSent, msg.ID)
	degree := len(p.neighbors)
	// A freerider relays nothing with probability DropQueryProb; it still
	// answers (or leeches) above, so the defection is invisible upstream.
	dropped := p.cfg.Behavior.DropQueryProb > 0 && p.rng.Bool(p.cfg.Behavior.DropQueryProb)
	// Candidate forward set: neighbors except the sender.
	var cands []string
	if msg.TTL > 1 && !dropped {
		for a := range p.neighbors {
			if a != env.From {
				cands = append(cands, a)
			}
		}
	}
	var targets []string
	switch msg.Alg {
	case AlgNF:
		k := msg.KMin
		if k < 1 {
			k = 1
		}
		if len(cands) > k {
			p.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			cands = cands[:k]
		}
		targets = cands
	case AlgRW:
		if len(cands) > 0 {
			targets = []string{cands[p.rng.Intn(len(cands))]}
		} else if msg.TTL > 1 && env.From != "" {
			// Dead end: backtrack (mirrors search.RandomWalk).
			if _, ok := p.neighbors[env.From]; ok {
				targets = []string{env.From}
			}
		}
	default: // AlgFlood
		targets = cands
	}
	p.mu.Unlock()

	if reportHit {
		p.stats.hitsServed.Add(1)
		p.send(msg.Origin, Message{
			Kind: KindQueryHit, ID: msg.ID, Key: msg.Key, Hops: msg.Hops,
			Peers: []PeerInfo{{Addr: p.cfg.Addr, Degree: p.advertisedDegree(degree)}},
		})
	}
	if len(targets) == 0 {
		return
	}
	next := msg
	next.TTL--
	next.Hops++
	for _, a := range targets {
		p.stats.queriesForwarded.Add(1)
		p.send(a, next)
	}
}
