package p2p

// Live-vs-static validation: the live query protocols and the static
// simulator (internal/search) implement the same algorithms; running both
// on the same topology must agree. This is the strongest correctness check
// in the repository — two independent implementations cross-validated.

import (
	"fmt"
	"testing"
	"time"

	"scalefree/internal/search"
)

func TestLiveFloodMatchesStaticFlood(t *testing.T) {
	t.Parallel()
	// Grow a live overlay, snapshot it, and compare: a live FL query's
	// hit count for a universal key must equal the static flood's
	// coverage (minus the origin) at the same TTL.
	o := newTestOverlay(t, OverlayConfig{M: 2, KC: 15, TauSub: 4, Strategy: JoinDAPA, Seed: 171})
	const n = 40
	if err := o.Grow(n, func(i int) []string { return []string{"everywhere"} }); err != nil {
		t.Fatal(err)
	}
	g, id := o.Snapshot()

	for _, ttl := range []int{2, 4, 6} {
		srcAddr := o.Addrs()[0]
		src := o.Peer(srcAddr)
		static, err := search.Flood(g, id[srcAddr], ttl)
		if err != nil {
			t.Fatal(err)
		}
		wantHits := static.HitsAt(ttl) - 1 // origin doesn't self-report
		// The live query collects hits for a fixed window; on a saturated
		// machine a reply can arrive late, so retry the (idempotent) query
		// a few times before declaring a mismatch.
		got := -1
		for attempt := 0; attempt < 5; attempt++ {
			res, err := src.Query("everywhere", AlgFlood, ttl)
			if err != nil {
				t.Fatal(err)
			}
			got = len(res.Hits)
			if got == wantHits {
				break
			}
		}
		if got != wantHits {
			t.Fatalf("ttl=%d: live flood hit %d peers, static says %d",
				ttl, got, wantHits)
		}
	}
}

func TestLiveNFWithinStaticEnvelope(t *testing.T) {
	t.Parallel()
	// NF is randomized, so live and static runs differ draw to draw; but
	// live NF coverage must sit inside [1, static FL coverage] and scale
	// with TTL.
	o := newTestOverlay(t, OverlayConfig{M: 2, KC: 15, TauSub: 4, Strategy: JoinDAPA, Seed: 173})
	if err := o.Grow(40, func(i int) []string { return []string{"everywhere"} }); err != nil {
		t.Fatal(err)
	}
	g, id := o.Snapshot()
	srcAddr := o.Addrs()[0]
	src := o.Peer(srcAddr)

	const ttl = 5
	res, err := src.Query("everywhere", AlgNF, ttl)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := search.Flood(g, id[srcAddr], ttl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) < 1 || len(res.Hits) > fl.HitsAt(ttl)-1 {
		t.Fatalf("live NF hits %d outside [1, %d]", len(res.Hits), fl.HitsAt(ttl)-1)
	}
}

func TestLiveRWHitCountBounded(t *testing.T) {
	t.Parallel()
	// A live walker with TTL t visits at most t peers beyond the origin.
	o := newTestOverlay(t, OverlayConfig{M: 2, TauSub: 4, Strategy: JoinDAPA, Seed: 177})
	if err := o.Grow(30, func(i int) []string { return []string{"everywhere"} }); err != nil {
		t.Fatal(err)
	}
	src := o.Peer(o.Addrs()[0])
	const ttl = 8
	res, err := src.Query("everywhere", AlgRW, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) > ttl {
		t.Fatalf("walker with ttl=%d reported %d hits", ttl, len(res.Hits))
	}
	if len(res.Hits) == 0 {
		t.Fatal("walker found nothing on a fully stocked overlay")
	}
}

func TestLiveMessagingCountsMatchProtocol(t *testing.T) {
	t.Parallel()
	// On a star overlay, a FL query from the hub sends exactly deg
	// messages; from a leaf, 1 + (deg-1).
	netw := NewInMemoryNetwork()
	hub := spawn(t, netw, testConfig("hub", 1))
	leaves := make([]*Peer, 4)
	for i := range leaves {
		leaves[i] = spawn(t, netw, testConfig(fmt.Sprintf("l%d", i), uint64(i+2)))
		if err := leaves[i].Connect("hub"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return hub.Degree() == 4 })

	if _, err := hub.Query("none", AlgFlood, 3); err != nil {
		t.Fatal(err)
	}
	if fwd := hub.Stats().QueriesForwarded; fwd != 4 {
		t.Fatalf("hub forwarded %d, want 4", fwd)
	}
	if _, err := leaves[0].Query("none", AlgFlood, 3); err != nil {
		t.Fatal(err)
	}
	// Leaf sends 1; after the hub processes, it forwards deg-1 = 3.
	if fwd := leaves[0].Stats().QueriesForwarded; fwd != 1 {
		t.Fatalf("leaf forwarded %d, want 1", fwd)
	}
	if !waitFor(t, time.Second, func() bool { return hub.Stats().QueriesForwarded == 4+3 }) {
		t.Fatalf("hub forwarded %d total, want 7", hub.Stats().QueriesForwarded)
	}
}
