package p2p

// Wire protocol. One flat Message struct with a Kind discriminator keeps
// the JSON framing trivial for the TCP transport and avoids interface
// marshaling machinery; unused fields are omitted from the wire.

// Kind discriminates protocol messages.
type Kind string

// Protocol message kinds.
const (
	// KindDiscover floods a peer-discovery query TTL hops through the
	// overlay (the DAPA horizon query, Appendix D).
	KindDiscover Kind = "discover"
	// KindDiscoverReply returns a discovered peer's info directly to the
	// discovery origin.
	KindDiscoverReply Kind = "discover-reply"
	// KindConnect requests a new overlay link.
	KindConnect Kind = "connect"
	// KindConnectReply accepts or rejects a link request.
	KindConnectReply Kind = "connect-reply"
	// KindDisconnect tears down a link (graceful leave).
	KindDisconnect Kind = "disconnect"
	// KindQuery carries a content search (FL, NF, or RW per Alg).
	KindQuery Kind = "query"
	// KindQueryHit reports a local match directly to the query origin.
	KindQueryHit Kind = "query-hit"
	// KindNeighborReq asks a peer for one uniformly random neighbor
	// (the HAPA hop primitive, RANDOM_LINK in Appendix C).
	KindNeighborReq Kind = "neighbor-req"
	// KindNeighborReply answers KindNeighborReq with the sampled
	// neighbor and the replying peer's own info.
	KindNeighborReply Kind = "neighbor-reply"
	// KindPeersReq asks a peer for its full neighbor list (peer
	// exchange, the primitive topology crawlers use).
	KindPeersReq Kind = "peers-req"
	// KindPeersReply answers KindPeersReq.
	KindPeersReply Kind = "peers-reply"
	// KindPing and KindPong probe liveness and refresh degree caches.
	KindPing Kind = "ping"
	KindPong Kind = "pong"
	// KindCoord carries one coordinator/worker protocol message
	// (internal/coord) as an opaque payload in Data. The experiment
	// orchestration protocol rides the same transports — and the same
	// fault injection — as the overlay protocol without this package
	// knowing its message set.
	KindCoord Kind = "coord"
)

// Alg names the live search algorithms carried in queries.
type Alg string

// Live search algorithms (§V-A).
const (
	AlgFlood Alg = "fl"
	AlgNF    Alg = "nf"
	AlgRW    Alg = "rw"
)

// Message is the single wire message. Fields are populated per Kind; see
// the Kind constants for semantics.
type Message struct {
	Kind Kind `json:"kind"`
	// ID identifies a request/flood instance (GUID for duplicate
	// suppression).
	ID string `json:"id,omitempty"`
	// Origin is the address replies should be sent to.
	Origin string `json:"origin,omitempty"`
	// TTL is the remaining hop budget; Hops counts hops taken so far.
	TTL  int `json:"ttl,omitempty"`
	Hops int `json:"hops,omitempty"`
	// Key is the content key being searched.
	Key string `json:"key,omitempty"`
	// Alg selects the live search algorithm for KindQuery.
	Alg Alg `json:"alg,omitempty"`
	// KMin is the NF fan-out carried with the query.
	KMin int `json:"kmin,omitempty"`
	// Peers carries discovery results / hit reporters.
	Peers []PeerInfo `json:"peers,omitempty"`
	// Degree advertises the sender's degree (connect negotiation,
	// neighbor replies).
	Degree int `json:"degree,omitempty"`
	// Accept is the connect verdict.
	Accept bool `json:"accept,omitempty"`
	// Data is an opaque payload for embedded protocols (KindCoord).
	Data []byte `json:"data,omitempty"`
}

// Envelope is a routed message.
type Envelope struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Msg  Message `json:"msg"`
}
