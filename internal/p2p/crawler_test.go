package p2p

import (
	"testing"
	"time"
)

func TestPeersOf(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	hub := spawn(t, netw, testConfig("hub", 1))
	for _, a := range []string{"x", "y", "z"} {
		p := spawn(t, netw, testConfig(a, uint64(len(a))))
		if err := p.Connect("hub"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return hub.Degree() == 3 })
	probe := spawn(t, netw, testConfig("probe", 9))
	nbs, err := probe.PeersOf("hub")
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 3 {
		t.Fatalf("peer exchange returned %v", nbs)
	}
}

func TestPeersOfDead(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	probe := spawn(t, netw, testConfig("probe", 1))
	if _, err := probe.PeersOf("ghost"); err == nil {
		t.Fatal("peer exchange with a ghost should fail")
	}
}

func TestCrawlReconstructsOverlay(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, KC: 12, TauSub: 4, Strategy: JoinDAPA, Seed: 41})
	if err := o.Grow(50, nil); err != nil {
		t.Fatal(err)
	}
	crawler, err := NewPeer(Config{
		Addr: "crawler", M: 1, TauSub: 1, Seed: 999,
		DiscoverWindow: 60 * time.Millisecond,
	}, o.Net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(crawler.Close)

	res, err := crawler.Crawl(o.Addrs()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, truthID := o.Snapshot()
	if res.G.N() != truth.N() {
		t.Fatalf("crawl found %d peers, overlay has %d", res.G.N(), truth.N())
	}
	if res.G.M() != truth.M() {
		t.Fatalf("crawl found %d edges, overlay has %d", res.G.M(), truth.M())
	}
	// Spot-check degrees via the address mappings.
	for addr, cid := range res.ID {
		tid, ok := truthID[addr]
		if !ok {
			t.Fatalf("crawler invented peer %s", addr)
		}
		if res.G.Degree(cid) != truth.Degree(tid) {
			t.Fatalf("%s: crawled degree %d, true degree %d", addr, res.G.Degree(cid), truth.Degree(tid))
		}
	}
	if len(res.Unresponsive) != 0 {
		t.Fatalf("unresponsive on a healthy overlay: %v", res.Unresponsive)
	}
}

func TestCrawlBounded(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, TauSub: 4, Strategy: JoinDAPA, Seed: 43})
	if err := o.Grow(40, nil); err != nil {
		t.Fatal(err)
	}
	crawler, err := NewPeer(Config{
		Addr: "crawler", M: 1, TauSub: 1, Seed: 1000,
		DiscoverWindow: 60 * time.Millisecond,
	}, o.Net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(crawler.Close)
	res, err := crawler.Crawl(o.Addrs()[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded crawl visits at most 10 peers but may reference more
	// through their neighbor lists.
	if res.G.N() < 10 {
		t.Fatalf("crawl too small: %d", res.G.N())
	}
}

func TestCrawlSurvivesDepartures(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, TauSub: 4, Strategy: JoinDAPA, Seed: 47})
	if err := o.Grow(20, nil); err != nil {
		t.Fatal(err)
	}
	// Crash one peer; its neighbors still advertise it.
	victim := o.Addrs()[5]
	o.Remove(victim, false)
	crawler, err := NewPeer(Config{
		Addr: "crawler", M: 1, TauSub: 1, Seed: 1001,
		DiscoverWindow: 40 * time.Millisecond,
	}, o.Net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(crawler.Close)
	res, err := crawler.Crawl(o.Addrs()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Unresponsive {
		if a == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("crashed peer %s not reported unresponsive (got %v)", victim, res.Unresponsive)
	}
}

func TestCrawlValidation(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	probe := spawn(t, netw, testConfig("probe", 1))
	if _, err := probe.Crawl("", 0); err == nil {
		t.Fatal("empty bootstrap should fail")
	}
}
