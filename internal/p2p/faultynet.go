package p2p

import (
	"sync"
	"sync/atomic"
	"time"

	"scalefree/internal/xrand"
)

// FaultConfig parameterizes a FaultyNetwork. The zero value injects
// nothing: every fault class is off, and the wrapper is byte-transparent
// (pinned by test). Each probability enables one fault class
// independently; fault decisions are drawn from a private xrand stream
// seeded by Seed, so a given send sequence sees the same fault schedule
// on every run.
type FaultConfig struct {
	// Seed derives the fault schedule's RNG stream.
	Seed uint64
	// Drop is the probability a send is silently discarded.
	Drop float64
	// Dup is the probability a delivered send is delivered twice.
	Dup float64
	// DelayProb is the probability a send is held back and delivered
	// asynchronously after a uniform delay in (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds the injected delay; <= 0 disables delays even when
	// DelayProb > 0.
	MaxDelay time.Duration
	// Reorder is the probability a send is held back and delivered after
	// the next send instead of before it (adjacent swap).
	Reorder float64
}

// Enabled reports whether any fault class can fire.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || (c.DelayProb > 0 && c.MaxDelay > 0) || c.Reorder > 0
}

// FaultStats counts what a FaultyNetwork did to the traffic.
type FaultStats struct {
	// Delivered counts envelopes handed to the inner network (duplicates
	// count once; the extra copy is under Duplicated).
	Delivered int64
	// Dropped counts envelopes discarded by the Drop class.
	Dropped int64
	// Duplicated counts extra copies injected by the Dup class.
	Duplicated int64
	// Delayed counts envelopes deferred by the delay class.
	Delayed int64
	// Reordered counts envelopes held back by the reorder class.
	Reordered int64
	// PartitionDropped counts envelopes discarded because sender and
	// receiver sat in different named partitions.
	PartitionDropped int64
}

// FaultyNetwork wraps any Network and injects drops, delays, duplicates,
// reorders, and named partitions from a deterministic xrand-derived
// schedule — the substrate for reproducible robustness experiments. With
// a zero FaultConfig and no partitions it forwards every call unchanged.
//
// Determinism: fault decisions are consumed from one seeded stream in
// send order, with draws taken only for enabled fault classes (in the
// fixed order drop, dup, delay, reorder). A serialized send sequence
// therefore sees an identical fault schedule across runs; concurrent
// senders interleave draws in arrival order, as any shared transport
// would.
type FaultyNetwork struct {
	inner Network
	cfg   FaultConfig

	mu     sync.Mutex
	rng    *xrand.RNG
	groups map[string]string // addr -> partition name; absent = group ""
	held   *Envelope         // reorder buffer (at most one in flight)
	closed bool
	timers sync.WaitGroup
	// partitioned mirrors groups != nil so the transparent fast path can
	// check it without the mutex.
	partitioned atomic.Bool

	delivered, dropped, duplicated  atomic.Int64
	delayed, reordered, partDropped atomic.Int64
}

var _ Network = (*FaultyNetwork)(nil)

// NewFaultyNetwork wraps inner with the given fault schedule.
func NewFaultyNetwork(inner Network, cfg FaultConfig) *FaultyNetwork {
	return &FaultyNetwork{
		inner: inner,
		cfg:   cfg,
		rng:   xrand.New(cfg.Seed),
	}
}

// Register implements Network by forwarding to the inner transport.
func (f *FaultyNetwork) Register(addr string, inbox chan<- Envelope) error {
	return f.inner.Register(addr, inbox)
}

// Unregister implements Network by forwarding to the inner transport.
func (f *FaultyNetwork) Unregister(addr string) {
	f.inner.Unregister(addr)
}

// Partition assigns addrs to the named group. Envelopes between
// different groups are dropped until Heal; addresses never assigned sit
// in the implicit "" group (so one Partition call splits the named
// members from everyone else). Re-assigning an address moves it.
func (f *FaultyNetwork) Partition(name string, addrs ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.groups == nil {
		f.groups = make(map[string]string)
	}
	for _, a := range addrs {
		f.groups[a] = name
	}
	f.partitioned.Store(true)
}

// Heal removes all partitions.
func (f *FaultyNetwork) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.groups = nil
	f.partitioned.Store(false)
}

// Stats returns a snapshot of the fault counters.
func (f *FaultyNetwork) Stats() FaultStats {
	return FaultStats{
		Delivered:        f.delivered.Load(),
		Dropped:          f.dropped.Load(),
		Duplicated:       f.duplicated.Load(),
		Delayed:          f.delayed.Load(),
		Reordered:        f.reordered.Load(),
		PartitionDropped: f.partDropped.Load(),
	}
}

// Send implements Network. Injected losses (drop, partition) return nil:
// from the sender's point of view the message went out — that is what
// makes them faults rather than errors. Delayed and reordered envelopes
// also return nil and surface later; only envelopes forwarded inline
// propagate the inner transport's error.
func (f *FaultyNetwork) Send(env Envelope) error {
	// Fast path: nothing can fire, no partitions, no held traffic — stay
	// byte-transparent without even taking the mutex. The schedule path
	// lives in its own method so its delay closure (which makes env
	// escape) cannot force a heap allocation on this path.
	if !f.cfg.Enabled() && !f.partitioned.Load() {
		err := f.inner.Send(env)
		if err == nil {
			f.delivered.Add(1)
		}
		return err
	}
	return f.sendFaulty(env)
}

// sendFaulty runs the full fault schedule for one envelope.
func (f *FaultyNetwork) sendFaulty(env Envelope) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrPeerClosed
	}
	if f.groups != nil && f.groups[env.From] != f.groups[env.To] {
		f.mu.Unlock()
		f.partDropped.Add(1)
		return nil
	}
	// Draw order is fixed (drop, dup, delay, reorder) and skips disabled
	// classes, so a schedule depends only on the enabled set and the send
	// sequence.
	if f.cfg.Drop > 0 && f.rng.Float64() < f.cfg.Drop {
		f.mu.Unlock()
		f.dropped.Add(1)
		return nil
	}
	dup := f.cfg.Dup > 0 && f.rng.Float64() < f.cfg.Dup
	var delay time.Duration
	if f.cfg.DelayProb > 0 && f.cfg.MaxDelay > 0 && f.rng.Float64() < f.cfg.DelayProb {
		delay = time.Duration(f.rng.Float64() * float64(f.cfg.MaxDelay))
		if delay <= 0 {
			delay = 1
		}
	}
	reorder := delay == 0 && f.cfg.Reorder > 0 && f.rng.Float64() < f.cfg.Reorder

	if delay > 0 {
		f.timers.Add(1)
		time.AfterFunc(delay, func() {
			defer f.timers.Done()
			f.deliver(env, dup)
		})
		f.mu.Unlock()
		f.delayed.Add(1)
		return nil
	}
	if reorder && f.held == nil {
		// Hold this envelope; it goes out right after the next send.
		e := env
		f.held = &e
		f.mu.Unlock()
		f.reordered.Add(1)
		return nil
	}
	var flush *Envelope
	if f.held != nil {
		flush = f.held
		f.held = nil
	}
	f.mu.Unlock()

	err := f.deliver(env, dup)
	if flush != nil {
		f.deliver(*flush, false)
	}
	return err
}

// deliver forwards one envelope (plus an optional duplicate) to the
// inner transport, outside the schedule mutex so slow transports (TCP
// dials) never stall the fault schedule.
func (f *FaultyNetwork) deliver(env Envelope, dup bool) error {
	err := f.inner.Send(env)
	if err == nil {
		f.delivered.Add(1)
	}
	if dup {
		if f.inner.Send(env) == nil {
			f.duplicated.Add(1)
		}
	}
	return err
}

// Flush delivers any held reordered envelope and waits for all pending
// delayed deliveries — useful before tearing a test down or taking
// counters that must account for every send.
func (f *FaultyNetwork) Flush() {
	f.mu.Lock()
	var flush *Envelope
	if f.held != nil {
		flush = f.held
		f.held = nil
	}
	f.mu.Unlock()
	if flush != nil {
		f.deliver(*flush, false)
	}
	f.timers.Wait()
}

// Close flushes pending injected traffic, stops accepting sends on the
// fault path, and closes the inner network if it supports closing.
func (f *FaultyNetwork) Close() {
	f.mu.Lock()
	f.closed = true
	f.held = nil
	f.mu.Unlock()
	f.timers.Wait()
	if c, ok := f.inner.(interface{ Close() }); ok {
		c.Close()
	}
}
