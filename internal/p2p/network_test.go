package p2p

import (
	"errors"
	"testing"
)

// TestInMemoryUnregisterIdempotent pins the Unregister hardening: double
// unregisters, unknown addresses, and unregisters on a closed network
// are all silent no-ops, and the address is immediately reusable.
func TestInMemoryUnregisterIdempotent(t *testing.T) {
	t.Parallel()
	n := NewInMemoryNetwork()
	inbox := make(chan Envelope, 1)
	if err := n.Register("a", inbox); err != nil {
		t.Fatal(err)
	}
	n.Unregister("a")
	n.Unregister("a")     // double unregister
	n.Unregister("ghost") // never registered
	if err := n.Send(Envelope{To: "a"}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send after unregister: %v", err)
	}
	// The slot is free again.
	if err := n.Register("a", make(chan Envelope, 1)); err != nil {
		t.Fatalf("re-register after unregister: %v", err)
	}
}

func TestInMemoryUnregisterAfterClose(t *testing.T) {
	t.Parallel()
	n := NewInMemoryNetwork()
	if err := n.Register("a", make(chan Envelope, 1)); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Unregister("a") // must not panic or resurrect anything
	n.Unregister("a")
	if err := n.Register("b", make(chan Envelope, 1)); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("register on closed network: %v", err)
	}
	if err := n.Send(Envelope{To: "a"}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send on closed network: %v", err)
	}
}

func TestInMemoryDoubleClose(t *testing.T) {
	t.Parallel()
	n := NewInMemoryNetwork()
	n.Close()
	n.Close() // idempotent
}
