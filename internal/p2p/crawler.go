package p2p

import (
	"fmt"
	"time"

	"scalefree/internal/graph"
)

// This file implements a topology crawler: the measurement tool Gnutella
// researchers used to obtain the degree distributions this paper starts
// from. The crawler is a regular peer that walks the overlay via
// peer-exchange messages only — no global state — and reconstructs the
// connectivity graph.

// PeersOf requests the full neighbor list of addr (peer exchange).
func (p *Peer) PeersOf(addr string) ([]PeerInfo, error) {
	id := p.newID()
	ch, cancel := p.await(id)
	defer cancel()
	p.send(addr, Message{Kind: KindPeersReq, ID: id})
	deadline := time.NewTimer(p.cfg.DiscoverWindow)
	defer deadline.Stop()
	select {
	case msg := <-ch:
		return msg.Peers, nil
	case <-deadline.C:
		return nil, fmt.Errorf("p2p: peers-of %s timed out", addr)
	case <-p.stop:
		return nil, ErrPeerClosed
	}
}

// Frozen returns the crawled topology as a CSR snapshot — the natural
// form for analyzing a finished crawl (clustering, cores, betweenness,
// search replay), since a crawl result is read-only by construction.
func (r CrawlResult) Frozen() *graph.Frozen { return r.G.Freeze() }

// CrawlResult is a reconstructed overlay topology.
type CrawlResult struct {
	// G is the crawled connectivity graph; node IDs follow discovery
	// order.
	G *graph.Graph
	// ID maps peer address -> node ID.
	ID map[string]int
	// Addr maps node ID -> peer address.
	Addr []string
	// Unresponsive lists addresses that were referenced by neighbors but
	// never answered peer exchange (departed or overloaded peers).
	Unresponsive []string
}

// Crawl maps the overlay by breadth-first peer exchange starting from
// `bootstrap`, visiting at most maxPeers peers (0 = unbounded). The
// crawling peer itself does not need to be joined to the overlay. The
// result mirrors what a Gnutella crawler sees: edges are reported by
// either endpoint, and peers that vanish mid-crawl appear in
// Unresponsive with whatever links their neighbors advertised.
func (p *Peer) Crawl(bootstrap string, maxPeers int) (CrawlResult, error) {
	res := CrawlResult{
		G:  graph.New(0),
		ID: make(map[string]int),
	}
	if bootstrap == "" {
		return res, fmt.Errorf("%w: empty bootstrap", ErrBadConfig)
	}
	nodeOf := func(addr string) int {
		if id, ok := res.ID[addr]; ok {
			return id
		}
		id := res.G.AddNode()
		res.ID[addr] = id
		res.Addr = append(res.Addr, addr)
		return id
	}

	queue := []string{bootstrap}
	nodeOf(bootstrap)
	visited := map[string]bool{}
	for head := 0; head < len(queue); head++ {
		addr := queue[head]
		if visited[addr] {
			continue
		}
		if maxPeers > 0 && len(visited) >= maxPeers {
			break
		}
		visited[addr] = true
		nbs, err := p.PeersOf(addr)
		if err != nil {
			res.Unresponsive = append(res.Unresponsive, addr)
			continue
		}
		u := nodeOf(addr)
		for _, nb := range nbs {
			if nb.Addr == p.cfg.Addr {
				continue // ignore the crawler's own probe links
			}
			v := nodeOf(nb.Addr)
			if !res.G.HasEdge(u, v) && u != v {
				// Edge insertion cannot fail: both IDs were just minted.
				if err := res.G.AddEdge(u, v); err != nil {
					return res, fmt.Errorf("crawl edge: %w", err)
				}
			}
			if !visited[nb.Addr] {
				queue = append(queue, nb.Addr)
			}
		}
	}
	return res, nil
}
