package p2p

import (
	"fmt"
	"strconv"
	"time"
)

// This file implements the client side of overlay membership: discovery,
// connection negotiation, and the three join strategies. Everything here
// uses only information obtained through messages — there is no global
// state, which is the operational form of the paper's Table II locality
// claims.

// Discover floods a peer-discovery query ttl hops starting at `via`
// (a bootstrap address, or one of the peer's own neighbors) and returns
// the peers heard back within the configured window, deduplicated, sorted
// by address. This is the live form of DAPA's substrate horizon query.
func (p *Peer) Discover(via string, ttl int) ([]PeerInfo, error) {
	if ttl < 1 {
		return nil, fmt.Errorf("p2p: discover TTL %d must be >= 1", ttl)
	}
	id := p.newID()
	ch, cancel := p.await(id)
	defer cancel()
	p.mu.Lock()
	p.markSeen(p.seen, id) // never answer or re-forward our own flood
	p.mu.Unlock()
	p.send(via, Message{Kind: KindDiscover, ID: id, Origin: p.cfg.Addr, TTL: ttl})

	byAddr := map[string]PeerInfo{}
	deadline := time.NewTimer(p.cfg.DiscoverWindow)
	defer deadline.Stop()
	for {
		select {
		case msg := <-ch:
			for _, pi := range msg.Peers {
				if pi.Addr != p.cfg.Addr {
					byAddr[pi.Addr] = pi
				}
			}
		case <-deadline.C:
			out := make([]PeerInfo, 0, len(byAddr))
			for _, pi := range byAddr {
				out = append(out, pi)
			}
			sortPeers(out)
			return out, nil
		case <-p.stop:
			return nil, ErrPeerClosed
		}
	}
}

func sortPeers(ps []PeerInfo) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Addr < ps[j-1].Addr; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Connect negotiates one overlay link with the target. It respects the
// local hard cutoff, waits one window for the verdict, and returns
// ErrSaturated if the target declined.
func (p *Peer) Connect(target string) error {
	p.mu.Lock()
	if _, dup := p.neighbors[target]; dup || target == p.cfg.Addr {
		p.mu.Unlock()
		return nil // already linked (or self); not an error
	}
	if p.cfg.KC != NoCutoff && len(p.neighbors) >= p.cfg.KC {
		p.mu.Unlock()
		return fmt.Errorf("%w: local degree at kc=%d", ErrSaturated, p.cfg.KC)
	}
	degree := len(p.neighbors)
	p.mu.Unlock()

	id := p.newID()
	ch, cancel := p.await(id)
	defer cancel()
	p.send(target, Message{Kind: KindConnect, ID: id, Degree: degree})
	deadline := time.NewTimer(p.cfg.DiscoverWindow)
	defer deadline.Stop()
	select {
	case msg := <-ch:
		if !msg.Accept {
			return fmt.Errorf("%w: %s", ErrSaturated, target)
		}
		p.mu.Lock()
		p.neighbors[target] = msg.Degree
		p.mu.Unlock()
		return nil
	case <-deadline.C:
		return fmt.Errorf("p2p: connect to %s timed out", target)
	case <-p.stop:
		return ErrPeerClosed
	}
}

// Disconnect drops the link to target on both sides.
func (p *Peer) Disconnect(target string) {
	p.mu.Lock()
	_, ok := p.neighbors[target]
	delete(p.neighbors, target)
	p.mu.Unlock()
	if ok {
		p.send(target, Message{Kind: KindDisconnect})
	}
}

// Join attaches this peer to the overlay reachable through the bootstrap
// address using the given strategy, trying to establish M links. It
// returns the number of links actually made; fewer than M is not an error
// (the paper's DAPA admits nodes that find at least one peer), but zero
// links returns ErrJoinFailed.
func (p *Peer) Join(bootstrap string, strategy JoinStrategy) (int, error) {
	switch strategy {
	case JoinDAPA:
		return p.joinDAPA(bootstrap)
	case JoinHAPA:
		return p.joinHAPA(bootstrap)
	case JoinRandom:
		return p.joinRandom(bootstrap)
	default:
		return 0, fmt.Errorf("%w: unknown join strategy %d", ErrBadConfig, int(strategy))
	}
}

// joinDAPA is the live Discover-and-Attempt join (Appendix D): flood a
// discovery query τ_sub hops from the bootstrap, then attach
// preferentially by advertised degree, re-drawing when a candidate is
// saturated. If the horizon holds at most M peers, connect to all of them.
func (p *Peer) joinDAPA(bootstrap string) (int, error) {
	peers, err := p.Discover(bootstrap, p.cfg.TauSub)
	if err != nil {
		return 0, err
	}
	if len(peers) == 0 {
		// The bootstrap itself is in our horizon even if it forwarded to
		// nobody; fall back to connecting to it directly.
		peers = []PeerInfo{{Addr: bootstrap, Degree: 1}}
	}
	if len(peers) <= p.cfg.M {
		made := 0
		for _, pi := range peers {
			if p.Connect(pi.Addr) == nil {
				made++
			}
		}
		return joined(made)
	}
	eligible := append([]PeerInfo(nil), peers...)
	made := 0
	for made < p.cfg.M && len(eligible) > 0 {
		idx := p.chooseByDegree(eligible)
		cand := eligible[idx]
		eligible = append(eligible[:idx], eligible[idx+1:]...)
		if p.Connect(cand.Addr) == nil {
			made++
		}
	}
	return joined(made)
}

// chooseByDegree draws an index proportionally to advertised degree
// (degree 0 counts as 1 so newly joined peers remain reachable).
func (p *Peer) chooseByDegree(peers []PeerInfo) int {
	weights := make([]float64, len(peers))
	for i, pi := range peers {
		w := float64(pi.Degree)
		if w < 1 {
			w = 1
		}
		weights[i] = w
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := p.rng.Choose(weights)
	if idx < 0 {
		return 0
	}
	return idx
}

// hapaJoinHopBudget bounds the live hop walk.
const hapaJoinHopBudget = 512

// joinHAPA is the live Hop-and-Attempt join (Appendix C): start at the
// bootstrap, attempt a degree-proportional connection at each stop, and
// hop along a random link of the current peer. The paper's acceptance
// probability k/k_total needs the global total degree, which no peer
// knows; the live protocol normalizes by the largest degree seen so far on
// the walk (a constant factor, which leaves the relative preference —
// and hence the attachment distribution — unchanged).
func (p *Peer) joinHAPA(bootstrap string) (int, error) {
	pos := bootstrap
	made := 0
	maxSeen := 1
	for hops := 0; hops < hapaJoinHopBudget && made < p.cfg.M; hops++ {
		info, next, err := p.probe(pos)
		if err != nil {
			// Walk broke (peer left): restart from the bootstrap.
			pos = bootstrap
			continue
		}
		if info.Degree > maxSeen {
			maxSeen = info.Degree
		}
		accept := func() bool {
			deg := info.Degree
			if deg < 1 {
				deg = 1
			}
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.rng.Float64() < float64(deg)/float64(maxSeen)
		}()
		if accept && p.Connect(pos) == nil {
			made++
		}
		if next == "" {
			pos = bootstrap
		} else {
			pos = next
		}
	}
	return joined(made)
}

// probe asks addr for its degree and one random neighbor (the HAPA hop).
func (p *Peer) probe(addr string) (info PeerInfo, next string, err error) {
	id := p.newID()
	ch, cancel := p.await(id)
	defer cancel()
	p.send(addr, Message{Kind: KindNeighborReq, ID: id})
	deadline := time.NewTimer(p.cfg.DiscoverWindow)
	defer deadline.Stop()
	select {
	case msg := <-ch:
		info = PeerInfo{Addr: addr, Degree: msg.Degree}
		if len(msg.Peers) > 0 {
			next = msg.Peers[0].Addr
		}
		return info, next, nil
	case <-deadline.C:
		return PeerInfo{}, "", fmt.Errorf("p2p: probe of %s timed out", addr)
	case <-p.stop:
		return PeerInfo{}, "", ErrPeerClosed
	}
}

// PruneDead probes every neighbor with a ping and drops the ones that do
// not answer within the reply window — the liveness sweep behind overlay
// maintenance (crashed peers never send Disconnect). It returns the number
// of links removed. It returns as soon as every neighbor has answered
// (all-alive sweeps don't pay the full window) and aborts promptly on
// peer shutdown.
func (p *Peer) PruneDead() int {
	removed := 0
	for _, a := range p.pingNeighbors() {
		if p.forgetNeighbor(a) {
			removed++
		}
	}
	return removed
}

// pingNeighbors is the heartbeat primitive behind PruneDead and the
// Maintainer's failure detector: it pings every current neighbor and
// returns the addresses that did not answer within the reply window.
// All probes share one reply channel, so the wait ends the moment the
// last pong arrives; a closing peer aborts the wait and reports nobody
// dead (shutdown is not evidence about the neighbors).
func (p *Peer) pingNeighbors() []string {
	p.mu.Lock()
	addrs := make([]string, 0, len(p.neighbors))
	for a := range p.neighbors {
		addrs = append(addrs, a)
	}
	p.mu.Unlock()
	if len(addrs) == 0 {
		return nil
	}

	// One shared channel under every probe ID; sized past the probe count
	// so even duplicated pongs (a FaultyNetwork can inject those) never
	// force route() to drop a reply.
	ch := make(chan Message, 2*len(addrs)+4)
	byID := make(map[string]string, len(addrs))
	p.mu.Lock()
	for _, a := range addrs {
		id := p.cfg.Addr + "/" + strconv.FormatUint(p.rng.Uint64(), 36)
		byID[id] = a
		p.pending[id] = ch
	}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		for id := range byID {
			delete(p.pending, id)
		}
		p.mu.Unlock()
	}()
	for id, a := range byID {
		p.send(a, Message{Kind: KindPing, ID: id})
	}

	alive := make(map[string]bool, len(addrs))
	deadline := time.NewTimer(p.cfg.DiscoverWindow)
	defer deadline.Stop()
collect:
	for len(alive) < len(addrs) {
		select {
		case msg := <-ch:
			if a, ok := byID[msg.ID]; ok {
				alive[a] = true
			}
		case <-deadline.C:
			break collect
		case <-p.stop:
			return nil
		}
	}
	var dead []string
	for _, a := range addrs {
		if !alive[a] {
			dead = append(dead, a)
		}
	}
	return dead
}

// joinRandom connects to M uniformly random peers from the discovery
// horizon — the naive baseline strategy.
func (p *Peer) joinRandom(bootstrap string) (int, error) {
	peers, err := p.Discover(bootstrap, p.cfg.TauSub)
	if err != nil {
		return 0, err
	}
	if len(peers) == 0 {
		peers = []PeerInfo{{Addr: bootstrap}}
	}
	p.mu.Lock()
	p.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	p.mu.Unlock()
	made := 0
	for _, pi := range peers {
		if made >= p.cfg.M {
			break
		}
		if p.Connect(pi.Addr) == nil {
			made++
		}
	}
	return joined(made)
}

func joined(made int) (int, error) {
	if made == 0 {
		return 0, ErrJoinFailed
	}
	return made, nil
}
