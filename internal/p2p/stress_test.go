package p2p

// Stress and failure-injection tests: concurrent joins, inbox overrun,
// malformed TCP frames, and mid-protocol crashes. These exercise the
// "potentially uncooperative environment" the paper designs for.

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestConcurrentJoins(t *testing.T) {
	t.Parallel()
	// Many peers joining simultaneously through the same bootstrap: the
	// overlay must stay consistent (no degree-cutoff violations, no
	// one-sided links beyond transient ones, no deadlocks).
	netw := NewInMemoryNetwork()
	spawn(t, netw, testConfig("boot", 1))
	const joiners = 60
	peers := make([]*Peer, joiners)
	for i := range peers {
		cfg := testConfig(fmt.Sprintf("j%d", i), uint64(i+2))
		cfg.KC = 12
		peers[i] = spawn(t, netw, cfg)
	}
	var wg sync.WaitGroup
	errs := make([]error, joiners)
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			_, errs[i] = p.Join("boot", JoinDAPA)
		}(i, p)
	}
	wg.Wait()
	joined := 0
	for i, err := range errs {
		if err == nil {
			joined++
		} else {
			t.Logf("joiner %d: %v", i, err)
		}
	}
	// The bootstrap saturates at kc=0 (unset => NoCutoff in testConfig)…
	// boot has no cutoff, so most joins must succeed.
	if joined < joiners*8/10 {
		t.Fatalf("only %d/%d concurrent joins succeeded", joined, joiners)
	}
	// Cutoffs hold for every joiner despite concurrency.
	for i, p := range peers {
		if d := p.Degree(); d > 12 {
			t.Fatalf("joiner %d degree %d > kc=12", i, d)
		}
	}
}

func TestConcurrentQueriesWhileChurning(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, KC: 15, TauSub: 4, Strategy: JoinDAPA, Seed: 77})
	if err := o.Grow(40, func(i int) []string { return []string{fmt.Sprintf("k%d", i)} }); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			addrs := o.Addrs()
			o.Remove(addrs[len(addrs)-1], i%2 == 0)
			if _, err := o.SpawnJoin(); err != nil {
				// Bootstrap may have just died; tolerated.
				continue
			}
		}
	}()
	// Queries run concurrently with churn; they may miss, but must not
	// deadlock, race, or error.
	var queryWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		queryWG.Add(1)
		go func(w int) {
			defer queryWG.Done()
			for i := 0; i < 10; i++ {
				addrs := o.Addrs()
				if len(addrs) == 0 {
					continue
				}
				p := o.Peer(addrs[w%len(addrs)])
				if p == nil {
					continue
				}
				if _, err := p.Query(fmt.Sprintf("k%d", i), AlgFlood, 5); err != nil && err != ErrPeerClosed {
					t.Errorf("query error: %v", err)
				}
			}
		}(w)
	}
	queryWG.Wait()
	close(stop)
	churnWG.Wait()
}

func TestInboxOverrunCountsDrops(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	cfg := testConfig("tiny", 1)
	cfg.InboxSize = 1 // pathological mailbox
	tiny := spawn(t, netw, cfg)
	big := spawn(t, netw, testConfig("big", 2))
	if err := big.Connect("tiny"); err != nil {
		t.Fatal(err)
	}
	// Saturate: fire many discovers at the tiny peer; some must drop
	// without wedging either peer.
	for i := 0; i < 200; i++ {
		_, _ = big.Discover("tiny", 1)
	}
	if tiny.Degree() != 1 {
		t.Fatalf("tiny peer lost its link under overrun: degree %d", tiny.Degree())
	}
	// The sender observed drops (send failures count on the sender).
	if st := big.Stats(); st.Dropped == 0 {
		t.Log("no drops recorded — inbox drained fast enough; acceptable but unusual")
	}
}

func TestTCPMalformedFramesIgnored(t *testing.T) {
	t.Parallel()
	tnet := NewTCPNetwork()
	t.Cleanup(tnet.Close)
	inbox := make(chan Envelope, 16)
	if err := tnet.Register("127.0.0.1:0", inbox); err != nil {
		t.Fatal(err)
	}
	addr := tnet.ListenAddr("127.0.0.1:0")

	// A stranger sends garbage, then a valid frame; the valid frame must
	// still arrive and nothing crashes.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil {
			t.Logf("close: %v", cerr)
		}
	}()
	if _, err := conn.Write([]byte("this is not json\n{\"also\":\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"from":"x","to":"` + addr + `","msg":{"kind":"ping","id":"1"}}` + "\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-inbox:
		if env.Msg.Kind != KindPing {
			t.Fatalf("got %v", env.Msg.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("valid frame after garbage never arrived")
	}
}

func TestQueryAgainstCrashedNeighbor(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	a := spawn(t, netw, testConfig("a", 1))
	b, err := NewPeer(testConfig("b", 2), netw)
	if err != nil {
		t.Fatal(err)
	}
	c := spawn(t, netw, testConfig("c", 3))
	c.AddKey("beyond")
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := b.Connect("c"); err != nil {
		t.Fatal(err)
	}
	b.Close() // crash: a still lists b
	// Query through the dead peer: no hits, but no error or hang.
	res, err := a.Query("beyond", AlgFlood, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("hits through a dead peer: %v", res.Hits)
	}
	// PruneDead clears the corpse.
	if removed := a.PruneDead(); removed != 1 {
		t.Fatalf("PruneDead removed %d, want 1", removed)
	}
	if a.Degree() != 0 {
		t.Fatalf("degree %d after prune", a.Degree())
	}
}

func TestPruneDeadKeepsLiveNeighbors(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	a := spawn(t, netw, testConfig("a", 1))
	live := spawn(t, netw, testConfig("live", 2))
	dead, err := NewPeer(testConfig("dead", 3), netw)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("live"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("dead"); err != nil {
		t.Fatal(err)
	}
	dead.Close()
	if removed := a.PruneDead(); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	nbs := a.Neighbors()
	if len(nbs) != 1 || nbs[0].Addr != "live" {
		t.Fatalf("neighbors after prune: %v", nbs)
	}
	_ = live
}
