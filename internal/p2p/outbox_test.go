package p2p

import (
	"testing"
	"time"
)

// blockingNetwork is a Network whose Send blocks until released — it
// simulates a wedged transport so outbox pressure can build.
type blockingNetwork struct {
	inner   *InMemoryNetwork
	release chan struct{}
	entered chan struct{} // signaled whenever a Send starts blocking
}

func (b *blockingNetwork) Register(addr string, inbox chan<- Envelope) error {
	return b.inner.Register(addr, inbox)
}
func (b *blockingNetwork) Unregister(addr string) { b.inner.Unregister(addr) }
func (b *blockingNetwork) Send(env Envelope) error {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-b.release
	return b.inner.Send(env)
}

// TestOutboxShedsOldest verifies the bounded outbox: with the transport
// wedged, enqueueing past OutboxSize sheds the oldest messages and
// counts them in Stats.Shed, and the surviving (newest) messages go out
// once the transport recovers.
func TestOutboxShedsOldest(t *testing.T) {
	t.Parallel()
	bn := &blockingNetwork{
		inner:   NewInMemoryNetwork(),
		release: make(chan struct{}),
		entered: make(chan struct{}, 32),
	}
	cfg := testConfig("a", 1)
	cfg.OutboxSize = 4
	p, err := NewPeer(cfg, bn)
	if err != nil {
		t.Fatal(err)
	}
	sink := make(chan Envelope, 64)
	if err := bn.inner.Register("sink", sink); err != nil {
		t.Fatal(err)
	}

	// First send occupies the writer (blocked in Send) ...
	p.send("sink", Message{Kind: KindPing, Hops: 0})
	select {
	case <-bn.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never reached the transport")
	}
	// ... the next OutboxSize fill the queue; everything further sheds
	// the oldest.
	for i := 1; i < 15; i++ {
		p.send("sink", Message{Kind: KindPing, Hops: i})
	}
	if got := p.Stats().Shed; got != 10 {
		t.Fatalf("shed %d, want 10 (14 queued sends, queue holds 4)", got)
	}
	if p.Stats().Sent != 0 {
		t.Fatalf("nothing should have been sent yet, got %d", p.Stats().Sent)
	}

	close(bn.release) // transport recovers
	if !waitFor(t, 2*time.Second, func() bool { return len(sink) == 5 }) {
		t.Fatalf("expected 5 survivors, got %d", len(sink))
	}
	// The survivors are the newest messages: the one the writer held plus
	// the last OutboxSize enqueued.
	first := <-sink
	if first.Msg.Hops != 0 {
		t.Fatalf("writer-held message should be hops=0, got %d", first.Msg.Hops)
	}
	for want := 11; want <= 14; want++ {
		env := <-sink
		if env.Msg.Hops != want {
			t.Fatalf("survivor hops=%d, want %d (oldest must shed first)", env.Msg.Hops, want)
		}
	}
	p.Close()
}

// TestCloseFlushesOutbox pins that messages queued before Close (e.g.
// Leave's farewells) are flushed, not abandoned.
func TestCloseFlushesOutbox(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	a := spawn(t, netw, testConfig("a", 1))
	b := spawn(t, netw, testConfig("b", 2))
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	a.Leave()
	// b must learn about the departure: the disconnect was queued in a's
	// outbox and has to survive the Close that follows Leave.
	if !waitFor(t, 2*time.Second, func() bool { return b.Degree() == 0 }) {
		t.Fatalf("b still lists a after a.Leave(): %v", b.Neighbors())
	}
}
