package p2p

// Tests for the uncooperative-peer behaviors (the paper's motivating
// "distributed and potentially uncooperative environments", §I): lying
// about degree, refusing inbound links, freeriding on query relay, and
// leeching (never serving hits). Each defection is protocol-compatible;
// these tests verify both the mechanism and its measurable impact on the
// overlay.

import (
	"fmt"
	"testing"
	"time"
)

func TestBehaviorValidation(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	bad := []Behavior{
		{DropQueryProb: -0.1},
		{DropQueryProb: 1.5},
		{FakeDegree: -3},
	}
	for _, b := range bad {
		cfg := testConfig("x", 1)
		cfg.Behavior = b
		if _, err := NewPeer(cfg, net); err == nil {
			t.Errorf("behavior %+v should fail validation", b)
		}
	}
}

func TestBehaviorUncooperative(t *testing.T) {
	t.Parallel()
	if (Behavior{}).Uncooperative() {
		t.Error("zero behavior must be cooperative")
	}
	all := []Behavior{
		{FakeDegree: 5},
		{RefuseConnects: true},
		{DropQueryProb: 0.5},
		{NeverServeHits: true},
	}
	for _, b := range all {
		if !b.Uncooperative() {
			t.Errorf("%+v should be uncooperative", b)
		}
	}
}

func TestRefuseConnectsRejectsInbound(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	selfish := testConfig("selfish", 1)
	selfish.Behavior = Behavior{RefuseConnects: true}
	s := spawn(t, net, selfish)
	honest := spawn(t, net, testConfig("honest", 2))

	if err := honest.Connect("selfish"); err == nil {
		t.Fatal("selfish peer should reject inbound connect")
	}
	if s.Degree() != 0 || honest.Degree() != 0 {
		t.Fatalf("no link should exist: selfish %d, honest %d", s.Degree(), honest.Degree())
	}
	if s.Stats().ConnectsRejected == 0 {
		t.Error("rejection should be counted")
	}

	// The selfish peer can still initiate its own links.
	if err := s.Connect("honest"); err != nil {
		t.Fatalf("selfish peer initiating: %v", err)
	}
	if s.Degree() != 1 || honest.Degree() != 1 {
		t.Fatalf("selfish-initiated link missing: %d, %d", s.Degree(), honest.Degree())
	}
}

func TestFakeDegreeAdvertised(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	liar := testConfig("liar", 1)
	liar.Behavior = Behavior{FakeDegree: 99}
	spawn(t, net, liar)
	honest := spawn(t, net, testConfig("honest", 2))

	if err := honest.Connect("liar"); err != nil {
		t.Fatal(err)
	}
	// The liar's true degree is 1, but every neighbor entry carries the
	// advertised 99.
	for _, n := range honest.Neighbors() {
		if n.Addr == "liar" && n.Degree != 99 {
			t.Fatalf("honest peer learned degree %d, liar advertises 99", n.Degree)
		}
	}
	// Discovery also reports the fake degree.
	peers, err := honest.Discover("liar", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range peers {
		if pi.Addr == "liar" && pi.Degree != 99 {
			t.Fatalf("discovery learned degree %d, want 99", pi.Degree)
		}
	}
}

// chainWithRelay builds origin - relay - holder and returns the peers.
func chainWithRelay(t *testing.T, relayBehavior Behavior) (origin, relay, holder *Peer) {
	t.Helper()
	net := NewInMemoryNetwork()
	ocfg := testConfig("origin", 1)
	rcfg := testConfig("relay", 2)
	rcfg.Behavior = relayBehavior
	hcfg := testConfig("holder", 3)
	hcfg.Keys = []string{"treasure"}
	origin = spawn(t, net, ocfg)
	relay = spawn(t, net, rcfg)
	holder = spawn(t, net, hcfg)
	if err := origin.Connect("relay"); err != nil {
		t.Fatal(err)
	}
	if err := relay.Connect("holder"); err != nil {
		t.Fatal(err)
	}
	return origin, relay, holder
}

func TestFreeriderDropsQueries(t *testing.T) {
	t.Parallel()
	origin, relay, _ := chainWithRelay(t, Behavior{DropQueryProb: 1})
	res, err := origin.Query("treasure", AlgFlood, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("freerider relay must kill the only path: hits %v", res.Hits)
	}
	if relay.Stats().QueriesForwarded != 0 {
		t.Fatalf("freerider forwarded %d queries", relay.Stats().QueriesForwarded)
	}
}

func TestCooperativeRelayDelivers(t *testing.T) {
	t.Parallel()
	origin, _, _ := chainWithRelay(t, Behavior{})
	res, err := origin.Query("treasure", AlgFlood, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Addr != "holder" {
		t.Fatalf("cooperative chain should deliver: %v", res.Hits)
	}
}

func TestFreeriderStillAnswersOwnContent(t *testing.T) {
	t.Parallel()
	// A freerider drops relays but still serves its own hits — make the
	// relay itself hold the key.
	net := NewInMemoryNetwork()
	ocfg := testConfig("origin", 1)
	fcfg := testConfig("freerider", 2)
	fcfg.Keys = []string{"treasure"}
	fcfg.Behavior = Behavior{DropQueryProb: 1}
	origin := spawn(t, net, ocfg)
	spawn(t, net, fcfg)
	if err := origin.Connect("freerider"); err != nil {
		t.Fatal(err)
	}
	res, err := origin.Query("treasure", AlgFlood, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatalf("freerider should still answer its own match: %v", res.Hits)
	}
}

func TestLeechNeverServesHits(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	ocfg := testConfig("origin", 1)
	lcfg := testConfig("leech", 2)
	lcfg.Keys = []string{"treasure"}
	lcfg.Behavior = Behavior{NeverServeHits: true}
	origin := spawn(t, net, ocfg)
	leech := spawn(t, net, lcfg)
	if err := origin.Connect("leech"); err != nil {
		t.Fatal(err)
	}
	res, err := origin.Query("treasure", AlgFlood, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("leech should never report hits: %v", res.Hits)
	}
	if leech.Stats().HitsServed != 0 {
		t.Fatalf("leech served %d hits", leech.Stats().HitsServed)
	}
	// Yet the leech still SEARCHES successfully — the asymmetry that
	// makes leeching rational and corrosive.
	origin.AddKey("public")
	res, err = leech.Query("public", AlgFlood, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatalf("leech's own query should succeed: %v", res.Hits)
	}
}

// TestFreeriderPopulationDegradesSearch measures the systemic effect: as
// the freerider fraction grows, flood query success falls.
func TestFreeriderPopulationDegradesSearch(t *testing.T) {
	t.Parallel()
	successAt := func(freeriderFrac float64) float64 {
		t.Helper()
		o, err := NewOverlay(OverlayConfig{
			M: 2, KC: 16, TauSub: 4,
			Strategy:       JoinDAPA,
			Seed:           1234,
			DiscoverWindow: 40,
			BehaviorFor: func(i int) Behavior {
				// Deterministic striping: every k-th peer freerides.
				if freeriderFrac == 0 {
					return Behavior{}
				}
				period := int(1 / freeriderFrac)
				if i%period == 0 {
					return Behavior{DropQueryProb: 1}
				}
				return Behavior{}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer o.Shutdown()
		const peers = 120
		for i := 0; i < peers; i++ {
			if _, err := o.SpawnJoin(fmt.Sprintf("item-%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
		rng := o.Peer(o.Addrs()[0])
		_ = rng
		ok := 0
		const probes = 30
		for i := 0; i < probes; i++ {
			src := o.Peer(o.Addrs()[i*3%peers])
			key := fmt.Sprintf("item-%03d", (i*7+11)%peers)
			if src.HasKey(key) {
				key = fmt.Sprintf("item-%03d", (i*7+12)%peers)
			}
			res, err := src.Query(key, AlgFlood, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Hits) > 0 {
				ok++
			}
		}
		return float64(ok) / probes
	}
	honest := successAt(0)
	polluted := successAt(0.5)
	if honest < 0.8 {
		t.Fatalf("honest overlay should resolve most queries: %.2f", honest)
	}
	if polluted >= honest {
		t.Fatalf("50%% freeriders should hurt success: honest %.2f, polluted %.2f", honest, polluted)
	}
}

func TestBehaviorForAppliedByOverlay(t *testing.T) {
	t.Parallel()
	o, err := NewOverlay(OverlayConfig{
		M: 1, TauSub: 2, Seed: 5, DiscoverWindow: 30,
		BehaviorFor: func(i int) Behavior {
			if i == 1 {
				return Behavior{RefuseConnects: true}
			}
			return Behavior{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	p0, err := o.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Spawn(); err != nil {
		t.Fatal(err)
	}
	addr1 := o.Addrs()[1]
	if err := p0.Connect(addr1); err == nil {
		t.Fatal("peer 1 should refuse connects")
	}
	// Give the rejection a moment to settle, then confirm no link.
	time.Sleep(10 * time.Millisecond)
	if p0.Degree() != 0 {
		t.Fatalf("degree %d after refused connect", p0.Degree())
	}
}
