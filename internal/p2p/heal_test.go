package p2p

import (
	"testing"
	"time"
)

// TestOverlayHealsAfterMassFailure is the acceptance test for overlay
// self-healing: grow an overlay, crash 20% of its peers without
// farewells, and require Heal to re-converge the survivors to one
// connected component, with the recovery metrics reported.
func TestOverlayHealsAfterMassFailure(t *testing.T) {
	t.Parallel()
	o, err := NewOverlay(OverlayConfig{
		M: 2, TauSub: 3, Seed: 2007, DiscoverWindow: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	const n = 40
	if err := o.Grow(n, nil); err != nil {
		t.Fatal(err)
	}

	// Crash every 5th peer (20%), preferring the early joiners — under
	// preferential attachment those carry the highest degrees, so this is
	// the harsh version of the failure model.
	addrs := o.Addrs()
	crashed := 0
	for i := 0; i < len(addrs); i += 5 {
		o.Remove(addrs[i], false)
		crashed++
	}
	if crashed != n/5 {
		t.Fatalf("crashed %d peers, want %d", crashed, n/5)
	}

	rep := o.Heal(30)
	if !rep.Recovered {
		t.Fatalf("overlay did not re-converge after %d rounds: coverage=%v repaired=%d",
			rep.Rounds, rep.Coverage, rep.Repaired)
	}
	if len(rep.Coverage) != rep.Rounds {
		t.Fatalf("coverage curve has %d points for %d rounds", len(rep.Coverage), rep.Rounds)
	}
	if last := rep.Coverage[len(rep.Coverage)-1]; last < 1 {
		t.Fatalf("final coverage %v < 1", last)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("no time-to-reconnect recorded")
	}
	// Every surviving peer meets the paper's degree floor again or the
	// overlay is at least fully connected (tiny fringes can sit at M-1
	// only if a join partner refused; connectivity is the contract).
	g, _ := o.Snapshot()
	if len(g.GiantComponent()) != g.N() {
		t.Fatalf("snapshot disconnected: giant %d of %d", len(g.GiantComponent()), g.N())
	}
}

// TestOverlayHealsOverFaultyNetwork runs the same mass-failure recovery
// over a lossy transport: healing must tolerate injected drops.
func TestOverlayHealsOverFaultyNetwork(t *testing.T) {
	t.Parallel()
	fn := NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{Seed: 3, Drop: 0.05})
	o, err := NewOverlay(OverlayConfig{
		M: 2, TauSub: 3, Seed: 2007, DiscoverWindow: 40, Transport: fn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	if err := o.Grow(24, nil); err != nil {
		t.Fatal(err)
	}
	addrs := o.Addrs()
	for i := 0; i < len(addrs); i += 5 {
		o.Remove(addrs[i], false)
	}
	rep := o.Heal(40)
	if !rep.Recovered {
		t.Fatalf("overlay on lossy transport did not re-converge: coverage=%v", rep.Coverage)
	}
}

// TestMaintainerHeartbeatThreshold verifies the failure detector prunes
// only after FailThreshold consecutive missed heartbeats and that the
// recovery metrics (time-to-reconnect) are populated once healed.
func TestMaintainerHeartbeatThreshold(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	a := spawn(t, netw, testConfig("a", 1))
	b, err := NewPeer(testConfig("b", 2), netw)
	if err != nil {
		t.Fatal(err)
	}
	c := spawn(t, netw, testConfig("c", 3))
	spawn(t, netw, testConfig("d", 4))
	if err := c.Connect("d"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("c"); err != nil {
		t.Fatal(err)
	}

	m := NewMaintainerWith(a, MaintainerConfig{
		Bootstrap:     func() string { return "c" },
		Strategy:      JoinDAPA,
		Interval:      20 * time.Millisecond,
		FailThreshold: 3,
	})
	t.Cleanup(m.Stop)

	b.Close() // crash
	// With a 3-miss threshold the crashed neighbor must survive at least
	// one sweep; sampling right after the first sweeps should still see b.
	// (Timing-lenient: we only require that pruning eventually happens and
	// the detector's pruned counter reflects it.)
	healed := waitFor(t, 5*time.Second, func() bool {
		if a.Degree() < 2 {
			return false
		}
		for _, nb := range a.Neighbors() {
			if nb.Addr == "b" {
				return false
			}
		}
		return true
	})
	if !healed {
		t.Fatalf("heartbeat maintainer did not heal: neighbors=%v", a.Neighbors())
	}
	rep := m.Report()
	if rep.Pruned == 0 {
		t.Fatalf("failure detector recorded no evictions: %+v", rep)
	}
	if rep.Sweeps < 3 {
		t.Fatalf("pruning after %d sweeps, threshold is 3", rep.Sweeps)
	}
	if waitFor(t, 2*time.Second, func() bool { return m.Report().Recoveries > 0 }) {
		rep = m.Report()
		if rep.MeanRecovery <= 0 || rep.LastRecovery <= 0 {
			t.Fatalf("recovery recorded without durations: %+v", rep)
		}
	} else {
		t.Fatalf("no recovery episode closed: %+v", m.Report())
	}
}
