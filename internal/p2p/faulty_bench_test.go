package p2p

import (
	"testing"
)

// The fault-layer overhead benchmarks back the acceptance claim that a
// zero-fault FaultyNetwork is free: BenchmarkFaultySendZero must sit
// within noise of BenchmarkInMemorySend (the wrapper's fast path is one
// config check and one atomic load), while BenchmarkFaultySendLossy
// prices the full draw path.

func benchSend(b *testing.B, netw Network) {
	b.Helper()
	inbox := make(chan Envelope, 256)
	if err := netw.Register("sink", inbox); err != nil {
		b.Fatal(err)
	}
	env := Envelope{From: "src", To: "sink", Msg: Message{Kind: KindPing}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := netw.Send(env); err != nil {
			b.Fatal(err)
		}
		select {
		case <-inbox:
		default: // dropped in flight — nothing to drain
		}
	}
}

func BenchmarkInMemorySend(b *testing.B) {
	benchSend(b, NewInMemoryNetwork())
}

func BenchmarkFaultySendZero(b *testing.B) {
	benchSend(b, NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{}))
}

func BenchmarkFaultySendLossy(b *testing.B) {
	benchSend(b, NewFaultyNetwork(NewInMemoryNetwork(), FaultConfig{Seed: 1, Drop: 0.05}))
}
