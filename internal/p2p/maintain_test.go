package p2p

import (
	"testing"
	"time"
)

func TestMaintainerRepairsAfterCrash(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	// a -- b (will crash), plus a healthy c to re-join through.
	a := spawn(t, netw, testConfig("a", 1))
	b, err := NewPeer(testConfig("b", 2), netw)
	if err != nil {
		t.Fatal(err)
	}
	c := spawn(t, netw, testConfig("c", 3))
	spawn(t, netw, testConfig("d", 4))
	if err := c.Connect("d"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("c"); err != nil {
		t.Fatal(err)
	}

	m := NewMaintainer(a, func() string { return "c" }, JoinDAPA, 20*time.Millisecond)
	t.Cleanup(m.Stop)

	b.Close() // crash: a drops to one live link but still lists b
	// Maintenance must prune b and re-join to restore degree >= M (2).
	healthy := waitFor(t, 3*time.Second, func() bool {
		if a.Degree() < 2 {
			return false
		}
		for _, nb := range a.Neighbors() {
			if nb.Addr == "b" {
				return false
			}
		}
		return true
	})
	if !healthy {
		t.Fatalf("maintenance did not heal: degree=%d neighbors=%v", a.Degree(), a.Neighbors())
	}
	sweeps, repairs, lastErr := m.Stats()
	if sweeps == 0 {
		t.Fatal("no sweeps recorded")
	}
	if repairs == 0 {
		t.Fatalf("no repairs recorded (lastErr=%v)", lastErr)
	}
}

func TestMaintainerStopIdempotent(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	a := spawn(t, netw, testConfig("a", 1))
	m := NewMaintainer(a, func() string { return "" }, JoinDAPA, 10*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	m.Stop()
	m.Stop() // must not panic or hang
	sweeps, _, _ := m.Stats()
	if sweeps == 0 {
		t.Fatal("maintainer never swept")
	}
}

func TestMaintainerIdleWhenHealthy(t *testing.T) {
	t.Parallel()
	netw := NewInMemoryNetwork()
	a := spawn(t, netw, testConfig("a", 1))
	spawn(t, netw, testConfig("b", 2))
	spawn(t, netw, testConfig("c", 3))
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("c"); err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(a, func() string { return "b" }, JoinDAPA, 10*time.Millisecond)
	t.Cleanup(m.Stop)
	time.Sleep(100 * time.Millisecond)
	_, repairs, _ := m.Stats()
	if repairs != 0 {
		t.Fatalf("healthy peer was 'repaired' %d times", repairs)
	}
	if a.Degree() != 2 {
		t.Fatalf("degree drifted to %d", a.Degree())
	}
}
