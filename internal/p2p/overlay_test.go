package p2p

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func newTestOverlay(t *testing.T, cfg OverlayConfig) *Overlay {
	t.Helper()
	if cfg.DiscoverWindow == 0 {
		cfg.DiscoverWindow = 40
	}
	o, err := NewOverlay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Shutdown)
	return o
}

func TestOverlayValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewOverlay(OverlayConfig{M: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverlayGrowDAPA(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, KC: 10, TauSub: 4, Strategy: JoinDAPA, Seed: 1})
	if err := o.Grow(60, nil); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 60 {
		t.Fatalf("size %d", o.Size())
	}
	g, _ := o.Snapshot()
	if g.N() != 60 {
		t.Fatalf("snapshot N %d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("live DAPA overlay should be connected (single bootstrap chain)")
	}
	if g.MaxDegree() > 10 {
		t.Fatalf("live overlay violated cutoff: max degree %d", g.MaxDegree())
	}
	// Every joined peer got at least one link.
	if g.MinDegree() < 1 {
		t.Fatal("peer with zero links after join")
	}
}

func TestOverlayGrowHAPA(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 1, KC: 8, TauSub: 3, Strategy: JoinHAPA, Seed: 2})
	if err := o.Grow(40, nil); err != nil {
		t.Fatal(err)
	}
	g, _ := o.Snapshot()
	if !g.IsConnected() {
		t.Fatal("HAPA overlay should be connected")
	}
	if g.MaxDegree() > 8 {
		t.Fatalf("cutoff violated: %d", g.MaxDegree())
	}
}

func TestOverlayGrowRandom(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, TauSub: 4, Strategy: JoinRandom, Seed: 3})
	if err := o.Grow(40, nil); err != nil {
		t.Fatal(err)
	}
	g, _ := o.Snapshot()
	if !g.IsConnected() {
		t.Fatal("random-join overlay should be connected")
	}
}

func TestOverlayPreferentialAttachmentSkew(t *testing.T) {
	t.Parallel()
	// DAPA joins should produce a more skewed degree distribution than
	// random joins: compare max degrees on same-size overlays.
	maxDeg := func(strategy JoinStrategy, seed uint64) int {
		o := newTestOverlay(t, OverlayConfig{M: 1, TauSub: 6, Strategy: strategy, Seed: seed})
		if err := o.Grow(80, nil); err != nil {
			t.Fatal(err)
		}
		g, _ := o.Snapshot()
		return g.MaxDegree()
	}
	// Average over a few seeds to damp noise.
	var dapa, random int
	for s := uint64(0); s < 3; s++ {
		dapa += maxDeg(JoinDAPA, 10+s)
		random += maxDeg(JoinRandom, 20+s)
	}
	if dapa <= random {
		t.Fatalf("DAPA max degree sum %d should exceed random %d", dapa, random)
	}
}

func TestOverlayQueryAcrossGrownNetwork(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, TauSub: 5, Strategy: JoinDAPA, Seed: 4})
	err := o.Grow(50, func(i int) []string {
		return []string{fmt.Sprintf("file-%d", i)}
	})
	if err != nil {
		t.Fatal(err)
	}
	src := o.Peer(o.Addrs()[0])
	res, err := src.Query("file-37", AlgFlood, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatalf("hits %v", res.Hits)
	}
}

func TestOverlayRemoveGraceful(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, TauSub: 4, Strategy: JoinDAPA, Seed: 5})
	if err := o.Grow(30, nil); err != nil {
		t.Fatal(err)
	}
	victim := o.Addrs()[10]
	o.Remove(victim, true)
	if o.Size() != 29 {
		t.Fatalf("size %d", o.Size())
	}
	g, _ := o.Snapshot()
	if g.N() != 29 {
		t.Fatalf("snapshot N %d", g.N())
	}
	// No peer should still list the departed node once the disconnect
	// notifications drain (delivery is asynchronous).
	cleaned := waitFor(t, 2*time.Second, func() bool {
		for _, addr := range o.Addrs() {
			p := o.Peer(addr)
			if p == nil {
				continue
			}
			for _, nb := range p.Neighbors() {
				if nb.Addr == victim {
					return false
				}
			}
		}
		return true
	})
	if !cleaned {
		t.Fatalf("some peer still lists departed %s", victim)
	}
}

func TestOverlayChurn(t *testing.T) {
	t.Parallel()
	// Sustained join/leave (the paper's §VI future work): the overlay
	// must stay connected-ish and respect cutoffs throughout.
	o := newTestOverlay(t, OverlayConfig{M: 2, KC: 12, TauSub: 5, Strategy: JoinDAPA, Seed: 6})
	if err := o.Grow(40, nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 15; round++ {
		// Leave: a random non-bootstrap peer departs.
		addrs := o.Addrs()
		o.Remove(addrs[len(addrs)/2], round%2 == 0)
		// Join: a new peer arrives.
		if _, err := o.SpawnJoin(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if o.Size() != 40 {
		t.Fatalf("size %d after churn", o.Size())
	}
	g, _ := o.Snapshot()
	if g.MaxDegree() > 12 {
		t.Fatalf("cutoff violated under churn: %d", g.MaxDegree())
	}
	giant := len(g.GiantComponent())
	if giant < 30 {
		t.Fatalf("giant component %d/40 after churn", giant)
	}
}

func TestOverlayMaintainRepairsDegrees(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 2, KC: 12, TauSub: 5, Strategy: JoinDAPA, Seed: 8})
	if err := o.Grow(30, nil); err != nil {
		t.Fatal(err)
	}
	// Crash a third of the peers to strand some survivors below m.
	addrs := o.Addrs()
	for i := 0; i < 10; i++ {
		o.Remove(addrs[i*2], false)
	}
	dead := map[string]bool{}
	for i := 0; i < 10; i++ {
		dead[addrs[i*2]] = true
	}
	// Maintain prunes dead links (crashes send no Disconnect) and lets
	// under-connected survivors re-join. Run a couple of rounds: repairs
	// may cascade.
	o.Maintain()
	o.Maintain()
	healthy := waitFor(t, 2*time.Second, func() bool {
		for _, a := range o.Addrs() {
			p := o.Peer(a)
			if p == nil {
				continue
			}
			if p.Degree() < 2 {
				return false
			}
			for _, nb := range p.Neighbors() {
				if dead[nb.Addr] {
					return false
				}
			}
		}
		return true
	})
	if !healthy {
		for _, a := range o.Addrs() {
			if p := o.Peer(a); p != nil && p.Degree() < 2 {
				t.Logf("%s degree %d", a, p.Degree())
			}
		}
		t.Fatal("overlay not healthy after Maintain: under-connected peers or dead links remain")
	}
}

func TestOverlaySnapshotDegreeHistogram(t *testing.T) {
	t.Parallel()
	o := newTestOverlay(t, OverlayConfig{M: 1, TauSub: 4, Strategy: JoinDAPA, Seed: 7})
	if err := o.Grow(30, nil); err != nil {
		t.Fatal(err)
	}
	h := o.DegreeHistogram()
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 30 {
		t.Fatalf("histogram covers %d peers", total)
	}
	degs := o.SortedDegrees()
	if len(degs) != 30 || degs[0] < 1 {
		t.Fatalf("degrees %v", degs)
	}
}

func TestInMemoryNetworkErrors(t *testing.T) {
	t.Parallel()
	n := NewInMemoryNetwork()
	err := n.Send(Envelope{From: "x", To: "ghost"})
	if !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
	inbox := make(chan Envelope) // unbuffered: always full
	if err := n.Register("a", inbox); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Envelope{To: "a"}); !errors.Is(err, ErrInboxOverrun) {
		t.Fatalf("err = %v", err)
	}
	n.Unregister("a")
	if err := n.Send(Envelope{To: "a"}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("after unregister err = %v", err)
	}
	n.Close()
	if err := n.Register("b", inbox); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("register after close err = %v", err)
	}
	if got := n.Peers(); len(got) != 0 {
		t.Fatalf("peers after close: %v", got)
	}
}
