package p2p

import (
	"fmt"
	"sync"
)

// Network abstracts message delivery between peers. Implementations must
// be safe for concurrent use. Send is asynchronous and best-effort:
// unstructured overlay protocols tolerate loss, and queries are
// re-issuable by design.
type Network interface {
	// Register binds an address to an inbox. Delivery to the address
	// pushes envelopes into the channel, dropping when full (the caller's
	// Stats track drops).
	Register(addr string, inbox chan<- Envelope) error
	// Unregister removes the address; subsequent sends fail.
	Unregister(addr string)
	// Send routes one envelope. It returns ErrUnknownPeer for
	// unregistered destinations and ErrInboxOverrun when the inbox is
	// full.
	Send(env Envelope) error
}

// InMemoryNetwork delivers envelopes between goroutine peers in one
// process via channels. It is the transport used by the examples, the
// overlay harness, and the churn experiments; it comfortably hosts tens of
// thousands of peers.
type InMemoryNetwork struct {
	mu     sync.RWMutex
	inbox  map[string]chan<- Envelope
	closed bool
}

var _ Network = (*InMemoryNetwork)(nil)

// NewInMemoryNetwork returns an empty in-process network.
func NewInMemoryNetwork() *InMemoryNetwork {
	return &InMemoryNetwork{inbox: make(map[string]chan<- Envelope)}
}

// Register implements Network.
func (n *InMemoryNetwork) Register(addr string, inbox chan<- Envelope) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrPeerClosed
	}
	if _, ok := n.inbox[addr]; ok {
		return fmt.Errorf("%w: %s", ErrDupAddress, addr)
	}
	n.inbox[addr] = inbox
	return nil
}

// Unregister implements Network. It is idempotent: unregistering an
// unknown address, an already-unregistered address, or any address on a
// closed network is a no-op (mirroring the TCP transport's hardening) —
// peer teardown paths may overlap and must all be safe.
func (n *InMemoryNetwork) Unregister(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inbox == nil {
		return
	}
	delete(n.inbox, addr)
}

// Send implements Network.
func (n *InMemoryNetwork) Send(env Envelope) error {
	n.mu.RLock()
	ch, ok := n.inbox[env.To]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, env.To)
	}
	select {
	case ch <- env:
		return nil
	default:
		return fmt.Errorf("%w: to %s", ErrInboxOverrun, env.To)
	}
}

// Close unregisters everything; subsequent Register calls fail.
func (n *InMemoryNetwork) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	n.inbox = make(map[string]chan<- Envelope)
}

// Peers returns the currently registered addresses (diagnostic).
func (n *InMemoryNetwork) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.inbox))
	for addr := range n.inbox {
		out = append(out, addr)
	}
	return out
}
