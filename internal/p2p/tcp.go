package p2p

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPNetwork implements Network over real TCP sockets with newline-
// delimited JSON envelopes — the transport behind cmd/peerd. Peer
// addresses are "host:port" listen addresses. Outbound connections are
// cached and re-dialed on failure; delivery remains best-effort, matching
// the in-memory transport's semantics.
type TCPNetwork struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration

	mu        sync.Mutex
	listeners map[string]net.Listener
	inboxes   map[string]chan<- Envelope
	conns     map[string]*tcpConn
	inbound   map[net.Conn]struct{}
	wg        sync.WaitGroup
	closed    bool
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
}

var _ Network = (*TCPNetwork)(nil)

// NewTCPNetwork returns an empty TCP transport.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{
		DialTimeout: 2 * time.Second,
		listeners:   make(map[string]net.Listener),
		inboxes:     make(map[string]chan<- Envelope),
		conns:       make(map[string]*tcpConn),
		inbound:     make(map[net.Conn]struct{}),
	}
}

// Register implements Network: it binds a TCP listener on addr (which may
// use port 0; see ListenAddr for the resolved address) and pumps inbound
// envelopes into the inbox.
func (t *TCPNetwork) Register(addr string, inbox chan<- Envelope) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrPeerClosed
	}
	if _, dup := t.listeners[addr]; dup {
		return fmt.Errorf("%w: %s", ErrDupAddress, addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	real := ln.Addr().String()
	t.listeners[real] = ln
	t.inboxes[real] = inbox
	if real != addr {
		// Port-0 binds register under the resolved address too, so the
		// caller can Register("127.0.0.1:0") and look up ListenAddr.
		t.listeners[addr] = ln
		t.inboxes[addr] = inbox
	}
	t.wg.Add(1)
	go t.acceptLoop(ln, inbox)
	return nil
}

// ListenAddr resolves the actual listen address for a registration made
// with a port-0 bind.
func (t *TCPNetwork) ListenAddr(addr string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ln, ok := t.listeners[addr]; ok {
		return ln.Addr().String()
	}
	return addr
}

func (t *TCPNetwork) acceptLoop(ln net.Listener, inbox chan<- Envelope) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			if cerr := conn.Close(); cerr != nil {
				_ = cerr
			}
			return
		}
		t.inbound[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn, inbox)
	}
}

func (t *TCPNetwork) readLoop(conn net.Conn, inbox chan<- Envelope) {
	defer t.wg.Done()
	defer func() {
		if err := conn.Close(); err != nil {
			_ = err // already closing; nothing useful to do
		}
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var env Envelope
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			continue // tolerate malformed frames from strangers
		}
		select {
		case inbox <- env:
		default:
			// Inbox overrun: drop, as the in-memory transport does.
		}
	}
}

// Unregister implements Network.
func (t *TCPNetwork) Unregister(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ln, ok := t.listeners[addr]; ok {
		if err := ln.Close(); err != nil {
			_ = err
		}
		// Drop every alias of this listener (port-0 registrations).
		for a, l := range t.listeners {
			if l == ln {
				delete(t.listeners, a)
				delete(t.inboxes, a)
			}
		}
	}
}

// Send implements Network: it reuses or dials a connection to env.To and
// writes one JSON line. A stale cached connection is re-dialed once.
func (t *TCPNetwork) Send(env Envelope) error {
	for attempt := 0; attempt < 2; attempt++ {
		c, err := t.connTo(env.To)
		if err != nil {
			return err
		}
		c.mu.Lock()
		err = c.enc.Encode(env)
		c.mu.Unlock()
		if err == nil {
			return nil
		}
		t.dropConn(env.To, c)
	}
	return fmt.Errorf("%w: %s", ErrUnknownPeer, env.To)
}

func (t *TCPNetwork) connTo(addr string) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrPeerClosed
	}
	if c, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return c, nil
	}
	timeout := t.DialTimeout
	t.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnknownPeer, addr, err)
	}
	c := &tcpConn{conn: conn, enc: json.NewEncoder(conn)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.conns[addr]; ok {
		// Lost the race; keep the established one.
		if err := conn.Close(); err != nil {
			_ = err
		}
		return existing, nil
	}
	t.conns[addr] = c
	return c, nil
}

func (t *TCPNetwork) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.conns[addr]; ok && cur == c {
		delete(t.conns, addr)
		if err := c.conn.Close(); err != nil {
			_ = err
		}
	}
}

// Close shuts down all listeners and cached connections and waits for the
// pump goroutines to drain.
func (t *TCPNetwork) Close() {
	t.mu.Lock()
	t.closed = true
	for _, ln := range t.listeners {
		if err := ln.Close(); err != nil {
			_ = err
		}
	}
	t.listeners = make(map[string]net.Listener)
	t.inboxes = make(map[string]chan<- Envelope)
	for _, c := range t.conns {
		if err := c.conn.Close(); err != nil {
			_ = err
		}
	}
	t.conns = make(map[string]*tcpConn)
	// Inbound connections must be closed too: their readLoops otherwise
	// block in Scan until the REMOTE closes, and wg.Wait would deadlock
	// when a live peer on another network keeps its side open.
	for conn := range t.inbound {
		if err := conn.Close(); err != nil {
			_ = err
		}
	}
	t.mu.Unlock()
	t.wg.Wait()
}
