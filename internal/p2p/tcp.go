package p2p

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scalefree/internal/xrand"
)

// TCPNetwork implements Network over real TCP sockets with newline-
// delimited JSON envelopes — the transport behind cmd/peerd. Peer
// addresses are "host:port" listen addresses. Outbound connections are
// cached and re-dialed on failure; delivery remains best-effort, matching
// the in-memory transport's semantics.
type TCPNetwork struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write (default 2s); a peer that
	// stops reading cannot wedge senders forever.
	WriteTimeout time.Duration
	// RetryMax is how many additional attempts Send makes after the first
	// failure, re-dialing broken connections between attempts (default 2).
	// Set negative for no retries.
	RetryMax int
	// BackoffBase and BackoffMax bound the capped exponential backoff
	// between attempts (defaults 5ms and 250ms); each wait is jittered by
	// a deterministic factor in [0.5, 1.0) drawn from a seeded stream.
	BackoffBase, BackoffMax time.Duration

	retries    atomic.Int64 // send attempts beyond the first
	reconnects atomic.Int64 // broken connections dropped for re-dial

	jitterMu sync.Mutex
	jitter   *xrand.RNG

	// closeCh is closed by Close so retry backoffs in flight bail out
	// immediately instead of sleeping their full jittered delay.
	closeCh chan struct{}

	mu        sync.Mutex
	listeners map[string]net.Listener
	inboxes   map[string]chan<- Envelope
	conns     map[string]*tcpConn
	// aliases maps a port-0 request string ("host:0") to the resolved
	// listen address of its most recent registration. Kept separate from
	// listeners so repeated ephemeral binds never trip the duplicate check.
	aliases map[string]string
	// inbound maps each accepted connection to the resolved address of the
	// listener that accepted it, so Unregister can hang up that listener's
	// inbound side too.
	inbound map[net.Conn]string
	wg      sync.WaitGroup
	closed  bool
}

// maxFrame caps one newline-delimited envelope frame (1 MiB); longer
// inbound lines are discarded without harming the connection.
const maxFrame = 1 << 20

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
}

var _ Network = (*TCPNetwork)(nil)

// NewTCPNetwork returns an empty TCP transport.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{
		DialTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		RetryMax:     2,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   250 * time.Millisecond,
		jitter:       xrand.New(0x7463702d6a697474), // "tcp-jitt"
		closeCh:      make(chan struct{}),
		listeners:    make(map[string]net.Listener),
		inboxes:      make(map[string]chan<- Envelope),
		conns:        make(map[string]*tcpConn),
		aliases:      make(map[string]string),
		inbound:      make(map[net.Conn]string),
	}
}

// TCPStats reports the transport's resilience activity.
type TCPStats struct {
	// Retries counts send attempts beyond the first (failed dial or
	// failed write, followed by backoff).
	Retries int64
	// Reconnects counts cached connections dropped after a write failure,
	// each re-dialed on the next attempt to that address.
	Reconnects int64
}

// Stats returns a snapshot of the resilience counters.
func (t *TCPNetwork) Stats() TCPStats {
	return TCPStats{Retries: t.retries.Load(), Reconnects: t.reconnects.Load()}
}

// Register implements Network: it binds a TCP listener on addr (which may
// use port 0; see ListenAddr for the resolved address) and pumps inbound
// envelopes into the inbox.
func (t *TCPNetwork) Register(addr string, inbox chan<- Envelope) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrPeerClosed
	}
	if _, dup := t.listeners[addr]; dup {
		return fmt.Errorf("%w: %s", ErrDupAddress, addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	real := ln.Addr().String()
	t.listeners[real] = ln
	t.inboxes[real] = inbox
	if real != addr {
		// Port-0 bind: remember the resolved address under the request
		// string so ListenAddr("127.0.0.1:0") works, without occupying a
		// listener slot — repeated ephemeral binds each get a fresh port.
		// The alias tracks the most recent such registration.
		t.aliases[addr] = real
	}
	t.wg.Add(1)
	go t.acceptLoop(ln, real, inbox)
	return nil
}

// ListenAddr resolves the actual listen address for a registration made
// with a port-0 bind; when the same request string was registered more
// than once, it resolves to the most recent registration.
func (t *TCPNetwork) ListenAddr(addr string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if real, ok := t.aliases[addr]; ok {
		return real
	}
	if ln, ok := t.listeners[addr]; ok {
		return ln.Addr().String()
	}
	return addr
}

func (t *TCPNetwork) acceptLoop(ln net.Listener, real string, inbox chan<- Envelope) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			if cerr := conn.Close(); cerr != nil {
				_ = cerr
			}
			return
		}
		t.inbound[conn] = real
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn, inbox)
	}
}

func (t *TCPNetwork) readLoop(conn net.Conn, inbox chan<- Envelope) {
	defer t.wg.Done()
	defer func() {
		if err := conn.Close(); err != nil {
			_ = err // already closing; nothing useful to do
		}
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	// Frames are newline-delimited; an oversized frame (> maxFrame) is
	// discarded byte-by-byte up to its newline and the connection keeps
	// going — a single huge line from a peer must not kill the link the
	// way it killed the bufio.Scanner-based loop (which returned a
	// too-long error and silently ended the readLoop).
	r := bufio.NewReaderSize(conn, 64*1024)
	frame := make([]byte, 0, 4096)
	tooLong := false
	for {
		chunk, err := r.ReadSlice('\n')
		if !tooLong {
			if len(frame)+len(chunk) > maxFrame {
				tooLong = true
				frame = frame[:0]
			} else {
				frame = append(frame, chunk...)
			}
		}
		if err == bufio.ErrBufferFull {
			continue // frame spans buffer fills; keep accumulating
		}
		if err != nil {
			return // connection closed or broken
		}
		if !tooLong {
			var env Envelope
			if jerr := json.Unmarshal(frame, &env); jerr == nil {
				select {
				case inbox <- env:
				default:
					// Inbox overrun: drop, as the in-memory transport does.
				}
			}
			// Malformed frames from strangers are tolerated either way.
		}
		frame = frame[:0]
		tooLong = false
	}
}

// Unregister implements Network. addr may be either the resolved listen
// address or the original port-0 request string. Besides the listener,
// the peer's accepted inbound connections are closed too — leaving them
// open kept remote send paths alive long after the peer was gone.
func (t *TCPNetwork) Unregister(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	real := addr
	if r, ok := t.aliases[addr]; ok {
		real = r
	}
	ln, ok := t.listeners[real]
	if !ok {
		return
	}
	if err := ln.Close(); err != nil {
		_ = err
	}
	delete(t.listeners, real)
	delete(t.inboxes, real)
	for a, r := range t.aliases {
		if r == real {
			delete(t.aliases, a)
		}
	}
	for conn, owner := range t.inbound {
		if owner == real {
			if err := conn.Close(); err != nil {
				_ = err
			}
		}
	}
}

// Send implements Network: it reuses or dials a connection to env.To and
// writes one JSON line under a write deadline. Failed attempts — dial or
// write — are retried up to RetryMax times with capped exponential
// backoff and deterministic jitter; a broken cached connection is
// dropped between attempts, so the retry path doubles as automatic
// reconnect. When every attempt fails, the error names the peer and the
// attempt count and wraps the last cause — ErrUnknownPeer for an
// unreachable peer, the actual encode error for a write that kept
// failing on freshly dialed connections — so failure records in
// distributed runs say which peer and how many tries.
func (t *TCPNetwork) Send(env Envelope) error {
	var lastErr error
	attempts := t.RetryMax + 1
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t.retries.Add(1)
			if !t.backoff(attempt) {
				return ErrPeerClosed // network closed mid-backoff
			}
		}
		c, err := t.connTo(env.To)
		if err != nil {
			if err == ErrPeerClosed {
				return err
			}
			lastErr = err
			continue
		}
		c.mu.Lock()
		if t.WriteTimeout > 0 {
			_ = c.conn.SetWriteDeadline(time.Now().Add(t.WriteTimeout))
		}
		err = c.enc.Encode(env)
		c.mu.Unlock()
		if err == nil {
			return nil
		}
		lastErr = fmt.Errorf("send %s: %w", env.To, err)
		t.dropConn(env.To, c)
		t.reconnects.Add(1)
	}
	return fmt.Errorf("send to %s failed after %d attempt(s): %w", env.To, attempts, lastErr)
}

// backoff waits the capped exponential delay before retry `attempt`
// (1-based), jittered by a factor in [0.5, 1.0) from a seeded stream so
// backoff schedules are reproducible run to run. The wait aborts — and
// backoff returns false — the moment the network is Closed, so shutdown
// never stalls behind a sleeping retry.
func (t *TCPNetwork) backoff(attempt int) bool {
	d := t.BackoffBase
	if d <= 0 {
		return true
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if t.BackoffMax > 0 && d >= t.BackoffMax {
			d = t.BackoffMax
			break
		}
	}
	if t.BackoffMax > 0 && d > t.BackoffMax {
		d = t.BackoffMax
	}
	t.jitterMu.Lock()
	factor := 0.5 + 0.5*t.jitter.Float64()
	t.jitterMu.Unlock()
	timer := time.NewTimer(time.Duration(float64(d) * factor))
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.closeCh:
		return false
	}
}

func (t *TCPNetwork) connTo(addr string) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrPeerClosed
	}
	if c, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return c, nil
	}
	timeout := t.DialTimeout
	t.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnknownPeer, addr, err)
	}
	c := &tcpConn{conn: conn, enc: json.NewEncoder(conn)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.conns[addr]; ok {
		// Lost the race; keep the established one.
		if err := conn.Close(); err != nil {
			_ = err
		}
		return existing, nil
	}
	t.conns[addr] = c
	return c, nil
}

func (t *TCPNetwork) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.conns[addr]; ok && cur == c {
		delete(t.conns, addr)
		if err := c.conn.Close(); err != nil {
			_ = err
		}
	}
}

// Close shuts down all listeners and cached connections and waits for the
// pump goroutines to drain.
func (t *TCPNetwork) Close() {
	t.mu.Lock()
	if !t.closed && t.closeCh != nil {
		close(t.closeCh) // interrupt any Send sleeping in backoff
	}
	t.closed = true
	for _, ln := range t.listeners {
		if err := ln.Close(); err != nil {
			_ = err
		}
	}
	t.listeners = make(map[string]net.Listener)
	t.inboxes = make(map[string]chan<- Envelope)
	t.aliases = make(map[string]string)
	for _, c := range t.conns {
		if err := c.conn.Close(); err != nil {
			_ = err
		}
	}
	t.conns = make(map[string]*tcpConn)
	// Inbound connections must be closed too: their readLoops otherwise
	// block in Scan until the REMOTE closes, and wg.Wait would deadlock
	// when a live peer on another network keeps its side open.
	for conn := range t.inbound {
		if err := conn.Close(); err != nil {
			_ = err
		}
	}
	t.mu.Unlock()
	t.wg.Wait()
}
