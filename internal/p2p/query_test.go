package p2p

import (
	"fmt"
	"testing"
	"time"
)

// lineOverlay builds a path of n peers a0-a1-...-a(n-1), with keyOwner
// holding key "needle". Returns the peers in order.
func lineOverlay(t *testing.T, net Network, n, keyOwner int) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		cfg := testConfig(fmt.Sprintf("a%d", i), uint64(i+1))
		if i == keyOwner {
			cfg.Keys = []string{"needle"}
		}
		peers[i] = spawn(t, net, cfg)
	}
	for i := 0; i+1 < n; i++ {
		if err := peers[i].Connect(peers[i+1].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	// Let the reverse sides settle.
	waitFor(t, time.Second, func() bool {
		for i := 1; i < n-1; i++ {
			if peers[i].Degree() != 2 {
				return false
			}
		}
		return true
	})
	return peers
}

func TestQueryFloodFindsKeyWithinTTL(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	peers := lineOverlay(t, net, 6, 4) // needle 4 hops from a0
	res, err := peers[0].Query("needle", AlgFlood, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Addr != "a4" {
		t.Fatalf("hits %v", res.Hits)
	}
	if res.FirstHopCount != 4 {
		t.Fatalf("first hit at %d hops, want 4", res.FirstHopCount)
	}
}

func TestQueryFloodRespectsTTL(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	peers := lineOverlay(t, net, 6, 4)
	res, err := peers[0].Query("needle", AlgFlood, 3) // too short
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("TTL 3 should not reach a4: %v", res.Hits)
	}
}

func TestQueryMissingKey(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	peers := lineOverlay(t, net, 4, 2)
	res, err := peers[0].Query("absent", AlgFlood, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("hits for absent key: %v", res.Hits)
	}
}

func TestQueryValidation(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	a := spawn(t, net, testConfig("a", 1))
	if _, err := a.Query("k", Alg("bogus"), 3); err == nil {
		t.Error("bogus algorithm should fail")
	}
	if _, err := a.Query("k", AlgFlood, 0); err == nil {
		t.Error("zero TTL should fail")
	}
}

func TestQueryMultipleHits(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	hub := spawn(t, net, testConfig("hub", 1))
	for i := 0; i < 4; i++ {
		cfg := testConfig(fmt.Sprintf("leaf%d", i), uint64(i+2))
		cfg.Keys = []string{"popular"}
		leaf := spawn(t, net, cfg)
		if err := leaf.Connect("hub"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return hub.Degree() == 4 })
	res, err := hub.Query("popular", AlgFlood, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 4 {
		t.Fatalf("hits %d, want 4", len(res.Hits))
	}
}

func TestQueryOwnKeyNotReported(t *testing.T) {
	t.Parallel()
	// The origin searching for a key it holds itself should not
	// self-report (callers check HasKey first).
	net := NewInMemoryNetwork()
	cfg := testConfig("a", 1)
	cfg.Keys = []string{"mine"}
	a := spawn(t, net, cfg)
	b := spawn(t, net, testConfig("b", 2))
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	res, err := a.Query("mine", AlgFlood, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("self-hit reported: %v", res.Hits)
	}
	if !a.HasKey("mine") {
		t.Fatal("HasKey broken")
	}
	_ = b
}

func TestQueryNFRespectsFanOut(t *testing.T) {
	t.Parallel()
	// Star with m=1 (kMin=1): NF from the hub contacts exactly one leaf,
	// so at most one of the 4 key holders answers.
	net := NewInMemoryNetwork()
	cfg := testConfig("hub", 1)
	cfg.M = 1
	hub := spawn(t, net, cfg)
	for i := 0; i < 4; i++ {
		leafCfg := testConfig(fmt.Sprintf("leaf%d", i), uint64(i+2))
		leafCfg.Keys = []string{"popular"}
		leaf := spawn(t, net, leafCfg)
		if err := leaf.Connect("hub"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return hub.Degree() == 4 })
	res, err := hub.Query("popular", AlgNF, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatalf("NF kMin=1 produced %d hits, want 1", len(res.Hits))
	}
	if st := hub.Stats(); st.QueriesForwarded != 1 {
		t.Fatalf("hub forwarded %d, want 1", st.QueriesForwarded)
	}
}

func TestQueryRWWalksALine(t *testing.T) {
	t.Parallel()
	// On a path the walker marches deterministically away from the
	// origin (non-backtracking), so it must find a key 3 hops away with
	// TTL >= 4.
	net := NewInMemoryNetwork()
	peers := lineOverlay(t, net, 5, 3)
	res, err := peers[0].Query("needle", AlgRW, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Addr != "a3" {
		t.Fatalf("RW hits %v", res.Hits)
	}
}

func TestQueryKeyManagement(t *testing.T) {
	t.Parallel()
	net := NewInMemoryNetwork()
	a := spawn(t, net, testConfig("a", 1))
	b := spawn(t, net, testConfig("b", 2))
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	b.AddKey("late")
	res, err := a.Query("late", AlgFlood, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatalf("added key not found: %v", res.Hits)
	}
	b.RemoveKey("late")
	res, err = a.Query("late", AlgFlood, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("removed key still found: %v", res.Hits)
	}
}

func TestDuplicateSuppressionStats(t *testing.T) {
	t.Parallel()
	// Triangle: a query floods around the loop; each peer must process
	// the GUID once even though it receives two copies.
	net := NewInMemoryNetwork()
	var peers []*Peer
	for i := 0; i < 3; i++ {
		peers = append(peers, spawn(t, net, testConfig(fmt.Sprintf("t%d", i), uint64(i+1))))
	}
	for i := 0; i < 3; i++ {
		if err := peers[i].Connect(peers[(i+1)%3].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool {
		return peers[0].Degree() == 2 && peers[1].Degree() == 2 && peers[2].Degree() == 2
	})
	if _, err := peers[0].Query("nothing", AlgFlood, 5); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if st := peers[i].Stats(); st.QueriesSeen != 1 {
			t.Fatalf("peer %d processed query %d times", i, st.QueriesSeen)
		}
	}
}
