package churn

import (
	"testing"

	"scalefree/internal/p2p"
)

// These tests close the loop between the two churn laboratories: the
// deterministic graph-level Simulator in this package and the live actor
// overlay in internal/p2p. Churn-style join/leave dynamics run over a
// p2p.FaultyNetwork injecting drops and partitions, and the overlay must
// re-converge the way the Simulator's repair policies promise.

// TestChurnOverLossyFaultyNetwork drives balanced churn — ungraceful
// crashes interleaved with fresh joins — over a transport dropping 5% of
// all messages, and requires the surviving overlay to heal back to one
// connected component after every wave.
func TestChurnOverLossyFaultyNetwork(t *testing.T) {
	t.Parallel()
	fn := p2p.NewFaultyNetwork(p2p.NewInMemoryNetwork(), p2p.FaultConfig{Seed: 11, Drop: 0.05})
	o, err := p2p.NewOverlay(p2p.OverlayConfig{
		M: 2, TauSub: 3, Seed: 4242, DiscoverWindow: 40, Transport: fn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	// Over a lossy transport a join can legitimately fail when every
	// connection attempt is dropped; real peers retry, so the test does
	// too (removing the isolated carcass between attempts).
	mustJoin := func(what string) {
		t.Helper()
		for attempt := 0; ; attempt++ {
			p, err := o.SpawnJoin()
			if err == nil {
				return
			}
			o.Remove(p.Addr(), false)
			if attempt >= 9 {
				t.Fatalf("%s: join failed 10 times over 5%% loss: %v", what, err)
			}
		}
	}
	for i := 0; i < 20; i++ {
		mustJoin("grow")
	}

	for wave := 0; wave < 3; wave++ {
		// Crash a quarter of the population without farewells, then admit
		// the same number of newcomers (balanced churn, as in Step(0.5)).
		addrs := o.Addrs()
		for i := 0; i < len(addrs); i += 4 {
			o.Remove(addrs[i], false)
		}
		for i := 0; i < len(addrs)/4; i++ {
			mustJoin("wave")
		}
		rep := o.Heal(40)
		if !rep.Recovered {
			t.Fatalf("wave %d: overlay did not re-converge: coverage=%v", wave, rep.Coverage)
		}
	}
	if st := fn.Stats(); st.Dropped == 0 {
		t.Fatal("lossy schedule never dropped a message — the test exercised nothing")
	}
	g, _ := o.Snapshot()
	if len(g.GiantComponent()) != g.N() {
		t.Fatalf("final snapshot disconnected: giant %d of %d", len(g.GiantComponent()), g.N())
	}
}

// TestChurnAcrossPartition splits the overlay's transport into two named
// partitions, churns both sides, then heals the network and requires the
// overlay to stitch itself back together.
func TestChurnAcrossPartition(t *testing.T) {
	t.Parallel()
	fn := p2p.NewFaultyNetwork(p2p.NewInMemoryNetwork(), p2p.FaultConfig{Seed: 7})
	o, err := p2p.NewOverlay(p2p.OverlayConfig{
		M: 2, TauSub: 3, Seed: 99, DiscoverWindow: 40, Transport: fn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Shutdown()
	if err := o.Grow(16, nil); err != nil {
		t.Fatal(err)
	}

	addrs := o.Addrs()
	half := len(addrs) / 2
	fn.Partition("west", addrs[:half]...)
	fn.Partition("east", addrs[half:]...)

	// Churn inside the partition: crash one peer per side. Joins would
	// have to cross the cut (the bootstrap peer may sit on either side),
	// so the waves here are pure departures.
	o.Remove(addrs[0], false)
	o.Remove(addrs[len(addrs)-1], false)

	// While partitioned, maintenance cannot see across the cut; traffic
	// between the sides is eaten by the fault layer.
	o.Maintain()
	if st := fn.Stats(); st.PartitionDropped == 0 {
		t.Fatal("partition never dropped a message — groups were not wired up")
	}

	fn.Heal()
	rep := o.Heal(40)
	if !rep.Recovered {
		t.Fatalf("overlay did not re-converge after the partition healed: coverage=%v", rep.Coverage)
	}
	g, _ := o.Snapshot()
	if len(g.GiantComponent()) != g.N() {
		t.Fatalf("post-heal snapshot disconnected: giant %d of %d", len(g.GiantComponent()), g.N())
	}
}
