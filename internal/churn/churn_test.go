package churn

import (
	"testing"
	"testing/quick"

	"scalefree/internal/gen"
	"scalefree/internal/xrand"
)

func mustSim(t testing.TB, cfg Config, seed uint64) *Simulator {
	t.Helper()
	s, err := New(cfg, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func baseCfg() Config {
	return Config{InitialN: 300, M: 2, KC: 40, Join: JoinPreferential, Repair: ReconnectRepair, Graceful: true}
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	cases := []Config{
		{InitialN: 2, M: 2, KC: 40},            // too small
		{InitialN: 100, M: 0, KC: 40},          // bad M
		{InitialN: 100, M: 3, KC: 2},           // KC < M
		{InitialN: -5, M: 1, KC: gen.NoCutoff}, // negative
	}
	for i, cfg := range cases {
		if _, err := New(cfg, xrand.New(1)); err == nil {
			t.Errorf("case %d: config %+v should fail", i, cfg)
		}
	}
}

func TestNewStartsAllAlive(t *testing.T) {
	t.Parallel()
	s := mustSim(t, baseCfg(), 1)
	if s.Alive() != 300 {
		t.Fatalf("alive %d, want 300", s.Alive())
	}
	sub, _ := s.AliveGraph()
	if sub.N() != 300 {
		t.Fatalf("alive graph order %d", sub.N())
	}
	if !sub.IsConnected() {
		t.Fatal("initial PA overlay must be connected")
	}
}

func TestJoinAddsPeerWithMLinks(t *testing.T) {
	t.Parallel()
	s := mustSim(t, baseCfg(), 2)
	id, err := s.Join()
	if err != nil {
		t.Fatal(err)
	}
	if s.Alive() != 301 {
		t.Fatalf("alive %d after join", s.Alive())
	}
	if deg := s.g.Degree(id); deg != 2 {
		t.Fatalf("joiner degree %d, want M=2", deg)
	}
	st := s.Stats()
	if st.Joins != 1 {
		t.Fatalf("joins %d", st.Joins)
	}
	if st.Messages < 2*2 {
		t.Fatalf("join must cost at least 2 messages per link: %d", st.Messages)
	}
}

func TestLeaveRemovesPeerAndEdges(t *testing.T) {
	t.Parallel()
	s := mustSim(t, baseCfg(), 3)
	id, err := s.Leave(-1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alive() != 299 {
		t.Fatalf("alive %d after leave", s.Alive())
	}
	if deg := s.g.Degree(id); deg != 0 {
		t.Fatalf("departed peer still has %d edges", deg)
	}
	if _, err := s.Leave(id); err == nil {
		t.Fatal("leaving a dead peer should fail")
	}
}

func TestLeaveSpecificPeer(t *testing.T) {
	t.Parallel()
	s := mustSim(t, baseCfg(), 4)
	id, err := s.Leave(42)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 {
		t.Fatalf("departed %d, want 42", id)
	}
}

func TestReconnectRepairRestoresMinimumDegree(t *testing.T) {
	t.Parallel()
	cfg := baseCfg()
	s := mustSim(t, cfg, 5)
	// Churn hard, then verify every alive peer has degree >= M (repair
	// keeps the guideline invariant; arrivals may briefly fail stubs only
	// if everything saturates, which cannot happen at kc=40).
	for e := 0; e < 400; e++ {
		if err := s.Step(0.5); err != nil {
			t.Fatal(err)
		}
	}
	sub, _ := s.AliveGraph()
	if md := sub.MinDegree(); md < cfg.M {
		t.Fatalf("repair failed: min alive degree %d < M=%d (failed stubs %d)",
			md, cfg.M, s.Stats().FailedStubs)
	}
	if s.Stats().RepairLinks == 0 {
		t.Fatal("expected some repair links after 400 events")
	}
}

func TestNoRepairDegradesDegree(t *testing.T) {
	t.Parallel()
	cfg := baseCfg()
	cfg.Repair = NoRepair
	s := mustSim(t, cfg, 6)
	for e := 0; e < 400; e++ {
		if err := s.Step(0.5); err != nil {
			t.Fatal(err)
		}
	}
	sub, _ := s.AliveGraph()
	if md := sub.MinDegree(); md >= cfg.M {
		t.Fatalf("without repair some peer should fall below M: min degree %d", md)
	}
	if s.Stats().RepairLinks != 0 {
		t.Fatalf("no-repair created %d repair links", s.Stats().RepairLinks)
	}
}

func TestHardCutoffHoldsUnderChurn(t *testing.T) {
	t.Parallel()
	cfg := baseCfg()
	cfg.KC = 10
	s := mustSim(t, cfg, 7)
	for e := 0; e < 600; e++ {
		if err := s.Step(0.6); err != nil {
			t.Fatal(err)
		}
	}
	sub, _ := s.AliveGraph()
	if maxDeg := sub.MaxDegree(); maxDeg > 10 {
		t.Fatalf("hard cutoff violated under churn: max degree %d > 10", maxDeg)
	}
}

func TestGracefulLeaveCostsNotices(t *testing.T) {
	t.Parallel()
	crash := baseCfg()
	crash.Graceful = false
	crash.Repair = NoRepair
	graceful := baseCfg()
	graceful.Repair = NoRepair

	sc := mustSim(t, crash, 8)
	sg := mustSim(t, graceful, 8)
	if _, err := sc.Leave(10); err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Leave(10); err != nil {
		t.Fatal(err)
	}
	if sc.Stats().Messages != 0 {
		t.Fatalf("crash leave should be silent: %d messages", sc.Stats().Messages)
	}
	if sg.Stats().Messages == 0 {
		t.Fatal("graceful leave should cost notices")
	}
}

func TestStepJoinProbabilityExtremes(t *testing.T) {
	t.Parallel()
	s := mustSim(t, baseCfg(), 9)
	for e := 0; e < 50; e++ {
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Alive() != 350 {
		t.Fatalf("pJoin=1: alive %d, want 350", s.Alive())
	}
	for e := 0; e < 50; e++ {
		if err := s.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Alive() != 300 {
		t.Fatalf("pJoin=0: alive %d, want 300", s.Alive())
	}
}

func TestOverlayDiesOutGracefully(t *testing.T) {
	t.Parallel()
	cfg := baseCfg()
	cfg.InitialN = 10
	cfg.KC = gen.NoCutoff
	s := mustSim(t, cfg, 10)
	trace, err := s.Run(50, 0, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alive() != 0 {
		t.Fatalf("50 departures should empty a 10-peer overlay: alive %d", s.Alive())
	}
	if len(trace) == 0 {
		t.Fatal("trace must have at least one snapshot")
	}
	last := trace[len(trace)-1]
	if last.Alive != 0 {
		t.Fatalf("final snapshot alive = %d", last.Alive)
	}
}

func TestProbeSnapshotFields(t *testing.T) {
	t.Parallel()
	s := mustSim(t, baseCfg(), 11)
	for e := 0; e < 100; e++ {
		if err := s.Step(0.5); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Probe(100, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Alive != s.Alive() || snap.Event != 100 {
		t.Fatalf("snapshot identity: %+v", snap)
	}
	if snap.MeanDegree <= 0 || snap.MaxDegree <= 0 {
		t.Fatalf("degenerate degrees: %+v", snap)
	}
	if snap.GiantFrac <= 0 || snap.GiantFrac > 1 {
		t.Fatalf("giant fraction %v", snap.GiantFrac)
	}
	if snap.Gamma <= 0 {
		t.Fatalf("exponent fit failed: %+v", snap)
	}
	if snap.NFHits < 1 {
		t.Fatalf("NF hits %v", snap.NFHits)
	}
	if snap.MessagesPerEvent <= 0 {
		t.Fatalf("messages per event %v", snap.MessagesPerEvent)
	}
}

func TestRunTraceCadence(t *testing.T) {
	t.Parallel()
	s := mustSim(t, baseCfg(), 12)
	trace, err := s.Run(100, 0.5, 25, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 {
		t.Fatalf("want 4 snapshots at every-25 cadence, got %d", len(trace))
	}
	for i, snap := range trace {
		if want := (i + 1) * 25; snap.Event != want {
			t.Errorf("snapshot %d at event %d, want %d", i, snap.Event, want)
		}
	}
}

func TestRunNegativeEvents(t *testing.T) {
	t.Parallel()
	s := mustSim(t, baseCfg(), 13)
	if _, err := s.Run(-1, 0.5, 10, 0, 0); err == nil {
		t.Fatal("negative events should fail")
	}
}

func TestRepairKeepsOverlayConnectedUnderHeavyChurn(t *testing.T) {
	t.Parallel()
	cfg := baseCfg()
	cfg.KC = 10
	s := mustSim(t, cfg, 14)
	// Balanced churn with repair: the giant component should retain the
	// overwhelming majority of peers.
	trace, err := s.Run(800, 0.5, 800, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := trace[len(trace)-1]
	if last.GiantFrac < 0.95 {
		t.Fatalf("repair should hold the overlay together: giant %.2f", last.GiantFrac)
	}
}

func TestUniformJoinFlattensDegrees(t *testing.T) {
	t.Parallel()
	// Grow two overlays purely by joins; the preferential one must end
	// with a larger maximum degree than the uniform one.
	pref := baseCfg()
	pref.Repair = NoRepair
	uni := pref
	uni.Join = JoinUniform

	sp := mustSim(t, pref, 15)
	su := mustSim(t, uni, 15)
	for e := 0; e < 700; e++ {
		if err := sp.Step(1); err != nil {
			t.Fatal(err)
		}
		if err := su.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	gp, _ := sp.AliveGraph()
	gu, _ := su.AliveGraph()
	if gp.MaxDegree() <= gu.MaxDegree() {
		t.Fatalf("preferential max degree %d should exceed uniform %d",
			gp.MaxDegree(), gu.MaxDegree())
	}
}

func TestSimulatorDeterministicWithSeed(t *testing.T) {
	t.Parallel()
	run := func() (int, Stats) {
		s := mustSim(t, baseCfg(), 99)
		for e := 0; e < 200; e++ {
			if err := s.Step(0.5); err != nil {
				t.Fatal(err)
			}
		}
		return s.Alive(), s.Stats()
	}
	a1, st1 := run()
	a2, st2 := run()
	if a1 != a2 || st1 != st2 {
		t.Fatalf("same seed diverged: (%d,%+v) vs (%d,%+v)", a1, st1, a2, st2)
	}
}

// TestChurnInvariants property-checks structural invariants across random
// churn mixes: alive accounting matches the graph, dead nodes hold no
// edges, and the cutoff is never violated.
func TestChurnInvariants(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, pRaw uint8, kcPick bool) bool {
		cfg := baseCfg()
		cfg.InitialN = 80
		if kcPick {
			cfg.KC = 8
		}
		s, err := New(cfg, xrand.New(seed))
		if err != nil {
			return false
		}
		p := float64(pRaw) / 255
		for e := 0; e < 150; e++ {
			if err := s.Step(p); err != nil {
				return false
			}
			if s.Alive() == 0 {
				break
			}
		}
		count := 0
		for v := 0; v < s.g.N(); v++ {
			if s.alive[v] {
				count++
				if s.g.Degree(v) > s.cutoff() {
					return false
				}
			} else if s.g.Degree(v) != 0 {
				return false
			}
		}
		return count == s.Alive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestJoinRuleAndRepairStrings(t *testing.T) {
	t.Parallel()
	if JoinPreferential.String() != "preferential" || JoinUniform.String() != "uniform" {
		t.Error("join rule names")
	}
	if JoinRule(9).String() != "joinrule(9)" {
		t.Error("unknown join rule name")
	}
	if NoRepair.String() != "no-repair" || ReconnectRepair.String() != "reconnect" {
		t.Error("repair names")
	}
	if RepairPolicy(9).String() != "repair(9)" {
		t.Error("unknown repair name")
	}
}
