// Package churn implements the paper's stated future work (§VI): "study
// of join/leave scenarios for the overlay topologies while attempting to
// maintain the scale-freeness of the overall topology", with "minimal
// messaging overhead for join and leave operations of peers while keeping
// the scale-freeness in a topology with a hard cutoff".
//
// The simulator evolves an overlay under a configurable arrival/departure
// process at the graph level (the live, message-passing counterpart lives
// in internal/p2p; this package is the deterministic laboratory). Joins
// follow a preferential or uniform rule restricted to alive peers and the
// hard cutoff; departures are abrupt (crash) or graceful; an optional
// repair policy reconnects under-provisioned neighbors after a departure,
// which is exactly the "minimum of 2-3 links" guideline the paper derives.
// Every link operation and discovery probe is charged to a message
// counter so maintenance overhead is measurable, not asserted.
package churn

import (
	"errors"
	"fmt"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

// Validation errors.
var (
	ErrBadConfig = errors.New("churn: invalid config")
	ErrDead      = errors.New("churn: no alive peers")
)

// JoinRule selects how arriving peers pick their m neighbors.
type JoinRule int

const (
	// JoinPreferential attaches proportionally to alive peers' degrees
	// under the hard cutoff (the paper's PA rule restricted to the alive
	// overlay).
	JoinPreferential JoinRule = iota
	// JoinUniform attaches to uniformly random alive peers (the naive
	// baseline a careless client would implement).
	JoinUniform
)

// String names the join rule.
func (j JoinRule) String() string {
	switch j {
	case JoinPreferential:
		return "preferential"
	case JoinUniform:
		return "uniform"
	default:
		return fmt.Sprintf("joinrule(%d)", int(j))
	}
}

// RepairPolicy selects what happens to a departed peer's neighbors.
type RepairPolicy int

const (
	// NoRepair leaves the hole: neighbors keep their reduced degree.
	NoRepair RepairPolicy = iota
	// ReconnectRepair makes every ex-neighbor whose degree fell below m
	// open replacement links (preferentially, under the cutoff) — the
	// paper's "minimum of 2-3 links" guideline enforced continuously.
	ReconnectRepair
)

// String names the repair policy.
func (r RepairPolicy) String() string {
	switch r {
	case NoRepair:
		return "no-repair"
	case ReconnectRepair:
		return "reconnect"
	default:
		return fmt.Sprintf("repair(%d)", int(r))
	}
}

// Config parameterizes a churn simulation.
type Config struct {
	// InitialN is the size of the starting PA overlay.
	InitialN int
	// M is the number of stubs per joining peer (and the repair target).
	M int
	// KC is the hard cutoff (gen.NoCutoff disables it).
	KC int
	// Join selects the attachment rule for arrivals.
	Join JoinRule
	// Repair selects the post-departure policy.
	Repair RepairPolicy
	// Graceful makes departures announce themselves (costing one message
	// per neighbor) rather than crash silently.
	Graceful bool
}

func (c Config) validate() error {
	if c.InitialN < c.M+2 {
		return fmt.Errorf("%w: InitialN %d too small for M %d", ErrBadConfig, c.InitialN, c.M)
	}
	if c.M < 1 {
		return fmt.Errorf("%w: M %d", ErrBadConfig, c.M)
	}
	if c.KC != gen.NoCutoff && c.KC < c.M {
		return fmt.Errorf("%w: KC %d < M %d", ErrBadConfig, c.KC, c.M)
	}
	return nil
}

// Stats counts the work the overlay performed.
type Stats struct {
	// Joins and Leaves count completed events.
	Joins, Leaves int
	// Messages counts protocol traffic: discovery probes, link
	// establishments (2 messages each: request + accept), leave notices,
	// and repair links.
	Messages int
	// RepairLinks counts replacement edges created by the repair policy.
	RepairLinks int
	// FailedStubs counts stubs arrivals could not fill (all candidates
	// saturated or exhausted).
	FailedStubs int
}

// Simulator evolves one overlay under churn. Node IDs are never reused;
// dead peers stay in the underlying graph with their edges removed.
type Simulator struct {
	cfg   Config
	g     *graph.Graph
	rng   *xrand.RNG
	alive []bool
	// aliveIDs is a swap-remove set of alive node IDs with positions in
	// alivePos, giving O(1) uniform sampling and removal.
	aliveIDs []int32
	alivePos map[int32]int
	stats    Stats
	// scratch is reused across every probe's NF searches; the probe
	// freezes the alive giant once and sweeps it allocation-free.
	scratch search.Scratch
}

// New builds the starting overlay with gen.PA and wraps it in a simulator.
func New(cfg Config, rng *xrand.RNG) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	g, _, err := gen.PA(gen.PAConfig{N: cfg.InitialN, M: cfg.M, KC: cfg.KC}, rng)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:      cfg,
		g:        g,
		rng:      rng,
		alive:    make([]bool, g.N()),
		alivePos: make(map[int32]int, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		s.addAlive(int32(v))
	}
	return s, nil
}

func (s *Simulator) addAlive(v int32) {
	for int(v) >= len(s.alive) {
		s.alive = append(s.alive, false)
	}
	s.alive[v] = true
	s.alivePos[v] = len(s.aliveIDs)
	s.aliveIDs = append(s.aliveIDs, v)
}

func (s *Simulator) removeAlive(v int32) {
	pos, ok := s.alivePos[v]
	if !ok {
		return
	}
	last := len(s.aliveIDs) - 1
	moved := s.aliveIDs[last]
	s.aliveIDs[pos] = moved
	s.alivePos[moved] = pos
	s.aliveIDs = s.aliveIDs[:last]
	delete(s.alivePos, v)
	s.alive[v] = false
}

// Alive returns the number of alive peers.
func (s *Simulator) Alive() int { return len(s.aliveIDs) }

// Stats returns the cumulative work counters.
func (s *Simulator) Stats() Stats { return s.stats }

// cutoff returns the effective hard cutoff as a comparable int.
func (s *Simulator) cutoff() int {
	if s.cfg.KC == gen.NoCutoff {
		return int(^uint(0) >> 1)
	}
	return s.cfg.KC
}

// pickTarget selects an attachment target for `joiner` among alive peers:
// not the joiner, not already a neighbor, degree below the cutoff. Under
// JoinPreferential candidates are accepted with probability k/kMax
// (rejection sampling, so no global stub list is needed — mirroring what
// a discovery protocol can implement). Probes are charged to Messages.
// Returns -1 when no candidate was found within the attempt budget.
func (s *Simulator) pickTarget(joiner int32) int32 {
	n := len(s.aliveIDs)
	if n == 0 {
		return -1
	}
	kMax := s.g.MaxDegree()
	if kMax < 1 {
		kMax = 1
	}
	attempts := 8 * (n + 1)
	for a := 0; a < attempts; a++ {
		cand := s.aliveIDs[s.rng.Intn(n)]
		s.stats.Messages++ // discovery probe
		if cand == joiner || s.g.HasEdge(int(joiner), int(cand)) {
			continue
		}
		deg := s.g.Degree(int(cand))
		if deg >= s.cutoff() {
			continue
		}
		if s.cfg.Join == JoinPreferential {
			// Accept proportionally to degree; degree-0 survivors get a
			// floor of 1 so they can rejoin the topology.
			w := deg
			if w < 1 {
				w = 1
			}
			if s.rng.Intn(kMax) >= w {
				continue
			}
		}
		return cand
	}
	return -1
}

// Join adds one peer with up to M links and returns its node ID.
func (s *Simulator) Join() (int, error) {
	if len(s.aliveIDs) == 0 {
		return -1, ErrDead
	}
	v := int32(s.g.AddNode())
	s.addAlive(v)
	for stub := 0; stub < s.cfg.M; stub++ {
		target := s.pickTarget(v)
		if target < 0 {
			s.stats.FailedStubs++
			continue
		}
		if err := s.g.AddEdge(int(v), int(target)); err != nil {
			return -1, err
		}
		s.stats.Messages += 2 // connect request + accept
	}
	s.stats.Joins++
	return int(v), nil
}

// Leave removes one uniformly random alive peer (or the given peer when
// id >= 0) and applies the repair policy. It returns the departed ID.
func (s *Simulator) Leave(id int) (int, error) {
	if len(s.aliveIDs) == 0 {
		return -1, ErrDead
	}
	var v int32
	if id >= 0 {
		v = int32(id)
		if int(v) >= len(s.alive) || !s.alive[v] {
			return -1, fmt.Errorf("churn: peer %d is not alive", id)
		}
	} else {
		v = s.aliveIDs[s.rng.Intn(len(s.aliveIDs))]
	}
	neighbors := append([]int32(nil), s.g.Neighbors(int(v))...)
	if s.cfg.Graceful {
		s.stats.Messages += len(neighbors) // leave notices
	}
	for _, u := range neighbors {
		s.g.RemoveEdge(int(v), int(u))
	}
	s.removeAlive(v)
	s.stats.Leaves++

	if s.cfg.Repair == ReconnectRepair {
		for _, u := range neighbors {
			if !s.alive[u] {
				continue
			}
			for s.g.Degree(int(u)) < s.cfg.M {
				target := s.pickTarget(u)
				if target < 0 {
					s.stats.FailedStubs++
					break
				}
				if err := s.g.AddEdge(int(u), int(target)); err != nil {
					return -1, err
				}
				s.stats.Messages += 2
				s.stats.RepairLinks++
			}
		}
	}
	return int(v), nil
}

// Step performs one churn event: a join with probability pJoin, otherwise
// a departure of a random peer.
func (s *Simulator) Step(pJoin float64) error {
	if s.rng.Bool(pJoin) {
		_, err := s.Join()
		return err
	}
	_, err := s.Leave(-1)
	return err
}

// AliveGraph returns the overlay induced on alive peers, plus the mapping
// from new compact IDs back to simulator node IDs.
func (s *Simulator) AliveGraph() (*graph.Graph, []int) {
	nodes := make([]int, len(s.aliveIDs))
	for i, v := range s.aliveIDs {
		nodes[i] = int(v)
	}
	sub, orig := s.g.InducedSubgraph(nodes)
	return sub, orig
}

// Snapshot is one periodic measurement of overlay health under churn.
type Snapshot struct {
	// Event is the number of churn events completed so far.
	Event int
	// Alive is the number of alive peers.
	Alive int
	// MeanDegree and MaxDegree describe the alive-induced overlay.
	MeanDegree float64
	MaxDegree  int
	// GiantFrac is the fraction of alive peers in the giant component.
	GiantFrac float64
	// Gamma is the fitted degree exponent magnitude (0 when the fit
	// fails, e.g. too few distinct degrees).
	Gamma float64
	// NFHits is mean normalized-flooding hits at the probe TTL from
	// sampled sources on the giant component.
	NFHits float64
	// MessagesPerEvent is cumulative maintenance traffic divided by
	// events (joins + leaves).
	MessagesPerEvent float64
}

// Probe measures the current overlay: connectivity, degree structure, a
// power-law fit, and NF search efficiency with the given TTL averaged
// over `sources` random sources.
func (s *Simulator) Probe(event, sources, ttl int) (Snapshot, error) {
	snap := Snapshot{Event: event, Alive: s.Alive()}
	if s.Alive() == 0 {
		return snap, nil
	}
	sub, _ := s.AliveGraph()
	snap.MaxDegree = sub.MaxDegree()
	snap.MeanDegree = float64(sub.TotalDegree()) / float64(sub.N())
	giant := sub.GiantComponent()
	snap.GiantFrac = float64(len(giant)) / float64(sub.N())
	if fit, err := stats.FitPowerLawMLE(sub.DegreeSequence(), s.cfg.M); err == nil {
		snap.Gamma = fit.Gamma
	}
	if ev := s.stats.Joins + s.stats.Leaves; ev > 0 {
		snap.MessagesPerEvent = float64(s.stats.Messages) / float64(ev)
	}
	if sources > 0 && len(giant) > 1 {
		gg, _ := sub.InducedSubgraph(giant)
		// One CSR freeze serves the whole probe: the giant does not
		// mutate between the NF sweeps below.
		fg := gg.Freeze()
		var sum float64
		for i := 0; i < sources; i++ {
			res, err := s.scratch.NormalizedFlood(fg, s.rng.Intn(fg.N()), ttl, s.cfg.M, s.rng)
			if err != nil {
				return snap, err
			}
			sum += float64(res.HitsAt(ttl))
		}
		snap.NFHits = sum / float64(sources)
	}
	return snap, nil
}

// Run performs `events` churn steps with the given join probability,
// probing every `probeEvery` events (and once more at the end). The
// returned trace has at least one snapshot.
func (s *Simulator) Run(events int, pJoin float64, probeEvery, sources, ttl int) ([]Snapshot, error) {
	if events < 0 {
		return nil, fmt.Errorf("%w: events %d", ErrBadConfig, events)
	}
	if probeEvery < 1 {
		probeEvery = events + 1
	}
	var trace []Snapshot
	for e := 1; e <= events; e++ {
		if err := s.Step(pJoin); err != nil {
			if errors.Is(err, ErrDead) {
				break // the overlay died out; report what we have
			}
			return nil, err
		}
		if e%probeEvery == 0 {
			snap, err := s.Probe(e, sources, ttl)
			if err != nil {
				return nil, err
			}
			trace = append(trace, snap)
		}
	}
	if len(trace) == 0 || trace[len(trace)-1].Event != events {
		snap, err := s.Probe(events, sources, ttl)
		if err != nil {
			return nil, err
		}
		trace = append(trace, snap)
	}
	return trace, nil
}
