package metrics

import (
	"sort"

	"scalefree/internal/graph"
)

// KNNPoint is one point of the average-neighbor-degree curve.
type KNNPoint struct {
	// K is the node degree class.
	K int
	// KNN is the mean degree of neighbors, averaged over all nodes of
	// degree K.
	KNN float64
	// Count is the number of degree-K nodes contributing.
	Count int
}

// AverageNeighborDegree computes k_nn(k), the standard degree-correlation
// function: for each degree class k, the mean degree of the neighbors of
// degree-k nodes. Increasing k_nn(k) means assortative mixing; decreasing
// means disassortative (typical of uncorrelated scale-free networks with
// structural cutoffs). Classes are returned in ascending k; degree-0 nodes
// are skipped.
func AverageNeighborDegree(f *graph.Frozen) []KNNPoint {
	type acc struct {
		sum   float64
		nodes int
	}
	byK := map[int]*acc{}
	for u := 0; u < f.N(); u++ {
		deg := f.Degree(u)
		if deg == 0 {
			continue
		}
		var nbSum float64
		for _, v := range f.Neighbors(u) {
			nbSum += float64(f.Degree(int(v)))
		}
		a := byK[deg]
		if a == nil {
			a = &acc{}
			byK[deg] = a
		}
		a.sum += nbSum / float64(deg)
		a.nodes++
	}
	out := make([]KNNPoint, 0, len(byK))
	for k, a := range byK {
		out = append(out, KNNPoint{K: k, KNN: a.sum / float64(a.nodes), Count: a.nodes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}
