package metrics

// Before/after benchmarks for the CSR migration of the clustering
// coefficient, the worst map-probe offender in the package (O(Σ deg²)
// HasEdge calls). referenceGlobalClustering preserves the pre-CSR
// implementation — per-node map dedupe plus global edge-map probes — so
// scripts/bench.sh can record the speedup into BENCH_PR2.json.

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// referenceDistinctNeighbors is the historical map-based neighbor dedupe.
func referenceDistinctNeighbors(g *graph.Graph, u int) []int32 {
	raw := g.Neighbors(u)
	if len(raw) == 0 {
		return nil
	}
	seen := make(map[int32]bool, len(raw))
	out := make([]int32, 0, len(raw))
	for _, v := range raw {
		if int(v) == u || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// referenceGlobalClustering is the historical transitivity computation on
// the mutable Graph (edge-map HasEdge).
func referenceGlobalClustering(g *graph.Graph) float64 {
	n := g.N()
	triangles := 0
	triples := 0
	for u := 0; u < n; u++ {
		nbs := referenceDistinctNeighbors(g, u)
		d := len(nbs)
		triples += d * (d - 1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(nbs[i]), int(nbs[j])) {
					triangles++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	return float64(triangles) / float64(triples)
}

func clusteringBenchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, _, err := gen.PA(gen.PAConfig{N: 10000, M: 3, KC: 100}, xrand.New(17))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// TestReferenceClusteringAgrees keeps the benchmark baseline honest: both
// implementations must report the same coefficient.
func TestReferenceClusteringAgrees(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 3000, M: 3, KC: 100}, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	want := referenceGlobalClustering(g)
	got := GlobalClustering(g.Freeze())
	if want != got {
		t.Fatalf("clustering diverges: reference %.12f, CSR %.12f", want, got)
	}
}

// BenchmarkClusteringReference is the pre-CSR clustering (map probes).
func BenchmarkClusteringReference(b *testing.B) {
	g := clusteringBenchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := referenceGlobalClustering(g); c <= 0 {
			b.Fatal("degenerate clustering")
		}
	}
}

// BenchmarkClusteringCSR is the frozen clustering (sorted-range binary
// search), including nothing but the computation — the one-time Freeze is
// outside the loop, as in real use.
func BenchmarkClusteringCSR(b *testing.B) {
	f := clusteringBenchGraph(b).Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := GlobalClustering(f); c <= 0 {
			b.Fatal("degenerate clustering")
		}
	}
}
