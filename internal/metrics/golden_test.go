package metrics

// Golden-seed regression tests for the CSR-backed metrics. The constants
// were captured from the pre-CSR (edge-map HasEdge, map-based neighbor
// dedupe) implementation at the seed of this PR on the canonical topology
// (PA N=2000 m=2 kc=40, RNG seed 11). The frozen metrics must reproduce
// them exactly.

import (
	"math"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

func goldenMetricsFrozen(t testing.TB) *graph.Frozen {
	t.Helper()
	g, _, err := gen.PA(gen.PAConfig{N: 2000, M: 2, KC: 40}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return g.Freeze()
}

func TestGoldenClustering(t *testing.T) {
	t.Parallel()
	f := goldenMetricsFrozen(t)
	if c := GlobalClustering(f); math.Abs(c-0.0057032499) > 1e-9 {
		t.Fatalf("global clustering = %.10f, want 0.0057032499", c)
	}
	if c := AvgLocalClustering(f); math.Abs(c-0.0095890699) > 1e-9 {
		t.Fatalf("avg local clustering = %.10f, want 0.0095890699", c)
	}
}

func TestGoldenAssortativityAndKNN(t *testing.T) {
	t.Parallel()
	f := goldenMetricsFrozen(t)
	r, err := DegreeAssortativity(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-(-0.0806627465)) > 1e-9 {
		t.Fatalf("assortativity = %.10f, want -0.0806627465", r)
	}
	knn := AverageNeighborDegree(f)
	if len(knn) != 32 {
		t.Fatalf("knn classes = %d, want 32", len(knn))
	}
	first, last := knn[0], knn[len(knn)-1]
	if first.K != 2 || first.Count != 1005 || math.Abs(first.KNN-11.792537) > 1e-5 {
		t.Fatalf("knn[0] = %+v, want {2 11.792537 1005}", first)
	}
	if last.K != 40 || last.Count != 12 || math.Abs(last.KNN-9.404167) > 1e-5 {
		t.Fatalf("knn[last] = %+v, want {40 9.404167 12}", last)
	}
}

func TestGoldenRichClubAndDiameter(t *testing.T) {
	t.Parallel()
	f := goldenMetricsFrozen(t)
	rc := RichClub(f)
	if len(rc) != 40 {
		t.Fatalf("rich club thresholds = %d, want 40", len(rc))
	}
	deep := rc[len(rc)-1]
	if deep.K != 39 || deep.Nodes != 12 || math.Abs(deep.Phi-0.2575757576) > 1e-9 {
		t.Fatalf("rich club deepest = %+v, want {39 12 0.2575757576}", deep)
	}
	ed, err := EffectiveDiameter(f, 0.9, 64, xrand.New(35))
	if err != nil {
		t.Fatal(err)
	}
	if ed != 5 {
		t.Fatalf("effective diameter = %d, want 5", ed)
	}
}

func TestGoldenBetweennessAndCores(t *testing.T) {
	t.Parallel()
	f := goldenMetricsFrozen(t)
	bc := f.Betweenness(32, xrand.New(37))
	var sum float64
	for _, b := range bc {
		sum += b
	}
	if math.Abs(sum-7218250.0) > 1e-3 {
		t.Fatalf("betweenness sum = %.6f, want 7218250", sum)
	}
	if math.Abs(bc[17]-75353.761315) > 1e-4 {
		t.Fatalf("bc[17] = %.6f, want 75353.761315", bc[17])
	}
	core := f.CoreNumbers()
	csum := 0
	for _, c := range core {
		csum += c
	}
	if csum != 4000 || f.MaxCore() != 2 {
		t.Fatalf("core sum=%d max=%d, want 4000/2", csum, f.MaxCore())
	}
}
