package metrics

import (
	"math"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// clique builds a complete graph on n nodes.
func clique(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// pathG builds a path graph on n nodes.
func pathG(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRichClubClique(t *testing.T) {
	t.Parallel()
	g := clique(t, 6)
	pts := RichClub(g.Freeze())
	if len(pts) == 0 {
		t.Fatal("no rich-club points")
	}
	for _, p := range pts {
		if p.Phi != 1 {
			t.Fatalf("clique rich-club phi(%d) = %v, want 1", p.K, p.Phi)
		}
		if p.Nodes != 6 {
			t.Fatalf("club size %d, want 6 (all degrees equal)", p.Nodes)
		}
	}
}

func TestRichClubStarHasNoClub(t *testing.T) {
	t.Parallel()
	// A star's hub has no peer of comparable degree: the k>=1 club is the
	// hub alone, so the series stops at k=0 where phi counts hub-leaf
	// edges only.
	g := graph.New(6)
	for v := 1; v < 6; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	pts := RichClub(g.Freeze())
	if len(pts) != 1 || pts[0].K != 0 {
		t.Fatalf("star should only have the k=0 club: %+v", pts)
	}
	// 5 edges among 15 pairs.
	if math.Abs(pts[0].Phi-5.0/15) > 1e-12 {
		t.Fatalf("phi(0) = %v, want 1/3", pts[0].Phi)
	}
}

func TestRichClubMonotoneClubSize(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 1000, M: 2}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	pts := RichClub(g.Freeze())
	if len(pts) < 5 {
		t.Fatalf("PA graph should have a deep club series: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Nodes > pts[i-1].Nodes {
			t.Fatalf("club size must shrink with k: %d -> %d", pts[i-1].Nodes, pts[i].Nodes)
		}
	}
}

func TestRichClubCutoffFlattensClub(t *testing.T) {
	t.Parallel()
	// HAPA without a cutoff forms super-hub cores; kc=10 destroys them.
	free, _, err := gen.HAPA(gen.HAPAConfig{N: 2000, M: 2}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	capped, _, err := gen.HAPA(gen.HAPAConfig{N: 2000, M: 2, KC: 10}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	maxK := func(pts []RichClubPoint) int { return pts[len(pts)-1].K }
	if maxK(RichClub(free.Freeze())) <= maxK(RichClub(capped.Freeze())) {
		t.Fatalf("uncapped HAPA club depth %d should exceed capped %d",
			maxK(RichClub(free.Freeze())), maxK(RichClub(capped.Freeze())))
	}
}

func TestEffectiveDiameterPath(t *testing.T) {
	t.Parallel()
	g := pathG(t, 11) // distances 1..10 from the ends
	d, err := EffectiveDiameter(g.Freeze(), 1.0, g.N(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Fatalf("full-quantile effective diameter = %d, want 10", d)
	}
	d90, err := EffectiveDiameter(g.Freeze(), 0.9, g.N(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d90 >= 10 || d90 < 5 {
		t.Fatalf("90%% effective diameter = %d, want in [5,10)", d90)
	}
}

func TestEffectiveDiameterClique(t *testing.T) {
	t.Parallel()
	g := clique(t, 8)
	d, err := EffectiveDiameter(g.Freeze(), 0.9, g.N(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("clique effective diameter = %d, want 1", d)
	}
}

func TestEffectiveDiameterValidation(t *testing.T) {
	t.Parallel()
	g := clique(t, 4)
	if _, err := EffectiveDiameter(g.Freeze(), 0, 4, nil); err == nil {
		t.Error("q=0 should fail")
	}
	if _, err := EffectiveDiameter(g.Freeze(), 1.5, 4, nil); err == nil {
		t.Error("q>1 should fail")
	}
	if _, err := EffectiveDiameter(graph.New(0).Freeze(), 0.9, 1, nil); err == nil {
		t.Error("empty graph should fail")
	}
	if _, err := EffectiveDiameter(graph.New(3).Freeze(), 0.9, 3, nil); err == nil {
		t.Error("edgeless graph has no reachable pairs")
	}
}

func TestEffectiveDiameterSampledClose(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 3000, M: 2}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	full, err := EffectiveDiameter(g.Freeze(), 0.9, g.N(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := EffectiveDiameter(g.Freeze(), 0.9, 64, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if diff := sampled - full; diff < -1 || diff > 1 {
		t.Fatalf("sampled estimate %d far from full %d", sampled, full)
	}
}

func TestSitePercolationValidation(t *testing.T) {
	t.Parallel()
	g := clique(t, 4)
	if _, err := SitePercolation(g, 1, 1, nil); err == nil {
		t.Error("steps<2 should fail")
	}
	if _, err := SitePercolation(g, 4, 0, nil); err == nil {
		t.Error("trials<1 should fail")
	}
	if _, err := SitePercolation(graph.New(0), 4, 1, nil); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestSitePercolationEndpoints(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 800, M: 2}, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := SitePercolation(g, 10, 3, xrand.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("want 10 points, got %d", len(pts))
	}
	last := pts[len(pts)-1]
	if last.Occupied != 1 || last.GiantFrac < 0.99 {
		t.Fatalf("p=1 must keep the giant component: %+v", last)
	}
	first := pts[0]
	if first.GiantFrac > 0.2 {
		t.Fatalf("p=0.1 should shatter the network: %+v", first)
	}
	for _, p := range pts {
		if p.GiantFrac < 0 || p.GiantFrac > 1 {
			t.Fatalf("giant fraction out of range: %+v", p)
		}
	}
}

func TestPercolationThresholdInterpolation(t *testing.T) {
	t.Parallel()
	pts := []PercolationPoint{
		{Occupied: 0.2, GiantFrac: 0.0},
		{Occupied: 0.4, GiantFrac: 0.1},
		{Occupied: 0.6, GiantFrac: 0.5},
	}
	got := PercolationThreshold(pts, 0.3)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("threshold = %v, want 0.5 (midway 0.4..0.6)", got)
	}
	if PercolationThreshold(pts, 0.9) != 1 {
		t.Error("unreached fraction should return 1")
	}
	if PercolationThreshold(pts[:1], 0.0) != 0.2 {
		t.Error("first point already above target")
	}
}

func TestCutoffRaisesPercolationThreshold(t *testing.T) {
	t.Parallel()
	// Random-failure resilience is hub-driven: capping degrees at kc=6
	// must raise the occupation needed for a big giant component.
	free, _, err := gen.PA(gen.PAConfig{N: 2500, M: 2}, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	capped, _, err := gen.PA(gen.PAConfig{N: 2500, M: 2, KC: 6}, xrand.New(19))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(23)
	pf, err := SitePercolation(free, 20, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := SitePercolation(capped, 20, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	thF := PercolationThreshold(pf, 0.25)
	thC := PercolationThreshold(pc, 0.25)
	if thF > thC {
		t.Fatalf("uncapped threshold %v should be <= capped %v", thF, thC)
	}
}

func TestDistanceDistribution(t *testing.T) {
	t.Parallel()
	g := pathG(t, 5)
	hist, unreachable, err := DistanceDistribution(g.Freeze(), g.N(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if unreachable != 0 {
		t.Fatalf("path graph has no unreachable pairs: %d", unreachable)
	}
	// Path 0-1-2-3-4, all sources: distance 1 pairs = 8 (ordered), 2 -> 6,
	// 3 -> 4, 4 -> 2.
	want := []int64{0, 8, 6, 4, 2}
	if len(hist) != len(want) {
		t.Fatalf("hist length %d, want %d", len(hist), len(want))
	}
	for d, w := range want {
		if hist[d] != w {
			t.Fatalf("hist[%d] = %d, want %d", d, hist[d], w)
		}
	}

	// Disconnected pair accounting.
	g2 := graph.New(3)
	if err := g2.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	_, unreachable, err = DistanceDistribution(g2.Freeze(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if unreachable != 4 {
		t.Fatalf("unreachable = %d, want 4 (2 per direction for the isolate)", unreachable)
	}
	if _, _, err := DistanceDistribution(graph.New(0).Freeze(), 1, nil); err == nil {
		t.Error("empty graph should fail")
	}
}
