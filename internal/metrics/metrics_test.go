package metrics

import (
	"errors"
	"math"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

func triangle(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGlobalClusteringTriangle(t *testing.T) {
	t.Parallel()
	if c := GlobalClustering(triangle(t).Freeze()); c != 1 {
		t.Fatalf("triangle clustering %v, want 1", c)
	}
}

func TestGlobalClusteringStar(t *testing.T) {
	t.Parallel()
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if c := GlobalClustering(g.Freeze()); c != 0 {
		t.Fatalf("star clustering %v, want 0", c)
	}
}

func TestGlobalClusteringEmpty(t *testing.T) {
	t.Parallel()
	if c := GlobalClustering(graph.New(4).Freeze()); c != 0 {
		t.Fatalf("edgeless clustering %v", c)
	}
}

func TestGlobalClusteringKite(t *testing.T) {
	t.Parallel()
	// Triangle plus a pendant: 1 triangle, triples = C(2,2 at apexes):
	// node degrees: 0:2, 1:2, 2:3, 3:1 -> triples = 1+1+3+0 = 5;
	// triangles counted per apex = 3. Transitivity = 3/5.
	g := triangle(t)
	g.AddNode()
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if c := GlobalClustering(g.Freeze()); math.Abs(c-0.6) > 1e-12 {
		t.Fatalf("kite transitivity %v, want 0.6", c)
	}
}

func TestAvgLocalClustering(t *testing.T) {
	t.Parallel()
	// Kite again: C(0)=1, C(1)=1, C(2)=1/3, C(3)=0 -> mean 7/12.
	g := triangle(t)
	g.AddNode()
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if c := AvgLocalClustering(g.Freeze()); math.Abs(c-7.0/12) > 1e-12 {
		t.Fatalf("avg local clustering %v, want %v", c, 7.0/12)
	}
}

func TestClusteringIgnoresMultiEdges(t *testing.T) {
	t.Parallel()
	g := triangle(t)
	if err := g.AddEdge(0, 1); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 0); err != nil { // self-loop
		t.Fatal(err)
	}
	if c := GlobalClustering(g.Freeze()); c != 1 {
		t.Fatalf("clustering with multigraph artifacts %v, want 1", c)
	}
}

func TestPATreeHasNoClustering(t *testing.T) {
	t.Parallel()
	// Paper §III: m=1 yields "a scale-free tree without clustering".
	g, _, err := gen.PA(gen.PAConfig{N: 2000, M: 1}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if c := GlobalClustering(g.Freeze()); c != 0 {
		t.Fatalf("PA tree clustering %v, want 0", c)
	}
}

func TestDegreeAssortativity(t *testing.T) {
	t.Parallel()
	// A star is maximally disassortative (r = -1).
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	r, err := DegreeAssortativity(g.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-9 {
		t.Fatalf("star assortativity %v, want -1", r)
	}
	// Edgeless graph errors.
	if _, err := DegreeAssortativity(graph.New(3).Freeze()); !errors.Is(err, ErrNoEdges) {
		t.Fatalf("err = %v", err)
	}
	// Regular ring: degenerate correlation reported as 0.
	ring, err := gen.Ring(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err = DegreeAssortativity(ring.Freeze())
	if err != nil || r != 0 {
		t.Fatalf("ring assortativity %v, %v", r, err)
	}
}

func TestPAIsNotAssortative(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 5000, M: 2}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r, err := DegreeAssortativity(g.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	if r > 0.05 {
		t.Fatalf("PA assortativity %v; growth models are non-assortative", r)
	}
}

func TestRobustnessValidation(t *testing.T) {
	t.Parallel()
	g := triangle(t)
	if _, err := Robustness(g, RemoveRandom, 0, 0.5, xrand.New(1)); err == nil {
		t.Error("step 0 should fail")
	}
	if _, err := Robustness(g, RemovalStrategy(9), 0.1, 0.5, xrand.New(1)); err == nil {
		t.Error("unknown strategy should fail")
	}
	if _, err := Robustness(graph.New(0), RemoveRandom, 0.1, 0.5, xrand.New(1)); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestRobustnessDoesNotMutateInput(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 500, M: 2}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	before := g.M()
	if _, err := Robustness(g, RemoveHighestDegree, 0.05, 0.5, xrand.New(6)); err != nil {
		t.Fatal(err)
	}
	if g.M() != before {
		t.Fatalf("input mutated: %d -> %d edges", before, g.M())
	}
}

func TestRobustnessMonotoneRemoval(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 1000, M: 2}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Robustness(g, RemoveRandom, 0.05, 0.6, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("too few points: %d", len(pts))
	}
	if pts[0].RemovedFrac != 0 || pts[0].GiantFrac < 0.99 {
		t.Fatalf("initial point %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RemovedFrac <= pts[i-1].RemovedFrac {
			t.Fatal("removed fraction not increasing")
		}
		if pts[i].GiantFrac > pts[i-1].GiantFrac+1e-9 {
			t.Fatal("giant fraction increased after removals")
		}
	}
}

func TestRobustYetFragile(t *testing.T) {
	t.Parallel()
	// The paper's §III claim: scale-free networks tolerate random
	// failures but shatter under targeted attacks. Compare the giant
	// fraction after removing 20% of a PA network both ways.
	g, _, err := gen.PA(gen.PAConfig{N: 4000, M: 2}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	random, err := Robustness(g, RemoveRandom, 0.05, 0.2, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	attack, err := Robustness(g, RemoveHighestDegree, 0.05, 0.2, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rndGiant := random[len(random)-1].GiantFrac
	atkGiant := attack[len(attack)-1].GiantFrac
	if rndGiant < 0.6 {
		t.Fatalf("random failures collapsed the giant: %.2f", rndGiant)
	}
	if atkGiant >= rndGiant {
		t.Fatalf("targeted attack (%.2f) should hurt more than random (%.2f)", atkGiant, rndGiant)
	}
}

func TestHardCutoffBluntsAttacks(t *testing.T) {
	t.Parallel()
	// The motivation payoff: with no super-hubs to decapitate, a
	// hard-cutoff topology should survive targeted attacks better.
	giantAfterAttack := func(kc int, seed uint64) float64 {
		g, _, err := gen.PA(gen.PAConfig{N: 4000, M: 2, KC: kc}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		pts, err := Robustness(g, RemoveHighestDegree, 0.05, 0.25, xrand.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		return pts[len(pts)-1].GiantFrac
	}
	var capped, uncapped float64
	for s := uint64(0); s < 3; s++ {
		capped += giantAfterAttack(10, 20+2*s)
		uncapped += giantAfterAttack(gen.NoCutoff, 30+2*s)
	}
	if capped <= uncapped {
		t.Fatalf("hard cutoff should improve attack tolerance: kc=10 giant %.2f vs none %.2f",
			capped/3, uncapped/3)
	}
}

func TestCriticalFraction(t *testing.T) {
	t.Parallel()
	pts := []RobustnessPoint{
		{RemovedFrac: 0, GiantFrac: 1},
		{RemovedFrac: 0.1, GiantFrac: 0.5},
		{RemovedFrac: 0.2, GiantFrac: 0.05},
	}
	if f := CriticalFraction(pts, 0.1); f != 0.2 {
		t.Fatalf("critical fraction %v, want 0.2", f)
	}
	if f := CriticalFraction(pts, 0.01); f != 1 {
		t.Fatalf("never-crossed fraction %v, want 1", f)
	}
}
