// Package metrics provides the structural network metrics the paper's
// motivation leans on: clustering, degree assortativity, and the
// robustness analysis behind "scale-free networks are robust against
// random failures yet fragile against attacks targeted to hubs" (§III,
// citing Albert et al.). Hard cutoffs remove super-hubs, so they should —
// and, per the Attack experiment, do — blunt exactly that fragility.
package metrics

import (
	"errors"
	"math"
	"sort"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// ErrNoEdges is returned by metrics that are undefined on edgeless graphs.
var ErrNoEdges = errors.New("metrics: graph has no edges")

// GlobalClustering returns the transitivity of the frozen topology:
// 3×triangles / connected triples. Multigraph artifacts (self-loops,
// parallel edges) are ignored by considering distinct neighbor sets.
// Returns 0 for graphs with no connected triples.
//
// The computation runs on the CSR form via clusteringScan: flat-array
// neighbor marks instead of the historical per-pair edge-map probes and
// per-node dedupe maps. Callers holding a *graph.Graph freeze once
// (g.Freeze()) and may share the snapshot across every metric in this
// package.
func GlobalClustering(f *graph.Frozen) float64 {
	triangles := 0
	triples := 0
	clusteringScan(f, func(u, d, links int) {
		triples += d * (d - 1) / 2
		triangles += links // links among u's neighbors: one triangle count per apex
	})
	if triples == 0 {
		return 0
	}
	return float64(triangles) / float64(triples)
}

// AvgLocalClustering returns the mean of per-node clustering coefficients
// (Watts–Strogatz definition); nodes with degree < 2 contribute 0.
func AvgLocalClustering(f *graph.Frozen) float64 {
	n := f.N()
	if n == 0 {
		return 0
	}
	var sum float64
	clusteringScan(f, func(u, d, links int) {
		if d >= 2 {
			sum += 2 * float64(links) / float64(d*(d-1))
		}
	})
	return sum / float64(n)
}

// clusteringScan visits every node with its distinct-neighbor count d and
// the number of edges among those neighbors (links). It is the shared
// engine of both clustering coefficients, built for the CSR layout:
//
//   - u's distinct neighbors are marked in an epoch-stamped array
//     (O(1) clear per node);
//   - for each marked neighbor v, v's sorted range is deduped inline and
//     every marked w counts — a pure sequential array scan, no hashing,
//     no binary search. Each neighbor-pair edge is seen from both sides,
//     so links = count/2.
//
// The count of links per node is identical to probing every neighbor pair
// with HasEdge (the historical algorithm), which the golden tests pin.
func clusteringScan(f *graph.Frozen, visit func(u, d, links int)) {
	n := f.N()
	mark := make([]int32, n)
	var epoch int32
	var nbs []int32 // reused distinct-neighbor buffer
	for u := 0; u < n; u++ {
		nbs = distinctNeighbors(f, u, nbs[:0])
		d := len(nbs)
		if d < 2 {
			visit(u, d, 0)
			continue
		}
		epoch++ // one epoch per apex; n <= MaxInt32 nodes, no wraparound
		for _, v := range nbs {
			mark[v] = epoch
		}
		count := 0
		for _, v := range nbs {
			prev := int32(-1)
			for _, w := range f.SortedNeighbors(int(v)) {
				if w == prev {
					continue // duplicates are adjacent in the sorted range
				}
				prev = w
				if w == v {
					continue // self-loop at v
				}
				if mark[w] == epoch {
					count++
				}
			}
		}
		visit(u, d, count/2)
	}
}

// distinctNeighbors appends u's neighbor set — no duplicates, no self —
// to buf (ascending). The sorted CSR range makes this a linear scan:
// duplicates are adjacent.
func distinctNeighbors(f *graph.Frozen, u int, buf []int32) []int32 {
	prev := int32(-1)
	for _, v := range f.SortedNeighbors(u) {
		if v == prev {
			continue
		}
		prev = v
		if int(v) == u {
			continue
		}
		buf = append(buf, v)
	}
	return buf
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's r): positive means hubs link to hubs, negative means
// hubs link to leaves. Growth models like PA are disassortative.
func DegreeAssortativity(f *graph.Frozen) (float64, error) {
	var sx, sy, sxy, sxx, syy, m float64
	n := f.N()
	for u := 0; u < n; u++ {
		du := float64(f.Degree(u))
		for _, v := range f.Neighbors(u) {
			// Each undirected edge contributes both orientations, the
			// standard symmetric treatment.
			dv := float64(f.Degree(int(v)))
			sx += du
			sy += dv
			sxy += du * dv
			sxx += du * du
			syy += dv * dv
			m++
		}
	}
	if m == 0 {
		return 0, ErrNoEdges
	}
	num := sxy/m - (sx/m)*(sy/m)
	den := math.Sqrt((sxx/m - (sx/m)*(sx/m)) * (syy/m - (sy/m)*(sy/m)))
	if den == 0 {
		return 0, nil // regular graph: correlation undefined, report 0
	}
	return num / den, nil
}

// RemovalStrategy selects which nodes a robustness experiment deletes.
type RemovalStrategy int

const (
	// RemoveRandom deletes uniformly random nodes (random failures).
	RemoveRandom RemovalStrategy = iota + 1
	// RemoveHighestDegree deletes nodes in descending degree order
	// (a targeted attack on hubs — the "Achilles heel").
	RemoveHighestDegree
	// RemoveHighestBetweenness deletes the node carrying the most
	// shortest-path traffic each step — the strongest (and costliest)
	// attack, targeting the peers "through which most of the traffic go"
	// (§III). Uses sampled betweenness for speed.
	RemoveHighestBetweenness
)

// String names the strategy.
func (s RemovalStrategy) String() string {
	switch s {
	case RemoveRandom:
		return "random failure"
	case RemoveHighestDegree:
		return "targeted attack"
	case RemoveHighestBetweenness:
		return "betweenness attack"
	default:
		return "unknown"
	}
}

// RobustnessPoint is one measurement of a removal experiment.
type RobustnessPoint struct {
	// RemovedFrac is the fraction of original nodes removed.
	RemovedFrac float64
	// GiantFrac is the giant component's share of the surviving nodes'
	// original count (giant size / original N).
	GiantFrac float64
}

// DefaultBetweennessPivots is the Brandes–Pich pivot budget behind
// RemoveHighestBetweenness when RobustnessConfig.BetweennessPivots is
// zero — the historical hardwired value.
const DefaultBetweennessPivots = 64

// RobustnessConfig parameterizes a removal experiment beyond the core
// (strategy, stepFrac, maxFrac) triple of Robustness.
type RobustnessConfig struct {
	Strategy RemovalStrategy
	// StepFrac is the fraction of original nodes removed between
	// measurements; MaxFrac is where the experiment stops. Both in (0,1].
	StepFrac, MaxFrac float64
	// BetweennessPivots bounds the pivot sample behind
	// RemoveHighestBetweenness; 0 selects DefaultBetweennessPivots,
	// values >= N run exact Brandes. Each pivot's dependency sum is
	// scaled up by N/pivots (see Frozen.Betweenness), so scores at
	// different pivot budgets live on the same scale and only their
	// variance differs.
	BetweennessPivots int
	// BatchedBetweenness switches RemoveHighestBetweenness from the
	// adaptive per-removal recomputation (the historical semantics, cost
	// pivots·O(V+E) per removed node) to one recomputation per
	// measurement step: the whole step's nodes are removed in descending
	// estimated-betweenness order from a single pivot pass, cost
	// pivots·O(V+E) per step. The batch is the estimator's documented
	// approximation — scores go stale within a step — and in exchange
	// the attack spec runs at N=10⁶. Per-step estimator uncertainty is
	// reported through BetweennessStep.
	BatchedBetweenness bool
}

// BetweennessStep reports the estimator accounting of one batched
// betweenness-attack step: the mean Brandes–Pich score of the nodes the
// step removed, and the mean standard error of those scores (see
// Frozen.BetweennessSampled). Steps that fell back to degree order (no
// positive-betweenness nodes left) report zeros.
type BetweennessStep struct {
	// RemovedFrac is the fraction of original nodes removed after this
	// step completed — aligns with the RobustnessPoint measured then.
	RemovedFrac float64
	MeanBC      float64
	MeanSE      float64
}

// Robustness removes nodes in steps of stepFrac (e.g. 0.02) up to maxFrac,
// by the given strategy, measuring the giant-component fraction after each
// step. For RemoveHighestDegree, degrees are recomputed after every step
// (adaptive attack, the stronger variant). The input graph is not
// modified.
func Robustness(g *graph.Graph, strategy RemovalStrategy, stepFrac, maxFrac float64, rng *xrand.RNG) ([]RobustnessPoint, error) {
	pts, _, err := RobustnessWith(g, RobustnessConfig{
		Strategy: strategy, StepFrac: stepFrac, MaxFrac: maxFrac,
	}, rng)
	return pts, err
}

// RobustnessWith is Robustness with the full configuration surface. With a
// zero-valued extension config it is behavior- and RNG-identical to
// Robustness. The second return value carries per-step estimator
// accounting and is non-nil only for the batched betweenness attack.
func RobustnessWith(g *graph.Graph, cfg RobustnessConfig, rng *xrand.RNG) ([]RobustnessPoint, []BetweennessStep, error) {
	strategy, stepFrac, maxFrac := cfg.Strategy, cfg.StepFrac, cfg.MaxFrac
	pivots := cfg.BetweennessPivots
	if pivots == 0 {
		pivots = DefaultBetweennessPivots
	}
	if stepFrac <= 0 || stepFrac > 1 || maxFrac <= 0 || maxFrac > 1 {
		return nil, nil, errors.New("metrics: fractions must be in (0,1]")
	}
	if pivots < 0 {
		return nil, nil, errors.New("metrics: negative betweenness pivots")
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	n := g.N()
	if n == 0 {
		return nil, nil, errors.New("metrics: empty graph")
	}
	work := g.Clone()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n

	removeNode := func(u int) {
		// Drop every incident edge; the node stays as an isolate, which
		// the giant-component measurement ignores.
		nbs := append([]int32(nil), work.Neighbors(u)...)
		for _, v := range nbs {
			for work.RemoveEdge(u, int(v)) {
			}
		}
		alive[u] = false
		aliveCount--
	}

	var pts []RobustnessPoint
	measure := func() {
		giant := 0
		for _, comp := range work.ConnectedComponents() {
			size := 0
			for _, u := range comp {
				if alive[u] {
					size++
				}
			}
			if size > giant {
				giant = size
			}
		}
		pts = append(pts, RobustnessPoint{
			RemovedFrac: float64(n-aliveCount) / float64(n),
			GiantFrac:   float64(giant) / float64(n),
		})
	}
	measure()

	step := int(math.Round(stepFrac * float64(n)))
	if step < 1 {
		step = 1
	}
	batched := cfg.BatchedBetweenness && strategy == RemoveHighestBetweenness
	var bcSteps []BetweennessStep
	for float64(n-aliveCount)/float64(n) < maxFrac && aliveCount > 0 {
		if batched {
			bs := removeBetweennessBatch(work, alive, &aliveCount, removeNode, step, pivots, rng)
			bs.RemovedFrac = float64(n-aliveCount) / float64(n)
			bcSteps = append(bcSteps, bs)
			measure()
			continue
		}
		for i := 0; i < step && aliveCount > 0; i++ {
			u := -1
			switch strategy {
			case RemoveRandom:
				u = randomAlive(alive, aliveCount, rng)
			case RemoveHighestDegree:
				u = highestDegreeAlive(work, alive)
			case RemoveHighestBetweenness:
				u = highestBetweennessAlive(work, alive, rng, pivots)
			default:
				return nil, nil, errors.New("metrics: unknown removal strategy")
			}
			if u < 0 {
				break
			}
			removeNode(u)
		}
		measure()
	}
	return pts, bcSteps, nil
}

// removeBetweennessBatch runs one batched attack step: a single
// pivot-sampled Brandes pass prices every live node, the top `step` by
// estimated score (ties toward lower IDs) are removed in that order, and
// any shortfall — fewer than `step` live nodes with positive score — falls
// back to adaptive highest-degree removal, mirroring
// highestBetweennessAlive's fallback.
func removeBetweennessBatch(work *graph.Graph, alive []bool, aliveCount *int, removeNode func(int), step, pivots int, rng *xrand.RNG) BetweennessStep {
	bc, se := work.Freeze().BetweennessSampled(pivots, rng)
	cand := make([]int32, 0, len(alive))
	for u, a := range alive {
		if a && bc[u] > 0 {
			cand = append(cand, int32(u))
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if bc[cand[a]] != bc[cand[b]] {
			return bc[cand[a]] > bc[cand[b]]
		}
		return cand[a] < cand[b]
	})
	if len(cand) > step {
		cand = cand[:step]
	}
	var bs BetweennessStep
	for _, u := range cand {
		bs.MeanBC += bc[u]
		bs.MeanSE += se[u]
		removeNode(int(u))
	}
	if len(cand) > 0 {
		bs.MeanBC /= float64(len(cand))
		bs.MeanSE /= float64(len(cand))
	}
	for i := len(cand); i < step && *aliveCount > 0; i++ {
		u := highestDegreeAlive(work, alive)
		if u < 0 {
			break
		}
		removeNode(u)
	}
	return bs
}

func randomAlive(alive []bool, aliveCount int, rng *xrand.RNG) int {
	if aliveCount == 0 {
		return -1
	}
	pick := rng.Intn(aliveCount)
	for u, a := range alive {
		if !a {
			continue
		}
		if pick == 0 {
			return u
		}
		pick--
	}
	return -1
}

// highestBetweennessAlive picks the live node with the largest sampled
// betweenness (DefaultBetweennessPivots pivots balance accuracy and cost
// inside the removal loop; RobustnessConfig.BetweennessPivots overrides).
func highestBetweennessAlive(g *graph.Graph, alive []bool, rng *xrand.RNG, pivots int) int {
	bc := g.Betweenness(pivots, rng)
	best, bestVal := -1, -1.0
	for u, a := range alive {
		if !a {
			continue
		}
		if bc[u] > bestVal {
			best, bestVal = u, bc[u]
		}
	}
	if bestVal <= 0 {
		// No traffic carriers left; fall back to degree.
		return highestDegreeAlive(g, alive)
	}
	return best
}

func highestDegreeAlive(g *graph.Graph, alive []bool) int {
	best, bestDeg := -1, -1
	for u := range alive {
		if !alive[u] {
			continue
		}
		if d := g.Degree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// CriticalFraction returns the smallest removed fraction at which the
// giant component drops below `threshold` of the network (e.g. 0.1), or
// 1 if it never does within the measured range — a scalar robustness
// summary for comparing topologies.
func CriticalFraction(pts []RobustnessPoint, threshold float64) float64 {
	sorted := append([]RobustnessPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RemovedFrac < sorted[j].RemovedFrac })
	for _, p := range sorted {
		if p.GiantFrac < threshold {
			return p.RemovedFrac
		}
	}
	return 1
}
