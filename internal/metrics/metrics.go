// Package metrics provides the structural network metrics the paper's
// motivation leans on: clustering, degree assortativity, and the
// robustness analysis behind "scale-free networks are robust against
// random failures yet fragile against attacks targeted to hubs" (§III,
// citing Albert et al.). Hard cutoffs remove super-hubs, so they should —
// and, per the Attack experiment, do — blunt exactly that fragility.
package metrics

import (
	"errors"
	"math"
	"sort"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// ErrNoEdges is returned by metrics that are undefined on edgeless graphs.
var ErrNoEdges = errors.New("metrics: graph has no edges")

// GlobalClustering returns the transitivity of g: 3×triangles / connected
// triples. Multigraph artifacts (self-loops, parallel edges) are ignored
// by considering distinct neighbor sets. Returns 0 for graphs with no
// connected triples.
func GlobalClustering(g *graph.Graph) float64 {
	n := g.N()
	triangles := 0
	triples := 0
	for u := 0; u < n; u++ {
		nbs := distinctNeighbors(g, u)
		d := len(nbs)
		triples += d * (d - 1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(nbs[i]), int(nbs[j])) {
					triangles++ // counted once per apex u -> 3x per triangle
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	return float64(triangles) / float64(triples)
}

// AvgLocalClustering returns the mean of per-node clustering coefficients
// (Watts–Strogatz definition); nodes with degree < 2 contribute 0.
func AvgLocalClustering(g *graph.Graph) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	var sum float64
	for u := 0; u < n; u++ {
		nbs := distinctNeighbors(g, u)
		d := len(nbs)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(nbs[i]), int(nbs[j])) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(d*(d-1))
	}
	return sum / float64(n)
}

// distinctNeighbors returns u's neighbor set without duplicates or self.
func distinctNeighbors(g *graph.Graph, u int) []int32 {
	raw := g.Neighbors(u)
	if len(raw) == 0 {
		return nil
	}
	seen := make(map[int32]bool, len(raw))
	out := make([]int32, 0, len(raw))
	for _, v := range raw {
		if int(v) == u || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's r): positive means hubs link to hubs, negative means
// hubs link to leaves. Growth models like PA are disassortative.
func DegreeAssortativity(g *graph.Graph) (float64, error) {
	var sx, sy, sxy, sxx, syy, m float64
	n := g.N()
	for u := 0; u < n; u++ {
		du := float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			// Each undirected edge contributes both orientations, the
			// standard symmetric treatment.
			dv := float64(g.Degree(int(v)))
			sx += du
			sy += dv
			sxy += du * dv
			sxx += du * du
			syy += dv * dv
			m++
		}
	}
	if m == 0 {
		return 0, ErrNoEdges
	}
	num := sxy/m - (sx/m)*(sy/m)
	den := math.Sqrt((sxx/m - (sx/m)*(sx/m)) * (syy/m - (sy/m)*(sy/m)))
	if den == 0 {
		return 0, nil // regular graph: correlation undefined, report 0
	}
	return num / den, nil
}

// RemovalStrategy selects which nodes a robustness experiment deletes.
type RemovalStrategy int

const (
	// RemoveRandom deletes uniformly random nodes (random failures).
	RemoveRandom RemovalStrategy = iota + 1
	// RemoveHighestDegree deletes nodes in descending degree order
	// (a targeted attack on hubs — the "Achilles heel").
	RemoveHighestDegree
	// RemoveHighestBetweenness deletes the node carrying the most
	// shortest-path traffic each step — the strongest (and costliest)
	// attack, targeting the peers "through which most of the traffic go"
	// (§III). Uses sampled betweenness for speed.
	RemoveHighestBetweenness
)

// String names the strategy.
func (s RemovalStrategy) String() string {
	switch s {
	case RemoveRandom:
		return "random failure"
	case RemoveHighestDegree:
		return "targeted attack"
	case RemoveHighestBetweenness:
		return "betweenness attack"
	default:
		return "unknown"
	}
}

// RobustnessPoint is one measurement of a removal experiment.
type RobustnessPoint struct {
	// RemovedFrac is the fraction of original nodes removed.
	RemovedFrac float64
	// GiantFrac is the giant component's share of the surviving nodes'
	// original count (giant size / original N).
	GiantFrac float64
}

// Robustness removes nodes in steps of stepFrac (e.g. 0.02) up to maxFrac,
// by the given strategy, measuring the giant-component fraction after each
// step. For RemoveHighestDegree, degrees are recomputed after every step
// (adaptive attack, the stronger variant). The input graph is not
// modified.
func Robustness(g *graph.Graph, strategy RemovalStrategy, stepFrac, maxFrac float64, rng *xrand.RNG) ([]RobustnessPoint, error) {
	if stepFrac <= 0 || stepFrac > 1 || maxFrac <= 0 || maxFrac > 1 {
		return nil, errors.New("metrics: fractions must be in (0,1]")
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	n := g.N()
	if n == 0 {
		return nil, errors.New("metrics: empty graph")
	}
	work := g.Clone()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n

	removeNode := func(u int) {
		// Drop every incident edge; the node stays as an isolate, which
		// the giant-component measurement ignores.
		nbs := append([]int32(nil), work.Neighbors(u)...)
		for _, v := range nbs {
			for work.RemoveEdge(u, int(v)) {
			}
		}
		alive[u] = false
		aliveCount--
	}

	var pts []RobustnessPoint
	measure := func() {
		giant := 0
		for _, comp := range work.ConnectedComponents() {
			size := 0
			for _, u := range comp {
				if alive[u] {
					size++
				}
			}
			if size > giant {
				giant = size
			}
		}
		pts = append(pts, RobustnessPoint{
			RemovedFrac: float64(n-aliveCount) / float64(n),
			GiantFrac:   float64(giant) / float64(n),
		})
	}
	measure()

	step := int(math.Round(stepFrac * float64(n)))
	if step < 1 {
		step = 1
	}
	for float64(n-aliveCount)/float64(n) < maxFrac && aliveCount > 0 {
		for i := 0; i < step && aliveCount > 0; i++ {
			u := -1
			switch strategy {
			case RemoveRandom:
				u = randomAlive(alive, aliveCount, rng)
			case RemoveHighestDegree:
				u = highestDegreeAlive(work, alive)
			case RemoveHighestBetweenness:
				u = highestBetweennessAlive(work, alive, rng)
			default:
				return nil, errors.New("metrics: unknown removal strategy")
			}
			if u < 0 {
				break
			}
			removeNode(u)
		}
		measure()
	}
	return pts, nil
}

func randomAlive(alive []bool, aliveCount int, rng *xrand.RNG) int {
	if aliveCount == 0 {
		return -1
	}
	pick := rng.Intn(aliveCount)
	for u, a := range alive {
		if !a {
			continue
		}
		if pick == 0 {
			return u
		}
		pick--
	}
	return -1
}

// highestBetweennessAlive picks the live node with the largest sampled
// betweenness (64 pivots balance accuracy and cost inside the removal
// loop).
func highestBetweennessAlive(g *graph.Graph, alive []bool, rng *xrand.RNG) int {
	bc := g.Betweenness(64, rng)
	best, bestVal := -1, -1.0
	for u, a := range alive {
		if !a {
			continue
		}
		if bc[u] > bestVal {
			best, bestVal = u, bc[u]
		}
	}
	if bestVal <= 0 {
		// No traffic carriers left; fall back to degree.
		return highestDegreeAlive(g, alive)
	}
	return best
}

func highestDegreeAlive(g *graph.Graph, alive []bool) int {
	best, bestDeg := -1, -1
	for u := range alive {
		if !alive[u] {
			continue
		}
		if d := g.Degree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// CriticalFraction returns the smallest removed fraction at which the
// giant component drops below `threshold` of the network (e.g. 0.1), or
// 1 if it never does within the measured range — a scalar robustness
// summary for comparing topologies.
func CriticalFraction(pts []RobustnessPoint, threshold float64) float64 {
	sorted := append([]RobustnessPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RemovedFrac < sorted[j].RemovedFrac })
	for _, p := range sorted {
		if p.GiantFrac < threshold {
			return p.RemovedFrac
		}
	}
	return 1
}
