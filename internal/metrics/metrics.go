// Package metrics provides the structural network metrics the paper's
// motivation leans on: clustering, degree assortativity, and the
// robustness analysis behind "scale-free networks are robust against
// random failures yet fragile against attacks targeted to hubs" (§III,
// citing Albert et al.). Hard cutoffs remove super-hubs, so they should —
// and, per the Attack experiment, do — blunt exactly that fragility.
package metrics

import (
	"errors"
	"math"
	"sort"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// ErrNoEdges is returned by metrics that are undefined on edgeless graphs.
var ErrNoEdges = errors.New("metrics: graph has no edges")

// GlobalClustering returns the transitivity of the frozen topology:
// 3×triangles / connected triples. Multigraph artifacts (self-loops,
// parallel edges) are ignored by considering distinct neighbor sets.
// Returns 0 for graphs with no connected triples.
//
// The computation runs on the CSR form via clusteringScan: flat-array
// neighbor marks instead of the historical per-pair edge-map probes and
// per-node dedupe maps. Callers holding a *graph.Graph freeze once
// (g.Freeze()) and may share the snapshot across every metric in this
// package.
func GlobalClustering(f *graph.Frozen) float64 {
	triangles := 0
	triples := 0
	clusteringScan(f, func(u, d, links int) {
		triples += d * (d - 1) / 2
		triangles += links // links among u's neighbors: one triangle count per apex
	})
	if triples == 0 {
		return 0
	}
	return float64(triangles) / float64(triples)
}

// AvgLocalClustering returns the mean of per-node clustering coefficients
// (Watts–Strogatz definition); nodes with degree < 2 contribute 0.
func AvgLocalClustering(f *graph.Frozen) float64 {
	n := f.N()
	if n == 0 {
		return 0
	}
	var sum float64
	clusteringScan(f, func(u, d, links int) {
		if d >= 2 {
			sum += 2 * float64(links) / float64(d*(d-1))
		}
	})
	return sum / float64(n)
}

// clusteringScan visits every node with its distinct-neighbor count d and
// the number of edges among those neighbors (links). It is the shared
// engine of both clustering coefficients, built for the CSR layout:
//
//   - u's distinct neighbors are marked in an epoch-stamped array
//     (O(1) clear per node);
//   - for each marked neighbor v, v's sorted range is deduped inline and
//     every marked w counts — a pure sequential array scan, no hashing,
//     no binary search. Each neighbor-pair edge is seen from both sides,
//     so links = count/2.
//
// The count of links per node is identical to probing every neighbor pair
// with HasEdge (the historical algorithm), which the golden tests pin.
func clusteringScan(f *graph.Frozen, visit func(u, d, links int)) {
	n := f.N()
	mark := make([]int32, n)
	var epoch int32
	var nbs []int32 // reused distinct-neighbor buffer
	for u := 0; u < n; u++ {
		nbs = distinctNeighbors(f, u, nbs[:0])
		d := len(nbs)
		if d < 2 {
			visit(u, d, 0)
			continue
		}
		epoch++ // one epoch per apex; n <= MaxInt32 nodes, no wraparound
		for _, v := range nbs {
			mark[v] = epoch
		}
		count := 0
		for _, v := range nbs {
			prev := int32(-1)
			for _, w := range f.SortedNeighbors(int(v)) {
				if w == prev {
					continue // duplicates are adjacent in the sorted range
				}
				prev = w
				if w == v {
					continue // self-loop at v
				}
				if mark[w] == epoch {
					count++
				}
			}
		}
		visit(u, d, count/2)
	}
}

// distinctNeighbors appends u's neighbor set — no duplicates, no self —
// to buf (ascending). The sorted CSR range makes this a linear scan:
// duplicates are adjacent.
func distinctNeighbors(f *graph.Frozen, u int, buf []int32) []int32 {
	prev := int32(-1)
	for _, v := range f.SortedNeighbors(u) {
		if v == prev {
			continue
		}
		prev = v
		if int(v) == u {
			continue
		}
		buf = append(buf, v)
	}
	return buf
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's r): positive means hubs link to hubs, negative means
// hubs link to leaves. Growth models like PA are disassortative.
func DegreeAssortativity(f *graph.Frozen) (float64, error) {
	var sx, sy, sxy, sxx, syy, m float64
	n := f.N()
	for u := 0; u < n; u++ {
		du := float64(f.Degree(u))
		for _, v := range f.Neighbors(u) {
			// Each undirected edge contributes both orientations, the
			// standard symmetric treatment.
			dv := float64(f.Degree(int(v)))
			sx += du
			sy += dv
			sxy += du * dv
			sxx += du * du
			syy += dv * dv
			m++
		}
	}
	if m == 0 {
		return 0, ErrNoEdges
	}
	num := sxy/m - (sx/m)*(sy/m)
	den := math.Sqrt((sxx/m - (sx/m)*(sx/m)) * (syy/m - (sy/m)*(sy/m)))
	if den == 0 {
		return 0, nil // regular graph: correlation undefined, report 0
	}
	return num / den, nil
}

// RemovalStrategy selects which nodes a robustness experiment deletes.
type RemovalStrategy int

const (
	// RemoveRandom deletes uniformly random nodes (random failures).
	RemoveRandom RemovalStrategy = iota + 1
	// RemoveHighestDegree deletes nodes in descending degree order
	// (a targeted attack on hubs — the "Achilles heel").
	RemoveHighestDegree
	// RemoveHighestBetweenness deletes the node carrying the most
	// shortest-path traffic each step — the strongest (and costliest)
	// attack, targeting the peers "through which most of the traffic go"
	// (§III). Uses sampled betweenness for speed.
	RemoveHighestBetweenness
)

// String names the strategy.
func (s RemovalStrategy) String() string {
	switch s {
	case RemoveRandom:
		return "random failure"
	case RemoveHighestDegree:
		return "targeted attack"
	case RemoveHighestBetweenness:
		return "betweenness attack"
	default:
		return "unknown"
	}
}

// RobustnessPoint is one measurement of a removal experiment.
type RobustnessPoint struct {
	// RemovedFrac is the fraction of original nodes removed.
	RemovedFrac float64
	// GiantFrac is the giant component's share of the surviving nodes'
	// original count (giant size / original N).
	GiantFrac float64
}

// Robustness removes nodes in steps of stepFrac (e.g. 0.02) up to maxFrac,
// by the given strategy, measuring the giant-component fraction after each
// step. For RemoveHighestDegree, degrees are recomputed after every step
// (adaptive attack, the stronger variant). The input graph is not
// modified.
func Robustness(g *graph.Graph, strategy RemovalStrategy, stepFrac, maxFrac float64, rng *xrand.RNG) ([]RobustnessPoint, error) {
	if stepFrac <= 0 || stepFrac > 1 || maxFrac <= 0 || maxFrac > 1 {
		return nil, errors.New("metrics: fractions must be in (0,1]")
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	n := g.N()
	if n == 0 {
		return nil, errors.New("metrics: empty graph")
	}
	work := g.Clone()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n

	removeNode := func(u int) {
		// Drop every incident edge; the node stays as an isolate, which
		// the giant-component measurement ignores.
		nbs := append([]int32(nil), work.Neighbors(u)...)
		for _, v := range nbs {
			for work.RemoveEdge(u, int(v)) {
			}
		}
		alive[u] = false
		aliveCount--
	}

	var pts []RobustnessPoint
	measure := func() {
		giant := 0
		for _, comp := range work.ConnectedComponents() {
			size := 0
			for _, u := range comp {
				if alive[u] {
					size++
				}
			}
			if size > giant {
				giant = size
			}
		}
		pts = append(pts, RobustnessPoint{
			RemovedFrac: float64(n-aliveCount) / float64(n),
			GiantFrac:   float64(giant) / float64(n),
		})
	}
	measure()

	step := int(math.Round(stepFrac * float64(n)))
	if step < 1 {
		step = 1
	}
	for float64(n-aliveCount)/float64(n) < maxFrac && aliveCount > 0 {
		for i := 0; i < step && aliveCount > 0; i++ {
			u := -1
			switch strategy {
			case RemoveRandom:
				u = randomAlive(alive, aliveCount, rng)
			case RemoveHighestDegree:
				u = highestDegreeAlive(work, alive)
			case RemoveHighestBetweenness:
				u = highestBetweennessAlive(work, alive, rng)
			default:
				return nil, errors.New("metrics: unknown removal strategy")
			}
			if u < 0 {
				break
			}
			removeNode(u)
		}
		measure()
	}
	return pts, nil
}

func randomAlive(alive []bool, aliveCount int, rng *xrand.RNG) int {
	if aliveCount == 0 {
		return -1
	}
	pick := rng.Intn(aliveCount)
	for u, a := range alive {
		if !a {
			continue
		}
		if pick == 0 {
			return u
		}
		pick--
	}
	return -1
}

// highestBetweennessAlive picks the live node with the largest sampled
// betweenness (64 pivots balance accuracy and cost inside the removal
// loop).
func highestBetweennessAlive(g *graph.Graph, alive []bool, rng *xrand.RNG) int {
	bc := g.Betweenness(64, rng)
	best, bestVal := -1, -1.0
	for u, a := range alive {
		if !a {
			continue
		}
		if bc[u] > bestVal {
			best, bestVal = u, bc[u]
		}
	}
	if bestVal <= 0 {
		// No traffic carriers left; fall back to degree.
		return highestDegreeAlive(g, alive)
	}
	return best
}

func highestDegreeAlive(g *graph.Graph, alive []bool) int {
	best, bestDeg := -1, -1
	for u := range alive {
		if !alive[u] {
			continue
		}
		if d := g.Degree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// CriticalFraction returns the smallest removed fraction at which the
// giant component drops below `threshold` of the network (e.g. 0.1), or
// 1 if it never does within the measured range — a scalar robustness
// summary for comparing topologies.
func CriticalFraction(pts []RobustnessPoint, threshold float64) float64 {
	sorted := append([]RobustnessPoint(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RemovedFrac < sorted[j].RemovedFrac })
	for _, p := range sorted {
		if p.GiantFrac < threshold {
			return p.RemovedFrac
		}
	}
	return 1
}
