package metrics

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/xrand"
)

func TestBetweennessAttackAtLeastAsDamaging(t *testing.T) {
	t.Parallel()
	// Betweenness targeting should hurt at least as much as random
	// failures and comparably to degree targeting on a PA network.
	g, _, err := gen.PA(gen.PAConfig{N: 1500, M: 2}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	giantAfter := func(strategy RemovalStrategy) float64 {
		pts, err := Robustness(g, strategy, 0.05, 0.2, xrand.New(2))
		if err != nil {
			t.Fatal(err)
		}
		return pts[len(pts)-1].GiantFrac
	}
	random := giantAfter(RemoveRandom)
	betweenness := giantAfter(RemoveHighestBetweenness)
	if betweenness >= random {
		t.Fatalf("betweenness attack (%.2f) should be more damaging than random failures (%.2f)",
			betweenness, random)
	}
}

func TestBetweennessAttackOnPathCutsMiddle(t *testing.T) {
	t.Parallel()
	// On a path, the most-between node is the middle; removing it halves
	// the giant immediately.
	g := gen.MustPath(21)
	pts, err := Robustness(g, RemoveHighestBetweenness, 0.04, 0.05, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last.GiantFrac > 0.55 {
		t.Fatalf("middle cut should halve the path: giant %.2f", last.GiantFrac)
	}
}

// TestRobustnessWithZeroConfigMatchesRobustness pins that the config
// surface added for the batched estimator leaves the legacy entry point
// bit-identical (same RNG draws, same points) for every strategy.
func TestRobustnessWithZeroConfigMatchesRobustness(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 800, M: 2}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []RemovalStrategy{RemoveRandom, RemoveHighestDegree, RemoveHighestBetweenness} {
		want, err := Robustness(g, strat, 0.05, 0.2, xrand.New(9))
		if err != nil {
			t.Fatal(err)
		}
		got, steps, err := RobustnessWith(g, RobustnessConfig{
			Strategy: strat, StepFrac: 0.05, MaxFrac: 0.2,
		}, xrand.New(9))
		if err != nil {
			t.Fatal(err)
		}
		if steps != nil {
			t.Fatalf("%v: non-batched run returned estimator steps", strat)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d points != %d", strat, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v point %d: %+v != %+v", strat, i, got[i], want[i])
			}
		}
	}
}

// TestRobustnessBetweennessPivotsParameter: the pivot budget is a real
// knob — an exact budget (>= N) must reproduce the exact adaptive attack,
// and small budgets still produce a damaging attack.
func TestRobustnessBetweennessPivotsParameter(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 400, M: 2}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	exactA, _, err := RobustnessWith(g, RobustnessConfig{
		Strategy: RemoveHighestBetweenness, StepFrac: 0.05, MaxFrac: 0.15,
		BetweennessPivots: g.N(),
	}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Exact mode consumes no pivot draws, so a different seed must give
	// the identical trajectory.
	exactB, _, err := RobustnessWith(g, RobustnessConfig{
		Strategy: RemoveHighestBetweenness, StepFrac: 0.05, MaxFrac: 0.15,
		BetweennessPivots: g.N(),
	}, xrand.New(777))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exactA {
		if exactA[i] != exactB[i] {
			t.Fatalf("exact-pivot attack not seed-independent at point %d", i)
		}
	}
	small, _, err := RobustnessWith(g, RobustnessConfig{
		Strategy: RemoveHighestBetweenness, StepFrac: 0.05, MaxFrac: 0.15,
		BetweennessPivots: 16,
	}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if small[len(small)-1].GiantFrac >= 0.9 {
		t.Fatalf("16-pivot attack barely damaged the network: %+v", small[len(small)-1])
	}
}

// TestRobustnessBatchedBetweenness: the batched estimator must (a) report
// one accounting step per measurement step, (b) damage the network
// comparably to the exact adaptive attack, and (c) be deterministic.
func TestRobustnessBatchedBetweenness(t *testing.T) {
	t.Parallel()
	g, _, err := gen.PA(gen.PAConfig{N: 1000, M: 2}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := RobustnessConfig{
		Strategy: RemoveHighestBetweenness, StepFrac: 0.05, MaxFrac: 0.3,
		BetweennessPivots: 64, BatchedBetweenness: true,
	}
	pts, steps, err := RobustnessWith(g, cfg, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(pts)-1 {
		t.Fatalf("%d estimator steps for %d measurement points", len(steps), len(pts))
	}
	for i, s := range steps {
		if s.MeanBC <= 0 || s.MeanSE < 0 {
			t.Fatalf("step %d: degenerate accounting %+v", i, s)
		}
		if s.RemovedFrac <= 0 || s.RemovedFrac > cfg.MaxFrac+cfg.StepFrac {
			t.Fatalf("step %d: removed fraction %v out of range", i, s.RemovedFrac)
		}
	}
	// Agreement gate for the estimator proper: with the batch granularity
	// held fixed, pivot-sampled scores must reproduce the trajectory of
	// exact (pivots >= N) scores. The batching itself is the documented
	// strategy change — per-removal adaptive recomputation is strictly
	// more damaging and is not what the estimator approximates.
	exact, _, err := RobustnessWith(g, RobustnessConfig{
		Strategy: RemoveHighestBetweenness, StepFrac: 0.05, MaxFrac: 0.3,
		BetweennessPivots: g.N(), BatchedBetweenness: true,
	}, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	sampled, _, err := RobustnessWith(g, RobustnessConfig{
		Strategy: RemoveHighestBetweenness, StepFrac: 0.05, MaxFrac: 0.3,
		BetweennessPivots: 256, BatchedBetweenness: true,
	}, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	// Mid-trajectory points near the percolation threshold are sensitive
	// to near-tie ordering, so the gate is looser there and tight at the
	// endpoint.
	for i := range sampled {
		d := sampled[i].GiantFrac - exact[i].GiantFrac
		if d < -0.15 || d > 0.15 {
			t.Fatalf("batched sampled attack diverged from batched exact at point %d: %.3f vs %.3f",
				i, sampled[i].GiantFrac, exact[i].GiantFrac)
		}
	}
	if d := sampled[len(sampled)-1].GiantFrac - exact[len(exact)-1].GiantFrac; d < -0.05 || d > 0.05 {
		t.Fatalf("batched sampled endpoint %.3f != batched exact %.3f",
			sampled[len(sampled)-1].GiantFrac, exact[len(exact)-1].GiantFrac)
	}
	// And the estimated attack must remain a real attack: far more
	// damaging than random failures at the same removal fraction.
	rnd, _, err := RobustnessWith(g, RobustnessConfig{
		Strategy: RemoveRandom, StepFrac: 0.05, MaxFrac: 0.3,
	}, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if pts[len(pts)-1].GiantFrac >= rnd[len(rnd)-1].GiantFrac {
		t.Fatalf("batched attack (%.3f) no more damaging than random failure (%.3f)",
			pts[len(pts)-1].GiantFrac, rnd[len(rnd)-1].GiantFrac)
	}
	pts2, steps2, err := RobustnessWith(g, cfg, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatal("batched attack not deterministic")
		}
	}
	for i := range steps {
		if steps[i] != steps2[i] {
			t.Fatal("estimator accounting not deterministic")
		}
	}
}
