package metrics

import (
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/xrand"
)

func TestBetweennessAttackAtLeastAsDamaging(t *testing.T) {
	t.Parallel()
	// Betweenness targeting should hurt at least as much as random
	// failures and comparably to degree targeting on a PA network.
	g, _, err := gen.PA(gen.PAConfig{N: 1500, M: 2}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	giantAfter := func(strategy RemovalStrategy) float64 {
		pts, err := Robustness(g, strategy, 0.05, 0.2, xrand.New(2))
		if err != nil {
			t.Fatal(err)
		}
		return pts[len(pts)-1].GiantFrac
	}
	random := giantAfter(RemoveRandom)
	betweenness := giantAfter(RemoveHighestBetweenness)
	if betweenness >= random {
		t.Fatalf("betweenness attack (%.2f) should be more damaging than random failures (%.2f)",
			betweenness, random)
	}
}

func TestBetweennessAttackOnPathCutsMiddle(t *testing.T) {
	t.Parallel()
	// On a path, the most-between node is the middle; removing it halves
	// the giant immediately.
	g := gen.MustPath(21)
	pts, err := Robustness(g, RemoveHighestBetweenness, 0.04, 0.05, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1]
	if last.GiantFrac > 0.55 {
		t.Fatalf("middle cut should halve the path: giant %.2f", last.GiantFrac)
	}
}
