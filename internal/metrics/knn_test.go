package metrics

import (
	"math"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

func TestAverageNeighborDegreeStar(t *testing.T) {
	t.Parallel()
	// Star on 5 nodes: hub (deg 4) has neighbors of degree 1; leaves
	// (deg 1) have a neighbor of degree 4.
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	pts := AverageNeighborDegree(g.Freeze())
	if len(pts) != 2 {
		t.Fatalf("points %v", pts)
	}
	if pts[0].K != 1 || math.Abs(pts[0].KNN-4) > 1e-12 || pts[0].Count != 4 {
		t.Fatalf("leaf class %+v", pts[0])
	}
	if pts[1].K != 4 || math.Abs(pts[1].KNN-1) > 1e-12 || pts[1].Count != 1 {
		t.Fatalf("hub class %+v", pts[1])
	}
}

func TestAverageNeighborDegreeRegular(t *testing.T) {
	t.Parallel()
	ring, err := gen.Ring(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := AverageNeighborDegree(ring.Freeze())
	if len(pts) != 1 || pts[0].K != 4 || math.Abs(pts[0].KNN-4) > 1e-12 {
		t.Fatalf("regular graph knn %v", pts)
	}
}

func TestAverageNeighborDegreeSkipsIsolated(t *testing.T) {
	t.Parallel()
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	pts := AverageNeighborDegree(g.Freeze())
	total := 0
	for _, p := range pts {
		total += p.Count
	}
	if total != 2 {
		t.Fatalf("isolated node included: %v", pts)
	}
}

func TestPAKnnDisassortativeTail(t *testing.T) {
	t.Parallel()
	// PA networks: low-degree nodes attach to hubs, so k_nn at k=m is
	// well above the mean degree, and the curve decays toward the tail.
	g, _, err := gen.PA(gen.PAConfig{N: 8000, M: 2}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	pts := AverageNeighborDegree(g.Freeze())
	if len(pts) < 5 {
		t.Fatalf("too few degree classes: %d", len(pts))
	}
	meanDeg := float64(g.TotalDegree()) / float64(g.N())
	if pts[0].KNN <= meanDeg {
		t.Fatalf("k_nn(m)=%.2f should exceed mean degree %.2f", pts[0].KNN, meanDeg)
	}
	// Tail classes (weighted by hubs' perspective) sit below the head.
	head := pts[0].KNN
	tail := pts[len(pts)-1].KNN
	if tail >= head {
		t.Fatalf("knn should decay: head %.2f tail %.2f", head, tail)
	}
}
