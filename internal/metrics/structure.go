package metrics

// Additional structural metrics for characterizing what hard cutoffs do
// to an overlay beyond the degree distribution: the rich-club coefficient
// (whether hubs preferentially interlink — the "super hub" cores HAPA
// produces and cutoffs destroy), the effective diameter (the robust
// variant of Table I's diameter, insensitive to outlier paths), and
// uniform site percolation (the random-failure view of §III's
// robust-yet-fragile argument, complementing the targeted Robustness
// sweep).

import (
	"fmt"
	"sort"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// RichClubPoint is the rich-club coefficient at one degree threshold.
type RichClubPoint struct {
	// K is the degree threshold: the club is every node with degree > K.
	K int
	// Nodes is the club size.
	Nodes int
	// Phi is the density of edges inside the club: E_club / (n·(n-1)/2).
	Phi float64
}

// RichClub computes the rich-club coefficient phi(k) for every degree
// threshold k at which the club has at least two members. On HAPA's
// star-like cores phi stays high as k grows; applying a hard cutoff
// flattens the club away.
func RichClub(f *graph.Frozen) []RichClubPoint {
	n := f.N()
	degs := f.DegreeSequence()
	maxDeg := 0
	for _, d := range degs {
		if d > maxDeg {
			maxDeg = d
		}
	}
	var out []RichClubPoint
	inClub := make([]bool, n)
	var nbs []int32
	for k := 0; k < maxDeg; k++ {
		var club []int
		for v := 0; v < n; v++ {
			inClub[v] = degs[v] > k
			if inClub[v] {
				club = append(club, v)
			}
		}
		if len(club) < 2 {
			break
		}
		edges := 0
		for _, v := range club {
			nbs = distinctNeighbors(f, v, nbs[:0])
			for _, w := range nbs {
				if int(w) > v && inClub[w] {
					edges++
				}
			}
		}
		pairs := len(club) * (len(club) - 1) / 2
		out = append(out, RichClubPoint{
			K:     k,
			Nodes: len(club),
			Phi:   float64(edges) / float64(pairs),
		})
	}
	return out
}

// EffectiveDiameter returns the q-quantile (typically 0.9) of the
// pairwise-distance distribution, estimated from BFS over `sources`
// random sources (all sources when sources >= N). Unreachable pairs are
// excluded. It is the robust companion to Table I's diameter: a handful
// of stringy paths cannot move it.
func EffectiveDiameter(f *graph.Frozen, q float64, sources int, rng *xrand.RNG) (int, error) {
	if f.N() == 0 {
		return 0, fmt.Errorf("metrics: empty graph")
	}
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("metrics: quantile %v must be in (0,1]", q)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	n := f.N()
	var srcs []int
	if sources >= n {
		srcs = make([]int, n)
		for i := range srcs {
			srcs[i] = i
		}
	} else {
		if sources < 1 {
			sources = 1
		}
		srcs = rng.Perm(n)[:sources]
	}
	// Histogram distances; distances are bounded by N.
	hist := make([]int64, 0, 64)
	var total int64
	for _, s := range srcs {
		dist := f.BFS(s)
		for v, d := range dist {
			if d <= 0 || v == s {
				continue // unreachable or self
			}
			for int(d) >= len(hist) {
				hist = append(hist, 0)
			}
			hist[d]++
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("metrics: no reachable pairs from sampled sources")
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var acc int64
	for d := 1; d < len(hist); d++ {
		acc += hist[d]
		if acc >= target {
			return d, nil
		}
	}
	return len(hist) - 1, nil
}

// PercolationPoint is one sample of the site-percolation curve.
type PercolationPoint struct {
	// Occupied is the fraction of nodes retained.
	Occupied float64
	// GiantFrac is the giant-component size over the ORIGINAL node count.
	GiantFrac float64
}

// SitePercolation retains each node independently with probability p for
// p on a uniform grid of `steps` points in (0,1], returning the mean
// giant-component fraction over `trials` trials per point. Scale-free
// networks with gamma < 3 famously lack a percolation threshold under
// random removal (they stay connected until almost nothing is left) —
// applying a hard cutoff restores a finite threshold, which is the dual
// of the attack-tolerance improvement.
func SitePercolation(g *graph.Graph, steps, trials int, rng *xrand.RNG) ([]PercolationPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("metrics: steps %d must be >= 2", steps)
	}
	if trials < 1 {
		return nil, fmt.Errorf("metrics: trials %d must be >= 1", trials)
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("metrics: empty graph")
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	n := g.N()
	out := make([]PercolationPoint, steps)
	keep := make([]int, 0, n)
	for i := 0; i < steps; i++ {
		p := float64(i+1) / float64(steps)
		var sum float64
		for tr := 0; tr < trials; tr++ {
			keep = keep[:0]
			for v := 0; v < n; v++ {
				if rng.Float64() < p {
					keep = append(keep, v)
				}
			}
			if len(keep) == 0 {
				continue
			}
			sub, _ := g.InducedSubgraph(keep)
			sum += float64(len(sub.GiantComponent())) / float64(n)
		}
		out[i] = PercolationPoint{Occupied: p, GiantFrac: sum / float64(trials)}
	}
	return out, nil
}

// PercolationThreshold estimates the occupation probability at which the
// giant component first exceeds `frac` of the original network (linear
// interpolation between the bracketing samples; 1 if never reached).
func PercolationThreshold(pts []PercolationPoint, frac float64) float64 {
	for i, pt := range pts {
		if pt.GiantFrac >= frac {
			if i == 0 {
				return pt.Occupied
			}
			prev := pts[i-1]
			span := pt.GiantFrac - prev.GiantFrac
			if span <= 0 {
				return pt.Occupied
			}
			t := (frac - prev.GiantFrac) / span
			return prev.Occupied + t*(pt.Occupied-prev.Occupied)
		}
	}
	return 1
}

// DistanceDistribution returns the histogram of pairwise distances from
// BFS over `sources` random sources (hist[d] = number of sampled pairs at
// distance d, d >= 1), plus the count of unreachable sampled pairs.
func DistanceDistribution(f *graph.Frozen, sources int, rng *xrand.RNG) (hist []int64, unreachable int64, err error) {
	if f.N() == 0 {
		return nil, 0, fmt.Errorf("metrics: empty graph")
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	n := f.N()
	if sources < 1 {
		sources = 1
	}
	if sources > n {
		sources = n
	}
	srcs := rng.Perm(n)[:sources]
	sort.Ints(srcs)
	for _, s := range srcs {
		dist := f.BFS(s)
		for v, d := range dist {
			if v == s {
				continue
			}
			if d < 0 {
				unreachable++
				continue
			}
			for int(d) >= len(hist) {
				hist = append(hist, 0)
			}
			hist[d]++
		}
	}
	return hist, unreachable, nil
}
