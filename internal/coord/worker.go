package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scalefree/internal/p2p"
	"scalefree/internal/sim"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// CoordAddr is the coordinator's endpoint.
	CoordAddr string
	// Addr is this worker's listen/reply address (the TCP transport may
	// resolve a port-0 bind).
	Addr string
	// Retries is the worker-local retry budget per leased realization
	// (fresh derived streams, exactly as -retries does locally).
	Retries int
	// Patience bounds how long the worker keeps claiming with no
	// coordinator response before giving up (default 2m). It must cover
	// coordinator restarts and the local reduction gaps between jobs.
	Patience time.Duration
	// ClaimInterval bounds one claim's response wait (default 500ms);
	// unanswered claims are simply re-sent until Patience runs out.
	ClaimInterval time.Duration
}

func (cfg *WorkerConfig) defaults() {
	if cfg.Patience <= 0 {
		cfg.Patience = 2 * time.Minute
	}
	if cfg.ClaimInterval <= 0 {
		cfg.ClaimInterval = 500 * time.Millisecond
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
}

// WorkerStats counts one worker's protocol activity.
type WorkerStats struct {
	Leases      int64 // leases executed
	Records     int64 // slot records streamed to the coordinator
	Completions int64 // leases finished with a verified-able complete
	Failures    int64 // leases reported failed
	Waits       int64 // wait replies received
}

// RunWorker claims and executes leases from the coordinator until a
// shutdown message, a cancelled context, or an exhausted patience window.
// Each lease runs the spec restricted to the leased realization; every
// record the run would have journaled locally is streamed to the
// coordinator instead, bit-identical by construction (the engines derive
// everything from (seed, realization, phase) streams, never from which
// process runs them).
//
// A cancelled context returns immediately without a farewell — exactly a
// crash as far as the coordinator is concerned; the lease expires and the
// realization is reissued. That is the behavior the chaos tests rely on.
func RunWorker(ctx context.Context, net p2p.Network, cfg WorkerConfig) (WorkerStats, error) {
	cfg.defaults()
	var stats workerCounters

	inbox := make(chan p2p.Envelope, 4096)
	if err := net.Register(cfg.Addr, inbox); err != nil {
		return stats.snapshot(), fmt.Errorf("coord: worker register %s: %w", cfg.Addr, err)
	}
	addr := cfg.Addr
	if ln, ok := net.(interface{ ListenAddr(string) string }); ok {
		addr = ln.ListenAddr(cfg.Addr)
	}
	defer net.Unregister(addr)

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The pump decouples transport delivery from lease execution: claim
	// replies flow to resp, shutdown trips its channel once, anything else
	// (stale replies, foreign kinds) is dropped.
	resp := make(chan wireMsg, 256)
	shutdown := make(chan struct{})
	var shutOnce sync.Once
	go func() {
		for {
			select {
			case <-wctx.Done():
				return
			case env := <-inbox:
				m, ok := decodeWire(env)
				if !ok {
					continue
				}
				if m.Type == mtShutdown {
					shutOnce.Do(func() { close(shutdown) })
					continue
				}
				select {
				case resp <- m:
				default: // executor busy; claims are re-sent anyway
				}
			}
		}
	}()

	w := &worker{net: net, addr: addr, cfg: cfg, stats: &stats}
	lastContact := time.Now()
	for {
		select {
		case <-ctx.Done():
			return stats.snapshot(), ctx.Err()
		case <-shutdown:
			return stats.snapshot(), nil
		default:
		}
		// Claim errors ride the transport's retry/backoff; a still-failing
		// send just burns patience like an unanswered claim.
		_ = sendWire(net, addr, cfg.CoordAddr, wireMsg{Type: mtClaim, Worker: addr})
		timer := time.NewTimer(cfg.ClaimInterval)
		select {
		case <-ctx.Done():
			timer.Stop()
			return stats.snapshot(), ctx.Err()
		case <-shutdown:
			timer.Stop()
			return stats.snapshot(), nil
		case m := <-resp:
			timer.Stop()
			lastContact = time.Now()
			switch m.Type {
			case mtWait:
				stats.waits.Add(1)
				if !sleepCtx(ctx, shutdown, millis(m.HBMillis, 200*time.Millisecond)) {
					continue // interrupted; loop re-checks ctx/shutdown
				}
			case mtLease:
				if err := w.execute(ctx, m); err != nil {
					return stats.snapshot(), err
				}
				lastContact = time.Now()
			}
		case <-timer.C:
			if time.Since(lastContact) > cfg.Patience {
				return stats.snapshot(), fmt.Errorf("coord: no response from coordinator %s for %s", cfg.CoordAddr, cfg.Patience)
			}
		}
	}
}

// workerCounters are WorkerStats in atomic form: the record sink runs on
// the engines' sweep goroutines.
type workerCounters struct {
	leases, records, completions, failures, waits atomic.Int64
}

func (c *workerCounters) snapshot() WorkerStats {
	return WorkerStats{
		Leases:      c.leases.Load(),
		Records:     c.records.Load(),
		Completions: c.completions.Load(),
		Failures:    c.failures.Load(),
		Waits:       c.waits.Load(),
	}
}

type worker struct {
	net   p2p.Network
	addr  string
	cfg   WorkerConfig
	stats *workerCounters
}

// execute runs one lease end to end: verify the workload, heartbeat while
// computing, stream records, then report complete or fail. Errors returned
// are fatal to the worker (workload skew, cancelled context); a failed
// realization is reported to the coordinator and is NOT fatal — the
// coordinator owns that budget.
func (w *worker) execute(ctx context.Context, m wireMsg) error {
	w.stats.leases.Add(1)
	fail := func(msg string) {
		w.stats.failures.Add(1)
		_ = sendWire(w.net, w.addr, w.cfg.CoordAddr, wireMsg{
			Type: mtFail, Spec: m.Spec, Worker: w.addr,
			Realization: m.Realization, Lease: m.Lease, Err: msg,
		})
	}

	spec, err := sim.Lookup(m.Spec)
	if err != nil {
		// Unknown spec = version skew between coordinator and worker:
		// refuse loudly and stop serving, a skewed worker must never
		// contribute records.
		fail(err.Error())
		return fmt.Errorf("coord: lease for unknown spec %q (worker/coordinator version skew?)", m.Spec)
	}
	if m.Scale == nil {
		fail("lease carries no workload")
		return errors.New("coord: lease carries no workload")
	}
	sc := m.Scale.WorkloadOnly()
	if !bytes.Equal(sim.WorkloadFingerprint(m.Spec, m.Seed, sc), m.Fingerprint) {
		fail("workload fingerprint mismatch")
		return fmt.Errorf("coord: workload fingerprint mismatch for %s (worker/coordinator version skew?)", m.Spec)
	}

	// Heartbeats renew the lease while the build+sweep runs; they stop the
	// moment the run finishes, so a stolen lease stops being renewed by us.
	hbCtx, hbStop := context.WithCancel(ctx)
	defer hbStop()
	go func() {
		t := time.NewTicker(millis(m.HBMillis, time.Second))
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				_ = sendWire(w.net, w.addr, w.cfg.CoordAddr, wireMsg{
					Type: mtHeartbeat, Spec: m.Spec, Worker: w.addr,
					Realization: m.Realization, Lease: m.Lease,
				})
			}
		}
	}()

	// The sink streams each record as the engines deposit it. A send that
	// fails after the transport's own retries means the record is lost for
	// this lease — the realization must NOT be completed on top of it.
	var sent atomic.Int64
	var sendMu sync.Mutex
	var sendErr error
	sink := func(rec sim.SlotRecord) {
		err := sendWire(w.net, w.addr, w.cfg.CoordAddr, wireMsg{
			Type: mtResult, Spec: m.Spec, Worker: w.addr,
			Realization: rec.Realization, Lease: m.Lease, Record: rec.MarshalBinary(),
		})
		if err != nil {
			sendMu.Lock()
			if sendErr == nil {
				sendErr = err
			}
			sendMu.Unlock()
			return
		}
		sent.Add(1)
		w.stats.records.Add(1)
	}

	rc := sim.NewWorkerRunControl(ctx, w.cfg.Retries, m.Realization, sink)
	sc.Run = rc
	_, runErr := spec.Run(sc, m.Seed)
	hbStop()

	if ctx.Err() != nil {
		// Shutting down mid-lease: no farewell, the lease expires and the
		// realization is stolen. Indistinguishable from a crash, by design.
		return ctx.Err()
	}
	sendMu.Lock()
	lost := sendErr
	sendMu.Unlock()
	switch {
	case lost != nil:
		fail(fmt.Sprintf("record stream to coordinator failed: %v", lost))
	case runErr == nil,
		// A restricted run computes one realization but still reduces the
		// whole figure; reductions that need more than one realization
		// (power-law fits, all-rows-dropped aggregates) may error AFTER
		// every record was computed and streamed. Records streamed with no
		// engine failures means the work product is intact — the
		// coordinator's final reduction sees all realizations and cannot
		// hit the artifact.
		sent.Load() > 0 && len(rc.Failures()) == 0:
		w.stats.completions.Add(1)
		_ = sendWire(w.net, w.addr, w.cfg.CoordAddr, wireMsg{
			Type: mtComplete, Spec: m.Spec, Worker: w.addr,
			Realization: m.Realization, Lease: m.Lease, Records: int(sent.Load()),
		})
	default:
		fail(runErr.Error())
	}
	return nil
}

// sleepCtx waits d unless the context or shutdown interrupts; returns
// true on a full sleep.
func sleepCtx(ctx context.Context, shutdown <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-shutdown:
		return false
	}
}
