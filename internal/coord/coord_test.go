package coord

// White-box lease-lifecycle tests: hand-rolled fake workers drive the
// coordinator's protocol edges that the chaos tests only hit
// probabilistically — expiry → reissue → late-duplicate dedup, heartbeat
// renewal racing expiry, completion verification rejecting short streams,
// and a coordinator restart replaying a torn journal tail. The server's
// single FIFO inbox makes every interleaving here deterministic: one test
// goroutine does all the sending, so processing order is send order.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"scalefree/internal/p2p"
	"scalefree/internal/sim"
)

// testRecord builds a valid slot record (kind 1 = sweep slots) with a
// distinct key per seq. The payload is opaque to the coordinator; these
// tests never reduce it.
func testRecord(r int, seq uint64) sim.SlotRecord {
	return sim.SlotRecord{Kind: 1, Stream: 0x1000 + seq, Sub: 0x2000 + seq, Realization: r, Payload: []byte{byte(r), byte(seq), 0xEE}}
}

type jobResult struct {
	st  Stats
	err error
}

// startJob runs srv.RunJob on its own goroutine and returns the channel
// its result lands on.
func startJob(ctx context.Context, srv *Server, cfg JobConfig, j *sim.Journal) chan jobResult {
	res := make(chan jobResult, 1)
	go func() {
		st, err := srv.RunJob(ctx, cfg, j)
		res <- jobResult{st, err}
	}()
	return res
}

func waitJob(t *testing.T, res chan jobResult) jobResult {
	t.Helper()
	select {
	case r := <-res:
		return r
	case <-time.After(30 * time.Second):
		t.Fatal("RunJob did not return")
		return jobResult{}
	}
}

// fakeWorker is a scripted protocol peer: it sends exactly what a test
// tells it to and reads exactly one reply per claim.
type fakeWorker struct {
	t     *testing.T
	net   p2p.Network
	addr  string
	coord string
	inbox chan p2p.Envelope
}

func newFakeWorker(t *testing.T, net p2p.Network, addr, coord string) *fakeWorker {
	t.Helper()
	inbox := make(chan p2p.Envelope, 64)
	if err := net.Register(addr, inbox); err != nil {
		t.Fatalf("register %s: %v", addr, err)
	}
	t.Cleanup(func() { net.Unregister(addr) })
	return &fakeWorker{t: t, net: net, addr: addr, coord: coord, inbox: inbox}
}

func (w *fakeWorker) send(m wireMsg) {
	w.t.Helper()
	m.Worker = w.addr
	if err := sendWire(w.net, w.addr, w.coord, m); err != nil {
		w.t.Fatalf("%s: send %s: %v", w.addr, m.Type, err)
	}
}

// claim sends one claim and returns the lease or wait reply.
func (w *fakeWorker) claim() wireMsg {
	w.t.Helper()
	w.send(wireMsg{Type: mtClaim})
	select {
	case env := <-w.inbox:
		m, ok := decodeWire(env)
		if !ok {
			w.t.Fatalf("%s: undecodable claim reply", w.addr)
		}
		return m
	case <-time.After(10 * time.Second):
		w.t.Fatalf("%s: no claim reply", w.addr)
		return wireMsg{}
	}
}

// claimLease claims until granted a lease, riding out wait replies.
func (w *fakeWorker) claimLease(within time.Duration) wireMsg {
	w.t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if m := w.claim(); m.Type == mtLease {
			return m
		}
		time.Sleep(10 * time.Millisecond)
	}
	w.t.Fatalf("%s: no lease within %s", w.addr, within)
	return wireMsg{}
}

func openTestJournal(t *testing.T, path, spec string, seed uint64, sc sim.Scale, resume bool) *sim.Journal {
	t.Helper()
	j, err := sim.OpenJournal(path, spec, seed, sc, resume)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	return j
}

// TestLeaseExpiryReissueAndLateDuplicates walks the work-stealing path
// end to end: worker A claims r=0 and goes silent, its lease starves and
// is reissued to B, B completes the stolen realization, and A's late
// duplicate record and completion are deduped — first-writer-wins on the
// journal key, DupDone on the marker.
func TestLeaseExpiryReissueAndLateDuplicates(t *testing.T) {
	t.Parallel()
	net := p2p.NewInMemoryNetwork()
	srv, err := NewServer(net, "coord")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sc := sim.Scale{Realizations: 2}
	path := filepath.Join(t.TempDir(), "job.journal")
	j := openTestJournal(t, path, "job", 7, sc, false)
	cfg := JobConfig{Spec: "job", Seed: 7, Scale: sc, LeaseTTL: 300 * time.Millisecond, WorkerRetries: 5}
	res := startJob(context.Background(), srv, cfg, j)

	wA := newFakeWorker(t, net, "wA", srv.Addr())
	wB := newFakeWorker(t, net, "wB", srv.Addr())

	lA := wA.claimLease(5 * time.Second)
	if lA.Realization != 0 {
		t.Fatalf("first lease got r=%d, want 0", lA.Realization)
	}
	if lA.Spec != "job" || len(lA.Fingerprint) == 0 || lA.Scale == nil {
		t.Fatalf("lease missing workload: %+v", lA)
	}
	lB := wB.claimLease(5 * time.Second)
	if lB.Realization != 1 {
		t.Fatalf("second lease got r=%d, want 1", lB.Realization)
	}

	// A goes silent; B heartbeats r=1 so only r=0 starves.
	deadline := time.Now().Add(3 * cfg.LeaseTTL)
	for time.Now().Before(deadline) {
		time.Sleep(cfg.LeaseTTL / 3)
		wB.send(wireMsg{Type: mtHeartbeat, Spec: "job", Realization: 1, Lease: lB.Lease})
	}

	stolen := wB.claimLease(5 * time.Second)
	if stolen.Realization != 0 {
		t.Fatalf("stolen lease got r=%d, want 0", stolen.Realization)
	}
	if stolen.Lease == lA.Lease {
		t.Fatal("reissued lease reused the expired lease id")
	}

	// B completes the stolen realization.
	rec0 := testRecord(0, 1)
	wB.send(wireMsg{Type: mtResult, Spec: "job", Realization: 0, Lease: stolen.Lease, Record: rec0.MarshalBinary()})
	wB.send(wireMsg{Type: mtComplete, Spec: "job", Realization: 0, Lease: stolen.Lease, Records: 1})

	// The stolen-from worker limps back: a duplicate record, a late
	// completion, a record for some other job, and a corrupt frame. All
	// must bounce off without perturbing the job.
	wA.send(wireMsg{Type: mtResult, Spec: "job", Realization: 0, Lease: lA.Lease, Record: rec0.MarshalBinary()})
	wA.send(wireMsg{Type: mtComplete, Spec: "job", Realization: 0, Lease: lA.Lease, Records: 1})
	wA.send(wireMsg{Type: mtResult, Spec: "otherjob", Realization: 0, Lease: lA.Lease, Record: testRecord(0, 9).MarshalBinary()})
	wA.send(wireMsg{Type: mtResult, Spec: "job", Realization: 0, Lease: lA.Lease, Record: []byte{1, 2, 3}})

	// B finishes r=1 last so everything above is processed before the job
	// settles (FIFO inbox).
	rec1 := testRecord(1, 2)
	wB.send(wireMsg{Type: mtResult, Spec: "job", Realization: 1, Lease: lB.Lease, Record: rec1.MarshalBinary()})
	wB.send(wireMsg{Type: mtComplete, Spec: "job", Realization: 1, Lease: lB.Lease, Records: 1})

	r := waitJob(t, res)
	if r.err != nil {
		t.Fatalf("RunJob: %v", r.err)
	}
	st := r.st
	if st.LeasesIssued != 3 || st.Expired != 1 || st.Reissued != 1 {
		t.Errorf("lease lifecycle: issued=%d expired=%d reissued=%d, want 3/1/1", st.LeasesIssued, st.Expired, st.Reissued)
	}
	if st.Accepted != 2 || st.DupRecords != 1 || st.BadRecords != 1 {
		t.Errorf("records: accepted=%d dup=%d bad=%d, want 2/1/1", st.Accepted, st.DupRecords, st.BadRecords)
	}
	if st.Completions != 2 || st.DupDone != 1 || st.Rejected != 0 || st.Done != 2 {
		t.Errorf("completions: done=%d dupDone=%d rejected=%d total=%d, want 2/1/0/2", st.Completions, st.DupDone, st.Rejected, st.Done)
	}

	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	info, err := sim.InspectJournal(path)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if info.Spec != "job" || info.Seed != 7 {
		t.Errorf("journal identity: spec=%q seed=%d", info.Spec, info.Seed)
	}
	if len(info.Records) != 2 {
		t.Errorf("journal holds %d slot records, want 2", len(info.Records))
	}
	if !reflect.DeepEqual(info.Done, []int{0, 1}) {
		t.Errorf("journal done markers %v, want [0 1]", info.Done)
	}
	if info.TornBytes() != 0 {
		t.Errorf("journal has %d torn bytes, want 0", info.TornBytes())
	}
}

// TestHeartbeatRenewalBeatsExpiry pins that a worker heartbeating well
// inside the TTL holds its lease across several TTL windows — no expiry,
// no reissue — while a heartbeat carrying a superseded lease id is
// counted stale and does NOT renew.
func TestHeartbeatRenewalBeatsExpiry(t *testing.T) {
	t.Parallel()
	net := p2p.NewInMemoryNetwork()
	srv, err := NewServer(net, "coord")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sc := sim.Scale{Realizations: 1}
	path := filepath.Join(t.TempDir(), "job.journal")
	j := openTestJournal(t, path, "job", 11, sc, false)
	defer j.Close()
	cfg := JobConfig{Spec: "job", Seed: 11, Scale: sc, LeaseTTL: 600 * time.Millisecond}
	res := startJob(context.Background(), srv, cfg, j)

	w := newFakeWorker(t, net, "w", srv.Addr())
	l := w.claimLease(5 * time.Second)

	// Renew every TTL/12 for ~2.5 TTLs: the lease must never starve.
	for i := 0; i < 30; i++ {
		time.Sleep(cfg.LeaseTTL / 12)
		w.send(wireMsg{Type: mtHeartbeat, Spec: "job", Realization: l.Realization, Lease: l.Lease})
	}
	// A stale lease id renews nothing.
	w.send(wireMsg{Type: mtHeartbeat, Spec: "job", Realization: l.Realization, Lease: l.Lease + 999})

	rec := testRecord(l.Realization, 1)
	w.send(wireMsg{Type: mtResult, Spec: "job", Realization: l.Realization, Lease: l.Lease, Record: rec.MarshalBinary()})
	w.send(wireMsg{Type: mtComplete, Spec: "job", Realization: l.Realization, Lease: l.Lease, Records: 1})

	r := waitJob(t, res)
	if r.err != nil {
		t.Fatalf("RunJob: %v", r.err)
	}
	st := r.st
	if st.Expired != 0 || st.Reissued != 0 || st.LeasesIssued != 1 {
		t.Errorf("heartbeats failed to hold the lease: issued=%d expired=%d reissued=%d", st.LeasesIssued, st.Expired, st.Reissued)
	}
	if st.StaleHB < 1 {
		t.Errorf("stale heartbeat not counted: StaleHB=%d", st.StaleHB)
	}
	if st.Completions != 1 || st.Done != 1 {
		t.Errorf("completions=%d done=%d, want 1/1", st.Completions, st.Done)
	}
}

// TestCompletionVerificationRejectsShortStream pins the lost-record
// guard: a completion claiming more records than the journal holds is
// rejected, burns a worker-retry, and with the budget spent the
// realization is given up to the final local reduction — never falsely
// marked done.
func TestCompletionVerificationRejectsShortStream(t *testing.T) {
	t.Parallel()
	net := p2p.NewInMemoryNetwork()
	srv, err := NewServer(net, "coord")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sc := sim.Scale{Realizations: 1}
	path := filepath.Join(t.TempDir(), "job.journal")
	j := openTestJournal(t, path, "job", 13, sc, false)
	defer j.Close()
	cfg := JobConfig{Spec: "job", Seed: 13, Scale: sc, LeaseTTL: time.Minute, WorkerRetries: 0}
	res := startJob(context.Background(), srv, cfg, j)

	w := newFakeWorker(t, net, "w", srv.Addr())
	l := w.claimLease(5 * time.Second)

	// One record arrives; the completion claims three were streamed.
	rec := testRecord(0, 1)
	w.send(wireMsg{Type: mtResult, Spec: "job", Realization: 0, Lease: l.Lease, Record: rec.MarshalBinary()})
	w.send(wireMsg{Type: mtComplete, Spec: "job", Realization: 0, Lease: l.Lease, Records: 3})

	r := waitJob(t, res)
	if r.err != nil {
		t.Fatalf("RunJob: %v", r.err)
	}
	st := r.st
	if st.Rejected != 1 || st.GivenUp != 1 {
		t.Errorf("rejected=%d givenUp=%d, want 1/1", st.Rejected, st.GivenUp)
	}
	if st.Completions != 0 || st.Done != 0 {
		t.Errorf("short stream was marked done: completions=%d done=%d", st.Completions, st.Done)
	}
	if st.Accepted != 1 {
		t.Errorf("accepted=%d, want 1 (the record itself is good)", st.Accepted)
	}
	if got := j.DoneRealizations(); len(got) != 0 {
		t.Errorf("journal marked %v done after rejected completion", got)
	}
}

// TestCoordinatorRestartReplaysTornJournal crashes the coordinator
// mid-job (context cancel after one completion), tears the journal tail,
// and restarts: the resumed job must serve only the unfinished
// realization, dedup the finished one's records live, and settle with
// both realizations done.
func TestCoordinatorRestartReplaysTornJournal(t *testing.T) {
	t.Parallel()
	net := p2p.NewInMemoryNetwork()
	srv, err := NewServer(net, "coord")
	if err != nil {
		t.Fatal(err)
	}

	sc := sim.Scale{Realizations: 2}
	path := filepath.Join(t.TempDir(), "job.journal")
	j := openTestJournal(t, path, "job", 17, sc, false)
	cfg := JobConfig{Spec: "job", Seed: 17, Scale: sc, LeaseTTL: time.Minute, WorkerRetries: 5}

	ctx1, cancel1 := context.WithCancel(context.Background())
	res1 := startJob(ctx1, srv, cfg, j)

	w := newFakeWorker(t, net, "w", srv.Addr())
	l0 := w.claimLease(5 * time.Second)
	if l0.Realization != 0 {
		t.Fatalf("lease got r=%d, want 0", l0.Realization)
	}
	rec0 := testRecord(0, 1)
	w.send(wireMsg{Type: mtResult, Spec: "job", Realization: 0, Lease: l0.Lease, Record: rec0.MarshalBinary()})
	w.send(wireMsg{Type: mtComplete, Spec: "job", Realization: 0, Lease: l0.Lease, Records: 1})

	// Wait until the completion is journaled, then pull the plug.
	waitUntil := time.Now().Add(10 * time.Second)
	for len(j.DoneRealizations()) == 0 {
		if time.Now().After(waitUntil) {
			t.Fatal("completion never journaled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel1()
	r1 := waitJob(t, res1)
	if !errors.Is(r1.err, context.Canceled) {
		t.Fatalf("cancelled RunJob returned %v", r1.err)
	}
	if r1.st.Done != 1 {
		t.Fatalf("first run done=%d, want 1", r1.st.Done)
	}
	srv.Close()
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	// Tear the tail: half a record, as a crash mid-write would leave.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := testRecord(1, 8).MarshalBinary()
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: resume the journal, re-register the endpoint, serve again.
	j2 := openTestJournal(t, path, "job", 17, sc, true)
	defer j2.Close()
	if got := j2.DoneRealizations(); !got[0] || len(got) != 1 {
		t.Fatalf("resumed done set %v, want {0}", got)
	}
	if got := j2.RecordCount(0); got != 1 {
		t.Fatalf("resumed RecordCount(0)=%d, want 1", got)
	}
	srv2, err := NewServer(net, "coord")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	res2 := startJob(context.Background(), srv2, cfg, j2)

	l1 := w.claimLease(5 * time.Second)
	if l1.Realization != 1 {
		t.Fatalf("resumed job leased r=%d, want 1 (r=0 is journaled done)", l1.Realization)
	}
	// A late duplicate of the finished realization's record dedups live.
	w.send(wireMsg{Type: mtResult, Spec: "job", Realization: 0, Lease: l0.Lease, Record: rec0.MarshalBinary()})
	rec1 := testRecord(1, 2)
	w.send(wireMsg{Type: mtResult, Spec: "job", Realization: 1, Lease: l1.Lease, Record: rec1.MarshalBinary()})
	w.send(wireMsg{Type: mtComplete, Spec: "job", Realization: 1, Lease: l1.Lease, Records: 1})

	r2 := waitJob(t, res2)
	if r2.err != nil {
		t.Fatalf("resumed RunJob: %v", r2.err)
	}
	st := r2.st
	if st.Done != 2 || st.Completions != 1 {
		t.Errorf("resumed job done=%d completions=%d, want 2/1", st.Done, st.Completions)
	}
	if st.Accepted != 1 || st.DupRecords != 1 {
		t.Errorf("resumed job accepted=%d dup=%d, want 1/1", st.Accepted, st.DupRecords)
	}
}
