package coord

import (
	"context"
	"fmt"
	"time"

	"scalefree/internal/p2p"
	"scalefree/internal/sim"
)

// JobConfig parameterizes one distributed experiment job — one spec at
// one (seed, scale).
type JobConfig struct {
	// Spec is the registry ID; it doubles as the job identity on the wire.
	Spec string
	// Seed and Scale are the run's workload, exactly as a local run's.
	Seed  uint64
	Scale sim.Scale
	// LeaseTTL is how long a lease survives without a heartbeat before the
	// realization is reissued to another worker (default 10s).
	LeaseTTL time.Duration
	// Heartbeat is the renewal interval workers are told to use (default
	// LeaseTTL/5, so a lease tolerates a few lost heartbeats).
	Heartbeat time.Duration
	// WorkerRetries is how many failed worker attempts a realization may
	// burn before the coordinator stops re-leasing it and leaves it to the
	// final local reduction (default 2).
	WorkerRetries int
}

func (cfg *JobConfig) defaults() {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 5
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Millisecond
	}
	if cfg.WorkerRetries < 0 {
		cfg.WorkerRetries = 0
	}
}

// Stats counts one job's lease lifecycle events; the lifecycle tests pin
// the protocol's robustness behavior through them.
type Stats struct {
	LeasesIssued int64 // leases granted, including reissues
	Expired      int64 // leases that missed their heartbeat window
	Reissued     int64 // grants of a realization whose earlier lease expired
	StaleHB      int64 // heartbeats carrying an expired/superseded lease id
	Accepted     int64 // fresh slot records journaled
	DupRecords   int64 // records dropped by first-writer-wins dedup
	BadRecords   int64 // records failing frame/CRC validation
	Completions  int64 // realizations verified complete
	DupDone      int64 // late duplicate completions ignored
	Rejected     int64 // completions whose streamed records did not all arrive
	WorkerFails  int64 // fail messages received
	GivenUp      int64 // realizations left to the final local reduction
	Done         int   // realizations complete at return (journaled markers)
}

// lease is one outstanding (realization → worker) grant.
type lease struct {
	id      uint64
	worker  string
	expires time.Time
}

// Server is the coordinator endpoint: one registered address serving
// lease jobs sequentially. Between jobs it is quiescent — worker claims
// queue in the inbox (or drop; claims are re-sent) until the next RunJob
// drains them.
type Server struct {
	net   p2p.Network
	addr  string
	inbox chan p2p.Envelope
	// workers accumulates every address that ever claimed, across jobs,
	// so ShutdownWorkers can dismiss the whole fleet at session end.
	// RunJob and ShutdownWorkers run on the caller's goroutine.
	workers  map[string]bool
	leaseSeq uint64
}

// NewServer registers a coordinator endpoint on net at addr (the TCP
// transport may resolve a port-0 bind; Addr reports the final address).
func NewServer(net p2p.Network, addr string) (*Server, error) {
	inbox := make(chan p2p.Envelope, 4096)
	if err := net.Register(addr, inbox); err != nil {
		return nil, fmt.Errorf("coord: register %s: %w", addr, err)
	}
	if ln, ok := net.(interface{ ListenAddr(string) string }); ok {
		addr = ln.ListenAddr(addr)
	}
	return &Server{net: net, addr: addr, inbox: inbox, workers: map[string]bool{}}, nil
}

// Addr returns the coordinator's resolved address.
func (s *Server) Addr() string { return s.addr }

// Close unregisters the endpoint. It does not dismiss workers; call
// ShutdownWorkers first when the session is over.
func (s *Server) Close() { s.net.Unregister(s.addr) }

// ShutdownWorkers pushes a shutdown to every worker that ever claimed.
// Best-effort: a worker that misses it exits via its own patience window
// or signal handling.
func (s *Server) ShutdownWorkers() {
	for w := range s.workers {
		_ = sendWire(s.net, s.addr, w, wireMsg{Type: mtShutdown})
	}
}

// RunJob serves one spec's realizations as leases until every one is
// complete or permanently given up, journaling every accepted record and
// every verified completion into j. It returns when the job is settled;
// the caller then runs the normal local spec reduction against j, which
// replays everything journaled and recomputes the remainder — the
// self-healing step that makes the distributed figures byte-identical to
// a local run no matter what the fleet did.
//
// Crash safety: kill the coordinator at any point and rerun with the
// journal opened -resume — done markers and records are recovered, and
// only unfinished realizations are served again.
func (s *Server) RunJob(ctx context.Context, cfg JobConfig, j *sim.Journal) (Stats, error) {
	cfg.defaults()
	var st Stats
	n := cfg.Scale.Realizations
	done := j.DoneRealizations()
	if done == nil {
		done = map[int]bool{}
	}
	// Drop recovered done markers outside [0,n): a corrupt marker must not
	// count toward completion.
	for r := range done {
		if r < 0 || r >= n {
			delete(done, r)
		}
	}
	st.Done = len(done)

	fp := sim.WorkloadFingerprint(cfg.Spec, cfg.Seed, cfg.Scale)
	wire := cfg.Scale.WorkloadOnly()

	leases := map[int]*lease{}
	fails := map[int]int{}
	givenUp := map[int]bool{}
	expiredEver := map[int]bool{}

	sweep := func(now time.Time) {
		for r, l := range leases {
			if now.After(l.expires) {
				delete(leases, r)
				expiredEver[r] = true
				st.Expired++
			}
		}
	}
	giveUpIfSpent := func(r int) {
		if fails[r] > cfg.WorkerRetries && !givenUp[r] {
			givenUp[r] = true
			st.GivenUp++
		}
	}

	tick := cfg.LeaseTTL / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	for {
		if len(done)+len(givenUp) >= n {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case now := <-ticker.C:
			sweep(now)
		case env := <-s.inbox:
			m, ok := decodeWire(env)
			if !ok {
				continue
			}
			switch m.Type {
			case mtClaim:
				worker := m.Worker
				if worker == "" {
					worker = env.From
				}
				s.workers[worker] = true
				now := time.Now()
				sweep(now)
				r, found := pickRealization(n, done, givenUp, leases)
				if !found {
					_ = sendWire(s.net, s.addr, worker, wireMsg{Type: mtWait, Spec: cfg.Spec, HBMillis: cfg.Heartbeat.Milliseconds()})
					continue
				}
				s.leaseSeq++
				leases[r] = &lease{id: s.leaseSeq, worker: worker, expires: now.Add(cfg.LeaseTTL)}
				st.LeasesIssued++
				if expiredEver[r] {
					st.Reissued++
				}
				_ = sendWire(s.net, s.addr, worker, wireMsg{
					Type: mtLease, Spec: cfg.Spec, Seed: cfg.Seed, Scale: &wire,
					Fingerprint: fp, Realization: r, Lease: s.leaseSeq,
					TTLMillis: cfg.LeaseTTL.Milliseconds(), HBMillis: cfg.Heartbeat.Milliseconds(),
				})

			case mtHeartbeat:
				if m.Spec != cfg.Spec {
					continue
				}
				if l := leases[m.Realization]; l != nil && l.id == m.Lease {
					l.expires = time.Now().Add(cfg.LeaseTTL)
				} else {
					st.StaleHB++
				}

			case mtResult:
				if m.Spec != cfg.Spec {
					continue
				}
				rec, err := sim.DecodeSlotRecord(m.Record)
				if err != nil {
					st.BadRecords++
					continue
				}
				if rec.Realization < 0 || rec.Realization >= n {
					st.BadRecords++
					continue
				}
				fresh, err := j.Accept(rec)
				if err != nil {
					// A journal that cannot persist records voids the whole
					// crash-safety contract; abort rather than serve on.
					return st, fmt.Errorf("coord: journal record %s: %w", rec.Key(), err)
				}
				if fresh {
					st.Accepted++
				} else {
					st.DupRecords++
				}

			case mtComplete:
				if m.Spec != cfg.Spec {
					continue
				}
				r := m.Realization
				if r < 0 || r >= n {
					continue
				}
				if done[r] {
					// The stolen-from worker finishing after the thief: its
					// records were deduped, its completion is a no-op.
					st.DupDone++
					continue
				}
				if m.Records <= 0 || j.RecordCount(r) < m.Records {
					// Some streamed records never arrived (lost frames, or a
					// worker that computed nothing); the realization is NOT
					// done — release the lease so it is recomputed.
					st.Rejected++
					fails[r]++
					if l := leases[r]; l != nil && l.id == m.Lease {
						delete(leases, r)
						expiredEver[r] = true
					}
					giveUpIfSpent(r)
					continue
				}
				if err := j.MarkRealizationDone(r); err != nil {
					return st, fmt.Errorf("coord: journal done marker r=%d: %w", r, err)
				}
				done[r] = true
				delete(leases, r)
				st.Completions++
				st.Done = len(done)

			case mtFail:
				if m.Spec != cfg.Spec {
					continue
				}
				r := m.Realization
				if r < 0 || r >= n || done[r] {
					continue
				}
				st.WorkerFails++
				fails[r]++
				if l := leases[r]; l != nil && l.id == m.Lease {
					delete(leases, r)
					expiredEver[r] = true
				}
				giveUpIfSpent(r)
			}
		}
	}
}

// pickRealization grants the lowest-index realization that is neither
// complete, given up, nor currently leased. Lowest-first keeps the done
// prefix dense, which makes resumed runs and progress reporting legible.
func pickRealization(n int, done, givenUp map[int]bool, leases map[int]*lease) (int, bool) {
	for r := 0; r < n; r++ {
		if !done[r] && !givenUp[r] && leases[r] == nil {
			return r, true
		}
	}
	return 0, false
}
