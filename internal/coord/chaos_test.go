package coord

// Chaos integration tests: real RunWorker fleets executing real registry
// specs at tiny scale, with crashes, fault injection, partitions, and a
// coordinator kill+resume — and one invariant under all of it: the
// figures reduced from the coordinator's journal are byte-identical to a
// plain local run. Distribution and failure may only cost time, never
// bits; that is the determinism contract ROADMAP item 4 promises.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scalefree/internal/p2p"
	"scalefree/internal/sim"
)

// figsCSV renders figures exactly as the CLI would write them, one CSV
// per figure, concatenated — the byte string the identity tests compare.
func figsCSV(t *testing.T, figs []sim.Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, fig := range figs {
		fmt.Fprintf(&buf, "## %s\n", fig.ID)
		if err := sim.WriteCSV(&buf, fig); err != nil {
			t.Fatalf("csv %s: %v", fig.ID, err)
		}
	}
	return buf.Bytes()
}

// runLocalBaseline computes the spec the ordinary way — one process, no
// journal, no distribution.
func runLocalBaseline(t *testing.T, specID string, sc sim.Scale, seed uint64) []byte {
	t.Helper()
	spec, err := sim.Lookup(specID)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Distributable {
		t.Fatalf("%s is not marked Distributable", specID)
	}
	scRun := sc
	scRun.Run = sim.NewRunControl(context.Background(), 0, 0, nil)
	figs, err := spec.Run(scRun, seed)
	if err != nil {
		t.Fatalf("baseline %s: %v", specID, err)
	}
	return figsCSV(t, figs)
}

// reduceFromJournal is the coordinator's final step: a normal local spec
// run against the job's journal, replaying every accepted record and
// recomputing whatever the fleet never delivered.
func reduceFromJournal(t *testing.T, specID string, sc sim.Scale, seed uint64, j *sim.Journal) []byte {
	t.Helper()
	spec, err := sim.Lookup(specID)
	if err != nil {
		t.Fatal(err)
	}
	scRun := sc
	scRun.Run = sim.NewRunControl(context.Background(), 0, 0, j)
	figs, err := spec.Run(scRun, seed)
	if err != nil {
		t.Fatalf("final reduction %s: %v", specID, err)
	}
	return figsCSV(t, figs)
}

// workerHandle owns one RunWorker goroutine.
type workerHandle struct {
	addr   string
	cancel context.CancelFunc
	done   chan struct{}
	stats  WorkerStats
	err    error
}

func startWorkerOn(net p2p.Network, coordAddr, addr string, retries int) *workerHandle {
	ctx, cancel := context.WithCancel(context.Background())
	h := &workerHandle{addr: addr, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.stats, h.err = RunWorker(ctx, net, WorkerConfig{
			CoordAddr: coordAddr, Addr: addr, Retries: retries,
			Patience: 5 * time.Minute, ClaimInterval: 50 * time.Millisecond,
		})
	}()
	return h
}

// stopWorkers dismisses the fleet the polite way first (shutdown
// message), then the hard way (context cancel) for any worker that
// missed it.
func stopWorkers(t *testing.T, srv *Server, hs ...*workerHandle) {
	t.Helper()
	srv.ShutdownWorkers()
	for _, h := range hs {
		select {
		case <-h.done:
		case <-time.After(10 * time.Second):
			h.cancel()
			select {
			case <-h.done:
			case <-time.After(10 * time.Second):
				t.Errorf("worker %s did not exit", h.addr)
			}
		}
	}
}

// resultTrigger wraps a Network and fires fn exactly once, when addr
// sends its first slot record — the deterministic "crash mid-realization"
// hook: by construction the victim dies with a lease held and its record
// stream torn partway.
type resultTrigger struct {
	p2p.Network
	addr string
	fn   func()
	once sync.Once
}

func (n *resultTrigger) Send(env p2p.Envelope) error {
	if env.From == n.addr {
		if m, ok := decodeWire(env); ok && m.Type == mtResult {
			n.once.Do(n.fn)
		}
	}
	return n.Network.Send(env)
}

// TestDistributedFig9ByteIdenticalUnderWorkerCrash runs fig9 on a
// three-worker fleet and SIGKILLs (context-cancels, no farewell) one
// worker the moment it streams its first record. The lease expires, the
// realization is stolen and recomputed, the crashed worker's partial
// stream dedups — and the reduced figures are byte-identical to a local
// run.
func TestDistributedFig9ByteIdenticalUnderWorkerCrash(t *testing.T) {
	t.Parallel()
	sc := sim.Scale{NSearch: 250, Realizations: 3, Sources: 3, MaxTTLFlood: 5, MaxTTLNF: 3}
	const specID, seed = "fig9", uint64(42)
	want := runLocalBaseline(t, specID, sc, seed)

	inner := p2p.NewInMemoryNetwork()
	srv, err := NewServer(inner, "coord")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	path := filepath.Join(t.TempDir(), specID+".journal")
	j, err := sim.OpenJournal(path, specID, seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Worker w1 crashes on its first streamed record; w2 and w3 live.
	w1ctx, w1cancel := context.WithCancel(context.Background())
	crashNet := &resultTrigger{Network: inner, addr: "w1", fn: w1cancel}
	w1 := &workerHandle{addr: "w1", cancel: w1cancel, done: make(chan struct{})}
	go func() {
		defer close(w1.done)
		w1.stats, w1.err = RunWorker(w1ctx, crashNet, WorkerConfig{
			CoordAddr: srv.Addr(), Addr: "w1",
			Patience: 5 * time.Minute, ClaimInterval: 50 * time.Millisecond,
		})
	}()
	w2 := startWorkerOn(inner, srv.Addr(), "w2", 0)
	w3 := startWorkerOn(inner, srv.Addr(), "w3", 0)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	st, err := srv.RunJob(ctx, JobConfig{
		Spec: specID, Seed: seed, Scale: sc,
		LeaseTTL: 400 * time.Millisecond, Heartbeat: 100 * time.Millisecond, WorkerRetries: 3,
	}, j)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if st.Done != sc.Realizations {
		t.Fatalf("job settled with done=%d givenUp=%d, want all %d done", st.Done, st.GivenUp, sc.Realizations)
	}
	// The crash must actually have forced a steal.
	if st.Expired < 1 || st.Reissued < 1 {
		t.Errorf("crash left no trace: expired=%d reissued=%d", st.Expired, st.Reissued)
	}
	select {
	case <-w1.done:
		if !errors.Is(w1.err, context.Canceled) {
			t.Errorf("crashed worker returned %v, want context.Canceled", w1.err)
		}
	case <-time.After(10 * time.Second):
		t.Error("crashed worker did not exit")
	}

	got := reduceFromJournal(t, specID, sc, seed, j)
	if !bytes.Equal(want, got) {
		t.Errorf("distributed %s differs from local run (%d vs %d bytes)", specID, len(got), len(want))
	}
	stopWorkers(t, srv, w2, w3)
}

// TestDistributedDESFloodByteIdenticalUnderFaultyNetwork runs the DES
// flooding spec over a transport injecting drops, duplicates, and
// reorders, with one worker partitioned away for the first stretch of
// the job. Lost records surface as rejected completions and reissues;
// duplicates dedup; none of it may move a byte of output.
func TestDistributedDESFloodByteIdenticalUnderFaultyNetwork(t *testing.T) {
	t.Parallel()
	sc := sim.Scale{NSearch: 400, Realizations: 3, Sources: 3, MaxTTLFlood: 5, MaxTTLNF: 2}
	const specID, seed = "desflood", uint64(777)
	want := runLocalBaseline(t, specID, sc, seed)

	inner := p2p.NewInMemoryNetwork()
	faulty := p2p.NewFaultyNetwork(inner, p2p.FaultConfig{
		Seed: 99, Drop: 0.02, Dup: 0.05, Reorder: 0.05,
	})
	srv, err := NewServer(faulty, "coord")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	path := filepath.Join(t.TempDir(), specID+".journal")
	j, err := sim.OpenJournal(path, specID, seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	w1 := startWorkerOn(faulty, srv.Addr(), "w1", 0)
	w2 := startWorkerOn(faulty, srv.Addr(), "w2", 0)
	// w3 starts inside a partition and is healed into the job later: its
	// early claims vanish, and any lease it held from a pre-partition race
	// is stolen.
	faulty.Partition("island", "w3")
	w3 := startWorkerOn(faulty, srv.Addr(), "w3", 0)
	heal := time.AfterFunc(600*time.Millisecond, faulty.Heal)
	defer heal.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	st, err := srv.RunJob(ctx, JobConfig{
		Spec: specID, Seed: seed, Scale: sc,
		LeaseTTL: 400 * time.Millisecond, Heartbeat: 100 * time.Millisecond, WorkerRetries: 6,
	}, j)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if st.Done+int(st.GivenUp) < sc.Realizations {
		t.Fatalf("job did not settle: done=%d givenUp=%d", st.Done, st.GivenUp)
	}
	if st.Accepted == 0 {
		t.Error("no records were distributed at all")
	}
	if fs := faulty.Stats(); fs.PartitionDropped == 0 {
		t.Errorf("partition injected no faults: %+v", fs)
	}

	// Byte-identity holds even if fault injection drove realizations to
	// give-up: the final reduction recomputes them locally.
	got := reduceFromJournal(t, specID, sc, seed, j)
	if !bytes.Equal(want, got) {
		t.Errorf("distributed %s differs from local run (%d vs %d bytes)", specID, len(got), len(want))
	}
	faulty.Heal()
	stopWorkers(t, srv, w1, w2, w3)
}

// TestDistributedCoordinatorKillResumeByteIdentical kills the
// coordinator after its first journaled completion, tears the journal
// tail, and brings a new coordinator up at the same address against the
// resumed journal — with the original worker surviving the outage. The
// resumed job finishes the remaining realizations and the reduction is
// byte-identical to a local run.
func TestDistributedCoordinatorKillResumeByteIdentical(t *testing.T) {
	t.Parallel()
	sc := sim.Scale{NSearch: 200, Realizations: 3, Sources: 2, MaxTTLFlood: 4, MaxTTLNF: 2}
	const specID, seed = "fig9", uint64(1234)
	want := runLocalBaseline(t, specID, sc, seed)

	inner := p2p.NewInMemoryNetwork()
	srv1, err := NewServer(inner, "coord")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), specID+".journal")
	j1, err := sim.OpenJournal(path, specID, seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := JobConfig{
		Spec: specID, Seed: seed, Scale: sc,
		LeaseTTL: 500 * time.Millisecond, Heartbeat: 100 * time.Millisecond, WorkerRetries: 5,
	}

	// One worker in phase one makes completions sequential, so the kill
	// lands with work both finished and outstanding.
	w1 := startWorkerOn(inner, srv1.Addr(), "w1", 0)

	ctx1, cancel1 := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(2 * time.Minute)
		for len(j1.DoneRealizations()) == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		cancel1()
	}()
	st1, err1 := srv1.RunJob(ctx1, cfg, j1)
	cancel1()
	if !errors.Is(err1, context.Canceled) {
		t.Fatalf("killed RunJob returned %v (done=%d)", err1, st1.Done)
	}
	if st1.Done < 1 {
		t.Fatalf("first run journaled no completion (done=%d)", st1.Done)
	}
	srv1.Close()
	if err := j1.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	tearJournalTail(t, path)

	// Restart at the same address; w1 is still claiming and reconnects.
	j2, err := sim.OpenJournal(path, specID, seed, sc, true)
	if err != nil {
		t.Fatalf("resume journal: %v", err)
	}
	defer j2.Close()
	if len(j2.DoneRealizations()) < 1 {
		t.Fatal("resume recovered no done markers")
	}
	srv2, err := NewServer(inner, "coord")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	w2 := startWorkerOn(inner, srv2.Addr(), "w2", 0)

	ctx2, cancel2 := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel2()
	st2, err2 := srv2.RunJob(ctx2, cfg, j2)
	if err2 != nil {
		t.Fatalf("resumed RunJob: %v", err2)
	}
	if st2.Done != sc.Realizations {
		t.Fatalf("resumed job done=%d givenUp=%d, want all %d done", st2.Done, st2.GivenUp, sc.Realizations)
	}

	got := reduceFromJournal(t, specID, sc, seed, j2)
	if !bytes.Equal(want, got) {
		t.Errorf("kill+resume %s differs from local run (%d vs %d bytes)", specID, len(got), len(want))
	}
	stopWorkers(t, srv2, w1, w2)
}

// TestRunWorkerRefusesSkewedWorkload pins the version-skew guard end to
// end: a lease whose fingerprint does not match the shipped workload
// makes the worker report failure and exit fatally rather than compute.
func TestRunWorkerRefusesSkewedWorkload(t *testing.T) {
	t.Parallel()
	net := p2p.NewInMemoryNetwork()
	coordInbox := make(chan p2p.Envelope, 64)
	if err := net.Register("coord", coordInbox); err != nil {
		t.Fatal(err)
	}
	defer net.Unregister("coord")

	done := make(chan struct{})
	var werr error
	go func() {
		defer close(done)
		_, werr = RunWorker(context.Background(), net, WorkerConfig{
			CoordAddr: "coord", Addr: "w", ClaimInterval: 20 * time.Millisecond,
		})
	}()

	// Wait for a claim, then grant a lease with a corrupted fingerprint.
	sc := sim.Scale{Realizations: 1}
	wire := sc.WorkloadOnly()
	fp := sim.WorkloadFingerprint("fig9", 1, sc)
	fp[len(fp)-1] ^= 0xFF
	var sawFail bool
	deadline := time.After(10 * time.Second)
	for !sawFail {
		select {
		case env := <-coordInbox:
			m, ok := decodeWire(env)
			if !ok {
				continue
			}
			switch m.Type {
			case mtClaim:
				_ = sendWire(net, "coord", m.Worker, wireMsg{
					Type: mtLease, Spec: "fig9", Seed: 1, Scale: &wire,
					Fingerprint: fp, Realization: 0, Lease: 1,
					TTLMillis: 60000, HBMillis: 1000,
				})
			case mtFail:
				sawFail = true
			}
		case <-deadline:
			t.Fatal("worker never reported the skewed lease failed")
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker kept serving after workload skew")
	}
	if werr == nil {
		t.Error("skewed worker exited without error")
	}
}

// tearJournalTail appends half a valid record — the torn frame a crash
// mid-write leaves behind.
func tearJournalTail(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := testRecord(0, 0xFF).MarshalBinary()
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
