// Package coord distributes experiment runs across processes: a
// coordinator serves (spec, realization) work leases, workers claim
// leases, renew them via heartbeats, execute the build+sweep for their
// realization under the existing (seed, realization, phase) stream
// contract, and stream back journal-format slot records (ROADMAP item 4,
// after the sigmaos besched/proc-claiming idiom).
//
// Robustness model:
//
//   - Leases expire on missed heartbeats and are reissued to whichever
//     worker claims next (work stealing), so a SIGKILLed or partitioned
//     worker delays its realization by at most one lease TTL.
//   - Completions are idempotent: records land in the coordinator's
//     journal under their (kind, stream, sub, realization) key with
//     first-writer-wins semantics, so a slow stolen-from worker's late
//     duplicates are dropped, never double-counted.
//   - The coordinator journals every accepted record and every verified
//     completion, so its own crash resumes through the ordinary -resume
//     path with nothing recomputed that survived.
//   - The final reduction is a normal local spec run against that journal:
//     journaled realizations replay bit-for-bit, anything lost in flight
//     or never distributed is recomputed locally. Distribution can
//     therefore only accelerate a run — it cannot change a single byte of
//     its output, which is the determinism contract the chaos tests pin.
//
// The protocol rides p2p.Network envelopes (KindCoord with an opaque JSON
// payload), so production runs use the TCP transport's retry/backoff and
// tests compose with InMemoryNetwork and FaultyNetwork fault injection.
package coord

import (
	"encoding/json"
	"time"

	"scalefree/internal/p2p"
	"scalefree/internal/sim"
)

// Protocol message types. Workers send claim/heartbeat/result/complete/
// fail; the coordinator replies lease/wait to claims and pushes shutdown
// when the whole session is over.
const (
	mtClaim     = "claim"     // worker → coord: give me work
	mtLease     = "lease"     // coord → worker: realization granted
	mtWait      = "wait"      // coord → worker: nothing leasable now, poll again
	mtHeartbeat = "hb"        // worker → coord: still computing, renew my lease
	mtResult    = "result"    // worker → coord: one slot record
	mtComplete  = "complete"  // worker → coord: realization finished, Records streamed
	mtFail      = "fail"      // worker → coord: realization failed permanently here
	mtShutdown  = "shutdown"  // coord → worker: session over, exit
)

// wireMsg is the coordinator/worker protocol message, carried as opaque
// JSON in p2p.Message.Data. Spec doubles as the job identity on every
// worker→coord message: the coordinator serves jobs sequentially and
// drops stragglers addressed to a different spec, so a late record from
// the previous job can never leak into the current journal.
type wireMsg struct {
	Type   string `json:"t"`
	Worker string `json:"w,omitempty"` // sender's claim/reply address
	Spec   string `json:"spec,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Scale ships the workload (scheduler knobs and Run stripped); the
	// worker re-derives the fingerprint from it and refuses a mismatch.
	Scale       *sim.Scale `json:"scale,omitempty"`
	Fingerprint []byte     `json:"fp,omitempty"`
	Realization int        `json:"r"`
	Lease       uint64     `json:"lease,omitempty"`
	TTLMillis   int64      `json:"ttl,omitempty"`
	HBMillis    int64      `json:"hb,omitempty"`
	// Record is one sim.SlotRecord in journal framing (length+CRC), so a
	// frame torn anywhere between worker and journal fails loudly.
	Record []byte `json:"rec,omitempty"`
	// Records is the completing worker's streamed-record count; the
	// coordinator verifies its journal holds at least that many for the
	// realization before marking it done.
	Records int    `json:"n,omitempty"`
	Err     string `json:"err,omitempty"`
}

// sendWire routes one protocol message. Delivery failures are the
// caller's to interpret: fire-and-forget for heartbeats, fatal for a
// worker's record stream.
func sendWire(net p2p.Network, from, to string, m wireMsg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return net.Send(p2p.Envelope{From: from, To: to, Msg: p2p.Message{Kind: p2p.KindCoord, Data: b}})
}

// decodeWire extracts a protocol message from an envelope; ok=false for
// foreign kinds or malformed payloads (both ignored by receivers —
// overlay traffic and coordinator traffic may share a transport).
func decodeWire(env p2p.Envelope) (wireMsg, bool) {
	if env.Msg.Kind != p2p.KindCoord || len(env.Msg.Data) == 0 {
		return wireMsg{}, false
	}
	var m wireMsg
	if err := json.Unmarshal(env.Msg.Data, &m); err != nil {
		return wireMsg{}, false
	}
	return m, true
}

// millis converts a wire duration field, with a floor so a zero or
// corrupt value cannot spin a hot loop.
func millis(v int64, fallback time.Duration) time.Duration {
	if v <= 0 {
		return fallback
	}
	return time.Duration(v) * time.Millisecond
}
