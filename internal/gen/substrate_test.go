package gen

import (
	"math"
	"testing"

	"scalefree/internal/xrand"
)

func TestGRNRadiusForMeanDegree(t *testing.T) {
	t.Parallel()
	// kbar = n*pi*R^2 must invert exactly.
	r := GRNRadiusForMeanDegree(20000, 10)
	if got := 20000 * math.Pi * r * r; math.Abs(got-10) > 1e-9 {
		t.Fatalf("round trip kbar = %v", got)
	}
	if GRNRadiusForMeanDegree(0, 10) != 0 || GRNRadiusForMeanDegree(10, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestGRNValidation(t *testing.T) {
	t.Parallel()
	if _, _, err := GRN(GRNConfig{N: 0, R: 0.1}, xrand.New(1)); err == nil {
		t.Error("N=0 should fail")
	}
	if _, _, err := GRN(GRNConfig{N: 10}, xrand.New(1)); err == nil {
		t.Error("missing R and MeanDegree should fail")
	}
	if _, _, err := GRN(GRNConfig{N: 10, R: 3}, xrand.New(1)); err == nil {
		t.Error("R > sqrt(2) should fail")
	}
}

func TestGRNMeanDegree(t *testing.T) {
	t.Parallel()
	const n, kbar = 5000, 10.0
	g, pts, err := GRN(GRNConfig{N: n, MeanDegree: kbar}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != n {
		t.Fatalf("%d points", len(pts))
	}
	mean := float64(g.TotalDegree()) / float64(n)
	// Boundary effects depress the mean slightly; allow 15%.
	if mean < kbar*0.8 || mean > kbar*1.1 {
		t.Fatalf("mean degree %.2f, want ~%.0f", mean, kbar)
	}
}

func TestGRNEdgesRespectRadius(t *testing.T) {
	t.Parallel()
	const n, r = 800, 0.08
	g, pts, err := GRN(GRNConfig{N: n, R: r}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Every edge must join nodes within r; every non-edge pair must be
	// at distance >= r (exact geometric correctness of the grid search).
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := math.Hypot(pts[u].X-pts[v].X, pts[u].Y-pts[v].Y)
			if g.HasEdge(u, v) && d >= r {
				t.Fatalf("edge (%d,%d) at distance %.4f >= r", u, v, d)
			}
			if !g.HasEdge(u, v) && d < r {
				t.Fatalf("missing edge (%d,%d) at distance %.4f < r", u, v, d)
			}
		}
	}
}

func TestGRNGiantComponent(t *testing.T) {
	t.Parallel()
	// Paper §IV-B: with k̄ well above the critical 4.52, the GRN has a
	// giant component covering nearly all nodes.
	g, _, err := GRN(GRNConfig{N: 10000, MeanDegree: 10}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	giant := len(g.GiantComponent())
	if frac := float64(giant) / 10000; frac < 0.95 {
		t.Fatalf("giant component %.1f%%", 100*frac)
	}
}

func TestGRNPoissonDegrees(t *testing.T) {
	t.Parallel()
	// GRN degree distribution is approximately Poisson(k̄): variance
	// should be close to the mean (unlike a power law).
	g, _, err := GRN(GRNConfig{N: 10000, MeanDegree: 10}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	seq := g.DegreeSequence()
	var mean float64
	for _, k := range seq {
		mean += float64(k)
	}
	mean /= float64(len(seq))
	var variance float64
	for _, k := range seq {
		d := float64(k) - mean
		variance += d * d
	}
	variance /= float64(len(seq))
	if ratio := variance / mean; ratio < 0.5 || ratio > 2.5 {
		t.Fatalf("variance/mean = %.2f, want ~1 for Poisson-like degrees", ratio)
	}
}

func TestGRNDeterminism(t *testing.T) {
	t.Parallel()
	a, _, _ := GRN(GRNConfig{N: 500, MeanDegree: 8}, xrand.New(7))
	b, _, _ := GRN(GRNConfig{N: 500, MeanDegree: 8}, xrand.New(7))
	if a.M() != b.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.M(), b.M())
	}
}

func TestMesh(t *testing.T) {
	t.Parallel()
	g, err := Mesh(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Grid edge count: (w-1)*h + w*(h-1) = 3*3 + 4*2 = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	// Corner degree 2, edge 3, interior 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(5) != 4 { // (1,1) interior
		t.Fatalf("interior degree %d", g.Degree(5))
	}
	if !g.IsConnected() {
		t.Fatal("mesh must be connected")
	}
}

func TestMeshValidation(t *testing.T) {
	t.Parallel()
	if _, err := Mesh(0, 5); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := Mesh(5, -1); err == nil {
		t.Error("negative height should fail")
	}
}

func TestMeshSingle(t *testing.T) {
	t.Parallel()
	g, err := Mesh(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 || g.M() != 0 {
		t.Fatalf("1x1 mesh: N=%d M=%d", g.N(), g.M())
	}
}
