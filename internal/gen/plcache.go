package gen

import (
	"sync"
	"sync/atomic"

	"scalefree/internal/xrand"
)

// Table-driven power-law sampling for configuration-model degree
// sequences. xrand.PowerLawTable is bit-identical to RNG.PowerLawInt with
// identical RNG consumption (see internal/xrand/powerlaw.go), so swapping
// it in here cannot change a single sampled degree — pinned by
// TestPowerLawDegreeSequenceTableIdentity. The table is read-only after
// construction, so one instance is shared across gen workers and chunks,
// and cached across realizations: the xl registry rebuilds the same
// (kMin, kMax=N, gamma) distribution for every realization of every CM
// figure, and the 10⁶-entry table is the whole point of the exercise.

type plTableKey struct {
	kMin, kMax int
	gamma      float64
}

var (
	plTableCache sync.Map // plTableKey -> *xrand.PowerLawTable
	plTableCount atomic.Int64
)

// Cache only tables that are expensive to rebuild, and boundedly many of
// them: property/fuzz tests roam the parameter space with throwaway
// distributions that must not accrete memory.
const (
	plCacheMinRange   = 4096
	plCacheMaxEntries = 32
)

func powerLawTableFor(kMin, kMax int, gamma float64) *xrand.PowerLawTable {
	key := plTableKey{kMin, kMax, gamma}
	if v, ok := plTableCache.Load(key); ok {
		return v.(*xrand.PowerLawTable)
	}
	t := xrand.NewPowerLawTable(kMin, kMax, gamma)
	if kMax-kMin >= plCacheMinRange && plTableCount.Load() < plCacheMaxEntries {
		if _, loaded := plTableCache.LoadOrStore(key, t); !loaded {
			plTableCount.Add(1)
		}
	}
	return t
}

// powerLawSampleFunc picks the cheapest bit-identical sampling kernel for
// an n-entry degree sequence on [kMin, kMax]: the threshold table when its
// one-off build cost (kMax-kMin Pows) amortizes over the sequence, the
// hoisted-invariant sampler (one Pow per draw) otherwise. Either way every
// draw consumes exactly one Float64 and matches rng.PowerLawInt bit for
// bit.
func powerLawSampleFunc(n, kMin, kMax int, gamma float64) func(*xrand.RNG) int {
	if kMax-kMin <= 4*n {
		return powerLawTableFor(kMin, kMax, gamma).Sample
	}
	s := xrand.NewPowerLawSampler(kMin, kMax, gamma)
	return s.Sample
}
