// Package gen implements every topology generator studied in the paper —
// the two global-information mechanisms (PA, CM), the two local mechanisms
// introduced by the paper (HAPA, DAPA), the substrate networks DAPA grows on
// (geometric random network, 2-D mesh), and classical baselines (ER,
// ring lattice, Watts–Strogatz) used for comparison.
//
// Algorithms follow the paper's Appendix A–D pseudo-code. Where the
// pseudo-code is ambiguous or can stall, the deviation is documented on the
// generator and surfaced in Stats.
//
// All generators are deterministic given an *xrand.RNG: the same seed
// reproduces the same graph bit-for-bit.
package gen

import (
	"errors"
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// NoCutoff disables the hard degree cutoff (kc = ∞ in the paper's notation,
// written "no kc" in the figures).
const NoCutoff = 0

// Locality describes how much global topology information a generator needs
// when a node joins (paper Table II).
type Locality int

const (
	// LocalityGlobal means the mechanism needs the full current topology
	// (every node's degree) at join time.
	LocalityGlobal Locality = iota + 1
	// LocalityPartial means the mechanism needs limited global state (e.g.
	// the total degree) plus local walks.
	LocalityPartial
	// LocalityLocal means the mechanism uses only information reachable
	// from the joining node's neighborhood.
	LocalityLocal
)

// String returns the Table II wording.
func (l Locality) String() string {
	switch l {
	case LocalityGlobal:
		return "Yes"
	case LocalityPartial:
		return "Partial"
	case LocalityLocal:
		return "No"
	default:
		return fmt.Sprintf("Locality(%d)", int(l))
	}
}

// Model identifies a topology-construction mechanism.
type Model string

// The four mechanisms compared in the paper, plus substrates/baselines.
const (
	ModelPA   Model = "PA"
	ModelCM   Model = "CM"
	ModelHAPA Model = "HAPA"
	ModelDAPA Model = "DAPA"
	ModelGRN  Model = "GRN"
	ModelMesh Model = "Mesh"
	ModelER   Model = "ER"
	ModelRing Model = "Ring"
	ModelWS   Model = "WS"
)

// ModelLocality maps each attachment mechanism to its Table II locality
// classification.
var ModelLocality = map[Model]Locality{
	ModelPA:   LocalityGlobal,
	ModelCM:   LocalityGlobal,
	ModelHAPA: LocalityPartial,
	ModelDAPA: LocalityLocal,
}

// Validation errors shared across generators.
var (
	ErrBadN      = errors.New("gen: node count must be positive and exceed the seed clique")
	ErrBadStubs  = errors.New("gen: stub count m must be >= 1")
	ErrBadCutoff = errors.New("gen: hard cutoff must be 0 (none) or >= m")
	ErrBadGamma  = errors.New("gen: degree exponent must be > 1")
	ErrStalled   = errors.New("gen: generator stalled (could not place required edges)")
)

// Stats reports what happened during generation. Beyond debugging, it backs
// the paper-fidelity checks in EXPERIMENTS.md (e.g. how many CM edges were
// removed as self-loops, how often PA's rejection loop needed the uniform
// fallback).
type Stats struct {
	// Attempts counts candidate evaluations across all rejection loops.
	Attempts int
	// Fallbacks counts stubs placed by the uniform fallback after the
	// preferential rejection loop exceeded its attempt budget.
	Fallbacks int
	// UnfilledStubs counts stubs that could not be placed at all (every
	// candidate saturated or already connected).
	UnfilledStubs int
	// SelfLoopsRemoved and MultiEdgesRemoved report the configuration
	// model's cleanup phase (paper §III-C).
	SelfLoopsRemoved  int
	MultiEdgesRemoved int
	// Hops counts walk steps taken by HAPA's hop phase.
	Hops int
	// HorizonQueries counts substrate BFS discoveries issued by DAPA.
	HorizonQueries int
	// EmptyHorizons counts DAPA candidates that found no peer in their
	// horizon and therefore could not join (paper: such nodes are not
	// added to the overlay).
	EmptyHorizons int
	// Joined is the number of nodes actually admitted to the overlay
	// (DAPA may fall short of the target if the substrate is fragmented).
	Joined int
}

// cutoffOK reports whether node u may accept one more link under hard
// cutoff kc (paper: condition k_node < kc).
func cutoffOK(g *graph.Graph, u, kc int) bool {
	return kc == NoCutoff || g.Degree(u) < kc
}

// seedClique builds the initial network of m+1 fully connected nodes that
// PA and HAPA grow from (Appendix A and C: "the user has already created a
// network with m+1 fully connected nodes").
func seedClique(g *graph.Graph, m int) error {
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			if err := g.AddEdge(u, v); err != nil {
				return fmt.Errorf("seed clique: %w", err)
			}
		}
	}
	return nil
}

// validateGrowth checks the shared parameters of the growth models
// (PA, HAPA).
func validateGrowth(n, m, kc int) error {
	if m < 1 {
		return fmt.Errorf("%w: m=%d", ErrBadStubs, m)
	}
	if n < m+2 {
		return fmt.Errorf("%w: n=%d needs at least m+2=%d", ErrBadN, n, m+2)
	}
	if kc != NoCutoff && kc < m {
		return fmt.Errorf("%w: kc=%d < m=%d", ErrBadCutoff, kc, m)
	}
	return nil
}

// defaultRNG returns rng, or a fixed-seed generator if rng is nil, so that
// forgetting to pass an RNG still yields deterministic behavior.
func defaultRNG(rng *xrand.RNG) *xrand.RNG {
	if rng == nil {
		return xrand.New(0)
	}
	return rng
}
