package gen

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// This file implements the modified preferential-attachment models the
// paper lists as alternatives for controlling the degree exponent without
// hard cutoffs (§III-C): nonlinear preferential attachment
// (Krapivsky–Redner–Leyvraz [52,53]) and the fitness model
// (Bianconi–Barabási [54,55]). They let users trade the cutoff spike of
// PA-with-kc against intrinsically sublinear hub growth.

// NLPAConfig parameterizes nonlinear preferential attachment: a joining
// node picks targets with probability proportional to k^Alpha.
type NLPAConfig struct {
	// N is the final number of nodes (including the m+1 seed clique).
	N int
	// M is the number of stubs per joining node.
	M int
	// KC is the hard cutoff; NoCutoff (0) disables it.
	KC int
	// Alpha is the attachment-kernel exponent: 1 recovers linear PA,
	// Alpha < 1 is sublinear (stretched-exponential degree distribution,
	// no giant hubs), Alpha > 1 is superlinear (winner-take-all
	// condensation). Must be >= 0.
	Alpha float64
}

func (c NLPAConfig) validate() error {
	if err := validateGrowth(c.N, c.M, c.KC); err != nil {
		return err
	}
	if c.Alpha < 0 {
		return fmt.Errorf("%w: alpha=%v must be >= 0", ErrBadGamma, c.Alpha)
	}
	return nil
}

// NLPA generates a nonlinear preferential-attachment network. Selection
// uses rejection sampling against the stub list: a stub draw is
// proportional to k, and accepting it with probability k^(Alpha-1)/norm
// re-weights the draw to k^Alpha (norm keeps the acceptance in (0,1]:
// for Alpha <= 1 it is m^(Alpha-1); for Alpha > 1 it tracks the current
// maximum degree).
func NLPA(cfg NLPAConfig, rng *xrand.RNG) (*graph.Graph, Stats, error) {
	var st Stats
	if err := cfg.validate(); err != nil {
		return nil, st, err
	}
	rng = defaultRNG(rng)
	g := graph.New(cfg.N)
	if err := seedClique(g, cfg.M); err != nil {
		return nil, st, err
	}

	stubs := make([]int32, 0, 2*cfg.M*cfg.N)
	for u := 0; u < g.N(); u++ {
		for i := 0; i < g.Degree(u); i++ {
			stubs = append(stubs, int32(u))
		}
	}
	maxDeg := g.MaxDegree()

	a := cfg.Alpha - 1
	for i := cfg.M + 1; i < cfg.N; i++ {
		for j := 0; j < cfg.M; j++ {
			placed := false
			for attempt := 0; attempt < paAttemptBudget; attempt++ {
				st.Attempts++
				cand := int(stubs[rng.Intn(len(stubs))])
				if cand == i || g.HasEdge(i, cand) || !cutoffOK(g, cand, cfg.KC) {
					continue
				}
				// Re-weight k -> k^Alpha.
				k := float64(g.Degree(cand))
				var norm float64
				if cfg.Alpha <= 1 {
					norm = math.Pow(float64(cfg.M), a) // max of k^a over k >= m
					if cfg.M == 0 {
						norm = 1
					}
				} else {
					norm = math.Pow(float64(maxDeg), a)
				}
				if norm > 0 && rng.Float64() >= math.Pow(k, a)/norm {
					continue
				}
				mustEdge(g, i, cand)
				stubs = append(stubs, int32(i), int32(cand))
				if d := g.Degree(cand); d > maxDeg {
					maxDeg = d
				}
				placed = true
				break
			}
			if placed {
				continue
			}
			if cand := paFallback(g, i, cfg.KC, rng); cand >= 0 {
				st.Fallbacks++
				mustEdge(g, i, cand)
				stubs = append(stubs, int32(i), int32(cand))
				if d := g.Degree(cand); d > maxDeg {
					maxDeg = d
				}
			} else {
				st.UnfilledStubs++
			}
		}
	}
	return g, st, nil
}

// FitnessConfig parameterizes the Bianconi–Barabási fitness model: each
// node draws a fitness η from a distribution at birth and attracts links
// with probability proportional to η·k, so young-but-fit nodes can
// overtake old hubs ("competition and multiscaling", [54]).
type FitnessConfig struct {
	// N is the final number of nodes (including the m+1 seed clique).
	N int
	// M is the number of stubs per joining node.
	M int
	// KC is the hard cutoff; NoCutoff (0) disables it.
	KC int
	// Fitness draws one fitness value per node; nil means Uniform(0,1],
	// the canonical choice. Values must be in (0, 1].
	Fitness func(rng *xrand.RNG) float64
}

func (c FitnessConfig) validate() error { return validateGrowth(c.N, c.M, c.KC) }

// Fitness generates a Bianconi–Barabási network with hard-cutoff support.
// Selection is stub sampling (∝ k) thinned by the candidate's fitness
// (acceptance η ∈ (0,1]), which re-weights the draw to η·k.
// It returns the graph, the per-node fitness values, and generation stats.
func Fitness(cfg FitnessConfig, rng *xrand.RNG) (*graph.Graph, []float64, Stats, error) {
	var st Stats
	if err := cfg.validate(); err != nil {
		return nil, nil, st, err
	}
	rng = defaultRNG(rng)
	draw := cfg.Fitness
	if draw == nil {
		draw = func(rng *xrand.RNG) float64 {
			// Uniform(0,1]: avoid exactly-zero fitness, which would make
			// a node permanently unattractive and stall rejection loops.
			return 1 - rng.Float64()
		}
	}
	g := graph.New(cfg.N)
	if err := seedClique(g, cfg.M); err != nil {
		return nil, nil, st, err
	}
	eta := make([]float64, cfg.N)
	for u := range eta {
		f := draw(rng)
		if f <= 0 || f > 1 {
			return nil, nil, st, fmt.Errorf("%w: fitness %v outside (0,1]", ErrBadGamma, f)
		}
		eta[u] = f
	}

	stubs := make([]int32, 0, 2*cfg.M*cfg.N)
	for u := 0; u < g.N(); u++ {
		for i := 0; i < g.Degree(u); i++ {
			stubs = append(stubs, int32(u))
		}
	}
	for i := cfg.M + 1; i < cfg.N; i++ {
		for j := 0; j < cfg.M; j++ {
			placed := false
			for attempt := 0; attempt < paAttemptBudget; attempt++ {
				st.Attempts++
				cand := int(stubs[rng.Intn(len(stubs))])
				if cand == i || g.HasEdge(i, cand) || !cutoffOK(g, cand, cfg.KC) {
					continue
				}
				if rng.Float64() >= eta[cand] {
					continue
				}
				mustEdge(g, i, cand)
				stubs = append(stubs, int32(i), int32(cand))
				placed = true
				break
			}
			if placed {
				continue
			}
			if cand := fitnessFallback(g, i, cfg.KC, eta, rng); cand >= 0 {
				st.Fallbacks++
				mustEdge(g, i, cand)
				stubs = append(stubs, int32(i), int32(cand))
			} else {
				st.UnfilledStubs++
			}
		}
	}
	return g, eta, st, nil
}

// fitnessFallback draws an eligible candidate exactly ∝ η·k.
func fitnessFallback(g *graph.Graph, i, kc int, eta []float64, rng *xrand.RNG) int {
	var cands []int
	var weights []float64
	for u := 0; u < i; u++ {
		if u != i && !g.HasEdge(i, u) && cutoffOK(g, u, kc) && g.Degree(u) > 0 {
			cands = append(cands, u)
			weights = append(weights, eta[u]*float64(g.Degree(u)))
		}
	}
	idx := rng.Choose(weights)
	if idx < 0 {
		return -1
	}
	return cands[idx]
}
