package gen

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// PAConfig parameterizes preferential attachment with hard cutoffs
// (paper §III-B, Appendix A).
type PAConfig struct {
	// N is the final number of nodes (including the m+1 seed clique).
	N int
	// M is the number of stubs each joining node brings (the paper's m;
	// also the minimum degree of every non-seed node).
	M int
	// KC is the hard degree cutoff; NoCutoff (0) disables it.
	KC int
	// LiteralSampling selects the verbatim Appendix A rejection loop:
	// pick a uniform node, accept with probability k/k_total. It is
	// statistically identical to the default stub-list sampler but runs
	// in O(N² m) instead of O(N m); use it only for fidelity
	// cross-checks at small N (there is an ablation bench for exactly
	// that).
	LiteralSampling bool
}

func (c PAConfig) validate() error { return validateGrowth(c.N, c.M, c.KC) }

// paAttemptBudget bounds each stub's rejection loop before the generator
// falls back to an exact weighted choice over eligible candidates. The
// fallback preserves the preferential distribution; the budget only guards
// against pathological stall (e.g. every candidate saturated at kc).
const paAttemptBudget = 10_000

// PA generates a Barabási–Albert preferential-attachment network, with the
// paper's hard-cutoff modification: nodes at degree kc reject further
// links. Each new node connects to M distinct existing nodes chosen with
// probability proportional to their degrees among nodes below the cutoff.
//
// Without a cutoff this yields P(k) ~ k^-3 asymptotically (γ≈2.85 at
// N=10^5, Fig. 1a); with a cutoff the distribution accumulates a spike at
// kc and the fitted exponent drops (Figs. 1b, 1c).
func PA(cfg PAConfig, rng *xrand.RNG) (*graph.Graph, Stats, error) {
	return PABuild(cfg, Build{RNG: defaultRNG(rng)})
}

// PABuild is PA under an explicit build context. The growth process is
// inherently sequential (each join's acceptance depends on the degrees
// left by every earlier join), so a phased build draws everything from the
// single "pa.grow" phase stream and Workers has no effect; the topology is
// therefore trivially identical for any build parallelism. A legacy Build
// (Phases nil) reproduces PA's historical draw sequence byte for byte.
func PABuild(cfg PAConfig, b Build) (*graph.Graph, Stats, error) {
	var st Stats
	if err := cfg.validate(); err != nil {
		return nil, st, err
	}
	b = b.normalize()
	rng := b.phase("pa.grow")
	g := graph.New(cfg.N)
	if err := seedClique(g, cfg.M); err != nil {
		return nil, st, err
	}

	if cfg.LiteralSampling {
		err := paLiteral(g, cfg, rng, &st)
		return g, st, err
	}

	// Stub list: each node appears once per unit of degree, so a uniform
	// index draw is a degree-proportional node draw. Rejecting draws that
	// violate the adjacency/cutoff conditions leaves the conditional
	// distribution identical to Appendix A's loop.
	stubs := make([]int32, 0, 2*cfg.M*cfg.N)
	for u := 0; u < g.N(); u++ {
		for i := 0; i < g.Degree(u); i++ {
			stubs = append(stubs, int32(u))
		}
	}

	for i := cfg.M + 1; i < cfg.N; i++ {
		for j := 0; j < cfg.M; j++ {
			placed := false
			for attempt := 0; attempt < paAttemptBudget; attempt++ {
				st.Attempts++
				cand := int(stubs[rng.Intn(len(stubs))])
				if cand == i || g.HasEdge(i, cand) || !cutoffOK(g, cand, cfg.KC) {
					continue
				}
				mustEdge(g, i, cand)
				stubs = append(stubs, int32(i), int32(cand))
				placed = true
				break
			}
			if placed {
				continue
			}
			// Exact weighted fallback over the (possibly tiny) eligible set.
			if cand := paFallback(g, i, cfg.KC, rng); cand >= 0 {
				st.Fallbacks++
				mustEdge(g, i, cand)
				stubs = append(stubs, int32(i), int32(cand))
			} else {
				st.UnfilledStubs++
			}
		}
	}
	return g, st, nil
}

// paLiteral runs Appendix A verbatim: uniform candidate, acceptance
// probability k_cand/k_total, cutoff and adjacency conditions, repeated
// until the stub is placed.
func paLiteral(g *graph.Graph, cfg PAConfig, rng *xrand.RNG, st *Stats) error {
	for i := cfg.M + 1; i < cfg.N; i++ {
		for j := 0; j < cfg.M; j++ {
			placed := false
			// The literal loop in the paper has no bound; we keep a very
			// generous one so a saturated network cannot hang the caller.
			budget := paAttemptBudget * (i + 1)
			for attempt := 0; attempt < budget; attempt++ {
				st.Attempts++
				cand := rng.Intn(i)
				kTotal := g.TotalDegree()
				if g.HasEdge(i, cand) || !cutoffOK(g, cand, cfg.KC) {
					continue
				}
				if rng.Float64() >= float64(g.Degree(cand))/float64(kTotal) {
					continue
				}
				mustEdge(g, i, cand)
				placed = true
				break
			}
			if !placed {
				if cand := paFallback(g, i, cfg.KC, rng); cand >= 0 {
					st.Fallbacks++
					mustEdge(g, i, cand)
				} else {
					st.UnfilledStubs++
				}
			}
		}
	}
	return nil
}

// paFallback draws an eligible neighbor for node i exactly proportionally
// to degree, scanning all nodes below i. Returns -1 if no node is eligible.
func paFallback(g *graph.Graph, i, kc int, rng *xrand.RNG) int {
	var cands []int
	var weights []float64
	for u := 0; u < i; u++ {
		if u != i && !g.HasEdge(i, u) && cutoffOK(g, u, kc) && g.Degree(u) > 0 {
			cands = append(cands, u)
			weights = append(weights, float64(g.Degree(u)))
		}
	}
	idx := rng.Choose(weights)
	if idx < 0 {
		return -1
	}
	return cands[idx]
}

// mustEdge adds an edge that cannot fail by construction (both endpoints
// already validated); a failure indicates a bug, so it panics rather than
// silently corrupting the topology.
func mustEdge(g *graph.Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(fmt.Sprintf("gen: internal edge insertion failed: %v", err))
	}
}
