package gen

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// LocalEventsConfig parameterizes the Albert–Barabási "local events"
// evolving-network model (Phys. Rev. Lett. 85, 5234 — cited as [7] and
// listed in §III-C as the dynamic edge-rewiring alternative to hard
// cutoffs). Each time step performs exactly one of:
//
//	with probability P:      add M new edges between existing nodes
//	                         (one endpoint uniform, the other preferential),
//	with probability Q:      rewire M edges (detach a uniformly chosen
//	                         edge end and re-attach it preferentially),
//	with probability 1-P-Q:  add a new node with M preferential links.
//
// Varying P and Q sweeps the degree exponent continuously — the model's
// point, and the reason the paper lists it next to nonlinear PA.
type LocalEventsConfig struct {
	// N is the target number of nodes.
	N int
	// M is the number of links per event.
	M int
	// KC is the hard cutoff; NoCutoff (0) disables it.
	KC int
	// P and Q are the edge-addition and rewiring probabilities;
	// P + Q must be < 1 so the network keeps growing.
	P, Q float64
}

func (c LocalEventsConfig) validate() error {
	if err := validateGrowth(c.N, c.M, c.KC); err != nil {
		return err
	}
	if c.P < 0 || c.Q < 0 || c.P+c.Q >= 1 {
		return fmt.Errorf("%w: p=%v q=%v need p,q >= 0 and p+q < 1", ErrBadGamma, c.P, c.Q)
	}
	return nil
}

// LocalEvents generates an Albert–Barabási local-events network. Node
// events, edge events, and rewiring events all respect the hard cutoff:
// a preferential target at kc is redrawn.
func LocalEvents(cfg LocalEventsConfig, rng *xrand.RNG) (*graph.Graph, Stats, error) {
	var st Stats
	if err := cfg.validate(); err != nil {
		return nil, st, err
	}
	rng = defaultRNG(rng)
	g := graph.New(cfg.M + 1)
	if err := seedClique(g, cfg.M); err != nil {
		return nil, st, err
	}

	// Stub list for O(1) preferential draws, kept in sync with g.
	stubs := make([]int32, 0, 4*cfg.M*cfg.N)
	for u := 0; u < g.N(); u++ {
		for i := 0; i < g.Degree(u); i++ {
			stubs = append(stubs, int32(u))
		}
	}
	// removeStub deletes one occurrence of u from the stub list.
	removeStub := func(u int32) {
		for i, s := range stubs {
			if s == u {
				stubs[i] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				return
			}
		}
	}
	// preferential draws an eligible target for `from` (not adjacent, not
	// self, below cutoff); returns -1 if none found within budget.
	preferential := func(from int) int {
		for attempt := 0; attempt < paAttemptBudget; attempt++ {
			st.Attempts++
			cand := int(stubs[rng.Intn(len(stubs))])
			if cand != from && !g.HasEdge(from, cand) && cutoffOK(g, cand, cfg.KC) {
				return cand
			}
		}
		if cand := paFallback(g, from, cfg.KC, rng); cand >= 0 && cand != from && !g.HasEdge(from, cand) {
			st.Fallbacks++
			return cand
		}
		return -1
	}

	for g.N() < cfg.N {
		r := rng.Float64()
		switch {
		case r < cfg.P:
			// Add M edges between existing nodes.
			for j := 0; j < cfg.M; j++ {
				from := rng.Intn(g.N())
				if !cutoffOK(g, from, cfg.KC) {
					continue
				}
				to := preferential(from)
				if to < 0 {
					st.UnfilledStubs++
					continue
				}
				mustEdge(g, from, to)
				stubs = append(stubs, int32(from), int32(to))
			}
		case r < cfg.P+cfg.Q:
			// Rewire M edges: pick a random node, detach one of its
			// links, re-attach preferentially.
			for j := 0; j < cfg.M; j++ {
				from := rng.Intn(g.N())
				old := g.RandomNeighbor(from, rng)
				if old < 0 {
					continue
				}
				to := preferential(from)
				if to < 0 {
					st.UnfilledStubs++
					continue
				}
				g.RemoveEdge(from, old)
				removeStub(int32(old))
				removeStub(int32(from))
				mustEdge(g, from, to)
				stubs = append(stubs, int32(from), int32(to))
			}
		default:
			// Grow: a new node with M preferential links (plain PA step).
			u := g.AddNode()
			for j := 0; j < cfg.M; j++ {
				to := preferential(u)
				if to < 0 {
					st.UnfilledStubs++
					continue
				}
				mustEdge(g, u, to)
				stubs = append(stubs, int32(u), int32(to))
			}
		}
	}
	return g, st, nil
}
