package gen

import (
	"errors"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

// testSubstrate builds a small GRN substrate shared by DAPA tests.
func testSubstrate(t *testing.T, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, _, err := GRN(GRNConfig{N: n, MeanDegree: 10}, xrand.New(seed))
	if err != nil {
		t.Fatalf("substrate: %v", err)
	}
	return g
}

func genDAPA(t *testing.T, sub *graph.Graph, cfg DAPAConfig, seed uint64) (*Overlay, Stats) {
	t.Helper()
	ov, st, err := DAPA(sub, cfg, xrand.New(seed))
	if err != nil {
		t.Fatalf("DAPA(%+v): %v (joined=%d)", cfg, err, st.Joined)
	}
	return ov, st
}

func TestDAPAValidation(t *testing.T) {
	t.Parallel()
	sub := testSubstrate(t, 200, 1)
	cases := []DAPAConfig{
		{NOverlay: 50, M: 0, TauSub: 4},
		{NOverlay: 50, M: 1, TauSub: 0},
		{NOverlay: 1, M: 1, TauSub: 4},         // below seed count
		{NOverlay: 500, M: 1, TauSub: 4},       // exceeds substrate
		{NOverlay: 50, M: 3, KC: 1, TauSub: 4}, // kc < m
	}
	for _, cfg := range cases {
		if _, _, err := DAPA(sub, cfg, xrand.New(1)); err == nil {
			t.Errorf("DAPA(%+v) should have failed validation", cfg)
		}
	}
}

func TestDAPAStructure(t *testing.T) {
	t.Parallel()
	sub := testSubstrate(t, 2000, 2)
	ov, st := genDAPA(t, sub, DAPAConfig{NOverlay: 1000, M: 2, TauSub: 6}, 3)
	if ov.G.N() != 1000 || st.Joined != 1000 {
		t.Fatalf("overlay size %d, joined %d", ov.G.N(), st.Joined)
	}
	if len(ov.SubstrateID) != 1000 {
		t.Fatalf("substrate mapping size %d", len(ov.SubstrateID))
	}
	// Mapping consistency both ways, and no substrate node joins twice.
	seen := map[int]bool{}
	for oid, sid := range ov.SubstrateID {
		if seen[sid] {
			t.Fatalf("substrate node %d joined twice", sid)
		}
		seen[sid] = true
		if ov.OverlayID[sid] != oid {
			t.Fatalf("inverse mapping broken at overlay %d", oid)
		}
	}
	// Every peer connected to at least one other peer.
	if ov.G.MinDegree() < 1 {
		t.Fatal("joined peer with zero degree")
	}
}

func TestDAPACutoffEnforced(t *testing.T) {
	t.Parallel()
	sub := testSubstrate(t, 2000, 4)
	for _, kc := range []int{5, 10} {
		ov, _ := genDAPA(t, sub, DAPAConfig{NOverlay: 800, M: 2, KC: kc, TauSub: 6}, 5)
		if ov.G.MaxDegree() > kc {
			t.Errorf("kc=%d: max overlay degree %d", kc, ov.G.MaxDegree())
		}
	}
}

func TestDAPADeterminism(t *testing.T) {
	t.Parallel()
	sub := testSubstrate(t, 1000, 6)
	cfg := DAPAConfig{NOverlay: 400, M: 2, KC: 20, TauSub: 4}
	a, _ := genDAPA(t, sub, cfg, 7)
	b, _ := genDAPA(t, sub, cfg, 7)
	if a.G.M() != b.G.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.G.M(), b.G.M())
	}
	for i := range a.SubstrateID {
		if a.SubstrateID[i] != b.SubstrateID[i] {
			t.Fatalf("join order differs at %d", i)
		}
	}
}

func TestDAPASmallTauExponentialLargeTauPowerLaw(t *testing.T) {
	t.Parallel()
	// Fig 4: small τ_sub makes the degree distribution exponential
	// (light tail); large τ_sub recovers a heavy power-law tail. Compare
	// the maximum degree reached, which differs by an order of magnitude.
	sub := testSubstrate(t, 4000, 8)
	maxDeg := func(tau int) int {
		best := 0
		for seed := uint64(0); seed < 3; seed++ {
			ov, _ := genDAPA(t, sub, DAPAConfig{NOverlay: 2000, M: 1, TauSub: tau}, 20+seed)
			if d := ov.G.MaxDegree(); d > best {
				best = d
			}
		}
		return best
	}
	small, large := maxDeg(2), maxDeg(30)
	if large < 3*small {
		t.Fatalf("max degree τ=30 (%d) should dwarf τ=2 (%d)", large, small)
	}
}

func TestDAPAMinDegreeMayFallBelowM(t *testing.T) {
	t.Parallel()
	// Paper §IV-B: "it is possible to find peers with degree less than m
	// ... since some nodes cannot find enough peers in their horizon".
	sub := testSubstrate(t, 2000, 9)
	ov, _ := genDAPA(t, sub, DAPAConfig{NOverlay: 1000, M: 3, TauSub: 2}, 10)
	below := 0
	for _, k := range ov.G.DegreeSequence() {
		if k < 3 {
			below++
		}
	}
	if below == 0 {
		t.Fatal("expected some shortsighted peers below m with τ_sub=2")
	}
}

func TestDAPAStallsOnFragmentedSubstrate(t *testing.T) {
	t.Parallel()
	// A substrate of two disconnected cliques: peers seeded in one
	// component can never be discovered from the other, so a large
	// overlay target must stall and report ErrStalled.
	sub := graph.New(20)
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if err := sub.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if err := sub.AddEdge(u+10, v+10); err != nil {
				t.Fatal(err)
			}
		}
	}
	ov, st, err := DAPA(sub, DAPAConfig{NOverlay: 18, M: 1, TauSub: 3}, xrand.New(11))
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if ov == nil || st.Joined >= 18 {
		t.Fatalf("partial overlay expected, joined=%d", st.Joined)
	}
	if st.EmptyHorizons == 0 {
		t.Fatal("expected empty-horizon events on fragmented substrate")
	}
}

func TestDAPAMeshSubstrate(t *testing.T) {
	t.Parallel()
	// The paper mentions a 2-D regular mesh as an alternative substrate.
	sub, err := Mesh(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	ov, st := genDAPA(t, sub, DAPAConfig{NOverlay: 600, M: 2, KC: 30, TauSub: 5}, 12)
	if st.Joined != 600 {
		t.Fatalf("joined %d", st.Joined)
	}
	if ov.G.MaxDegree() > 30 {
		t.Fatalf("cutoff violated on mesh substrate")
	}
}

func TestDAPAExponentIncreasesAsCutoffShrinks(t *testing.T) {
	t.Parallel()
	// Fig 4(g): "as the cutoff decreases the exponent increases". The
	// paper notes this data is very noisy; compare the two extremes with
	// merged realizations.
	sub := testSubstrate(t, 4000, 13)
	gammaAt := func(kc int) float64 {
		var dists []stats.DegreeDist
		for seed := uint64(0); seed < 4; seed++ {
			ov, _ := genDAPA(t, sub, DAPAConfig{NOverlay: 2000, M: 1, KC: kc, TauSub: 20}, 40+seed)
			dists = append(dists, stats.NewDegreeDist(ov.G.DegreeHistogram()))
		}
		kMax := 0
		if kc != NoCutoff {
			kMax = kc - 1
		}
		fit, err := stats.FitPowerLawBinned(stats.MergeDegreeDists(dists), 1.7, 1, kMax)
		if err != nil {
			t.Fatal(err)
		}
		return fit.Gamma
	}
	gSmall := gammaAt(10)
	gLarge := gammaAt(50)
	if gSmall >= gLarge {
		t.Logf("noisy regime (paper reports large error bars): gamma(kc=10)=%.2f gamma(kc=50)=%.2f", gSmall, gLarge)
	}
}
