package gen

import (
	"sync"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// Build describes how a generator draws randomness and schedules its
// internal work. It exists for the experiment engine's pipelined build
// stage: with Phases set, a generator splits its randomness into named
// phase sub-streams (xrand.Phases — derived solely from (seed,
// realization, phase)) and may parallelize phases whose chunk boundaries
// are fixed, so the generated topology is bit-for-bit identical for every
// Workers value and on every pipeline worker.
//
// With Phases nil the generator runs its legacy single-stream path: every
// phase draws from the one RNG in call order, byte-compatible with the
// plain PA/CM/GRN/DAPA entry points that predate Build.
type Build struct {
	// RNG is the legacy single-stream source, used only when Phases is
	// nil. Nil falls back to a fixed-seed generator, as the plain entry
	// points do.
	RNG *xrand.RNG
	// Phases, when non-nil, switches the generator to named phase
	// sub-streams and enables deterministic intra-generator parallelism.
	Phases *xrand.Phases
	// Workers bounds intra-generator parallelism; <=1 runs every phase on
	// the calling goroutine. Output is identical for every value — only
	// wall-clock changes.
	Workers int
	// Arena, when non-nil, recycles the direct-to-CSR builders' large
	// transient buffers (edge chunks, count/scatter/dedup scratch) across
	// consecutive builds. Output is identical with or without it; only
	// allocation traffic changes. The experiment pipeline hands each build
	// worker its own arena; an arena must not serve two concurrent builds.
	Arena *graph.CSRArena
}

// NewBuild returns a phase-stream Build for one realization.
func NewBuild(phases xrand.Phases, workers int) Build {
	return Build{Phases: &phases, Workers: workers}
}

// phased reports whether the build uses phase sub-streams.
func (b Build) phased() bool { return b.Phases != nil }

// workers returns the effective parallelism bound (>=1).
func (b Build) workers() int {
	if b.Workers < 1 {
		return 1
	}
	return b.Workers
}

// normalize returns b with the legacy fallback materialized: when both
// Phases and RNG are nil, a single fixed-seed RNG is installed so every
// phase shares one stream, exactly as the plain entry points' defaultRNG
// does. Generator entry points call this once before the first phase
// draw — phase itself must not create the fallback, or each phase would
// get its own identical New(0) stream.
func (b Build) normalize() Build {
	if b.Phases == nil && b.RNG == nil {
		b.RNG = xrand.New(0)
	}
	return b
}

// phase returns the RNG for a named phase. Phased builds get the
// realization's (seed, realization, phase) stream; legacy builds get the
// single shared RNG, so phases consume it in exactly the historical order.
func (b Build) phase(name string) *xrand.RNG {
	if b.Phases != nil {
		return b.Phases.Stream(name)
	}
	return b.RNG
}

// buildChunk is the fixed chunk size of parallelized phases. It is a
// constant on purpose: chunk boundaries (and therefore the per-chunk RNG
// streams) must never depend on the worker count, or output would change
// with parallelism.
const buildChunk = 8192

// chunks returns the number of buildChunk-sized chunks covering n items.
func chunks(n int) int { return (n + buildChunk - 1) / buildChunk }

// forChunks runs fn(chunk, lo, hi) for every buildChunk-sized chunk of
// [0, n), fanning the chunks across up to b.workers() goroutines. fn must
// write only to chunk-disjoint state (its own index range, its own
// accumulator slot); under that contract the result is identical for any
// worker count, including the serial in-order walk used when workers<=1.
func (b Build) forChunks(n int, fn func(chunk, lo, hi int)) {
	nc := chunks(n)
	w := b.workers()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for c := 0; c < nc; c++ {
			lo := c * buildChunk
			hi := lo + buildChunk
			if hi > n {
				hi = n
			}
			fn(c, lo, hi)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			// Static striding: worker g owns chunks g, g+w, g+2w, ...
			// Assignment does not affect output (chunks are independent),
			// only load balance, for which striding is fine.
			for c := g; c < nc; c += w {
				lo := c * buildChunk
				hi := lo + buildChunk
				if hi > n {
					hi = n
				}
				fn(c, lo, hi)
			}
		}(g)
	}
	wg.Wait()
}
