package gen

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// This file implements classical baseline topologies referenced by the
// paper when positioning scale-free networks: Erdős–Rényi random graphs,
// ring lattices, and Watts–Strogatz small-world networks ("search on
// small-world topologies can be as efficient as O(ln N)", §I). They anchor
// the diameter-scaling comparisons (Table I context) and serve as non-
// scale-free controls in the benchmarks.

// MustPath returns a path graph 0-1-...-(n-1); it panics on invalid n and
// exists for tests and examples that need a deterministic line topology.
func MustPath(n int) *graph.Graph {
	if n < 1 {
		panic("gen: MustPath needs n >= 1")
	}
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(g, i, i+1)
	}
	return g
}

// ER generates an Erdős–Rényi G(n, M) random graph with exactly edges
// simple edges (no self-loops, no duplicates). edges must fit in a simple
// graph: edges <= n(n-1)/2.
func ER(n, edges int, rng *xrand.RNG) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadN, n)
	}
	maxEdges := n * (n - 1) / 2
	if edges < 0 || edges > maxEdges {
		return nil, fmt.Errorf("gen: ER edge count %d out of [0, %d]", edges, maxEdges)
	}
	rng = defaultRNG(rng)
	g := graph.New(n)
	for g.M() < edges {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		mustEdge(g, u, v)
	}
	return g, nil
}

// Ring generates a ring lattice: n nodes in a cycle, each linked to its k
// nearest neighbors on each side (total degree 2k). Requires n > 2k.
func Ring(n, k int) (*graph.Graph, error) {
	if n < 3 || k < 1 || n <= 2*k {
		return nil, fmt.Errorf("%w: ring n=%d k=%d requires n > 2k >= 2", ErrBadN, n, k)
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			mustEdge(g, u, v)
		}
	}
	return g, nil
}

// WattsStrogatz generates a small-world network: a Ring(n, k) lattice with
// each edge rewired with probability beta to a uniform random non-duplicate
// endpoint. beta=0 is the lattice; beta=1 approaches a random graph; small
// beta yields the small-world regime with d ~ ln N.
func WattsStrogatz(n, k int, beta float64, rng *xrand.RNG) (*graph.Graph, error) {
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: rewiring probability %v out of [0,1]", beta)
	}
	g, err := Ring(n, k)
	if err != nil {
		return nil, err
	}
	rng = defaultRNG(rng)
	// Rewire the "forward" lattice edges, the standard WS procedure.
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			if !rng.Bool(beta) {
				continue
			}
			v := (u + d) % n
			if !g.HasEdge(u, v) {
				continue // already rewired away
			}
			// Pick a new endpoint avoiding self-loops and duplicates; a
			// node adjacent to everything keeps its edge.
			w := -1
			for attempt := 0; attempt < 100; attempt++ {
				cand := rng.Intn(n)
				if cand != u && !g.HasEdge(u, cand) {
					w = cand
					break
				}
			}
			if w < 0 {
				continue
			}
			g.RemoveEdge(u, v)
			mustEdge(g, u, w)
		}
	}
	return g, nil
}
