package gen

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

func genHAPA(t *testing.T, cfg HAPAConfig, seed uint64) (*graph.Graph, Stats) {
	t.Helper()
	g, st, err := HAPA(cfg, xrand.New(seed))
	if err != nil {
		t.Fatalf("HAPA(%+v): %v", cfg, err)
	}
	return g, st
}

func TestHAPAValidation(t *testing.T) {
	t.Parallel()
	cases := []HAPAConfig{
		{N: 10, M: 0},
		{N: 2, M: 2},
		{N: 100, M: 3, KC: 1},
	}
	for _, cfg := range cases {
		if _, _, err := HAPA(cfg, xrand.New(1)); err == nil {
			t.Errorf("HAPA(%+v) should have failed validation", cfg)
		}
	}
}

func TestHAPABasicStructure(t *testing.T) {
	t.Parallel()
	const n, m = 2000, 2
	g, st := genHAPA(t, HAPAConfig{N: n, M: m}, 1)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	wantM := m*(m+1)/2 + (n-m-1)*m - st.UnfilledStubs
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Fatal("HAPA graph must be connected")
	}
	if st.Hops == 0 {
		t.Fatal("HAPA should record hop-walk steps")
	}
}

func TestHAPADeterminism(t *testing.T) {
	t.Parallel()
	cfg := HAPAConfig{N: 600, M: 2, KC: 30}
	a, _ := genHAPA(t, cfg, 3)
	b, _ := genHAPA(t, cfg, 3)
	for u := 0; u < a.N(); u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("degree(%d) differs", u)
		}
	}
}

func TestHAPACutoffEnforced(t *testing.T) {
	t.Parallel()
	for _, kc := range []int{5, 10, 50} {
		g, _ := genHAPA(t, HAPAConfig{N: 2000, M: 1, KC: kc}, 7)
		if g.MaxDegree() > kc {
			t.Errorf("kc=%d: max degree %d", kc, g.MaxDegree())
		}
	}
}

func TestHAPASuperHubsWithoutCutoff(t *testing.T) {
	t.Parallel()
	// Paper §IV-A: without a cutoff HAPA produces super hubs "on the
	// order of network size" — far larger than PA's natural cutoff
	// m·sqrt(N).
	const n = 3000
	g, _ := genHAPA(t, HAPAConfig{N: n, M: 1}, 5)
	if g.MaxDegree() < n/10 {
		t.Fatalf("max degree %d; expected a super hub of order N=%d", g.MaxDegree(), n)
	}
	// And star-like means very small mean path length relative to PA.
	st := g.SamplePathStats(30, xrand.New(1))
	if st.MeanDistance > 4 {
		t.Fatalf("mean distance %.2f too large for star-like topology", st.MeanDistance)
	}
}

func TestHAPACutoffDestroysStar(t *testing.T) {
	t.Parallel()
	// Figs 3(b,c): a hard cutoff removes the super hubs.
	const n, kc = 3000, 10
	g, _ := genHAPA(t, HAPAConfig{N: n, M: 1, KC: kc}, 9)
	if g.MaxDegree() > kc {
		t.Fatalf("cutoff violated: %d", g.MaxDegree())
	}
	// Many nodes accumulate at the cutoff.
	h := g.DegreeHistogram()
	if h[kc] < n/100 {
		t.Fatalf("only %d nodes at cutoff; expected accumulation", h[kc])
	}
}

func TestHAPAMinDegree(t *testing.T) {
	t.Parallel()
	g, st := genHAPA(t, HAPAConfig{N: 1500, M: 3, KC: 50}, 11)
	if st.UnfilledStubs == 0 && g.MinDegree() < 3 {
		t.Fatalf("min degree %d < m=3 with no unfilled stubs", g.MinDegree())
	}
}

func TestHAPATightCutoffTerminates(t *testing.T) {
	t.Parallel()
	// kc == m saturates the seed clique immediately; generation must
	// terminate via fallbacks/unfilled accounting rather than hang.
	g, st, err := HAPA(HAPAConfig{N: 60, M: 2, KC: 2}, xrand.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 2 {
		t.Fatalf("max degree %d > kc", g.MaxDegree())
	}
	if st.UnfilledStubs == 0 {
		t.Fatal("expected unfilled stubs at saturating cutoff")
	}
}
