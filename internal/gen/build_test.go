package gen

import (
	"reflect"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// graphFingerprint captures a graph's full adjacency structure, insertion
// order included, so two builds can be compared bit for bit.
func graphFingerprint(t *testing.T, g *graph.Graph) [][]int32 {
	t.Helper()
	out := make([][]int32, g.N())
	for u := 0; u < g.N(); u++ {
		out[u] = append([]int32(nil), g.Neighbors(u)...)
	}
	return out
}

func phasesFor(seed, realization uint64) xrand.Phases {
	return xrand.Phases{Seed: seed, Realization: realization}
}

// TestCMBuildWorkerInvariance pins the chunked-degree contract: a phased
// CM build yields the identical graph (and Stats) for every Workers value.
func TestCMBuildWorkerInvariance(t *testing.T) {
	t.Parallel()
	cfg := CMConfig{N: 9000, M: 2, KC: 60, Gamma: 2.5}
	build := func(workers int) ([][]int32, Stats) {
		g, st, err := CMBuild(cfg, NewBuild(phasesFor(11, 3), workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return graphFingerprint(t, g), st
	}
	wantG, wantSt := build(1)
	for _, w := range []int{2, 4, 7} {
		g, st := build(w)
		if !reflect.DeepEqual(wantG, g) {
			t.Fatalf("CM graph differs between Workers=1 and Workers=%d", w)
		}
		if st != wantSt {
			t.Fatalf("CM stats differ between Workers=1 and Workers=%d: %+v vs %+v", w, wantSt, st)
		}
	}
}

// TestGRNBuildWorkerInvariance pins the GRN contract: chunked placement
// and parallel radius queries yield identical points and edges for every
// Workers value.
func TestGRNBuildWorkerInvariance(t *testing.T) {
	t.Parallel()
	cfg := GRNConfig{N: 9000, MeanDegree: 10}
	build := func(workers int) ([][]int32, []Point) {
		g, pts, err := GRNBuild(cfg, NewBuild(phasesFor(5, 1), workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return graphFingerprint(t, g), pts
	}
	wantG, wantPts := build(1)
	for _, w := range []int{2, 4, 7} {
		g, pts := build(w)
		if !reflect.DeepEqual(wantPts, pts) {
			t.Fatalf("GRN points differ between Workers=1 and Workers=%d", w)
		}
		if !reflect.DeepEqual(wantG, g) {
			t.Fatalf("GRN graph differs between Workers=1 and Workers=%d", w)
		}
	}
}

// TestDAPABuildWorkerInvariance pins the batched-flood contract: a phased
// DAPA build — candidate lookahead, parallel horizon floods — yields the
// identical overlay (mapping, adjacency, Stats) for every Workers value.
func TestDAPABuildWorkerInvariance(t *testing.T) {
	t.Parallel()
	sub, _, err := GRN(GRNConfig{N: 4000, MeanDegree: 10}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	fsub := sub.Freeze()
	for _, tau := range []int{2, 10} {
		cfg := DAPAConfig{NOverlay: 1500, M: 2, KC: 40, TauSub: tau}
		build := func(workers int) ([][]int32, []int, Stats) {
			ov, st, err := DAPABuild(fsub, cfg, NewBuild(phasesFor(13, 2), workers))
			if err != nil {
				t.Fatalf("tau=%d workers=%d: %v", tau, workers, err)
			}
			return graphFingerprint(t, ov.G), ov.SubstrateID, st
		}
		wantG, wantIDs, wantSt := build(1)
		for _, w := range []int{2, 4} {
			g, ids, st := build(w)
			if !reflect.DeepEqual(wantIDs, ids) {
				t.Fatalf("tau=%d: DAPA join order differs between Workers=1 and Workers=%d", tau, w)
			}
			if !reflect.DeepEqual(wantG, g) {
				t.Fatalf("tau=%d: DAPA overlay differs between Workers=1 and Workers=%d", tau, w)
			}
			if st != wantSt {
				t.Fatalf("tau=%d: DAPA stats differ between Workers=1 and Workers=%d: %+v vs %+v", tau, w, wantSt, st)
			}
		}
	}
}

// TestLegacyBuildMatchesPlainEntryPoints pins the compatibility contract:
// the plain PA/CM/GRN/DAPAFrozen entry points and a legacy Build (Phases
// nil) draw from the single stream in the identical order.
func TestLegacyBuildMatchesPlainEntryPoints(t *testing.T) {
	t.Parallel()
	pa1, _, err := PA(PAConfig{N: 600, M: 2, KC: 40}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pa2, _, err := PABuild(PAConfig{N: 600, M: 2, KC: 40}, Build{RNG: xrand.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(graphFingerprint(t, pa1), graphFingerprint(t, pa2)) {
		t.Fatal("PABuild(legacy) diverged from PA")
	}
	cm1, _, err := CM(CMConfig{N: 600, M: 2, Gamma: 2.4}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	cm2, _, err := CMBuild(CMConfig{N: 600, M: 2, Gamma: 2.4}, Build{RNG: xrand.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(graphFingerprint(t, cm1), graphFingerprint(t, cm2)) {
		t.Fatal("CMBuild(legacy) diverged from CM")
	}
	sub, _, err := GRN(GRNConfig{N: 1500, MeanDegree: 10}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fsub := sub.Freeze()
	dcfg := DAPAConfig{NOverlay: 500, M: 2, KC: 40, TauSub: 4}
	ov1, st1, err := DAPAFrozen(fsub, dcfg, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	ov2, st2, err := DAPABuild(fsub, dcfg, Build{RNG: xrand.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(graphFingerprint(t, ov1.G), graphFingerprint(t, ov2.G)) || st1 != st2 {
		t.Fatal("DAPABuild(legacy) diverged from DAPAFrozen")
	}
}

// TestZeroValueBuildMatchesNilRNG pins the zero-value contract: Build{}
// must behave exactly like passing a nil RNG to the plain entry points —
// one shared fixed-seed stream across all phases, not one identical
// stream per phase.
func TestZeroValueBuildMatchesNilRNG(t *testing.T) {
	t.Parallel()
	want, _, err := CM(CMConfig{N: 500, M: 2, Gamma: 2.4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := CMBuild(CMConfig{N: 500, M: 2, Gamma: 2.4}, Build{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(graphFingerprint(t, want), graphFingerprint(t, got)) {
		t.Fatal("CMBuild(Build{}) diverged from CM(cfg, nil)")
	}
}

// TestStubListParallelMatchesSerial pins the stub expansion on both paths.
func TestStubListParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	seq := PowerLawDegreeSequence(20000, 1, 100, 2.3, xrand.New(9))
	serial := stubList(seq, Build{RNG: xrand.New(0)})
	par := stubList(seq, NewBuild(phasesFor(0, 0), 4))
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel stub list diverged from serial expansion")
	}
}
