package gen

import (
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// HAPAConfig parameterizes Hop-and-Attempt Preferential Attachment
// (paper §IV-A, Appendix C).
type HAPAConfig struct {
	// N is the final number of nodes (including the m+1 seed clique).
	N int
	// M is the number of stubs each joining node brings.
	M int
	// KC is the hard degree cutoff; NoCutoff (0) disables it.
	KC int
}

func (c HAPAConfig) validate() error { return validateGrowth(c.N, c.M, c.KC) }

// hapaHopBudget bounds the hop walk per stub before falling back to a fresh
// uniform restart, and hapaRestartBudget bounds restarts before the exact
// weighted fallback. Without a cutoff the walk concentrates on super-hubs
// and terminates fast; with a tight cutoff acceptance probabilities shrink
// and the budget guards against stalls on saturated neighborhoods.
const (
	hapaHopBudget     = 50_000
	hapaRestartBudget = 8
)

// HAPA generates a topology by Hop-and-Attempt Preferential Attachment: a
// joining node i picks a uniform random existing node, attempts the
// preferential connection there (accept with probability k/k_total,
// subject to the cutoff and no-duplicate conditions), and then walks along
// existing links, re-attempting at every stop until its M stubs are filled.
//
// Hopping finds hubs far more often than uniform sampling does, so without
// a hard cutoff HAPA degenerates into a star-like topology dominated by
// ~m+1 "super hubs" of degree O(N) (Fig. 3a); a hard cutoff destroys the
// star and restores a power-law-like distribution with exponential
// corrections (Figs. 3b, 3c).
//
// Fidelity note: Appendix C line 8 resets the walk to the joining node i
// itself, which is undefined when the first attempt failed (i has no links
// yet). We follow the prose of §IV-A instead — "the new node hops between
// the neighboring nodes ... by using the existing links" — walking from the
// initially selected node. Walks that exhaust hapaHopBudget restart from a
// fresh uniform node; after hapaRestartBudget restarts the stub is placed
// by an exact degree-weighted draw (Stats.Fallbacks) or recorded as
// unfilled if every candidate is saturated.
func HAPA(cfg HAPAConfig, rng *xrand.RNG) (*graph.Graph, Stats, error) {
	return HAPABuild(cfg, Build{RNG: defaultRNG(rng)})
}

// HAPABuild is HAPA under an explicit build context. Like PA, the hop walk
// is inherently sequential, so a phased build draws from the single
// "hapa.grow" stream and Workers has no effect on the output; a legacy
// Build reproduces HAPA's historical draw sequence byte for byte.
func HAPABuild(cfg HAPAConfig, b Build) (*graph.Graph, Stats, error) {
	var st Stats
	if err := cfg.validate(); err != nil {
		return nil, st, err
	}
	b = b.normalize()
	rng := b.phase("hapa.grow")
	g := graph.New(cfg.N)
	if err := seedClique(g, cfg.M); err != nil {
		return nil, st, err
	}

	kTotal := g.TotalDegree()
	for i := cfg.M + 1; i < cfg.N; i++ {
		filled := 0
		// First attempt from a uniform random node (Appendix C lines 3-7).
		pos := rng.Intn(i)
		if hapaAttempt(g, i, pos, cfg.KC, kTotal, rng, &st) {
			filled++
			kTotal += 2
		}
		restarts := 0
		hops := 0
		for filled < cfg.M {
			if hops >= hapaHopBudget {
				hops = 0
				restarts++
				if restarts > hapaRestartBudget {
					if cand := paFallback(g, i, cfg.KC, rng); cand >= 0 {
						st.Fallbacks++
						mustEdge(g, i, cand)
						kTotal += 2
						filled++
						continue
					}
					st.UnfilledStubs += cfg.M - filled
					break
				}
				pos = rng.Intn(i)
			}
			// Hop along an existing link (Appendix C line 10).
			next := g.RandomNeighbor(pos, rng)
			if next < 0 || next >= i {
				// Neighbor may be a node joined later in ID order only
				// when pos == i, which cannot happen; next < 0 means an
				// isolated node, possible only for unfilled earlier
				// joins — restart.
				pos = rng.Intn(i)
				continue
			}
			pos = next
			hops++
			st.Hops++
			if hapaAttempt(g, i, pos, cfg.KC, kTotal, rng, &st) {
				filled++
				kTotal += 2
			}
		}
	}
	return g, st, nil
}

// hapaAttempt performs one preferential connection attempt of node i at
// walk position pos (Appendix C lines 4 and 11): reject if already
// adjacent, self, or at the cutoff; otherwise accept with probability
// k_pos/k_total.
func hapaAttempt(g *graph.Graph, i, pos, kc, kTotal int, rng *xrand.RNG, st *Stats) bool {
	st.Attempts++
	if pos == i || g.HasEdge(i, pos) || !cutoffOK(g, pos, kc) {
		return false
	}
	if rng.Float64() >= float64(g.Degree(pos))/float64(kTotal) {
		return false
	}
	mustEdge(g, i, pos)
	return true
}
