package gen

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// CMConfig parameterizes the configuration model (paper §III-C,
// Appendix B).
type CMConfig struct {
	// N is the number of nodes.
	N int
	// M is the minimum degree of the prescribed sequence.
	M int
	// KC is the maximum degree of the prescribed sequence; NoCutoff (0)
	// uses kc = N, the paper's "no cutoff" convention for CM.
	KC int
	// Gamma is the target degree-distribution exponent
	// (paper uses 2.2, 2.6, 3.0).
	Gamma float64
}

func (c CMConfig) validate() error {
	if c.M < 1 {
		return fmt.Errorf("%w: m=%d", ErrBadStubs, c.M)
	}
	if c.N < 2 {
		return fmt.Errorf("%w: n=%d", ErrBadN, c.N)
	}
	if c.Gamma <= 1 {
		return fmt.Errorf("%w: gamma=%v", ErrBadGamma, c.Gamma)
	}
	if c.KC != NoCutoff && c.KC < c.M {
		return fmt.Errorf("%w: kc=%d < m=%d", ErrBadCutoff, c.KC, c.M)
	}
	return nil
}

// CM generates an uncorrelated random graph with a power-law degree
// sequence P(k) ∝ k^-Gamma on [M, KC] via the configuration model:
//
//  1. Draw a degree sequence from the target distribution, adjusting one
//     entry so the stub total is even.
//  2. Wire uniformly random stub pairs (self-loops and multi-edges
//     allowed).
//  3. Delete self-loops and multi-edges (paper §III-C), which "gives a
//     very marginal error in the degree distribution exponent" and may
//     leave a few nodes below degree M — Fig. 2 shows exactly this.
//
// Note on fidelity: Appendix B's pseudo-code pairs each remaining stub
// with a uniformly random *node*; the standard (and intended) algorithm
// pairs uniformly random *stubs*, which is what the cited references
// [56–58] define and what reproduces the prescribed degree sequence. We
// implement stub pairing and document the difference here.
func CM(cfg CMConfig, rng *xrand.RNG) (*graph.Graph, Stats, error) {
	return CMBuild(cfg, Build{RNG: defaultRNG(rng)})
}

// CMBuild is CM under an explicit build context. A phased build splits the
// randomness into the "cm.degrees" phase (sampled in fixed-size chunks,
// one sub-stream per chunk, so any number of workers draws identical
// degrees), the "cm.parity" phase (the even-total repair), and the
// "cm.wire" phase (the stub shuffle, sequential by nature); degree
// sampling and the stub-list setup fan out across Build.Workers
// goroutines. Output is bit-for-bit identical for every Workers value. A
// legacy Build (Phases nil) reproduces CM's historical single-stream draw
// sequence byte for byte.
//
// CMBuild materializes the mutable Graph; the experiment engine uses
// CMFrozen, which wires the identical stub stream straight into CSR form.
func CMBuild(cfg CMConfig, b Build) (*graph.Graph, Stats, error) {
	var st Stats
	b = b.normalize()
	stubs, err := cmShuffledStubs(cfg, b)
	if err != nil {
		return nil, st, err
	}
	g := graph.New(cfg.N)
	for i := 0; i+1 < len(stubs); i += 2 {
		mustEdge(g, int(stubs[i]), int(stubs[i+1]))
	}
	b.Arena.Release(stubs)
	st.SelfLoopsRemoved, st.MultiEdgesRemoved = g.Simplify()
	return g, st, nil
}

// CMFrozen is CMBuild built straight into a CSR snapshot: the shuffled
// stub pairs are emitted into a graph.CSRBuilder in fixed-size chunks
// (the pairing is RNG-free after the wire shuffle, so the emission fans
// out across Build.Workers without touching the draw sequence) and
// finalized with the cleanup pass replayed on the sorted CSR. The result
// is byte-identical — offsets, neighbor order, sorted membership ranges,
// Stats — to CMBuild followed by FreezeSorted, for every Workers value
// and for legacy Builds, but never allocates per-node adjacency slices or
// the edge-multiplicity map. The snapshot is sweep-ready (sorted ranges
// eager); Build.Arena, when set, recycles the build's transient buffers.
func CMFrozen(cfg CMConfig, b Build) (*graph.Frozen, Stats, error) {
	var st Stats
	b = b.normalize()
	stubs, err := cmShuffledStubs(cfg, b)
	if err != nil {
		return nil, st, err
	}
	pairs := len(stubs) / 2
	cb := graph.NewCSRBuilder(cfg.N, chunks(pairs), b.Arena)
	b.forChunks(pairs, func(chunk, lo, hi int) {
		cb.Reserve(chunk, hi-lo)
		for p := lo; p < hi; p++ {
			cb.Edge(chunk, stubs[2*p], stubs[2*p+1])
		}
	})
	// The stub array is fully copied into the chunk buffers; recycle it
	// before finalize so the count/scatter scratch can reuse its memory.
	b.Arena.Release(stubs)
	f, selfLoops, multiEdges := cb.FinalizeSimplified(b.workers())
	st.SelfLoopsRemoved, st.MultiEdgesRemoved = selfLoops, multiEdges
	return f, st, nil
}

// cmShuffledStubs runs the randomized front half shared by CMBuild and
// CMFrozen — degree sampling, parity repair, stub expansion, wire
// shuffle — consuming the build's streams identically on both paths.
// b must already be normalized.
func cmShuffledStubs(cfg CMConfig, b Build) ([]int32, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	kc := cfg.KC
	if kc == NoCutoff || kc > cfg.N {
		kc = cfg.N
	}
	var seq []int
	if b.phased() {
		seq = powerLawDegreeSequenceChunked(cfg.N, cfg.M, kc, cfg.Gamma, b)
	} else {
		seq = PowerLawDegreeSequence(cfg.N, cfg.M, kc, cfg.Gamma, b.phase("cm.degrees"))
	}
	stubs := stubList(seq, b)
	wire := b.phase("cm.wire")
	wire.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	return stubs, nil
}

// powerLawDegreeSequenceChunked is the phased counterpart of
// PowerLawDegreeSequence: chunk c of the sequence draws from the
// (seed, realization, "cm.degrees", c) sub-stream, so the sampled degrees
// are identical no matter how many goroutines process the chunks. The
// parity repair draws from its own "cm.parity" stream.
func powerLawDegreeSequenceChunked(n, kMin, kMax int, gamma float64, b Build) []int {
	seq := make([]int, n)
	subtotals := make([]int, chunks(n))
	// One read-only sampling kernel shared by every chunk worker —
	// bit-identical to rng.PowerLawInt per draw (see plcache.go), so the
	// phase contract is untouched.
	sample := powerLawSampleFunc(n, kMin, kMax, gamma)
	b.forChunks(n, func(chunk, lo, hi int) {
		rng := b.Phases.Chunk("cm.degrees", chunk)
		t := 0
		for i := lo; i < hi; i++ {
			seq[i] = sample(rng)
			t += seq[i]
		}
		subtotals[chunk] = t
	})
	total := 0
	for _, t := range subtotals {
		total += t
	}
	if total%2 == 1 {
		// Same repair rule as PowerLawDegreeSequence, from the dedicated
		// parity stream.
		i := b.phase("cm.parity").Intn(n)
		if seq[i] < kMax {
			seq[i]++
		} else {
			seq[i]--
		}
	}
	return seq
}

// stubList expands a degree sequence into the stub array (node u appearing
// seq[u] times, in node order). The expansion is RNG-free; a phased build
// fills disjoint chunk ranges in parallel from the sequence's prefix sums,
// a legacy build appends serially — both produce the identical array. The
// array comes from Build.Arena when one is set (CMFrozen releases it after
// wiring), so repeated pipeline builds reuse it.
func stubList(seq []int, b Build) []int32 {
	if !b.phased() || b.workers() <= 1 {
		stubs := b.Arena.Grab(sum(seq))[:0]
		for u, k := range seq {
			for i := 0; i < k; i++ {
				stubs = append(stubs, int32(u))
			}
		}
		return stubs
	}
	n := len(seq)
	// Stub totals fit int32 comfortably (2E entries, and the CSR layout is
	// int32 throughout), so the prefix sums can live in arena scratch.
	offsets := b.Arena.Grab(n + 1)
	offsets[0] = 0
	for u, k := range seq {
		offsets[u+1] = offsets[u] + int32(k)
	}
	stubs := b.Arena.Grab(int(offsets[n]))
	b.forChunks(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			for p := offsets[u]; p < offsets[u+1]; p++ {
				stubs[p] = int32(u)
			}
		}
	})
	b.Arena.Release(offsets)
	return stubs
}

// PowerLawDegreeSequence draws n degrees from P(k) ∝ k^-gamma on
// [kMin, kMax], then repairs parity so the total stub count is even (a
// random entry is bumped within bounds). Exposed for tests and for callers
// that want to feed a custom sequence through graph construction.
func PowerLawDegreeSequence(n, kMin, kMax int, gamma float64, rng *xrand.RNG) []int {
	seq := make([]int, n)
	total := 0
	sample := powerLawSampleFunc(n, kMin, kMax, gamma)
	for i := range seq {
		seq[i] = sample(rng)
		total += seq[i]
	}
	if total%2 == 1 {
		// Adjust one random entry by ±1, preferring to stay inside
		// [kMin, kMax]. In the degenerate kMin == kMax case one entry is
		// decremented below the bound — parity must win, and the paper's
		// own cleanup phase already tolerates degrees below m.
		i := rng.Intn(n)
		if seq[i] < kMax {
			seq[i]++
		} else {
			seq[i]--
		}
	}
	return seq
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
