package gen

import (
	"testing"

	"scalefree/internal/xrand"
)

func TestER(t *testing.T) {
	t.Parallel()
	g, err := ER(100, 300, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 || g.M() != 300 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	for u := 0; u < 100; u++ {
		if g.EdgeMultiplicity(u, u) != 0 {
			t.Fatal("ER produced self-loop")
		}
		for v := u + 1; v < 100; v++ {
			if g.EdgeMultiplicity(u, v) > 1 {
				t.Fatal("ER produced multi-edge")
			}
		}
	}
}

func TestERValidation(t *testing.T) {
	t.Parallel()
	if _, err := ER(0, 1, xrand.New(1)); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ER(4, 7, xrand.New(1)); err == nil {
		t.Error("too many edges should fail")
	}
	if _, err := ER(4, -1, xrand.New(1)); err == nil {
		t.Error("negative edges should fail")
	}
}

func TestERComplete(t *testing.T) {
	t.Parallel()
	// Requesting the maximum edge count must terminate with K_n.
	g, err := ER(6, 15, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 15 || g.MinDegree() != 5 {
		t.Fatalf("complete graph: M=%d minDeg=%d", g.M(), g.MinDegree())
	}
}

func TestRing(t *testing.T) {
	t.Parallel()
	g, err := Ring(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 20 {
		t.Fatalf("M=%d, want n*k=20", g.M())
	}
	for u := 0; u < 10; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d)=%d, want 2k=4", u, g.Degree(u))
		}
	}
	if !g.IsConnected() {
		t.Fatal("ring must be connected")
	}
	// Ring diameter: floor(n/(2k)) hops... for n=10,k=2 farthest node is
	// 5 steps around, reachable in ceil(5/2)=3 hops.
	if d := g.EstimateDiameter(5, xrand.New(1)); d != 3 {
		t.Fatalf("ring diameter %d, want 3", d)
	}
}

func TestRingValidation(t *testing.T) {
	t.Parallel()
	if _, err := Ring(4, 2); err == nil {
		t.Error("n <= 2k should fail")
	}
	if _, err := Ring(10, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestWattsStrogatz(t *testing.T) {
	t.Parallel()
	g, err := WattsStrogatz(500, 3, 0.1, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N=%d", g.N())
	}
	// Rewiring preserves edge count.
	if g.M() != 1500 {
		t.Fatalf("M=%d, want 1500", g.M())
	}
	// Small-world: diameter far below the lattice's n/(2k)≈83.
	lattice, err := Ring(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	dWS := g.SamplePathStats(50, xrand.New(2)).MeanDistance
	dLat := lattice.SamplePathStats(50, xrand.New(2)).MeanDistance
	if dWS >= dLat/2 {
		t.Fatalf("WS mean path %.1f not much shorter than lattice %.1f", dWS, dLat)
	}
}

func TestWattsStrogatzBetaZeroIsLattice(t *testing.T) {
	t.Parallel()
	g, err := WattsStrogatz(50, 2, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Ring(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 50; u++ {
		for v := u + 1; v < 50; v++ {
			if g.HasEdge(u, v) != ring.HasEdge(u, v) {
				t.Fatalf("beta=0 differs from lattice at (%d,%d)", u, v)
			}
		}
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	t.Parallel()
	if _, err := WattsStrogatz(50, 2, -0.1, xrand.New(1)); err == nil {
		t.Error("negative beta should fail")
	}
	if _, err := WattsStrogatz(50, 2, 1.1, xrand.New(1)); err == nil {
		t.Error("beta > 1 should fail")
	}
	if _, err := WattsStrogatz(4, 2, 0.5, xrand.New(1)); err == nil {
		t.Error("invalid lattice should fail")
	}
}

func TestModelLocalityTable(t *testing.T) {
	t.Parallel()
	// Table II exactly.
	want := map[Model]string{
		ModelPA:   "Yes",
		ModelCM:   "Yes",
		ModelHAPA: "Partial",
		ModelDAPA: "No",
	}
	for model, usage := range want {
		if got := ModelLocality[model].String(); got != usage {
			t.Errorf("Table II: %s uses global info %q, want %q", model, got, usage)
		}
	}
}
