package gen

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// This file implements the substrate networks DAPA grows its overlay on
// (paper §IV-B): the geometric random network (GRN) the paper uses for all
// simulations, and the 2-D regular mesh alternative it mentions.

// Point is a node position in the unit square.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// GRNConfig parameterizes a 2-D geometric random network: N nodes placed
// uniformly at random in the unit square, any two linked when their
// Euclidean distance is below R.
type GRNConfig struct {
	// N is the number of nodes.
	N int
	// R is the connection radius. If zero, it is derived from MeanDegree.
	R float64
	// MeanDegree, when R is zero, selects R so the expected degree is
	// MeanDegree (the paper uses k̄ = 10 with N_S = 2·10⁴).
	MeanDegree float64
}

// GRNRadiusForMeanDegree returns the connection radius giving expected mean
// degree kbar in a unit square with n uniformly placed nodes:
// kbar = n·π·R² (boundary effects ignored, as in the literature).
func GRNRadiusForMeanDegree(n int, kbar float64) float64 {
	if n <= 0 || kbar <= 0 {
		return 0
	}
	return math.Sqrt(kbar / (float64(n) * math.Pi))
}

// GRN generates a geometric random network and returns the graph together
// with node coordinates. Pair search uses a uniform grid of cell size R, so
// construction is O(N·k̄) rather than O(N²).
//
// GRNs have Poissonian degree distributions P(k) = e^-k̄ k̄^k / k!; with
// k̄ = 10 the network has a giant component spanning nearly all nodes,
// which is what DAPA's discovery protocol relies on.
func GRN(cfg GRNConfig, rng *xrand.RNG) (*graph.Graph, []Point, error) {
	return GRNBuild(cfg, Build{RNG: defaultRNG(rng)})
}

// GRNBuild is GRN under an explicit build context. A phased build places
// points in fixed-size chunks, one "grn.points" sub-stream per chunk, so
// the coordinates are identical for every Build.Workers value; the radius
// queries consume no randomness at all and fan out across workers, each
// chunk collecting its candidate pairs into a private buffer that is
// flushed into the graph in chunk order — the exact edge order the serial
// scan produces. A legacy Build reproduces GRN's historical single-stream
// placement byte for byte.
func GRNBuild(cfg GRNConfig, b Build) (*graph.Graph, []Point, error) {
	b = b.normalize()
	if cfg.N < 1 {
		return nil, nil, fmt.Errorf("%w: n=%d", ErrBadN, cfg.N)
	}
	r := cfg.R
	if r == 0 {
		if cfg.MeanDegree <= 0 {
			return nil, nil, fmt.Errorf("gen: GRN needs R or MeanDegree")
		}
		r = GRNRadiusForMeanDegree(cfg.N, cfg.MeanDegree)
	}
	if r <= 0 || r > math.Sqrt2 {
		return nil, nil, fmt.Errorf("gen: GRN radius %v out of (0, sqrt(2)]", r)
	}

	pts := make([]Point, cfg.N)
	if b.phased() {
		b.forChunks(cfg.N, func(chunk, lo, hi int) {
			rng := b.Phases.Chunk("grn.points", chunk)
			for i := lo; i < hi; i++ {
				pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
			}
		})
	} else {
		rng := b.phase("grn.points")
		for i := range pts {
			pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
		}
	}

	// Uniform grid spatial hash with cell size >= r: candidate pairs live
	// in the same or adjacent cells. Buckets are built by counting sort, so
	// each cell lists its nodes in ascending ID order — the same order the
	// historical append-based build produced.
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	cellSize := 1.0 / float64(cells)
	cellOf := func(p Point) (int, int) {
		cx := int(p.X / cellSize)
		cy := int(p.Y / cellSize)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	cellKeys := make([]int32, cfg.N)
	start := make([]int32, cells*cells+1)
	for i, p := range pts {
		cx, cy := cellOf(p)
		k := int32(cy*cells + cx)
		cellKeys[i] = k
		start[k+1]++
	}
	for k := 1; k < len(start); k++ {
		start[k] += start[k-1]
	}
	bucket := make([]int32, cfg.N)
	next := make([]int32, cells*cells)
	copy(next, start[:cells*cells])
	for i := range cellKeys {
		k := cellKeys[i]
		bucket[next[k]] = int32(i)
		next[k]++
	}

	g := graph.New(cfg.N)
	r2 := r * r
	// scanNode appends node i's candidate edges (j > i, within radius) to
	// out, in the fixed cell/bucket order.
	scanNode := func(i int, out []int32) []int32 {
		p := pts[i]
		cx, cy := cellOf(p)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				k := ny*cells + nx
				for _, j := range bucket[start[k]:start[k+1]] {
					if int(j) <= i {
						continue // handle each unordered pair once
					}
					q := pts[j]
					ddx, ddy := p.X-q.X, p.Y-q.Y
					if ddx*ddx+ddy*ddy < r2 {
						out = append(out, j)
					}
				}
			}
		}
		return out
	}
	if b.phased() && b.workers() > 1 {
		edges := make([][]int32, chunks(cfg.N))
		b.forChunks(cfg.N, func(chunk, lo, hi int) {
			var buf []int32 // interleaved (i, j) pairs for this chunk
			var nbr []int32
			for i := lo; i < hi; i++ {
				nbr = scanNode(i, nbr[:0])
				for _, j := range nbr {
					buf = append(buf, int32(i), j)
				}
			}
			edges[chunk] = buf
		})
		for _, buf := range edges {
			for e := 0; e+1 < len(buf); e += 2 {
				mustEdge(g, int(buf[e]), int(buf[e+1]))
			}
		}
	} else {
		var nbr []int32
		for i := 0; i < cfg.N; i++ {
			nbr = scanNode(i, nbr[:0])
			for _, j := range nbr {
				mustEdge(g, i, int(j))
			}
		}
	}
	return g, pts, nil
}

// Mesh generates a width×height 2-D regular grid where each node links to
// its four axis-aligned neighbors (no wraparound), the paper's alternative
// DAPA substrate.
func Mesh(width, height int) (*graph.Graph, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("%w: mesh %dx%d", ErrBadN, width, height)
	}
	g := graph.New(width * height)
	id := func(x, y int) int { return y*width + x }
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				mustEdge(g, id(x, y), id(x+1, y))
			}
			if y+1 < height {
				mustEdge(g, id(x, y), id(x, y+1))
			}
		}
	}
	return g, nil
}
