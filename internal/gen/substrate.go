package gen

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// This file implements the substrate networks DAPA grows its overlay on
// (paper §IV-B): the geometric random network (GRN) the paper uses for all
// simulations, and the 2-D regular mesh alternative it mentions.

// Point is a node position in the unit square.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// GRNConfig parameterizes a 2-D geometric random network: N nodes placed
// uniformly at random in the unit square, any two linked when their
// Euclidean distance is below R.
type GRNConfig struct {
	// N is the number of nodes.
	N int
	// R is the connection radius. If zero, it is derived from MeanDegree.
	R float64
	// MeanDegree, when R is zero, selects R so the expected degree is
	// MeanDegree (the paper uses k̄ = 10 with N_S = 2·10⁴).
	MeanDegree float64
}

// GRNRadiusForMeanDegree returns the connection radius giving expected mean
// degree kbar in a unit square with n uniformly placed nodes:
// kbar = n·π·R² (boundary effects ignored, as in the literature).
func GRNRadiusForMeanDegree(n int, kbar float64) float64 {
	if n <= 0 || kbar <= 0 {
		return 0
	}
	return math.Sqrt(kbar / (float64(n) * math.Pi))
}

// GRN generates a geometric random network and returns the graph together
// with node coordinates. Pair search uses a uniform grid of cell size R, so
// construction is O(N·k̄) rather than O(N²).
//
// GRNs have Poissonian degree distributions P(k) = e^-k̄ k̄^k / k!; with
// k̄ = 10 the network has a giant component spanning nearly all nodes,
// which is what DAPA's discovery protocol relies on.
func GRN(cfg GRNConfig, rng *xrand.RNG) (*graph.Graph, []Point, error) {
	if cfg.N < 1 {
		return nil, nil, fmt.Errorf("%w: n=%d", ErrBadN, cfg.N)
	}
	r := cfg.R
	if r == 0 {
		if cfg.MeanDegree <= 0 {
			return nil, nil, fmt.Errorf("gen: GRN needs R or MeanDegree")
		}
		r = GRNRadiusForMeanDegree(cfg.N, cfg.MeanDegree)
	}
	if r <= 0 || r > math.Sqrt2 {
		return nil, nil, fmt.Errorf("gen: GRN radius %v out of (0, sqrt(2)]", r)
	}
	rng = defaultRNG(rng)

	pts := make([]Point, cfg.N)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}

	// Uniform grid spatial hash with cell size >= r: candidate pairs live
	// in the same or adjacent cells.
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	cellSize := 1.0 / float64(cells)
	grid := make(map[int][]int32, cfg.N)
	cellOf := func(p Point) (int, int) {
		cx := int(p.X / cellSize)
		cy := int(p.Y / cellSize)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	for i, p := range pts {
		cx, cy := cellOf(p)
		key := cy*cells + cx
		grid[key] = append(grid[key], int32(i))
	}

	g := graph.New(cfg.N)
	r2 := r * r
	for i, p := range pts {
		cx, cy := cellOf(p)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, j := range grid[ny*cells+nx] {
					if int(j) <= i {
						continue // handle each unordered pair once
					}
					q := pts[j]
					ddx, ddy := p.X-q.X, p.Y-q.Y
					if ddx*ddx+ddy*ddy < r2 {
						mustEdge(g, i, int(j))
					}
				}
			}
		}
	}
	return g, pts, nil
}

// Mesh generates a width×height 2-D regular grid where each node links to
// its four axis-aligned neighbors (no wraparound), the paper's alternative
// DAPA substrate.
func Mesh(width, height int) (*graph.Graph, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("%w: mesh %dx%d", ErrBadN, width, height)
	}
	g := graph.New(width * height)
	id := func(x, y int) int { return y*width + x }
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				mustEdge(g, id(x, y), id(x+1, y))
			}
			if y+1 < height {
				mustEdge(g, id(x, y), id(x, y+1))
			}
		}
	}
	return g, nil
}
