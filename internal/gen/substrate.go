package gen

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// This file implements the substrate networks DAPA grows its overlay on
// (paper §IV-B): the geometric random network (GRN) the paper uses for all
// simulations, and the 2-D regular mesh alternative it mentions.

// Point is a node position in the unit square.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// GRNConfig parameterizes a 2-D geometric random network: N nodes placed
// uniformly at random in the unit square, any two linked when their
// Euclidean distance is below R.
type GRNConfig struct {
	// N is the number of nodes.
	N int
	// R is the connection radius. If zero, it is derived from MeanDegree.
	R float64
	// MeanDegree, when R is zero, selects R so the expected degree is
	// MeanDegree (the paper uses k̄ = 10 with N_S = 2·10⁴).
	MeanDegree float64
}

// GRNRadiusForMeanDegree returns the connection radius giving expected mean
// degree kbar in a unit square with n uniformly placed nodes:
// kbar = n·π·R² (boundary effects ignored, as in the literature).
func GRNRadiusForMeanDegree(n int, kbar float64) float64 {
	if n <= 0 || kbar <= 0 {
		return 0
	}
	return math.Sqrt(kbar / (float64(n) * math.Pi))
}

// GRN generates a geometric random network and returns the graph together
// with node coordinates. Pair search uses a uniform grid of cell size R, so
// construction is O(N·k̄) rather than O(N²).
//
// GRNs have Poissonian degree distributions P(k) = e^-k̄ k̄^k / k!; with
// k̄ = 10 the network has a giant component spanning nearly all nodes,
// which is what DAPA's discovery protocol relies on.
func GRN(cfg GRNConfig, rng *xrand.RNG) (*graph.Graph, []Point, error) {
	return GRNBuild(cfg, Build{RNG: defaultRNG(rng)})
}

// GRNBuild is GRN under an explicit build context. A phased build places
// points in fixed-size chunks, one "grn.points" sub-stream per chunk, so
// the coordinates are identical for every Build.Workers value; the radius
// queries consume no randomness at all and fan out across workers, each
// chunk collecting its candidate pairs into a private buffer that is
// flushed into the graph in chunk order — the exact edge order the serial
// scan produces. A legacy Build reproduces GRN's historical single-stream
// placement byte for byte.
//
// GRNBuild materializes the mutable Graph; the experiment engine uses
// GRNFrozen, which emits the identical edge stream straight into CSR form.
func GRNBuild(cfg GRNConfig, b Build) (*graph.Graph, []Point, error) {
	b = b.normalize()
	grid, err := grnGridFor(cfg, b)
	if err != nil {
		return nil, nil, err
	}
	g := graph.New(cfg.N)
	if b.phased() && b.workers() > 1 {
		edges := make([][]int32, chunks(cfg.N))
		b.forChunks(cfg.N, func(chunk, lo, hi int) {
			var buf []int32 // interleaved (i, j) pairs for this chunk
			var nbr []int32
			for i := lo; i < hi; i++ {
				nbr = grid.scanNode(i, nbr[:0])
				for _, j := range nbr {
					buf = append(buf, int32(i), j)
				}
			}
			edges[chunk] = buf
		})
		for _, buf := range edges {
			for e := 0; e+1 < len(buf); e += 2 {
				mustEdge(g, int(buf[e]), int(buf[e+1]))
			}
		}
	} else {
		var nbr []int32
		for i := 0; i < cfg.N; i++ {
			nbr = grid.scanNode(i, nbr[:0])
			for _, j := range nbr {
				mustEdge(g, i, int(j))
			}
		}
	}
	grid.recycle(b.Arena)
	return g, grid.pts, nil
}

// GRNFrozen is GRNBuild built straight into a CSR snapshot: every chunk's
// radius scan emits its (i, j) pairs into a graph.CSRBuilder chunk
// buffer, and the parallel count/scatter finalize lays them out in chunk
// order — the exact edge order the mutable build inserts. The result is
// byte-identical to GRNBuild followed by FreezePar for every Workers
// value and for legacy Builds. The scan produces each unordered pair once
// and no self-loops, so no cleanup pass runs; the sorted membership
// ranges stay lazy, matching how substrate snapshots are consumed
// (DAPA's discovery floods only scan Neighbors). Build.Arena, when set,
// recycles the build's transient buffers.
func GRNFrozen(cfg GRNConfig, b Build) (*graph.Frozen, []Point, error) {
	b = b.normalize()
	grid, err := grnGridFor(cfg, b)
	if err != nil {
		return nil, nil, err
	}
	cb := graph.NewCSRBuilder(cfg.N, chunks(cfg.N), b.Arena)
	b.forChunks(cfg.N, func(chunk, lo, hi int) {
		var nbr []int32
		for i := lo; i < hi; i++ {
			nbr = grid.scanNode(i, nbr[:0])
			for _, j := range nbr {
				cb.Edge(chunk, int32(i), j)
			}
		}
	})
	// Emission is done with the spatial hash; recycle its tables before
	// finalize so the count/scatter scratch can reuse the memory.
	grid.recycle(b.Arena)
	return cb.Finalize(b.workers(), false), grid.pts, nil
}

// grnGrid is the uniform spatial hash shared by GRNBuild and GRNFrozen:
// cell size >= r, so candidate pairs live in the same or adjacent cells.
// Buckets are built by counting sort, so each cell lists its nodes in
// ascending ID order — the same order the historical append-based build
// produced.
type grnGrid struct {
	pts      []Point
	cells    int
	cellSize float64
	start    []int32
	bucket   []int32
	r2       float64
}

// grnGridFor validates cfg, places the points (consuming the "grn.points"
// stream exactly as the historical build), and indexes them. b must
// already be normalized.
func grnGridFor(cfg GRNConfig, b Build) (*grnGrid, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadN, cfg.N)
	}
	r := cfg.R
	if r == 0 {
		if cfg.MeanDegree <= 0 {
			return nil, fmt.Errorf("gen: GRN needs R or MeanDegree")
		}
		r = GRNRadiusForMeanDegree(cfg.N, cfg.MeanDegree)
	}
	if r <= 0 || r > math.Sqrt2 {
		return nil, fmt.Errorf("gen: GRN radius %v out of (0, sqrt(2)]", r)
	}

	pts := make([]Point, cfg.N)
	if b.phased() {
		b.forChunks(cfg.N, func(chunk, lo, hi int) {
			rng := b.Phases.Chunk("grn.points", chunk)
			for i := lo; i < hi; i++ {
				pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
			}
		})
	} else {
		rng := b.phase("grn.points")
		for i := range pts {
			pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
		}
	}

	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	grid := &grnGrid{
		pts:      pts,
		cells:    cells,
		cellSize: 1.0 / float64(cells),
		start:    b.Arena.Grab(cells*cells + 1),
		bucket:   b.Arena.Grab(cfg.N),
		r2:       r * r,
	}
	clear(grid.start)
	cellKeys := b.Arena.Grab(cfg.N)
	for i, p := range pts {
		cx, cy := grid.cellOf(p)
		k := int32(cy*cells + cx)
		cellKeys[i] = k
		grid.start[k+1]++
	}
	for k := 1; k < len(grid.start); k++ {
		grid.start[k] += grid.start[k-1]
	}
	next := b.Arena.Grab(cells * cells)
	copy(next, grid.start[:cells*cells])
	for i := range cellKeys {
		k := cellKeys[i]
		grid.bucket[next[k]] = int32(i)
		next[k]++
	}
	b.Arena.Release(next)
	b.Arena.Release(cellKeys)
	return grid, nil
}

// recycle returns the grid's index tables to the arena. The grid must not
// be scanned afterwards; pts stays valid (it escapes with the result).
func (gr *grnGrid) recycle(a *graph.CSRArena) {
	a.Release(gr.start)
	a.Release(gr.bucket)
	gr.start, gr.bucket = nil, nil
}

func (gr *grnGrid) cellOf(p Point) (int, int) {
	cx := int(p.X / gr.cellSize)
	cy := int(p.Y / gr.cellSize)
	if cx >= gr.cells {
		cx = gr.cells - 1
	}
	if cy >= gr.cells {
		cy = gr.cells - 1
	}
	return cx, cy
}

// scanNode appends node i's candidate edges (j > i, within radius) to
// out, in the fixed cell/bucket order.
func (gr *grnGrid) scanNode(i int, out []int32) []int32 {
	p := gr.pts[i]
	cx, cy := gr.cellOf(p)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || ny < 0 || nx >= gr.cells || ny >= gr.cells {
				continue
			}
			k := ny*gr.cells + nx
			for _, j := range gr.bucket[gr.start[k]:gr.start[k+1]] {
				if int(j) <= i {
					continue // handle each unordered pair once
				}
				q := gr.pts[j]
				ddx, ddy := p.X-q.X, p.Y-q.Y
				if ddx*ddx+ddy*ddy < gr.r2 {
					out = append(out, j)
				}
			}
		}
	}
	return out
}

// Mesh generates a width×height 2-D regular grid where each node links to
// its four axis-aligned neighbors (no wraparound), the paper's alternative
// DAPA substrate.
func Mesh(width, height int) (*graph.Graph, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("%w: mesh %dx%d", ErrBadN, width, height)
	}
	g := graph.New(width * height)
	id := func(x, y int) int { return y*width + x }
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				mustEdge(g, id(x, y), id(x+1, y))
			}
			if y+1 < height {
				mustEdge(g, id(x, y), id(x, y+1))
			}
		}
	}
	return g, nil
}
