package gen

import (
	"fmt"
	"math"
	"sync"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// DAPAConfig parameterizes Discover-and-Attempt Preferential Attachment
// (paper §IV-B, Appendix D).
type DAPAConfig struct {
	// NOverlay is the target overlay size N_O (paper: 10⁴ on a substrate
	// of N_S = 2·10⁴).
	NOverlay int
	// M is the number of stubs each joining peer tries to fill.
	M int
	// KC is the hard degree cutoff on overlay degree; NoCutoff (0)
	// disables it.
	KC int
	// TauSub is the local time-to-live τ_sub of the substrate discovery
	// flood: the joining node sees overlay peers at substrate distance
	// 1..TauSub. Small values make peers "shortsighted" and the overlay
	// exponential; large values recover a power law (Fig. 4).
	TauSub int
	// Seeds is the number of initial overlay nodes (fully connected to
	// each other); the paper uses 2. Defaults to 2 when zero.
	Seeds int
}

func (c DAPAConfig) validate(substrateN int) error {
	if c.M < 1 {
		return fmt.Errorf("%w: m=%d", ErrBadStubs, c.M)
	}
	if c.KC != NoCutoff && c.KC < c.M {
		return fmt.Errorf("%w: kc=%d < m=%d", ErrBadCutoff, c.KC, c.M)
	}
	if c.TauSub < 1 {
		return fmt.Errorf("gen: tau_sub must be >= 1, got %d", c.TauSub)
	}
	seeds := c.seeds()
	if c.NOverlay < seeds {
		return fmt.Errorf("%w: overlay target %d below seed count %d", ErrBadN, c.NOverlay, seeds)
	}
	if c.NOverlay > substrateN {
		return fmt.Errorf("%w: overlay target %d exceeds substrate size %d", ErrBadN, c.NOverlay, substrateN)
	}
	return nil
}

func (c DAPAConfig) seeds() int {
	if c.Seeds <= 0 {
		return 2
	}
	return c.Seeds
}

// Overlay is the result of DAPA generation: an overlay graph over dense
// overlay IDs plus the mapping back to substrate node IDs.
type Overlay struct {
	// G is the overlay topology; node IDs are 0..G.N()-1 in join order.
	G *graph.Graph
	// SubstrateID maps overlay node ID -> substrate node ID.
	SubstrateID []int
	// OverlayID maps substrate node ID -> overlay node ID, or -1 when the
	// substrate node never joined.
	OverlayID []int
}

// dapaAttemptBudget bounds the per-stub preferential rejection loop before
// an exact weighted draw over the remaining eligible horizon peers.
const dapaAttemptBudget = 10_000

// DAPA grows an overlay network on a substrate by Discover-and-Attempt
// Preferential Attachment (Appendix D):
//
//  1. Seed the overlay with Seeds random substrate nodes, fully connected.
//  2. Repeatedly pick a uniform random substrate node not yet in the
//     overlay; flood the substrate TauSub hops to discover the overlay
//     peers in its horizon (those below the cutoff).
//  3. If at most M peers were found, connect to all of them; otherwise
//     attach M distinct peers preferentially (probability proportional to
//     overlay degree, re-checking the cutoff as degrees grow).
//  4. A node joins the overlay iff it connected to at least one peer;
//     joined peers are never re-selected. Repeat until the overlay has
//     NOverlay peers.
//
// The loop stalls if the substrate has unreachable pockets (e.g. nodes
// outside the giant component can never see a peer). After
// 50·N_S consecutive selections without a successful join, DAPA returns
// the partial overlay wrapped in ErrStalled; Stats.Joined reports how far
// it got. With the paper's parameters (GRN, k̄=10) this does not happen.
//
// DAPA freezes the substrate per call; when the same substrate backs many
// overlays (the sim engine grows one overlay per series × realization on a
// shared substrate), freeze it once and call DAPAFrozen directly.
func DAPA(substrate *graph.Graph, cfg DAPAConfig, rng *xrand.RNG) (*Overlay, Stats, error) {
	return DAPAFrozen(substrate.Freeze(), cfg, rng)
}

// DAPAFrozen is DAPA reading the substrate through its CSR snapshot. The
// discovery floods — one bounded BFS per join attempt, the dominant cost of
// overlay growth — run on an epoch-marked two-queue frontier reused across
// every join, so a whole overlay build allocates a handful of buffers
// instead of one visited map per flood. Horizon order matches the mutable
// substrate walk exactly (Frozen preserves adjacency order), so overlays
// are bit-for-bit identical to DAPA's.
func DAPAFrozen(sub *graph.Frozen, cfg DAPAConfig, rng *xrand.RNG) (*Overlay, Stats, error) {
	return DAPABuild(sub, cfg, Build{RNG: defaultRNG(rng)})
}

// DAPABuild is DAPAFrozen under an explicit build context. A phased build
// splits the randomness into the "dapa.seeds" stream (seed-peer draws),
// the "dapa.select" stream (candidate draws), and the "dapa.attach"
// stream (preferential-attachment draws). The separation is what makes
// the horizon floods batchable: candidate nodes are a pure function of
// the select stream, and the TauSub-hop substrate ball around a candidate
// is a pure function of the immutable substrate, so with Build.Workers > 1
// the engine pre-draws a small batch of candidates and floods their balls
// in parallel while the join loop itself stays sequential. Each ball is
// filtered against the live overlay state only when its candidate is
// consumed, in draw order, so the overlay is bit-for-bit identical for
// every Workers value. A legacy Build (Phases nil) aliases all three
// streams to the one RNG and runs with a lookahead of one, reproducing
// DAPAFrozen's historical draw interleaving byte for byte.
func DAPABuild(sub *graph.Frozen, cfg DAPAConfig, b Build) (*Overlay, Stats, error) {
	var st Stats
	if err := cfg.validate(sub.N()); err != nil {
		return nil, st, err
	}
	b = b.normalize()
	ns := sub.N()

	ov := &Overlay{
		G:         graph.New(0),
		OverlayID: make([]int, ns),
	}
	for i := range ov.OverlayID {
		ov.OverlayID[i] = -1
	}
	join := func(substrateNode int) int {
		id := ov.G.AddNode()
		ov.SubstrateID = append(ov.SubstrateID, substrateNode)
		ov.OverlayID[substrateNode] = id
		st.Joined++
		return id
	}

	// Seed peers: random distinct substrate nodes, fully connected in the
	// overlay (the paper connects its 2 seeds to each other).
	seedRNG := b.phase("dapa.seeds")
	seeds := cfg.seeds()
	for len(ov.SubstrateID) < seeds {
		cand := seedRNG.Intn(ns)
		if ov.OverlayID[cand] < 0 {
			join(cand)
		}
	}
	for u := 0; u < seeds; u++ {
		for v := u + 1; v < seeds; v++ {
			mustEdge(ov.G, u, v)
		}
	}

	selectRNG := b.phase("dapa.select")
	attachRNG := b.phase("dapa.attach")

	// Candidate lookahead. Legacy builds share one RNG across the three
	// phases, so any lookahead beyond one would reorder its draws; phased
	// builds give the select stream its own derivation, so the batch size
	// affects wall-clock only, never output.
	workers := b.workers()
	look := 1
	if b.phased() && workers > 1 {
		look = 2 * workers
	}
	// Per-worker discovery-flood scratches: an epoch-stamped visited array
	// plus the two-queue frontier each, reused across every join attempt
	// (bumping the epoch clears the visited set in O(1)). This mirrors
	// search.Scratch.FloodVisit, which gen cannot import: the search
	// package's in-package tests import gen, so gen → search would be an
	// import cycle in the test binary.
	scratches := make([]*dapaFlood, workers)
	scratch := func(i int) *dapaFlood {
		if scratches[i] == nil {
			scratches[i] = newDAPAFlood(ns)
		}
		return scratches[i]
	}

	stallLimit := 50 * ns
	consecutiveFailures := 0
	horizon := make([]int, 0, 256)
	candNodes := make([]int32, look)
	candBalls := make([][]int32, look)
	hasBall := make([]bool, look)
	candPos, candLen := 0, 0
	for st.Joined < cfg.NOverlay {
		if consecutiveFailures >= stallLimit {
			return ov, st, fmt.Errorf("%w: overlay stuck at %d/%d peers", ErrStalled, st.Joined, cfg.NOverlay)
		}
		if candPos == candLen {
			// Refill: draw the next batch of candidates from the select
			// stream and flood the substrate ball of every candidate not
			// already in the overlay. Membership can only grow, so a
			// candidate skipped here is guaranteed to fail the membership
			// check at consumption and its ball is never needed.
			candLen = look
			for i := 0; i < candLen; i++ {
				candNodes[i] = int32(selectRNG.Intn(ns))
			}
			if candLen == 1 {
				hasBall[0] = false
				if ov.OverlayID[candNodes[0]] < 0 {
					candBalls[0] = scratch(0).ball(sub, int(candNodes[0]), cfg.TauSub, candBalls[0][:0])
					hasBall[0] = true
				}
			} else {
				var wg sync.WaitGroup
				wg.Add(workers)
				for gid := 0; gid < workers; gid++ {
					go func(gid int) {
						defer wg.Done()
						fs := scratch(gid)
						for i := gid; i < candLen; i += workers {
							hasBall[i] = false
							if ov.OverlayID[candNodes[i]] < 0 {
								candBalls[i] = fs.ball(sub, int(candNodes[i]), cfg.TauSub, candBalls[i][:0])
								hasBall[i] = true
							}
						}
					}(gid)
				}
				wg.Wait()
			}
			candPos = 0
		}
		i := candPos
		candPos++
		node := int(candNodes[i])
		if ov.OverlayID[node] >= 0 {
			consecutiveFailures++
			continue
		}

		// Discovery horizon: overlay peers within TauSub substrate hops,
		// below the cutoff (Appendix D lines 4-10), in breadth-first
		// discovery order. The ball was computed at refill; the overlay
		// filter runs now, against the live membership and degrees.
		st.HorizonQueries++
		if !hasBall[i] { // unreachable (membership never reverts); kept as a safety net
			candBalls[i] = scratch(0).ball(sub, node, cfg.TauSub, candBalls[i][:0])
		}
		horizon = horizon[:0]
		for _, v := range candBalls[i] {
			oid := ov.OverlayID[v]
			if oid >= 0 && cutoffOK(ov.G, oid, cfg.KC) {
				horizon = append(horizon, oid)
			}
		}
		if len(horizon) == 0 {
			st.EmptyHorizons++
			consecutiveFailures++
			continue
		}

		id := join(node)
		consecutiveFailures = 0
		if len(horizon) <= cfg.M {
			// Appendix D lines 11-15: connect to every horizon peer.
			for _, peer := range horizon {
				mustEdge(ov.G, id, peer)
			}
			continue
		}
		dapaPreferential(ov.G, id, horizon, cfg, attachRNG, &st)
	}
	return ov, st, nil
}

// dapaFlood is one worker's discovery-flood scratch: the epoch-marked
// visited array and the two-queue frontier.
type dapaFlood struct {
	mark        []int32
	epoch       int32
	curq, nextq []int32
}

func newDAPAFlood(ns int) *dapaFlood {
	return &dapaFlood{
		mark:  make([]int32, ns),
		curq:  make([]int32, 0, 256),
		nextq: make([]int32, 0, 256),
	}
}

// ball appends the substrate nodes within tau hops of node (excluding node
// itself) to out, in breadth-first discovery order — the order the horizon
// filter must observe. It depends only on the immutable substrate, so
// balls for different candidates can be computed concurrently on separate
// scratches.
func (s *dapaFlood) ball(sub *graph.Frozen, node, tau int, out []int32) []int32 {
	if s.epoch == math.MaxInt32 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	ep := s.epoch
	s.mark[node] = ep
	curq := append(s.curq[:0], int32(node))
	nextq := s.nextq[:0]
	for depth := 0; depth < tau && len(curq) > 0; depth++ {
		for _, u := range curq {
			for _, v := range sub.Neighbors(int(u)) {
				if s.mark[v] == ep {
					continue
				}
				s.mark[v] = ep
				nextq = append(nextq, v)
				out = append(out, v)
			}
		}
		curq, nextq = nextq, curq[:0]
	}
	s.curq, s.nextq = curq, nextq
	return out
}

// dapaPreferential fills M stubs of overlay node id from the horizon list
// by preferential attachment with rejection (Appendix D lines 17-29),
// normalizing acceptance by the horizon's total degree: the repeat-until
// structure makes the accepted peer distribution proportional to degree
// among eligible peers regardless of the normalizer, so the horizon total
// is used for speed (the prose of §IV-B describes exactly this
// normalization).
func dapaPreferential(g *graph.Graph, id int, horizon []int, cfg DAPAConfig, rng *xrand.RNG, st *Stats) {
	kTotal := 0
	for _, p := range horizon {
		kTotal += g.Degree(p)
	}
	for j := 0; j < cfg.M; j++ {
		placed := false
		for attempt := 0; attempt < dapaAttemptBudget; attempt++ {
			st.Attempts++
			peer := horizon[rng.Intn(len(horizon))]
			if g.HasEdge(id, peer) || !cutoffOK(g, peer, cfg.KC) {
				continue
			}
			if kTotal > 0 && rng.Float64() >= float64(g.Degree(peer))/float64(kTotal) {
				continue
			}
			mustEdge(g, id, peer)
			kTotal++
			placed = true
			break
		}
		if placed {
			continue
		}
		// Exact weighted draw over whatever remains eligible.
		var cands []int
		var weights []float64
		for _, p := range horizon {
			if !g.HasEdge(id, p) && cutoffOK(g, p, cfg.KC) {
				cands = append(cands, p)
				weights = append(weights, float64(g.Degree(p)))
			}
		}
		idx := rng.Choose(weights)
		if idx < 0 {
			st.UnfilledStubs += cfg.M - j
			return
		}
		st.Fallbacks++
		mustEdge(g, id, cands[idx])
		kTotal++
	}
}
