package gen

import (
	"testing"

	"scalefree/internal/xrand"
)

func TestNLPAValidation(t *testing.T) {
	t.Parallel()
	cases := []NLPAConfig{
		{N: 100, M: 0, Alpha: 1},
		{N: 100, M: 2, Alpha: -0.5},
		{N: 2, M: 2, Alpha: 1},
	}
	for _, cfg := range cases {
		if _, _, err := NLPA(cfg, xrand.New(1)); err == nil {
			t.Errorf("NLPA(%+v) should fail validation", cfg)
		}
	}
}

func TestNLPABasicStructure(t *testing.T) {
	t.Parallel()
	const n, m = 2000, 2
	g, st, err := NLPA(NLPAConfig{N: n, M: m, Alpha: 0.5}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	wantM := m*(m+1)/2 + (n-m-1)*m - st.UnfilledStubs
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Fatal("NLPA graph must be connected")
	}
}

func TestNLPAAlphaOneMatchesLinearPA(t *testing.T) {
	t.Parallel()
	// Alpha = 1 must behave like linear PA statistically: compare hub
	// scale over a few seeds.
	var nlpaMax, paMax int
	for seed := uint64(0); seed < 4; seed++ {
		gn, _, err := NLPA(NLPAConfig{N: 3000, M: 1, Alpha: 1}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		gp, _, err := PA(PAConfig{N: 3000, M: 1}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		nlpaMax += gn.MaxDegree()
		paMax += gp.MaxDegree()
	}
	ratio := float64(nlpaMax) / float64(paMax)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("alpha=1 hub scale ratio %.2f vs linear PA", ratio)
	}
}

func TestNLPASublinearSuppressesHubs(t *testing.T) {
	t.Parallel()
	// Sublinear kernels (alpha < 1) yield stretched-exponential degree
	// distributions: the largest hub is far smaller than under linear PA.
	var sub, lin int
	for seed := uint64(0); seed < 4; seed++ {
		gs, _, err := NLPA(NLPAConfig{N: 4000, M: 1, Alpha: 0.3}, xrand.New(10+seed))
		if err != nil {
			t.Fatal(err)
		}
		gl, _, err := PA(PAConfig{N: 4000, M: 1}, xrand.New(10+seed))
		if err != nil {
			t.Fatal(err)
		}
		sub += gs.MaxDegree()
		lin += gl.MaxDegree()
	}
	if sub*2 >= lin {
		t.Fatalf("sublinear hubs (%d) should be well under half of linear (%d)", sub, lin)
	}
}

func TestNLPASuperlinearCondenses(t *testing.T) {
	t.Parallel()
	// Superlinear kernels condense: one node grabs a finite fraction of
	// all links.
	g, _, err := NLPA(NLPAConfig{N: 3000, M: 1, Alpha: 1.8}, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() < g.N()/10 {
		t.Fatalf("superlinear max degree %d; expected condensation toward O(N)", g.MaxDegree())
	}
}

func TestNLPARespectsCutoff(t *testing.T) {
	t.Parallel()
	for _, alpha := range []float64{0.5, 1, 1.5} {
		g, _, err := NLPA(NLPAConfig{N: 2000, M: 2, KC: 20, Alpha: alpha}, xrand.New(31))
		if err != nil {
			t.Fatal(err)
		}
		if g.MaxDegree() > 20 {
			t.Fatalf("alpha=%.1f: cutoff violated (%d)", alpha, g.MaxDegree())
		}
	}
}

func TestNLPADeterminism(t *testing.T) {
	t.Parallel()
	cfg := NLPAConfig{N: 800, M: 2, KC: 30, Alpha: 0.7}
	a, _, err := NLPA(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := NLPA(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < a.N(); u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("degree(%d) differs", u)
		}
	}
}

func TestFitnessValidation(t *testing.T) {
	t.Parallel()
	if _, _, _, err := Fitness(FitnessConfig{N: 100, M: 0}, xrand.New(1)); err == nil {
		t.Error("m=0 should fail")
	}
	bad := FitnessConfig{N: 100, M: 1, Fitness: func(*xrand.RNG) float64 { return 2 }}
	if _, _, _, err := Fitness(bad, xrand.New(1)); err == nil {
		t.Error("fitness > 1 should fail")
	}
}

func TestFitnessBasicStructure(t *testing.T) {
	t.Parallel()
	const n, m = 2000, 2
	g, eta, st, err := Fitness(FitnessConfig{N: n, M: m}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(eta) != n {
		t.Fatalf("fitness values %d", len(eta))
	}
	wantM := m*(m+1)/2 + (n-m-1)*m - st.UnfilledStubs
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Fatal("fitness graph must be connected")
	}
}

func TestFitnessFavorsFitNodes(t *testing.T) {
	t.Parallel()
	// Among early nodes (same age), the fitter ones must end with higher
	// degree on average: correlate fitness with degree over the top
	// decile vs bottom decile of fitness.
	g, eta, _, err := Fitness(FitnessConfig{N: 6000, M: 2}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var hiDeg, loDeg, hiN, loN float64
	for u := 0; u < g.N(); u++ {
		switch {
		case eta[u] > 0.9:
			hiDeg += float64(g.Degree(u))
			hiN++
		case eta[u] < 0.1:
			loDeg += float64(g.Degree(u))
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Fatal("fitness deciles empty")
	}
	if hiDeg/hiN <= loDeg/loN {
		t.Fatalf("fit nodes (mean deg %.2f) should out-attract unfit (%.2f)", hiDeg/hiN, loDeg/loN)
	}
}

func TestFitnessYoungFitOvertakesOldUnfit(t *testing.T) {
	t.Parallel()
	// The fitness model's signature behavior [54]: give one late joiner
	// maximal fitness and everyone else minimal; the late joiner should
	// out-degree typical early nodes.
	const n, star = 3000, 1500
	cfg := FitnessConfig{
		N: n, M: 1,
		Fitness: func(rng *xrand.RNG) float64 { return 0.05 },
	}
	// Wrap the fitness function to special-case the star node by draw
	// order (fitness is drawn per node ID in order).
	calls := 0
	cfg.Fitness = func(rng *xrand.RNG) float64 {
		calls++
		if calls-1 == star {
			return 1.0
		}
		return 0.05
	}
	g, eta, _, err := Fitness(cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if eta[star] != 1.0 {
		t.Fatalf("star fitness %v", eta[star])
	}
	// Mean degree of early unfit nodes (IDs 2..100).
	var sum float64
	for u := 2; u <= 100; u++ {
		sum += float64(g.Degree(u))
	}
	early := sum / 99
	if float64(g.Degree(star)) < 2*early {
		t.Fatalf("fit latecomer degree %d should dwarf early mean %.1f", g.Degree(star), early)
	}
}

func TestFitnessRespectsCutoff(t *testing.T) {
	t.Parallel()
	g, _, _, err := Fitness(FitnessConfig{N: 2000, M: 2, KC: 15}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 15 {
		t.Fatalf("cutoff violated: %d", g.MaxDegree())
	}
}
