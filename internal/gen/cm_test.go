package gen

import (
	"math"
	"testing"

	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

func TestCMValidation(t *testing.T) {
	t.Parallel()
	cases := []CMConfig{
		{N: 100, M: 0, Gamma: 2.5},
		{N: 1, M: 1, Gamma: 2.5},
		{N: 100, M: 1, Gamma: 1.0},
		{N: 100, M: 3, KC: 2, Gamma: 2.5},
	}
	for _, cfg := range cases {
		if _, _, err := CM(cfg, xrand.New(1)); err == nil {
			t.Errorf("CM(%+v) should have failed validation", cfg)
		}
	}
}

func TestCMSimpleGraphAfterCleanup(t *testing.T) {
	t.Parallel()
	g, st, err := CM(CMConfig{N: 5000, M: 2, KC: 100, Gamma: 2.5}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if g.EdgeMultiplicity(u, u) != 0 {
			t.Fatalf("self-loop survived at %d", u)
		}
	}
	if st.SelfLoopsRemoved == 0 && st.MultiEdgesRemoved == 0 {
		t.Log("no loops/multi-edges occurred (possible but unusual at this size)")
	}
	if g.TotalDegree() != 2*g.M() {
		t.Fatal("degree sum inconsistent with edge count")
	}
}

func TestCMDegreesRespectCutoff(t *testing.T) {
	t.Parallel()
	const kc = 40
	g, _, err := CM(CMConfig{N: 10000, M: 1, KC: kc, Gamma: 2.2}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > kc {
		t.Fatalf("max degree %d > kc=%d", g.MaxDegree(), kc)
	}
}

func TestCMExponentRecovered(t *testing.T) {
	t.Parallel()
	// Fig 2: CM "does not allow changes in the degree distribution
	// exponent" — the generated network must match the prescribed gamma.
	for _, gamma := range []float64{2.2, 3.0} {
		var degrees []int
		for seed := uint64(0); seed < 3; seed++ {
			g, _, err := CM(CMConfig{N: 20000, M: 1, Gamma: gamma}, xrand.New(10+seed))
			if err != nil {
				t.Fatal(err)
			}
			degrees = append(degrees, g.DegreeSequence()...)
		}
		fit, err := stats.FitPowerLawMLE(degrees, 6)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Gamma-gamma) > 0.35 {
			t.Errorf("gamma %.1f: generated exponent %.3f", gamma, fit.Gamma)
		}
	}
}

func TestCMSomeDegreesBelowMAfterCleanup(t *testing.T) {
	t.Parallel()
	// Paper §III-C: deleting loops/multi-edges "causes some very
	// negligible number of nodes in the network to have degrees less than
	// the fixed minimum degree (m) value". With m=2 and no cutoff the
	// hubs are huge, multi-edges frequent, so at least occasionally nodes
	// drop below m — and the fraction must stay tiny.
	below := 0
	total := 0
	for seed := uint64(0); seed < 5; seed++ {
		g, _, err := CM(CMConfig{N: 5000, M: 2, Gamma: 2.2}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range g.DegreeSequence() {
			if k < 2 {
				below++
			}
			total++
		}
	}
	if below == 0 {
		t.Log("no node dropped below m (acceptable, depends on draw)")
	}
	if frac := float64(below) / float64(total); frac > 0.05 {
		t.Fatalf("%.2f%% of nodes below m — should be negligible", 100*frac)
	}
}

func TestCMDisconnectedForM1ConnectedForM2(t *testing.T) {
	t.Parallel()
	// Paper §III-C: "the network is not a connected network when m=1 ...
	// For m>1, the network is almost surely connected".
	g1, _, err := CM(CMConfig{N: 5000, M: 1, Gamma: 2.6}, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if g1.IsConnected() {
		t.Fatal("CM with m=1 should have disconnected components")
	}
	g2, _, err := CM(CMConfig{N: 5000, M: 2, KC: 70, Gamma: 2.6}, xrand.New(22))
	if err != nil {
		t.Fatal(err)
	}
	giant := len(g2.GiantComponent())
	if frac := float64(giant) / float64(g2.N()); frac < 0.98 {
		t.Fatalf("CM m=2 giant component only %.1f%% of nodes", 100*frac)
	}
}

func TestCMDeterminism(t *testing.T) {
	t.Parallel()
	cfg := CMConfig{N: 1000, M: 1, KC: 50, Gamma: 2.5}
	a, _, err := CM(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CM(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < a.N(); u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("degree(%d) differs", u)
		}
	}
}

func TestCMFewerLoopsWithSmallerCutoff(t *testing.T) {
	t.Parallel()
	// Paper §IV-C: "applying harder (smaller) cutoffs to the degrees
	// decreases the probability to have self loops and multiple
	// connections."
	removed := func(kc int) int {
		total := 0
		for seed := uint64(0); seed < 5; seed++ {
			_, st, err := CM(CMConfig{N: 5000, M: 1, KC: kc, Gamma: 2.2}, xrand.New(30+seed))
			if err != nil {
				t.Fatal(err)
			}
			total += st.SelfLoopsRemoved + st.MultiEdgesRemoved
		}
		return total
	}
	small, large := removed(10), removed(NoCutoff)
	if small >= large {
		t.Fatalf("cleanup counts: kc=10 removed %d, no cutoff removed %d — smaller cutoff should remove fewer", small, large)
	}
}

func TestPowerLawDegreeSequence(t *testing.T) {
	t.Parallel()
	rng := xrand.New(9)
	for trial := 0; trial < 50; trial++ {
		n := rng.IntRange(2, 500)
		seq := PowerLawDegreeSequence(n, 1, 40, 2.5, rng)
		if len(seq) != n {
			t.Fatalf("length %d, want %d", len(seq), n)
		}
		if sum(seq)%2 != 0 {
			t.Fatalf("odd stub total %d", sum(seq))
		}
		for _, k := range seq {
			if k < 0 || k > 41 {
				t.Fatalf("degree %d wildly out of bounds", k)
			}
		}
	}
}

func TestPowerLawDegreeSequenceDegenerate(t *testing.T) {
	t.Parallel()
	// kMin == kMax with odd total: parity repair must still terminate.
	seq := PowerLawDegreeSequence(3, 1, 1, 2.5, xrand.New(1))
	if sum(seq)%2 != 0 {
		t.Fatalf("odd total %v", seq)
	}
}

// TestPowerLawDegreeSequenceTableIdentity pins the acceptance contract of
// the table-driven sampler at paper scale in the kMax≈N cutoff regime:
// degree sequences (including the parity repair) are byte-identical to the
// historical per-draw rng.PowerLawInt loop.
func TestPowerLawDegreeSequenceTableIdentity(t *testing.T) {
	t.Parallel()
	cases := []struct {
		n, kMin, kMax int
		gamma         float64
	}{
		{200000, 2, 200000, 2.2}, // paper-scale CM with natural cutoff
		{50000, 2, 10, 2.2},      // hard cutoff
		{30000, 1, 30000, 3.5},
		{100, 2, 100000, 2.5}, // range >> n: sampler path, no table build
	}
	for _, c := range cases {
		rngRef := xrand.New(42)
		want := make([]int, c.n)
		total := 0
		for i := range want {
			want[i] = rngRef.PowerLawInt(c.kMin, c.kMax, c.gamma)
			total += want[i]
		}
		if total%2 == 1 {
			i := rngRef.Intn(c.n)
			if want[i] < c.kMax {
				want[i]++
			} else {
				want[i]--
			}
		}
		got := PowerLawDegreeSequence(c.n, c.kMin, c.kMax, c.gamma, xrand.New(42))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("(n=%d,%d,%d,%g): degree %d differs: got %d want %d",
					c.n, c.kMin, c.kMax, c.gamma, i, got[i], want[i])
			}
		}
	}
}

// TestPowerLawChunkedTableIdentity does the same for the phased chunked
// path: the shared table must reproduce the per-chunk sub-stream draws of
// the historical kernel exactly.
func TestPowerLawChunkedTableIdentity(t *testing.T) {
	t.Parallel()
	const n, kMin, kMax = 60000, 2, 60000
	const gamma = 2.2
	ph := xrand.Phases{Seed: 7, Realization: 3}
	b := Build{Phases: &ph, Workers: 3}.normalize()
	got := powerLawDegreeSequenceChunked(n, kMin, kMax, gamma, b)

	want := make([]int, n)
	subtotals := make([]int, chunks(n))
	b.forChunks(n, func(chunk, lo, hi int) {
		rng := b.Phases.Chunk("cm.degrees", chunk)
		t := 0
		for i := lo; i < hi; i++ {
			want[i] = rng.PowerLawInt(kMin, kMax, gamma)
			t += want[i]
		}
		subtotals[chunk] = t
	})
	total := 0
	for _, s := range subtotals {
		total += s
	}
	if total%2 == 1 {
		i := b.phase("cm.parity").Intn(n)
		if want[i] < kMax {
			want[i]++
		} else {
			want[i]--
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunked degree %d differs: got %d want %d", i, got[i], want[i])
		}
	}
}
