package gen

import (
	"math"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

func genPA(t *testing.T, cfg PAConfig, seed uint64) (*graph.Graph, Stats) {
	t.Helper()
	g, st, err := PA(cfg, xrand.New(seed))
	if err != nil {
		t.Fatalf("PA(%+v): %v", cfg, err)
	}
	return g, st
}

func TestPAValidation(t *testing.T) {
	t.Parallel()
	cases := []PAConfig{
		{N: 10, M: 0},
		{N: 2, M: 2},          // N < m+2
		{N: 100, M: 3, KC: 2}, // kc < m
		{N: 0, M: 1},
	}
	for _, cfg := range cases {
		if _, _, err := PA(cfg, xrand.New(1)); err == nil {
			t.Errorf("PA(%+v) should have failed validation", cfg)
		}
	}
}

func TestPABasicStructure(t *testing.T) {
	t.Parallel()
	const n, m = 2000, 2
	g, st := genPA(t, PAConfig{N: n, M: m}, 1)
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	// Seed clique has m(m+1)/2 edges; every other node adds m.
	wantM := m*(m+1)/2 + (n-m-1)*m
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d (unfilled=%d)", g.M(), wantM, st.UnfilledStubs)
	}
	if g.MinDegree() < m {
		t.Fatalf("min degree %d < m=%d", g.MinDegree(), m)
	}
	if !g.IsConnected() {
		t.Fatal("PA graph must be connected")
	}
	// Simple graph: no self-loops or duplicate links.
	for u := 0; u < n; u++ {
		if g.EdgeMultiplicity(u, u) != 0 {
			t.Fatalf("self-loop at %d", u)
		}
	}
}

func TestPADeterminism(t *testing.T) {
	t.Parallel()
	cfg := PAConfig{N: 500, M: 2, KC: 20}
	a, _ := genPA(t, cfg, 7)
	b, _ := genPA(t, cfg, 7)
	for u := 0; u < a.N(); u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("node %d degree differs: %d vs %d", u, a.Degree(u), b.Degree(u))
		}
		for v := u; v < a.N(); v++ {
			if a.EdgeMultiplicity(u, v) != b.EdgeMultiplicity(u, v) {
				t.Fatalf("edge (%d,%d) differs", u, v)
			}
		}
	}
}

func TestPASeedsDiffer(t *testing.T) {
	t.Parallel()
	cfg := PAConfig{N: 300, M: 2}
	a, _ := genPA(t, cfg, 1)
	b, _ := genPA(t, cfg, 2)
	same := true
	for u := 0; u < a.N() && same; u++ {
		for v := u + 1; v < a.N(); v++ {
			if a.HasEdge(u, v) != b.HasEdge(u, v) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPAHardCutoffEnforced(t *testing.T) {
	t.Parallel()
	for _, kc := range []int{5, 10, 40} {
		g, _ := genPA(t, PAConfig{N: 3000, M: 2, KC: kc}, 3)
		if g.MaxDegree() > kc {
			t.Errorf("kc=%d: max degree %d exceeds cutoff", kc, g.MaxDegree())
		}
	}
}

func TestPANoCutoffGrowsHubs(t *testing.T) {
	t.Parallel()
	// Natural cutoff for PA is ~ m·sqrt(N) (paper Eq. 5); at N=5000, m=1
	// the max degree should comfortably exceed any practical hard cutoff.
	g, _ := genPA(t, PAConfig{N: 5000, M: 1}, 5)
	if g.MaxDegree() < 30 {
		t.Fatalf("max degree %d suspiciously small for PA without cutoff", g.MaxDegree())
	}
}

func TestPACutoffAccumulation(t *testing.T) {
	t.Parallel()
	// Fig 1(b): with a hard cutoff there is "an accumulation of nodes with
	// degree equal to hard cutoff" — the histogram at kc must far exceed
	// the power-law continuation from kc-1.
	const kc = 10
	g, _ := genPA(t, PAConfig{N: 20000, M: 2, KC: kc}, 11)
	h := g.DegreeHistogram()
	if len(h) <= kc {
		t.Fatalf("no nodes at cutoff: hist len %d", len(h))
	}
	if h[kc] <= h[kc-1] {
		t.Fatalf("no spike at cutoff: h[%d]=%d h[%d]=%d", kc, h[kc], kc-1, h[kc-1])
	}
}

func TestPADegreeExponentNoCutoff(t *testing.T) {
	t.Parallel()
	// Fig 1(a): fits between -2.9 and -2.8 at N=1e5; at N=2e4 with merged
	// realizations we accept a broader 2.4..3.3 window for the MLE fit.
	var degrees []int
	for seed := uint64(0); seed < 3; seed++ {
		g, _ := genPA(t, PAConfig{N: 20000, M: 2}, 100+seed)
		degrees = append(degrees, g.DegreeSequence()...)
	}
	fit, err := stats.FitPowerLawMLE(degrees, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Gamma < 2.4 || fit.Gamma > 3.3 {
		t.Fatalf("PA exponent %.3f outside [2.4, 3.3]", fit.Gamma)
	}
}

func TestPAExponentDecreasesWithCutoff(t *testing.T) {
	t.Parallel()
	// Fig 1(c): the fitted exponent decreases as the hard cutoff
	// decreases. The paper measures the exponent "when the jump on the
	// hard cutoffs is taken into account", i.e. the fit INCLUDES the
	// accumulation spike at kc, which is what flattens the slope.
	gammaAt := func(kc int) float64 {
		var dists []stats.DegreeDist
		for seed := uint64(0); seed < 3; seed++ {
			g, _ := genPA(t, PAConfig{N: 20000, M: 1, KC: kc}, 200+seed)
			dists = append(dists, stats.NewDegreeDist(g.DegreeHistogram()))
		}
		merged := stats.MergeDegreeDists(dists)
		fit, err := stats.FitPowerLawBinned(merged, 1.7, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		return fit.Gamma
	}
	gNone := gammaAt(NoCutoff)
	gTen := gammaAt(10)
	if gTen >= gNone {
		t.Fatalf("exponent should drop with cutoff: kc=10 gives %.3f, none gives %.3f", gTen, gNone)
	}
}

func TestPALiteralSamplingMatchesStubList(t *testing.T) {
	t.Parallel()
	// Ablation check: the literal Appendix A loop and the stub-list
	// sampler should produce statistically indistinguishable degree
	// distributions (same mean by construction; compare max-degree scale
	// and exponent roughly).
	const n, m = 1200, 2
	gLit, _ := genPA(t, PAConfig{N: n, M: m, LiteralSampling: true}, 31)
	gStub, _ := genPA(t, PAConfig{N: n, M: m}, 31)
	if gLit.M() != gStub.M() {
		t.Fatalf("edge counts differ: literal %d stub %d", gLit.M(), gStub.M())
	}
	rLit := float64(gLit.MaxDegree())
	rStub := float64(gStub.MaxDegree())
	if rLit/rStub > 3 || rStub/rLit > 3 {
		t.Fatalf("max degrees differ wildly: literal %v stub %v", rLit, rStub)
	}
}

func TestPAKCEqualsMTight(t *testing.T) {
	t.Parallel()
	// kc == m is the tightest legal cutoff; the seed clique is already
	// saturated, so the generator must rely on fallbacks/unfilled stubs
	// without hanging.
	g, st, err := PA(PAConfig{N: 50, M: 2, KC: 2}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 2 {
		t.Fatalf("max degree %d > kc=2", g.MaxDegree())
	}
	if st.UnfilledStubs == 0 {
		t.Fatal("expected unfilled stubs under saturating cutoff")
	}
}

func TestPAMeanDegree(t *testing.T) {
	t.Parallel()
	// Average degree of PA is 2m (paper §III).
	for _, m := range []int{1, 2, 3} {
		g, _ := genPA(t, PAConfig{N: 5000, M: m}, uint64(40+m))
		mean := float64(g.TotalDegree()) / float64(g.N())
		if math.Abs(mean-2*float64(m)) > 0.1 {
			t.Errorf("m=%d: mean degree %.3f, want ~%d", m, mean, 2*m)
		}
	}
}

func TestPATreeWhenM1(t *testing.T) {
	t.Parallel()
	// m=1 yields a scale-free tree: N-1 edges, connected, no loops
	// (paper §III: "a scale-free tree without clustering").
	g, _ := genPA(t, PAConfig{N: 2000, M: 1}, 17)
	if g.M() != g.N()-1 {
		t.Fatalf("tree edge count %d, want %d", g.M(), g.N()-1)
	}
	if !g.IsConnected() {
		t.Fatal("PA tree must be connected")
	}
}
