package gen

import (
	"testing"

	"scalefree/internal/graph"
)

// Build-path benchmarks: the legacy mutable-Graph path (per-node slice
// appends + multiplicity map, then Freeze) versus the direct-CSR path
// (chunked edge buffers + parallel count/scatter), at the scales the
// experiment engine builds per realization. The *Graph variants include
// the freeze the sim pipeline performs, so the pair compares the full
// build-stage cost of producing one sweep-ready snapshot. The *Arena
// variants reuse one CSRArena across iterations, which is exactly how a
// pipeline build worker runs back-to-back realizations.

// Paper scale for degree figures (Scale.NDegree) and substrates
// (Scale.NSubstrate).
const (
	benchCMNodes  = 100_000
	benchGRNNodes = 20_000
)

// reportSnapshotBytes emits the size of the immortal result (the CSR
// arrays, plus any coordinate payload) as a custom metric. Every build
// path must allocate at least this much per iteration — it escapes with
// the snapshot — so B/op minus snapshotB/op is the transient allocation
// traffic the direct-CSR path (and its arena) actually eliminates.
func reportSnapshotBytes(b *testing.B, f *graph.Frozen, sortedMaterialized bool, extra int) {
	per := 1
	if sortedMaterialized {
		per = 2 // insertion-order + sorted copies of the adjacency
	}
	bytes := 4*(f.N()+1) + 4*per*f.TotalDegree() + extra
	b.ReportMetric(float64(bytes), "snapshotB/op")
}

func benchCMConfig() CMConfig { return CMConfig{N: benchCMNodes, M: 2, Gamma: 2.2} }

func BenchmarkCMBuildGraph(b *testing.B) {
	cfg := benchCMConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, _, err := CMBuild(cfg, NewBuild(phasesFor(1, uint64(i)), 1))
		if err != nil {
			b.Fatal(err)
		}
		sinkFrozen = g.FreezeSorted(1)
	}
	reportSnapshotBytes(b, sinkFrozen, true, 0)
}

func BenchmarkCMBuildCSR(b *testing.B) {
	cfg := benchCMConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, _, err := CMFrozen(cfg, NewBuild(phasesFor(1, uint64(i)), 1))
		if err != nil {
			b.Fatal(err)
		}
		sinkFrozen = f
	}
	reportSnapshotBytes(b, sinkFrozen, true, 0)
}

func BenchmarkCMBuildCSRArena(b *testing.B) {
	cfg := benchCMConfig()
	arena := graph.NewCSRArena()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuild(phasesFor(1, uint64(i)), 1)
		bld.Arena = arena
		f, _, err := CMFrozen(cfg, bld)
		if err != nil {
			b.Fatal(err)
		}
		sinkFrozen = f
	}
	reportSnapshotBytes(b, sinkFrozen, true, 0)
}

func BenchmarkGRNBuildGraph(b *testing.B) {
	cfg := GRNConfig{N: benchGRNNodes, MeanDegree: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, _, err := GRNBuild(cfg, NewBuild(phasesFor(2, uint64(i)), 1))
		if err != nil {
			b.Fatal(err)
		}
		sinkFrozen = g.Freeze()
	}
	reportSnapshotBytes(b, sinkFrozen, false, 16*benchGRNNodes)
}

func BenchmarkGRNBuildCSR(b *testing.B) {
	cfg := GRNConfig{N: benchGRNNodes, MeanDegree: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, _, err := GRNFrozen(cfg, NewBuild(phasesFor(2, uint64(i)), 1))
		if err != nil {
			b.Fatal(err)
		}
		sinkFrozen = f
	}
	reportSnapshotBytes(b, sinkFrozen, false, 16*benchGRNNodes)
}

func BenchmarkGRNBuildCSRArena(b *testing.B) {
	cfg := GRNConfig{N: benchGRNNodes, MeanDegree: 10}
	arena := graph.NewCSRArena()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuild(phasesFor(2, uint64(i)), 1)
		bld.Arena = arena
		f, _, err := GRNFrozen(cfg, bld)
		if err != nil {
			b.Fatal(err)
		}
		sinkFrozen = f
	}
	reportSnapshotBytes(b, sinkFrozen, false, 16*benchGRNNodes)
}

// sinkFrozen keeps the built snapshots observable so the compiler cannot
// elide a build.
var sinkFrozen *graph.Frozen
