package gen

import (
	"reflect"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// frozenFingerprint captures a snapshot's full state — insertion-order
// adjacency AND sorted membership ranges per node — so the direct-CSR and
// Graph+Freeze paths can be compared byte for byte through the public API.
func frozenFingerprint(f *graph.Frozen) [][2][]int32 {
	out := make([][2][]int32, f.N())
	for u := 0; u < f.N(); u++ {
		out[u] = [2][]int32{
			append([]int32(nil), f.Neighbors(u)...),
			append([]int32(nil), f.SortedNeighbors(u)...),
		}
	}
	return out
}

// TestCMFrozenMatchesLegacyFreeze pins the CM direct-CSR contract:
// CMFrozen is byte-identical to CMBuild+FreezeSorted — post-cleanup
// neighbor order, sorted ranges, edge count, Stats — for legacy
// single-stream builds and for phased builds at every worker count, with
// and without an arena.
func TestCMFrozenMatchesLegacyFreeze(t *testing.T) {
	t.Parallel()
	cfg := CMConfig{N: 7000, M: 2, KC: 80, Gamma: 2.2}
	arena := graph.NewCSRArena()
	builds := []struct {
		label string
		mk    func() Build
	}{
		{"legacy", func() Build { return Build{RNG: xrand.New(21)} }},
		{"phased-w1", func() Build { return NewBuild(phasesFor(21, 5), 1) }},
		{"phased-w4", func() Build { return NewBuild(phasesFor(21, 5), 4) }},
		{"phased-w7", func() Build { return NewBuild(phasesFor(21, 5), 7) }},
	}
	for _, tc := range builds {
		g, wantSt, err := CMBuild(cfg, tc.mk())
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		want := frozenFingerprint(g.FreezeSorted(1))
		wantM := g.M()
		for _, withArena := range []bool{false, true} {
			b := tc.mk()
			if withArena {
				b.Arena = arena
			}
			f, st, err := CMFrozen(cfg, b)
			if err != nil {
				t.Fatalf("%s arena=%v: %v", tc.label, withArena, err)
			}
			if st != wantSt {
				t.Fatalf("%s arena=%v: stats %+v, want %+v", tc.label, withArena, st, wantSt)
			}
			if f.M() != wantM {
				t.Fatalf("%s arena=%v: M=%d, want %d", tc.label, withArena, f.M(), wantM)
			}
			if !reflect.DeepEqual(want, frozenFingerprint(f)) {
				t.Fatalf("%s arena=%v: CMFrozen diverged from CMBuild+FreezeSorted", tc.label, withArena)
			}
		}
	}
}

// TestGRNFrozenMatchesLegacyFreeze pins the GRN direct-CSR contract:
// GRNFrozen is byte-identical to GRNBuild+Freeze (points included) for
// legacy and phased builds at every worker count.
func TestGRNFrozenMatchesLegacyFreeze(t *testing.T) {
	t.Parallel()
	cfg := GRNConfig{N: 9000, MeanDegree: 10}
	arena := graph.NewCSRArena()
	builds := []struct {
		label string
		mk    func() Build
	}{
		{"legacy", func() Build { return Build{RNG: xrand.New(8)} }},
		{"phased-w1", func() Build { return NewBuild(phasesFor(8, 2), 1) }},
		{"phased-w4", func() Build { return NewBuild(phasesFor(8, 2), 4) }},
	}
	for _, tc := range builds {
		g, wantPts, err := GRNBuild(cfg, tc.mk())
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		want := frozenFingerprint(g.Freeze())
		for _, withArena := range []bool{false, true} {
			b := tc.mk()
			if withArena {
				b.Arena = arena
			}
			f, pts, err := GRNFrozen(cfg, b)
			if err != nil {
				t.Fatalf("%s arena=%v: %v", tc.label, withArena, err)
			}
			if !reflect.DeepEqual(wantPts, pts) {
				t.Fatalf("%s arena=%v: points diverged", tc.label, withArena)
			}
			if f.M() != g.M() {
				t.Fatalf("%s arena=%v: M=%d, want %d", tc.label, withArena, f.M(), g.M())
			}
			if !reflect.DeepEqual(want, frozenFingerprint(f)) {
				t.Fatalf("%s arena=%v: GRNFrozen diverged from GRNBuild+Freeze", tc.label, withArena)
			}
		}
	}
}

// TestFrozenBuildArenaAcrossRealizations pins the pooling contract at the
// gen level: one arena serving a back-to-back mix of CM and GRN builds
// (the pipeline build-worker pattern) yields snapshots identical to
// fresh-allocation builds.
func TestFrozenBuildArenaAcrossRealizations(t *testing.T) {
	t.Parallel()
	arena := graph.NewCSRArena()
	for r := uint64(0); r < 4; r++ {
		cmCfg := CMConfig{N: 3000 + int(r)*500, M: 1 + int(r%2), Gamma: 2.5}
		fresh, freshSt, err := CMFrozen(cmCfg, NewBuild(phasesFor(3, r), 2))
		if err != nil {
			t.Fatal(err)
		}
		pooled, pooledSt, err := CMFrozen(cmCfg, Build{Phases: &xrand.Phases{Seed: 3, Realization: r}, Workers: 2, Arena: arena})
		if err != nil {
			t.Fatal(err)
		}
		if freshSt != pooledSt || !reflect.DeepEqual(frozenFingerprint(fresh), frozenFingerprint(pooled)) {
			t.Fatalf("realization %d: CM arena build diverged", r)
		}
		grnCfg := GRNConfig{N: 2000 + int(r)*700, MeanDegree: 10}
		gFresh, _, err := GRNFrozen(grnCfg, NewBuild(phasesFor(4, r), 2))
		if err != nil {
			t.Fatal(err)
		}
		gPooled, _, err := GRNFrozen(grnCfg, Build{Phases: &xrand.Phases{Seed: 4, Realization: r}, Workers: 2, Arena: arena})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(frozenFingerprint(gFresh), frozenFingerprint(gPooled)) {
			t.Fatalf("realization %d: GRN arena build diverged", r)
		}
	}
}
