package gen

import (
	"testing"

	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

func TestLocalEventsValidation(t *testing.T) {
	t.Parallel()
	cases := []LocalEventsConfig{
		{N: 100, M: 0, P: 0.1, Q: 0.1},
		{N: 100, M: 2, P: 0.6, Q: 0.5}, // p+q >= 1
		{N: 100, M: 2, P: -0.1, Q: 0},
		{N: 2, M: 2, P: 0, Q: 0},
	}
	for _, cfg := range cases {
		if _, _, err := LocalEvents(cfg, xrand.New(1)); err == nil {
			t.Errorf("LocalEvents(%+v) should fail validation", cfg)
		}
	}
}

func TestLocalEventsPureGrowthIsPA(t *testing.T) {
	t.Parallel()
	// p = q = 0 reduces to plain PA: same node count, ~same edge count,
	// comparable hub scale.
	cfg := LocalEventsConfig{N: 3000, M: 2, P: 0, Q: 0}
	g, _, err := LocalEvents(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3000 {
		t.Fatalf("N = %d", g.N())
	}
	pa, _, err := PA(PAConfig{N: 3000, M: 2}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(g.M()) / float64(pa.M())
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("edge counts diverge: local-events %d vs PA %d", g.M(), pa.M())
	}
	if !g.IsConnected() {
		t.Fatal("pure-growth local events must be connected")
	}
}

func TestLocalEventsEdgeAdditionDensifies(t *testing.T) {
	t.Parallel()
	// Higher P (edge events) at fixed N yields a denser network.
	sparse, _, err := LocalEvents(LocalEventsConfig{N: 2000, M: 2, P: 0, Q: 0}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	dense, _, err := LocalEvents(LocalEventsConfig{N: 2000, M: 2, P: 0.4, Q: 0}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if dense.M() <= sparse.M() {
		t.Fatalf("edge events should densify: p=0.4 gives %d edges vs %d", dense.M(), sparse.M())
	}
	meanDense := float64(dense.TotalDegree()) / float64(dense.N())
	meanSparse := float64(sparse.TotalDegree()) / float64(sparse.N())
	if meanDense < meanSparse*1.2 {
		t.Fatalf("mean degree %.2f vs %.2f", meanDense, meanSparse)
	}
}

func TestLocalEventsRewiringPreservesEdgeCount(t *testing.T) {
	t.Parallel()
	// Rewiring events move links without changing totals: with q > 0 and
	// p = 0 the edge count still tracks ~m per node event.
	g, _, err := LocalEvents(LocalEventsConfig{N: 2000, M: 2, P: 0, Q: 0.3}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(g.TotalDegree()) / float64(g.N())
	if mean < 3 || mean > 5 {
		t.Fatalf("mean degree %.2f, want ~4 (2m)", mean)
	}
	if g.TotalDegree() != 2*g.M() {
		t.Fatal("degree bookkeeping broken after rewiring")
	}
}

func TestLocalEventsRespectsCutoff(t *testing.T) {
	t.Parallel()
	g, _, err := LocalEvents(LocalEventsConfig{N: 2000, M: 2, KC: 15, P: 0.2, Q: 0.2}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 15 {
		t.Fatalf("cutoff violated: %d", g.MaxDegree())
	}
}

func TestLocalEventsHeavyTail(t *testing.T) {
	t.Parallel()
	// The model stays scale-free for moderate p, q: heavy tail with a
	// fitted exponent in a plausible band.
	var dists []stats.DegreeDist
	for seed := uint64(0); seed < 3; seed++ {
		g, _, err := LocalEvents(LocalEventsConfig{N: 8000, M: 1, P: 0.2, Q: 0.1}, xrand.New(10+seed))
		if err != nil {
			t.Fatal(err)
		}
		dists = append(dists, stats.NewDegreeDist(g.DegreeHistogram()))
	}
	fit, err := stats.FitPowerLawBinned(stats.MergeDegreeDists(dists), 1.7, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Gamma < 1.5 || fit.Gamma > 3.5 {
		t.Fatalf("local-events exponent %.2f outside plausible band", fit.Gamma)
	}
}

func TestLocalEventsDeterminism(t *testing.T) {
	t.Parallel()
	cfg := LocalEventsConfig{N: 800, M: 2, KC: 30, P: 0.2, Q: 0.2}
	a, _, err := LocalEvents(cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := LocalEvents(cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("shape differs: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("degree(%d) differs", u)
		}
	}
}
