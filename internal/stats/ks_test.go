package stats

import (
	"errors"
	"testing"

	"scalefree/internal/xrand"
)

func TestKSDistancePerfectFit(t *testing.T) {
	t.Parallel()
	// An exact power-law histogram has near-zero KS distance to its own
	// exponent.
	d := NewDegreeDist(synthPowerLaw(2.5, 200, 50_000_000))
	ks, err := KSDistance(d, 2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.02 {
		t.Fatalf("KS distance %v for a perfect fit", ks)
	}
}

func TestKSDistanceDetectsMismatch(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist(synthPowerLaw(2.2, 200, 50_000_000))
	good, err := KSDistance(d, 2.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := KSDistance(d, 3.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bad <= 2*good {
		t.Fatalf("wrong exponent should stand out: good=%v bad=%v", good, bad)
	}
}

func TestKSDistanceErrors(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist(synthPowerLaw(2.5, 50, 1000))
	if _, err := KSDistance(d, 0.5, 1); err == nil {
		t.Error("gamma <= 1 should fail")
	}
	if _, err := KSDistance(NewDegreeDist(nil), 2.5, 1); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v", err)
	}
}

func TestKSBootstrapAcceptsTrueModel(t *testing.T) {
	t.Parallel()
	// Sample from a power law, fit the same exponent: bootstrap score
	// should be comfortably above the 0.1 rejection line.
	rng := xrand.New(3)
	const n, kMin, kMax = 5000, 2, 500
	counts := make([]int, kMax+1)
	for i := 0; i < n; i++ {
		counts[rng.PowerLawInt(kMin, kMax, 2.5)]++
	}
	d := NewDegreeDist(counts)
	observed, err := KSDistance(d, 2.5, kMin)
	if err != nil {
		t.Fatal(err)
	}
	score, err := KSBootstrap(observed, 2.5, kMin, kMax, n, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.1 {
		t.Fatalf("bootstrap rejected the true model: score %v (D=%v)", score, observed)
	}
}

func TestKSBootstrapRejectsWrongModel(t *testing.T) {
	t.Parallel()
	rng := xrand.New(5)
	const n, kMin, kMax = 5000, 2, 500
	counts := make([]int, kMax+1)
	for i := 0; i < n; i++ {
		counts[rng.PowerLawInt(kMin, kMax, 2.2)]++
	}
	d := NewDegreeDist(counts)
	observed, err := KSDistance(d, 3.2, kMin) // fit the wrong exponent
	if err != nil {
		t.Fatal(err)
	}
	score, err := KSBootstrap(observed, 3.2, kMin, kMax, n, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if score > 0.05 {
		t.Fatalf("bootstrap accepted a wrong model: score %v", score)
	}
}

func TestKSBootstrapValidation(t *testing.T) {
	t.Parallel()
	if _, err := KSBootstrap(0.1, 2.5, 1, 10, 0, 10, nil); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := KSBootstrap(0.1, 2.5, 5, 2, 10, 10, nil); err == nil {
		t.Error("kMax < kMin should fail")
	}
}
