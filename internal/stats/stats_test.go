package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"scalefree/internal/xrand"
)

func TestNewDegreeDist(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist([]int{0, 2, 1, 1}) // 2 nodes deg1, 1 deg2, 1 deg3
	if d.N != 4 {
		t.Fatalf("N = %d", d.N)
	}
	if d.P[1] != 0.5 || d.P[2] != 0.25 || d.P[3] != 0.25 {
		t.Fatalf("P = %v", d.P)
	}
	if _, ok := d.P[0]; ok {
		t.Fatal("zero-count degree present")
	}
}

func TestDegreeDistEmpty(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist(nil)
	if d.N != 0 || len(d.P) != 0 {
		t.Fatalf("empty dist: %+v", d)
	}
	if d.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestDegreeDistMean(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist([]int{0, 0, 4}) // all 4 nodes have degree 2
	if d.Mean() != 2 {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestDegreesSorted(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist([]int{0, 5, 0, 3, 2})
	ks := d.Degrees()
	want := []int{1, 3, 4}
	if len(ks) != len(want) {
		t.Fatalf("degrees %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("degrees %v, want %v", ks, want)
		}
	}
}

func TestCCDF(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist([]int{0, 2, 1, 1})
	ks, f := d.CCDF()
	if len(ks) != 3 {
		t.Fatalf("ccdf support %v", ks)
	}
	if math.Abs(f[0]-1.0) > 1e-12 {
		t.Fatalf("F(1) = %v", f[0])
	}
	if math.Abs(f[1]-0.5) > 1e-12 {
		t.Fatalf("F(2) = %v", f[1])
	}
	if math.Abs(f[2]-0.25) > 1e-12 {
		t.Fatalf("F(3) = %v", f[2])
	}
}

func TestCCDFMonotoneProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		counts := make([]int, rng.IntRange(2, 30))
		for i := range counts {
			counts[i] = rng.Intn(10)
		}
		_, ccdf := NewDegreeDist(counts).CCDF()
		for i := 1; i < len(ccdf); i++ {
			if ccdf[i] > ccdf[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDegreeDists(t *testing.T) {
	t.Parallel()
	a := NewDegreeDist([]int{0, 4})    // 4 nodes deg1
	b := NewDegreeDist([]int{0, 0, 4}) // 4 nodes deg2
	m := MergeDegreeDists([]DegreeDist{a, b})
	if m.N != 8 {
		t.Fatalf("merged N = %d", m.N)
	}
	if math.Abs(m.P[1]-0.5) > 1e-12 || math.Abs(m.P[2]-0.5) > 1e-12 {
		t.Fatalf("merged P = %v", m.P)
	}
}

func TestMergeDegreeDistsWeighted(t *testing.T) {
	t.Parallel()
	a := NewDegreeDist([]int{0, 3})    // 3 nodes deg1
	b := NewDegreeDist([]int{0, 0, 1}) // 1 node deg2
	m := MergeDegreeDists([]DegreeDist{a, b})
	if math.Abs(m.P[1]-0.75) > 1e-12 {
		t.Fatalf("P[1] = %v, want 0.75", m.P[1])
	}
}

func TestMergeEmpty(t *testing.T) {
	t.Parallel()
	m := MergeDegreeDists(nil)
	if m.N != 0 {
		t.Fatalf("N = %d", m.N)
	}
}

func TestLogBinConservesMassDensity(t *testing.T) {
	t.Parallel()
	// Power-law-ish distribution; total probability over bins
	// (density*width) should be ~1 minus any skipped degree-0 mass.
	counts := make([]int, 1000)
	for k := 1; k < 1000; k++ {
		counts[k] = int(1e6 / float64(k*k))
	}
	d := NewDegreeDist(counts)
	pts, err := LogBin(d, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no bins")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].K <= pts[i-1].K {
			t.Fatal("bin centers not increasing")
		}
	}
	// Density must decrease roughly like k^-2.
	first, last := pts[0], pts[len(pts)-1]
	slope := math.Log(last.P/first.P) / math.Log(last.K/first.K)
	if slope > -1.5 || slope < -2.5 {
		t.Fatalf("binned slope %.2f, want ~-2", slope)
	}
}

func TestLogBinBadRatio(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist([]int{0, 1})
	if _, err := LogBin(d, 1.0); err == nil {
		t.Fatal("ratio 1.0 should error")
	}
}

func TestLogBinEmpty(t *testing.T) {
	t.Parallel()
	if _, err := LogBin(NewDegreeDist(nil), 2); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
	// Only degree-0 nodes: also insufficient.
	if _, err := LogBin(NewDegreeDist([]int{5}), 2); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
}

// synthPowerLaw builds an exact power-law histogram P(k) ∝ k^-gamma.
func synthPowerLaw(gamma float64, kMax, scale int) []int {
	counts := make([]int, kMax+1)
	for k := 1; k <= kMax; k++ {
		counts[k] = int(float64(scale) * math.Pow(float64(k), -gamma))
	}
	return counts
}

func TestFitPowerLawLSRecovers(t *testing.T) {
	t.Parallel()
	for _, gamma := range []float64{2.2, 2.6, 3.0} {
		d := NewDegreeDist(synthPowerLaw(gamma, 300, 10_000_000))
		fit, err := FitPowerLawLS(d, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Gamma-gamma) > 0.1 {
			t.Errorf("gamma %.1f: fit %.3f", gamma, fit.Gamma)
		}
	}
}

func TestFitPowerLawLSRespectsKRange(t *testing.T) {
	t.Parallel()
	// Power law with a spike at k=50 (hard-cutoff accumulation); fitting
	// with kMax=49 must ignore the spike.
	counts := synthPowerLaw(2.5, 49, 10_000_000)
	counts = append(counts, 500_000) // huge spike at k=50
	d := NewDegreeDist(counts)
	fitAll, err := FitPowerLawLS(d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	fitTrim, err := FitPowerLawLS(d, 1, 49)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fitTrim.Gamma-2.5) > 0.1 {
		t.Errorf("trimmed fit %.3f, want ~2.5", fitTrim.Gamma)
	}
	if fitAll.Gamma >= fitTrim.Gamma {
		t.Errorf("spike should flatten the fit: all=%.3f trim=%.3f", fitAll.Gamma, fitTrim.Gamma)
	}
}

func TestFitPowerLawLSInsufficient(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist([]int{0, 5, 3}) // two support points
	if _, err := FitPowerLawLS(d, 1, 0); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
}

func TestFitPowerLawMLERecovers(t *testing.T) {
	t.Parallel()
	rng := xrand.New(99)
	for _, gamma := range []float64{2.2, 3.0} {
		degrees := make([]int, 200000)
		for i := range degrees {
			degrees[i] = rng.PowerLawInt(2, 100000, gamma)
		}
		// The Hill approximation is biased for very small kMin; fit in the
		// tail, as the estimator is intended to be used.
		fit, err := FitPowerLawMLE(degrees, 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Gamma-gamma) > 0.15 {
			t.Errorf("gamma %.1f: MLE fit %.3f ± %.3f", gamma, fit.Gamma, fit.StdErr)
		}
	}
}

func TestFitPowerLawMLEInsufficient(t *testing.T) {
	t.Parallel()
	if _, err := FitPowerLawMLE([]int{5, 6, 7}, 2); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FitPowerLawMLE(nil, 1); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
}

func TestNaturalCutoffs(t *testing.T) {
	t.Parallel()
	// Paper Eq. 5: for gamma = 3, Dorogovtsev cutoff = m*sqrt(N).
	if got, want := NaturalCutoffDorogovtsev(10000, 2, 3), 200.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Dorogovtsev(1e4, 2, 3) = %v, want %v", got, want)
	}
	// Aiello Eq. 2: N^(1/gamma).
	if got, want := NaturalCutoffAiello(1000, 3), math.Pow(1000, 1.0/3); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Aiello = %v, want %v", got, want)
	}
	// Dorogovtsev cutoff must dominate Aiello for gamma in (2,3].
	for _, gamma := range []float64{2.2, 2.6, 3.0} {
		if NaturalCutoffDorogovtsev(10000, 1, gamma) <= NaturalCutoffAiello(10000, gamma) {
			t.Errorf("gamma %.1f: Dorogovtsev should exceed Aiello", gamma)
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	t.Parallel()
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Fatalf("std = %v", got)
	}
	if StdDev([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate std/mean")
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 || math.Abs(s.Std-1) > 1e-12 {
		t.Fatalf("summary %+v", s)
	}
}

func TestAggregateSeries(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3}
	ys := [][]float64{{10, 20, 30}, {12, 22, 32}}
	s, err := AggregateSeries("test", xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points %v", s.Points)
	}
	if s.Points[0].Y != 11 || s.Points[2].Y != 31 {
		t.Fatalf("means wrong: %+v", s.Points)
	}
	if math.Abs(s.Points[0].Err-math.Sqrt2) > 1e-9 {
		t.Fatalf("err = %v", s.Points[0].Err)
	}
}

func TestAggregateSeriesMismatch(t *testing.T) {
	t.Parallel()
	if _, err := AggregateSeries("x", []float64{1, 2}, [][]float64{{1}}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := AggregateSeries("x", []float64{1}, nil); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkFitPowerLawLS(b *testing.B) {
	d := NewDegreeDist(synthPowerLaw(2.5, 1000, 10_000_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = FitPowerLawLS(d, 1, 0)
	}
}

func BenchmarkLogBin(b *testing.B) {
	d := NewDegreeDist(synthPowerLaw(2.5, 1000, 10_000_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = LogBin(d, 1.5)
	}
}
