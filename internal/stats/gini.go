package stats

// Load-fairness measures. The paper's motivation for hard cutoffs is
// fairness: "to achieve fairness and practicality among all peers, hard
// cutoffs on the number of entries are imposed" (§I). The Gini coefficient
// of the degree sequence quantifies exactly that — 0 means every peer
// carries the same number of neighbor entries, values toward 1 mean a few
// hubs carry nearly everything.

import "sort"

// Gini returns the Gini coefficient of the given non-negative loads
// (e.g. a degree sequence): 0 for perfect equality, approaching 1 as a
// vanishing fraction of entries holds all the mass. Returns 0 for empty
// input or all-zero loads.
func Gini(loads []int) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), loads...)
	sort.Ints(sorted)
	var cum, total float64
	var weighted float64
	for i, x := range sorted {
		v := float64(x)
		total += v
		weighted += v * float64(i+1)
		_ = cum
	}
	if total == 0 {
		return 0
	}
	// G = (2*Σ i*x_i) / (n*Σ x_i) - (n+1)/n, with x sorted ascending and
	// i starting at 1.
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// TopShare returns the fraction of total load carried by the top `frac`
// share of entries (e.g. TopShare(deg, 0.01) = load share of the top 1% of
// peers), the other fairness lens used for hub-dominance claims.
func TopShare(loads []int, frac float64) float64 {
	n := len(loads)
	if n == 0 || frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	sorted := append([]int(nil), loads...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top := int(float64(n)*frac + 0.5)
	if top < 1 {
		top = 1
	}
	var topSum, total float64
	for i, x := range sorted {
		total += float64(x)
		if i < top {
			topSum += float64(x)
		}
	}
	if total == 0 {
		return 0
	}
	return topSum / total
}
