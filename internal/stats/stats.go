// Package stats provides the distribution statistics used to analyze
// generated topologies: degree distributions P(k), complementary CDFs,
// logarithmic binning, power-law exponent estimation, and the natural-cutoff
// formulas the paper quotes (Aiello et al. and Dorogovtsev et al.).
//
// Two exponent estimators are provided because the paper fits straight lines
// on log-log plots (least squares) while the modern standard is the discrete
// maximum-likelihood (Hill) estimator; reporting both brackets the paper's
// measurement procedure.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need more observations
// than were supplied.
var ErrInsufficientData = errors.New("stats: insufficient data")

// DegreeDist is a normalized degree distribution: P[k] is the probability
// that a uniformly random node has degree k.
type DegreeDist struct {
	// P maps degree -> probability. Degrees with zero count are absent.
	P map[int]float64
	// N is the number of nodes the distribution was computed from.
	N int
}

// NewDegreeDist converts a degree histogram (counts[k] = #nodes of degree
// k) into a normalized distribution.
func NewDegreeDist(counts []int) DegreeDist {
	n := 0
	for _, c := range counts {
		n += c
	}
	d := DegreeDist{P: make(map[int]float64), N: n}
	if n == 0 {
		return d
	}
	for k, c := range counts {
		if c > 0 {
			d.P[k] = float64(c) / float64(n)
		}
	}
	return d
}

// Degrees returns the support of the distribution in ascending order.
func (d DegreeDist) Degrees() []int {
	ks := make([]int, 0, len(d.P))
	for k := range d.P {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Mean returns the mean degree.
func (d DegreeDist) Mean() float64 {
	var mean float64
	for k, p := range d.P {
		mean += float64(k) * p
	}
	return mean
}

// CCDF returns the complementary cumulative distribution
// F(k) = P(degree >= k) evaluated at each degree in the support, ascending.
func (d DegreeDist) CCDF() (ks []int, f []float64) {
	ks = d.Degrees()
	f = make([]float64, len(ks))
	tail := 1.0
	for i, k := range ks {
		f[i] = tail
		tail -= d.P[k]
	}
	return ks, f
}

// MergeDegreeDists averages several distributions (e.g. 10 network
// realizations, as the paper does for every data point). Each input is
// weighted by its node count.
func MergeDegreeDists(ds []DegreeDist) DegreeDist {
	out := DegreeDist{P: make(map[int]float64)}
	for _, d := range ds {
		out.N += d.N
	}
	if out.N == 0 {
		return out
	}
	for _, d := range ds {
		w := float64(d.N) / float64(out.N)
		for k, p := range d.P {
			out.P[k] += w * p
		}
	}
	return out
}

// BinnedPoint is one logarithmic bin of a degree distribution.
type BinnedPoint struct {
	K float64 // geometric center of the bin
	P float64 // probability density within the bin
}

// LogBin aggregates a degree distribution into logarithmically spaced bins
// with the given ratio between consecutive bin edges (e.g. 1.5 or 2).
// Log-binning is how the paper's figures tame the noisy power-law tail.
// Bins with zero mass are omitted. ratio must exceed 1.
func LogBin(d DegreeDist, ratio float64) ([]BinnedPoint, error) {
	if ratio <= 1 {
		return nil, fmt.Errorf("stats: log-bin ratio %v must be > 1", ratio)
	}
	ks := d.Degrees()
	if len(ks) == 0 {
		return nil, ErrInsufficientData
	}
	var pts []BinnedPoint
	lo := 1.0
	if ks[0] == 0 {
		// Degree-0 nodes cannot live on a log axis; report them as their
		// own point at k=0 is meaningless, so skip (standard practice).
		ks = ks[1:]
		if len(ks) == 0 {
			return nil, ErrInsufficientData
		}
	}
	if float64(ks[0]) > lo {
		lo = float64(ks[0])
	}
	maxK := float64(ks[len(ks)-1])
	i := 0
	for lo <= maxK {
		hi := lo * ratio
		var mass float64
		for i < len(ks) && float64(ks[i]) < hi {
			mass += d.P[ks[i]]
			i++
		}
		width := hi - lo
		if mass > 0 && width > 0 {
			pts = append(pts, BinnedPoint{K: math.Sqrt(lo * hi), P: mass / width})
		}
		lo = hi
	}
	return pts, nil
}

// PowerLawFit is the result of fitting P(k) ~ k^(-gamma).
type PowerLawFit struct {
	// Gamma is the estimated exponent (positive; P(k) ~ k^-Gamma).
	Gamma float64
	// StdErr is the standard error of Gamma.
	StdErr float64
	// KMin is the smallest degree included in the fit.
	KMin int
	// Points is the number of observations used.
	Points int
}

// FitPowerLawLS fits gamma by least squares on (log k, log P(k)) for
// degrees k >= kMin and k <= kMax (kMax <= 0 means unbounded). This mirrors
// the straight-line fits in the paper's figures. Excluding the spike at the
// hard cutoff is achieved by passing kMax = cutoff-1, as the paper does when
// it reports "exponents with the jump taken into account".
func FitPowerLawLS(d DegreeDist, kMin, kMax int) (PowerLawFit, error) {
	if kMin < 1 {
		kMin = 1
	}
	var xs, ys []float64
	for k, p := range d.P {
		if k < kMin || p <= 0 {
			continue
		}
		if kMax > 0 && k > kMax {
			continue
		}
		xs = append(xs, math.Log(float64(k)))
		ys = append(ys, math.Log(p))
	}
	if len(xs) < 3 {
		return PowerLawFit{}, fmt.Errorf("%w: %d usable degrees (need 3)", ErrInsufficientData, len(xs))
	}
	slope, stderr := linregSlope(xs, ys)
	return PowerLawFit{Gamma: -slope, StdErr: stderr, KMin: kMin, Points: len(xs)}, nil
}

// linregSlope returns the OLS slope of y on x and its standard error.
func linregSlope(xs, ys []float64) (slope, stderr float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, math.Inf(1)
	}
	slope = sxy / sxx
	if len(xs) <= 2 {
		return slope, math.Inf(1)
	}
	var sse float64
	for i := range xs {
		resid := ys[i] - my - slope*(xs[i]-mx)
		sse += resid * resid
	}
	stderr = math.Sqrt(sse / (n - 2) / sxx)
	return slope, stderr
}

// FitPowerLawBinned fits gamma by least squares on logarithmically binned
// data, which is how the paper's log-log figures are fitted: raw tails have
// one node per degree and bias a direct LS fit toward shallow slopes, while
// log-binning equalizes the noise across decades. kMin/kMax bound the
// degrees included (kMax <= 0 means unbounded); pass kMax = cutoff-1 to
// exclude the hard-cutoff spike.
func FitPowerLawBinned(d DegreeDist, ratio float64, kMin, kMax int) (PowerLawFit, error) {
	if kMin < 1 {
		kMin = 1
	}
	trimmed := DegreeDist{P: make(map[int]float64, len(d.P)), N: d.N}
	for k, p := range d.P {
		if k < kMin || (kMax > 0 && k > kMax) {
			continue
		}
		trimmed.P[k] = p
	}
	pts, err := LogBin(trimmed, ratio)
	if err != nil {
		return PowerLawFit{}, err
	}
	if len(pts) < 3 {
		return PowerLawFit{}, fmt.Errorf("%w: %d log bins (need 3)", ErrInsufficientData, len(pts))
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, pt := range pts {
		xs[i] = math.Log(pt.K)
		ys[i] = math.Log(pt.P)
	}
	slope, stderr := linregSlope(xs, ys)
	return PowerLawFit{Gamma: -slope, StdErr: stderr, KMin: kMin, Points: len(pts)}, nil
}

// FitPowerLawMLE estimates gamma with the discrete maximum-likelihood (Hill)
// estimator over individual node degrees >= kMin:
//
//	gamma = 1 + n / sum(ln(k_i / (kMin - 0.5)))
//
// degrees is the raw degree sequence (one entry per node).
func FitPowerLawMLE(degrees []int, kMin int) (PowerLawFit, error) {
	if kMin < 1 {
		kMin = 1
	}
	var sum float64
	n := 0
	base := float64(kMin) - 0.5
	for _, k := range degrees {
		if k < kMin {
			continue
		}
		sum += math.Log(float64(k) / base)
		n++
	}
	if n < 10 || sum == 0 {
		return PowerLawFit{}, fmt.Errorf("%w: %d tail observations (need 10)", ErrInsufficientData, n)
	}
	gamma := 1 + float64(n)/sum
	return PowerLawFit{
		Gamma:  gamma,
		StdErr: (gamma - 1) / math.Sqrt(float64(n)),
		KMin:   kMin,
		Points: n,
	}, nil
}

// NaturalCutoffAiello returns the Aiello et al. natural cutoff
// k_nc ~ N^(1/gamma) (paper Eq. 2).
func NaturalCutoffAiello(n int, gamma float64) float64 {
	return math.Pow(float64(n), 1/gamma)
}

// NaturalCutoffDorogovtsev returns the Dorogovtsev et al. natural cutoff
// k_nc ~ m·N^(1/(gamma-1)) (paper Eq. 4). For gamma = 3 this reduces to
// m·sqrt(N) (paper Eq. 5).
func NaturalCutoffDorogovtsev(n, m int, gamma float64) float64 {
	return float64(m) * math.Pow(float64(n), 1/(gamma-1))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Summary holds the aggregate of repeated measurements of one quantity.
type Summary struct {
	Mean float64
	Std  float64
	N    int
}

// Summarize aggregates xs into a Summary.
func Summarize(xs []float64) Summary {
	return Summary{Mean: Mean(xs), Std: StdDev(xs), N: len(xs)}
}

// SeriesPoint is one (x, y±err) point of a figure series.
type SeriesPoint struct {
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	Err float64 `json:"err,omitempty"`
}

// Series is a named curve, e.g. one line of a paper figure
// ("m=2, kc=40" in Fig 6a).
type Series struct {
	Label  string        `json:"label"`
	Points []SeriesPoint `json:"points"`
}

// AggregateSeries builds a Series from repeated realizations: ys[r][i] is
// the i-th y value of realization r; xs[i] the shared x axis. Mean and
// standard deviation across realizations become the point and error bar.
func AggregateSeries(label string, xs []float64, ys [][]float64) (Series, error) {
	s := Series{Label: label}
	for _, row := range ys {
		if len(row) != len(xs) {
			return s, fmt.Errorf("stats: realization has %d points, x-axis has %d", len(row), len(xs))
		}
	}
	if len(ys) == 0 {
		return s, ErrInsufficientData
	}
	col := make([]float64, len(ys))
	for i, x := range xs {
		for r := range ys {
			col[r] = ys[r][i]
		}
		s.Points = append(s.Points, SeriesPoint{X: x, Y: Mean(col), Err: StdDev(col)})
	}
	return s, nil
}
