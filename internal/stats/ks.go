package stats

// Goodness-of-fit machinery for power-law claims: the Kolmogorov–Smirnov
// distance between an empirical degree distribution and a fitted discrete
// power law, plus a bootstrap significance estimate (Clauset-Shalizi-
// Newman style, reduced to what degree-distribution verification needs).

import (
	"fmt"
	"math"

	"scalefree/internal/xrand"
)

// KSDistance returns the Kolmogorov–Smirnov statistic between the
// empirical CCDF of d (restricted to degrees >= kMin) and the theoretical
// discrete power law with the given exponent on the same support:
// D = max_k |F_emp(k) - F_model(k)|.
func KSDistance(d DegreeDist, gamma float64, kMin int) (float64, error) {
	if kMin < 1 {
		kMin = 1
	}
	if gamma <= 1 {
		return 0, fmt.Errorf("stats: gamma %v must be > 1", gamma)
	}
	// Tail mass and support.
	var tailMass float64
	maxK := 0
	for k, p := range d.P {
		if k < kMin {
			continue
		}
		tailMass += p
		if k > maxK {
			maxK = k
		}
	}
	if tailMass == 0 || maxK < kMin {
		return 0, ErrInsufficientData
	}
	// Model normalization over [kMin, maxK] (finite support, matching the
	// hard-cutoff setting).
	var z float64
	for k := kMin; k <= maxK; k++ {
		z += math.Pow(float64(k), -gamma)
	}
	var dMax, empCum, modCum float64
	for k := kMin; k <= maxK; k++ {
		if p, ok := d.P[k]; ok {
			empCum += p / tailMass
		}
		modCum += math.Pow(float64(k), -gamma) / z
		if diff := math.Abs(empCum - modCum); diff > dMax {
			dMax = diff
		}
	}
	return dMax, nil
}

// KSBootstrap estimates how extreme the observed KS distance is: it draws
// `trials` synthetic samples of size n from the fitted power law, measures
// each sample's KS distance to the model, and returns the fraction whose
// distance exceeds the observed one (a p-value-like score: small values
// mean the power law is a poor fit; ≥0.1 is conventionally "plausible").
func KSBootstrap(observed float64, gamma float64, kMin, kMax, n, trials int, rng *xrand.RNG) (float64, error) {
	if n < 1 || trials < 1 {
		return 0, fmt.Errorf("stats: n=%d trials=%d must be >= 1", n, trials)
	}
	if kMax < kMin || kMin < 1 {
		return 0, fmt.Errorf("stats: bad support [%d, %d]", kMin, kMax)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	exceed := 0
	counts := make([]int, kMax+1)
	for trial := 0; trial < trials; trial++ {
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			counts[rng.PowerLawInt(kMin, kMax, gamma)]++
		}
		dist := NewDegreeDist(counts)
		ks, err := KSDistance(dist, gamma, kMin)
		if err != nil {
			return 0, err
		}
		if ks >= observed {
			exceed++
		}
	}
	return float64(exceed) / float64(trials), nil
}
