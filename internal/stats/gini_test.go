package stats

import (
	"math"
	"testing"

	"scalefree/internal/xrand"
)

func TestGiniEquality(t *testing.T) {
	t.Parallel()
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Fatalf("uniform loads Gini %v, want 0", g)
	}
}

func TestGiniExtremeInequality(t *testing.T) {
	t.Parallel()
	// One holder of everything among n: G = (n-1)/n.
	loads := make([]int, 100)
	loads[42] = 1000
	if g, want := Gini(loads), 0.99; math.Abs(g-want) > 1e-12 {
		t.Fatalf("Gini %v, want %v", g, want)
	}
}

func TestGiniKnownValue(t *testing.T) {
	t.Parallel()
	// {1, 3}: G = 2*(1*1+2*3)/(2*4) - 3/2 = 14/8 - 12/8 = 0.25.
	if g := Gini([]int{3, 1}); math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("Gini %v, want 0.25", g)
	}
}

func TestGiniDegenerate(t *testing.T) {
	t.Parallel()
	if Gini(nil) != 0 || Gini([]int{0, 0}) != 0 {
		t.Fatal("degenerate Gini should be 0")
	}
}

func TestGiniOrderInvariant(t *testing.T) {
	t.Parallel()
	a := Gini([]int{1, 2, 3, 4, 10})
	b := Gini([]int{10, 3, 1, 4, 2})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("Gini depends on order: %v vs %v", a, b)
	}
}

func TestTopShare(t *testing.T) {
	t.Parallel()
	loads := []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 91}
	if s := TopShare(loads, 0.1); math.Abs(s-0.91) > 1e-12 {
		t.Fatalf("top 10%% share %v, want 0.91", s)
	}
	if s := TopShare(loads, 1.0); math.Abs(s-1) > 1e-12 {
		t.Fatalf("full share %v", s)
	}
	if TopShare(nil, 0.5) != 0 || TopShare(loads, 0) != 0 {
		t.Fatal("degenerate TopShare should be 0")
	}
}

func TestGiniMonotoneUnderSpread(t *testing.T) {
	t.Parallel()
	// Transferring load from a poor entry to a rich one must not lower G
	// (Pigou–Dalton principle, spot-checked randomly).
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := rng.IntRange(3, 30)
		loads := make([]int, n)
		for i := range loads {
			loads[i] = rng.IntRange(1, 50)
		}
		before := Gini(loads)
		// Find distinct poor/rich indices.
		poor, rich := 0, 0
		for i, x := range loads {
			if x < loads[poor] {
				poor = i
			}
			if x > loads[rich] {
				rich = i
			}
		}
		if poor == rich || loads[poor] == 0 {
			continue
		}
		loads[poor]--
		loads[rich]++
		if after := Gini(loads); after < before-1e-12 {
			t.Fatalf("regressive transfer lowered Gini: %v -> %v", before, after)
		}
	}
}
