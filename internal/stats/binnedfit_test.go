package stats

import (
	"errors"
	"math"
	"testing"

	"scalefree/internal/xrand"
)

func TestFitPowerLawBinnedRecovers(t *testing.T) {
	t.Parallel()
	for _, gamma := range []float64{2.2, 2.6, 3.0} {
		d := NewDegreeDist(synthPowerLaw(gamma, 500, 50_000_000))
		fit, err := FitPowerLawBinned(d, 1.5, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Gamma-gamma) > 0.2 {
			t.Errorf("gamma %.1f: binned fit %.3f", gamma, fit.Gamma)
		}
	}
}

func TestFitPowerLawBinnedOnSampledTail(t *testing.T) {
	t.Parallel()
	// Sampled (noisy) degrees: the binned fit must stay near the true
	// exponent where a raw LS fit would be dragged shallow by the
	// one-node-per-degree tail.
	rng := xrand.New(5)
	const n = 30000
	counts := make([]int, 0)
	for i := 0; i < n; i++ {
		k := rng.PowerLawInt(1, 10000, 2.5)
		for len(counts) <= k {
			counts = append(counts, 0)
		}
		counts[k]++
	}
	d := NewDegreeDist(counts)
	binned, err := FitPowerLawBinned(d, 1.6, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := FitPowerLawLS(d, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(binned.Gamma-2.5) > 0.3 {
		t.Fatalf("binned fit %.3f too far from 2.5", binned.Gamma)
	}
	if math.Abs(binned.Gamma-2.5) > math.Abs(raw.Gamma-2.5) {
		t.Logf("raw fit happened to win: raw %.3f binned %.3f", raw.Gamma, binned.Gamma)
	}
}

func TestFitPowerLawBinnedRespectsKMax(t *testing.T) {
	t.Parallel()
	counts := synthPowerLaw(2.5, 49, 10_000_000)
	counts = append(counts, 800_000) // cutoff spike at k=50
	d := NewDegreeDist(counts)
	fit, err := FitPowerLawBinned(d, 1.5, 1, 49)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-2.5) > 0.25 {
		t.Fatalf("trimmed binned fit %.3f, want ~2.5", fit.Gamma)
	}
}

func TestFitPowerLawBinnedInsufficient(t *testing.T) {
	t.Parallel()
	d := NewDegreeDist([]int{0, 10, 5})
	if _, err := FitPowerLawBinned(d, 1.5, 1, 0); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
}
