package sim

// Findings tests: paper conclusions asserted end-to-end through the
// harness at reduced scale. Most headline claims live in claims.go and are
// exercised by TestCheckClaims; this file keeps the checks that need
// shared substrates or comparisons across three generators.

import (
	"testing"

	"scalefree/internal/gen"
)

// findScale is big enough for the orderings to be stable, small enough
// for CI.
var findScale = Scale{
	NDegree:      6000,
	NSearch:      3000,
	NSubstrate:   6000,
	NOverlay:     3000,
	Realizations: 3,
	Sources:      15,
	MaxTTLFlood:  12,
	MaxTTLNF:     8,
}

// hitsAtEnd returns the y value of the series' last point.
func hitsAtEnd(t *testing.T, s Series) float64 {
	t.Helper()
	if len(s.Points) == 0 {
		t.Fatalf("series %s empty", s.Label)
	}
	return s.Points[len(s.Points)-1].Y
}

// seriesByLabel finds a series in a figure.
func seriesByLabel(t *testing.T, fig Figure, label string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q (have %v)", fig.ID, label, labels(fig))
	return Series{}
}

func labels(fig Figure) []string {
	out := make([]string, len(fig.Series))
	for i, s := range fig.Series {
		out[i] = s.Label
	}
	return out
}

// Finding 5 (§V-B1): larger τ_sub (more global information) improves
// search, and matters more at higher connectedness m.
func TestFindingTauSubHelpsMoreAtHighM(t *testing.T) {
	t.Parallel()
	subs, err := makeSubstrates(findScale.NSubstrate, findScale, 113)
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(m int, seed uint64) float64 {
		cfg := searchCfg{alg: algNF, maxTTL: findScale.MaxTTLNF, kMin: m,
			sources: findScale.Sources, realizations: findScale.Realizations}
		far, err := searchSeries("tau=20", dapaTopo(subs, findScale.NOverlay, m, gen.NoCutoff, 20), cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		near, err := searchSeries("tau=2", dapaTopo(subs, findScale.NOverlay, m, gen.NoCutoff, 2), cfg, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		return hitsAtEnd(t, far) / hitsAtEnd(t, near)
	}
	r1, r3 := ratio(1, 115), ratio(3, 117)
	if r3 <= r1 {
		t.Fatalf("tau_sub benefit should grow with m: m=1 ratio %.2f, m=3 ratio %.2f", r1, r3)
	}
}

// Finding 6 (§V-B1): "DAPA and HAPA models perform almost as optimal as
// the CM" for NF with m=2 — within a factor of ~2 at the horizon.
func TestFindingLocalModelsTrackCM(t *testing.T) {
	t.Parallel()
	const m, kc = 2, 40
	cfg := searchCfg{alg: algNF, maxTTL: findScale.MaxTTLNF, kMin: m,
		sources: findScale.Sources, realizations: findScale.Realizations}
	cm, err := searchSeries("cm", cmTopo(findScale.NSearch, m, kc, 3.0), cfg, 119)
	if err != nil {
		t.Fatal(err)
	}
	hapa, err := searchSeries("hapa", hapaTopo(findScale.NSearch, m, kc), cfg, 120)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := makeSubstrates(findScale.NSubstrate, findScale, 121)
	if err != nil {
		t.Fatal(err)
	}
	dapa, err := searchSeries("dapa", dapaTopo(subs, findScale.NOverlay, m, kc, 6), cfg, 122)
	if err != nil {
		t.Fatal(err)
	}
	cmHits := hitsAtEnd(t, cm)
	for _, s := range []Series{hapa, dapa} {
		if h := hitsAtEnd(t, s); h < cmHits/2.5 {
			t.Errorf("%s NF hits %.0f too far below CM %.0f", s.Label, h, cmHits)
		}
	}
}
