package sim

// Message-level DES experiments (ROADMAP item 2): the same sweeps the CSR
// kernels run as algorithmic traversals, re-expressed as messages in
// flight through internal/des — which makes per-edge latency, message
// loss, and duplicate traffic measurable scenario knobs instead of
// inexpressible ones. The specs ride the same three-stage build/sweep
// pipeline as every other figure: each realization's topology AND its
// per-edge latency model are fixed in the build stage from the
// (seed, realization, phase) streams, each source draws from its
// (seed, realization, source) stream, and results land in per-index
// slots — so DES figures are bit-for-bit identical for any
// (Workers, SourceShards, GenWorkers) setting, pinned by the DES
// determinism tests. With zero latency and loss the desflood/deskwalk
// hits curves coincide exactly with the CSR flood/k-walk sweeps (the
// equivalence tests pin that too).

import (
	"fmt"

	"scalefree/internal/des"
	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// desLatency resolves the Scale latency knobs: both zero selects the
// default unit-delay model (Base 1, Jitter 1), the generic "heterogeneous
// links around one time unit" scenario. cmd/experiments' -latency-base /
// -latency-jitter flags override.
func (sc Scale) desLatency() (base, jitter float64) {
	if sc.DESLatencyBase == 0 && sc.DESLatencyJitter == 0 {
		return 1, 1
	}
	return sc.DESLatencyBase, sc.DESLatencyJitter
}

// desLossRates resolves the loss-rate series: an explicit positive
// Scale.DESLoss runs that single rate, otherwise the specs sweep lossless
// plus two lossy regimes.
func (sc Scale) desLossRates() []float64 {
	if sc.DESLoss > 0 {
		return []float64{sc.DESLoss}
	}
	return []float64{0, 0.02, 0.10}
}

// desTopo couples one realization's frozen snapshot with its latency
// model. Both are fixed in the pipelined build stage — the latency model
// carries the realization's phase-stream root — so the sweep stage needs
// no builder context.
type desTopo struct {
	f   *graph.Frozen
	lat des.Latency
}

// desSweep is the DES counterpart of sweepSeries: it pushes `realizations`
// topologies through the build/sweep pipeline, runs one simulation per
// (realization, source) on the shard's pooled des.Sim, and reduces
// nCurves per-hop curves (each of rowLen points) to per-realization means
// in slot order. run executes the simulation with the source's stream;
// sample extracts the curves from the run's Metrics before the next
// simulation invalidates them.
//
// tag names this sweep in the journal. It is load-bearing here: the DES
// specs deliberately share one engine seed across their loss/failure
// series to isolate the knob against identical topologies, so the seed
// alone cannot key a checkpoint — the tag carries the knob. A journaled
// realization replays all nCurves × sources rows bit-for-bit.
func desSweep(tag string, factory topoFactory, cfg searchCfg, base, jitter float64, seed uint64, nCurves, rowLen int,
	run func(sim *des.Sim, v desTopo, src int, rng *xrand.RNG) (des.Metrics, error),
	sample func(m des.Metrics, rows [][]float64),
) ([][][]float64, error) {
	rc := cfg.run
	sub := journalTag(tag)
	if err := rc.journalClaim(recDESSlots, seed, sub, tag); err != nil {
		return nil, err
	}
	rs := cfg.realizations * cfg.sources
	perSource := make([][]float64, nCurves*rs)
	// Journal layout: one record per realization holding nCurves × sources
	// rows, curve-major, matching the slot strides below.
	gather := func(r int) [][]float64 {
		rows := make([][]float64, 0, nCurves*cfg.sources)
		for c := 0; c < nCurves; c++ {
			rows = append(rows, perSource[c*rs+r*cfg.sources:c*rs+(r+1)*cfg.sources]...)
		}
		return rows
	}
	skip := replayRowBlocks(rc, recDESSlots, seed, sub, cfg.realizations, nCurves*cfg.sources, rowLen, func(r int, rows [][]float64) {
		for c := 0; c < nCurves; c++ {
			copy(perSource[c*rs+r*cfg.sources:c*rs+(r+1)*cfg.sources], rows[c*cfg.sources:(c+1)*cfg.sources])
		}
	})
	err := forEachRealizationPipeline(engineOpts{rc: rc, skip: skip, partial: true},
		cfg.workers, cfg.sourceShards, cfg.genWorkers, cfg.realizations, seed,
		func(r int, b *builder) (desTopo, error) {
			f, err := sweepTopo(factory, r, b)
			if err != nil {
				return desTopo{}, err
			}
			return desTopo{f: f, lat: des.Latency{Base: base, Jitter: jitter, Phases: b.phases}}, nil
		},
		func(r int, v desTopo, sw *sweeper) error {
			err := sw.Sources(uint64(r), cfg.sources, func(shard, s int, rng *xrand.RNG, _ *search.Scratch) error {
				src := rng.Intn(v.f.N())
				m, err := run(sw.Sim(shard), v, src, rng)
				if err != nil {
					return err
				}
				rows := make([][]float64, nCurves)
				for c := range rows {
					rows[c] = make([]float64, rowLen)
				}
				sample(m, rows)
				for c := range rows {
					perSource[c*rs+r*cfg.sources+s] = rows[c]
				}
				return nil
			})
			if err != nil {
				return err
			}
			if rc.journaling() {
				rc.journalAppend(recDESSlots, seed, sub, r, encodeRowBlock(gather(r), rowLen))
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	for r := range rc.failedSet(seed) {
		for c := 0; c < nCurves; c++ {
			for s := 0; s < cfg.sources; s++ {
				perSource[c*rs+r*cfg.sources+s] = nil
			}
		}
	}
	out := make([][][]float64, nCurves)
	for c := range out {
		out[c] = meanRows(perSource[c*rs:(c+1)*rs], cfg.realizations, cfg.sources)
	}
	return out, nil
}

// lossLabel renders a loss rate the way the DES legends do.
func lossLabel(loss float64) string {
	if loss == 0 {
		return "lossless"
	}
	return fmt.Sprintf("loss=%.0f%%", loss*100)
}

// DESFlood measures TTL flooding as messages in flight on PA overlays
// (m=2, no cutoff, the paper's baseline search topology): coverage vs τ
// under message loss, the latency-vs-hops curve (mean first-receipt
// arrival time per hop distance), and the cumulative message cost. All
// loss series share one seed, so the loss knob is isolated against
// identical topologies and sources.
func DESFlood(sc Scale, seed uint64) ([]Figure, error) {
	base, jitter := sc.desLatency()
	maxTTL := sc.flSweepTTL()
	cfg := sc.searchCfg(algFL, maxTTL, 0)
	factory := paTopo(sc.NSearch, 2, gen.NoCutoff)
	hitsFig := Figure{
		ID: "desflood-hits", Title: "DES flooding: coverage vs tau under message loss (PA, m=2)",
		XLabel: "tau", YLabel: "number of hits",
	}
	timeFig := Figure{
		ID: "desflood-time", Title: "DES flooding: mean first-receipt time vs hop (PA, m=2)",
		XLabel: "hop", YLabel: "mean arrival time",
		Notes: fmt.Sprintf("per-edge latency %.2g + U[0,%.2g); hops no source reached plot as 0", base, jitter),
	}
	msgFig := Figure{
		ID: "desflood-msgs", Title: "DES flooding: cumulative messages vs tau under message loss (PA, m=2)",
		XLabel: "tau", YLabel: "messages sent",
	}
	for _, loss := range sc.desLossRates() {
		loss := loss
		curves, err := desSweep("desflood "+lossLabel(loss), factory, cfg, base, jitter, seed, 3, maxTTL+1,
			func(sim *des.Sim, v desTopo, src int, rng *xrand.RNG) (des.Metrics, error) {
				return sim.Flood(v.f, src, des.Config{MaxTTL: maxTTL, Latency: v.lat, Loss: loss}, rng)
			},
			func(m des.Metrics, rows [][]float64) {
				hits, sent := 0, 0
				for h := 0; h <= maxTTL; h++ {
					hits += m.HitsByHop[h]
					rows[0][h] = float64(hits)
					if m.HitsByHop[h] > 0 {
						rows[1][h] = m.TimeByHop[h] / float64(m.HitsByHop[h])
					}
					rows[2][h] = float64(sent)
					if h < maxTTL {
						sent += m.SentByHop[h]
					}
				}
			})
		if err != nil {
			return nil, fmt.Errorf("desflood %s: %w", lossLabel(loss), err)
		}
		label := lossLabel(loss)
		for i, fig := range []*Figure{&hitsFig, &timeFig, &msgFig} {
			s, err := aggregate(label, curves[i], 1)
			if err != nil {
				return nil, fmt.Errorf("desflood %s: %w", label, err)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return []Figure{hitsFig, timeFig, msgFig}, nil
}

// DESKWalk measures k parallel random walkers as messages in flight on
// the same PA overlays: coverage vs steps for k ∈ {1, 4, 16} under each
// loss rate (a lost copy kills its walker — the failure mode the CSR
// k-walk kernel cannot express).
func DESKWalk(sc Scale, seed uint64) ([]Figure, error) {
	base, jitter := sc.desLatency()
	steps := 10 * sc.MaxTTLNF
	cfg := sc.searchCfg(algFL, steps, 0)
	factory := paTopo(sc.NSearch, 2, gen.NoCutoff)
	fig := Figure{
		ID: "deskwalk-hits", Title: "DES k-walkers: coverage vs steps under message loss (PA, m=2)",
		XLabel: "steps", YLabel: "number of hits",
	}
	for _, k := range []int{1, 4, 16} {
		for _, loss := range sc.desLossRates() {
			k, loss := k, loss
			curves, err := desSweep(fmt.Sprintf("deskwalk k=%d %s", k, lossLabel(loss)), factory, cfg, base, jitter, seed, 1, steps+1,
				func(sim *des.Sim, v desTopo, src int, rng *xrand.RNG) (des.Metrics, error) {
					return sim.KWalk(v.f, src, k, steps, des.Config{Latency: v.lat, Loss: loss}, rng)
				},
				func(m des.Metrics, rows [][]float64) {
					hits := 0
					for h := 0; h <= steps; h++ {
						hits += m.HitsByHop[h]
						rows[0][h] = float64(hits)
					}
				})
			if err != nil {
				return nil, fmt.Errorf("deskwalk k=%d %s: %w", k, lossLabel(loss), err)
			}
			s, err := aggregate(fmt.Sprintf("k=%d, %s", k, lossLabel(loss)), curves[0], 1)
			if err != nil {
				return nil, err
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return []Figure{fig}, nil
}
