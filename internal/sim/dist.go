package sim

// Distributed-run surface of the journal (ROADMAP item 4): the
// coordinator/worker protocol in internal/coord streams exactly the
// journal's keyed slot records — (kind, engine-seed, tag-hash,
// realization) with CRC'd payloads — so this file exports the record
// shape, a self-checking binary codec reusing the journal's on-disk
// framing, and the coordinator-side Journal operations: idempotent
// first-writer-wins Accept, per-realization completion markers that
// survive a coordinator restart, and record counts for completion
// verification. InspectJournal is the read-only diagnostic behind
// `analyze journal`.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// SlotRecord is one journal record in wire form: one realization's slot
// contribution to one sweep, identified by the payload family (kind), the
// sweep's engine seed (Stream), the FNV hash of its human-readable tag
// (Sub), and the realization index. The payload is the exact bits the
// journal would hold, so a record computed on any worker reduces
// bit-identically to one computed locally.
type SlotRecord struct {
	Kind        uint8
	Stream, Sub uint64
	Realization int
	Payload     []byte
}

// Key renders the record's identity for logs and dedup diagnostics.
func (rec SlotRecord) Key() string {
	return fmt.Sprintf("(kind=%d, stream=%#x, sub=%#x, r=%d)", rec.Kind, rec.Stream, rec.Sub, rec.Realization)
}

// slotKinds reports whether kind is a replayable slot-payload family (as
// opposed to the header, failure, or completion-marker bookkeeping kinds).
func slotKind(kind uint8) bool {
	switch kind {
	case recSweepSlots, recDegreeHist, recDESSlots:
		return true
	}
	return false
}

// MarshalBinary encodes the record in the journal's on-disk framing —
// length prefix, CRC32 of the body, then key+payload — so the wire format
// IS the journal format and a received record can be validated and
// appended without re-encoding.
func (rec SlotRecord) MarshalBinary() []byte {
	return encodeRecord(journalKey{kind: rec.Kind, stream: rec.Stream, sub: rec.Sub, r: rec.Realization}, rec.Payload)
}

// DecodeSlotRecord is the inverse of MarshalBinary. It rejects torn or
// corrupt frames (bad length, bad CRC) and trailing garbage, so a record
// that decodes is exactly a record the journal would accept.
func DecodeSlotRecord(b []byte) (SlotRecord, error) {
	br := bufio.NewReader(bytes.NewReader(b))
	k, payload, n, ok := readRecord(br)
	if !ok {
		return SlotRecord{}, errors.New("sim: corrupt slot record (bad length or checksum)")
	}
	if int(n) != len(b) {
		return SlotRecord{}, fmt.Errorf("sim: slot record carries %d trailing byte(s)", len(b)-int(n))
	}
	return SlotRecord{Kind: k.kind, Stream: k.stream, Sub: k.sub, Realization: k.r, Payload: payload}, nil
}

// WorkloadFingerprint returns the journal header bytes for (spec, seed,
// scale): everything that determines an experiment's numbers and nothing
// that doesn't (scheduler knobs are excluded). The coordinator ships it
// with every lease and workers refuse leases whose fingerprint differs
// from what they compute from the shipped workload — a version- or
// configuration-skewed worker must fail loudly, never contribute
// subtly-different bits.
func WorkloadFingerprint(spec string, seed uint64, sc Scale) []byte {
	return encodeJournalHeader(spec, seed, sc)
}

// Accept applies one streamed record to the journal with first-writer-wins
// idempotence: a record whose key is already present — resumed from disk
// or accepted earlier this run — is dropped (fresh=false) so a slow
// stolen-from worker's late duplicate cannot double-append. A fresh record
// is appended to the file (crash-safe under the usual batched-fsync
// contract) and becomes immediately replayable through the resume path.
// Only slot-payload kinds are accepted; bookkeeping kinds are rejected.
func (j *Journal) Accept(rec SlotRecord) (fresh bool, err error) {
	if j == nil {
		return false, errors.New("sim: Accept on nil journal")
	}
	if !slotKind(rec.Kind) {
		return false, fmt.Errorf("sim: record %s is not a slot payload kind", rec.Key())
	}
	if rec.Payload == nil {
		return false, fmt.Errorf("sim: record %s has no payload", rec.Key())
	}
	k := journalKey{kind: rec.Kind, stream: rec.Stream, sub: rec.Sub, r: rec.Realization}
	j.mu.Lock()
	if _, dup := j.resumed[k]; dup {
		j.mu.Unlock()
		return false, nil
	}
	// Mirror append()'s sticky-error discipline inline: the key must be
	// registered only when the bytes are durably queued.
	if j.err != nil {
		defer j.mu.Unlock()
		return false, j.err
	}
	if werr := j.writeRecord(k, rec.Payload); werr != nil {
		j.err = fmt.Errorf("sim: journal %s: %w", j.path, werr)
		defer j.mu.Unlock()
		return false, j.err
	}
	j.pending++
	var serr error
	if j.pending >= journalFsyncBatch {
		serr = j.syncLocked()
	}
	j.resumed[k] = rec.Payload
	if j.recCount == nil {
		j.recCount = map[int]int{}
	}
	j.recCount[rec.Realization]++
	j.mu.Unlock()
	return true, serr
}

// MarkRealizationDone journals a completion marker for realization r of
// this journal's spec: the coordinator writes it once a worker's completed
// lease verifies, and a restarted coordinator recovers the done set from
// these markers instead of guessing from record counts. Idempotent.
func (j *Journal) MarkRealizationDone(r int) error {
	if j == nil {
		return errors.New("sim: MarkRealizationDone on nil journal")
	}
	j.mu.Lock()
	if j.done == nil {
		j.done = map[int]bool{}
	}
	if j.done[r] {
		j.mu.Unlock()
		return nil
	}
	j.done[r] = true
	j.mu.Unlock()
	// The marker payload is a single version byte; append() skips nil
	// payloads, so it must be non-empty.
	return j.append(journalKey{kind: recRealDone, r: r}, []byte{1})
}

// DoneRealizations returns a copy of the realizations marked complete —
// written by MarkRealizationDone this run or recovered on resume.
func (j *Journal) DoneRealizations() map[int]bool {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[int]bool, len(j.done))
	for r := range j.done {
		out[r] = true
	}
	return out
}

// RecordCount reports how many distinct slot records the journal holds for
// realization r, across all sweeps of the spec — the coordinator checks a
// completing lease's streamed-record count against it, so a completion
// whose records were lost in transit is not marked done.
func (j *Journal) RecordCount(r int) int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recCount[r]
}

// JournalRecordInfo describes one record for diagnostics.
type JournalRecordInfo struct {
	Kind        uint8
	KindName    string
	Stream, Sub uint64
	Realization int
	PayloadLen  int
}

// JournalInfo is InspectJournal's report: decoded header fields, the
// record inventory, recovered bookkeeping, and torn-tail diagnostics.
type JournalInfo struct {
	Path    string
	Version uint64
	Spec    string
	Seed    uint64
	// Records lists every intact slot record in file order.
	Records []JournalRecordInfo
	// Done lists realizations with completion markers, ascending.
	Done []int
	// Failures are the recovered permanent-failure records.
	Failures []FailureRecord
	// GoodBytes is the clean prefix length; FileBytes the file size. They
	// differ exactly when the journal carries a torn tail.
	GoodBytes, FileBytes int64
}

// TornBytes reports how many trailing bytes fail validation (0 = clean).
func (info JournalInfo) TornBytes() int64 { return info.FileBytes - info.GoodBytes }

// KindName renders a record kind for humans.
func KindName(kind uint8) string {
	switch kind {
	case recHeader:
		return "header"
	case recSweepSlots:
		return "sweep-slots"
	case recDegreeHist:
		return "degree-hist"
	case recDESSlots:
		return "des-slots"
	case recRealDone:
		return "realization-done"
	case recFailure:
		return "failure"
	}
	return fmt.Sprintf("kind(%d)", kind)
}

// InspectJournal reads a journal file read-only — no truncation, no header
// expectations — and reports everything a distributed-run post-mortem
// needs: which spec/seed wrote it, which records and completion markers
// survived, and where the torn tail (if any) begins.
func InspectJournal(path string) (JournalInfo, error) {
	info := JournalInfo{Path: path}
	f, err := os.Open(path)
	if err != nil {
		return info, err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil {
		info.FileBytes = st.Size()
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(br, magic); err != nil || !bytes.Equal(magic, journalMagic) {
		return info, fmt.Errorf("sim: %s is not an experiment journal (bad magic)", path)
	}
	info.GoodBytes = int64(len(journalMagic))
	k, payload, n, ok := readRecord(br)
	if !ok || k.kind != recHeader {
		return info, fmt.Errorf("sim: %s: unreadable header record", path)
	}
	if err := decodeJournalHeaderInto(&info, payload); err != nil {
		return info, fmt.Errorf("sim: %s: %w", path, err)
	}
	info.GoodBytes += n
	done := map[int]bool{}
	for {
		k, payload, n, ok := readRecord(br)
		if !ok {
			break
		}
		switch {
		case slotKind(k.kind):
			info.Records = append(info.Records, JournalRecordInfo{
				Kind: k.kind, KindName: KindName(k.kind),
				Stream: k.stream, Sub: k.sub, Realization: k.r,
				PayloadLen: len(payload),
			})
		case k.kind == recRealDone:
			done[k.r] = true
		case k.kind == recFailure:
			if fr, ok := decodeFailure(k, payload); ok {
				info.Failures = append(info.Failures, fr)
			}
		default:
			// Unknown kind that happened to checksum: corruption. Stop at
			// the last good record, exactly as loadJournal would.
			return finishInspect(info, done), nil
		}
		info.GoodBytes += n
	}
	return finishInspect(info, done), nil
}

func finishInspect(info JournalInfo, done map[int]bool) JournalInfo {
	for r := range done {
		info.Done = append(info.Done, r)
	}
	sort.Ints(info.Done)
	return info
}

// decodeJournalHeaderInto inverts the identity-bearing prefix of
// encodeJournalHeader (version, seed, spec); the Scale fields that follow
// stay opaque fingerprint bytes — diagnostics never need them decoded,
// only compared.
func decodeJournalHeaderInto(info *JournalInfo, p []byte) error {
	if len(p) < 20 {
		return errors.New("journal header too short")
	}
	info.Version = binary.LittleEndian.Uint64(p[0:8])
	info.Seed = binary.LittleEndian.Uint64(p[8:16])
	n := int(binary.LittleEndian.Uint32(p[16:20]))
	if n < 0 || len(p) < 20+n {
		return errors.New("journal header spec field truncated")
	}
	info.Spec = string(p[20 : 20+n])
	return nil
}

// Scheduler-knob-free copy of a Scale for the wire: the workload half
// determines the numbers; the scheduler half is every worker's own
// business. Run never crosses the wire.
func (sc Scale) WorkloadOnly() Scale {
	sc.Workers, sc.SourceShards, sc.GenWorkers = 0, 0, 0
	sc.Run = nil
	return sc
}
