package sim

// Tests for the PR 8 supervision layer: panic containment and
// deterministic retry, permanent-failure budgets with explicit
// accounting, realization-boundary interruption, and the stall watchdog.
// The load-bearing property throughout: supervision NEVER perturbs the
// numbers — a retried run is bit-identical to a never-failed run, and a
// partial run is the never-failed run minus explicitly dropped
// realizations.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalefree/internal/des"
	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

func testRC(retries, maxFailed int) *RunControl {
	return NewRunControl(context.Background(), retries, maxFailed, nil)
}

// TestBuildPanicRetriedBitIdentical injects a one-shot panic into the
// build of realization 1 and requires the retried run to match the
// baseline bit-for-bit: the retry re-derives pristine streams, so the
// surviving attempt is indistinguishable from a never-failed one.
func TestBuildPanicRetriedBitIdentical(t *testing.T) {
	t.Parallel()
	const seed = 31337
	factory := paTopo(500, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: 6, sources: 4, realizations: 3}
	baseline, err := searchSeries("fl", factory, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}

	var tripped atomic.Bool
	flaky := func(r int, b *builder) (*graph.Frozen, error) {
		if r == 1 && tripped.CompareAndSwap(false, true) {
			panic("injected build panic")
		}
		return factory(r, b)
	}
	rcfg := cfg
	rcfg.run = testRC(1, 0)
	got, err := searchSeries("fl", flaky, rcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped.Load() {
		t.Fatal("injected panic never fired")
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Fatal("retried series differs from baseline")
	}
	if rcfg.run.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", rcfg.run.Recovered())
	}
	if len(rcfg.run.Failures()) != 0 {
		t.Fatalf("Failures() = %+v, want none", rcfg.run.Failures())
	}
}

// TestSweepPanicRetriedBitIdentical injects a one-shot panic into the
// sweep stage. The retry must rebuild the realization end-to-end (the
// snapshot may carry consumed phase streams), so the factory runs
// realizations+1 times, and the output is still bit-identical.
func TestSweepPanicRetriedBitIdentical(t *testing.T) {
	t.Parallel()
	const seed = 8888
	inner := paTopo(500, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: 6, sources: 4, realizations: 3}
	baseline, err := searchSeries("fl", inner, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}

	var builds atomic.Int64
	factory := countingFactory(inner, &builds)
	var tripped atomic.Bool
	rcfg := cfg
	rcfg.run = testRC(1, 0)
	got, err := sweepSeries("fl", factory, rcfg, seed, func(res search.Result, row []float64) {
		if tripped.CompareAndSwap(false, true) {
			panic("injected sweep panic")
		}
		for t := range row {
			row[t] = float64(res.HitsAt(t))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Fatal("sweep-retried series differs from baseline")
	}
	if got, want := builds.Load(), int64(cfg.realizations+1); got != want {
		t.Fatalf("factory ran %d times, want %d (one rebuild for the retried sweep)", got, want)
	}
	if rcfg.run.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", rcfg.run.Recovered())
	}
}

// TestPermanentFailureWithinBudget kills one realization on every attempt:
// with -max-failed 1 the run survives, records the failure with its stack,
// and the series aggregates the survivors only.
func TestPermanentFailureWithinBudget(t *testing.T) {
	t.Parallel()
	const seed = 4242
	inner := paTopo(500, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: 6, sources: 4, realizations: 3}
	dead := func(r int, b *builder) (*graph.Frozen, error) {
		if r == 2 {
			panic("realization 2 is cursed")
		}
		return inner(r, b)
	}
	rcfg := cfg
	rcfg.run = testRC(1, 1)
	got, err := searchSeries("fl", dead, rcfg, seed)
	if err != nil {
		t.Fatalf("run did not survive a budgeted failure: %v", err)
	}
	if len(got.Points) == 0 {
		t.Fatal("partial series is empty")
	}
	frs := rcfg.run.Failures()
	if len(frs) != 1 {
		t.Fatalf("Failures() = %+v, want exactly one", frs)
	}
	fr := frs[0]
	if fr.Realization != 2 || fr.Attempts != 2 {
		t.Fatalf("failure record = %+v, want realization 2 after 2 attempts", fr)
	}
	if !strings.Contains(fr.Err, "realization 2 is cursed") {
		t.Fatalf("failure error %q does not name the panic", fr.Err)
	}
	if !strings.Contains(fr.Stack, "goroutine") {
		t.Fatalf("failure record carries no stack: %q", fr.Stack)
	}

	// The partial series must equal the baseline computed WITHOUT the
	// cursed realization's contribution: recompute by dropping r=2 rows.
	baselineCfg := cfg
	perSource := make([][]float64, cfg.realizations*cfg.sources)
	err = forEachRealizationPipeline(engineOpts{}, baselineCfg.workers, baselineCfg.sourceShards, baselineCfg.genWorkers, baselineCfg.realizations, seed,
		func(r int, b *builder) (*graph.Frozen, error) { return sweepTopo(inner, r, b) },
		func(r int, f *graph.Frozen, sw *sweeper) error {
			return sw.Sources(uint64(r), baselineCfg.sources, func(_, s int, rng *xrand.RNG, scratch *search.Scratch) error {
				src := rng.Intn(f.N())
				res, err := baselineCfg.runSearch(scratch, f, src, rng)
				if err != nil {
					return err
				}
				row := make([]float64, baselineCfg.maxTTL+1)
				for t := range row {
					row[t] = float64(res.HitsAt(t))
				}
				perSource[r*baselineCfg.sources+s] = row
				return nil
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < cfg.sources; s++ {
		perSource[2*cfg.sources+s] = nil
	}
	want, err := aggregate("fl", meanRows(perSource, cfg.realizations, cfg.sources), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("partial series differs from baseline-minus-failed-realization")
	}
}

// TestFailureBudgetAborts: with the default -max-failed 0, the first
// permanent failure aborts the sweep with an error naming the budget.
func TestFailureBudgetAborts(t *testing.T) {
	t.Parallel()
	factory := func(r int, b *builder) (*graph.Frozen, error) {
		panic("always broken")
	}
	cfg := searchCfg{alg: algFL, maxTTL: 4, sources: 2, realizations: 2, run: testRC(1, 0)}
	_, err := searchSeries("fl", factory, cfg, 7)
	if err == nil {
		t.Fatal("run survived with an exhausted failure budget")
	}
	if !strings.Contains(err.Error(), "max-failed") {
		t.Fatalf("error %q does not name the budget", err)
	}
}

// TestStrictEngineFailureIsFatal: specs without a drop path (partial
// unset) must abort on a permanently failed realization even under a
// generous budget — absorbing it would silently average garbage.
func TestStrictEngineFailureIsFatal(t *testing.T) {
	t.Parallel()
	rc := testRC(1, 100)
	err := forEachRealization(engineOpts{rc: rc}, 2, 1, 4, 5, func(r int, b *builder) error {
		if r == 1 {
			return fmt.Errorf("no drop path here")
		}
		return nil
	})
	if err == nil {
		t.Fatal("strict engine absorbed a permanent failure")
	}
	if len(rc.Failures()) != 1 {
		t.Fatalf("Failures() = %+v, want the one fatal record", rc.Failures())
	}
}

// TestErrorRetriedOnce: plain errors (not just panics) are retried too.
func TestErrorRetriedOnce(t *testing.T) {
	t.Parallel()
	var tripped atomic.Bool
	rc := testRC(1, 0)
	err := forEachRealization(engineOpts{rc: rc}, 1, 1, 3, 5, func(r int, b *builder) error {
		if r == 0 && tripped.CompareAndSwap(false, true) {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", rc.Recovered())
	}
}

// TestInterruptStopsAtRealizationBoundary cancels the run context from
// inside a realization callback; the engines must stop dispatching,
// drain without deadlock, and return ErrInterrupted.
func TestInterruptStopsAtRealizationBoundary(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	rc := NewRunControl(ctx, 0, 0, nil)
	var ran atomic.Int64
	err := forEachRealization(engineOpts{rc: rc}, 2, 1, 64, 5, func(r int, b *builder) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if got := ran.Load(); got >= 64 {
		t.Fatalf("interrupt did not stop dispatch (%d realizations ran)", got)
	}
}

// TestInterruptPipelineNoDeadlock does the same through the pipelined
// engine, where blocked builders must be drained by the sweep workers.
func TestInterruptPipelineNoDeadlock(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	rc := NewRunControl(ctx, 0, 0, nil)
	var swept atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- forEachRealizationPipeline(engineOpts{rc: rc}, 2, 1, 2, 64, 5,
			func(r int, b *builder) (int, error) { return r, nil },
			func(r int, v int, sw *sweeper) error {
				if swept.Add(1) == 2 {
					cancel()
				}
				return nil
			})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline deadlocked on interrupt")
	}
}

// TestInterruptedJournalResumes ties interruption to resume: a run
// interrupted partway keeps a valid journal, and the resumed run matches
// the uninterrupted baseline bit-for-bit.
func TestInterruptedJournalResumes(t *testing.T) {
	t.Parallel()
	const seed = 606
	sc := testScaleTiny()
	factory := paTopo(sc.NSearch, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: 6, sources: sc.Sources, realizations: sc.Realizations}
	baseline, err := searchSeries("fl", factory, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "int.journal")
	j, err := OpenJournal(path, "fig", seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	icfg := cfg
	icfg.workers, icfg.genWorkers = 1, 1 // serial: the cancel point is deterministic
	icfg.run = NewRunControl(ctx, 0, 0, j)
	var sweeps atomic.Int64
	_, err = sweepSeries("fl", factory, icfg, seed, func(res search.Result, row []float64) {
		if sweeps.Add(1) == int64(cfg.sources) { // after realization 0's last source
			cancel()
		}
		for t := range row {
			row[t] = float64(res.HitsAt(t))
		}
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "fig", seed, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Resumed() == 0 {
		t.Fatal("interrupted run journaled nothing")
	}
	rcfg := cfg
	rcfg.run = NewRunControl(context.Background(), 0, 0, j2)
	resumed, err := searchSeries("fl", factory, rcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if !reflect.DeepEqual(resumed, baseline) {
		t.Fatal("resumed-after-interrupt series differs from baseline")
	}
}

// TestDESSweepResumeBitIdentical pins resume for the DES record layout
// (curve-major row blocks), which differs from the CSR sweep's.
func TestDESSweepResumeBitIdentical(t *testing.T) {
	t.Parallel()
	const seed, maxTTL = 515, 6
	factory := paTopo(500, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: maxTTL, sources: 4, realizations: 3}
	run := func(sim *des.Sim, v desTopo, src int, rng *xrand.RNG) (des.Metrics, error) {
		return sim.Flood(v.f, src, des.Config{MaxTTL: maxTTL, Latency: v.lat}, rng)
	}
	sample := func(m des.Metrics, rows [][]float64) {
		for h := 0; h <= maxTTL; h++ {
			rows[0][h] = float64(m.HitsWithin(h))
			rows[1][h] = float64(m.SentBelow(h))
		}
	}
	baseline, err := desSweep("t", factory, cfg, 0, 0, seed, 2, maxTTL+1, run, sample)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "des.journal")
	j, err := OpenJournal(path, "desflood", seed, testScaleTiny(), false)
	if err != nil {
		t.Fatal(err)
	}
	jcfg := cfg
	jcfg.run = NewRunControl(context.Background(), 0, 0, j)
	journaled, err := desSweep("t", factory, jcfg, 0, 0, seed, 2, maxTTL+1, run, sample)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if !reflect.DeepEqual(journaled, baseline) {
		t.Fatal("journaling perturbed the DES sweep")
	}

	j2, err := OpenJournal(path, "desflood", seed, testScaleTiny(), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Resumed(); got != cfg.realizations {
		t.Fatalf("Resumed() = %d, want %d", got, cfg.realizations)
	}
	var builds atomic.Int64
	rcfg := cfg
	rcfg.workers, rcfg.sourceShards = 2, 2
	rcfg.run = NewRunControl(context.Background(), 0, 0, j2)
	resumed, err := desSweep("t", countingFactory(factory, &builds), rcfg, 0, 0, seed, 2, maxTTL+1, run, sample)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if builds.Load() != 0 {
		t.Fatalf("fully journaled DES resume still built %d topologies", builds.Load())
	}
	if !reflect.DeepEqual(resumed, baseline) {
		t.Fatal("resumed DES sweep differs from baseline")
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer for watchdog output.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWatchdogDumpsOnStall arms a tiny watchdog window with no progress
// and requires a goroutine dump; stop() must be idempotent.
func TestWatchdogDumpsOnStall(t *testing.T) {
	t.Parallel()
	rc := testRC(0, 0)
	out := &lockedBuffer{}
	stop := rc.StartWatchdog(20*time.Millisecond, out)
	defer stop()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(out.String(), "goroutine") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "goroutine") {
		t.Fatal("watchdog never dumped goroutine stacks on a stalled run")
	}
	stop()
	stop() // idempotent
}

// TestNilRunControlIsInert: every RunControl method must be nil-safe with
// pre-supervision semantics, since library callers pass no supervisor.
func TestNilRunControlIsInert(t *testing.T) {
	t.Parallel()
	var rc *RunControl
	if rc.interrupted() != nil || rc.maxAttempts() != 1 || rc.journaling() {
		t.Fatal("nil RunControl is not inert")
	}
	rc.noteProgress()
	rc.noteRecovered()
	if rc.Progress() != 0 || rc.Recovered() != 0 || rc.Failures() != nil || rc.failedSet(1) != nil {
		t.Fatal("nil RunControl accumulated state")
	}
	cause := errors.New("x")
	if got := rc.absorbFailure(1, 0, 1, cause, true); got != cause {
		t.Fatalf("nil absorbFailure = %v, want the cause unchanged", got)
	}
	stop := rc.StartWatchdog(time.Second, &lockedBuffer{})
	stop()
	// And without a RunControl, protectCall must NOT recover: panics in
	// unsupervised engines crash loudly, exactly as before this layer
	// existed. (The engine runs workers on their own goroutines, so this
	// is asserted on protectCall itself rather than through the engine.)
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate without a RunControl")
		}
	}()
	_, _ = protectCall(nil, func() (int, error) {
		panic("must propagate")
	})
}
