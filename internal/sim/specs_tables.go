package sim

// Table I, Table II, and the messaging-complexity study of §V-B2.

import (
	"fmt"
	"math"

	"scalefree/internal/gen"
	"scalefree/internal/stats"
)

// Table1 verifies the diameter-scaling regimes of Table I empirically: the
// mean shortest-path distance d(N) is measured for each regime's canonical
// generator at several sizes, and the growth is compared against the
// predicted functional forms.
//
//	d ~ ln ln N   for 2 < gamma < 3 (CM, m >= 1)  — "ultra-small"
//	d ~ lnN/lnlnN for gamma = 3, m >= 2 (PA)
//	d ~ ln N      for gamma = 3, m = 1 (PA tree)
//	d ~ ln N      for gamma > 3 (CM)
//
// Each regime becomes a series of (N, measured d) points; Notes report the
// measured growth ratio d(N_max)/d(N_min) next to each prediction's ratio,
// which is how the ordering of regimes is checked.
func Table1(sc Scale, seed uint64) ([]Figure, error) {
	sizes := []int{sc.NSearch / 4, sc.NSearch, sc.NSearch * 4}
	regimes := []struct {
		label string
		ref   func(n float64) float64
		mk    func(n int) topoFactory
	}{
		{
			label: "gamma in (2,3), m>=1 (CM 2.2): d ~ lnlnN",
			ref:   func(n float64) float64 { return math.Log(math.Log(n)) },
			mk:    func(n int) topoFactory { return cmTopo(n, 2, gen.NoCutoff, 2.2) },
		},
		{
			label: "gamma=3, m>=2 (PA m=2): d ~ lnN/lnlnN",
			ref:   func(n float64) float64 { return math.Log(n) / math.Log(math.Log(n)) },
			mk:    func(n int) topoFactory { return paTopo(n, 2, gen.NoCutoff) },
		},
		{
			label: "gamma=3, m=1 (PA tree): d ~ lnN",
			ref:   func(n float64) float64 { return math.Log(n) },
			mk:    func(n int) topoFactory { return paTopo(n, 1, gen.NoCutoff) },
		},
		{
			label: "gamma>3 (CM 3.5, m=2): d ~ lnN",
			ref:   func(n float64) float64 { return math.Log(n) },
			mk:    func(n int) topoFactory { return cmTopo(n, 2, gen.NoCutoff, 3.5) },
		},
	}
	fig := Figure{
		ID:     "table1",
		Title:  "Table I: scale-free network diameter behavior (measured mean distance)",
		XLabel: "N", YLabel: "mean shortest-path distance", LogX: true,
	}
	pathPairs := sc.PathPairs
	if pathPairs == 0 {
		pathPairs = 2000
	}
	for ri, reg := range regimes {
		s := Series{Label: reg.label}
		// Lower-bound accounting for the landmark estimator: mean of the
		// per-realization triangle-inequality floors at the largest size.
		var loSum float64
		var loN int
		for _, n := range sizes {
			n := n
			means := make([]float64, sc.Realizations)
			lowers := make([]float64, sc.Realizations)
			err := forEachRealization(engineOpts{rc: sc.Run}, sc.Workers, sc.GenWorkers, sc.Realizations, seed+uint64(ri*1000+n), func(r int, b *builder) error {
				f, err := reg.mk(n)(r, b)
				if err != nil {
					return err
				}
				// Measure within the giant component: CM m=1-adjacent
				// regimes can have small detached parts. Both the giant
				// extraction and the distance sampling run on the CSR
				// snapshot (CM realizations never materialize a Graph).
				sub, _ := f.InducedFrozen(f.GiantComponent())
				if sc.PathLandmarks > 0 {
					// Landmark estimator (graph.LandmarkPathStats): L hub
					// BFS passes price pathPairs sampled pairs by triangle
					// inequality — O(L·(V+E)) instead of 40 full BFS
					// sweeps, which is what lets N=10⁶ into this table.
					ls := sub.LandmarkPathStats(minInt(sc.PathLandmarks, sub.N()), pathPairs, b.rng)
					means[r] = ls.MeanDistance
					lowers[r] = ls.MeanLowerBound
				} else {
					means[r] = sub.SamplePathStats(minInt(40, sub.N()), b.rng).MeanDistance
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("table1 %s N=%d: %w", reg.label, n, err)
			}
			if sc.PathLandmarks > 0 && n == sizes[len(sizes)-1] {
				loSum, loN = stats.Mean(lowers), 1
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: stats.Mean(means), Err: stats.StdDev(means)})
		}
		fig.Series = append(fig.Series, s)
		nLo, nHi := float64(sizes[0]), float64(sizes[len(sizes)-1])
		measured := s.Points[len(s.Points)-1].Y / s.Points[0].Y
		predicted := reg.ref(nHi) / reg.ref(nLo)
		fig.Notes += fmt.Sprintf("%s: growth measured %.2f vs predicted %.2f; ", reg.label, measured, predicted)
		if loN > 0 {
			fig.Notes += fmt.Sprintf("(landmark bracket at N=%d: [%.2f, %.2f]); ",
				sizes[len(sizes)-1], loSum, s.Points[len(s.Points)-1].Y)
		}
	}
	if sc.PathLandmarks > 0 {
		fig.Notes += fmt.Sprintf("distances estimated by hub routing over %d landmark BFS passes and %d sampled pairs per realization (upper bound; true mean within each bracket)", sc.PathLandmarks, pathPairs)
	}
	return []Figure{fig}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Table2 reproduces Table II: which mechanisms require global topology
// information at join time. The data is structural (a property of the
// algorithms); the experiment renders it and cross-checks that the
// implementations' declared locality matches the table.
func Table2(_ Scale, _ uint64) ([]Figure, error) {
	fig := Figure{
		ID:     "table2",
		Title:  "Table II: comparison of network generation procedures",
		XLabel: "procedure", YLabel: "usage of global information",
	}
	for _, m := range []gen.Model{gen.ModelPA, gen.ModelCM, gen.ModelHAPA, gen.ModelDAPA} {
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("%-5s -> %s", string(m), gen.ModelLocality[m]),
		})
	}
	fig.Notes = "PA and CM need the full degree table; HAPA walks existing links (partial); DAPA uses only the tau_sub-hop substrate horizon (none)."
	return []Figure{fig}, nil
}

// Messaging implements the §V-B2 messaging-complexity study, whose results
// were omitted from the paper for space. It measures the mean number of
// messages per search request for NF and RW (with the NF budget they are
// equal by construction, so RW is reported as messages per *distinct
// discovered node*, the granularity metric the section discusses):
//
//   - "In all cases, NF performs better than RW consistently" — fewer
//     messages per discovered node;
//   - "the difference ... diminishes as τ increases for weak
//     connectedness, i.e. m = 1";
//   - "the effect of hard cutoffs is negative in terms of messaging
//     complexity ... very minimal and negligible".
func Messaging(sc Scale, seed uint64) ([]Figure, error) {
	figMsgs := Figure{
		ID:     "messaging-per-request",
		Title:  "Messages per search request (NF) on PA topologies",
		XLabel: "tau", YLabel: "messages",
		LogY: true,
	}
	figEff := Figure{
		ID:     "messaging-per-hit",
		Title:  "Messages per discovered node: NF vs RW on PA topologies",
		XLabel: "tau", YLabel: "messages / hits",
	}
	for _, m := range []int{1, 3} {
		for _, kc := range []int{10, gen.NoCutoff} {
			factory := paTopo(sc.NSearch, m, kc)
			base := fmt.Sprintf("m=%d, %s", m, cutoffLabel(kc))
			cfg := sc.searchCfg(0, sc.MaxTTLNF, searchKMin(m))

			cfg.alg = algNF
			nfMsgs, err := messageSeries("NF "+base, factory, cfg, seed+uint64(m*100+kc))
			if err != nil {
				return nil, err
			}
			nfHits, err := searchSeries("NF "+base, factory, cfg, seed+uint64(m*100+kc))
			if err != nil {
				return nil, err
			}
			cfg.alg = algRW
			rwHits, err := searchSeries("RW "+base, factory, cfg, seed+uint64(m*100+kc))
			if err != nil {
				return nil, err
			}
			figMsgs.Series = append(figMsgs.Series, nfMsgs)
			figEff.Series = append(figEff.Series, perHit("NF "+base, nfMsgs, nfHits), perHit("RW "+base, nfMsgs, rwHits))
		}
	}
	return []Figure{figMsgs, figEff}, nil
}

// perHit divides a message series by a hits series pointwise.
func perHit(label string, msgs, hits Series) Series {
	out := Series{Label: label}
	for i := range msgs.Points {
		if i >= len(hits.Points) || hits.Points[i].Y == 0 {
			continue
		}
		out.Points = append(out.Points, Point{
			X: msgs.Points[i].X,
			Y: msgs.Points[i].Y / hits.Points[i].Y,
		})
	}
	return out
}
