package sim

// Spec-level pins for the DES mode (CI races these under -run '...DES...'):
// the schedule-invariance contract — DES figures are bit-for-bit identical
// for any (Workers, SourceShards, GenWorkers) — and the CSR equivalence
// gate lifted from the kernel level to the full pipeline: a zero-latency,
// lossless DES sweep reproduces the CSR sweep series exactly, sources,
// aggregation, and all.

import (
	"reflect"
	"testing"

	"scalefree/internal/des"
	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// desTinyScale sizes the schedule-invariance matrix: each spec runs once
// per scheduler setting, so it is smaller than tinyScale.
var desTinyScale = Scale{
	NSearch:      600,
	Realizations: 2,
	Sources:      3,
	MaxTTLFlood:  5,
	MaxTTLNF:     2,
}

// TestDESSpecsScheduleInvariant runs both DES specs under serial, automatic,
// and deliberately skewed scheduler settings and requires bit-identical
// figures — the (seed, realization, phase) / (seed, realization, source)
// determinism contract extended to the DES family.
func TestDESSpecsScheduleInvariant(t *testing.T) {
	t.Parallel()
	schedules := []struct {
		name                              string
		workers, sourceShards, genWorkers int
	}{
		{"serial", 1, 1, 1},
		{"auto", 0, 0, 0},
		{"skewed", 3, 2, 2},
	}
	for _, spec := range []struct {
		name string
		run  SpecFunc
	}{
		{"desflood", DESFlood},
		{"deskwalk", DESKWalk},
		{"desfail", DESFail},
	} {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			t.Parallel()
			var want []Figure
			for _, sched := range schedules {
				sc := desTinyScale
				sc.Workers, sc.SourceShards, sc.GenWorkers = sched.workers, sched.sourceShards, sched.genWorkers
				figs, err := spec.run(sc, 777)
				if err != nil {
					t.Fatalf("%s: %v", sched.name, err)
				}
				if want == nil {
					want = figs
					continue
				}
				if !reflect.DeepEqual(figs, want) {
					t.Errorf("%s: figures differ from serial run", sched.name)
				}
			}
		})
	}
}

// TestDESFloodSweepMatchesCSR pins the pipeline-level equivalence gate for
// floods: a zero-latency, lossless desSweep must reproduce searchSeries
// (hits) and messageSeries (messages) bit-for-bit — same topologies, same
// per-source streams, same aggregation.
func TestDESFloodSweepMatchesCSR(t *testing.T) {
	t.Parallel()
	const seed, maxTTL = 424242, 8
	factory := paTopo(800, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: maxTTL, sources: 5, realizations: 2}
	wantHits, err := searchSeries("fl", factory, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs, err := messageSeries("fl", factory, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := desSweep("destest", factory, cfg, 0, 0, seed, 2, maxTTL+1,
		func(sim *des.Sim, v desTopo, src int, rng *xrand.RNG) (des.Metrics, error) {
			return sim.Flood(v.f, src, des.Config{MaxTTL: maxTTL, Latency: v.lat}, rng)
		},
		func(m des.Metrics, rows [][]float64) {
			for h := 0; h <= maxTTL; h++ {
				rows[0][h] = float64(m.HitsWithin(h))
				rows[1][h] = float64(m.SentBelow(h))
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []Series{wantHits, wantMsgs} {
		got, err := aggregate("fl", curves[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("curve %d: DES sweep diverges from CSR sweep\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestDESKWalkSweepMatchesCSR is the same gate for k walkers: the DES sweep
// must match a CSR Scratch.KRandomWalks sweep run through the identical
// pipeline, source streams included.
func TestDESKWalkSweepMatchesCSR(t *testing.T) {
	t.Parallel()
	const seed, k, steps = 171717, 4, 25
	factory := paTopo(800, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: steps, sources: 5, realizations: 2}
	perSource := make([][]float64, cfg.realizations*cfg.sources)
	err := forEachRealizationPipeline(engineOpts{}, cfg.workers, cfg.sourceShards, cfg.genWorkers, cfg.realizations, seed,
		func(r int, b *builder) (*graph.Frozen, error) {
			return sweepTopo(factory, r, b)
		},
		func(r int, f *graph.Frozen, sw *sweeper) error {
			return sw.Sources(uint64(r), cfg.sources, func(_, s int, rng *xrand.RNG, scratch *search.Scratch) error {
				src := rng.Intn(f.N())
				res, err := scratch.KRandomWalks(f, src, k, steps, rng)
				if err != nil {
					return err
				}
				row := make([]float64, steps+1)
				for t := range row {
					row[t] = float64(res.HitsAt(t))
				}
				perSource[r*cfg.sources+s] = row
				return nil
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	want, err := aggregate("kw", meanRows(perSource, cfg.realizations, cfg.sources), 1)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := desSweep("destest", factory, cfg, 0, 0, seed, 1, steps+1,
		func(sim *des.Sim, v desTopo, src int, rng *xrand.RNG) (des.Metrics, error) {
			return sim.KWalk(v.f, src, k, steps, des.Config{Latency: v.lat}, rng)
		},
		func(m des.Metrics, rows [][]float64) {
			for h := 0; h <= steps; h++ {
				rows[0][h] = float64(m.HitsWithin(h))
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	got, err := aggregate("kw", curves[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DES k-walk sweep diverges from CSR sweep\n got: %+v\nwant: %+v", got, want)
	}
}
