package sim

import "testing"

func TestClaimsWellFormed(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Errorf("claim %+v incompletely defined", c.ID)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim ID %s", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d claims registered", len(seen))
	}
}

// TestCheckClaims runs every paper claim at findings scale and requires
// all of them to hold — the one-command verification behind
// `cmd/experiments -verify`. Claims marked as documented deviations must
// still run cleanly, but their Pass value is reported, not gated: the
// expected outcome is "not reproduced".
func TestCheckClaims(t *testing.T) {
	t.Parallel()
	results := CheckClaims(findScale, 555)
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: experiment error: %v", r.ID, r.Err)
			continue
		}
		if r.Deviation != "" {
			t.Logf("%s deviation (%s): %s", r.ID, r.Deviation, r.Detail)
			continue
		}
		if !r.Pass {
			t.Errorf("%s FAILED: %s [%s]", r.ID, r.Statement, r.Detail)
		} else {
			t.Logf("%s ok: %s", r.ID, r.Detail)
		}
	}
}

func TestExtensionClaimsWellFormed(t *testing.T) {
	t.Parallel()
	paper := map[string]bool{}
	for _, c := range Claims() {
		paper[c.ID] = true
	}
	ext := ExtensionClaims()
	if len(ext) != 4 {
		t.Fatalf("extension claims %d, want 4", len(ext))
	}
	for _, c := range ext {
		if c.ID == "" || c.Statement == "" || c.Check == nil {
			t.Errorf("claim %q incompletely defined", c.ID)
		}
		if paper[c.ID] {
			t.Errorf("extension claim %q collides with a paper claim", c.ID)
		}
	}
	if got := len(AllClaims()); got != len(Claims())+len(ext) {
		t.Fatalf("AllClaims length %d", got)
	}
}

// TestCheckExtensionClaims requires every extension claim to hold at
// findings scale, mirroring TestCheckClaims for the paper claims.
func TestCheckExtensionClaims(t *testing.T) {
	t.Parallel()
	claims := ExtensionClaims()
	for i, c := range claims {
		c := c
		seed := 555 + uint64(i)*7717
		t.Run(c.ID, func(t *testing.T) {
			t.Parallel()
			pass, detail, err := c.Check(findScale, seed)
			if err != nil {
				t.Fatalf("experiment error: %v", err)
			}
			if !pass {
				t.Errorf("FAILED: %s [%s]", c.Statement, detail)
			} else {
				t.Logf("ok: %s", detail)
			}
		})
	}
}
