// Package sim is the experiment harness that regenerates every table and
// figure in the paper's evaluation. Each artifact (Fig. 1a … Fig. 12,
// Table I, Table II, plus the messaging-complexity study of §V-B2) has a
// registered spec that builds the topologies, runs the searches, averages
// over realizations and sources, and returns plot-ready series.
//
// Scale is a knob: PaperScale reproduces the paper's parameters
// (N=10⁵ degree distributions, N=10⁴ search topologies, 10 realizations);
// SmokeScale shrinks everything so the full suite runs in seconds for CI
// and benchmarks. Shapes — who wins, crossover locations, exponent trends —
// are preserved at both scales; EXPERIMENTS.md records the comparison.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"scalefree/internal/des"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// Scale sets the size of every experiment.
type Scale struct {
	// NDegree is the node count for degree-distribution experiments
	// (paper: 10⁵).
	NDegree int
	// NSearch is the node count for search experiments (paper: 10⁴).
	NSearch int
	// NSubstrate is the DAPA substrate size (paper: 2·10⁴).
	NSubstrate int
	// NOverlay is the DAPA overlay target (paper: 10⁴).
	NOverlay int
	// Realizations is the number of independent networks averaged per
	// data point (paper: 10).
	Realizations int
	// Sources is the number of random search sources averaged per
	// topology.
	Sources int
	// MaxTTLFlood bounds τ for flooding experiments (paper: up to 20-30;
	// 100 for DAPA).
	MaxTTLFlood int
	// MaxTTLNF bounds τ for NF/RW experiments (paper: 10).
	MaxTTLNF int
	// Workers bounds how many realizations run concurrently; 0 (the
	// default) means GOMAXPROCS. Results are bit-for-bit identical for
	// every value: realization r's RNG stream is derived solely from
	// (seed, r), never from scheduling order.
	Workers int
	// SourceShards bounds how many sources of one realization are swept
	// concurrently against the shared frozen topology; 0 (the default)
	// sizes the shard pool automatically so that Workers × SourceShards
	// fills GOMAXPROCS without oversubscribing it (when realizations
	// already cover the cores, sweeps stay serial; when they don't — the
	// paper's 10 realizations on a big box — shards supply the missing
	// parallelism). Results are bit-for-bit identical for every
	// (Workers, SourceShards) combination: source s of realization r draws
	// from an RNG stream derived solely from (seed, r, s), and per-source
	// results land in per-index slots reduced in source order.
	SourceShards int
	// GenWorkers bounds the pipelined build stage: how many realizations
	// are generated and frozen concurrently ahead of the sweep, and — when
	// realizations are scarcer than the budget — how many goroutines a
	// single generator may use internally (chunked CM degree sampling, GRN
	// placement and radius queries, batched DAPA horizon floods). 0 (the
	// default) matches the resolved Workers (GOMAXPROCS or the explicit
	// value, before any realization-count cap, so scarce realizations get
	// intra-generator parallelism by default). Results are bit-for-bit
	// identical for every (Workers, SourceShards, GenWorkers) combination:
	// every build draws from xrand phase streams derived solely from
	// (seed, realization, phase), with fixed chunk boundaries, so neither
	// the pipeline schedule nor intra-generator parallelism can perturb a
	// topology. GenWorkers=1 still overlaps one build with the sweeps;
	// memory-bound runs can use it to cap in-flight snapshots.
	GenWorkers int
	// DESLatencyBase and DESLatencyJitter set the per-edge latency model of
	// the DES specs: each edge's delay is Base + Jitter·U(edge), with U
	// derived from the realization's phase streams. Both zero (the default)
	// selects Base=1, Jitter=1.
	DESLatencyBase, DESLatencyJitter float64
	// DESLoss, when positive, pins the DES specs to that single message
	// loss rate; zero sweeps the default series {0, 0.02, 0.10}.
	DESLoss float64
	// DESFailFrac, when positive, pins the desfail spec to that single
	// failure fraction; zero sweeps the default series {0, 0.10, 0.20,
	// 0.30}.
	DESFailFrac float64
	// DESFailMTBF sets the mean time before a selected element's
	// down-window starts in the desfail spec; zero selects the default of
	// 2 time units (mid-flight under the default unit-latency model).
	DESFailMTBF float64
	// BCPivots bounds the Brandes–Pich pivot sample behind the attack
	// spec's betweenness-attack series (batched: one pivot pass per
	// measurement step, nodes removed in descending estimated score). 0
	// selects metrics.DefaultBetweennessPivots (64); values >= N price
	// every step with exact Brandes. Like every estimator knob it changes
	// the published numbers, so it is pinned in the journal header.
	BCPivots int
	// PathLandmarks, when positive, switches table1's path-length
	// measurement from exact sampled-source BFS to the landmark estimator
	// (graph.LandmarkPathStats): that many hub BFS passes price
	// PathPairs sampled pairs by triangle inequality. Zero keeps the
	// exact measurement.
	PathLandmarks int
	// PathPairs is the number of sampled node pairs per realization for
	// the landmark estimator; 0 selects 2000.
	PathPairs int
	// WalkCap, when positive, caps the delivery spec's per-pair
	// random-walk budget at min(200·N, WalkCap) steps. Truncated walks
	// (budget exhausted before delivery) are excluded from the delivery-
	// time means and accounted explicitly in the figure notes. Zero keeps
	// the paper's uncapped 200·N budget.
	WalkCap int
	// Run supervises the realization engines: panic recovery, bounded
	// retries, failure budgets, checkpoint/resume via the journal, and
	// realization-boundary interruption. nil (the default) runs
	// unsupervised. Run NEVER affects the numbers — retries re-derive
	// pristine per-realization streams and replayed checkpoints are the
	// original bits — it only decides whether a run survives failures and
	// where it may stop.
	Run *RunControl
}

// PaperScale reproduces the paper's simulation parameters.
var PaperScale = Scale{
	NDegree:      100_000,
	NSearch:      10_000,
	NSubstrate:   20_000,
	NOverlay:     10_000,
	Realizations: 10,
	Sources:      50,
	MaxTTLFlood:  30,
	MaxTTLNF:     10,
}

// SmokeScale is a reduced configuration for CI and benchmarks; every
// qualitative trend survives at this size.
var SmokeScale = Scale{
	NDegree:      8_000,
	NSearch:      3_000,
	NSubstrate:   6_000,
	NOverlay:     3_000,
	Realizations: 3,
	Sources:      12,
	MaxTTLFlood:  20,
	MaxTTLNF:     8,
}

// XLScale pushes an order of magnitude past the paper: 10⁶-node degree
// distributions and 10⁵-node search topologies. It is sized for the
// CSR-frozen read path — each realization is frozen right after
// generation, so the search sweep holds only the flat offsets/neighbors
// arrays (~8 bytes per adjacency entry) instead of the generator's
// per-node slices plus edge map. Realizations are reduced to 3: at 10⁶
// nodes a single realization's degree distribution is already smooth.
// See EXPERIMENTS.md ("Scales" and "Performance model") for the memory
// arithmetic and the recommended per-experiment subsets.
var XLScale = Scale{
	NDegree:      1_000_000,
	NSearch:      100_000,
	NSubstrate:   200_000,
	NOverlay:     100_000,
	Realizations: 3,
	Sources:      20,
	MaxTTLFlood:  30,
	MaxTTLNF:     10,
	// Estimator budgets that let the superlinear specs (attack, table1,
	// delivery) cover the full registry at this size; see EXPERIMENTS.md
	// "Estimators & budgets".
	BCPivots:      64,
	PathLandmarks: 16,
	PathPairs:     2_000,
	WalkCap:       2_000_000,
}

// Figure is one regenerated paper artifact: a set of labeled series plus
// axis metadata, renderable as CSV or an ASCII log-log plot.
type Figure struct {
	// ID is the paper artifact identifier ("fig1a", "table1", ...). A
	// multi-panel paper figure yields one Figure per panel ("fig9d").
	ID string
	// Title describes the panel, matching the paper caption.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// LogX and LogY mark logarithmic axes, as in the paper's plots.
	LogX, LogY bool
	// Series are the labeled curves.
	Series []Series
	// Notes records fidelity caveats (e.g. reduced scale, known noise).
	Notes string
}

// Series is a labeled curve of a figure. It mirrors stats.Series but lives
// here so rendering code needs only this package.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y±err) sample.
type Point struct {
	X, Y, Err float64
}

// SpecFunc regenerates one paper artifact at the given scale. The seed
// makes the whole artifact reproducible.
type SpecFunc func(sc Scale, seed uint64) ([]Figure, error)

// Spec describes a registered experiment.
type Spec struct {
	// ID is the registry key ("fig6", "table1", ...).
	ID string
	// Paper names the artifact in the paper.
	Paper string
	// Description summarizes workload and parameters.
	Description string
	// Run regenerates the artifact.
	Run SpecFunc
	// Distributable marks specs whose every result flows through journaled
	// slot records — the prerequisite for coordinator/worker distribution
	// (internal/coord): a worker can run one realization and stream the
	// records back, and the coordinator's journal-driven reduction is
	// complete. Specs that reduce through raw engines (no journaling) run
	// locally even in coordinator mode.
	Distributable bool
}

// Registry returns all experiment specs in presentation order
// (figures first, then tables, then extensions).
func Registry() []Spec {
	return []Spec{
		{ID: "fig1a", Paper: "Fig. 1(a)", Description: "PA degree distributions, no cutoff, m=1..3", Run: Fig1a, Distributable: true},
		{ID: "fig1b", Paper: "Fig. 1(b)", Description: "PA degree distributions under hard cutoffs", Run: Fig1b, Distributable: true},
		{ID: "fig1c", Paper: "Fig. 1(c)", Description: "PA degree exponent vs hard cutoff", Run: Fig1c, Distributable: true},
		{ID: "fig2", Paper: "Fig. 2", Description: "CM degree distributions, gamma in {2.2,2.6,3.0}", Run: Fig2, Distributable: true},
		{ID: "fig3", Paper: "Fig. 3", Description: "HAPA degree distributions", Run: Fig3, Distributable: true},
		{ID: "fig4", Paper: "Fig. 4(a-f)", Description: "DAPA degree distributions vs tau_sub", Run: Fig4, Distributable: true},
		{ID: "fig4g", Paper: "Fig. 4(g)", Description: "DAPA degree exponent vs hard cutoff", Run: Fig4g, Distributable: true},
		{ID: "fig6", Paper: "Fig. 6", Description: "Flooding hits on PA and HAPA", Run: Fig6, Distributable: true},
		{ID: "fig7", Paper: "Fig. 7", Description: "Flooding hits on CM", Run: Fig7, Distributable: true},
		{ID: "fig8", Paper: "Fig. 8", Description: "Flooding hits on DAPA", Run: Fig8, Distributable: true},
		{ID: "fig9", Paper: "Fig. 9", Description: "Normalized flooding on PA, CM, HAPA", Run: Fig9, Distributable: true},
		{ID: "fig10", Paper: "Fig. 10", Description: "Normalized flooding on DAPA", Run: Fig10, Distributable: true},
		{ID: "fig11", Paper: "Fig. 11", Description: "Random walk (NF budget) on PA, CM, HAPA", Run: Fig11, Distributable: true},
		{ID: "fig12", Paper: "Fig. 12", Description: "Random walk (NF budget) on DAPA", Run: Fig12, Distributable: true},
		{ID: "table1", Paper: "Table I", Description: "Diameter scaling regimes of scale-free networks", Run: Table1},
		{ID: "table2", Paper: "Table II", Description: "Global-information usage of the four mechanisms", Run: Table2},
		{ID: "messaging", Paper: "§V-B2", Description: "Messaging complexity: NF vs RW (results omitted from the paper)", Run: Messaging, Distributable: true},
		{ID: "attack", Paper: "§III (ext)", Description: "Robust-yet-fragile: failures vs hub attacks, with and without cutoffs", Run: Attack},
		{ID: "delivery", Paper: "Eqs. 6-7 (ext)", Description: "Delivery-time scaling: FL ~ logN, RW ~ N^0.79", Run: Delivery},
		{ID: "kwalk", Paper: "§V-B1 (ext)", Description: "Multiple random walkers vs NF at equal message budget", Run: KWalk},
		{ID: "fairness", Paper: "§I (ext)", Description: "Load fairness: Gini and top-1% degree share vs hard cutoff", Run: Fairness},
		{ID: "strategies", Paper: "§II/§V-B (ext)", Description: "All search strategies (FL/NF/RW/k-walk/HDS/PF/hybrid) at equal message budget", Run: Strategies},
		{ID: "replication", Paper: "§II refs [22,23] (ext)", Description: "Cohen-Shenker replication strategies: ESS vs budget on PA overlays", Run: Replication},
		{ID: "churn", Paper: "§VI (ext)", Description: "Join/leave dynamics: repair vs no-repair under balanced churn with kc", Run: Churn},
		{ID: "desflood", Paper: "§V-A (DES ext)", Description: "Message-level DES flooding: coverage, latency-vs-hops, and message cost under per-edge latency and loss", Run: DESFlood, Distributable: true},
		{ID: "deskwalk", Paper: "§V-B1 (DES ext)", Description: "Message-level DES k-walkers: coverage vs steps under per-edge latency and loss", Run: DESKWalk, Distributable: true},
		{ID: "desfail", Paper: "§III/§V (DES ext)", Description: "Message-level DES robustness: flood and k-walk coverage under deterministic node-crash and link-partition schedules", Run: DESFail, Distributable: true},
	}
}

// Lookup returns the spec with the given ID.
func Lookup(id string) (Spec, error) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("sim: unknown experiment %q", id)
}

// The experiment engine — the three-stage build/sweep pipeline
// (forEachRealizationPipeline), the build-only pool (forEachRealization),
// and the standalone sweep pool (withSweeper) — lives in pipeline.go.

// sweeper is one sweep worker's source-sweep pool: a fixed set of shard
// scratches reused across every realization the worker processes, so the
// search kernels stay allocation-free no matter how work is scheduled.
// A sweeper belongs to its worker goroutine; Sources may be called any
// number of times per realization (one call per sub-experiment).
type sweeper struct {
	seed      uint64
	shards    int
	scratches []*search.Scratch
	sims      []*des.Sim
}

// newSweeper builds a sweeper with `shards` scratches (the engine resolves
// automatic sizing before construction; <=1 means serial sweeps).
// Scratches start empty and grow on first use.
func newSweeper(seed uint64, shards int) *sweeper {
	if shards < 1 {
		shards = 1
	}
	sw := &sweeper{seed: seed, shards: shards, scratches: make([]*search.Scratch, shards), sims: make([]*des.Sim, shards)}
	for i := range sw.scratches {
		sw.scratches[i] = search.NewScratch(0)
	}
	return sw
}

// Sim returns the shard's pooled DES simulator, created on first use so
// non-DES specs pay nothing. Each shard index is owned by exactly one
// goroutine for the duration of a Sources call, so lazy init is race-free.
func (sw *sweeper) Sim(shard int) *des.Sim {
	if sw.sims[shard] == nil {
		sw.sims[shard] = des.NewSim(0)
	}
	return sw.sims[shard]
}

// Sources enumerates the (source, stream) pairs of one sweep and runs
// query for s = 0..sources-1 across the sweeper's shard pool, the calling
// goroutine acting as shard 0. Each query receives the RNG stream
// NewStream(seed, stream, s) — derived solely from those three values, so
// neither shard count nor scheduling order can perturb it — and the shard's
// scratch. `stream` names the sweep (realization index for single-sweep
// specs; any collision-free tag when a spec sweeps several times per
// realization).
//
// query must deposit results into per-s slots, or into per-shard integer
// accumulators whose merge is order-independent; anything else breaks the
// bit-for-bit contract. The lowest-index error wins, as in the outer pool.
func (sw *sweeper) Sources(stream uint64, sources int, query func(shard, s int, rng *xrand.RNG, scratch *search.Scratch) error) error {
	if sources <= 0 {
		return nil
	}
	shards := sw.shards
	if shards > sources {
		shards = sources
	}
	if shards <= 1 {
		for s := 0; s < sources; s++ {
			if err := query(0, s, xrand.NewStream(sw.seed, stream, uint64(s)), sw.scratches[0]); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, sources)
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func(shard int) {
		scratch := sw.scratches[shard]
		for {
			s := int(next.Add(1)) - 1
			if s >= sources {
				return
			}
			errs[s] = query(shard, s, xrand.NewStream(sw.seed, stream, uint64(s)), scratch)
		}
	}
	wg.Add(shards - 1)
	for sh := 1; sh < shards; sh++ {
		go func(sh int) {
			defer wg.Done()
			work(sh)
		}(sh)
	}
	work(0)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
