package sim

import "testing"

// TestReplicationSpec verifies the extension experiment's structure and
// its two qualitative laws: more budget lowers ESS for every strategy, and
// square-root allocation beats proportional at every budget (Cohen &
// Shenker's theorem; sqrt vs uniform can be noisy at tiny scale, so the
// stronger sqrt<proportional ordering on a skewed catalog is asserted).
func TestReplicationSpec(t *testing.T) {
	t.Parallel()
	figs, err := Replication(tinyScale, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("want 2 panels, got %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 3 {
			t.Fatalf("%s: want 3 series, got %d", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Points) != 4 {
				t.Fatalf("%s/%s: want 4 budget points, got %d", f.ID, s.Label, len(s.Points))
			}
			if first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y; last >= first {
				t.Errorf("%s/%s: ESS should fall with budget: %v -> %v", f.ID, s.Label, first, last)
			}
		}
		sqrtS, propS := f.Series[2], f.Series[1]
		if sqrtS.Label != "square-root" || propS.Label != "proportional" {
			t.Fatalf("%s: unexpected series order %q, %q", f.ID, propS.Label, sqrtS.Label)
		}
		var sqrtSum, propSum float64
		for i := range sqrtS.Points {
			sqrtSum += sqrtS.Points[i].Y
			propSum += propS.Points[i].Y
		}
		if sqrtSum >= propSum {
			t.Errorf("%s: sqrt mean ESS %v should beat proportional %v", f.ID, sqrtSum/4, propSum/4)
		}
	}
}
