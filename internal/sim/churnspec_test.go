package sim

import "testing"

// TestChurnSpec verifies the §VI extension: two panels (giant fraction and
// NF hits over churn events), repair tracking at least as well as
// no-repair on both health axes by the end of the run.
func TestChurnSpec(t *testing.T) {
	t.Parallel()
	figs, err := Churn(tinyScale, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("want 2 panels, got %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Fatalf("%s: want repair + no-repair series, got %d", f.ID, len(f.Series))
		}
		if f.Series[0].Label != "reconnect" || f.Series[1].Label != "no-repair" {
			t.Fatalf("%s: unexpected series order %q, %q", f.ID, f.Series[0].Label, f.Series[1].Label)
		}
		if f.Notes == "" {
			t.Errorf("%s: expected messaging-cost notes", f.ID)
		}
	}
	last := func(s Series) float64 { return s.Points[len(s.Points)-1].Y }
	giant := figs[0]
	if last(giant.Series[0]) < last(giant.Series[1]) {
		t.Errorf("repair should preserve the giant component at least as well: %v vs %v",
			last(giant.Series[0]), last(giant.Series[1]))
	}
	if last(giant.Series[0]) < 0.9 {
		t.Errorf("repaired overlay should stay nearly connected: %v", last(giant.Series[0]))
	}
}
