package sim

// Tests for the distributed-run surface (ISSUE 10 groundwork): the slot
// record wire codec, first-writer-wins Accept, completion markers that
// survive resume, worker-restricted runs whose sink records are
// bit-identical to a local run's journal records, and the read-only
// journal inspector behind `analyze journal`.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"scalefree/internal/gen"
)

func TestSlotRecordCodecRoundTrip(t *testing.T) {
	t.Parallel()
	rec := SlotRecord{Kind: recSweepSlots, Stream: 0xdeadbeef, Sub: 42, Realization: 7,
		Payload: encodeRowBlock([][]float64{{1.5, -0.0, 5e-324}}, 3)}
	b := rec.MarshalBinary()
	got, err := DecodeSlotRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip = %+v, want %+v", got, rec)
	}
	// A flipped payload bit must fail the CRC.
	corrupt := append([]byte{}, b...)
	corrupt[len(corrupt)-1] ^= 1
	if _, err := DecodeSlotRecord(corrupt); err == nil {
		t.Fatal("corrupt record decoded")
	}
	// A truncated frame must fail, not decode a prefix.
	if _, err := DecodeSlotRecord(b[:len(b)-3]); err == nil {
		t.Fatal("truncated record decoded")
	}
	// Trailing garbage after a valid frame must be rejected.
	if _, err := DecodeSlotRecord(append(append([]byte{}, b...), 0xff)); err == nil {
		t.Fatal("record with trailing bytes decoded")
	}
}

func TestJournalAcceptFirstWriterWins(t *testing.T) {
	t.Parallel()
	sc := testScaleTiny()
	path := filepath.Join(t.TempDir(), "a.journal")
	j, err := OpenJournal(path, "fig9", 2007, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := SlotRecord{Kind: recSweepSlots, Stream: 3, Sub: 9, Realization: 1,
		Payload: encodeRowBlock([][]float64{{1, 2}}, 2)}
	if fresh, err := j.Accept(rec); err != nil || !fresh {
		t.Fatalf("first Accept = (%v, %v), want (true, nil)", fresh, err)
	}
	// The late duplicate — a slow stolen-from worker re-sending — drops.
	dup := rec
	dup.Payload = encodeRowBlock([][]float64{{99, 99}}, 2)
	if fresh, err := j.Accept(dup); err != nil || fresh {
		t.Fatalf("duplicate Accept = (%v, %v), want (false, nil)", fresh, err)
	}
	if got := j.RecordCount(1); got != 1 {
		t.Fatalf("RecordCount(1) = %d, want 1", got)
	}
	// Bookkeeping kinds must not ride Accept.
	if _, err := j.Accept(SlotRecord{Kind: recRealDone, Realization: 0, Payload: []byte{1}}); err == nil {
		t.Fatal("Accept of a non-slot kind succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The accepted bits — not the duplicate's — survive resume, and a
	// restarted coordinator's Accept dedups against the resumed set too.
	j2, err := OpenJournal(path, "fig9", 2007, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	p, ok := j2.resumed[journalKey{kind: recSweepSlots, stream: 3, sub: 9, r: 1}]
	if !ok || !bytes.Equal(p, rec.Payload) {
		t.Fatal("accepted record did not survive resume intact")
	}
	if got := j2.RecordCount(1); got != 1 {
		t.Fatalf("resumed RecordCount(1) = %d, want 1", got)
	}
	if fresh, err := j2.Accept(rec); err != nil || fresh {
		t.Fatalf("post-resume duplicate Accept = (%v, %v), want (false, nil)", fresh, err)
	}
}

func TestMarkRealizationDoneSurvivesResume(t *testing.T) {
	t.Parallel()
	sc := testScaleTiny()
	path := filepath.Join(t.TempDir(), "d.journal")
	j, err := OpenJournal(path, "fig9", 2007, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 2, 2} { // idempotent on the repeat
		if err := j.MarkRealizationDone(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.DoneRealizations(); !reflect.DeepEqual(got, map[int]bool{0: true, 2: true}) {
		t.Fatalf("DoneRealizations() = %v", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, "fig9", 2007, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.DoneRealizations(); !reflect.DeepEqual(got, map[int]bool{0: true, 2: true}) {
		t.Fatalf("resumed DoneRealizations() = %v", got)
	}
}

// TestWorkerSinkRecordsBitIdentical is the distribution contract at the
// sim level: a worker-restricted run of a sweep — realization r only,
// records to a sink — must emit exactly the records a local journaled run
// writes for r, byte for byte, and must not build any other realization.
func TestWorkerSinkRecordsBitIdentical(t *testing.T) {
	sc := testScaleTiny()
	const seed, label = 2007, "fl"
	factory := paTopo(sc.NSearch, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: sc.MaxTTLFlood, sources: sc.Sources, realizations: sc.Realizations}

	// Local journaled run: the reference records.
	path := filepath.Join(t.TempDir(), "ref.journal")
	j, err := OpenJournal(path, "fig", seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	jcfg := cfg
	jcfg.run = NewRunControl(context.Background(), 0, 0, j)
	if _, err := searchSeries(label, factory, jcfg, seed); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen to load the written records (appends don't populate resumed).
	ref, err := OpenJournal(path, "fig", seed, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for r := 0; r < sc.Realizations; r++ {
		var mu sync.Mutex
		var got []SlotRecord
		var builds atomic.Int64
		wcfg := cfg
		wcfg.run = NewWorkerRunControl(context.Background(), 0, r, func(rec SlotRecord) {
			mu.Lock()
			got = append(got, rec)
			mu.Unlock()
		})
		// The restricted run's own reduction only sees realization r; the
		// records are the product, the figure is not.
		if _, err := searchSeries(label, countingFactory(factory, &builds), wcfg, seed); err != nil {
			t.Fatalf("worker run r=%d: %v", r, err)
		}
		if builds.Load() != 1 {
			t.Fatalf("worker for r=%d built %d topologies, want 1", r, builds.Load())
		}
		if len(got) != 1 {
			t.Fatalf("worker for r=%d emitted %d records, want 1", r, len(got))
		}
		rec := got[0]
		if rec.Realization != r || rec.Kind != recSweepSlots {
			t.Fatalf("worker for r=%d emitted %s", r, rec.Key())
		}
		want, ok := ref.resumed[journalKey{kind: rec.Kind, stream: rec.Stream, sub: rec.Sub, r: r}]
		if !ok {
			t.Fatalf("no local record under %s", rec.Key())
		}
		if !bytes.Equal(rec.Payload, want) {
			t.Fatalf("worker record for r=%d differs from local journal record", r)
		}
		// And the wire round trip preserves the bits.
		back, err := DecodeSlotRecord(rec.MarshalBinary())
		if err != nil || !bytes.Equal(back.Payload, want) {
			t.Fatalf("wire round trip perturbed r=%d (err=%v)", r, err)
		}
	}
}

// Same contract for the histogram records of the degree specs, which run
// on the build-only engine.
func TestWorkerSinkHistogramBitIdentical(t *testing.T) {
	sc := testScaleTiny()
	const seed = 99
	factory := paTopo(sc.NDegree, 2, gen.NoCutoff)

	path := filepath.Join(t.TempDir(), "deg.journal")
	j, err := OpenJournal(path, "fig1a", seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	jsc := sc
	jsc.Run = NewRunControl(context.Background(), 0, 0, j)
	if _, err := mergedDegreeDist("tag", factory, jsc, seed); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	refJ, err := OpenJournal(path, "fig1a", seed, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	defer refJ.Close()

	const r = 1
	var mu sync.Mutex
	var got []SlotRecord
	wsc := sc
	wsc.Run = NewWorkerRunControl(context.Background(), 0, r, func(rec SlotRecord) {
		mu.Lock()
		got = append(got, rec)
		mu.Unlock()
	})
	if _, err := mergedDegreeDist("tag", factory, wsc, seed); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("worker emitted %d records, want 1", len(got))
	}
	rec := got[0]
	want, ok := refJ.resumed[journalKey{kind: rec.Kind, stream: rec.Stream, sub: rec.Sub, r: r}]
	if !ok || !bytes.Equal(rec.Payload, want) {
		t.Fatalf("worker histogram record differs from local journal record (found=%v)", ok)
	}
}

func TestInspectJournal(t *testing.T) {
	t.Parallel()
	sc := testScaleTiny()
	path := filepath.Join(t.TempDir(), "i.journal")
	j, err := OpenJournal(path, "fig9", 2007, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Accept(SlotRecord{Kind: recSweepSlots, Stream: 5, Sub: 6, Realization: 0,
		Payload: encodeRowBlock([][]float64{{1}}, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := j.MarkRealizationDone(0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := InspectJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Spec != "fig9" || clean.Seed != 2007 || clean.Version != journalVersion {
		t.Fatalf("header = %q/%d/v%d", clean.Spec, clean.Seed, clean.Version)
	}
	if len(clean.Records) != 1 || clean.Records[0].Realization != 0 || clean.Records[0].KindName != "sweep-slots" {
		t.Fatalf("records = %+v", clean.Records)
	}
	if !reflect.DeepEqual(clean.Done, []int{0}) {
		t.Fatalf("done = %v", clean.Done)
	}
	if clean.TornBytes() != 0 {
		t.Fatalf("clean journal reports %d torn bytes", clean.TornBytes())
	}

	// Smear a torn tail on: inspection must report it without mutating.
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644); err != nil {
		t.Fatal(err)
	} else {
		f.Write([]byte("torn tail bytes"))
		f.Close()
	}
	torn, err := InspectJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn.TornBytes() != int64(len("torn tail bytes")) {
		t.Fatalf("TornBytes() = %d, want %d", torn.TornBytes(), len("torn tail bytes"))
	}
	if torn.GoodBytes != clean.GoodBytes || len(torn.Records) != 1 {
		t.Fatal("torn-tail inspection changed the clean-prefix report")
	}
	if st, err := os.Stat(path); err != nil || st.Size() != torn.FileBytes {
		t.Fatal("InspectJournal mutated the file")
	}
}

func TestWorkloadFingerprint(t *testing.T) {
	t.Parallel()
	sc := testScaleTiny()
	base := WorkloadFingerprint("fig9", 2007, sc)
	// Scheduler knobs must not perturb the fingerprint (a worker may run
	// with different parallelism than the coordinator).
	knobs := sc
	knobs.Workers, knobs.SourceShards, knobs.GenWorkers = 7, 3, 2
	if !bytes.Equal(base, WorkloadFingerprint("fig9", 2007, knobs)) {
		t.Fatal("scheduler knobs perturbed the fingerprint")
	}
	if !bytes.Equal(base, WorkloadFingerprint("fig9", 2007, sc.WorkloadOnly())) {
		t.Fatal("WorkloadOnly perturbed the fingerprint")
	}
	// Workload changes must.
	diff := sc
	diff.NSearch++
	if bytes.Equal(base, WorkloadFingerprint("fig9", 2007, diff)) {
		t.Fatal("workload change did not perturb the fingerprint")
	}
	if bytes.Equal(base, WorkloadFingerprint("fig10", 2007, sc)) {
		t.Fatal("spec change did not perturb the fingerprint")
	}
	if bytes.Equal(base, WorkloadFingerprint("fig9", 2008, sc)) {
		t.Fatal("seed change did not perturb the fingerprint")
	}
}
