package sim

// Extension experiments beyond the paper's evaluation section, each tied
// to a claim in the paper's text:
//
//   - Attack: §III's "robust yet fragile" motivation — hard cutoffs remove
//     the super-hubs targeted attacks decapitate, so they should improve
//     attack tolerance. (The paper motivates cutoffs partly by this but
//     never measures it.)
//   - Delivery: Eqs. 6-7 — flooding delivery time T_N = log N; random-walk
//     delivery time T_N ~ N^0.79 on γ≈2.1 networks.
//   - KWalk: §V-B1's conjecture that "multiple RWs would perform more
//     similar to NF" at the same message budget.

import (
	"fmt"
	"math"
	"strings"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/metrics"
	"scalefree/internal/search"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

// Attack measures giant-component survival under random failures vs
// targeted hub attacks, on PA topologies with and without a hard cutoff.
func Attack(sc Scale, seed uint64) ([]Figure, error) {
	fig := Figure{
		ID:     "attack",
		Title:  "Robustness: giant component vs removed fraction (PA, m=2)",
		XLabel: "fraction removed", YLabel: "giant component fraction",
		Notes: "hard cutoffs blunt targeted attacks by removing super-hubs",
	}
	for _, kc := range []int{gen.NoCutoff, 10} {
		for _, strat := range []metrics.RemovalStrategy{metrics.RemoveRandom, metrics.RemoveHighestDegree} {
			strat := strat
			label := fmt.Sprintf("%s, %s", cutoffLabel(kc), strat)
			curves := make([][]float64, sc.Realizations)
			var xs []float64
			err := forEachRealization(engineOpts{rc: sc.Run}, sc.Workers, sc.GenWorkers, sc.Realizations, seed+uint64(kc)*31+uint64(strat), func(r int, b *builder) error {
				g, _, err := gen.PABuild(gen.PAConfig{N: sc.NSearch, M: 2, KC: kc}, b.gen())
				if err != nil {
					return err
				}
				pts, err := metrics.Robustness(g, strat, 0.02, 0.4, b.rng)
				if err != nil {
					return err
				}
				row := make([]float64, len(pts))
				for i, p := range pts {
					row[i] = p.GiantFrac
				}
				curves[r] = row
				if r == 0 {
					xs = make([]float64, len(pts))
					for i, p := range pts {
						xs[i] = p.RemovedFrac
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("attack %s: %w", label, err)
			}
			// Realizations share the removal schedule (same N, same step),
			// so rows align.
			minLen := len(curves[0])
			for _, row := range curves {
				if len(row) < minLen {
					minLen = len(row)
				}
			}
			s := Series{Label: label}
			col := make([]float64, len(curves))
			for i := 0; i < minLen; i++ {
				for r := range curves {
					col[r] = curves[r][i]
				}
				s.Points = append(s.Points, Point{X: xs[i], Y: stats.Mean(col), Err: stats.StdDev(col)})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	// Betweenness attack — the strongest variant, feasible at scale only
	// through the batched Brandes–Pich estimator: one pivot-sampled pass
	// per measurement step prices every node, the step's removals follow
	// the estimated scores, and each step's mean standard error is
	// published as its own series (the estimator's uncertainty column).
	pivots := sc.BCPivots
	if pivots == 0 {
		pivots = metrics.DefaultBetweennessPivots
	}
	for _, kc := range []int{gen.NoCutoff, 10} {
		strat := metrics.RemoveHighestBetweenness
		label := fmt.Sprintf("%s, %s (batched, %d pivots)", cutoffLabel(kc), strat, pivots)
		curves := make([][]float64, sc.Realizations)
		seCurves := make([][]float64, sc.Realizations)
		var xs, seXs []float64
		err := forEachRealization(engineOpts{rc: sc.Run}, sc.Workers, sc.GenWorkers, sc.Realizations, seed+uint64(kc)*31+uint64(strat), func(r int, b *builder) error {
			g, _, err := gen.PABuild(gen.PAConfig{N: sc.NSearch, M: 2, KC: kc}, b.gen())
			if err != nil {
				return err
			}
			pts, steps, err := metrics.RobustnessWith(g, metrics.RobustnessConfig{
				Strategy: strat, StepFrac: 0.02, MaxFrac: 0.4,
				BetweennessPivots: pivots, BatchedBetweenness: true,
			}, b.rng)
			if err != nil {
				return err
			}
			row := make([]float64, len(pts))
			for i, p := range pts {
				row[i] = p.GiantFrac
			}
			curves[r] = row
			seRow := make([]float64, len(steps))
			for i, s := range steps {
				seRow[i] = s.MeanSE
			}
			seCurves[r] = seRow
			if r == 0 {
				xs = make([]float64, len(pts))
				for i, p := range pts {
					xs[i] = p.RemovedFrac
				}
				seXs = make([]float64, len(steps))
				for i, s := range steps {
					seXs[i] = s.RemovedFrac
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("attack %s: %w", label, err)
		}
		appendMeanSeries := func(label string, xs []float64, curves [][]float64) {
			minLen := len(curves[0])
			for _, row := range curves {
				if len(row) < minLen {
					minLen = len(row)
				}
			}
			s := Series{Label: label}
			col := make([]float64, len(curves))
			for i := 0; i < minLen; i++ {
				for r := range curves {
					col[r] = curves[r][i]
				}
				s.Points = append(s.Points, Point{X: xs[i], Y: stats.Mean(col), Err: stats.StdDev(col)})
			}
			fig.Series = append(fig.Series, s)
		}
		appendMeanSeries(label, xs, curves)
		appendMeanSeries(fmt.Sprintf("%s, %s stderr (removed nodes)", cutoffLabel(kc), strat), seXs, seCurves)
	}
	fig.Notes += fmt.Sprintf("; betweenness series use batched Brandes-Pich estimates (%d pivots, scores scaled N/pivots, recomputed once per 2%% step) with per-step mean stderr of the removed nodes' scores reported as the stderr series", pivots)
	return []Figure{fig}, nil
}

// Delivery measures mean delivery time vs network size for flooding and
// random walks on γ=2.2 CM giants, checking the functional forms of
// Eqs. 6 and 7. The fitted RW scaling exponent is recorded in Notes
// (Adamic et al. predict ~0.79 at γ=2.1).
func Delivery(sc Scale, seed uint64) ([]Figure, error) {
	sizes := []int{sc.NSearch / 4, sc.NSearch / 2, sc.NSearch, sc.NSearch * 2}
	fig := Figure{
		ID:     "delivery",
		Title:  "Delivery time vs N (CM gamma=2.2): FL ~ logN, RW ~ N^0.79",
		XLabel: "N", YLabel: "mean delivery time", LogX: true, LogY: true,
	}
	flSeries := Series{Label: "FL (shortest path)"}
	rwSeries := Series{Label: "RW (first arrival)"}
	var truncNotes []string
	for si, n := range sizes {
		pairs := sc.Sources
		flTimes := make([]int, sc.Realizations*pairs)
		flFound := make([]bool, sc.Realizations*pairs)
		rwTimes := make([]int, sc.Realizations*pairs)
		rwFound := make([]bool, sc.Realizations*pairs)
		rwTried := make([]bool, sc.Realizations*pairs)
		// The paper's budget is 200·N steps per pair; WalkCap bounds it so
		// xl sizes stay linear-time. A capped walk that never delivers is
		// a truncation: excluded from the mean, counted in the notes.
		budget := 200 * n
		if sc.WalkCap > 0 && budget > sc.WalkCap {
			budget = sc.WalkCap
		}
		err := forEachRealizationPipeline(engineOpts{rc: sc.Run}, sc.Workers, sc.SourceShards, sc.GenWorkers, sc.Realizations, seed+uint64(si)*977, func(r int, b *builder) (*graph.Frozen, error) {
			f, _, err := gen.CMFrozen(gen.CMConfig{N: n, M: 2, Gamma: 2.2}, b.gen())
			if err != nil {
				return nil, err
			}
			// CSR end to end: the CM realization is built straight into
			// frozen form and the giant component is carved out of it with
			// InducedFrozen (byte-identical to the old mutable-Graph
			// InducedSubgraph+FreezeSorted detour). One sweep-ready
			// snapshot serves every delivery pair.
			fsub, _ := f.InducedFrozen(f.GiantComponent())
			return fsub, nil
		}, func(r int, fsub *graph.Frozen, sw *sweeper) error {
			return sw.Sources(uint64(r), pairs, func(_, i int, rng *xrand.RNG, scratch *search.Scratch) error {
				src, dst := rng.Intn(fsub.N()), rng.Intn(fsub.N())
				if src == dst {
					return nil // slot stays not-found, as the serial skip did
				}
				fd, err := scratch.FloodDelivery(fsub, src, dst, 60)
				if err != nil {
					return err
				}
				if fd.Found {
					flTimes[r*pairs+i], flFound[r*pairs+i] = fd.Time, true
				}
				rwTried[r*pairs+i] = true
				rd, err := search.RandomWalkDelivery(fsub, src, dst, budget, rng)
				if err != nil {
					return err
				}
				if rd.Found {
					rwTimes[r*pairs+i], rwFound[r*pairs+i] = rd.Time, true
				}
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		flMeans := make([]float64, sc.Realizations)
		rwMeans := make([]float64, sc.Realizations)
		for r := 0; r < sc.Realizations; r++ {
			var flSum, rwSum float64
			flN, rwN := 0, 0
			for i := 0; i < pairs; i++ {
				if flFound[r*pairs+i] {
					flSum += float64(flTimes[r*pairs+i])
					flN++
				}
				if rwFound[r*pairs+i] {
					rwSum += float64(rwTimes[r*pairs+i])
					rwN++
				}
			}
			if flN == 0 || rwN == 0 {
				return nil, fmt.Errorf("no deliveries at n=%d", n)
			}
			flMeans[r] = flSum / float64(flN)
			rwMeans[r] = rwSum / float64(rwN)
		}
		if sc.WalkCap > 0 {
			tried, trunc := 0, 0
			for i := range rwTried {
				if rwTried[i] {
					tried++
					if !rwFound[i] {
						trunc++
					}
				}
			}
			if trunc > 0 {
				truncNotes = append(truncNotes, fmt.Sprintf("N=%d: %d/%d walks truncated at %d steps", n, trunc, tried, budget))
			}
		}
		flSeries.Points = append(flSeries.Points, Point{X: float64(n), Y: stats.Mean(flMeans), Err: stats.StdDev(flMeans)})
		rwSeries.Points = append(rwSeries.Points, Point{X: float64(n), Y: stats.Mean(rwMeans), Err: stats.StdDev(rwMeans)})
	}
	fig.Series = []Series{flSeries, rwSeries}

	// Fit RW scaling exponent: slope of log T vs log N.
	var xs, ys []float64
	for _, p := range rwSeries.Points {
		if p.Y > 0 {
			xs = append(xs, math.Log(p.X))
			ys = append(ys, math.Log(p.Y))
		}
	}
	if len(xs) >= 2 {
		slope := (ys[len(ys)-1] - ys[0]) / (xs[len(xs)-1] - xs[0])
		fig.Notes = fmt.Sprintf("RW scaling exponent measured %.2f (Eq. 7 predicts 0.79 at gamma=2.1); FL grows ~logN", slope)
	}
	if sc.WalkCap > 0 {
		note := fmt.Sprintf("RW budget capped at min(200*N, %d) steps per pair", sc.WalkCap)
		if len(truncNotes) > 0 {
			note += "; truncated walks excluded from means: " + strings.Join(truncNotes, ", ")
		} else {
			note += "; no walks truncated"
		}
		if fig.Notes != "" {
			fig.Notes += "; "
		}
		fig.Notes += note
	}
	return []Figure{fig}, nil
}

// KWalk compares NF, a single NF-budget walk, and k parallel walkers at
// the same total message budget — quantifying §V-B1's "multiple RWs would
// perform more similar to NF".
func KWalk(sc Scale, seed uint64) ([]Figure, error) {
	fig := Figure{
		ID:     "kwalk",
		Title:  "Multiple random walkers vs NF at equal message budget (PA, m=2, kc=40)",
		XLabel: "tau", YLabel: "number of hits",
	}
	const kWalkers = 8
	factory := paTopo(sc.NSearch, 2, 40)
	variants := []struct {
		label string
		run   func(scratch *search.Scratch, f *graph.Frozen, src int, rng *xrand.RNG) ([]float64, error)
	}{
		{"NF", func(scratch *search.Scratch, f *graph.Frozen, src int, rng *xrand.RNG) ([]float64, error) {
			res, err := scratch.NormalizedFlood(f, src, sc.MaxTTLNF, 2, rng)
			if err != nil {
				return nil, err
			}
			return hitsPerTau(res, sc.MaxTTLNF), nil
		}},
		{"1 walker (NF budget)", func(scratch *search.Scratch, f *graph.Frozen, src int, rng *xrand.RNG) ([]float64, error) {
			rw, nf, err := scratch.RandomWalkWithNFBudget(f, src, sc.MaxTTLNF, 2, rng)
			if err != nil {
				return nil, err
			}
			_ = nf
			return hitsPerTau(rw, sc.MaxTTLNF), nil
		}},
		{fmt.Sprintf("%d walkers (NF budget)", kWalkers), func(scratch *search.Scratch, f *graph.Frozen, src int, rng *xrand.RNG) ([]float64, error) {
			nf, err := scratch.NormalizedFlood(f, src, sc.MaxTTLNF, 2, rng)
			if err != nil {
				return nil, err
			}
			// Copy the NF budget curve out: the walker call below recycles
			// the scratch buffers nf aliases.
			msgs := make([]int, sc.MaxTTLNF+1)
			for t := range msgs {
				msgs[t] = nf.MessagesAt(t)
			}
			steps := msgs[sc.MaxTTLNF] / kWalkers
			if steps < 1 {
				steps = 1
			}
			kw, err := scratch.KRandomWalks(f, src, kWalkers, steps, rng)
			if err != nil {
				return nil, err
			}
			out := make([]float64, sc.MaxTTLNF+1)
			for t := 0; t <= sc.MaxTTLNF; t++ {
				out[t] = float64(kw.HitsAt(msgs[t] / kWalkers))
			}
			return out, nil
		}},
	}
	for vi, v := range variants {
		v := v
		perSource := make([][]float64, sc.Realizations*sc.Sources)
		err := forEachRealizationPipeline(engineOpts{rc: sc.Run}, sc.Workers, sc.SourceShards, sc.GenWorkers, sc.Realizations, seed+uint64(vi)*4099, func(r int, b *builder) (*graph.Frozen, error) {
			return sweepTopo(factory, r, b)
		}, func(r int, f *graph.Frozen, sw *sweeper) error {
			return sw.Sources(uint64(r), sc.Sources, func(_, s int, rng *xrand.RNG, scratch *search.Scratch) error {
				row, err := v.run(scratch, f, rng.Intn(f.N()), rng)
				if err != nil {
					return err
				}
				perSource[r*sc.Sources+s] = row
				return nil
			})
		})
		if err != nil {
			return nil, fmt.Errorf("kwalk %s: %w", v.label, err)
		}
		s, err := aggregate(v.label, meanRows(perSource, sc.Realizations, sc.Sources), 1)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}

func hitsPerTau(res search.Result, maxTTL int) []float64 {
	out := make([]float64, maxTTL+1)
	for t := 0; t <= maxTTL; t++ {
		out[t] = float64(res.HitsAt(t))
	}
	return out
}
