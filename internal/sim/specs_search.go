package sim

// Search-efficiency experiments: Figs. 6-12. Every search experiment runs
// on topologies of NSearch (or NOverlay) nodes, the paper's 10⁴ scale.

import (
	"fmt"

	"scalefree/internal/gen"
)

// flSweepTTL is the τ range for flooding figures; the paper sweeps "up to
// the point we reach the system size" (20 for PA/HAPA, 30 for CM).
func (sc Scale) flSweepTTL() int { return sc.MaxTTLFlood }

// searchKMin returns the NF/RW fan-out for a topology built with stub
// count m: the paper runs NF "based on the predefined minimum degree
// value m" even when cleanup or short horizons push some nodes below m.
func searchKMin(m int) int { return m }

// Fig6 regenerates Fig. 6: flooding hits vs τ on PA (panel a) and HAPA
// (panel b), series m ∈ {1,2,3} × kc ∈ {10,50,none}.
func Fig6(sc Scale, seed uint64) ([]Figure, error) {
	panels := []struct {
		id, title string
		mk        func(m, kc int) topoFactory
	}{
		{"fig6a", "FL results for PA model", func(m, kc int) topoFactory { return paTopo(sc.NSearch, m, kc) }},
		{"fig6b", "FL results for HAPA model", func(m, kc int) topoFactory { return hapaTopo(sc.NSearch, m, kc) }},
	}
	var figs []Figure
	for pi, p := range panels {
		fig := Figure{ID: p.id, Title: p.title, XLabel: "tau", YLabel: "number of hits"}
		for _, m := range []int{1, 2, 3} {
			for _, kc := range []int{10, 50, gen.NoCutoff} {
				s, err := searchSeries(
					fmt.Sprintf("m=%d, %s", m, cutoffLabel(kc)),
					p.mk(m, kc),
					sc.searchCfg(algFL, sc.flSweepTTL(), 0),
					seed+uint64(pi*10000+m*100+kc),
				)
				if err != nil {
					return nil, err
				}
				fig.Series = append(fig.Series, s)
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig7 regenerates Fig. 7: flooding hits vs τ on CM for
// γ ∈ {2.2, 2.6, 3.0} (one panel each), series m ∈ {1,2,3} ×
// kc ∈ {10,40,none}. The m=1 panels saturate below N because CM with m=1
// is disconnected (§V-B1).
func Fig7(sc Scale, seed uint64) ([]Figure, error) {
	var figs []Figure
	for pi, gamma := range []float64{2.2, 2.6, 3.0} {
		fig := Figure{
			ID:     fmt.Sprintf("fig7%c", 'a'+pi),
			Title:  fmt.Sprintf("FL results for CM, gamma=%.1f", gamma),
			XLabel: "tau", YLabel: "number of hits",
			Notes: "m=1: hits saturate at the giant-component size",
		}
		for _, m := range []int{1, 2, 3} {
			for _, kc := range []int{10, 40, gen.NoCutoff} {
				s, err := searchSeries(
					fmt.Sprintf("m=%d, %s", m, cutoffLabel(kc)),
					cmTopo(sc.NSearch, m, kc, gamma),
					sc.searchCfg(algFL, sc.flSweepTTL(), 0),
					seed+uint64(pi*10000+m*100+kc),
				)
				if err != nil {
					return nil, err
				}
				fig.Series = append(fig.Series, s)
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig8 regenerates Fig. 8: flooding hits vs τ on DAPA overlays, one panel
// per m ∈ {1,2,3}, series kc ∈ {10,50,none} × τ_sub ∈ {2,4,10,50}. The
// paper sweeps τ to 100 because small-τ_sub overlays have large diameters.
func Fig8(sc Scale, seed uint64) ([]Figure, error) {
	substrates, err := makeSubstrates(sc.NSubstrate, sc, seed^0xf18)
	if err != nil {
		return nil, err
	}
	maxTTL := 3 * sc.MaxTTLFlood
	var figs []Figure
	for _, m := range []int{1, 2, 3} {
		fig := Figure{
			ID:     fmt.Sprintf("fig8%c", 'a'+m-1),
			Title:  fmt.Sprintf("FL results for DAPA model, m=%d", m),
			XLabel: "tau", YLabel: "number of hits",
		}
		if m == 1 {
			fig.Notes = "paper: hard cutoffs improve FL under weak connectedness; " +
				"this reproduction measures the opposite ordering (documented deviation, see claims)"
		}
		for _, kc := range []int{10, 50, gen.NoCutoff} {
			for _, tau := range []int{2, 4, 10, 50} {
				s, err := searchSeries(
					fmt.Sprintf("%s, tau_sub=%d", cutoffLabel(kc), tau),
					dapaTopo(substrates, sc.NOverlay, m, kc, tau),
					sc.searchCfg(algFL, maxTTL, 0),
					seed+uint64(m*100000+kc*100+tau),
				)
				if err != nil {
					return nil, err
				}
				fig.Series = append(fig.Series, s)
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// nfRwPanels builds the six panels shared by Figs. 9 and 11 (NF and RW on
// PA, CM, HAPA): top row m=1, bottom row m=2 and m=3 combined, columns
// PA / CM / HAPA, with the paper's kc legends.
func nfRwPanels(sc Scale, seed uint64, alg algKind, figBase string, titleAlg string) ([]Figure, error) {
	paCutoffs := []int{10, 20, 40, 60, 80, 100, 200}
	cmCutoffs := []int{10, 40, gen.NoCutoff}
	var figs []Figure

	mkPanel := func(id, title string, ms []int, series func(fig *Figure, m int) error) error {
		fig := Figure{ID: id, Title: title, XLabel: "tau", YLabel: "number of hits", LogY: len(ms) > 1}
		for _, m := range ms {
			if err := series(&fig, m); err != nil {
				return err
			}
		}
		figs = append(figs, fig)
		return nil
	}

	// Panels (a), (d): PA.
	for i, ms := range [][]int{{1}, {2, 3}} {
		id := figBase + string(rune('a'+3*i))
		err := mkPanel(id, fmt.Sprintf("%s results for PA model, m=%v", titleAlg, ms), ms, func(fig *Figure, m int) error {
			for _, kc := range paCutoffs {
				s, err := searchSeries(
					fmt.Sprintf("m=%d, %s", m, cutoffLabel(kc)),
					paTopo(sc.NSearch, m, kc),
					// The panel-id tag keeps the PA and HAPA m=1 panels'
					// checkpoint keys apart: both use offset 0 into the
					// shared seed AND the same "m=%d, %s" labels, so
					// without it a resume would swap their rows.
					sc.searchCfg(alg, sc.MaxTTLNF, searchKMin(m)).withTag(id),
					seed+uint64(i*100000+m*1000+kc),
				)
				if err != nil {
					return err
				}
				fig.Series = append(fig.Series, s)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Panels (b), (e): CM with γ ∈ {2.2, 3.0}.
	for i, ms := range [][]int{{1}, {2, 3}} {
		id := figBase + string(rune('b'+3*i))
		err := mkPanel(id, fmt.Sprintf("%s results for CM, m=%v", titleAlg, ms), ms, func(fig *Figure, m int) error {
			for _, gamma := range []float64{2.2, 3.0} {
				for _, kc := range cmCutoffs {
					s, err := searchSeries(
						fmt.Sprintf("m=%d, gamma=%.1f, %s", m, gamma, cutoffLabel(kc)),
						cmTopo(sc.NSearch, m, kc, gamma),
						sc.searchCfg(alg, sc.MaxTTLNF, searchKMin(m)).withTag(id),
						seed+uint64(i*200000+m*1000+kc+int(gamma*10)),
					)
					if err != nil {
						return err
					}
					fig.Series = append(fig.Series, s)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Panels (c), (f): HAPA.
	for i, ms := range [][]int{{1}, {2, 3}} {
		id := figBase + string(rune('c'+3*i))
		err := mkPanel(id, fmt.Sprintf("%s results for HAPA model, m=%v", titleAlg, ms), ms, func(fig *Figure, m int) error {
			for _, kc := range paCutoffs {
				s, err := searchSeries(
					fmt.Sprintf("m=%d, %s", m, cutoffLabel(kc)),
					hapaTopo(sc.NSearch, m, kc),
					sc.searchCfg(alg, sc.MaxTTLNF, searchKMin(m)).withTag(id),
					seed+uint64(i*300000+m*1000+kc),
				)
				if err != nil {
					return err
				}
				fig.Series = append(fig.Series, s)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return figs, nil
}

// Fig9 regenerates Fig. 9: normalized flooding on PA, CM, and HAPA.
func Fig9(sc Scale, seed uint64) ([]Figure, error) {
	return nfRwPanels(sc, seed, algNF, "fig9", "NF")
}

// Fig11 regenerates Fig. 11: random walk (normalized to the NF message
// budget) on PA, CM, and HAPA.
func Fig11(sc Scale, seed uint64) ([]Figure, error) {
	return nfRwPanels(sc, seed, algRW, "fig11", "RW")
}

// dapaNFRW builds the nine panels shared by Figs. 10 and 12: NF (or RW) on
// DAPA overlays, panels m ∈ {1,2,3} × kc ∈ {none,50,10}, series over
// τ_sub ∈ {2,4,6,8,10,20,50}.
func dapaNFRW(sc Scale, seed uint64, alg algKind, figBase, titleAlg string) ([]Figure, error) {
	substrates, err := makeSubstrates(sc.NSubstrate, sc, seed^0xda9a)
	if err != nil {
		return nil, err
	}
	taus := []int{2, 4, 6, 8, 10, 20, 50}
	var figs []Figure
	panel := 0
	for _, m := range []int{1, 2, 3} {
		for _, kc := range []int{gen.NoCutoff, 50, 10} {
			fig := Figure{
				ID:     fmt.Sprintf("%s%c", figBase, 'a'+panel),
				Title:  fmt.Sprintf("%s results for DAPA model, m=%d, %s", titleAlg, m, cutoffLabel(kc)),
				XLabel: "tau", YLabel: "number of hits", LogY: m > 1,
			}
			panel++
			for _, tau := range taus {
				s, err := searchSeries(
					fmt.Sprintf("tau_sub=%d", tau),
					dapaTopo(substrates, sc.NOverlay, m, kc, tau),
					sc.searchCfg(alg, sc.MaxTTLNF, searchKMin(m)),
					seed+uint64(panel*10000+tau),
				)
				if err != nil {
					return nil, err
				}
				fig.Series = append(fig.Series, s)
			}
			figs = append(figs, fig)
		}
	}
	return figs, nil
}

// Fig10 regenerates Fig. 10: normalized flooding on DAPA overlays.
func Fig10(sc Scale, seed uint64) ([]Figure, error) {
	return dapaNFRW(sc, seed, algNF, "fig10", "NF")
}

// Fig12 regenerates Fig. 12: random walk (NF budget) on DAPA overlays.
func Fig12(sc Scale, seed uint64) ([]Figure, error) {
	return dapaNFRW(sc, seed, algRW, "fig12", "RW")
}
