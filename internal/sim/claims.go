package sim

// Machine-checkable paper claims. Each Claim re-runs a reduced version of
// the relevant experiment and asserts the paper's qualitative conclusion
// (an ordering, a bound, a monotone trend). They power both the findings
// regression tests and `cmd/experiments -verify`, so a reader can confirm
// the reproduction end-to-end with one command.

import (
	"fmt"

	"scalefree/internal/gen"
)

// ClaimResult is the outcome of checking one paper claim.
type ClaimResult struct {
	// ID is a short stable identifier ("nf-cutoff-gain").
	ID string
	// Statement quotes or paraphrases the paper.
	Statement string
	// Pass reports whether the measured data supports the claim.
	Pass bool
	// Detail holds the measured numbers behind the verdict.
	Detail string
	// Deviation, copied from the claim, marks a documented fidelity
	// deviation: the measurement still runs and reports, but a false
	// Pass is the expected outcome, not a verification failure.
	Deviation string
	// Err is set when the experiment itself failed to run.
	Err error
}

// Claim is a checkable paper statement.
type Claim struct {
	ID        string
	Statement string
	Check     func(sc Scale, seed uint64) (pass bool, detail string, err error)
	// Deviation, when non-empty, documents that this reproduction
	// measurably does not support the paper's conclusion (a fidelity
	// deviation, like the CM stub-pairing note on gen.CM). The check
	// still runs so the measured ordering stays on record, but callers
	// must not gate on Pass.
	Deviation string
}

// Claims returns the paper's headline conclusions as checkable claims, in
// paper order.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "nf-cutoff-gain",
			Statement: "Hard cutoffs may improve search efficiency in NF (§V-B1, Fig. 9)",
			Check:     checkNFCutoffGain,
		},
		{
			ID:        "cm-exception",
			Statement: "The only exception to this behavior is the CM (§V-B1, Figs. 9b/11b)",
			Check:     checkCMException,
		},
		{
			ID:        "m3-erases-fl-penalty",
			Statement: "A minimum of three links for all peers eliminates negative effects of hard cutoffs on FL (§V-B1, Fig. 6)",
			Check:     checkM3ErasesFLPenalty,
		},
		{
			ID:        "weak-dapa-cutoff-helps-fl",
			Statement: "With weak connectedness (m=1), imposing hard cutoffs improves FL on DAPA (§V-B1, Fig. 8a)",
			Check:     checkWeakDAPACutoffHelpsFL,
			// Measured repeatedly (multiple seeds, 9 realizations × 24
			// sources, smoke and paper-size overlays): this reproduction
			// shows the OPPOSITE ordering, or a tie, in every averaged
			// run — at N_O=10⁴/τ_sub∈{2,4} the no-cutoff overlay covers
			// ~10-20% more peers at equal τ. Structural explanation: a
			// DAPA m=1 overlay is a connected tree by construction
			// (Appendix D admits a peer iff it linked to ≥1 horizon
			// peer), so FL saturates at 100% either way and the cutoff
			// only deepens the tree, slowing coverage. Earlier revisions
			// "passed" this check on single-seed noise; the pipelined
			// engine's stream re-derivation exposed the coin flip.
			Deviation: "not reproduced: measured FL ordering favors no-cutoff m=1 DAPA overlays at every tested scale",
		},
		{
			ID:        "exponent-monotone-in-cutoff",
			Statement: "The degree distribution exponent degrades to lower values when harder cutoffs are applied (§III-B, Fig. 1c)",
			Check:     checkExponentMonotone,
		},
		{
			ID:        "nf-beats-rw",
			Statement: "In all cases, NF performs better than RW consistently (§V-B2)",
			Check:     checkNFBeatsRW,
		},
	}
}

// CheckClaims runs every claim at the given scale.
func CheckClaims(sc Scale, seed uint64) []ClaimResult {
	return checkClaimList(Claims(), sc, seed)
}

// checkClaimList evaluates claims in order, deriving each claim's seed
// from its position as the verifier always has.
func checkClaimList(claims []Claim, sc Scale, seed uint64) []ClaimResult {
	out := make([]ClaimResult, len(claims))
	for i, c := range claims {
		pass, detail, err := c.Check(sc, seed+uint64(i)*7717)
		out[i] = ClaimResult{ID: c.ID, Statement: c.Statement, Pass: pass && err == nil, Detail: detail, Deviation: c.Deviation, Err: err}
	}
	return out
}

func lastY(s Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Y
}

func checkNFCutoffGain(sc Scale, seed uint64) (bool, string, error) {
	cfg := sc.searchCfg(algNF, sc.MaxTTLNF, 2)
	tight, err := searchSeries("kc=10", paTopo(sc.NSearch, 2, 10), cfg, seed)
	if err != nil {
		return false, "", err
	}
	loose, err := searchSeries("kc=200", paTopo(sc.NSearch, 2, 200), cfg, seed+1)
	if err != nil {
		return false, "", err
	}
	a, b := lastY(tight), lastY(loose)
	return a > b, fmt.Sprintf("NF hits on PA m=2: kc=10 %.1f vs kc=200 %.1f", a, b), nil
}

func checkCMException(sc Scale, seed uint64) (bool, string, error) {
	cfg := sc.searchCfg(algNF, sc.MaxTTLNF, 1)
	tight, err := searchSeries("kc=10", cmTopo(sc.NSearch, 1, 10, 2.2), cfg, seed)
	if err != nil {
		return false, "", err
	}
	loose, err := searchSeries("no kc", cmTopo(sc.NSearch, 1, gen.NoCutoff, 2.2), cfg, seed+1)
	if err != nil {
		return false, "", err
	}
	a, b := lastY(tight), lastY(loose)
	return a < b, fmt.Sprintf("NF hits on CM gamma=2.2 m=1: kc=10 %.2f vs no kc %.2f", a, b), nil
}

func checkM3ErasesFLPenalty(sc Scale, seed uint64) (bool, string, error) {
	gap := func(m int, s uint64) (float64, error) {
		cfg := sc.searchCfg(algFL, 6, 0)
		tight, err := searchSeries("kc", paTopo(sc.NSearch, m, 10), cfg, s)
		if err != nil {
			return 0, err
		}
		loose, err := searchSeries("no", paTopo(sc.NSearch, m, gen.NoCutoff), cfg, s+1)
		if err != nil {
			return 0, err
		}
		return (lastY(loose) - lastY(tight)) / lastY(loose), nil
	}
	g1, err := gap(1, seed)
	if err != nil {
		return false, "", err
	}
	g3, err := gap(3, seed+100)
	if err != nil {
		return false, "", err
	}
	return g3 < g1/4 && g3 < 0.1,
		fmt.Sprintf("relative FL penalty of kc=10: m=1 %.0f%%, m=3 %.1f%%", 100*g1, 100*g3), nil
}

func checkWeakDAPACutoffHelpsFL(sc Scale, seed uint64) (bool, string, error) {
	subs, err := makeSubstrates(sc.NSubstrate, sc, seed)
	if err != nil {
		return false, "", err
	}
	cfg := sc.searchCfg(algFL, 20, 0)
	// This check records a documented deviation (see the claim entry), so
	// the measurement must be real, not one seed's draw: average over
	// extra overlays per substrate (dapaTopo cycles r over the substrate
	// pool) and extra sources. With this averaging the no-cutoff overlays
	// win or tie at every tested seed and scale.
	cfg.realizations *= 3
	cfg.sources *= 2
	tight, err := searchSeries("kc=10", dapaTopo(subs, sc.NOverlay, 1, 10, 4), cfg, seed+1)
	if err != nil {
		return false, "", err
	}
	loose, err := searchSeries("no kc", dapaTopo(subs, sc.NOverlay, 1, gen.NoCutoff, 4), cfg, seed+2)
	if err != nil {
		return false, "", err
	}
	a, b := lastY(tight), lastY(loose)
	return a > b, fmt.Sprintf("FL hits on DAPA m=1 tau=4: kc=10 %.0f vs no kc %.0f", a, b), nil
}

func checkExponentMonotone(sc Scale, seed uint64) (bool, string, error) {
	figs, err := Fig1c(sc, seed)
	if err != nil {
		return false, "", err
	}
	detail := ""
	pass := true
	for _, s := range figs[0].Series {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		detail += fmt.Sprintf("%s: gamma %.2f@kc=%.0f -> %.2f@kc=%.0f; ", s.Label, first.Y, first.X, last.Y, last.X)
		if first.Y >= last.Y {
			pass = false
		}
	}
	return pass, detail, nil
}

func checkNFBeatsRW(sc Scale, seed uint64) (bool, string, error) {
	factory := paTopo(sc.NSearch, 2, 40)
	cfgNF := sc.searchCfg(algNF, sc.MaxTTLNF, 2)
	cfgRW := cfgNF
	cfgRW.alg = algRW
	nf, err := searchSeries("nf", factory, cfgNF, seed)
	if err != nil {
		return false, "", err
	}
	rw, err := searchSeries("rw", factory, cfgRW, seed)
	if err != nil {
		return false, "", err
	}
	a, b := lastY(nf), lastY(rw)
	return b <= a*1.1, fmt.Sprintf("hits at equal budget: NF %.0f vs RW %.0f", a, b), nil
}
