package sim

// Strategies is an extension experiment comparing every search strategy in
// the repository — the paper's FL/NF/RW plus the related-work baselines it
// cites (§II): Adamic et al.'s high-degree-seeking walk [62],
// probabilistic flooding [29], and the Gkantsidis–Mihail–Saberi
// flood-then-walk hybrid [30] — at EQUAL MESSAGE BUDGETS, extending the
// paper's §V-B normalization from a pairwise NF↔RW comparison to the full
// strategy set. Run on PA topologies with and without a hard cutoff, it
// shows which strategies depend on hubs (HDS collapses under kc=10) and
// which benefit from the cutoff (NF, walks), generalizing the paper's
// headline finding.

import (
	"fmt"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// strategyBudgets are the message budgets (X axis) the comparison samples.
func strategyBudgets(n int) []int {
	base := []int{10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	var out []int
	for _, b := range base {
		if b <= 4*n {
			out = append(out, b)
		}
	}
	return out
}

// hitsAtBudget reads a Result's coverage at a message budget: the hits at
// the last time index whose cumulative message count is within the budget.
func hitsAtBudget(res search.Result, budget int) float64 {
	best := 0
	for t := range res.Messages {
		if res.Messages[t] <= budget && res.Hits[t] > best {
			best = res.Hits[t]
		}
	}
	return float64(best)
}

// Strategies compares FL, NF, RW, k walkers, the high-degree-seeking walk,
// probabilistic flooding, and hybrid search at equal message budgets on PA
// (m=2), one panel without a cutoff and one with kc=10.
func Strategies(sc Scale, seed uint64) ([]Figure, error) {
	const m = 2
	variants := []struct {
		label string
		run   func(scratch *search.Scratch, f *graph.Frozen, src int, budgets []int, rng *xrand.RNG) ([]float64, error)
	}{
		{"FL", func(scratch *search.Scratch, f *graph.Frozen, src int, budgets []int, rng *xrand.RNG) ([]float64, error) {
			res, err := scratch.Flood(f, src, sc.MaxTTLFlood)
			if err != nil {
				return nil, err
			}
			return sampleBudgets(res, budgets), nil
		}},
		{"NF", func(scratch *search.Scratch, f *graph.Frozen, src int, budgets []int, rng *xrand.RNG) ([]float64, error) {
			res, err := scratch.NormalizedFlood(f, src, sc.MaxTTLFlood, m, rng)
			if err != nil {
				return nil, err
			}
			return sampleBudgets(res, budgets), nil
		}},
		{"RW", func(scratch *search.Scratch, f *graph.Frozen, src int, budgets []int, rng *xrand.RNG) ([]float64, error) {
			res, err := scratch.RandomWalk(f, src, budgets[len(budgets)-1], rng)
			if err != nil {
				return nil, err
			}
			return sampleBudgets(res, budgets), nil
		}},
		{"8 walkers", func(scratch *search.Scratch, f *graph.Frozen, src int, budgets []int, rng *xrand.RNG) ([]float64, error) {
			const k = 8
			res, err := scratch.KRandomWalks(f, src, k, budgets[len(budgets)-1]/k+1, rng)
			if err != nil {
				return nil, err
			}
			return sampleBudgets(res, budgets), nil
		}},
		{"HDS walk", func(scratch *search.Scratch, f *graph.Frozen, src int, budgets []int, rng *xrand.RNG) ([]float64, error) {
			res, err := scratch.HighDegreeWalk(f, src, budgets[len(budgets)-1], rng)
			if err != nil {
				return nil, err
			}
			return sampleBudgets(res, budgets), nil
		}},
		{"PF p=0.5", func(scratch *search.Scratch, f *graph.Frozen, src int, budgets []int, rng *xrand.RNG) ([]float64, error) {
			res, err := scratch.ProbabilisticFlood(f, src, sc.MaxTTLFlood, 0.5, rng)
			if err != nil {
				return nil, err
			}
			return sampleBudgets(res, budgets), nil
		}},
		{"hybrid (flood 2 + 8 walkers)", func(scratch *search.Scratch, f *graph.Frozen, src int, budgets []int, rng *xrand.RNG) ([]float64, error) {
			res, err := scratch.HybridSearch(f, src, 2, 8, budgets[len(budgets)-1]/8+1, rng)
			if err != nil {
				return nil, err
			}
			return sampleBudgets(res, budgets), nil
		}},
	}

	var figs []Figure
	for _, kc := range []int{gen.NoCutoff, 10} {
		budgets := strategyBudgets(sc.NSearch)
		slug := "nokc"
		if kc != gen.NoCutoff {
			slug = fmt.Sprintf("kc%d", kc)
		}
		fig := Figure{
			ID:     fmt.Sprintf("strategies-%s", slug),
			Title:  fmt.Sprintf("Search strategies at equal message budget (PA, m=%d, %s)", m, cutoffLabel(kc)),
			XLabel: "message budget", YLabel: "number of hits",
			LogX:  true,
			Notes: "extends §V-B's NF-budget normalization to all strategies; HDS = Adamic high-degree-seeking walk",
		}
		factory := paTopo(sc.NSearch, m, kc)
		for vi, v := range variants {
			v := v
			perSource := make([][]float64, sc.Realizations*sc.Sources)
			err := forEachRealizationPipeline(engineOpts{rc: sc.Run}, sc.Workers, sc.SourceShards, sc.GenWorkers, sc.Realizations, seed+uint64(vi)*7919+uint64(kc), func(r int, b *builder) (*graph.Frozen, error) {
				return sweepTopo(factory, r, b)
			}, func(r int, f *graph.Frozen, sw *sweeper) error {
				return sw.Sources(uint64(r), sc.Sources, func(_, s int, rng *xrand.RNG, scratch *search.Scratch) error {
					row, err := v.run(scratch, f, rng.Intn(f.N()), budgets, rng)
					if err != nil {
						return err
					}
					perSource[r*sc.Sources+s] = row
					return nil
				})
			})
			if err != nil {
				return nil, fmt.Errorf("strategies %s %s: %w", cutoffLabel(kc), v.label, err)
			}
			s, err := aggregate(v.label, meanRows(perSource, sc.Realizations, sc.Sources), 0)
			if err != nil {
				return nil, err
			}
			// aggregate indexes X by position; rewrite to the budget axis.
			for i := range s.Points {
				s.Points[i].X = float64(budgets[i])
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// sampleBudgets evaluates hitsAtBudget at each budget point.
func sampleBudgets(res search.Result, budgets []int) []float64 {
	out := make([]float64, len(budgets))
	for i, b := range budgets {
		out[i] = hitsAtBudget(res, b)
	}
	return out
}
