package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// This file is the three-stage pipelined experiment engine that replaced
// the PR 3 two-level scheduler's generate→freeze→sweep-in-one-callback
// shape. A figure's realizations now flow through:
//
//	build stage   — up to GenWorkers goroutines generate topologies and
//	                freeze them (CSR fill and the sorted HasEdge ranges
//	                both built here, in parallel), so realization r+1 (and
//	                beyond, up to the GenWorkers bound) is being built
//	                while realization r is being swept;
//	bounded queue — finished snapshots wait on a channel of capacity
//	                GenWorkers, which is the pipeline's backpressure: the
//	                build stage stalls rather than running unboundedly
//	                ahead of the sweep;
//	sweep stage   — `workers` goroutines pull snapshots in completion
//	                order and shard each one's sources across
//	                `SourceShards` goroutines (the PR 3 sweeper pool,
//	                unchanged).
//
// Determinism contract (extended from PR 3, pinned by the scheduler
// tests): realization r's build draws only from xrand phase streams
// derived from (seed, r, phase) — never from which build worker ran it or
// how many goroutines a generator used internally — and its legacy
// sibling stream rngs[r] depends only on (seed, r); source s of sweep
// `stream` draws from xrand.NewStream(seed, stream, s); and all outputs
// land in per-index slots (or order-independent integer accumulators)
// reduced in index order. Under that contract the figure output is
// bit-for-bit identical for every (Workers, SourceShards, GenWorkers)
// combination, including fully serial runs.
//
// Memory: up to 2·GenWorkers + Workers frozen snapshots can be alive at
// once (building + queued + being swept), versus Workers for the PR 3
// scheduler. Builds that must stay lean can set GenWorkers=1, which still
// overlaps one build with the sweeps.

// builder carries one realization's build-phase context: the phase-stream
// derivation root, the legacy per-realization stream, and the
// intra-generator parallelism budget. A builder is handed to exactly one
// build invocation and is only valid for its duration.
type builder struct {
	// r is the realization index.
	r int
	// rng is the legacy per-realization stream (split r-th from the root,
	// exactly as every engine since PR 1 derived it), for spec-side draws
	// that are consumed sequentially within the realization (churn event
	// schedules, robustness removal orders, path sampling).
	rng *xrand.RNG
	// phases derives the (seed, realization, phase) build sub-streams.
	phases xrand.Phases
	// genWorkers bounds intra-generator parallelism for this build.
	genWorkers int
	// arena recycles direct-to-CSR build buffers. It belongs to the build
	// worker goroutine (one arena per worker, reused across the
	// realizations that worker builds), so back-to-back xl realizations
	// reuse their chunk and scratch memory instead of re-growing it.
	// Output is identical with or without it.
	arena *graph.CSRArena
}

// gen returns the generator build context: phase sub-streams plus the
// intra-build worker budget and the worker's CSR arena.
func (b *builder) gen() gen.Build {
	bld := gen.NewBuild(b.phases, b.genWorkers)
	bld.Arena = b.arena
	return bld
}

// resolveWorkers applies the "0 means GOMAXPROCS" default.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// resolveShards sizes the per-worker source-shard pool: workers × shards
// ≈ GOMAXPROCS, so the default never runs P² goroutines on a P-core box.
func resolveShards(shards, workers int) int {
	if shards > 0 {
		return shards
	}
	return (runtime.GOMAXPROCS(0) + workers - 1) / workers
}

// resolveBuilders turns the GenWorkers knob into (pool, intra): `pool`
// build goroutines (never more than the work available) and an `intra`
// per-build parallelism budget that soaks up the remainder when
// realizations are scarcer than GenWorkers — the low-realization
// configurations where the build phase dominates. GenWorkers<=0 defaults
// to the resolved sweep worker count.
func resolveBuilders(genWorkers, workers, n int) (pool, intra int) {
	if genWorkers <= 0 {
		genWorkers = workers
	}
	pool = genWorkers
	if pool > n {
		pool = n
	}
	if pool < 1 {
		pool = 1
	}
	return pool, (genWorkers + pool - 1) / pool
}

// newBuilder assembles one realization's build context. arena is the
// owning build worker's buffer pool (may be nil in tests).
func newBuilder(seed uint64, r int, rng *xrand.RNG, intra int, arena *graph.CSRArena) *builder {
	return &builder{
		r:          r,
		rng:        rng,
		phases:     xrand.Phases{Seed: seed, Realization: uint64(r)},
		genWorkers: intra,
		arena:      arena,
	}
}

// forEachRealizationPipeline is the pipelined engine for specs with a
// build/sweep split: build(r) generates and freezes realization r's
// topology (returning the snapshot value the sweep needs), sweep(r)
// queries it through the per-worker sweeper. Build errors skip the sweep;
// the lowest-index error wins, whichever stage it came from, exactly as a
// sequential run would have reported first.
func forEachRealizationPipeline[T any](workers, shards, genWorkers, n int, seed uint64,
	build func(r int, b *builder) (T, error),
	sweep func(r int, v T, sw *sweeper) error) error {
	if n <= 0 {
		return nil
	}
	workers = resolveWorkers(workers)
	// Default GenWorkers from the pre-cap worker count: on a P-core box
	// running fewer than P realizations — the build-dominated case the
	// pipeline exists for — the build budget must stay P so the remainder
	// flows into intra-generator parallelism, exactly as the build-only
	// pool does. Capping first would silently pin intra to 1 by default.
	pool, intra := resolveBuilders(genWorkers, workers, n)
	if workers > n {
		workers = n
	}
	shards = resolveShards(shards, workers)

	root := xrand.New(seed)
	rngs := root.SplitN(n)
	errs := make([]error, n)

	type snapshot struct {
		r int
		v T
	}
	ready := make(chan snapshot, pool)
	var bnext atomic.Int64
	var bwg sync.WaitGroup
	bwg.Add(pool)
	for w := 0; w < pool; w++ {
		go func() {
			defer bwg.Done()
			// One arena per build worker: realization r+pool reuses the
			// chunk and scratch buffers realization r grew, and no arena
			// ever serves two builds at once.
			arena := graph.NewCSRArena()
			for {
				r := int(bnext.Add(1)) - 1
				if r >= n {
					return
				}
				v, err := build(r, newBuilder(seed, r, rngs[r], intra, arena))
				if err != nil {
					errs[r] = err
					continue
				}
				ready <- snapshot{r: r, v: v}
			}
		}()
	}
	go func() {
		bwg.Wait()
		close(ready)
	}()

	var swg sync.WaitGroup
	swg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer swg.Done()
			sw := newSweeper(seed, shards)
			for snap := range ready {
				errs[snap.r] = sweep(snap.r, snap.v, sw)
			}
		}()
	}
	swg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachRealization runs fn for r = 0..n-1 on a bounded worker pool
// (`workers` goroutines; <=0 means GOMAXPROCS), collecting the
// lowest-index error. It is the engine for build-only specs (degree
// distributions, churn traces, robustness curves): with no sweep stage to
// overlap there is nothing to pipeline, but the builder still carries the
// phase streams and the intra-build budget derived from genWorkers, so
// generators parallelize internally when realizations are scarcer than
// the build budget. Determinism: b.rng is derived solely from (seed, r)
// and b.phases from (seed, r, phase); results land in per-index slots, so
// neither worker count nor scheduling order perturbs results.
func forEachRealization(workers, genWorkers, n int, seed uint64, fn func(r int, b *builder) error) error {
	if n <= 0 {
		return nil
	}
	pool := resolveWorkers(workers)
	if pool > n {
		pool = n
	}
	if genWorkers <= 0 {
		genWorkers = resolveWorkers(workers)
	} else if pool > genWorkers {
		// An explicit GenWorkers bounds concurrent builds here exactly as
		// in the pipeline — fn IS the build — so `-gen-workers 1` really
		// does cap in-flight topologies on the build-only degree specs,
		// the memory-heaviest runs.
		pool = genWorkers
	}
	intra := (genWorkers + pool - 1) / pool

	root := xrand.New(seed)
	rngs := root.SplitN(n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(pool)
	for w := 0; w < pool; w++ {
		go func() {
			defer wg.Done()
			arena := graph.NewCSRArena()
			for {
				r := int(next.Add(1)) - 1
				if r >= n {
					return
				}
				errs[r] = fn(r, newBuilder(seed, r, rngs[r], intra, arena))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// withSweeper runs fn with a standalone source-sweep pool of `shards`
// scratches (<=0 sizes it to GOMAXPROCS), for specs that sweep a topology
// built outside the realization engine (paired-workload claims that probe
// one shared overlay). Stream derivation inside Sources is identical to
// the pipelined engine's.
func withSweeper(shards int, seed uint64, fn func(sw *sweeper) error) error {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return fn(newSweeper(seed, shards))
}
