package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// This file is the three-stage pipelined experiment engine that replaced
// the PR 3 two-level scheduler's generate→freeze→sweep-in-one-callback
// shape. A figure's realizations now flow through:
//
//	build stage   — up to GenWorkers goroutines generate topologies and
//	                freeze them (CSR fill and the sorted HasEdge ranges
//	                both built here, in parallel), so realization r+1 (and
//	                beyond, up to the GenWorkers bound) is being built
//	                while realization r is being swept;
//	bounded queue — finished snapshots wait on a channel of capacity
//	                GenWorkers, which is the pipeline's backpressure: the
//	                build stage stalls rather than running unboundedly
//	                ahead of the sweep;
//	sweep stage   — `workers` goroutines pull snapshots in completion
//	                order and shard each one's sources across
//	                `SourceShards` goroutines (the PR 3 sweeper pool,
//	                unchanged).
//
// Determinism contract (extended from PR 3, pinned by the scheduler
// tests): realization r's build draws only from xrand phase streams
// derived from (seed, r, phase) — never from which build worker ran it or
// how many goroutines a generator used internally — and its legacy
// sibling stream rngs[r] depends only on (seed, r); source s of sweep
// `stream` draws from xrand.NewStream(seed, stream, s); and all outputs
// land in per-index slots (or order-independent integer accumulators)
// reduced in index order. Under that contract the figure output is
// bit-for-bit identical for every (Workers, SourceShards, GenWorkers)
// combination, including fully serial runs.
//
// Supervision (PR 8): both engines take an engineOpts whose *RunControl
// layers panic recovery, bounded deterministic retries, a
// permanent-failure budget, and realization-boundary interruption over
// the same dispatch loops. The zero engineOpts{} is the unsupervised
// engine exactly as before: panics propagate, the first error aborts.
// Retries cannot perturb results — a re-attempt re-derives realization
// r's legacy stream from xrand.New(seed).SplitN(n)[r] (the failed attempt
// may have consumed stream state) and runs on a fresh arena and a fresh
// sweeper (the panic may have corrupted the shared scratch buffers
// mid-write), so a surviving attempt deposits exactly the bits of a
// never-failed run.
//
// Memory: up to 2·GenWorkers + Workers frozen snapshots can be alive at
// once (building + queued + being swept), versus Workers for the PR 3
// scheduler. Builds that must stay lean can set GenWorkers=1, which still
// overlaps one build with the sweeps.

// engineOpts threads supervision into the realization engines.
type engineOpts struct {
	// rc supervises the run; nil = unsupervised (pre-PR-8 semantics).
	rc *RunControl
	// skip reports realizations already journaled by a previous run; the
	// engine counts them as progress and never dispatches them. The caller
	// that supplies skip is responsible for replaying the journaled slots
	// into its reduction. May be nil.
	skip func(r int) bool
	// partial marks a journaled sweep whose reduction drops permanently
	// failed realizations with explicit accounting, so failures within the
	// -max-failed budget are absorbed instead of aborting. Strict callers
	// (everything that averages without a drop path) leave it false and
	// keep failures fatal — silently averaging a zeroed realization would
	// corrupt figures.
	partial bool
}

// builder carries one realization's build-phase context: the phase-stream
// derivation root, the legacy per-realization stream, and the
// intra-generator parallelism budget. A builder is handed to exactly one
// build invocation and is only valid for its duration.
type builder struct {
	// r is the realization index.
	r int
	// rng is the legacy per-realization stream (split r-th from the root,
	// exactly as every engine since PR 1 derived it), for spec-side draws
	// that are consumed sequentially within the realization (churn event
	// schedules, robustness removal orders, path sampling).
	rng *xrand.RNG
	// phases derives the (seed, realization, phase) build sub-streams.
	phases xrand.Phases
	// genWorkers bounds intra-generator parallelism for this build.
	genWorkers int
	// arena recycles direct-to-CSR build buffers. It belongs to the build
	// worker goroutine (one arena per worker, reused across the
	// realizations that worker builds), so back-to-back xl realizations
	// reuse their chunk and scratch memory instead of re-growing it.
	// Output is identical with or without it.
	arena *graph.CSRArena
}

// gen returns the generator build context: phase sub-streams plus the
// intra-build worker budget and the worker's CSR arena.
func (b *builder) gen() gen.Build {
	bld := gen.NewBuild(b.phases, b.genWorkers)
	bld.Arena = b.arena
	return bld
}

// resolveWorkers applies the "0 means GOMAXPROCS" default.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// resolveShards sizes the per-worker source-shard pool: workers × shards
// ≈ GOMAXPROCS, so the default never runs P² goroutines on a P-core box.
func resolveShards(shards, workers int) int {
	if shards > 0 {
		return shards
	}
	return (runtime.GOMAXPROCS(0) + workers - 1) / workers
}

// resolveBuilders turns the GenWorkers knob into (pool, intra): `pool`
// build goroutines (never more than the work available) and an `intra`
// per-build parallelism budget that soaks up the remainder when
// realizations are scarcer than GenWorkers — the low-realization
// configurations where the build phase dominates. GenWorkers<=0 defaults
// to the resolved sweep worker count.
func resolveBuilders(genWorkers, workers, n int) (pool, intra int) {
	if genWorkers <= 0 {
		genWorkers = workers
	}
	pool = genWorkers
	if pool > n {
		pool = n
	}
	if pool < 1 {
		pool = 1
	}
	return pool, (genWorkers + pool - 1) / pool
}

// newBuilder assembles one realization's build context. arena is the
// owning build worker's buffer pool (may be nil in tests).
func newBuilder(seed uint64, r int, rng *xrand.RNG, intra int, arena *graph.CSRArena) *builder {
	return &builder{
		r:          r,
		rng:        rng,
		phases:     xrand.Phases{Seed: seed, Realization: uint64(r)},
		genWorkers: intra,
		arena:      arena,
	}
}

// retryRNG re-derives realization r's legacy stream exactly as the
// dispatch loop derived rngs[r], so a retry starts from pristine stream
// state no matter how much of it a failed attempt consumed.
func retryRNG(seed uint64, n, r int) *xrand.RNG {
	return xrand.New(seed).SplitN(n)[r]
}

// forEachRealizationPipeline is the pipelined engine for specs with a
// build/sweep split: build(r) generates and freezes realization r's
// topology (returning the snapshot value the sweep needs), sweep(r)
// queries it through the per-worker sweeper. Build errors skip the sweep;
// the lowest-index error wins, whichever stage it came from, exactly as a
// sequential run would have reported first. Under a RunControl, panics
// become errors, failed realizations are retried end-to-end (a sweep
// failure rebuilds the topology: the snapshot may carry consumed phase
// streams), cancellation stops dispatch at realization boundaries, and
// journaled-complete realizations are skipped.
func forEachRealizationPipeline[T any](o engineOpts, workers, shards, genWorkers, n int, seed uint64,
	build func(r int, b *builder) (T, error),
	sweep func(r int, v T, sw *sweeper) error) error {
	if n <= 0 {
		return nil
	}
	workers = resolveWorkers(workers)
	// Default GenWorkers from the pre-cap worker count: on a P-core box
	// running fewer than P realizations — the build-dominated case the
	// pipeline exists for — the build budget must stay P so the remainder
	// flows into intra-generator parallelism, exactly as the build-only
	// pool does. Capping first would silently pin intra to 1 by default.
	pool, intra := resolveBuilders(genWorkers, workers, n)
	if workers > n {
		workers = n
	}
	shards = resolveShards(shards, workers)

	root := xrand.New(seed)
	rngs := root.SplitN(n)
	errs := make([]error, n)

	type snapshot struct {
		r int
		v T
	}
	ready := make(chan snapshot, pool)
	var bnext atomic.Int64
	var bwg sync.WaitGroup
	bwg.Add(pool)
	for w := 0; w < pool; w++ {
		go func() {
			defer bwg.Done()
			// One arena per build worker: realization r+pool reuses the
			// chunk and scratch buffers realization r grew, and no arena
			// ever serves two builds at once.
			arena := graph.NewCSRArena()
			for {
				if o.rc.interrupted() != nil {
					return
				}
				r := int(bnext.Add(1)) - 1
				if r >= n {
					return
				}
				if o.skip != nil && o.skip(r) {
					o.rc.noteProgress()
					continue
				}
				// Distributed-worker restriction: realizations leased to
				// other workers are simply never dispatched; determinism
				// holds because rngs[r] and the phase streams depend only
				// on (seed, r), not on which indices this process ran.
				if !o.rc.owns(r) {
					continue
				}
				v, err := protectCall(o.rc, func() (T, error) {
					return build(r, newBuilder(seed, r, rngs[r], intra, arena))
				})
				attempts := 1
				for err != nil && attempts < o.rc.maxAttempts() && o.rc.interrupted() == nil {
					attempts++
					v, err = protectCall(o.rc, func() (T, error) {
						// Fresh stream and fresh arena: the failed attempt
						// may have consumed rngs[r] or corrupted the shared
						// buffers mid-panic.
						return build(r, newBuilder(seed, r, retryRNG(seed, n, r), intra, graph.NewCSRArena()))
					})
				}
				if err != nil {
					errs[r] = o.rc.absorbFailure(seed, r, attempts, err, o.partial)
					continue
				}
				if attempts > 1 {
					o.rc.noteRecovered()
				}
				o.rc.noteProgress()
				ready <- snapshot{r: r, v: v}
			}
		}()
	}
	go func() {
		bwg.Wait()
		close(ready)
	}()

	var swg sync.WaitGroup
	swg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer swg.Done()
			sw := newSweeper(seed, shards)
			for snap := range ready {
				if o.rc.interrupted() != nil {
					// Keep draining so builders blocked on the bounded
					// queue can observe the interrupt instead of
					// deadlocking against it.
					continue
				}
				snap := snap
				err := protectErr(o.rc, func() error { return sweep(snap.r, snap.v, sw) })
				attempts := 1
				if err != nil {
					// The failed sweep may have corrupted this worker's
					// sweeper scratches mid-write; replace it before any
					// other realization touches it.
					sw = newSweeper(seed, shards)
				}
				for err != nil && attempts < o.rc.maxAttempts() && o.rc.interrupted() == nil {
					attempts++
					err = protectErr(o.rc, func() error {
						// Retry the realization end-to-end: the snapshot may
						// carry phase streams the failed sweep already
						// consumed, so only a rebuild restores pristine
						// state. Fresh arena and sweeper for the same reason.
						v, berr := build(snap.r, newBuilder(seed, snap.r, retryRNG(seed, n, snap.r), intra, graph.NewCSRArena()))
						if berr != nil {
							return berr
						}
						return sweep(snap.r, v, newSweeper(seed, shards))
					})
				}
				if err != nil {
					errs[snap.r] = o.rc.absorbFailure(seed, snap.r, attempts, err, o.partial)
					continue
				}
				if attempts > 1 {
					o.rc.noteRecovered()
				}
				o.rc.noteProgress()
			}
		}()
	}
	swg.Wait()
	if err := o.rc.interrupted(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachRealization runs fn for r = 0..n-1 on a bounded worker pool
// (`workers` goroutines; <=0 means GOMAXPROCS), collecting the
// lowest-index error. It is the engine for build-only specs (degree
// distributions, churn traces, robustness curves): with no sweep stage to
// overlap there is nothing to pipeline, but the builder still carries the
// phase streams and the intra-build budget derived from genWorkers, so
// generators parallelize internally when realizations are scarcer than
// the build budget. Determinism: b.rng is derived solely from (seed, r)
// and b.phases from (seed, r, phase); results land in per-index slots, so
// neither worker count nor scheduling order perturbs results. Supervision
// via engineOpts mirrors the pipelined engine's.
func forEachRealization(o engineOpts, workers, genWorkers, n int, seed uint64, fn func(r int, b *builder) error) error {
	if n <= 0 {
		return nil
	}
	pool := resolveWorkers(workers)
	if pool > n {
		pool = n
	}
	if genWorkers <= 0 {
		genWorkers = resolveWorkers(workers)
	} else if pool > genWorkers {
		// An explicit GenWorkers bounds concurrent builds here exactly as
		// in the pipeline — fn IS the build — so `-gen-workers 1` really
		// does cap in-flight topologies on the build-only degree specs,
		// the memory-heaviest runs.
		pool = genWorkers
	}
	intra := (genWorkers + pool - 1) / pool

	root := xrand.New(seed)
	rngs := root.SplitN(n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(pool)
	for w := 0; w < pool; w++ {
		go func() {
			defer wg.Done()
			arena := graph.NewCSRArena()
			for {
				if o.rc.interrupted() != nil {
					return
				}
				r := int(next.Add(1)) - 1
				if r >= n {
					return
				}
				if o.skip != nil && o.skip(r) {
					o.rc.noteProgress()
					continue
				}
				if !o.rc.owns(r) {
					continue
				}
				err := protectErr(o.rc, func() error {
					return fn(r, newBuilder(seed, r, rngs[r], intra, arena))
				})
				attempts := 1
				for err != nil && attempts < o.rc.maxAttempts() && o.rc.interrupted() == nil {
					attempts++
					err = protectErr(o.rc, func() error {
						return fn(r, newBuilder(seed, r, retryRNG(seed, n, r), intra, graph.NewCSRArena()))
					})
				}
				if err != nil {
					errs[r] = o.rc.absorbFailure(seed, r, attempts, err, o.partial)
					continue
				}
				if attempts > 1 {
					o.rc.noteRecovered()
				}
				o.rc.noteProgress()
			}
		}()
	}
	wg.Wait()
	if err := o.rc.interrupted(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// withSweeper runs fn with a standalone source-sweep pool of `shards`
// scratches (<=0 sizes it to GOMAXPROCS), for specs that sweep a topology
// built outside the realization engine (paired-workload claims that probe
// one shared overlay). Stream derivation inside Sources is identical to
// the pipelined engine's.
func withSweeper(shards int, seed uint64, fn func(sw *sweeper) error) error {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return fn(newSweeper(seed, shards))
}
