package sim

import (
	"testing"
)

func TestFairnessCutoffLowersGini(t *testing.T) {
	t.Parallel()
	figs, err := Fairness(tinyScale, 991)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("fairness panels %d", len(figs))
	}
	gini := figs[0]
	for _, s := range gini.Series {
		if len(s.Points) < 2 {
			t.Fatalf("series %s too short", s.Label)
		}
		// x axis order: 10, 20, 40, 80, 0(none). The no-cutoff point must
		// be the most unequal; kc=10 the most equal.
		first := s.Points[0]              // kc=10
		last := s.Points[len(s.Points)-1] // no cutoff
		if first.X != 10 || last.X != 0 {
			t.Fatalf("unexpected x layout in %s: %+v", s.Label, s.Points)
		}
		if first.Y >= last.Y {
			t.Errorf("%s: Gini at kc=10 (%.3f) should be below no-cutoff (%.3f)",
				s.Label, first.Y, last.Y)
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Errorf("%s: Gini %v out of [0,1]", s.Label, p.Y)
			}
		}
	}
	top := figs[1]
	for _, s := range top.Series {
		first := s.Points[0]
		last := s.Points[len(s.Points)-1]
		if first.Y >= last.Y {
			t.Errorf("%s: top-1%% share at kc=10 (%.3f) should be below no-cutoff (%.3f)",
				s.Label, first.Y, last.Y)
		}
	}
	// The dynamic panel: NF query-handling work must also flatten under
	// the hard cutoff, not just the degree proxy.
	searchLoad := figs[2]
	if len(searchLoad.Series) != 1 {
		t.Fatalf("searchload series %d", len(searchLoad.Series))
	}
	sl := searchLoad.Series[0]
	if sl.Points[0].X != 10 || sl.Points[len(sl.Points)-1].X != 0 {
		t.Fatalf("unexpected searchload x layout: %+v", sl.Points)
	}
	if sl.Points[0].Y >= sl.Points[len(sl.Points)-1].Y {
		t.Errorf("NF load Gini at kc=10 (%.3f) should be below no-cutoff (%.3f)",
			sl.Points[0].Y, sl.Points[len(sl.Points)-1].Y)
	}
}

// TestSpecDeterminism verifies that identical seeds reproduce identical
// figure data despite the concurrent realization runner — the property
// EXPERIMENTS.md's "reproducible from the recorded seed" claim rests on.
func TestSpecDeterminism(t *testing.T) {
	t.Parallel()
	for _, id := range []string{"fig1c", "table1", "messaging"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			spec, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			a, err := spec.Run(tinyScale, 777)
			if err != nil {
				t.Fatal(err)
			}
			b, err := spec.Run(tinyScale, 777)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("panel counts differ: %d vs %d", len(a), len(b))
			}
			for fi := range a {
				if len(a[fi].Series) != len(b[fi].Series) {
					t.Fatalf("%s: series counts differ", a[fi].ID)
				}
				for si := range a[fi].Series {
					sa, sb := a[fi].Series[si], b[fi].Series[si]
					if sa.Label != sb.Label || len(sa.Points) != len(sb.Points) {
						t.Fatalf("%s/%s: shape differs", a[fi].ID, sa.Label)
					}
					for pi := range sa.Points {
						if sa.Points[pi] != sb.Points[pi] {
							t.Fatalf("%s/%s point %d differs: %+v vs %+v",
								a[fi].ID, sa.Label, pi, sa.Points[pi], sb.Points[pi])
						}
					}
				}
			}
		})
	}
}
