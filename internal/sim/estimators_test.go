package sim

// Estimator suite: the PR-9 estimators (batched pivot betweenness in
// attack, landmark path stats in table1, capped delivery-walk budgets)
// must be (a) schedule-invariant — bit-identical figures for any
// (Workers, SourceShards, GenWorkers) — and (b) in agreement with the
// exact measurements they replace at paper scale. These tests are in CI's
// race matrix (the "Estimator" pattern).

import (
	"reflect"
	"strings"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/xrand"
)

func estimatorScale() Scale {
	return Scale{
		NDegree: 2000, NSearch: 900, NSubstrate: 1200, NOverlay: 600,
		Realizations: 2, Sources: 8, MaxTTLFlood: 12, MaxTTLNF: 6,
		BCPivots: 16, PathLandmarks: 4, PathPairs: 120, WalkCap: 30_000,
	}
}

// TestEstimatorSpecsScheduleInvariant pins that every estimator-backed
// spec produces bit-identical figures for any scheduling knobs.
func TestEstimatorSpecsScheduleInvariant(t *testing.T) {
	t.Parallel()
	specs := []struct {
		name string
		run  func(Scale, uint64) ([]Figure, error)
	}{
		{"attack", Attack},
		{"table1", Table1},
		{"delivery", Delivery},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			t.Parallel()
			base := estimatorScale()
			base.Workers, base.SourceShards, base.GenWorkers = 1, 1, 1
			want, err := spec.run(base, 77)
			if err != nil {
				t.Fatal(err)
			}
			for _, knobs := range [][3]int{{2, 2, 2}, {3, 1, 2}, {0, 0, 0}} {
				sc := estimatorScale()
				sc.Workers, sc.SourceShards, sc.GenWorkers = knobs[0], knobs[1], knobs[2]
				got, err := spec.run(sc, 77)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s differs at workers=%d shards=%d gen=%d",
						spec.name, knobs[0], knobs[1], knobs[2])
				}
			}
		})
	}
}

// TestEstimatorLandmarkAgreementPaperScale is the table1 agreement gate at
// paper scale: on a 10⁴-node γ=2.2 CM giant (the paper's search topology)
// the landmark mean must bracket and closely track the exact sampled-BFS
// mean.
func TestEstimatorLandmarkAgreementPaperScale(t *testing.T) {
	t.Parallel()
	f, _, err := gen.CMFrozen(gen.CMConfig{N: 10_000, M: 2, Gamma: 2.2}, gen.Build{RNG: xrand.New(12)})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := f.InducedFrozen(f.GiantComponent())
	exact := sub.SamplePathStats(40, xrand.New(5)).MeanDistance
	ls := sub.LandmarkPathStats(16, 2000, xrand.New(5))
	if ls.MeanLowerBound > exact || ls.MeanDistance < exact*0.97 {
		t.Fatalf("exact mean %.3f outside landmark bracket [%.3f, %.3f]",
			exact, ls.MeanLowerBound, ls.MeanDistance)
	}
	if ls.MeanDistance > exact*1.25 {
		t.Fatalf("landmark estimate %.3f too loose vs exact %.3f (>25%%)", ls.MeanDistance, exact)
	}
}

// TestEstimatorDeliveryCapAgreement: a generous cap is a no-op — the
// figure is bit-identical to the uncapped run and reports zero
// truncations — while an aggressive cap documents its truncations in the
// notes.
func TestEstimatorDeliveryCapAgreement(t *testing.T) {
	t.Parallel()
	sc := estimatorScale()
	sc.WalkCap = 0
	uncapped, err := Delivery(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc.WalkCap = 1 << 30
	generous, err := Delivery(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(uncapped[0].Series, generous[0].Series) {
		t.Fatal("generous walk cap changed the delivery series")
	}
	if !strings.Contains(generous[0].Notes, "no walks truncated") {
		t.Fatalf("generous cap notes missing truncation accounting: %q", generous[0].Notes)
	}
	sc.WalkCap = 6000 // below some first-arrival times at the larger sizes
	tight, err := Delivery(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tight[0].Notes, "truncated") || strings.Contains(tight[0].Notes, "no walks truncated") {
		t.Fatalf("tight cap notes missing truncation counts: %q", tight[0].Notes)
	}
}

// TestEstimatorAttackSeriesShape: the attack figure now carries the
// batched betweenness series and its stderr column alongside the two
// legacy strategies per cutoff, and the stderr series is positive where
// nodes were removed by estimated score.
func TestEstimatorAttackSeriesShape(t *testing.T) {
	t.Parallel()
	sc := estimatorScale()
	figs, err := Attack(sc, 21)
	if err != nil {
		t.Fatal(err)
	}
	fig := figs[0]
	// 2 cutoffs × (random, degree) + 2 cutoffs × (betweenness, stderr).
	if len(fig.Series) != 8 {
		t.Fatalf("attack figure has %d series, want 8", len(fig.Series))
	}
	var bcSeries, seSeries int
	for _, s := range fig.Series {
		if strings.Contains(s.Label, "betweenness attack") {
			if strings.Contains(s.Label, "stderr") {
				seSeries++
				pos := 0
				for _, p := range s.Points {
					if p.Y > 0 {
						pos++
					}
				}
				if pos == 0 {
					t.Fatalf("stderr series %q all zero", s.Label)
				}
			} else {
				bcSeries++
				last := s.Points[len(s.Points)-1]
				if last.Y >= 1 {
					t.Fatalf("betweenness series %q removed 40%% with no damage", s.Label)
				}
			}
		}
	}
	if bcSeries != 2 || seSeries != 2 {
		t.Fatalf("betweenness series count = %d, stderr = %d, want 2 and 2", bcSeries, seSeries)
	}
	if !strings.Contains(fig.Notes, "Brandes-Pich") {
		t.Fatalf("attack notes missing estimator documentation: %q", fig.Notes)
	}
}

// TestEstimatorTable1LandmarkNotes: with landmarks enabled the table1
// figure documents the estimator and its bracket; with landmarks off the
// exact path is untouched.
func TestEstimatorTable1LandmarkNotes(t *testing.T) {
	t.Parallel()
	sc := estimatorScale()
	figs, err := Table1(sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(figs[0].Notes, "landmark") {
		t.Fatalf("table1 notes missing landmark documentation: %q", figs[0].Notes)
	}
	for _, s := range figs[0].Series {
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %q has non-positive distance estimate", s.Label)
			}
		}
	}
	sc.PathLandmarks = 0
	exactFigs, err := Table1(sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exactFigs[0].Notes, "landmark") {
		t.Fatal("exact table1 run mentions landmarks")
	}
}
