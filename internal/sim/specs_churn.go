package sim

// Churn is the extension experiment for the paper's §VI future work:
// join/leave dynamics while maintaining scale-freeness under a hard
// cutoff. It runs the internal/churn simulator with balanced churn
// (pJoin=0.5) on a kc-capped overlay and compares the reconnect-repair
// policy (the paper's "minimum of 2-3 links" guideline enforced
// continuously) against no repair, tracking giant-component survival and
// NF search efficiency over time, with the maintenance messaging cost per
// event recorded in the figure notes.

import (
	"fmt"

	"scalefree/internal/churn"
	"scalefree/internal/stats"
)

// Churn measures overlay health vs churn events with and without repair.
func Churn(sc Scale, seed uint64) ([]Figure, error) {
	const (
		m     = 2
		kc    = 10
		pJoin = 0.5
		ttl   = 4
	)
	events := 2 * sc.NSearch
	probeEvery := events / 8
	policies := []churn.RepairPolicy{churn.ReconnectRepair, churn.NoRepair}

	giant := Figure{
		ID:     "churn-giant",
		Title:  fmt.Sprintf("Giant component under balanced churn (PA, m=%d, kc=%d, pJoin=%.1f)", m, kc, pJoin),
		XLabel: "churn events", YLabel: "giant component fraction",
	}
	hits := Figure{
		ID:     "churn-nfhits",
		Title:  fmt.Sprintf("NF search efficiency under balanced churn (tau=%d)", ttl),
		XLabel: "churn events", YLabel: "NF hits",
	}
	var msgNotes string
	for pi, policy := range policies {
		policy := policy
		giantRows := make([][]float64, sc.Realizations)
		hitRows := make([][]float64, sc.Realizations)
		msgs := make([]float64, sc.Realizations)
		var xs []float64
		err := forEachRealization(engineOpts{rc: sc.Run}, sc.Workers, sc.GenWorkers, sc.Realizations, seed+uint64(pi)*2713, func(r int, b *builder) error {
			// The churn trace is one long event sequence; it draws from the
			// realization's legacy stream, sequential by nature.
			rng := b.rng
			sim, err := churn.New(churn.Config{
				InitialN: sc.NSearch,
				M:        m,
				KC:       kc,
				Join:     churn.JoinPreferential,
				Repair:   policy,
				Graceful: true,
			}, rng)
			if err != nil {
				return err
			}
			trace, err := sim.Run(events, pJoin, probeEvery, sc.Sources, ttl)
			if err != nil {
				return err
			}
			grow := make([]float64, len(trace))
			hrow := make([]float64, len(trace))
			for i, snap := range trace {
				grow[i] = snap.GiantFrac
				hrow[i] = snap.NFHits
			}
			giantRows[r] = grow
			hitRows[r] = hrow
			msgs[r] = trace[len(trace)-1].MessagesPerEvent
			if r == 0 {
				xs = make([]float64, len(trace))
				for i, snap := range trace {
					xs[i] = float64(snap.Event)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", policy, err)
		}
		gs, err := aggregate(policy.String(), giantRows, 0)
		if err != nil {
			return nil, err
		}
		hs, err := aggregate(policy.String(), hitRows, 0)
		if err != nil {
			return nil, err
		}
		for i := range gs.Points {
			gs.Points[i].X = xs[i]
			hs.Points[i].X = xs[i]
		}
		giant.Series = append(giant.Series, gs)
		hits.Series = append(hits.Series, hs)
		if msgNotes != "" {
			msgNotes += "; "
		}
		msgNotes += fmt.Sprintf("%s: %.1f msgs/event", policy, stats.Mean(msgs))
	}
	giant.Notes = "maintenance cost — " + msgNotes
	hits.Notes = giant.Notes
	return []Figure{giant, hits}, nil
}
