package sim

// Tests for the PR 8 tentpole's journal: record codec round-trips, header
// validation, torn-tail truncation, and — the acceptance criterion — that
// a run resumed from a truncated journal reproduces the uninterrupted
// run's series bit-for-bit under different scheduler knobs, while
// actually skipping the journaled realizations.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
)

func testScaleTiny() Scale {
	return Scale{
		NDegree: 1_500, NSearch: 400, NSubstrate: 800, NOverlay: 400,
		Realizations: 3, Sources: 4, MaxTTLFlood: 6, MaxTTLNF: 4,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	sc := testScaleTiny()
	path := filepath.Join(t.TempDir(), "fig9.journal")
	j, err := OpenJournal(path, "fig9", 2007, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]float64{{1, 2.5, -3}, {0, 4, 5e-9}}
	if err := j.append(journalKey{kind: recSweepSlots, stream: 7, sub: 11, r: 1}, encodeRowBlock(rows, 3)); err != nil {
		t.Fatal(err)
	}
	hist := []int{0, 5, 9, 2}
	if err := j.append(journalKey{kind: recDegreeHist, stream: 7, r: 2}, encodeHistogram(hist)); err != nil {
		t.Fatal(err)
	}
	fr := FailureRecord{Stream: 7, Realization: 0, Attempts: 2, Err: "boom", Stack: "stack trace"}
	if err := j.append(journalKey{kind: recFailure, stream: 7, r: 0}, encodeFailure(fr)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, "fig9", 2007, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Resumed(); got != 2 {
		t.Fatalf("Resumed() = %d, want 2", got)
	}
	p, ok := j2.resumed[journalKey{kind: recSweepSlots, stream: 7, sub: 11, r: 1}]
	if !ok {
		t.Fatal("sweep record not resumed")
	}
	gotRows, ok := decodeRowBlock(p, 2, 3)
	if !ok || !reflect.DeepEqual(gotRows, rows) {
		t.Fatalf("decodeRowBlock = %v (ok=%v), want %v", gotRows, ok, rows)
	}
	if _, ok := j2.resumed[journalKey{kind: recSweepSlots, stream: 7, sub: 12, r: 1}]; ok {
		t.Fatal("record found under wrong sub tag")
	}
	ph, ok := j2.resumed[journalKey{kind: recDegreeHist, stream: 7, r: 2}]
	if !ok {
		t.Fatal("histogram record not resumed")
	}
	gotHist, ok := decodeHistogram(ph)
	if !ok || !reflect.DeepEqual(gotHist, hist) {
		t.Fatalf("decodeHistogram = %v (ok=%v), want %v", gotHist, ok, hist)
	}
	frs := j2.ResumedFailures()
	if len(frs) != 1 || frs[0] != fr {
		t.Fatalf("ResumedFailures() = %+v, want [%+v]", frs, fr)
	}
}

func TestJournalHeaderMismatch(t *testing.T) {
	sc := testScaleTiny()
	path := filepath.Join(t.TempDir(), "x.journal")
	j, err := OpenJournal(path, "fig9", 2007, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := OpenJournal(path, "fig10", 2007, sc, true); err == nil {
		t.Fatal("resume with a different spec did not fail")
	}
	if _, err := OpenJournal(path, "fig9", 2008, sc, true); err == nil {
		t.Fatal("resume with a different seed did not fail")
	}
	sc2 := sc
	sc2.Realizations++
	if _, err := OpenJournal(path, "fig9", 2007, sc2, true); err == nil {
		t.Fatal("resume with a different scale did not fail")
	}
	// The scheduler knobs are deliberately NOT pinned: resuming with
	// different parallelism must work (output is scheduler-independent).
	sc3 := sc
	sc3.Workers, sc3.SourceShards, sc3.GenWorkers = 7, 3, 2
	j3, err := OpenJournal(path, "fig9", 2007, sc3, true)
	if err != nil {
		t.Fatalf("resume with different scheduler knobs failed: %v", err)
	}
	j3.Close()
}

func TestJournalTornTailTruncated(t *testing.T) {
	sc := testScaleTiny()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.journal")
	j, err := OpenJournal(path, "fig9", 2007, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := j.append(journalKey{kind: recSweepSlots, stream: 1, r: r}, encodeRowBlock([][]float64{{float64(r)}}, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Chop into the middle of the last record, then smear garbage after
	// the cut — both a short tail and a corrupt one must recover the
	// 2-record prefix and truncate the rest.
	torn := append(append([]byte{}, full[:len(full)-5]...), []byte("garbage!")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, "fig9", 2007, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Resumed(); got != 2 {
		t.Fatalf("Resumed() after torn tail = %d, want 2", got)
	}
	// Appends after recovery must extend the clean prefix.
	if err := j2.append(journalKey{kind: recSweepSlots, stream: 1, r: 2}, encodeRowBlock([][]float64{{2}}, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path, "fig9", 2007, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.Resumed(); got != 3 {
		t.Fatalf("Resumed() after repair = %d, want 3", got)
	}
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, full) {
		t.Fatal("repaired journal differs from the uninterrupted one")
	}
}

func TestJournalNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.journal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, "fig9", 2007, testScaleTiny(), true); err == nil {
		t.Fatal("resume from a non-journal file did not fail")
	}
}

// countingFactory wraps a factory and counts invocations, proving resume
// really skips journaled realizations instead of recomputing them.
func countingFactory(inner topoFactory, n *atomic.Int64) topoFactory {
	return func(r int, b *builder) (*graph.Frozen, error) {
		n.Add(1)
		return inner(r, b)
	}
}

// TestSweepSeriesResumeBitIdentical is the tentpole acceptance test at
// the helper level: a journaled sweepSeries run, killed by truncating its
// journal mid-record, resumed under several different (Workers,
// SourceShards, GenWorkers) settings, must reproduce the uninterrupted
// series bit-for-bit while skipping every journaled realization.
func TestSweepSeriesResumeBitIdentical(t *testing.T) {
	sc := testScaleTiny()
	const seed, label = 2007, "fl"
	factory := paTopo(sc.NSearch, 2, gen.NoCutoff)
	cfg := searchCfg{alg: algFL, maxTTL: sc.MaxTTLFlood, sources: sc.Sources, realizations: sc.Realizations}

	baseline, err := searchSeries(label, factory, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}

	// Full journaled run: identical output, journal fully populated.
	dir := t.TempDir()
	path := filepath.Join(dir, "full.journal")
	j, err := OpenJournal(path, "fig", seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	jcfg := cfg
	jcfg.run = NewRunControl(context.Background(), 0, 0, j)
	journaled, err := searchSeries(label, factory, jcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(journaled, baseline) {
		t.Fatal("journaling perturbed the series")
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a SIGKILL mid-write: keep the header and a prefix of the
	// records, tear the next one in half.
	torn := full[:len(full)-30]
	for _, knobs := range []struct{ workers, shards, gw int }{
		{1, 1, 1}, {2, 2, 1}, {3, 1, 2},
	} {
		resumePath := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(resumePath, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(resumePath, "fig", seed, sc, true)
		if err != nil {
			t.Fatal(err)
		}
		replayed := j2.Resumed()
		if replayed == 0 || replayed >= sc.Realizations {
			t.Fatalf("torn journal resumed %d records, want in (0, %d)", replayed, sc.Realizations)
		}
		var builds atomic.Int64
		rcfg := cfg
		rcfg.workers, rcfg.sourceShards, rcfg.genWorkers = knobs.workers, knobs.shards, knobs.gw
		rcfg.run = NewRunControl(context.Background(), 0, 0, j2)
		resumed, err := searchSeries(label, countingFactory(factory, &builds), rcfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resumed, baseline) {
			t.Fatalf("resumed series differs from baseline at knobs %+v", knobs)
		}
		if got, want := builds.Load(), int64(sc.Realizations-replayed); got != want {
			t.Fatalf("resume rebuilt %d realizations, want %d (replayed %d)", got, want, replayed)
		}
	}
}

// TestMergedDegreeDistResume pins the same property for the degree specs'
// histogram records.
func TestMergedDegreeDistResume(t *testing.T) {
	sc := testScaleTiny()
	const seed = 99
	factory := paTopo(sc.NDegree, 2, gen.NoCutoff)

	baseline, err := mergedDegreeDist("tag", factory, sc, seed)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "deg.journal")
	j, err := OpenJournal(path, "fig1a", seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	jsc := sc
	jsc.Run = NewRunControl(context.Background(), 0, 0, j)
	journaled, err := mergedDegreeDist("tag", factory, jsc, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(journaled, baseline) {
		t.Fatal("journaling perturbed the merged distribution")
	}

	j2, err := OpenJournal(path, "fig1a", seed, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Resumed(); got != sc.Realizations {
		t.Fatalf("Resumed() = %d, want %d", got, sc.Realizations)
	}
	var builds atomic.Int64
	rsc := sc
	rsc.Workers = 2
	rsc.Run = NewRunControl(context.Background(), 0, 0, j2)
	resumed, err := mergedDegreeDist("tag", countingFactory(factory, &builds), rsc, seed)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if !reflect.DeepEqual(resumed, baseline) {
		t.Fatal("resumed merged distribution differs from baseline")
	}
	if builds.Load() != 0 {
		t.Fatalf("fully journaled resume still built %d topologies", builds.Load())
	}
	// A different tag must NOT replay these records: the tag is what keeps
	// seed-sharing sweeps apart in the journal.
	j3, err := OpenJournal(path, "fig1a", seed, sc, true)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt atomic.Int64
	osc := sc
	osc.Run = NewRunControl(context.Background(), 0, 0, j3)
	if _, err := mergedDegreeDist("othertag", countingFactory(factory, &rebuilt), osc, seed); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if rebuilt.Load() != int64(sc.Realizations) {
		t.Fatalf("different tag replayed journaled records: built %d, want %d", rebuilt.Load(), sc.Realizations)
	}
}

// TestJournalKeyCollisionRejected pins the guard that found the fig9
// bug: two series checkpointing under the same (seed, label) — as the
// PA and HAPA m=1 panels did — must fail loudly on the FIRST
// checkpointed run, while a panel tag keeps them apart and resumable.
func TestJournalKeyCollisionRejected(t *testing.T) {
	t.Parallel()
	const seed = 555
	sc := testScaleTiny()
	path := filepath.Join(t.TempDir(), "collide.journal")
	j, err := OpenJournal(path, "collide", seed, sc, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rc := NewRunControl(context.Background(), 0, 0, j)
	cfg := searchCfg{alg: algFL, maxTTL: 4, sources: 2, realizations: 2, run: rc}
	pa := paTopo(400, 2, gen.NoCutoff)

	if _, err := searchSeries("m=1, kc=10", pa, cfg, seed); err != nil {
		t.Fatal(err)
	}
	// Same seed, same label, no tag: the collision the guard exists for.
	if _, err := searchSeries("m=1, kc=10", hapaTopo(400, 2, gen.NoCutoff), cfg, seed); err == nil {
		t.Fatal("colliding journal keys were not rejected")
	} else if !strings.Contains(err.Error(), "collision") {
		t.Fatalf("error %q does not name the collision", err)
	}
	// Distinct panel tags keep the keys apart.
	if _, err := searchSeries("m=1, kc=10", pa, cfg.withTag("figXa"), seed); err != nil {
		t.Fatalf("tagged series collided: %v", err)
	}
	if _, err := searchSeries("m=1, kc=10", hapaTopo(400, 2, gen.NoCutoff), cfg.withTag("figXc"), seed); err != nil {
		t.Fatalf("tagged series collided: %v", err)
	}
}
