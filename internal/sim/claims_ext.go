package sim

// Extension claims: checkable conclusions of the extension experiments,
// verified alongside the paper's headline claims by
// `cmd/experiments -verify`. Each ties to a section of EXPERIMENTS.md.

import (
	"fmt"

	"scalefree/internal/churn"
	"scalefree/internal/content"
	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

// ExtensionClaims returns the checkable conclusions of the extension
// experiments, in EXPERIMENTS.md order.
func ExtensionClaims() []Claim {
	return []Claim{
		{
			ID:        "sqrt-replication-optimal",
			Statement: "Square-root replication minimizes expected search size on hard-cutoff overlays (Cohen-Shenker, refs [22][23])",
			Check:     checkSqrtReplication,
		},
		{
			ID:        "churn-repair-preserves-giant",
			Statement: "Reconnect repair preserves the giant component under balanced churn (§VI future work)",
			Check:     checkChurnRepair,
		},
		{
			ID:        "hds-cutoff-dependence",
			Statement: "The high-degree-seeking walk's advantage over a blind walk shrinks under a hard cutoff (ref [62] vs §III-B)",
			Check:     checkHDSCutoffDependence,
		},
		{
			ID:        "cutoff-flattens-search-load",
			Statement: "Hard cutoffs flatten per-peer query-handling load under NF traffic, not just the degree proxy (§I)",
			Check:     checkCutoffFlattensLoad,
		},
	}
}

// AllClaims returns the paper claims followed by the extension claims.
func AllClaims() []Claim {
	return append(Claims(), ExtensionClaims()...)
}

// CheckAllClaims runs the paper claims and the extension claims.
func CheckAllClaims(sc Scale, seed uint64) []ClaimResult {
	return checkClaimList(AllClaims(), sc, seed)
}

func checkSqrtReplication(sc Scale, seed uint64) (bool, string, error) {
	rng := xrand.New(seed)
	g, _, err := gen.PA(gen.PAConfig{N: sc.NSearch, M: 2, KC: 40}, rng)
	if err != nil {
		return false, "", err
	}
	cat, err := content.NewCatalog(100, 1.2)
	if err != nil {
		return false, "", err
	}
	fg := g.Freeze() // every replication strategy probes the same overlay
	queries := 12 * sc.Sources
	maxSteps := 40 * sc.NSearch
	ess := func(s content.Strategy) (float64, error) {
		p, err := content.Replicate(cat, fg.N(), fg.N(), s, xrand.New(seed+1))
		if err != nil {
			return 0, err
		}
		// Sharded query sweep on the shared frozen overlay; stream 0 for
		// every strategy, so all three resolve the identical paired
		// workload.
		steps := make([]int, queries)
		found := make([]bool, queries)
		err = withSweeper(sc.SourceShards, seed+2, func(sw *sweeper) error {
			return sw.Sources(0, queries, func(_, q int, rng *xrand.RNG, _ *search.Scratch) error {
				steps[q], found[q] = content.ResolveQuery(fg, p, cat, maxSteps, rng)
				return nil
			})
		})
		if err != nil {
			return 0, err
		}
		r := content.CollectESS(steps, found)
		if r.Found == 0 {
			return 0, fmt.Errorf("no queries resolved for %s", s)
		}
		return r.MeanSteps, nil
	}
	u, err := ess(content.Uniform)
	if err != nil {
		return false, "", err
	}
	p, err := ess(content.Proportional)
	if err != nil {
		return false, "", err
	}
	s, err := ess(content.SquareRoot)
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("ESS uniform=%.0f proportional=%.0f sqrt=%.0f", u, p, s)
	return s < u && s < p, detail, nil
}

func checkChurnRepair(sc Scale, seed uint64) (bool, string, error) {
	giantAfter := func(policy churn.RepairPolicy) (float64, error) {
		sim, err := churn.New(churn.Config{
			InitialN: sc.NSearch, M: 2, KC: 10,
			Join:     churn.JoinPreferential,
			Repair:   policy,
			Graceful: true,
		}, xrand.New(seed))
		if err != nil {
			return 0, err
		}
		trace, err := sim.Run(2*sc.NSearch, 0.5, 0, 0, 0)
		if err != nil {
			return 0, err
		}
		return trace[len(trace)-1].GiantFrac, nil
	}
	repaired, err := giantAfter(churn.ReconnectRepair)
	if err != nil {
		return false, "", err
	}
	bare, err := giantAfter(churn.NoRepair)
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("giant after %d events: repair=%.3f no-repair=%.3f", 2*sc.NSearch, repaired, bare)
	return repaired >= 0.95 && repaired >= bare, detail, nil
}

func checkHDSCutoffDependence(sc Scale, seed uint64) (bool, string, error) {
	ratio := func(kc int) (float64, error) {
		factory := paTopo(sc.NSearch, 2, kc)
		steps := sc.NSearch / 2
		hdsHits := make([]float64, sc.Realizations*sc.Sources)
		rwHits := make([]float64, sc.Realizations*sc.Sources)
		err := forEachRealizationPipeline(engineOpts{rc: sc.Run}, sc.Workers, sc.SourceShards, sc.GenWorkers, sc.Realizations, seed+uint64(kc), func(r int, b *builder) (*graph.Frozen, error) {
			return sweepTopo(factory, r, b)
		}, func(r int, f *graph.Frozen, sw *sweeper) error {
			return sw.Sources(uint64(r), sc.Sources, func(_, s int, rng *xrand.RNG, scratch *search.Scratch) error {
				src := rng.Intn(f.N())
				rh, err := scratch.HighDegreeWalk(f, src, steps, rng)
				if err != nil {
					return err
				}
				// Consume rh before the next scratch call recycles it.
				hdsHits[r*sc.Sources+s] = float64(rh.HitsAt(steps))
				rb, err := scratch.RandomWalk(f, src, steps, rng)
				if err != nil {
					return err
				}
				rwHits[r*sc.Sources+s] = float64(rb.HitsAt(steps))
				return nil
			})
		})
		if err != nil {
			return 0, err
		}
		var hds, rw float64
		for i := range hdsHits {
			hds += hdsHits[i]
			rw += rwHits[i]
		}
		if rw == 0 {
			return 0, fmt.Errorf("blind walk covered nothing")
		}
		return hds / rw, nil
	}
	free, err := ratio(gen.NoCutoff)
	if err != nil {
		return false, "", err
	}
	capped, err := ratio(10)
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("HDS/RW coverage ratio: no-kc=%.2f kc10=%.2f", free, capped)
	return free > 1 && capped < free, detail, nil
}

func checkCutoffFlattensLoad(sc Scale, seed uint64) (bool, string, error) {
	loadGini := func(kc int) (float64, error) {
		g, _, err := gen.PA(gen.PAConfig{N: sc.NSearch, M: 2, KC: kc}, xrand.New(seed))
		if err != nil {
			return 0, err
		}
		f := g.Freeze()
		queries := 12 * sc.Sources
		var gini float64
		err = withSweeper(sc.SourceShards, seed+1, func(sw *sweeper) error {
			// Each shard charges its own Load; integer merges commute, so
			// the total is identical for any shard count.
			loads := make([]*search.Load, sw.shards)
			err := sw.Sources(0, queries, func(shard, q int, rng *xrand.RNG, scratch *search.Scratch) error {
				if loads[shard] == nil {
					loads[shard] = search.NewLoad(f.N())
				}
				return scratch.NormalizedFloodLoad(f, rng.Intn(f.N()), sc.MaxTTLNF, 2, rng, loads[shard])
			})
			if err != nil {
				return err
			}
			total := search.NewLoad(f.N())
			for _, ld := range loads {
				if ld == nil {
					continue
				}
				if err := total.Merge(ld); err != nil {
					return err
				}
			}
			gini = stats.Gini(total.Work())
			return nil
		})
		return gini, err
	}
	free, err := loadGini(gen.NoCutoff)
	if err != nil {
		return false, "", err
	}
	capped, err := loadGini(10)
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("NF-load Gini: no-kc=%.3f kc10=%.3f", free, capped)
	return capped < free, detail, nil
}
