package sim

// Extension claims: checkable conclusions of the extension experiments,
// verified alongside the paper's headline claims by
// `cmd/experiments -verify`. Each ties to a section of EXPERIMENTS.md.

import (
	"fmt"

	"scalefree/internal/churn"
	"scalefree/internal/content"
	"scalefree/internal/gen"
	"scalefree/internal/search"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

// ExtensionClaims returns the checkable conclusions of the extension
// experiments, in EXPERIMENTS.md order.
func ExtensionClaims() []Claim {
	return []Claim{
		{
			ID:        "sqrt-replication-optimal",
			Statement: "Square-root replication minimizes expected search size on hard-cutoff overlays (Cohen-Shenker, refs [22][23])",
			Check:     checkSqrtReplication,
		},
		{
			ID:        "churn-repair-preserves-giant",
			Statement: "Reconnect repair preserves the giant component under balanced churn (§VI future work)",
			Check:     checkChurnRepair,
		},
		{
			ID:        "hds-cutoff-dependence",
			Statement: "The high-degree-seeking walk's advantage over a blind walk shrinks under a hard cutoff (ref [62] vs §III-B)",
			Check:     checkHDSCutoffDependence,
		},
		{
			ID:        "cutoff-flattens-search-load",
			Statement: "Hard cutoffs flatten per-peer query-handling load under NF traffic, not just the degree proxy (§I)",
			Check:     checkCutoffFlattensLoad,
		},
	}
}

// AllClaims returns the paper claims followed by the extension claims.
func AllClaims() []Claim {
	return append(Claims(), ExtensionClaims()...)
}

// CheckAllClaims runs the paper claims and the extension claims.
func CheckAllClaims(sc Scale, seed uint64) []ClaimResult {
	claims := AllClaims()
	out := make([]ClaimResult, len(claims))
	for i, c := range claims {
		pass, detail, err := c.Check(sc, seed+uint64(i)*7717)
		out[i] = ClaimResult{ID: c.ID, Statement: c.Statement, Pass: pass && err == nil, Detail: detail, Err: err}
	}
	return out
}

func checkSqrtReplication(sc Scale, seed uint64) (bool, string, error) {
	rng := xrand.New(seed)
	g, _, err := gen.PA(gen.PAConfig{N: sc.NSearch, M: 2, KC: 40}, rng)
	if err != nil {
		return false, "", err
	}
	cat, err := content.NewCatalog(100, 1.2)
	if err != nil {
		return false, "", err
	}
	fg := g.Freeze() // every replication strategy probes the same overlay
	ess := func(s content.Strategy) (float64, error) {
		p, err := content.Replicate(cat, g.N(), g.N(), s, xrand.New(seed+1))
		if err != nil {
			return 0, err
		}
		r, err := content.ExpectedSearchSize(fg, p, cat, 12*sc.Sources, 40*sc.NSearch, xrand.New(seed+2))
		if err != nil {
			return 0, err
		}
		if r.Found == 0 {
			return 0, fmt.Errorf("no queries resolved for %s", s)
		}
		return r.MeanSteps, nil
	}
	u, err := ess(content.Uniform)
	if err != nil {
		return false, "", err
	}
	p, err := ess(content.Proportional)
	if err != nil {
		return false, "", err
	}
	s, err := ess(content.SquareRoot)
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("ESS uniform=%.0f proportional=%.0f sqrt=%.0f", u, p, s)
	return s < u && s < p, detail, nil
}

func checkChurnRepair(sc Scale, seed uint64) (bool, string, error) {
	giantAfter := func(policy churn.RepairPolicy) (float64, error) {
		sim, err := churn.New(churn.Config{
			InitialN: sc.NSearch, M: 2, KC: 10,
			Join:     churn.JoinPreferential,
			Repair:   policy,
			Graceful: true,
		}, xrand.New(seed))
		if err != nil {
			return 0, err
		}
		trace, err := sim.Run(2*sc.NSearch, 0.5, 0, 0, 0)
		if err != nil {
			return 0, err
		}
		return trace[len(trace)-1].GiantFrac, nil
	}
	repaired, err := giantAfter(churn.ReconnectRepair)
	if err != nil {
		return false, "", err
	}
	bare, err := giantAfter(churn.NoRepair)
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("giant after %d events: repair=%.3f no-repair=%.3f", 2*sc.NSearch, repaired, bare)
	return repaired >= 0.95 && repaired >= bare, detail, nil
}

func checkHDSCutoffDependence(sc Scale, seed uint64) (bool, string, error) {
	ratio := func(kc int) (float64, error) {
		var hds, rw float64
		factory := paTopo(sc.NSearch, 2, kc)
		err := forEachRealizationScratch(sc.Workers, sc.Realizations, seed+uint64(kc), func(r int, rng *xrand.RNG, scratch *search.Scratch) error {
			f, err := frozenTopo(factory, r, rng)
			if err != nil {
				return err
			}
			steps := sc.NSearch / 2
			for s := 0; s < sc.Sources; s++ {
				src := rng.Intn(f.N())
				rh, err := search.HighDegreeWalk(f, src, steps, rng)
				if err != nil {
					return err
				}
				rb, err := scratch.RandomWalk(f, src, steps, rng)
				if err != nil {
					return err
				}
				hds += float64(rh.HitsAt(steps))
				rw += float64(rb.HitsAt(steps))
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		if rw == 0 {
			return 0, fmt.Errorf("blind walk covered nothing")
		}
		return hds / rw, nil
	}
	free, err := ratio(gen.NoCutoff)
	if err != nil {
		return false, "", err
	}
	capped, err := ratio(10)
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("HDS/RW coverage ratio: no-kc=%.2f kc10=%.2f", free, capped)
	return free > 1 && capped < free, detail, nil
}

func checkCutoffFlattensLoad(sc Scale, seed uint64) (bool, string, error) {
	loadGini := func(kc int) (float64, error) {
		g, _, err := gen.PA(gen.PAConfig{N: sc.NSearch, M: 2, KC: kc}, xrand.New(seed))
		if err != nil {
			return 0, err
		}
		f := g.Freeze()
		rng := xrand.New(seed + 1)
		load := search.NewLoad(f.N())
		scratch := search.NewScratch(f.N())
		for q := 0; q < 12*sc.Sources; q++ {
			if err := scratch.NormalizedFloodLoad(f, rng.Intn(f.N()), sc.MaxTTLNF, 2, rng, load); err != nil {
				return 0, err
			}
		}
		return stats.Gini(load.Work()), nil
	}
	free, err := loadGini(gen.NoCutoff)
	if err != nil {
		return false, "", err
	}
	capped, err := loadGini(10)
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("NF-load Gini: no-kc=%.3f kc10=%.3f", free, capped)
	return capped < free, detail, nil
}
