package sim

import (
	"fmt"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

// Fairness quantifies the paper's central motivation (§I: hard cutoffs
// exist "to achieve fairness and practicality among all peers"): the Gini
// coefficient of the degree sequence — how unequally neighbor-table load
// is spread — and the load share of the top 1% of peers, as functions of
// the hard cutoff, for PA and DAPA topologies.
func Fairness(sc Scale, seed uint64) ([]Figure, error) {
	cutoffs := []int{10, 20, 40, 80, gen.NoCutoff}
	substrates, err := makeSubstrates(sc.NSubstrate, sc, seed^0xfa17)
	if err != nil {
		return nil, err
	}
	models := []struct {
		label string
		mk    func(kc int) topoFactory
	}{
		{"PA m=2", func(kc int) topoFactory { return paTopo(sc.NSearch, 2, kc) }},
		{"DAPA m=2 tau=10", func(kc int) topoFactory {
			return dapaTopo(substrates, sc.NOverlay, 2, kc, 10)
		}},
	}
	gini := Figure{
		ID:     "fairness-gini",
		Title:  "Load fairness: Gini coefficient of peer degrees vs hard cutoff",
		XLabel: "kc (0 = none)", YLabel: "Gini coefficient",
		Notes: "smaller cutoffs spread neighbor-table load more evenly — the paper's fairness motivation quantified",
	}
	topShare := Figure{
		ID:     "fairness-top1",
		Title:  "Load concentration: degree share of the top 1% of peers vs hard cutoff",
		XLabel: "kc (0 = none)", YLabel: "top-1% load share",
	}
	for mi, model := range models {
		gs := Series{Label: model.label}
		ts := Series{Label: model.label}
		for ci, kc := range cutoffs {
			giniVals := make([]float64, sc.Realizations)
			topVals := make([]float64, sc.Realizations)
			factory := model.mk(kc)
			err := forEachRealization(engineOpts{rc: sc.Run}, sc.Workers, sc.GenWorkers, sc.Realizations, seed+uint64(mi*1000+ci), func(r int, b *builder) error {
				g, err := factory(r, b)
				if err != nil {
					return err
				}
				seq := g.DegreeSequence()
				giniVals[r] = stats.Gini(seq)
				topVals[r] = stats.TopShare(seq, 0.01)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fairness %s kc=%d: %w", model.label, kc, err)
			}
			x := float64(kc)
			gs.Points = append(gs.Points, Point{X: x, Y: stats.Mean(giniVals), Err: stats.StdDev(giniVals)})
			ts.Points = append(ts.Points, Point{X: x, Y: stats.Mean(topVals), Err: stats.StdDev(topVals)})
		}
		gini.Series = append(gini.Series, gs)
		topShare.Series = append(topShare.Series, ts)
	}

	// Third panel: the DYNAMIC version of the same claim. Degree is a
	// proxy for load; here the load is actual NF query-handling work
	// (forwards + receipts) accumulated over many searches.
	searchLoad := Figure{
		ID:     "fairness-searchload",
		Title:  "Search-traffic fairness: Gini of per-peer NF handling work vs hard cutoff (PA m=2)",
		XLabel: "kc (0 = none)", YLabel: "Gini of query-handling work",
		Notes: "degree Gini is a static proxy; this measures work under live NF query traffic",
	}
	sl := Series{Label: "PA m=2, NF traffic"}
	for ci, kc := range cutoffs {
		vals := make([]float64, sc.Realizations)
		factory := paTopo(sc.NSearch, 2, kc)
		queries := 8 * sc.Sources
		err := forEachRealizationPipeline(engineOpts{rc: sc.Run}, sc.Workers, sc.SourceShards, sc.GenWorkers, sc.Realizations, seed+uint64(9000+ci), func(r int, b *builder) (*graph.Frozen, error) {
			return sweepTopo(factory, r, b)
		}, func(r int, f *graph.Frozen, sw *sweeper) error {
			// Each shard charges its own Load accumulator; integer merges
			// commute, so the per-realization total — and its Gini — is
			// identical for any (Workers, SourceShards) setting.
			loads := make([]*search.Load, sw.shards)
			err := sw.Sources(uint64(r), queries, func(shard, q int, rng *xrand.RNG, scratch *search.Scratch) error {
				if loads[shard] == nil {
					loads[shard] = search.NewLoad(f.N())
				}
				return scratch.NormalizedFloodLoad(f, rng.Intn(f.N()), sc.MaxTTLNF, 2, rng, loads[shard])
			})
			if err != nil {
				return err
			}
			total := search.NewLoad(f.N())
			for _, ld := range loads {
				if ld == nil {
					continue
				}
				if err := total.Merge(ld); err != nil {
					return err
				}
			}
			vals[r] = stats.Gini(total.Work())
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("fairness searchload kc=%d: %w", kc, err)
		}
		sl.Points = append(sl.Points, Point{X: float64(kc), Y: stats.Mean(vals), Err: stats.StdDev(vals)})
	}
	searchLoad.Series = []Series{sl}
	return []Figure{gini, topShare, searchLoad}, nil
}
