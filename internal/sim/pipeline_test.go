package sim

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// TestGenWorkersBitForBitDeterminism is the golden-seed regression for the
// pipelined build stage: a representative search spec must produce
// byte-identical Figures for every GenWorkers value crossed with the
// (Workers, SourceShards) grid PR 3 pinned. Fig6 covers the PA and HAPA
// generators plus the flooding kernel across 18 series.
func TestGenWorkersBitForBitDeterminism(t *testing.T) {
	t.Parallel()
	run := func(workers, shards, genWorkers int) []Figure {
		sc := tinyScale
		sc.Workers = workers
		sc.SourceShards = shards
		sc.GenWorkers = genWorkers
		figs, err := Fig6(sc, 2007)
		if err != nil {
			t.Fatalf("workers=%d shards=%d gen=%d: %v", workers, shards, genWorkers, err)
		}
		return figs
	}
	want := run(1, 1, 1)
	for _, tc := range []struct{ workers, shards, genWorkers int }{
		{1, 1, 2}, {1, 1, 4}, {2, 3, 2}, {8, 8, 4}, {1, 8, 4}, {0, 0, 0},
	} {
		if got := run(tc.workers, tc.shards, tc.genWorkers); !reflect.DeepEqual(want, got) {
			t.Fatalf("Fig6 output differs between (1,1,1) and (Workers=%d, SourceShards=%d, GenWorkers=%d)",
				tc.workers, tc.shards, tc.genWorkers)
		}
	}
}

// TestGenWorkersDeterminismRandomizedAlg repeats the check on the NF/RW
// path, whose sweep kernels consume per-source streams while the build
// stage races ahead — the interleaving most at risk from a
// scheduling-dependent stream assignment.
func TestGenWorkersDeterminismRandomizedAlg(t *testing.T) {
	t.Parallel()
	run := func(workers, shards, genWorkers int) Series {
		s, err := searchSeries("rw", paTopo(1000, 2, 40),
			searchCfg{alg: algRW, maxTTL: 5, kMin: 2, sources: 6, realizations: 5,
				workers: workers, sourceShards: shards, genWorkers: genWorkers}, 99)
		if err != nil {
			t.Fatalf("workers=%d shards=%d gen=%d: %v", workers, shards, genWorkers, err)
		}
		return s
	}
	want := run(1, 1, 1)
	for _, tc := range []struct{ workers, shards, genWorkers int }{
		{1, 1, 4}, {2, 3, 2}, {4, 2, 4}, {2, 8, 1},
	} {
		if got := run(tc.workers, tc.shards, tc.genWorkers); !reflect.DeepEqual(want, got) {
			t.Fatalf("RW series differs between (1,1,1) and (Workers=%d, SourceShards=%d, GenWorkers=%d)",
				tc.workers, tc.shards, tc.genWorkers)
		}
	}
}

// TestGenWorkersDeterminismParallelGenerators exercises the generators
// with real intra-build parallelism — chunked CM degree sampling, GRN
// placement/radius queries, and DAPA's batched horizon floods — through
// the degree-distribution engine, pinning byte-identical distributions
// for GenWorkers ∈ {1, 2, 4}.
func TestGenWorkersDeterminismParallelGenerators(t *testing.T) {
	t.Parallel()
	sc := tinyScale
	subsFor := func(genWorkers int) []*graph.Frozen {
		s := sc
		s.GenWorkers = genWorkers
		subs, err := makeSubstrates(s.NSubstrate, s, 0xf00d)
		if err != nil {
			t.Fatal(err)
		}
		return subs
	}
	run := func(genWorkers int) [2]interface{} {
		s := sc
		s.GenWorkers = genWorkers
		cm, err := mergedDegreeDist("cm", cmTopo(s.NDegree, 2, 40, 2.5), s, 77)
		if err != nil {
			t.Fatal(err)
		}
		dapa, err := mergedDegreeDist("dapa", dapaTopo(subsFor(genWorkers), s.NOverlay, 2, 40, 6), s, 78)
		if err != nil {
			t.Fatal(err)
		}
		return [2]interface{}{cm, dapa}
	}
	want := run(1)
	for _, gw := range []int{2, 4} {
		if got := run(gw); !reflect.DeepEqual(want, got) {
			t.Fatalf("CM/DAPA degree distributions differ between GenWorkers=1 and GenWorkers=%d", gw)
		}
	}
}

// TestPipelineLowestIndexError pins the pipeline's error contract: with
// failures in both stages, the lowest realization index wins regardless of
// which stage produced it, matching what a sequential run would have
// reported first.
func TestPipelineLowestIndexError(t *testing.T) {
	t.Parallel()
	errBuild, errSweep := errors.New("build"), errors.New("sweep")
	err := forEachRealizationPipeline(engineOpts{}, 4, 1, 2, 8, 1,
		func(r int, b *builder) (int, error) {
			if r == 5 {
				return 0, errBuild
			}
			return r, nil
		},
		func(r int, v int, sw *sweeper) error {
			if r == 2 {
				return errSweep
			}
			return nil
		})
	if err != errSweep {
		t.Fatalf("err = %v, want the lowest-index error %v (sweep at r=2 beats build at r=5)", err, errSweep)
	}
	err = forEachRealizationPipeline(engineOpts{}, 4, 1, 2, 8, 1,
		func(r int, b *builder) (int, error) {
			if r == 2 {
				return 0, errBuild
			}
			return r, nil
		},
		func(r int, v int, sw *sweeper) error {
			if r == 5 {
				return errSweep
			}
			return nil
		})
	if err != errBuild {
		t.Fatalf("err = %v, want the lowest-index error %v (build at r=2 beats sweep at r=5)", err, errBuild)
	}
}

// TestPipelineErrorSkipsSweep checks a failed build never reaches the
// sweep stage while the other realizations still complete.
func TestPipelineErrorSkipsSweep(t *testing.T) {
	t.Parallel()
	errBuild := errors.New("build")
	var swept [8]atomic.Int32
	err := forEachRealizationPipeline(engineOpts{}, 2, 1, 2, 8, 1,
		func(r int, b *builder) (int, error) {
			if r == 3 {
				return 0, errBuild
			}
			return r, nil
		},
		func(r int, v int, sw *sweeper) error {
			swept[r].Add(1)
			return nil
		})
	if err != errBuild {
		t.Fatalf("err = %v, want %v", err, errBuild)
	}
	for r := range swept {
		want := int32(1)
		if r == 3 {
			want = 0
		}
		if c := swept[r].Load(); c != want {
			t.Errorf("realization %d swept %d times, want %d", r, c, want)
		}
	}
}

// TestPipelineConcurrencyBounds checks both stage bounds: never more than
// GenWorkers concurrent builds, never more than Workers concurrent sweeps.
func TestPipelineConcurrencyBounds(t *testing.T) {
	t.Parallel()
	const workers, genWorkers, n = 3, 2, 24
	var buildIn, buildPeak, sweepIn, sweepPeak atomic.Int32
	peak := func(cur int32, p *atomic.Int32) {
		for {
			v := p.Load()
			if cur <= v || p.CompareAndSwap(v, cur) {
				break
			}
		}
	}
	err := forEachRealizationPipeline(engineOpts{}, workers, 1, genWorkers, n, 7,
		func(r int, b *builder) (int, error) {
			peak(buildIn.Add(1), &buildPeak)
			_ = b.rng.Uint64()
			buildIn.Add(-1)
			return r, nil
		},
		func(r int, v int, sw *sweeper) error {
			peak(sweepIn.Add(1), &sweepPeak)
			sweepIn.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := buildPeak.Load(); p > genWorkers {
		t.Fatalf("observed %d concurrent builds, GenWorkers bound is %d", p, genWorkers)
	}
	if p := sweepPeak.Load(); p > workers {
		t.Fatalf("observed %d concurrent sweeps, worker bound is %d", p, workers)
	}
}

// TestPipelineRunsEachRealizationOnce checks every realization is built
// exactly once and swept exactly once for degenerate and oversized stage
// bounds.
func TestPipelineRunsEachRealizationOnce(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ workers, genWorkers, n int }{
		{-1, -1, 8}, {0, 0, 8}, {1, 16, 5}, {16, 1, 4}, {4, 4, 0}, {2, 3, 1},
	} {
		built := make([]atomic.Int32, tc.n)
		swept := make([]atomic.Int32, tc.n)
		err := forEachRealizationPipeline(engineOpts{}, tc.workers, 1, tc.genWorkers, tc.n, 7,
			func(r int, b *builder) (int, error) {
				built[r].Add(1)
				return r, nil
			},
			func(r int, v int, sw *sweeper) error {
				if v != r {
					t.Errorf("realization %d received snapshot %d", r, v)
				}
				swept[r].Add(1)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < tc.n; r++ {
			if c := built[r].Load(); c != 1 {
				t.Errorf("workers=%d gen=%d: realization %d built %d times", tc.workers, tc.genWorkers, r, c)
			}
			if c := swept[r].Load(); c != 1 {
				t.Errorf("workers=%d gen=%d: realization %d swept %d times", tc.workers, tc.genWorkers, r, c)
			}
		}
	}
}

// TestBuilderContract pins what a builder carries: the legacy stream is
// the r-th split of the root (the contract every engine since PR 1 kept),
// and the phase derivation root is exactly (seed, r).
func TestBuilderContract(t *testing.T) {
	t.Parallel()
	const n, seed = 6, 42
	root := xrand.New(seed)
	wantRNG := make([]uint64, n)
	for r, s := range root.SplitN(n) {
		wantRNG[r] = s.Uint64()
	}
	err := forEachRealization(engineOpts{}, 2, 4, n, seed, func(r int, b *builder) error {
		if got := b.rng.Uint64(); got != wantRNG[r] {
			t.Errorf("realization %d legacy stream is not the r-th root split", r)
		}
		want := xrand.Phases{Seed: seed, Realization: uint64(r)}
		if b.phases != want {
			t.Errorf("realization %d phases = %+v, want %+v", r, b.phases, want)
		}
		if b.genWorkers < 1 {
			t.Errorf("realization %d genWorkers = %d, want >= 1", r, b.genWorkers)
		}
		// The gen context must carry the phase root through.
		if gb := b.gen(); gb.Phases == nil || *gb.Phases != want {
			t.Errorf("realization %d gen build context lost the phase root", r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFrozenTopoEagerSorted checks the build stage delivers snapshots with
// the sorted HasEdge ranges already materialized and correct (the sweep
// side must never trigger the lazy init).
func TestFrozenTopoEagerSorted(t *testing.T) {
	t.Parallel()
	err := forEachRealizationPipeline(engineOpts{}, 1, 1, 2, 2, 9,
		func(r int, b *builder) (*graph.Frozen, error) {
			return sweepTopo(paTopo(300, 2, gen.NoCutoff), r, b)
		},
		func(r int, f *graph.Frozen, sw *sweeper) error {
			// Cross-check membership against the insertion-order adjacency.
			for u := 0; u < f.N(); u++ {
				for _, v := range f.Neighbors(u) {
					if !f.HasEdge(u, int(v)) {
						t.Errorf("r=%d: HasEdge(%d,%d) = false for a real edge", r, u, v)
					}
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
