package sim

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps spec tests fast while preserving structure.
var tinyScale = Scale{
	NDegree:      1500,
	NSearch:      800,
	NSubstrate:   1200,
	NOverlay:     500,
	Realizations: 2,
	Sources:      4,
	MaxTTLFlood:  8,
	MaxTTLNF:     5,
}

func TestRegistryComplete(t *testing.T) {
	t.Parallel()
	want := []string{
		"fig1a", "fig1b", "fig1c", "fig2", "fig3", "fig4", "fig4g",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"table1", "table2", "messaging",
		"attack", "delivery", "kwalk", "fairness", "strategies", "replication", "churn",
		"desflood", "deskwalk", "desfail",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d specs, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Paper == "" || reg[i].Description == "" {
			t.Errorf("spec %s incompletely described", id)
		}
	}
}

func TestLookup(t *testing.T) {
	t.Parallel()
	s, err := Lookup("fig6")
	if err != nil || s.ID != "fig6" {
		t.Fatalf("Lookup(fig6) = %+v, %v", s, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestForEachRealizationDeterministic(t *testing.T) {
	t.Parallel()
	run := func() []uint64 {
		out := make([]uint64, 8)
		err := forEachRealization(engineOpts{}, 0, 0, 8, 42, func(r int, b *builder) error {
			out[r] = b.rng.Uint64()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("realization %d differs across runs", i)
		}
	}
}

func TestForEachRealizationPropagatesError(t *testing.T) {
	t.Parallel()
	err := forEachRealization(engineOpts{}, 2, 0, 4, 1, func(r int, b *builder) error {
		if r == 2 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("err = %v", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

// TestAllSpecsRun executes every registered experiment at tiny scale,
// checking that each produces non-empty figures with sane structure. This
// is the end-to-end smoke test for the whole harness.
func TestAllSpecsRun(t *testing.T) {
	t.Parallel()
	for _, spec := range Registry() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			t.Parallel()
			figs, err := spec.Run(tinyScale, 12345)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if len(figs) == 0 {
				t.Fatalf("%s produced no figures", spec.ID)
			}
			for _, fig := range figs {
				if fig.ID == "" || fig.Title == "" {
					t.Errorf("%s: figure missing ID/title", spec.ID)
				}
				if len(fig.Series) == 0 {
					t.Errorf("%s/%s: no series", spec.ID, fig.ID)
				}
				for _, s := range fig.Series {
					if s.Label == "" {
						t.Errorf("%s/%s: unlabeled series", spec.ID, fig.ID)
					}
				}
			}
		})
	}
}

func TestSearchSeriesMonotoneHits(t *testing.T) {
	t.Parallel()
	s, err := searchSeries("fl", paTopo(500, 2, 0),
		searchCfg{alg: algFL, maxTTL: 6, sources: 5, realizations: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 6 {
		t.Fatalf("points %d, want 6 (tau=1..6)", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y {
			t.Fatalf("mean hits not monotone at %v", s.Points[i].X)
		}
	}
	// FL at tau=6 on a 500-node PA m=2 graph reaches everyone.
	if s.Points[len(s.Points)-1].Y < 400 {
		t.Fatalf("FL coverage %.0f suspiciously low", s.Points[len(s.Points)-1].Y)
	}
}

func TestSearchSeriesRWBudgetBelowNF(t *testing.T) {
	t.Parallel()
	// NF hits >= RW hits at the same message budget, on average (NF does
	// better averaging, §V-B1).
	factory := paTopo(2000, 2, 40)
	cfgNF := searchCfg{alg: algNF, maxTTL: 6, kMin: 2, sources: 10, realizations: 3}
	cfgRW := cfgNF
	cfgRW.alg = algRW
	nf, err := searchSeries("nf", factory, cfgNF, 9)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := searchSeries("rw", factory, cfgRW, 9)
	if err != nil {
		t.Fatal(err)
	}
	last := len(nf.Points) - 1
	if rw.Points[last].Y > nf.Points[last].Y*1.15 {
		t.Fatalf("RW (%.1f) should not beat NF (%.1f) decisively at equal budget",
			rw.Points[last].Y, nf.Points[last].Y)
	}
}

func TestWriteCSV(t *testing.T) {
	t.Parallel()
	fig := Figure{
		ID: "x", XLabel: "k", YLabel: "P",
		Series: []Series{{Label: "s1", Points: []Point{{X: 1, Y: 0.5, Err: 0.1}, {X: 2, Y: 0.25}}}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[0] != "series,k,P,err" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "s1,1,0.5,") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestRenderTable(t *testing.T) {
	t.Parallel()
	fig := Figure{
		ID: "t", Title: "test", XLabel: "tau", YLabel: "hits",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}},
			{Label: "b", Points: []Point{{X: 2, Y: 5}}},
			{Label: "row-only"},
		},
	}
	out := RenderTable(fig)
	for _, want := range []string{"test", "row-only", "a", "b", "10", "20", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderPlot(t *testing.T) {
	t.Parallel()
	fig := Figure{
		ID: "p", Title: "plot", XLabel: "k", YLabel: "P", LogX: true, LogY: true,
		Series: []Series{{Label: "s", Points: []Point{{X: 1, Y: 1}, {X: 10, Y: 0.01}, {X: 100, Y: 0.0001}}}},
	}
	out := RenderPlot(fig, 40, 10)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "*") {
		t.Fatalf("plot output:\n%s", out)
	}
	// Degenerate figure renders a notice, not a panic.
	empty := RenderPlot(Figure{ID: "e", Title: "empty"}, 40, 10)
	if !strings.Contains(empty, "no plottable points") {
		t.Fatalf("empty plot: %q", empty)
	}
}

func TestRenderPlotNonLogAxes(t *testing.T) {
	t.Parallel()
	fig := Figure{
		ID: "lin", Title: "linear", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s", Points: []Point{{X: 0, Y: 0}, {X: 5, Y: 10}}}},
	}
	if out := RenderPlot(fig, 30, 8); !strings.Contains(out, "linear") {
		t.Fatalf("plot: %s", out)
	}
}

func TestAggregate(t *testing.T) {
	t.Parallel()
	s, err := aggregate("x", [][]float64{{0, 1, 2}, {0, 3, 4}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points %v", s.Points)
	}
	if s.Points[0].X != 1 || s.Points[0].Y != 2 {
		t.Fatalf("point 0: %+v", s.Points[0])
	}
	if _, err := aggregate("x", nil, 0); err == nil {
		t.Fatal("empty aggregate should error")
	}
}
