package sim

// Degree-distribution experiments: Figs. 1-4.

import (
	"fmt"

	"scalefree/internal/gen"
	"scalefree/internal/stats"
)

// Fig1a regenerates Fig. 1(a): PA degree distributions without a hard
// cutoff for m = 1, 2, 3, with the fitted exponent recorded in Notes
// (the paper fits between -2.9 and -2.8 at N = 10⁵).
func Fig1a(sc Scale, seed uint64) ([]Figure, error) {
	fig := Figure{
		ID:     "fig1a",
		Title:  "PA degree distributions P(k), no hard cutoff",
		XLabel: "k", YLabel: "P(k)", LogX: true, LogY: true,
	}
	for _, m := range []int{1, 2, 3} {
		d, err := mergedDegreeDist(fmt.Sprintf("fig1a m=%d", m), paTopo(sc.NDegree, m, gen.NoCutoff), sc, seed+uint64(m))
		if err != nil {
			return nil, err
		}
		s, err := degreeSeries(fmt.Sprintf("m=%d", m), d)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
		if fit, err := stats.FitPowerLawBinned(d, 1.5, m, 0); err == nil {
			fig.Notes += fmt.Sprintf("m=%d: gamma=%.2f±%.2f; ", m, fit.Gamma, fit.StdErr)
		}
	}
	return []Figure{fig}, nil
}

// Fig1b regenerates Fig. 1(b): PA degree distributions under hard cutoffs,
// with the exact (m, kc) legend of the paper.
func Fig1b(sc Scale, seed uint64) ([]Figure, error) {
	fig := Figure{
		ID:     "fig1b",
		Title:  "PA degree distributions P(k) for different hard cutoffs",
		XLabel: "k", YLabel: "P(k)", LogX: true, LogY: true,
		Notes: "distributions accumulate a spike at k=kc",
	}
	combos := []struct {
		m, kc int
	}{
		{1, gen.NoCutoff}, {1, 100}, {1, 40}, {1, 20}, {1, 10},
		{3, gen.NoCutoff}, {3, 100}, {2, 40}, {2, 20}, {2, 10},
	}
	for i, c := range combos {
		d, err := mergedDegreeDist(fmt.Sprintf("fig1b m=%d %s", c.m, cutoffLabel(c.kc)), paTopo(sc.NDegree, c.m, c.kc), sc, seed+uint64(i)*101)
		if err != nil {
			return nil, err
		}
		s, err := degreeSeries(fmt.Sprintf("m=%d, %s", c.m, cutoffLabel(c.kc)), d)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}

// Fig1c regenerates Fig. 1(c): the PA degree exponent γ versus the hard
// cutoff kc for m = 1, 2, 3. The paper shows γ degrading from ~3 toward
// ~1.9 as kc shrinks from 50 to 10.
func Fig1c(sc Scale, seed uint64) ([]Figure, error) {
	fig := Figure{
		ID:     "fig1c",
		Title:  "PA degree-distribution exponent vs hard cutoff",
		XLabel: "kc", YLabel: "gamma",
	}
	cutoffs := []int{10, 20, 30, 40, 50}
	for _, m := range []int{1, 2, 3} {
		m := m
		s, err := exponentVsCutoff(
			fmt.Sprintf("m=%d", m),
			func(kc int) topoFactory { return paTopo(sc.NDegree, m, kc) },
			cutoffs, sc, seed+uint64(m)*7919,
		)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}

// Fig2 regenerates Fig. 2: CM degree distributions for γ ∈ {2.2, 2.6, 3.0}
// (one panel each) with the paper's m/kc legend.
func Fig2(sc Scale, seed uint64) ([]Figure, error) {
	var figs []Figure
	for pi, gamma := range []float64{2.2, 2.6, 3.0} {
		fig := Figure{
			ID:     fmt.Sprintf("fig2%c", 'a'+pi),
			Title:  fmt.Sprintf("CM degree distributions, gamma=%.1f", gamma),
			XLabel: "k", YLabel: "P(k)", LogX: true, LogY: true,
		}
		for _, m := range []int{1, 2, 3} {
			for _, kc := range []int{gen.NoCutoff, 40, 10} {
				// The tag is load-bearing here: distinct (pi, m, kc) combos
				// can collide on the same derived seed (e.g. pi=0,m=1,kc=10
				// and pi=0,m=2,no-cutoff both give seed+20), so the journal
				// key needs the legend to tell them apart.
				d, err := mergedDegreeDist(
					fmt.Sprintf("%s m=%d %s", fig.ID, m, cutoffLabel(kc)),
					cmTopo(sc.NDegree, m, kc, gamma),
					sc, seed+uint64(pi*100+m*10+kc),
				)
				if err != nil {
					return nil, err
				}
				s, err := degreeSeries(fmt.Sprintf("m=%d, %s", m, cutoffLabel(kc)), d)
				if err != nil {
					return nil, err
				}
				fig.Series = append(fig.Series, s)
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig3 regenerates Fig. 3: HAPA degree distributions for panels
// (a) no cutoff, (b) kc=50, (c) kc=10, with series m ∈ {1,2,3} at two
// network sizes (the paper uses N = 10⁴ and 10⁵; we use NDegree/10 and
// NDegree).
func Fig3(sc Scale, seed uint64) ([]Figure, error) {
	var figs []Figure
	sizes := []int{sc.NDegree / 10, sc.NDegree}
	for pi, kc := range []int{gen.NoCutoff, 50, 10} {
		fig := Figure{
			ID:     fmt.Sprintf("fig3%c", 'a'+pi),
			Title:  fmt.Sprintf("HAPA degree distributions, %s", cutoffLabel(kc)),
			XLabel: "k", YLabel: "P(k)", LogX: true, LogY: true,
		}
		if kc == gen.NoCutoff {
			fig.Notes = "star-like: super hubs of degree O(N)"
		}
		for _, n := range sizes {
			for _, m := range []int{1, 2, 3} {
				d, err := mergedDegreeDist(fmt.Sprintf("%s m=%d N=%d", fig.ID, m, n), hapaTopo(n, m, kc), sc, seed+uint64(pi*1000+n+m))
				if err != nil {
					return nil, err
				}
				s, err := degreeSeries(fmt.Sprintf("m=%d, N=%d", m, n), d)
				if err != nil {
					return nil, err
				}
				fig.Series = append(fig.Series, s)
			}
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig4 regenerates Fig. 4(a-f): DAPA degree distributions over
// τ_sub ∈ {2,4,6,8,10,20,50}, panels (m, kc) ∈ {1,3} × {none, 40, 10},
// on GRN substrates with k̄ = 10.
func Fig4(sc Scale, seed uint64) ([]Figure, error) {
	substrates, err := makeSubstrates(sc.NSubstrate, sc, seed^0x5eed)
	if err != nil {
		return nil, err
	}
	taus := []int{2, 4, 6, 8, 10, 20, 50}
	var figs []Figure
	panel := 0
	for _, m := range []int{1, 3} {
		for _, kc := range []int{gen.NoCutoff, 40, 10} {
			fig := Figure{
				ID:     fmt.Sprintf("fig4%c", 'a'+panel),
				Title:  fmt.Sprintf("DAPA degree distributions, m=%d, %s", m, cutoffLabel(kc)),
				XLabel: "k", YLabel: "P(k)", LogX: true, LogY: true,
				Notes: "small tau_sub: exponential; large tau_sub: power law",
			}
			panel++
			for _, tau := range taus {
				d, err := mergedDegreeDist(
					fmt.Sprintf("%s tau=%d", fig.ID, tau),
					dapaTopo(substrates, sc.NOverlay, m, kc, tau),
					sc, seed+uint64(panel*1000+tau),
				)
				if err != nil {
					return nil, err
				}
				s, err := degreeSeries(fmt.Sprintf("tau_sub=%d", tau), d)
				if err != nil {
					return nil, err
				}
				fig.Series = append(fig.Series, s)
			}
			figs = append(figs, fig)
		}
	}
	return figs, nil
}

// Fig4g regenerates Fig. 4(g): the DAPA degree exponent versus the hard
// cutoff for m = 1, 2, 3 (the paper flags this data as very noisy with
// large error bars; τ_sub is set high so the overlay is in its power-law
// regime).
func Fig4g(sc Scale, seed uint64) ([]Figure, error) {
	substrates, err := makeSubstrates(sc.NSubstrate, sc, seed^0xdada)
	if err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "fig4g",
		Title:  "DAPA degree-distribution exponent vs hard cutoff (tau_sub=20)",
		XLabel: "kc", YLabel: "gamma",
		Notes: "paper: \"very noisy ... quite large error bars\"",
	}
	cutoffs := []int{10, 20, 30, 40, 50}
	for _, m := range []int{1, 2, 3} {
		m := m
		s, err := exponentVsCutoff(
			fmt.Sprintf("m=%d", m),
			func(kc int) topoFactory { return dapaTopo(substrates, sc.NOverlay, m, kc, 20) },
			cutoffs, sc, seed+uint64(m)*104729,
		)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}
