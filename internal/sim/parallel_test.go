package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// TestWorkersBitForBitDeterminism is the golden-seed regression for the
// parallel engine: a representative search spec must produce byte-identical
// Figure series no matter how many workers run it. Fig6 covers both the
// topology generators and the flooding kernel across 18 series.
func TestWorkersBitForBitDeterminism(t *testing.T) {
	t.Parallel()
	run := func(workers int) []Figure {
		sc := SmokeScale
		sc.Workers = workers
		figs, err := Fig6(sc, 2007)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return figs
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Fig6 output differs between Workers=1 and Workers=8")
	}
}

// TestWorkersDeterminismRandomizedAlg repeats the check on the NF/RW path,
// whose kernels consume the per-realization RNG stream — the part most at
// risk from a scheduling-dependent bug.
func TestWorkersDeterminismRandomizedAlg(t *testing.T) {
	t.Parallel()
	run := func(workers int) Series {
		s, err := searchSeries("rw", paTopo(1000, 2, 40),
			searchCfg{alg: algRW, maxTTL: 5, kMin: 2, sources: 6, realizations: 5, workers: workers}, 99)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	serial := run(1)
	for _, w := range []int{2, 3, 8} {
		if got := run(w); !reflect.DeepEqual(serial, got) {
			t.Fatalf("RW series differs between Workers=1 and Workers=%d", w)
		}
	}
}

// TestForEachRealizationWorkerPool is the table-driven concurrency test of
// the pool itself (run under -race in CI): every realization index must run
// exactly once and receive the same RNG stream regardless of worker count,
// including degenerate counts (negative, zero, more workers than work).
func TestForEachRealizationWorkerPool(t *testing.T) {
	t.Parallel()
	reference := func(n int, seed uint64) []uint64 {
		out := make([]uint64, n)
		if err := forEachRealization(1, n, seed, func(r int, rng *xrand.RNG) error {
			out[r] = rng.Uint64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, tc := range []struct {
		workers, n int
	}{
		{-1, 8}, {0, 8}, {1, 8}, {2, 8}, {3, 7}, {8, 8}, {16, 4}, {4, 0}, {4, 1},
	} {
		tc := tc
		t.Run(fmt.Sprintf("workers=%d_n=%d", tc.workers, tc.n), func(t *testing.T) {
			t.Parallel()
			want := reference(tc.n, 42)
			got := make([]uint64, tc.n)
			ran := make([]atomic.Int32, tc.n)
			err := forEachRealization(tc.workers, tc.n, 42, func(r int, rng *xrand.RNG) error {
				ran[r].Add(1)
				got[r] = rng.Uint64()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < tc.n; r++ {
				if c := ran[r].Load(); c != 1 {
					t.Errorf("realization %d ran %d times", r, c)
				}
				if got[r] != want[r] {
					t.Errorf("realization %d saw a different RNG stream", r)
				}
			}
		})
	}
}

// TestForEachRealizationConcurrencyBounded checks the pool never runs more
// than `workers` realizations at once.
func TestForEachRealizationConcurrencyBounded(t *testing.T) {
	t.Parallel()
	const workers, n = 3, 24
	var inFlight, peak atomic.Int32
	err := forEachRealization(workers, n, 7, func(r int, rng *xrand.RNG) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Touch the RNG so the loop body is not optimized away.
		_ = rng.Uint64()
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent realizations, worker bound is %d", p, workers)
	}
}

// TestForEachRealizationScratchPerWorker checks every realization gets a
// usable scratch and that scratches are per-worker: never more distinct
// instances than workers, and never shared between two realizations at
// once (the -race build would flag concurrent sharing).
func TestForEachRealizationScratchPerWorker(t *testing.T) {
	t.Parallel()
	const workers, n = 4, 32
	var mu sync.Mutex
	seen := make(map[*search.Scratch]int)
	err := forEachRealizationScratch(workers, n, 5, func(r int, rng *xrand.RNG, scratch *search.Scratch) error {
		if scratch == nil {
			return errors.New("nil scratch")
		}
		mu.Lock()
		seen[scratch]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) > workers {
		t.Fatalf("%d distinct scratches for %d workers", len(seen), workers)
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != n {
		t.Fatalf("scratch invocations = %d, want %d", total, n)
	}
}

// TestForEachRealizationReturnsLowestIndexError pins the error contract:
// with several failing realizations, the lowest index wins, matching what
// a sequential run would have reported first.
func TestForEachRealizationReturnsLowestIndexError(t *testing.T) {
	t.Parallel()
	errA, errB := errors.New("a"), errors.New("b")
	err := forEachRealization(4, 8, 1, func(r int, rng *xrand.RNG) error {
		switch r {
		case 3:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("err = %v, want the lowest-index error %v", err, errA)
	}
}
