package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// TestWorkersBitForBitDeterminism is the golden-seed regression for the
// parallel engine: a representative search spec must produce byte-identical
// Figure series no matter how many workers run it. Fig6 covers both the
// topology generators and the flooding kernel across 18 series.
func TestWorkersBitForBitDeterminism(t *testing.T) {
	t.Parallel()
	run := func(workers int) []Figure {
		sc := SmokeScale
		sc.Workers = workers
		figs, err := Fig6(sc, 2007)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return figs
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Fig6 output differs between Workers=1 and Workers=8")
	}
}

// TestWorkersDeterminismRandomizedAlg repeats the check on the NF/RW path,
// whose kernels consume the per-realization RNG stream — the part most at
// risk from a scheduling-dependent bug.
func TestWorkersDeterminismRandomizedAlg(t *testing.T) {
	t.Parallel()
	run := func(workers int) Series {
		s, err := searchSeries("rw", paTopo(1000, 2, 40),
			searchCfg{alg: algRW, maxTTL: 5, kMin: 2, sources: 6, realizations: 5, workers: workers}, 99)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	serial := run(1)
	for _, w := range []int{2, 3, 8} {
		if got := run(w); !reflect.DeepEqual(serial, got) {
			t.Fatalf("RW series differs between Workers=1 and Workers=%d", w)
		}
	}
}

// TestForEachRealizationWorkerPool is the table-driven concurrency test of
// the pool itself (run under -race in CI): every realization index must run
// exactly once and receive the same RNG stream regardless of worker count,
// including degenerate counts (negative, zero, more workers than work).
func TestForEachRealizationWorkerPool(t *testing.T) {
	t.Parallel()
	reference := func(n int, seed uint64) []uint64 {
		out := make([]uint64, n)
		if err := forEachRealization(engineOpts{}, 1, 1, n, seed, func(r int, b *builder) error {
			out[r] = b.rng.Uint64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, tc := range []struct {
		workers, n int
	}{
		{-1, 8}, {0, 8}, {1, 8}, {2, 8}, {3, 7}, {8, 8}, {16, 4}, {4, 0}, {4, 1},
	} {
		tc := tc
		t.Run(fmt.Sprintf("workers=%d_n=%d", tc.workers, tc.n), func(t *testing.T) {
			t.Parallel()
			want := reference(tc.n, 42)
			got := make([]uint64, tc.n)
			ran := make([]atomic.Int32, tc.n)
			err := forEachRealization(engineOpts{}, tc.workers, 0, tc.n, 42, func(r int, b *builder) error {
				ran[r].Add(1)
				got[r] = b.rng.Uint64()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < tc.n; r++ {
				if c := ran[r].Load(); c != 1 {
					t.Errorf("realization %d ran %d times", r, c)
				}
				if got[r] != want[r] {
					t.Errorf("realization %d saw a different RNG stream", r)
				}
			}
		})
	}
}

// TestForEachRealizationConcurrencyBounded checks the pool never runs more
// than `workers` realizations at once.
func TestForEachRealizationConcurrencyBounded(t *testing.T) {
	t.Parallel()
	const workers, n = 3, 24
	var inFlight, peak atomic.Int32
	err := forEachRealization(engineOpts{}, workers, 0, n, 7, func(r int, b *builder) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Touch the RNG so the loop body is not optimized away.
		_ = b.rng.Uint64()
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent realizations, worker bound is %d", p, workers)
	}
}

// TestForEachRealizationScratchPerWorker checks every swept realization
// gets a usable scratch and that scratches are per-sweep-worker: never
// more distinct instances than workers, and never shared between two
// realizations at once (the -race build would flag concurrent sharing).
func TestForEachRealizationScratchPerWorker(t *testing.T) {
	t.Parallel()
	const workers, n = 4, 32
	var mu sync.Mutex
	seen := make(map[*search.Scratch]int)
	err := forEachRealizationPipeline(engineOpts{}, workers, 1, 1, n, 5,
		func(r int, b *builder) (int, error) { return r, nil },
		func(r int, _ int, sw *sweeper) error {
			scratch := sw.scratches[0]
			if scratch == nil {
				return errors.New("nil scratch")
			}
			mu.Lock()
			seen[scratch]++
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) > workers {
		t.Fatalf("%d distinct scratches for %d workers", len(seen), workers)
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != n {
		t.Fatalf("scratch invocations = %d, want %d", total, n)
	}
}

// TestForEachRealizationReturnsLowestIndexError pins the error contract:
// with several failing realizations, the lowest index wins, matching what
// a sequential run would have reported first.
func TestForEachRealizationReturnsLowestIndexError(t *testing.T) {
	t.Parallel()
	errA, errB := errors.New("a"), errors.New("b")
	err := forEachRealization(engineOpts{}, 4, 0, 8, 1, func(r int, b *builder) error {
		switch r {
		case 3:
			return errB
		case 1:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("err = %v, want the lowest-index error %v", err, errA)
	}
}

// TestSourceShardsBitForBitDeterminism is the golden-seed regression for
// the two-level scheduler: a deterministic spec (Fig. 6, flooding — no
// search randomness, so it isolates the slot/reduction machinery and the
// shared-Frozen sweep) must produce byte-identical Figures for every
// (Workers, SourceShards) combination.
func TestSourceShardsBitForBitDeterminism(t *testing.T) {
	t.Parallel()
	run := func(workers, shards int) []Figure {
		sc := tinyScale
		sc.Workers = workers
		sc.SourceShards = shards
		figs, err := Fig6(sc, 2007)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
		}
		return figs
	}
	want := run(1, 1)
	for _, tc := range []struct{ workers, shards int }{
		{1, 3}, {1, 8}, {2, 3}, {8, 8}, {0, 0},
	} {
		if got := run(tc.workers, tc.shards); !reflect.DeepEqual(want, got) {
			t.Fatalf("Fig6 output differs between (1,1) and (Workers=%d, SourceShards=%d)",
				tc.workers, tc.shards)
		}
	}
}

// TestSourceShardsDeterminismRandomizedAlg repeats the check on randomized
// kernels — NF consumes the per-source stream heavily and RW additionally
// couples walk length to NF's draw sequence — the paths most at risk from
// a scheduling-dependent stream assignment.
func TestSourceShardsDeterminismRandomizedAlg(t *testing.T) {
	t.Parallel()
	for _, alg := range []algKind{algNF, algRW} {
		alg := alg
		run := func(workers, shards int) Series {
			s, err := searchSeries(alg.String(), paTopo(1000, 2, 40),
				searchCfg{alg: alg, maxTTL: 5, kMin: 2, sources: 9,
					realizations: 4, workers: workers, sourceShards: shards}, 99)
			if err != nil {
				t.Fatalf("%v workers=%d shards=%d: %v", alg, workers, shards, err)
			}
			return s
		}
		want := run(1, 1)
		for _, tc := range []struct{ workers, shards int }{
			{1, 3}, {1, 8}, {4, 3}, {2, 8},
		} {
			if got := run(tc.workers, tc.shards); !reflect.DeepEqual(want, got) {
				t.Fatalf("%v series differs between (1,1) and (Workers=%d, SourceShards=%d)",
					alg, tc.workers, tc.shards)
			}
		}
	}
}

// TestSweeperSourcesStreams pins the stream-derivation contract: every
// source runs exactly once, receives xrand.NewStream(seed, stream, s)
// regardless of shard count (including degenerate counts), and shard
// scheduling cannot leak one source's draws into another's.
func TestSweeperSourcesStreams(t *testing.T) {
	t.Parallel()
	const sources = 20
	collect := func(shards int) []uint64 {
		out := make([]uint64, sources)
		ran := make([]atomic.Int32, sources)
		err := withSweeper(shards, 7, func(sw *sweeper) error {
			return sw.Sources(0, sources, func(_, s int, rng *xrand.RNG, scratch *search.Scratch) error {
				if scratch == nil {
					return errors.New("nil scratch")
				}
				ran[s].Add(1)
				out[s] = rng.Uint64()
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < sources; s++ {
			if c := ran[s].Load(); c != 1 {
				t.Fatalf("shards=%d: source %d ran %d times", shards, s, c)
			}
		}
		return out
	}
	want := collect(1)
	for s := range want {
		if got := xrand.NewStream(7, 0, uint64(s)).Uint64(); want[s] != got {
			t.Fatalf("source %d stream is not NewStream(seed, stream, s)", s)
		}
	}
	for _, shards := range []int{-1, 0, 2, 3, 8, 16, 64} {
		if got := collect(shards); !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: source streams differ from serial sweep", shards)
		}
	}
}

// TestSweeperSourcesConcurrencyBounded checks the sweep never runs more
// than `shards` sources at once (the calling worker counts as shard 0).
func TestSweeperSourcesConcurrencyBounded(t *testing.T) {
	t.Parallel()
	const shards, sources = 3, 24
	var inFlight, peak atomic.Int32
	err := withSweeper(shards, 7, func(sw *sweeper) error {
		return sw.Sources(0, sources, func(_, s int, rng *xrand.RNG, _ *search.Scratch) error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			_ = rng.Uint64()
			inFlight.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > shards {
		t.Fatalf("observed %d concurrent sources, shard bound is %d", p, shards)
	}
}

// TestSweeperSourcesLowestIndexError pins the sweep's error contract to
// the outer pool's: the lowest source index wins, matching what a serial
// sweep would have reported first.
func TestSweeperSourcesLowestIndexError(t *testing.T) {
	t.Parallel()
	errA, errB := errors.New("a"), errors.New("b")
	for _, shards := range []int{1, 4} {
		err := withSweeper(shards, 7, func(sw *sweeper) error {
			return sw.Sources(0, 16, func(_, s int, _ *xrand.RNG, _ *search.Scratch) error {
				switch s {
				case 9:
					return errB
				case 3:
					return errA
				}
				return nil
			})
		})
		if err != errA {
			t.Fatalf("shards=%d: err = %v, want the lowest-index error %v", shards, err, errA)
		}
	}
}

// TestSweeperScratchPerShard checks each shard keeps its own scratch (the
// -race build would flag concurrent sharing) and that scratches are reused
// across repeated sweeps rather than reallocated.
func TestSweeperScratchPerShard(t *testing.T) {
	t.Parallel()
	const shards, sources, sweeps = 4, 32, 3
	var mu sync.Mutex
	byShard := make([]map[*search.Scratch]bool, shards)
	for i := range byShard {
		byShard[i] = map[*search.Scratch]bool{}
	}
	err := withSweeper(shards, 5, func(sw *sweeper) error {
		for k := 0; k < sweeps; k++ {
			if err := sw.Sources(uint64(k), sources, func(shard, s int, _ *xrand.RNG, scratch *search.Scratch) error {
				mu.Lock()
				byShard[shard][scratch] = true
				mu.Unlock()
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*search.Scratch]int{}
	for shard, set := range byShard {
		// A shard may process zero sources when faster shards drain the
		// queue first; it must never use more than one scratch, nor one
		// another shard uses.
		if len(set) > 1 {
			t.Fatalf("shard %d used %d distinct scratches, want at most 1", shard, len(set))
		}
		for sc := range set {
			if prev, dup := seen[sc]; dup {
				t.Fatalf("shards %d and %d share a scratch", prev, shard)
			}
			seen[sc] = shard
		}
	}
	if len(byShard[0]) != 1 {
		t.Fatalf("shard 0 (the calling worker) used %d scratches, want 1", len(byShard[0]))
	}
}
