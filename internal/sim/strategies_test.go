package sim

import (
	"testing"

	"scalefree/internal/search"
)

func TestHitsAtBudget(t *testing.T) {
	t.Parallel()
	res := search.Result{
		Hits:     []int{1, 5, 20, 80},
		Messages: []int{0, 8, 40, 300},
	}
	cases := []struct {
		budget, want int
	}{
		{0, 1}, {7, 1}, {8, 5}, {39, 5}, {40, 20}, {299, 20}, {300, 80}, {10000, 80},
	}
	for _, c := range cases {
		if got := hitsAtBudget(res, c.budget); got != float64(c.want) {
			t.Errorf("hitsAtBudget(%d) = %v, want %d", c.budget, got, c.want)
		}
	}
}

func TestStrategyBudgetsBounded(t *testing.T) {
	t.Parallel()
	bs := strategyBudgets(500)
	if len(bs) == 0 {
		t.Fatal("no budgets")
	}
	for i, b := range bs {
		if b > 4*500 {
			t.Errorf("budget %d exceeds 4N", b)
		}
		if i > 0 && b <= bs[i-1] {
			t.Errorf("budgets not increasing at %d", i)
		}
	}
}

// TestStrategiesSpec verifies the qualitative structure of the extension
// experiment: two panels; flooding dominates at the largest budget (it is
// the efficiency ceiling); and the high-degree-seeking walk beats the
// blind walk when hubs exist but loses most of its edge under kc=10.
func TestStrategiesSpec(t *testing.T) {
	t.Parallel()
	figs, err := Strategies(tinyScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("want 2 panels, got %d", len(figs))
	}
	final := func(f Figure, label string) float64 {
		for _, s := range f.Series {
			if s.Label == label {
				return s.Points[len(s.Points)-1].Y
			}
		}
		t.Fatalf("series %q missing in %s", label, f.ID)
		return 0
	}
	for _, f := range figs {
		if len(f.Series) != 7 {
			t.Fatalf("%s: want 7 series, got %d", f.ID, len(f.Series))
		}
		fl, nf := final(f, "FL"), final(f, "NF")
		if fl < nf {
			t.Errorf("%s: FL (%v) should dominate NF (%v) at max budget", f.ID, fl, nf)
		}
	}
	// HDS advantage over the blind walk should shrink when the hard cutoff
	// removes the hubs it exploits.
	noKC, kc10 := figs[0], figs[1]
	advNo := final(noKC, "HDS walk") / final(noKC, "RW")
	advKC := final(kc10, "HDS walk") / final(kc10, "RW")
	if advNo <= 1 {
		t.Errorf("HDS should beat RW without a cutoff: ratio %v", advNo)
	}
	if advKC >= advNo {
		t.Errorf("hard cutoff should shrink the HDS advantage: %v -> %v", advNo, advKC)
	}
}
