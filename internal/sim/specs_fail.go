package sim

// Failure-sweep DES experiments (ISSUE 7 tentpole): the desflood/deskwalk
// scenarios re-run under deterministic fault injection — node crashes and
// link partitions scheduled by des.FailPlan from the realization's phase
// streams. Whether an element fails and when are pure functions of
// (seed, realization, element id), so the failure sweeps keep the
// pipeline's bit-for-bit determinism contract for any
// (Workers, SourceShards, GenWorkers) setting (pinned by the DES
// schedule-invariance test). The frac=0 series doubles as the acceptance
// gate that a disabled plan changes nothing: it must coincide with the
// plain desflood coverage curve.

import (
	"fmt"

	"scalefree/internal/des"
	"scalefree/internal/gen"
	"scalefree/internal/xrand"
)

// desFailFracs resolves the failure-fraction series: an explicit positive
// Scale.DESFailFrac pins that single fraction, otherwise the spec sweeps
// no-failure plus three increasingly hostile regimes.
func (sc Scale) desFailFracs() []float64 {
	if sc.DESFailFrac > 0 {
		return []float64{sc.DESFailFrac}
	}
	return []float64{0, 0.10, 0.20, 0.30}
}

// desFailMTBF resolves the mean time before a selected element's
// down-window starts. The default of 2 time units sits inside the flood's
// active window under the default unit-latency model (first arrivals at
// t≈1, deepest at t≈maxTTL), so failures strike while the search is in
// flight rather than before it starts or after it ends.
func (sc Scale) desFailMTBF() float64 {
	if sc.DESFailMTBF > 0 {
		return sc.DESFailMTBF
	}
	return 2
}

// failLabel renders a failure fraction the way the legends do.
func failLabel(frac float64) string {
	if frac == 0 {
		return "no failures"
	}
	return fmt.Sprintf("fail=%.0f%%", frac*100)
}

// DESFail measures search robustness under injected failures on the PA
// baseline overlays (m=2, no cutoff): flood coverage vs τ when a fraction
// of nodes crash mid-flight, the same when a fraction of links partition,
// and k-walker coverage vs steps under node crashes (a crashed node
// swallows its walkers — the DES analogue of the paper's robustness
// question). Crash onsets are Exp(MTBF)-distributed with no recovery, the
// worst case; all series share one seed so the failure knob is isolated
// against identical topologies, sources, and latency draws.
func DESFail(sc Scale, seed uint64) ([]Figure, error) {
	base, jitter := sc.desLatency()
	mtbf := sc.desFailMTBF()
	maxTTL := sc.flSweepTTL()
	steps := 10 * sc.MaxTTLNF
	cfg := sc.searchCfg(algFL, maxTTL, 0)
	factory := paTopo(sc.NSearch, 2, gen.NoCutoff)
	notes := fmt.Sprintf("Exp(MTBF=%.2g) crash onsets, no recovery; per-edge latency %.2g + U[0,%.2g)", mtbf, base, jitter)
	nodeFig := Figure{
		ID: "desfail-node", Title: "DES flooding: coverage vs tau under node crashes (PA, m=2)",
		XLabel: "tau", YLabel: "number of hits", Notes: notes,
	}
	linkFig := Figure{
		ID: "desfail-link", Title: "DES flooding: coverage vs tau under link partitions (PA, m=2)",
		XLabel: "tau", YLabel: "number of hits", Notes: notes,
	}
	walkFig := Figure{
		ID: "desfail-kwalk", Title: "DES k-walkers (k=4): coverage vs steps under node crashes (PA, m=2)",
		XLabel: "steps", YLabel: "number of hits", Notes: notes,
	}
	for _, frac := range sc.desFailFracs() {
		frac := frac
		panels := []struct {
			fig  *Figure
			plan func(ph xrand.Phases) des.FailPlan
		}{
			{&nodeFig, func(ph xrand.Phases) des.FailPlan {
				return des.FailPlan{NodeFrac: frac, MTBF: mtbf, Phases: ph}
			}},
			{&linkFig, func(ph xrand.Phases) des.FailPlan {
				return des.FailPlan{LinkFrac: frac, MTBF: mtbf, Phases: ph}
			}},
		}
		for _, p := range panels {
			p := p
			curves, err := desSweep(p.fig.ID+" "+failLabel(frac), factory, cfg, base, jitter, seed, 1, maxTTL+1,
				func(sim *des.Sim, v desTopo, src int, rng *xrand.RNG) (des.Metrics, error) {
					return sim.Flood(v.f, src, des.Config{MaxTTL: maxTTL, Latency: v.lat, Fail: p.plan(v.lat.Phases)}, rng)
				},
				func(m des.Metrics, rows [][]float64) {
					for h := 0; h <= maxTTL; h++ {
						rows[0][h] = float64(m.HitsWithin(h))
					}
				})
			if err != nil {
				return nil, fmt.Errorf("desfail %s %s: %w", p.fig.ID, failLabel(frac), err)
			}
			s, err := aggregate(failLabel(frac), curves[0], 1)
			if err != nil {
				return nil, err
			}
			p.fig.Series = append(p.fig.Series, s)
		}
		curves, err := desSweep("desfail-kwalk "+failLabel(frac), factory, cfg, base, jitter, seed, 1, steps+1,
			func(sim *des.Sim, v desTopo, src int, rng *xrand.RNG) (des.Metrics, error) {
				fail := des.FailPlan{NodeFrac: frac, MTBF: mtbf, Phases: v.lat.Phases}
				return sim.KWalk(v.f, src, 4, steps, des.Config{Latency: v.lat, Fail: fail}, rng)
			},
			func(m des.Metrics, rows [][]float64) {
				for h := 0; h <= steps; h++ {
					rows[0][h] = float64(m.HitsWithin(h))
				}
			})
		if err != nil {
			return nil, fmt.Errorf("desfail kwalk %s: %w", failLabel(frac), err)
		}
		s, err := aggregate(failLabel(frac), curves[0], 1)
		if err != nil {
			return nil, err
		}
		walkFig.Series = append(walkFig.Series, s)
	}
	return []Figure{nodeFig, linkFig, walkFig}, nil
}
