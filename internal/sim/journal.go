package sim

// Per-realization result journal: the crash-safety substrate of
// cmd/experiments. One journal file records one experiment invocation: a
// header pinning everything that determines the numbers (schema version,
// spec ID, seed, and the determinism-relevant Scale fields), followed by
// length-prefixed CRC32-checksummed records — one per completed
// realization of each journaled sweep, carrying that realization's
// per-index slot contribution verbatim, plus failure records from the
// supervisor. Appends are batch-fsynced: a crash loses at most the last
// journalFsyncBatch records (they simply re-run on resume) and corrupts
// nothing — resume validates every record's checksum and truncates the
// torn tail.
//
// Resume is bit-for-bit: a journaled slot payload is the exact float64
// (or integer) bits the original run deposited, and the index-order
// reduction consumes replayed and freshly computed slots identically, so
// a resumed run's figures are byte-identical to an uninterrupted run's —
// for any (Workers, SourceShards, GenWorkers) on either side; the header
// deliberately omits the scheduler knobs for exactly that reason.
//
// The record key is (kind, stream, sub, realization): stream is the
// engine seed of the sweep, sub the FNV hash of a human-readable tag
// distinguishing sweeps that share a seed by design (the DES loss and
// failure series isolate their knob against identical topologies), kind
// the payload family. These records are also the wire-format groundwork
// for ROADMAP item 4: a coordinator/worker protocol streams exactly this
// shape — (stream, realization)-keyed slot contributions that reduce
// bit-identically regardless of arrival order.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sync"
)

// Journal record kinds. The header pins the schema version, so kinds are
// only ever extended, never reinterpreted.
const (
	recHeader     uint8 = 0 // header payload; always the first record
	recSweepSlots uint8 = 1 // sweepSeries: sources rows of (maxTTL+1) float64s
	recDegreeHist uint8 = 2 // mergedDegreeDist: one degree histogram
	recDESSlots   uint8 = 3 // desSweep: nCurves × sources rows
	recRealDone   uint8 = 4 // coordinator: realization verified complete
	recFailure    uint8 = 9 // supervisor: permanent realization failure
)

const (
	journalVersion    = 3
	journalMaxBody    = 64 << 20 // sanity bound when scanning; larger = torn
	journalFsyncBatch = 8        // records between fsyncs on the append path
	journalKeyLen     = 21       // kind + stream + sub + realization
)

var journalMagic = []byte("SFEJ1\n")

var errJournalMismatch = errors.New("sim: journal header mismatch")

// journalKey identifies one record: the payload family, the sweep's
// engine seed, the tag hash, and the realization index.
type journalKey struct {
	kind   uint8
	stream uint64
	sub    uint64
	r      int
}

// journalTag hashes a human-readable sweep tag into the key's sub field.
// Tags disambiguate sweeps that intentionally share an engine seed (the
// DES specs isolate their loss/failure knob against identical topologies
// by reusing one seed per series).
func journalTag(tag string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, tag)
	return h.Sum64()
}

// Journal is the append side of one experiment's journal file plus the
// records recovered from a previous run when opened with resume. Appends
// are safe from concurrent sweep workers; the resumed map is read-only
// for the Journal's lifetime.
type Journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	pending int
	err     error

	resumed  map[journalKey][]byte
	failures []FailureRecord
	claims   map[journalClaimKey]string

	// Distributed-run bookkeeping (see dist.go): realizations verified
	// complete by the coordinator, and per-realization slot-record counts.
	done     map[int]bool
	recCount map[int]int
}

// journalClaimKey identifies one journaled record family: every record a
// helper writes for one series shares its (kind, stream, sub).
type journalClaimKey struct {
	kind        uint8
	stream, sub uint64
}

// claim registers a record family under a human-readable tag. Within one
// process every family is claimed exactly once (a resumed run re-claims
// in a fresh process), so ANY duplicate means two series would overwrite
// each other's records and silently replay each other's rows on resume —
// the exact corruption a checkpoint exists to prevent. The guard turns
// that into a loud error on the very first checkpointed run, not only
// after a crash: it caught fig9's PA/HAPA m=1 panels (same seed offset,
// same label format) and Messaging's hits-vs-messages pair (same label,
// same seed, different metric).
func (j *Journal) claim(k journalClaimKey, tag string) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.claims == nil {
		j.claims = make(map[journalClaimKey]string)
	}
	if prev, ok := j.claims[k]; ok {
		return fmt.Errorf("sim: journal key collision: series %q and %q both checkpoint under (kind=%d, stream=%#x, sub=%#x); give one a distinct tag or seed",
			prev, tag, k.kind, k.stream, k.sub)
	}
	j.claims[k] = tag
	return nil
}

// OpenJournal opens <path> for experiment `spec` at the given seed and
// scale. With resume=false (or no file to resume) it truncates and writes
// a fresh header. With resume=true it validates the existing header
// against (version, spec, seed, scale) — refusing to mix runs — scans the
// records, truncates any torn tail, and keeps the recovered payloads
// available for replay while appending new records after them.
func OpenJournal(path, spec string, seed uint64, sc Scale, resume bool) (*Journal, error) {
	hdr := encodeJournalHeader(spec, seed, sc)
	if resume {
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		switch {
		case err == nil:
			j, lerr := loadJournal(path, f, hdr)
			if lerr != nil {
				f.Close()
				return nil, lerr
			}
			return j, nil
		case !errors.Is(err, os.ErrNotExist):
			return nil, fmt.Errorf("sim: open journal %s: %w", path, err)
		}
		// No journal on disk: resuming a run that died before its first
		// fsync (or never started) is just a fresh run.
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sim: create journal %s: %w", path, err)
	}
	j := &Journal{path: path, f: f, resumed: map[journalKey][]byte{}}
	if _, err := f.Write(journalMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("sim: create journal %s: %w", path, err)
	}
	if err := j.writeRecord(journalKey{kind: recHeader}, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("sim: create journal %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sim: create journal %s: %w", path, err)
	}
	return j, nil
}

// loadJournal scans an existing journal: magic, header (which must equal
// wantHdr byte for byte), then records until EOF or the first torn/corrupt
// record, at which point the file is truncated to the last good offset so
// subsequent appends extend a clean prefix.
func loadJournal(path string, f *os.File, wantHdr []byte) (*Journal, error) {
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(br, magic); err != nil || !bytes.Equal(magic, journalMagic) {
		return nil, fmt.Errorf("sim: %s is not an experiment journal (bad magic); delete it or rerun without -resume", path)
	}
	good := int64(len(journalMagic))
	k, payload, n, ok := readRecord(br)
	if !ok || k.kind != recHeader {
		return nil, fmt.Errorf("sim: journal %s: unreadable header record; delete it or rerun without -resume", path)
	}
	if !bytes.Equal(payload, wantHdr) {
		return nil, fmt.Errorf("%w: %s was written by a different run (spec, seed, scale, or schema changed); delete it or rerun without -resume", errJournalMismatch, path)
	}
	good += n
	resumed := map[journalKey][]byte{}
	var failures []FailureRecord
	done := map[int]bool{}
	recCount := map[int]int{}
scan:
	for {
		k, payload, n, ok := readRecord(br)
		if !ok {
			break // EOF or torn tail
		}
		switch k.kind {
		case recFailure:
			if fr, ok := decodeFailure(k, payload); ok {
				failures = append(failures, fr)
			}
		case recRealDone:
			done[k.r] = true
		case recSweepSlots, recDegreeHist, recDESSlots:
			if _, dup := resumed[k]; !dup {
				recCount[k.r]++
			}
			resumed[k] = payload
		default:
			// The header pinned the schema version, so an unknown kind is
			// corruption that happened to checksum; stop at the last good
			// record before it.
			break scan
		}
		good += n
	}
	if err := f.Truncate(good); err != nil {
		return nil, fmt.Errorf("sim: truncate torn journal %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return nil, fmt.Errorf("sim: seek journal %s: %w", path, err)
	}
	return &Journal{path: path, f: f, resumed: resumed, failures: failures, done: done, recCount: recCount}, nil
}

// readRecord reads one length-prefixed record; ok=false on EOF, short
// read, an implausible length, or a checksum mismatch — all of which mean
// "torn tail" to the caller.
func readRecord(br *bufio.Reader) (k journalKey, payload []byte, size int64, ok bool) {
	var pre [8]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return k, nil, 0, false
	}
	bodyLen := binary.LittleEndian.Uint32(pre[0:4])
	sum := binary.LittleEndian.Uint32(pre[4:8])
	if bodyLen < journalKeyLen || bodyLen > journalMaxBody {
		return k, nil, 0, false
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(br, body); err != nil {
		return k, nil, 0, false
	}
	if crc32.ChecksumIEEE(body) != sum {
		return k, nil, 0, false
	}
	k.kind = body[0]
	k.stream = binary.LittleEndian.Uint64(body[1:9])
	k.sub = binary.LittleEndian.Uint64(body[9:17])
	k.r = int(binary.LittleEndian.Uint32(body[17:journalKeyLen]))
	return k, body[journalKeyLen:], int64(8 + int(bodyLen)), true
}

// append writes one record and fsyncs every journalFsyncBatch appends.
// Errors are sticky: after a failed write the journal refuses further
// appends, so a full disk aborts the run instead of silently dropping
// checkpoints. A nil journal or nil payload is a no-op.
func (j *Journal) append(k journalKey, payload []byte) error {
	if j == nil || payload == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.writeRecord(k, payload); err != nil {
		j.err = fmt.Errorf("sim: journal %s: %w", j.path, err)
		return j.err
	}
	j.pending++
	if j.pending >= journalFsyncBatch {
		return j.syncLocked()
	}
	return nil
}

// encodeRecord assembles one record's on-disk (and on-wire) bytes:
// [4B body len][4B CRC32(body)][key][payload].
func encodeRecord(k journalKey, payload []byte) []byte {
	body := make([]byte, 0, journalKeyLen+len(payload))
	body = append(body, k.kind)
	body = binary.LittleEndian.AppendUint64(body, k.stream)
	body = binary.LittleEndian.AppendUint64(body, k.sub)
	body = binary.LittleEndian.AppendUint32(body, uint32(k.r))
	body = append(body, payload...)
	rec := make([]byte, 0, 8+len(body))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(body)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	return append(rec, body...)
}

// writeRecord assembles and writes one record. Caller holds j.mu (or has
// exclusive access during open).
func (j *Journal) writeRecord(k journalKey, payload []byte) error {
	_, err := j.f.Write(encodeRecord(k, payload))
	return err
}

func (j *Journal) syncLocked() error {
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("sim: journal %s: %w", j.path, err)
		return j.err
	}
	j.pending = 0
	return nil
}

// Flush fsyncs any records appended since the last batch boundary.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.pending > 0 {
		return j.syncLocked()
	}
	return nil
}

// Close flushes and closes the file. The journal stays on disk; deleting
// it after a fully successful run is the caller's call.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	err := j.Flush()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if cerr := j.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		j.f = nil
	}
	return err
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Resumed reports how many completed-realization records were recovered
// when the journal was opened with resume.
func (j *Journal) Resumed() int {
	if j == nil {
		return 0
	}
	return len(j.resumed)
}

// ResumedFailures returns the failure records recovered on resume. The
// realizations they name are re-attempted (a failure record does not mark
// a realization complete); the records exist for accounting.
func (j *Journal) ResumedFailures() []FailureRecord {
	if j == nil {
		return nil
	}
	return append([]FailureRecord(nil), j.failures...)
}

// encodeJournalHeader pins everything that determines the figures:
// schema version, spec, seed, and the workload half of Scale. The
// scheduler knobs (Workers, SourceShards, GenWorkers) are excluded on
// purpose — they never affect the numbers, so a run may be resumed with
// different parallelism than it started with.
func encodeJournalHeader(spec string, seed uint64, sc Scale) []byte {
	b := binary.LittleEndian.AppendUint64(nil, journalVersion)
	b = binary.LittleEndian.AppendUint64(b, seed)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spec)))
	b = append(b, spec...)
	for _, v := range []int{
		sc.NDegree, sc.NSearch, sc.NSubstrate, sc.NOverlay,
		sc.Realizations, sc.Sources, sc.MaxTTLFlood, sc.MaxTTLNF,
		// Estimator knobs (journal v2): these change published numbers,
		// so a resume across different budgets must be rejected.
		sc.BCPivots, sc.PathLandmarks, sc.PathPairs, sc.WalkCap,
	} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	for _, v := range []float64{
		sc.DESLatencyBase, sc.DESLatencyJitter, sc.DESLoss,
		sc.DESFailFrac, sc.DESFailMTBF,
	} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// encodeRowBlock serializes nRows float64 rows of rowLen values each —
// the exact bits of one realization's slot contribution, so replay is
// bit-for-bit. Returns nil (skip journaling) on any shape mismatch.
func encodeRowBlock(rows [][]float64, rowLen int) []byte {
	b := make([]byte, 0, 8+len(rows)*rowLen*8)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rows)))
	b = binary.LittleEndian.AppendUint32(b, uint32(rowLen))
	for _, row := range rows {
		if len(row) != rowLen {
			return nil
		}
		for _, v := range row {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	return b
}

// decodeRowBlock is the inverse of encodeRowBlock; ok=false when the
// payload does not carry exactly nRows × rowLen values (a record from a
// schema drift the header check missed — treated as not-completed).
func decodeRowBlock(p []byte, nRows, rowLen int) ([][]float64, bool) {
	if len(p) != 8+nRows*rowLen*8 {
		return nil, false
	}
	if binary.LittleEndian.Uint32(p[0:4]) != uint32(nRows) ||
		binary.LittleEndian.Uint32(p[4:8]) != uint32(rowLen) {
		return nil, false
	}
	rows := make([][]float64, nRows)
	off := 8
	for i := range rows {
		row := make([]float64, rowLen)
		for t := range row {
			row[t] = math.Float64frombits(binary.LittleEndian.Uint64(p[off : off+8]))
			off += 8
		}
		rows[i] = row
	}
	return rows, true
}

// encodeHistogram serializes a degree histogram (counts[k] = #nodes with
// degree k), the per-realization contribution of the degree specs.
func encodeHistogram(hist []int) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(hist)))
	for _, c := range hist {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	return b
}

func decodeHistogram(p []byte) ([]int, bool) {
	if len(p) < 4 {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(p[0:4]))
	if len(p) != 4+n*8 {
		return nil, false
	}
	hist := make([]int, n)
	off := 4
	for i := range hist {
		hist[i] = int(binary.LittleEndian.Uint64(p[off : off+8]))
		off += 8
	}
	return hist, true
}

func encodeFailure(fr FailureRecord) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(fr.Attempts))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(fr.Err)))
	b = append(b, fr.Err...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(fr.Stack)))
	b = append(b, fr.Stack...)
	return b
}

func decodeFailure(k journalKey, p []byte) (FailureRecord, bool) {
	fr := FailureRecord{Stream: k.stream, Realization: k.r}
	if len(p) < 4 {
		return fr, false
	}
	fr.Attempts = int(binary.LittleEndian.Uint32(p[0:4]))
	p = p[4:]
	take := func() (string, bool) {
		if len(p) < 4 {
			return "", false
		}
		n := int(binary.LittleEndian.Uint32(p[0:4]))
		if len(p) < 4+n {
			return "", false
		}
		s := string(p[4 : 4+n])
		p = p[4+n:]
		return s, true
	}
	var ok bool
	if fr.Err, ok = take(); !ok {
		return fr, false
	}
	if fr.Stack, ok = take(); !ok {
		return fr, false
	}
	return fr, len(p) == 0
}
