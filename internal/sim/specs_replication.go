package sim

// Replication is an extension experiment connecting the paper's topology
// work to the replication literature it cites (§II: Cohen & Shenker [22],
// Lv et al. [23]). On PA topologies with and without a hard cutoff it
// measures the expected search size (random-walk probes to the first
// replica) of the three classic allocation strategies across replication
// budgets, reproducing Cohen & Shenker's square-root-is-optimal result on
// the paper's own overlays.

import (
	"fmt"

	"scalefree/internal/content"
	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/xrand"
)

// Replication measures ESS vs replication budget for uniform,
// proportional, and square-root allocation on PA (m=2) topologies, one
// panel without a cutoff and one with kc=10.
func Replication(sc Scale, seed uint64) ([]Figure, error) {
	const (
		m        = 2
		items    = 100
		alpha    = 1.2
		queries  = 400
		maxSteps = 40000
	)
	budgetsPerN := []float64{0.25, 0.5, 1, 2}
	strategies := []content.Strategy{content.Uniform, content.Proportional, content.SquareRoot}

	var figs []Figure
	for _, kc := range []int{gen.NoCutoff, 10} {
		slug := "nokc"
		if kc != gen.NoCutoff {
			slug = fmt.Sprintf("kc%d", kc)
		}
		fig := Figure{
			ID:     fmt.Sprintf("replication-%s", slug),
			Title:  fmt.Sprintf("Expected search size vs replication budget (PA, m=%d, %s, Zipf %.1f)", m, cutoffLabel(kc), alpha),
			XLabel: "replication budget (copies / N)", YLabel: "expected search size (walk probes)",
			LogY:  true,
			Notes: "Cohen-Shenker: square-root allocation minimizes ESS under random probing",
		}
		for si, strat := range strategies {
			strat := strat
			perReal := make([][]float64, sc.Realizations)
			// The build stage hands the sweep the frozen overlay plus the
			// realization's "replication" phase stream: placements draw
			// from it sequentially within the realization, so they depend
			// only on (seed, realization), never on pipeline scheduling.
			type replTopo struct {
				fg  *graph.Frozen
				rep *xrand.RNG
			}
			err := forEachRealizationPipeline(engineOpts{rc: sc.Run}, sc.Workers, sc.SourceShards, sc.GenWorkers, sc.Realizations, seed+uint64(si)*6151+uint64(kc), func(r int, b *builder) (replTopo, error) {
				g, _, err := gen.PABuild(gen.PAConfig{N: sc.NSearch, M: m, KC: kc}, b.gen())
				if err != nil {
					return replTopo{}, err
				}
				// All budgets probe the same realization.
				return replTopo{fg: g.FreezeSorted(b.genWorkers), rep: b.phases.Stream("replication")}, nil
			}, func(r int, topo replTopo, sw *sweeper) error {
				fg := topo.fg
				cat, err := content.NewCatalog(items, alpha)
				if err != nil {
					return err
				}
				row := make([]float64, len(budgetsPerN))
				steps := make([]int, queries)
				found := make([]bool, queries)
				for bi, f := range budgetsPerN {
					budget := int(f * float64(fg.N()))
					if budget < items {
						budget = items
					}
					p, err := content.Replicate(cat, fg.N(), budget, strat, topo.rep)
					if err != nil {
						return err
					}
					// Sharded query sweep against the shared snapshot; the
					// stream tag separates budgets within the realization.
					err = sw.Sources(uint64(r)*uint64(len(budgetsPerN))+uint64(bi), queries, func(_, q int, rng *xrand.RNG, _ *search.Scratch) error {
						steps[q], found[q] = content.ResolveQuery(fg, p, cat, maxSteps, rng)
						return nil
					})
					if err != nil {
						return err
					}
					res := content.CollectESS(steps, found)
					if res.Found == 0 {
						return fmt.Errorf("replication: no queries resolved at budget %d", budget)
					}
					row[bi] = res.MeanSteps
				}
				perReal[r] = row
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("replication %s %s: %w", cutoffLabel(kc), strat, err)
			}
			s, err := aggregate(strat.String(), perReal, 0)
			if err != nil {
				return nil, err
			}
			for i := range s.Points {
				s.Points[i].X = budgetsPerN[i]
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}

	// Sanity note: record whether square-root won at the mid budget.
	for fi := range figs {
		f := &figs[fi]
		if len(f.Series) == 3 && len(f.Series[0].Points) >= 3 {
			u := f.Series[0].Points[2].Y
			p := f.Series[1].Points[2].Y
			s := f.Series[2].Points[2].Y
			f.Notes += fmt.Sprintf("; at budget=N: uniform %.0f, proportional %.0f, sqrt %.0f probes", u, p, s)
		}
	}
	return figs, nil
}
