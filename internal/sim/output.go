package sim

// Rendering of figures as CSV (for external plotting) and as ASCII tables
// and log-log scatter plots (for terminal inspection and EXPERIMENTS.md).

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV emits a figure as CSV with columns: series, x, y, err. The
// format is stable and consumed by cmd/experiments and external plotting
// scripts.
func WriteCSV(w io.Writer, fig Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", fig.XLabel, fig.YLabel, "err"}); err != nil {
		return fmt.Errorf("csv header: %w", err)
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Label,
				strconv.FormatFloat(p.X, 'g', 8, 64),
				strconv.FormatFloat(p.Y, 'g', 8, 64),
				strconv.FormatFloat(p.Err, 'g', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csv flush: %w", err)
	}
	return nil
}

// RenderTable renders a figure as a fixed-width ASCII table: one row per
// x value, one column per series. Series without points (Table II rows)
// are listed as plain lines.
func RenderTable(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s [%s]\n", fig.Title, fig.ID)
	if fig.Notes != "" {
		fmt.Fprintf(&b, "    note: %s\n", fig.Notes)
	}
	var plotted []Series
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			fmt.Fprintf(&b, "    %s\n", s.Label)
			continue
		}
		plotted = append(plotted, s)
	}
	if len(plotted) == 0 {
		return b.String()
	}

	// Collect the union of x values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range plotted {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sortFloats(xs)

	const colWidth = 14
	fmt.Fprintf(&b, "%12s", fig.XLabel)
	for _, s := range plotted {
		fmt.Fprintf(&b, " | %*s", colWidth, truncate(s.Label, colWidth))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%12.4g", x)
		for _, s := range plotted {
			y, ok := lookupY(s, x)
			if !ok {
				fmt.Fprintf(&b, " | %*s", colWidth, "-")
				continue
			}
			fmt.Fprintf(&b, " | %*.4g", colWidth, y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPlot renders a crude ASCII scatter of the figure respecting its
// log-axis flags: each series is drawn with a distinct rune on a
// width×height grid. Good enough to eyeball power laws and crossovers in a
// terminal.
func RenderPlot(fig Figure, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if fig.LogX {
			return math.Log10(x)
		}
		return x
	}
	ty := func(y float64) float64 {
		if fig.LogY {
			return math.Log10(y)
		}
		return y
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if fig.LogX && p.X <= 0 || fig.LogY && p.Y <= 0 {
				continue
			}
			xlo, xhi = math.Min(xlo, tx(p.X)), math.Max(xhi, tx(p.X))
			ylo, yhi = math.Min(ylo, ty(p.Y)), math.Max(yhi, ty(p.Y))
		}
	}
	if xlo >= xhi || ylo >= yhi || math.IsInf(xlo, 1) {
		return fmt.Sprintf("=== %s [%s] (no plottable points)\n", fig.Title, fig.ID)
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	marks := []rune("*o+x#@%&^~")
	for si, s := range fig.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			if fig.LogX && p.X <= 0 || fig.LogY && p.Y <= 0 {
				continue
			}
			col := int((tx(p.X) - xlo) / (xhi - xlo) * float64(width-1))
			row := height - 1 - int((ty(p.Y)-ylo)/(yhi-ylo)*float64(height-1))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "=== %s [%s]\n", fig.Title, fig.ID)
	axisName := func(name string, log bool) string {
		if log {
			return "log10 " + name
		}
		return name
	}
	for _, row := range grid {
		b.WriteString("  |")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   x: %s in [%.3g, %.3g]; y: %s in [%.3g, %.3g]\n",
		axisName(fig.XLabel, fig.LogX), untx(xlo, fig.LogX), untx(xhi, fig.LogX),
		axisName(fig.YLabel, fig.LogY), untx(ylo, fig.LogY), untx(yhi, fig.LogY))
	for si, s := range fig.Series {
		fmt.Fprintf(&b, "   %c %s\n", marks[si%len(marks)], s.Label)
	}
	return b.String()
}

func untx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func lookupY(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
