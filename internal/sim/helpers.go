package sim

import (
	"fmt"
	"strings"

	"scalefree/internal/gen"
	"scalefree/internal/graph"
	"scalefree/internal/search"
	"scalefree/internal/stats"
	"scalefree/internal/xrand"
)

// topoFactory builds the r-th topology realization from a build context,
// delivering it as a CSR snapshot. The realization index r lets factories
// pick per-realization shared inputs (DAPA substrates) without mutable
// state; the builder supplies the phase sub-streams, the intra-generator
// parallelism budget, and the build worker's CSR arena, so a factory
// invoked on any pipeline worker with any GenWorkers value produces the
// identical topology.
//
// Two build paths hide behind this type. The growth models (PA, HAPA,
// DAPA) need mid-build HasEdge/Degree, so they grow a mutable Graph and
// freeze it here, in the pipelined build stage — the Graph's per-node
// slices and edge-multiplicity map become garbage before the search
// sweep starts. CM (and the GRN substrates) never query the graph
// mid-build, so they emit straight into a graph.CSRBuilder and no mutable
// Graph ever exists.
//
// The sorted HasEdge ranges are NOT part of the factory contract:
// degree-only consumers (mergedDegreeDist, fairness, table1) never probe
// membership and would pay an O(E) sorted build per realization for
// nothing. Sweep specs route factories through sweepTopo, which
// materializes the ranges in the build stage; CM snapshots carry them
// anyway (the cleanup pass yields them for free).
type topoFactory func(r int, b *builder) (*graph.Frozen, error)

// sweepTopo adapts a factory into a pipeline build callback that delivers
// sweep-ready snapshots: the sorted membership ranges are materialized
// here, in the pipelined build stage, so a sweep that probes HasEdge can
// never take (or contend on) the lazy-init path.
func sweepTopo(factory topoFactory, r int, b *builder) (*graph.Frozen, error) {
	f, err := factory(r, b)
	if err != nil {
		return nil, err
	}
	f.MaterializeSorted(b.genWorkers)
	return f, nil
}

func paTopo(n, m, kc int) topoFactory {
	return func(_ int, b *builder) (*graph.Frozen, error) {
		g, _, err := gen.PABuild(gen.PAConfig{N: n, M: m, KC: kc}, b.gen())
		if err != nil {
			return nil, err
		}
		return g.FreezePar(b.genWorkers), nil
	}
}

func hapaTopo(n, m, kc int) topoFactory {
	return func(_ int, b *builder) (*graph.Frozen, error) {
		g, _, err := gen.HAPABuild(gen.HAPAConfig{N: n, M: m, KC: kc}, b.gen())
		if err != nil {
			return nil, err
		}
		return g.FreezePar(b.genWorkers), nil
	}
}

func cmTopo(n, m, kc int, gamma float64) topoFactory {
	return func(_ int, b *builder) (*graph.Frozen, error) {
		f, _, err := gen.CMFrozen(gen.CMConfig{N: n, M: m, KC: kc, Gamma: gamma}, b.gen())
		return f, err
	}
}

// dapaTopo grows an overlay on the r-th pre-generated substrate. Substrates
// are shared across series of a figure (the paper's figures vary overlay
// parameters, not the substrate model) and arrive already frozen, so every
// (series × realization) overlay build reads one CSR snapshot instead of
// re-deriving substrate adjacency per factory call.
func dapaTopo(substrates []*graph.Frozen, nOverlay, m, kc, tauSub int) topoFactory {
	return func(r int, b *builder) (*graph.Frozen, error) {
		sub := substrates[r%len(substrates)]
		ov, _, err := gen.DAPABuild(sub, gen.DAPAConfig{
			NOverlay: nOverlay, M: m, KC: kc, TauSub: tauSub,
		}, b.gen())
		if err != nil {
			return nil, err
		}
		return ov.G.FreezePar(b.genWorkers), nil
	}
}

// makeSubstrates generates one GRN substrate per realization with the
// paper's parameters (k̄ = 10), built straight into CSR form for the whole
// figure: every series reuses the snapshots, and no mutable substrate
// graph is ever materialized. Substrates serve only Neighbors scans
// (DAPA's discovery floods), so the sorted ranges stay lazy.
func makeSubstrates(n int, sc Scale, seed uint64) ([]*graph.Frozen, error) {
	subs := make([]*graph.Frozen, sc.Realizations)
	// Strict supervision (no partial flag): every series of the figure
	// needs every substrate, so a permanently failed build is fatal.
	err := forEachRealization(engineOpts{rc: sc.Run}, sc.Workers, sc.GenWorkers, sc.Realizations, seed, func(r int, b *builder) error {
		f, _, err := gen.GRNFrozen(gen.GRNConfig{N: n, MeanDegree: 10}, b.gen())
		if err != nil {
			return err
		}
		subs[r] = f
		return nil
	})
	return subs, err
}

// cutoffLabel renders kc the way the paper's legends do.
func cutoffLabel(kc int) string {
	if kc == gen.NoCutoff {
		return "no kc"
	}
	return fmt.Sprintf("kc=%d", kc)
}

// mergedDegreeDist generates sc.Realizations networks and merges their
// degree distributions, the paper's averaging procedure ("for every data
// point 10 different realizations of the network have been used"). tag
// names this sweep in the journal (series label plus any knob that varies
// under a shared seed); a journaled realization's histogram is replayed
// verbatim and its build skipped, and realizations that permanently
// failed within the budget merge with zero weight (MergeDegreeDists
// weights by node count).
func mergedDegreeDist(tag string, factory topoFactory, sc Scale, seed uint64) (stats.DegreeDist, error) {
	rc := sc.Run
	sub := journalTag(tag)
	if err := rc.journalClaim(recDegreeHist, seed, sub, tag); err != nil {
		return stats.DegreeDist{}, err
	}
	dists := make([]stats.DegreeDist, sc.Realizations)
	var skip func(int) bool
	if rc.journaling() {
		done := make(map[int]bool, sc.Realizations)
		for r := 0; r < sc.Realizations; r++ {
			p, ok := rc.journalPayload(recDegreeHist, seed, sub, r)
			if !ok {
				continue
			}
			hist, ok := decodeHistogram(p)
			if !ok {
				continue // shape drift: treat as not completed, rebuild
			}
			dists[r] = stats.NewDegreeDist(hist)
			done[r] = true
		}
		if len(done) > 0 {
			skip = func(r int) bool { return done[r] }
		}
	}
	err := forEachRealization(engineOpts{rc: rc, skip: skip, partial: true}, sc.Workers, sc.GenWorkers, sc.Realizations, seed, func(r int, b *builder) error {
		f, err := factory(r, b)
		if err != nil {
			return err
		}
		hist := f.DegreeHistogram()
		dists[r] = stats.NewDegreeDist(hist)
		if rc.journaling() {
			rc.journalAppend(recDegreeHist, seed, sub, r, encodeHistogram(hist))
		}
		return nil
	})
	if err != nil {
		return stats.DegreeDist{}, err
	}
	for r := range rc.failedSet(seed) {
		dists[r] = stats.DegreeDist{} // zero node weight: drops out of the merge
	}
	return stats.MergeDegreeDists(dists), nil
}

// degreeSeries log-bins a degree distribution into a plot series
// (bin ratio 1.3, smooth enough for the paper's log-log panels).
func degreeSeries(label string, d stats.DegreeDist) (Series, error) {
	pts, err := stats.LogBin(d, 1.3)
	if err != nil {
		return Series{}, fmt.Errorf("bin %s: %w", label, err)
	}
	s := Series{Label: label, Points: make([]Point, len(pts))}
	for i, p := range pts {
		s.Points[i] = Point{X: p.K, Y: p.P}
	}
	return s, nil
}

// algKind selects the search algorithm for searchSeries.
type algKind int

const (
	algFL algKind = iota + 1
	algNF
	algRW // random walk normalized to the NF message budget (§V-B)
)

func (a algKind) String() string {
	switch a {
	case algFL:
		return "FL"
	case algNF:
		return "NF"
	case algRW:
		return "RW"
	default:
		return fmt.Sprintf("algKind(%d)", int(a))
	}
}

// searchCfg bundles the parameters of one search-efficiency series.
type searchCfg struct {
	alg          algKind
	maxTTL       int
	kMin         int // NF fan-out; the paper uses the prescribed m
	sources      int
	realizations int
	workers      int         // concurrent sweeps; 0 = GOMAXPROCS
	sourceShards int         // concurrent sources per realization; 0 = automatic
	genWorkers   int         // pipelined build-stage bound; 0 = match workers
	run          *RunControl // supervision + journal; nil = unsupervised
	tag          string      // journal-key prefix for panels whose series labels repeat across shared seeds (see sweepSeries)
}

// withTag returns the config with a journal-key prefix. Required when two
// series in one spec share both an engine seed and a label format (e.g.
// fig9's PA and HAPA m=1 panels): the prefix keeps their checkpoint keys
// distinct so a resume cannot replay one panel's rows into the other.
func (cfg searchCfg) withTag(tag string) searchCfg {
	cfg.tag = tag
	return cfg
}

// searchCfg wires a series configuration to the scale's workload and
// scheduler knobs (plus the run supervisor), so every spec passes
// Workers, SourceShards, GenWorkers, and Run through uniformly.
func (sc Scale) searchCfg(alg algKind, maxTTL, kMin int) searchCfg {
	return searchCfg{
		alg: alg, maxTTL: maxTTL, kMin: kMin,
		sources: sc.Sources, realizations: sc.Realizations,
		workers: sc.Workers, sourceShards: sc.SourceShards,
		genWorkers: sc.GenWorkers, run: sc.Run,
	}
}

// runSearch dispatches one search on the per-worker scratch. The Result
// aliases the scratch: consume it before the next search.
func (cfg searchCfg) runSearch(scratch *search.Scratch, f *graph.Frozen, src int, rng *xrand.RNG) (search.Result, error) {
	switch cfg.alg {
	case algFL:
		return scratch.Flood(f, src, cfg.maxTTL)
	case algNF:
		return scratch.NormalizedFlood(f, src, cfg.maxTTL, cfg.kMin, rng)
	case algRW:
		res, _, err := scratch.RandomWalkWithNFBudget(f, src, cfg.maxTTL, cfg.kMin, rng)
		return res, err
	default:
		return search.Result{}, fmt.Errorf("sim: unknown algorithm %v", cfg.alg)
	}
}

// searchSeries measures mean hits vs τ: `realizations` topologies from the
// factory, `sources` random sources each, averaged per τ with error bars
// across realizations. The returned series has x = τ (1..maxTTL) and
// y = mean number of hits. For algRW, hits follow the paper's
// normalization: a walk of as many steps as NF sent messages at that τ.
//
// The source sweep of each realization is sharded across
// cfg.sourceShards goroutines sharing the frozen topology: source s draws
// its own source node and all search randomness from the (seed, r, s)
// stream, and its curve lands in slot (r, s), reduced in source order.
func searchSeries(label string, factory topoFactory, cfg searchCfg, seed uint64) (Series, error) {
	return sweepSeries(label, factory, cfg, seed, func(res search.Result, row []float64) {
		for t := range row {
			row[t] = float64(res.HitsAt(t))
		}
	})
}

// messageSeries is searchSeries for messaging complexity: y = mean number
// of messages per search request at each τ (§V-B2). The "msgs" journal
// prefix keeps its checkpoints apart from a hits series over the same
// label and seed — Messaging measures both from one configuration, and
// without the prefix their records would overwrite each other.
func messageSeries(label string, factory topoFactory, cfg searchCfg, seed uint64) (Series, error) {
	cfg = cfg.withTag(strings.TrimSpace("msgs " + cfg.tag))
	return sweepSeries(label, factory, cfg, seed, func(res search.Result, row []float64) {
		for t := range row {
			row[t] = float64(res.MessagesAt(t))
		}
	})
}

// sweepSeries is the shared engine of searchSeries and messageSeries,
// run through the three-stage pipeline: the build stage generates and
// freezes each realization (sorted ranges included) while the sweep stage
// fans an earlier realization's sources out across the shard pool; the
// per-(realization, source) curves land in index slots and reduce
// deterministically.
//
// Under a journaling RunControl each completed realization's source rows
// are checkpointed keyed by (seed, hash(cfg.tag + label), r) — the label
// disambiguates series that share an engine seed, and cfg.tag
// disambiguates panels that share both (journal.claim fails loudly if a
// collision slips through anyway) — resumed realizations
// replay those exact bits and skip the engine, and realizations that
// permanently failed within the budget are dropped from the reduction
// with explicit accounting upstream.
func sweepSeries(label string, factory topoFactory, cfg searchCfg, seed uint64, sample func(res search.Result, row []float64)) (Series, error) {
	rc := cfg.run
	rowLen := cfg.maxTTL + 1
	jl := label
	if cfg.tag != "" {
		jl = cfg.tag + ": " + label
	}
	sub := journalTag(jl)
	if err := rc.journalClaim(recSweepSlots, seed, sub, jl); err != nil {
		return Series{}, err
	}
	perSource := make([][]float64, cfg.realizations*cfg.sources)
	skip := replayRowBlocks(rc, recSweepSlots, seed, sub, cfg.realizations, cfg.sources, rowLen, func(r int, rows [][]float64) {
		copy(perSource[r*cfg.sources:(r+1)*cfg.sources], rows)
	})
	err := forEachRealizationPipeline(engineOpts{rc: rc, skip: skip, partial: true},
		cfg.workers, cfg.sourceShards, cfg.genWorkers, cfg.realizations, seed,
		func(r int, b *builder) (*graph.Frozen, error) {
			return sweepTopo(factory, r, b)
		},
		func(r int, f *graph.Frozen, sw *sweeper) error {
			err := sw.Sources(uint64(r), cfg.sources, func(_, s int, rng *xrand.RNG, scratch *search.Scratch) error {
				src := rng.Intn(f.N())
				res, err := cfg.runSearch(scratch, f, src, rng)
				if err != nil {
					return err
				}
				row := make([]float64, rowLen)
				sample(res, row)
				perSource[r*cfg.sources+s] = row
				return nil
			})
			if err != nil {
				return err
			}
			if rc.journaling() {
				rc.journalAppend(recSweepSlots, seed, sub, r,
					encodeRowBlock(perSource[r*cfg.sources:(r+1)*cfg.sources], rowLen))
			}
			return nil
		})
	if err != nil {
		return Series{}, fmt.Errorf("series %s: %w", label, err)
	}
	for r := range rc.failedSet(seed) {
		for s := 0; s < cfg.sources; s++ {
			perSource[r*cfg.sources+s] = nil // partial attempt bits must not average in
		}
	}
	return aggregate(label, meanRows(perSource, cfg.realizations, cfg.sources), 1)
}

// replayRowBlocks restores journaled row-block records into a sweep's
// slot array and returns the engine skip function covering them; nil when
// nothing is replayable (not journaling, or no matching records).
func replayRowBlocks(rc *RunControl, kind uint8, stream, sub uint64, realizations, nRows, rowLen int, restore func(r int, rows [][]float64)) func(int) bool {
	if !rc.journaling() {
		return nil
	}
	done := make(map[int]bool, realizations)
	for r := 0; r < realizations; r++ {
		p, ok := rc.journalPayload(kind, stream, sub, r)
		if !ok {
			continue
		}
		rows, ok := decodeRowBlock(p, nRows, rowLen)
		if !ok {
			continue // shape drift: treat as not completed, recompute
		}
		restore(r, rows)
		done[r] = true
	}
	if len(done) == 0 {
		return nil
	}
	return func(r int) bool { return done[r] }
}

// meanRows reduces per-(realization, source) rows (slot layout
// r*sources+s) to per-realization means, summing in source order so the
// result is bit-for-bit independent of how the sweep was scheduled. A
// realization with any nil row (permanently failed within the budget,
// cleared by the caller) reduces to a nil entry, which aggregate then
// drops — the accumulation order over surviving rows is unchanged, so a
// failure-free reduction is bit-identical to the unsupervised one.
func meanRows(perSource [][]float64, realizations, sources int) [][]float64 {
	perReal := make([][]float64, realizations)
	for r := range perReal {
		var sums []float64
		dropped := false
		for s := 0; s < sources; s++ {
			row := perSource[r*sources+s]
			if row == nil {
				dropped = true
				break
			}
			if sums == nil {
				sums = make([]float64, len(row))
			}
			for t := range sums {
				sums[t] += row[t]
			}
		}
		if dropped || sums == nil {
			continue
		}
		for t := range sums {
			sums[t] /= float64(sources)
		}
		perReal[r] = sums
	}
	return perReal
}

// aggregate converts per-realization curves (indexed from 0) into a Series
// starting at x = firstX, with mean and stddev across realizations. Nil
// entries are dropped realizations (budgeted permanent failures); the
// survivors aggregate in realization order, and a run with no failures is
// bit-identical to the pre-supervision reduction.
func aggregate(label string, perReal [][]float64, firstX int) (Series, error) {
	rows := make([][]float64, 0, len(perReal))
	for _, row := range perReal {
		if row != nil {
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 || len(rows[0]) == 0 {
		return Series{}, fmt.Errorf("sim: no data for series %s", label)
	}
	n := len(rows[0])
	s := Series{Label: label}
	col := make([]float64, len(rows))
	for t := firstX; t < n; t++ {
		for r := range rows {
			col[r] = rows[r][t]
		}
		s.Points = append(s.Points, Point{
			X:   float64(t),
			Y:   stats.Mean(col),
			Err: stats.StdDev(col),
		})
	}
	return s, nil
}

// exponentVsCutoff measures the fitted degree exponent as a function of the
// hard cutoff for a factory parameterized by kc — the engine behind
// Figs. 1(c) and 4(g). The fit includes the accumulation spike at kc, as
// the paper's measurement does ("when the jump on the hard cutoffs is
// taken into account").
func exponentVsCutoff(label string, mk func(kc int) topoFactory, cutoffs []int, sc Scale, seed uint64) (Series, error) {
	s := Series{Label: label}
	for i, kc := range cutoffs {
		d, err := mergedDegreeDist(fmt.Sprintf("%s kc=%d", label, kc), mk(kc), sc, seed+uint64(i)*1000)
		if err != nil {
			return Series{}, fmt.Errorf("%s kc=%d: %w", label, kc, err)
		}
		fit, err := stats.FitPowerLawBinned(d, 1.5, 1, 0)
		if err != nil {
			return Series{}, fmt.Errorf("%s kc=%d fit: %w", label, kc, err)
		}
		s.Points = append(s.Points, Point{X: float64(kc), Y: fit.Gamma, Err: fit.StdErr})
	}
	return s, nil
}
