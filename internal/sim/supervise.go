package sim

// Run supervision for the realization engines: panic recovery, bounded
// retries, a permanent-failure budget, cooperative interruption, and a
// stall watchdog. A *RunControl rides into the engines via engineOpts
// (cmd/experiments threads it through Scale.Run); every method is
// nil-receiver-safe, so library callers and tests that pass no control
// get exactly the pre-supervision behavior: panics propagate, the first
// error aborts, nothing is journaled.
//
// Retries are deterministic by construction: a failed realization r is
// re-attempted from a freshly derived xrand.New(seed).SplitN(n)[r] stream
// and a fresh arena/sweeper, so a transient failure's surviving attempt
// produces the same bits the realization would have produced had it never
// failed — the supervision layer cannot perturb figures, only omit
// explicitly-accounted realizations from them.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInterrupted marks a run stopped cleanly at a realization boundary by
// signal/context cancellation. cmd/experiments maps it to a distinct
// partial-run exit status.
var ErrInterrupted = errors.New("sim: run interrupted")

// FailureRecord is one permanently failed realization: which sweep
// (engine seed), which realization, how many attempts were burned, the
// final error, and — when the failure was a recovered panic — the stack.
type FailureRecord struct {
	Stream      uint64
	Realization int
	Attempts    int
	Err         string
	Stack       string
}

func (fr FailureRecord) String() string {
	return fmt.Sprintf("realization %d of stream %#x failed after %d attempt(s): %s",
		fr.Realization, fr.Stream, fr.Attempts, fr.Err)
}

// panicError carries a recovered panic value and its stack through the
// error-returning retry path.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// protectCall runs fn, converting a panic into a *panicError. When rc is
// nil there is no supervisor to hand the failure to, so the panic
// propagates exactly as before.
func protectCall[T any](rc *RunControl, fn func() (T, error)) (out T, err error) {
	if rc == nil {
		return fn()
	}
	defer func() {
		if v := recover(); v != nil {
			err = &panicError{val: v, stack: debug.Stack()}
		}
	}()
	return fn()
}

// protectErr is protectCall for error-only callbacks.
func protectErr(rc *RunControl, fn func() error) error {
	_, err := protectCall(rc, func() (struct{}, error) { return struct{}{}, fn() })
	return err
}

// RunControl supervises the realization engines of one experiment run.
type RunControl struct {
	ctx       context.Context
	retries   int
	maxFailed int
	journal   *Journal

	// Distributed-worker mode (see dist.go and internal/coord): only
	// restricts the engines to the realizations this process leases, and
	// sink — set instead of a journal — receives every record the run
	// would have journaled, in wire form, for streaming to a coordinator.
	only func(r int) bool
	sink func(SlotRecord)

	progress  atomic.Int64
	recovered atomic.Int64

	mu         sync.Mutex
	failures   []FailureRecord
	failedBy   map[uint64]map[int]bool
	abort      error
	sinkClaims map[journalClaimKey]string
}

// NewRunControl builds a supervisor: ctx stops the run at realization
// boundaries, retries is the number of re-attempts per failed realization,
// maxFailed the budget of permanently failed realizations a journaled
// sweep may absorb before the run aborts, and j (optional) the journal
// that checkpoints completed realizations and failure records.
func NewRunControl(ctx context.Context, retries, maxFailed int, j *Journal) *RunControl {
	if ctx == nil {
		ctx = context.Background()
	}
	if retries < 0 {
		retries = 0
	}
	if maxFailed < 0 {
		maxFailed = 0
	}
	return &RunControl{
		ctx:       ctx,
		retries:   retries,
		maxFailed: maxFailed,
		journal:   j,
		failedBy:  map[uint64]map[int]bool{},
	}
}

// NewWorkerRunControl builds the supervisor for one distributed worker's
// lease: the engines run only realization r (every other index is skipped
// without building anything), and every record the run would have
// journaled is handed to sink in wire form instead. Failures are strict
// (maxFailed=0): a worker that cannot compute its one realization reports
// the failure to its coordinator rather than papering over it locally —
// the coordinator owns the -max-failed budget.
func NewWorkerRunControl(ctx context.Context, retries, r int, sink func(SlotRecord)) *RunControl {
	rc := NewRunControl(ctx, retries, 0, nil)
	rc.only = func(i int) bool { return i == r }
	rc.sink = sink
	return rc
}

// owns reports whether this run should compute realization r. Always true
// outside distributed-worker mode.
func (rc *RunControl) owns(r int) bool {
	if rc == nil || rc.only == nil {
		return true
	}
	return rc.only(r)
}

// interrupted reports why the run should stop dispatching realizations:
// a cancelled context or an armed failure-budget abort. Engines check it
// before every dispatch, so cancellation lands at realization boundaries.
func (rc *RunControl) interrupted() error {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	abort := rc.abort
	rc.mu.Unlock()
	if abort != nil {
		return abort
	}
	if rc.ctx.Err() != nil {
		return fmt.Errorf("%w (%v)", ErrInterrupted, context.Cause(rc.ctx))
	}
	return nil
}

// maxAttempts is how many times a realization may run: 1 without a
// supervisor, retries+1 with one.
func (rc *RunControl) maxAttempts() int {
	if rc == nil {
		return 1
	}
	return rc.retries + 1
}

// noteProgress feeds the stall watchdog: any realization-level step
// (build done, sweep done, skip, failure) counts as progress.
func (rc *RunControl) noteProgress() {
	if rc != nil {
		rc.progress.Add(1)
	}
}

// noteRecovered counts a realization that failed at least once but
// succeeded on retry.
func (rc *RunControl) noteRecovered() {
	if rc != nil {
		rc.recovered.Add(1)
	}
}

// Progress returns the monotone progress counter (exported for tests and
// external watchdogs).
func (rc *RunControl) Progress() int64 {
	if rc == nil {
		return 0
	}
	return rc.progress.Load()
}

// Recovered reports how many realizations succeeded only after a retry.
func (rc *RunControl) Recovered() int64 {
	if rc == nil {
		return 0
	}
	return rc.recovered.Load()
}

// Failures returns a copy of the permanent failure records accumulated so
// far (this run only; resumed failure records live on the Journal).
func (rc *RunControl) Failures() []FailureRecord {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]FailureRecord(nil), rc.failures...)
}

// absorbFailure records a realization that failed all its attempts.
// For journaled sweeps (partial=true) the failure is absorbed while the
// permanent-failure count stays within maxFailed — the sweep continues and
// the reduction drops the realization with explicit accounting; past the
// budget the run arms an abort. Strict callers (partial=false) and
// unsupervised runs get the wrapped cause back, which aborts the engine
// exactly like any realization error always has.
func (rc *RunControl) absorbFailure(stream uint64, r, attempts int, cause error, partial bool) error {
	if rc == nil {
		// Unsupervised engines report the callback's error untouched,
		// exactly as they always have.
		return cause
	}
	wrapped := fmt.Errorf("sim: realization %d (stream %#x) failed after %d attempt(s): %w", r, stream, attempts, cause)
	fr := FailureRecord{Stream: stream, Realization: r, Attempts: attempts, Err: cause.Error()}
	var pe *panicError
	if errors.As(cause, &pe) {
		fr.Stack = string(pe.stack)
	}
	// Best effort: the failure record is for post-mortems and resume-time
	// accounting, not correctness (it does not mark the realization done).
	rc.journal.append(journalKey{kind: recFailure, stream: stream, r: r}, encodeFailure(fr))
	rc.noteProgress()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.failures = append(rc.failures, fr)
	if !partial {
		return wrapped
	}
	set := rc.failedBy[stream]
	if set == nil {
		set = map[int]bool{}
		rc.failedBy[stream] = set
	}
	set[r] = true
	if len(rc.failures) > rc.maxFailed {
		if rc.abort == nil {
			rc.abort = fmt.Errorf("sim: %d permanently failed realization(s) exceed the -max-failed budget of %d (last: %w)",
				len(rc.failures), rc.maxFailed, cause)
		}
		return rc.abort
	}
	return nil
}

// failedSet returns the realizations of one sweep that permanently failed
// within budget, so the sweep's reduction can drop them explicitly.
func (rc *RunControl) failedSet(stream uint64) map[int]bool {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	set := rc.failedBy[stream]
	if len(set) == 0 {
		return nil
	}
	out := make(map[int]bool, len(set))
	for r := range set {
		out[r] = true
	}
	return out
}

// journaling reports whether completed realizations should be checkpointed
// — to a journal file, or (worker mode) to a record sink.
func (rc *RunControl) journaling() bool {
	return rc != nil && (rc.journal != nil || rc.sink != nil)
}

// journalClaim registers a (kind, stream, sub) record family under its
// human-readable tag, failing loudly on a collision with a different
// series (see Journal.claim). No-op when not journaling. Sink mode keeps
// the guard — a collision would make two series' records
// indistinguishable on the coordinator too — via a RunControl-local map.
func (rc *RunControl) journalClaim(kind uint8, stream, sub uint64, tag string) error {
	if !rc.journaling() {
		return nil
	}
	if rc.journal != nil {
		return rc.journal.claim(journalClaimKey{kind: kind, stream: stream, sub: sub}, tag)
	}
	k := journalClaimKey{kind: kind, stream: stream, sub: sub}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.sinkClaims == nil {
		rc.sinkClaims = make(map[journalClaimKey]string)
	}
	if prev, ok := rc.sinkClaims[k]; ok {
		return fmt.Errorf("sim: journal key collision: series %q and %q both checkpoint under (kind=%d, stream=%#x, sub=%#x); give one a distinct tag or seed",
			prev, tag, k.kind, k.stream, k.sub)
	}
	rc.sinkClaims[k] = tag
	return nil
}

// journalPayload fetches a resumed record for (kind, stream, sub, r).
// Worker sinks never replay — the coordinator's journal owns resume.
func (rc *RunControl) journalPayload(kind uint8, stream, sub uint64, r int) ([]byte, bool) {
	if rc == nil || rc.journal == nil {
		return nil, false
	}
	p, ok := rc.journal.resumed[journalKey{kind: kind, stream: stream, sub: sub, r: r}]
	return p, ok
}

// journalAppend checkpoints one completed realization's contribution. A
// nil payload (encoder refused) is skipped; append errors are sticky on
// the journal and surface through Flush/Close in cmd/experiments. In
// worker mode the record goes to the sink instead — same key, same bits.
func (rc *RunControl) journalAppend(kind uint8, stream, sub uint64, r int, payload []byte) {
	if !rc.journaling() || payload == nil {
		return
	}
	if rc.journal != nil {
		rc.journal.append(journalKey{kind: kind, stream: stream, sub: sub, r: r}, payload)
		return
	}
	rc.sink(SlotRecord{Kind: kind, Stream: stream, Sub: sub, Realization: r, Payload: payload})
}

// StartWatchdog arms a stall watchdog: if the progress counter does not
// move for a full window, all goroutine stacks are dumped to out (then the
// watchdog re-arms, so a genuinely stuck run dumps once per window). The
// returned stop function disarms it. window <= 0 disables the watchdog.
func (rc *RunControl) StartWatchdog(window time.Duration, out io.Writer) (stop func()) {
	if rc == nil || window <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		step := window / 4
		if step <= 0 {
			step = time.Millisecond
		}
		tick := time.NewTicker(step)
		defer tick.Stop()
		last := rc.progress.Load()
		quietSince := time.Now()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				cur := rc.progress.Load()
				if cur != last {
					last = cur
					quietSince = now
					continue
				}
				if now.Sub(quietSince) < window {
					continue
				}
				buf := make([]byte, 1<<20)
				for {
					n := runtime.Stack(buf, true)
					if n < len(buf) {
						buf = buf[:n]
						break
					}
					buf = make([]byte, 2*len(buf))
				}
				fmt.Fprintf(out, "sim: watchdog: no realization progress for %s; goroutine dump follows\n%s\n", window, buf)
				quietSince = now // re-arm
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
