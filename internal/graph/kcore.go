package graph

// k-core decomposition: the standard peeling algorithm (Batagelj–Zaveršnik
// bucket variant, O(V+E)). The k-core structure of an overlay reveals its
// resilient backbone — nodes in high cores survive the removal of all
// lower-degree peers, which complements the hard-cutoff analysis: cutoffs
// cap the maximum degree but raise the minimum core of the bulk.
//
// The peel runs on the CSR form; the Graph methods freeze and delegate.

// CoreNumbers freezes g and peels the CSR snapshot; see
// Frozen.CoreNumbers.
func (g *Graph) CoreNumbers() []int { return g.Freeze().CoreNumbers() }

// CoreNumbers returns each node's core number: the largest k such that the
// node belongs to a subgraph where every member has degree >= k within the
// subgraph. Self-loops and parallel edges count toward degree (consistent
// with Degree).
func (f *Frozen) CoreNumbers() []int {
	n := f.N()
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = f.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2) // bin[d] = start index of degree-d block
	for _, d := range deg {
		bin[d+1]++
	}
	for d := 1; d < len(bin); d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int, n)  // node -> index in vert
	vert := make([]int, n) // sorted nodes
	next := append([]int(nil), bin...)
	for u := 0; u < n; u++ {
		pos[u] = next[deg[u]]
		vert[pos[u]] = u
		next[deg[u]]++
	}

	for i := 0; i < n; i++ {
		u := vert[i]
		core[u] = deg[u]
		for _, vv := range f.Neighbors(u) {
			v := int(vv)
			if deg[v] <= deg[u] {
				continue
			}
			// Move v one bucket down: swap it with the first node of its
			// current degree block, then shrink the block.
			dv := deg[v]
			pw := bin[dv]
			w := vert[pw]
			if v != w {
				vert[pos[v]], vert[pw] = w, v
				pos[w], pos[v] = pos[v], pw
			}
			bin[dv]++
			deg[v]--
		}
	}
	return core
}

// MaxCore returns the largest core number (the degeneracy of the graph).
func (g *Graph) MaxCore() int { return g.Freeze().MaxCore() }

// MaxCore returns the largest core number (the degeneracy of the graph).
func (f *Frozen) MaxCore() int {
	best := 0
	for _, c := range f.CoreNumbers() {
		if c > best {
			best = c
		}
	}
	return best
}

// KCore returns the node set of the k-core (all nodes with core number
// >= k), in ascending node order.
func (g *Graph) KCore(k int) []int { return g.Freeze().KCore(k) }

// KCore returns the node set of the k-core (all nodes with core number
// >= k), in ascending node order.
func (f *Frozen) KCore(k int) []int {
	var out []int
	for u, c := range f.CoreNumbers() {
		if c >= k {
			out = append(out, u)
		}
	}
	return out
}
