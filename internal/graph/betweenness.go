package graph

import "math"

// Betweenness centrality via Brandes' algorithm (unweighted, O(V·E)).
// Betweenness identifies the peers "through which most of the traffic
// go[es]" (paper §III) — the targets whose removal "can easily shatter
// the network". metrics.Robustness uses it for the strongest attack
// variant.
//
// The computation runs on the CSR form: a Frozen's flat neighbor array
// keeps the pivot BFS loops cache-resident, and because Freeze preserves
// neighbor order the accumulation order — hence every floating-point sum —
// is identical to the historical slice-of-slices implementation.

// Betweenness freezes g and computes betweenness on the CSR snapshot; see
// Frozen.Betweenness. Read-heavy callers that already hold a Frozen should
// call it directly.
func (g *Graph) Betweenness(sampleSources int, rng randSource) []float64 {
	return g.Freeze().Betweenness(sampleSources, rng)
}

// Betweenness returns each node's (unnormalized) shortest-path betweenness
// centrality: the sum over all node pairs (s,t) of the fraction of
// shortest s-t paths passing through the node. For graphs larger than
// `sampleSources` it estimates by accumulating from that many random
// source pivots scaled up to N (the standard Brandes–Pich approximation);
// pass sampleSources >= N (or <= 0) for the exact computation.
func (f *Frozen) Betweenness(sampleSources int, rng randSource) []float64 {
	bc, _ := f.betweenness(sampleSources, rng, false)
	return bc
}

// BetweennessSampled is Betweenness plus uncertainty: alongside the
// Brandes–Pich estimate it returns each node's standard error, derived
// from the empirical variance of its per-pivot dependency contributions:
//
//	bc[i] = (n/2p)·Σ_p δ_p(i)    se[i] = (n/2)·s_i/√p
//
// where s_i is the sample standard deviation of δ_p(i) over the p pivots.
// With the same rng state it consumes the identical pivot draws as
// Betweenness, so bc matches that method bit for bit. For an exact run
// (pivots <= 0 or >= n, or p < 2) there is no sampling uncertainty and se
// is all zeros.
func (f *Frozen) BetweennessSampled(pivots int, rng randSource) (bc, se []float64) {
	return f.betweenness(pivots, rng, true)
}

func (f *Frozen) betweenness(sampleSources int, rng randSource, wantSE bool) (bc, se []float64) {
	n := f.N()
	bc = make([]float64, n)
	if wantSE {
		se = make([]float64, n)
	}
	if n == 0 {
		return bc, se
	}
	exact := sampleSources <= 0 || sampleSources >= n
	pivots := n
	if !exact {
		pivots = sampleSources
	}
	var sumsq []float64
	if wantSE && !exact && pivots > 1 {
		sumsq = make([]float64, n)
	}

	// Reusable per-source state.
	dist := make([]int32, n)
	sigma := make([]float64, n) // shortest-path counts
	delta := make([]float64, n) // dependency accumulation
	order := make([]int32, 0, n)
	preds := make([][]int32, n)

	for p := 0; p < pivots; p++ {
		s := p
		if !exact {
			s = rng.Intn(n)
		}
		// BFS from s tracking predecessors and path counts.
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		queue := []int32{int32(s)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			order = append(order, u)
			for _, v := range f.Neighbors(int(u)) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		// Dependency accumulation in reverse BFS order. delta[w] is final
		// when w is popped, so the per-pivot contribution (and its square,
		// for the variance) accumulates right here; nodes the BFS never
		// reached contribute an implicit zero.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, u := range preds[w] {
				delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				bc[w] += delta[w]
				if sumsq != nil {
					sumsq[w] += delta[w] * delta[w]
				}
			}
		}
	}
	// Each undirected pair is counted from both endpoints when all
	// sources are visited; halve per convention. The sampled estimator
	// additionally scales up from `pivots` sources to n. The standard
	// errors derive from the raw per-pivot sums, so compute them before
	// bc is scaled in place.
	scale := 0.5
	if !exact {
		scale = float64(n) / float64(pivots) / 2
	}
	if sumsq != nil {
		p := float64(pivots)
		half := float64(n) / 2
		for i := range se {
			mean := bc[i] / p
			variance := (sumsq[i] - p*mean*mean) / (p - 1)
			if variance > 0 {
				se[i] = half * math.Sqrt(variance/p)
			}
		}
	}
	for i := range bc {
		bc[i] *= scale
	}
	return bc, se
}
