package graph

// Betweenness centrality via Brandes' algorithm (unweighted, O(V·E)).
// Betweenness identifies the peers "through which most of the traffic
// go[es]" (paper §III) — the targets whose removal "can easily shatter
// the network". metrics.Robustness uses it for the strongest attack
// variant.
//
// The computation runs on the CSR form: a Frozen's flat neighbor array
// keeps the pivot BFS loops cache-resident, and because Freeze preserves
// neighbor order the accumulation order — hence every floating-point sum —
// is identical to the historical slice-of-slices implementation.

// Betweenness freezes g and computes betweenness on the CSR snapshot; see
// Frozen.Betweenness. Read-heavy callers that already hold a Frozen should
// call it directly.
func (g *Graph) Betweenness(sampleSources int, rng randSource) []float64 {
	return g.Freeze().Betweenness(sampleSources, rng)
}

// Betweenness returns each node's (unnormalized) shortest-path betweenness
// centrality: the sum over all node pairs (s,t) of the fraction of
// shortest s-t paths passing through the node. For graphs larger than
// `sampleSources` it estimates by accumulating from that many random
// source pivots scaled up to N (the standard Brandes–Pich approximation);
// pass sampleSources >= N (or <= 0) for the exact computation.
func (f *Frozen) Betweenness(sampleSources int, rng randSource) []float64 {
	n := f.N()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	exact := sampleSources <= 0 || sampleSources >= n
	pivots := n
	if !exact {
		pivots = sampleSources
	}

	// Reusable per-source state.
	dist := make([]int32, n)
	sigma := make([]float64, n) // shortest-path counts
	delta := make([]float64, n) // dependency accumulation
	order := make([]int32, 0, n)
	preds := make([][]int32, n)

	for p := 0; p < pivots; p++ {
		s := p
		if !exact {
			s = rng.Intn(n)
		}
		// BFS from s tracking predecessors and path counts.
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		queue := []int32{int32(s)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			order = append(order, u)
			for _, v := range f.Neighbors(int(u)) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, u := range preds[w] {
				delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
			}
			if int(w) != s {
				bc[w] += delta[w]
			}
		}
	}
	// Each undirected pair is counted from both endpoints when all
	// sources are visited; halve per convention. The sampled estimator
	// additionally scales up from `pivots` sources to n.
	scale := 0.5
	if !exact {
		scale = float64(n) / float64(pivots) / 2
	}
	for i := range bc {
		bc[i] *= scale
	}
	return bc
}
