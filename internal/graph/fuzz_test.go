package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the parser against arbitrary input: it must
// never panic, and any successfully parsed graph must round-trip through
// WriteEdgeList with identical structure.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# nodes 3\n0 1\n1 2\n")
	f.Add("0 0\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("5 5\n5 5\n")
	f.Add("0 1 2\n")
	f.Add("-1 3\n")
	f.Add("# nodes -5\n")
	f.Add("999999 0\n")
	f.Add("0\t1\n")
	f.Fuzz(func(t *testing.T, input string) {
		// Guard against absurd node counts blowing up memory: the parser
		// allocates per node, so cap the input's numeric magnitude by
		// skipping giant tokens.
		for _, tok := range strings.Fields(input) {
			if len(tok) > 7 {
				t.Skip("token too large for fuzz budget")
			}
		}
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if g.TotalDegree() != 2*g.M() {
			t.Fatalf("invariant broken: total degree %d != 2*edges %d", g.TotalDegree(), g.M())
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write after parse: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: N %d->%d M %d->%d", g.N(), g2.N(), g.M(), g2.M())
		}
	})
}
