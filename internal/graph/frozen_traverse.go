package graph

// Component and sampled-distance machinery on the CSR snapshot, mirroring
// the Graph implementations in traverse.go bit for bit. These exist so
// figures whose topologies are built straight into CSR form (CM via
// CSRBuilder) can extract giant components and measure path statistics
// without ever materializing a mutable Graph.

import "sort"

// bfsInto runs BFS from src writing into dist (pre-filled with -1 for at
// least the reachable nodes), reusing queue as scratch. Queue order equals
// Graph.bfsInto's because neighbor order is preserved by freezing.
func (f *Frozen) bfsInto(src int, dist []int32, queue []int32) []int32 {
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range f.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// ConnectedComponents returns the node sets of each connected component,
// largest first, members ascending — identical to Graph.ConnectedComponents
// on the graph this snapshot was (or would have been) frozen from.
func (f *Frozen) ConnectedComponents() [][]int {
	n := f.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		members := []int{}
		queue = queue[:0]
		queue = append(queue, int32(s))
		comp[s] = id
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			members = append(members, int(u))
			for _, v := range f.Neighbors(int(u)) {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	sortBySizeDesc(comps)
	return comps
}

// GiantComponent returns the node set of the largest connected component,
// or nil for an empty snapshot, as Graph.GiantComponent.
func (f *Frozen) GiantComponent() []int {
	comps := f.ConnectedComponents()
	if len(comps) == 0 {
		return nil
	}
	return comps[0]
}

// SamplePathStats estimates mean shortest-path length and diameter from
// `sources` random BFS sources, drawing and aggregating exactly as
// Graph.SamplePathStats (same RNG consumption, same result).
func (f *Frozen) SamplePathStats(sources int, rng randSource) PathStats {
	n := f.N()
	var st PathStats
	if n == 0 || sources <= 0 {
		return st
	}
	exact := sources >= n
	dist := make([]int32, n)
	var queue []int32
	var sumDist float64
	for s := 0; s < sources && s < n; s++ {
		src := s
		if !exact {
			src = rng.Intn(n)
		}
		for i := range dist {
			dist[i] = -1
		}
		queue = f.bfsInto(src, dist, queue)
		for v, d := range dist {
			if v == src {
				continue
			}
			if d < 0 {
				st.UnreachablePairs++
				continue
			}
			sumDist += float64(d)
			st.Pairs++
			if int(d) > st.MaxDistance {
				st.MaxDistance = int(d)
			}
		}
	}
	if st.Pairs > 0 {
		st.MeanDistance = sumDist / float64(st.Pairs)
	}
	return st
}

// InducedFrozen returns the CSR snapshot of the subgraph on the given
// node set, renumbered 0..len(nodes)-1 in the given order, plus the
// mapping from new IDs back to original IDs. It is byte-identical —
// offsets, neighbor order, sorted ranges — to
// Graph.InducedSubgraph(nodes) followed by FreezeSorted on the graph this
// snapshot was frozen from: edges with an endpoint outside the set are
// dropped, parallel edges and self-loops inside the set are preserved,
// and the adjacency order replays InducedSubgraph's two-sided insertion
// scan (self-loop entries landing at the end of their row). The sorted
// membership ranges are built eagerly; the result is sweep-ready.
func (f *Frozen) InducedFrozen(nodes []int) (*Frozen, []int) {
	n := f.N()
	k := len(nodes)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = -1
	}
	orig := make([]int, k)
	for i, u := range nodes {
		if u >= 0 && u < n {
			idx[u] = int32(i)
		}
		orig[i] = u
	}

	// Count pass: one increment per surviving directed adjacency entry,
	// following the same i<j / i==j split InducedSubgraph uses.
	lens := make([]int32, k)
	selfEntries := make([]int32, k)
	edges := 0
	for i, u := range nodes {
		if u < 0 || u >= n {
			continue
		}
		for _, v := range f.Neighbors(u) {
			j := idx[v]
			if j < 0 {
				continue
			}
			if int32(i) < j {
				lens[i]++
				lens[j]++
				edges++
			} else if int32(i) == j {
				selfEntries[i]++
			}
		}
	}
	// Self-loop entries come in pairs; each pair becomes one loop (two
	// adjacency entries) appended after the scan, as InducedSubgraph does.
	for i := range lens {
		loops := selfEntries[i] / 2
		lens[i] += 2 * loops
		edges += int(loops)
	}

	sub := &Frozen{offsets: make([]int32, k+1), edges: edges}
	for i := 0; i < k; i++ {
		sub.offsets[i+1] = sub.offsets[i] + lens[i]
	}
	sub.neighbors = make([]int32, sub.offsets[k])
	next := make([]int32, k)
	copy(next, sub.offsets[:k])
	for i, u := range nodes {
		if u < 0 || u >= n {
			continue
		}
		for _, v := range f.Neighbors(u) {
			j := idx[v]
			if j < 0 || int32(i) >= j {
				continue
			}
			sub.neighbors[next[i]] = j
			next[i]++
			sub.neighbors[next[j]] = int32(i)
			next[j]++
		}
	}
	for i := range selfEntries {
		for c := selfEntries[i] / 2; c > 0; c-- {
			sub.neighbors[next[i]] = int32(i)
			sub.neighbors[next[i]+1] = int32(i)
			next[i] += 2
		}
	}
	sub.sorted = sortedFromAdjacency(sub.offsets, sub.neighbors)
	sub.sortedOnce.Do(func() {})
	return sub, orig
}
