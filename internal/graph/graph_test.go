package graph

import (
	"testing"
	"testing/quick"

	"scalefree/internal/xrand"
)

func mustAdd(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

// path returns a path graph 0-1-2-...-(n-1).
func path(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(t, g, i, i+1)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	t.Parallel()
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should be connected by convention")
	}
	if g.MinDegree() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph degrees should be 0")
	}
}

func TestAddEdgeBasics(t *testing.T) {
	t.Parallel()
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge 0-1 missing or not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge 0-2")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.TotalDegree() != 4 {
		t.Fatalf("TotalDegree = %d, want 4", g.TotalDegree())
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	t.Parallel()
	g := New(2)
	if err := g.AddEdge(0, 2); err == nil {
		t.Fatal("AddEdge(0,2) on 2-node graph should error")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("AddEdge(-1,0) should error")
	}
}

func TestSelfLoopDegreeConvention(t *testing.T) {
	t.Parallel()
	g := New(1)
	mustAdd(t, g, 0, 0)
	if g.Degree(0) != 2 {
		t.Fatalf("self-loop degree = %d, want 2", g.Degree(0))
	}
	if g.M() != 1 {
		t.Fatalf("self-loop M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 0) {
		t.Fatal("HasEdge(0,0) false after adding self-loop")
	}
}

func TestMultiEdges(t *testing.T) {
	t.Parallel()
	g := New(2)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 0)
	mustAdd(t, g, 0, 1)
	if g.EdgeMultiplicity(0, 1) != 3 {
		t.Fatalf("multiplicity = %d, want 3", g.EdgeMultiplicity(0, 1))
	}
	if g.M() != 3 || g.Degree(0) != 3 || g.Degree(1) != 3 {
		t.Fatalf("M=%d deg0=%d deg1=%d", g.M(), g.Degree(0), g.Degree(1))
	}
}

func TestRemoveEdge(t *testing.T) {
	t.Parallel()
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) returned false")
	}
	if g.EdgeMultiplicity(0, 1) != 1 || g.M() != 2 {
		t.Fatalf("after removal: mult=%d M=%d", g.EdgeMultiplicity(0, 1), g.M())
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("second RemoveEdge failed")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge 0-1 still present")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge on absent edge returned true")
	}
	if g.Degree(0) != 0 || g.Degree(1) != 1 {
		t.Fatalf("degrees after removal: %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestRemoveSelfLoop(t *testing.T) {
	t.Parallel()
	g := New(1)
	mustAdd(t, g, 0, 0)
	if !g.RemoveEdge(0, 0) {
		t.Fatal("RemoveEdge self-loop failed")
	}
	if g.Degree(0) != 0 || g.M() != 0 {
		t.Fatalf("after self-loop removal: deg=%d M=%d", g.Degree(0), g.M())
	}
}

func TestSimplify(t *testing.T) {
	t.Parallel()
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 1)
	mustAdd(t, g, 2, 2)
	mustAdd(t, g, 2, 2)
	mustAdd(t, g, 1, 2)
	loops, multi := g.Simplify()
	if loops != 3 {
		t.Fatalf("removed %d self-loops, want 3", loops)
	}
	if multi != 2 {
		t.Fatalf("removed %d multi-edges, want 2", multi)
	}
	if g.M() != 2 {
		t.Fatalf("M after simplify = %d, want 2", g.M())
	}
	if g.EdgeMultiplicity(0, 1) != 1 || !g.HasEdge(1, 2) {
		t.Fatal("wrong surviving edges")
	}
	for u := 0; u < 3; u++ {
		if g.EdgeMultiplicity(u, u) != 0 {
			t.Fatalf("self-loop survived at %d", u)
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	t.Parallel()
	g := New(4)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 2, 3)
	loops, multi := g.Simplify()
	if loops != 0 || multi != 0 {
		t.Fatalf("simplify on simple graph removed %d loops %d multi", loops, multi)
	}
	if g.M() != 2 {
		t.Fatalf("M changed to %d", g.M())
	}
}

func TestAddNode(t *testing.T) {
	t.Parallel()
	g := New(1)
	id := g.AddNode()
	if id != 1 || g.N() != 2 {
		t.Fatalf("AddNode: id=%d N=%d", id, g.N())
	}
	mustAdd(t, g, 0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("edge to added node missing")
	}
}

func TestClone(t *testing.T) {
	t.Parallel()
	g := New(3)
	mustAdd(t, g, 0, 1)
	c := g.Clone()
	mustAdd(t, c, 1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutation of clone leaked into original")
	}
	if !c.HasEdge(0, 1) || !c.HasEdge(1, 2) {
		t.Fatal("clone missing edges")
	}
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("edge counts: orig=%d clone=%d", g.M(), c.M())
	}
}

func TestBFSPath(t *testing.T) {
	t.Parallel()
	g := path(t, 5)
	dist := g.BFS(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	t.Parallel()
	g := New(4)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 2, 3)
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable distances: %v", dist)
	}
	if dist[1] != 1 {
		t.Fatalf("dist[1] = %d", dist[1])
	}
}

func TestBFSInvalidSource(t *testing.T) {
	t.Parallel()
	g := New(2)
	if got := g.BFS(5); got != nil {
		t.Fatalf("BFS(5) = %v, want nil", got)
	}
}

func TestBFSWithin(t *testing.T) {
	t.Parallel()
	g := path(t, 6)
	var visited []int
	g.BFSWithin(0, 2, func(node, depth int) bool {
		visited = append(visited, node)
		if depth > 2 {
			t.Fatalf("visited node %d at depth %d > 2", node, depth)
		}
		return true
	})
	if len(visited) != 3 { // nodes 0,1,2
		t.Fatalf("visited %v, want 3 nodes", visited)
	}
}

func TestBFSWithinEarlyStop(t *testing.T) {
	t.Parallel()
	g := path(t, 10)
	count := 0
	g.BFSWithin(0, 9, func(node, depth int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestConnectedComponents(t *testing.T) {
	t.Parallel()
	g := New(7)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 3, 4)
	// 5, 6 isolated
	comps := g.ConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Fatalf("largest component size %d, want 3", len(comps[0]))
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != 7 {
		t.Fatalf("components cover %d nodes, want 7", total)
	}
}

func TestGiantComponent(t *testing.T) {
	t.Parallel()
	g := New(5)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	gc := g.GiantComponent()
	if len(gc) != 3 {
		t.Fatalf("giant component size %d, want 3", len(gc))
	}
	if New(0).GiantComponent() != nil {
		t.Fatal("empty graph giant component should be nil")
	}
}

func TestIsConnected(t *testing.T) {
	t.Parallel()
	g := path(t, 4)
	if !g.IsConnected() {
		t.Fatal("path graph should be connected")
	}
	g.AddNode()
	if g.IsConnected() {
		t.Fatal("graph with isolated node should not be connected")
	}
}

func TestSamplePathStatsExact(t *testing.T) {
	t.Parallel()
	g := path(t, 4) // distances: 1+2+3 + 1+1+2 + ... mean over ordered pairs
	st := g.SamplePathStats(4, xrand.New(1))
	// All-pairs ordered distances: sum = 2*(1*3 + 2*2 + 3*1) = 20, pairs = 12.
	if st.Pairs != 12 {
		t.Fatalf("pairs = %d, want 12", st.Pairs)
	}
	if want := 20.0 / 12.0; st.MeanDistance != want {
		t.Fatalf("mean = %v, want %v", st.MeanDistance, want)
	}
	if st.MaxDistance != 3 {
		t.Fatalf("max = %d, want 3", st.MaxDistance)
	}
	if st.UnreachablePairs != 0 {
		t.Fatalf("unreachable = %d", st.UnreachablePairs)
	}
}

func TestSamplePathStatsUnreachable(t *testing.T) {
	t.Parallel()
	g := New(3)
	mustAdd(t, g, 0, 1)
	st := g.SamplePathStats(3, xrand.New(1))
	if st.UnreachablePairs != 4 { // (0,2),(1,2),(2,0),(2,1)
		t.Fatalf("unreachable = %d, want 4", st.UnreachablePairs)
	}
}

func TestEstimateDiameter(t *testing.T) {
	t.Parallel()
	g := path(t, 10)
	if d := g.EstimateDiameter(3, xrand.New(1)); d != 9 {
		t.Fatalf("diameter = %d, want 9", d)
	}
	if d := New(0).EstimateDiameter(3, xrand.New(1)); d != 0 {
		t.Fatalf("empty diameter = %d", d)
	}
}

func TestEccentricity(t *testing.T) {
	t.Parallel()
	g := path(t, 5)
	if e := g.Eccentricity(0); e != 4 {
		t.Fatalf("ecc(0) = %d, want 4", e)
	}
	if e := g.Eccentricity(2); e != 2 {
		t.Fatalf("ecc(2) = %d, want 2", e)
	}
}

func TestRandomNeighbor(t *testing.T) {
	t.Parallel()
	g := New(4)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 2)
	mustAdd(t, g, 0, 3)
	rng := xrand.New(1)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := g.RandomNeighbor(0, rng)
		if v < 1 || v > 3 {
			t.Fatalf("RandomNeighbor = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("saw only %d distinct neighbors in 200 draws", len(seen))
	}
	if g.RandomNeighbor(1, rng) != 0 {
		t.Fatal("RandomNeighbor of degree-1 node should be its only neighbor")
	}
	iso := New(1)
	if iso.RandomNeighbor(0, rng) != -1 {
		t.Fatal("RandomNeighbor of isolated node should be -1")
	}
}

func TestRandomNeighborExcluding(t *testing.T) {
	t.Parallel()
	g := New(3)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 2)
	rng := xrand.New(1)
	for i := 0; i < 100; i++ {
		if v := g.RandomNeighborExcluding(0, 1, rng); v != 2 {
			t.Fatalf("excluding 1 gave %d", v)
		}
	}
	// Degree-1 node excluding its only neighbor: dead end.
	if v := g.RandomNeighborExcluding(1, 0, rng); v != -1 {
		t.Fatalf("dead end gave %d, want -1", v)
	}
}

func TestDegreeHistogram(t *testing.T) {
	t.Parallel()
	g := New(4)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 0, 2)
	mustAdd(t, g, 0, 3)
	h := g.DegreeHistogram()
	// degrees: node0=3, others=1
	if h[1] != 3 || h[3] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestInducedSubgraph(t *testing.T) {
	t.Parallel()
	g := New(5)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 2, 3)
	mustAdd(t, g, 3, 4)
	sub, orig := g.InducedSubgraph([]int{1, 2, 3})
	if sub.N() != 3 {
		t.Fatalf("sub N = %d", sub.N())
	}
	if sub.M() != 2 {
		t.Fatalf("sub M = %d, want 2 (1-2 and 2-3)", sub.M())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("subgraph edges wrong")
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig mapping %v", orig)
	}
}

func TestInducedSubgraphSelfLoop(t *testing.T) {
	t.Parallel()
	g := New(3)
	mustAdd(t, g, 1, 1)
	mustAdd(t, g, 1, 2)
	sub, _ := g.InducedSubgraph([]int{1, 2})
	if sub.EdgeMultiplicity(0, 0) != 1 {
		t.Fatalf("self-loop multiplicity = %d, want 1", sub.EdgeMultiplicity(0, 0))
	}
	if sub.Degree(0) != 3 { // self-loop (2) + edge to node 2 (1)
		t.Fatalf("degree = %d, want 3", sub.Degree(0))
	}
	if sub.M() != 2 {
		t.Fatalf("M = %d, want 2", sub.M())
	}
}

// Property: for arbitrary edge insertions, total degree is always 2*M and
// the degree histogram sums to N.
func TestDegreeInvariantsProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, edgesRaw uint8) bool {
		rng := xrand.New(seed)
		n := rng.IntRange(1, 40)
		g := New(n)
		for i := 0; i < int(edgesRaw); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if g.AddEdge(u, v) != nil {
				return false
			}
		}
		if g.TotalDegree() != 2*g.M() {
			return false
		}
		sum := 0
		for _, c := range g.DegreeHistogram() {
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Simplify always yields a simple graph (no loops, multiplicity <= 1).
func TestSimplifyProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, edgesRaw uint8) bool {
		rng := xrand.New(seed)
		n := rng.IntRange(1, 30)
		g := New(n)
		for i := 0; i < int(edgesRaw); i++ {
			if g.AddEdge(rng.Intn(n), rng.Intn(n)) != nil {
				return false
			}
		}
		g.Simplify()
		for u := 0; u < n; u++ {
			if g.EdgeMultiplicity(u, u) != 0 {
				return false
			}
			for v := u + 1; v < n; v++ {
				if g.EdgeMultiplicity(u, v) > 1 {
					return false
				}
			}
		}
		return g.TotalDegree() == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle property along edges:
// |dist(u) - dist(v)| <= 1 for every edge {u,v} in the same component.
func TestBFSEdgeConsistencyProperty(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.IntRange(2, 50)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				if g.AddEdge(u, v) != nil {
					return false
				}
			}
		}
		dist := g.BFS(0)
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				du, dv := dist[u], dist[v]
				if (du < 0) != (dv < 0) {
					return false // one reachable, the other not, yet adjacent
				}
				if du >= 0 && dv >= 0 && du-dv > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddEdge(b *testing.B) {
	g := New(b.N + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.AddEdge(i, i+1)
	}
}

func BenchmarkBFS(b *testing.B) {
	rng := xrand.New(1)
	const n = 10000
	g := New(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(i, rng.Intn(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFS(i % n)
	}
}
