package graph

// Edge-list serialization. The format is the de-facto standard for network
// datasets: a header line "# nodes <N>" followed by one "u v" pair per
// line, whitespace-separated, '#' comments ignored. cmd/topogen emits this
// format and cmd/searchsim consumes it, so generated topologies can be
// inspected or fed to external tools.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in edge-list format. Each undirected edge is
// written once (smaller endpoint first); parallel edges are written per
// copy and self-loops as "u u".
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d\n", g.N()); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for key, c := range g.count {
		u := int64(int32(key >> 32))
		v := int64(int32(uint32(key)))
		for i := int32(0); i < c; i++ {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return fmt.Errorf("write edge: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses the edge-list format produced by WriteEdgeList. Lines
// starting with '#' are comments, except a "# nodes N" header which
// pre-sizes the graph; otherwise the node count is one more than the
// largest ID seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	g := New(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[1] == "nodes" {
				n, err := strconv.Atoi(fields[2])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("line %d: bad node count %q", lineNo, fields[2])
				}
				for g.N() < n {
					g.AddNode()
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad node %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad node %q", lineNo, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("line %d: negative node ID", lineNo)
		}
		for g.N() <= u || g.N() <= v {
			g.AddNode()
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan edge list: %w", err)
	}
	return g, nil
}

// WriteDOT writes g in Graphviz DOT format (`graph` block, one "u -- v"
// line per undirected edge, degree-scaled node sizes), for visual
// inspection with dot/neato/sfdp. Self-loops and parallel edges are
// emitted per copy, matching WriteEdgeList.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "overlay"
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=point];\n", name); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	// Scale node size with degree so hubs (or their cutoff-capped absence)
	// are visible at a glance.
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d == 0 {
			continue // skip isolates to keep renders readable
		}
		size := 0.05 + 0.01*float64(d)
		if _, err := fmt.Fprintf(bw, "  %d [width=%.2f];\n", v, size); err != nil {
			return fmt.Errorf("write node: %w", err)
		}
	}
	for key, c := range g.count {
		u := int64(int32(key >> 32))
		v := int64(int32(uint32(key)))
		for i := int32(0); i < c; i++ {
			if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", u, v); err != nil {
				return fmt.Errorf("write edge: %w", err)
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return fmt.Errorf("write footer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush dot: %w", err)
	}
	return nil
}
