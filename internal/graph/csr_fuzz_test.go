package graph

import "testing"

// FuzzCSRBuilderEquivalence feeds arbitrary byte-derived edge streams —
// self-loops and parallel edges arise constantly at these tiny node
// counts — to the CSRBuilder and to the mutable-Graph reference path,
// asserting byte-identical offsets/neighbors/sorted arrays for both the
// multigraph (Finalize vs Freeze) and simplified (FinalizeSimplified vs
// Simplify+FreezeSorted) contracts. `go test -fuzz FuzzCSRBuilder`
// explores further; the seed corpus runs in every ordinary test and race
// invocation.
func FuzzCSRBuilderEquivalence(f *testing.F) {
	f.Add([]byte{1, 0, 0}, uint8(1), uint8(1))
	f.Add([]byte{2, 0, 0, 0, 1, 1, 1, 1, 0}, uint8(2), uint8(2))
	f.Add([]byte{9, 3, 4, 3, 4, 3, 4, 5, 5, 5, 5, 8, 0}, uint8(3), uint8(4))
	f.Add([]byte{255, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(16), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, chunkCount, workers uint8) {
		if len(data) < 1 {
			return
		}
		// First byte picks the node count (1..64 keeps collisions frequent);
		// each following byte pair is one edge.
		n := int(data[0])%64 + 1
		pairs := data[1:]
		stream := make([][2]int32, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			stream = append(stream, [2]int32{int32(pairs[i]) % int32(n), int32(pairs[i+1]) % int32(n)})
		}
		chunks := int(chunkCount)%8 + 1
		w := int(workers)%5 + 1

		g := graphFromStream(t, n, stream)
		wantMulti := g.FreezeSorted(1)
		arena := NewCSRArena()
		gotMulti := builderFromStream(n, stream, chunks, arena).Finalize(w, true)
		expectIdentical(t, "fuzz multigraph", wantMulti, gotMulti)

		wantLoops, wantEdges := g.Simplify()
		wantSimple := g.FreezeSorted(1)
		gotSimple, loops, multi := builderFromStream(n, stream, chunks, arena).FinalizeSimplified(w)
		if loops != wantLoops || multi != wantEdges {
			t.Fatalf("deletions (%d,%d), want (%d,%d)", loops, multi, wantLoops, wantEdges)
		}
		expectIdentical(t, "fuzz simplified", wantSimple, gotSimple)
	})
}
