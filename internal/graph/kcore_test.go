package graph

import (
	"testing"

	"scalefree/internal/xrand"
)

func TestCoreNumbersClique(t *testing.T) {
	t.Parallel()
	// K4: everyone in the 3-core.
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			mustAdd(t, g, u, v)
		}
	}
	for u, c := range g.CoreNumbers() {
		if c != 3 {
			t.Fatalf("core(%d) = %d, want 3", u, c)
		}
	}
	if g.MaxCore() != 3 {
		t.Fatalf("MaxCore %d", g.MaxCore())
	}
}

func TestCoreNumbersPath(t *testing.T) {
	t.Parallel()
	// A path is 1-degenerate: every node in the 1-core, none in the 2-core.
	g := path(t, 6)
	for u, c := range g.CoreNumbers() {
		if c != 1 {
			t.Fatalf("core(%d) = %d, want 1", u, c)
		}
	}
	if got := g.KCore(2); len(got) != 0 {
		t.Fatalf("2-core of a path: %v", got)
	}
}

func TestCoreNumbersCliqueWithTail(t *testing.T) {
	t.Parallel()
	// Triangle (2-core) with a pendant chain: chain nodes are 1-core.
	g := New(5)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 0, 2)
	mustAdd(t, g, 2, 3)
	mustAdd(t, g, 3, 4)
	core := g.CoreNumbers()
	want := []int{2, 2, 2, 1, 1}
	for u := range want {
		if core[u] != want[u] {
			t.Fatalf("core %v, want %v", core, want)
		}
	}
	twoCore := g.KCore(2)
	if len(twoCore) != 3 || twoCore[0] != 0 || twoCore[2] != 2 {
		t.Fatalf("2-core %v", twoCore)
	}
}

func TestCoreNumbersEmptyAndIsolated(t *testing.T) {
	t.Parallel()
	if got := New(0).CoreNumbers(); len(got) != 0 {
		t.Fatalf("empty cores %v", got)
	}
	g := New(3)
	for _, c := range g.CoreNumbers() {
		if c != 0 {
			t.Fatalf("isolated core %d", c)
		}
	}
}

// Property: the k-core really is a subgraph where every member has >= k
// neighbors inside the set.
func TestKCoreProperty(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 20; seed++ {
		rng := xrand.New(seed)
		n := rng.IntRange(5, 60)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				mustAdd(t, g, u, v)
			}
		}
		core := g.CoreNumbers()
		maxCore := g.MaxCore()
		for k := 1; k <= maxCore; k++ {
			members := map[int]bool{}
			for _, u := range g.KCore(k) {
				members[u] = true
			}
			for u := range members {
				inside := 0
				for _, v := range g.Neighbors(u) {
					if members[int(v)] {
						inside++
					}
				}
				if inside < k {
					t.Fatalf("seed %d: node %d in %d-core has only %d internal neighbors (core=%d)",
						seed, u, k, inside, core[u])
				}
			}
		}
		// Core number never exceeds degree.
		for u := 0; u < n; u++ {
			if core[u] > g.Degree(u) {
				t.Fatalf("core(%d)=%d > degree %d", u, core[u], g.Degree(u))
			}
		}
	}
}

func TestPACoreStructure(t *testing.T) {
	t.Parallel()
	// PA with m stubs has an m-core containing almost everything (every
	// non-seed node joins with m links), and max core >= m.
	rng := xrand.New(3)
	g := New(2000)
	// Build a quick PA-like graph inline to avoid an import cycle with
	// gen: each node links to m=2 random predecessors.
	for u := 1; u < 2000; u++ {
		for j := 0; j < 2 && j < u; j++ {
			v := rng.Intn(u)
			if !g.HasEdge(u, v) {
				mustAdd(t, g, u, v)
			}
		}
	}
	if g.MaxCore() < 2 {
		t.Fatalf("max core %d, want >= 2", g.MaxCore())
	}
}

func BenchmarkCoreNumbers(b *testing.B) {
	rng := xrand.New(1)
	const n = 10000
	g := New(n)
	for u := 1; u < n; u++ {
		for j := 0; j < 3; j++ {
			v := rng.Intn(u)
			if !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CoreNumbers()
	}
}
