package graph

import (
	"bytes"
	"strings"
	"testing"

	"scalefree/internal/xrand"
)

func TestEdgeListRoundTrip(t *testing.T) {
	t.Parallel()
	g := New(5)
	mustAdd(t, g, 0, 1)
	mustAdd(t, g, 1, 2)
	mustAdd(t, g, 3, 3) // self-loop
	mustAdd(t, g, 3, 4)
	mustAdd(t, g, 3, 4) // parallel edge

	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip: N=%d M=%d, want N=%d M=%d", got.N(), got.M(), g.N(), g.M())
	}
	if got.EdgeMultiplicity(3, 4) != 2 {
		t.Fatalf("parallel edge lost: mult=%d", got.EdgeMultiplicity(3, 4))
	}
	if got.EdgeMultiplicity(3, 3) != 1 {
		t.Fatalf("self-loop lost: mult=%d", got.EdgeMultiplicity(3, 3))
	}
	if got.Degree(3) != g.Degree(3) {
		t.Fatalf("degree(3): got %d want %d", got.Degree(3), g.Degree(3))
	}
}

func TestEdgeListRoundTripRandomProperty(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 20; seed++ {
		rng := xrand.New(seed)
		n := rng.IntRange(1, 60)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			if err := g.AddEdge(rng.Intn(n), rng.Intn(n)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("seed %d: N/M mismatch", seed)
		}
		for u := 0; u < n; u++ {
			if got.Degree(u) != g.Degree(u) {
				t.Fatalf("seed %d: degree(%d) %d != %d", seed, u, got.Degree(u), g.Degree(u))
			}
			for v := u; v < n; v++ {
				if got.EdgeMultiplicity(u, v) != g.EdgeMultiplicity(u, v) {
					t.Fatalf("seed %d: mult(%d,%d) mismatch", seed, u, v)
				}
			}
		}
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	t.Parallel()
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestReadEdgeListHeaderIsolatedNodes(t *testing.T) {
	t.Parallel()
	g, err := ReadEdgeList(strings.NewReader("# nodes 10\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("N=%d, want 10 (header should pre-size)", g.N())
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	t.Parallel()
	in := "# a comment\n\n0 1\n# another\n1 2\n\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M=%d", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"three fields":  "0 1 2\n",
		"non-numeric":   "a b\n",
		"negative node": "-1 0\n",
		"bad header":    "# nodes x\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	t.Parallel()
	g := New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "tri"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "tri" {`, "--", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Node 3 is isolated and must be omitted; nodes 0-2 appear.
	if strings.Contains(out, "  3 [") {
		t.Error("isolated node should be skipped")
	}
	if edges := strings.Count(out, "--"); edges != 3 {
		t.Errorf("DOT has %d edges, want 3", edges)
	}
	// Default name fallback.
	buf.Reset()
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "overlay" {`) {
		t.Error("default graph name missing")
	}
}
