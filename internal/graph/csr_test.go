package graph

import (
	"reflect"
	"testing"
)

// splitMix64 is a tiny deterministic generator for test edge streams. The
// graph package cannot import xrand (dependency direction), and these
// tests only need reproducible chaos, not statistical quality.
type splitMix64 uint64

func (s *splitMix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// randomEdgeStream draws `edges` node pairs on n nodes with deliberately
// many collisions: small n relative to edge count yields self-loops and
// parallel edges, the cases simplification must handle.
func randomEdgeStream(seed uint64, n, edges int) [][2]int32 {
	rng := splitMix64(seed)
	out := make([][2]int32, edges)
	for i := range out {
		out[i] = [2]int32{int32(rng.next() % uint64(n)), int32(rng.next() % uint64(n))}
	}
	return out
}

// graphFromStream replays the stream through the mutable Graph.
func graphFromStream(t testing.TB, n int, stream [][2]int32) *Graph {
	t.Helper()
	g := New(n)
	for _, e := range stream {
		if err := g.AddEdge(int(e[0]), int(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// builderFromStream replays the stream into a CSRBuilder, split into
// `chunkCount` contiguous chunks (chunk order = stream order).
func builderFromStream(n int, stream [][2]int32, chunkCount int, arena *CSRArena) *CSRBuilder {
	if chunkCount < 1 {
		chunkCount = 1
	}
	b := NewCSRBuilder(n, chunkCount, arena)
	per := (len(stream) + chunkCount - 1) / chunkCount
	if per < 1 {
		per = 1
	}
	for i, e := range stream {
		b.Edge(i/per, e[0], e[1])
	}
	return b
}

// expectIdentical asserts two Frozens match byte for byte: offsets,
// insertion-order neighbors, sorted ranges, and edge count.
func expectIdentical(t *testing.T, label string, want, got *Frozen) {
	t.Helper()
	wo, wn, ws := frozenArrays(want)
	o, n, s := frozenArrays(got)
	if !reflect.DeepEqual(wo, o) {
		t.Fatalf("%s: offsets diverged", label)
	}
	if !reflect.DeepEqual(wn, n) {
		t.Fatalf("%s: neighbor order diverged", label)
	}
	if !reflect.DeepEqual(ws, s) {
		t.Fatalf("%s: sorted ranges diverged", label)
	}
	if want.M() != got.M() {
		t.Fatalf("%s: edges %d vs %d", label, want.M(), got.M())
	}
}

// TestCSRBuilderMatchesFreeze pins the multigraph contract: Finalize on a
// chunked stream is byte-identical to Graph.AddEdge in stream order plus
// FreezeSorted, for every chunking, worker count, and arena reuse state.
func TestCSRBuilderMatchesFreeze(t *testing.T) {
	t.Parallel()
	arena := NewCSRArena()
	for _, tc := range []struct{ n, edges int }{
		{1, 5}, {2, 0}, {7, 40}, {50, 400}, {300, 900}, {1000, 300},
	} {
		stream := randomEdgeStream(uint64(tc.n*31+tc.edges), tc.n, tc.edges)
		want := graphFromStream(t, tc.n, stream).FreezeSorted(1)
		for _, chunks := range []int{1, 3, 16} {
			for _, workers := range []int{1, 4} {
				got := builderFromStream(tc.n, stream, chunks, nil).Finalize(workers, true)
				expectIdentical(t, "fresh", want, got)
				got = builderFromStream(tc.n, stream, chunks, arena).Finalize(workers, true)
				expectIdentical(t, "arena", want, got)
			}
		}
		// Lazy variant must still answer membership identically.
		lazy := builderFromStream(tc.n, stream, 4, arena).Finalize(2, false)
		expectIdentical(t, "lazy", want, lazy)
	}
}

// TestCSRBuilderSimplifiedMatchesGraph pins the cleanup contract:
// FinalizeSimplified is byte-identical to Graph+Simplify+FreezeSorted on
// the same stream — surviving neighbor order included, which exercises
// Simplify's swap-with-last removal — and reports the same deletion
// counts.
func TestCSRBuilderSimplifiedMatchesGraph(t *testing.T) {
	t.Parallel()
	arena := NewCSRArena()
	for _, tc := range []struct{ n, edges int }{
		{1, 6}, {2, 9}, {5, 50}, {40, 500}, {256, 2048}, {2000, 1500},
	} {
		stream := randomEdgeStream(uint64(tc.n)*977+uint64(tc.edges), tc.n, tc.edges)
		g := graphFromStream(t, tc.n, stream)
		wantLoops, wantMulti := g.Simplify()
		want := g.FreezeSorted(1)
		for _, chunks := range []int{1, 5, 32} {
			for _, workers := range []int{1, 3} {
				got, loops, multi := builderFromStream(tc.n, stream, chunks, arena).FinalizeSimplified(workers)
				if loops != wantLoops || multi != wantMulti {
					t.Fatalf("n=%d: deletions (%d,%d), want (%d,%d)", tc.n, loops, multi, wantLoops, wantMulti)
				}
				expectIdentical(t, "simplified", want, got)
			}
		}
	}
}

// TestSegmentChunksEmptyStream pins the empty-stream clamp: an edgeless
// builder with many chunks must collapse to a single segment, not one
// segment (and one n-sized count array) per chunk.
func TestSegmentChunksEmptyStream(t *testing.T) {
	t.Parallel()
	if segs := segmentChunks(make([][]int32, 100), 4); len(segs) != 1 {
		t.Fatalf("empty stream split into %d segments, want 1", len(segs))
	}
	f := NewCSRBuilder(50, 100, nil).Finalize(4, true)
	if f.N() != 50 || f.M() != 0 || f.TotalDegree() != 0 {
		t.Fatalf("edgeless finalize wrong: N=%d M=%d D=%d", f.N(), f.M(), f.TotalDegree())
	}
}

// TestCSRArenaReuseIsInvisible pins the pooling contract: a long sequence
// of different-shaped builds through one arena yields the same snapshots
// as fresh allocation every time.
func TestCSRArenaReuseIsInvisible(t *testing.T) {
	t.Parallel()
	arena := NewCSRArena()
	for round := 0; round < 8; round++ {
		n := 10 + round*37
		stream := randomEdgeStream(uint64(round), n, 60+round*91)
		fresh, fl, fm := builderFromStream(n, stream, 4, nil).FinalizeSimplified(2)
		pooled, pl, pm := builderFromStream(n, stream, 4, arena).FinalizeSimplified(2)
		if fl != pl || fm != pm {
			t.Fatalf("round %d: deletion counts diverged under arena reuse", round)
		}
		expectIdentical(t, "arena-round", fresh, pooled)
	}
}

// TestFrozenTraverseMatchesGraph pins the CSR-side component/path
// machinery against the Graph originals on a multigraph with several
// components, self-loops, and parallel edges.
func TestFrozenTraverseMatchesGraph(t *testing.T) {
	t.Parallel()
	stream := randomEdgeStream(42, 120, 150) // sparse: leaves isolated nodes
	g := graphFromStream(t, 120, stream)
	f := g.Freeze()
	if !reflect.DeepEqual(g.ConnectedComponents(), f.ConnectedComponents()) {
		t.Fatal("ConnectedComponents diverged")
	}
	if !reflect.DeepEqual(g.GiantComponent(), f.GiantComponent()) {
		t.Fatal("GiantComponent diverged")
	}
	gr := splitMix64(7)
	fr := splitMix64(7)
	gs := g.SamplePathStats(20, fakeRand{&gr})
	fs := f.SamplePathStats(20, fakeRand{&fr})
	if gs != fs {
		t.Fatalf("SamplePathStats diverged: %+v vs %+v", gs, fs)
	}
}

// fakeRand adapts splitMix64 to the randSource interface.
type fakeRand struct{ s *splitMix64 }

func (r fakeRand) Intn(n int) int { return int(r.s.next() % uint64(n)) }

// TestInducedFrozenMatchesInducedSubgraph pins the byte-level equivalence
// of the CSR-native induced subgraph with InducedSubgraph+FreezeSorted,
// including self-loop placement and dropped out-of-set edges.
func TestInducedFrozenMatchesInducedSubgraph(t *testing.T) {
	t.Parallel()
	stream := randomEdgeStream(99, 80, 400) // dense: loops and multi-edges
	g := graphFromStream(t, 80, stream)
	f := g.Freeze()
	sets := [][]int{
		g.GiantComponent(),
		{0, 1, 2, 3, 4, 5, 6, 7},
		{79, 40, 3}, // order is caller-chosen, not ascending
		{},
	}
	for si, nodes := range sets {
		wantSub, wantOrig := g.InducedSubgraph(nodes)
		want := wantSub.FreezeSorted(1)
		got, orig := f.InducedFrozen(nodes)
		if !reflect.DeepEqual(wantOrig, orig) {
			t.Fatalf("set %d: orig mapping diverged", si)
		}
		expectIdentical(t, "induced", want, got)
	}
}
