package graph

// This file holds traversal and distance machinery: BFS, connected
// components, and the sampled path-length estimators used to reproduce the
// diameter-scaling claims of Table I.

import "sort"

// BFS computes hop distances from src to every node. Unreachable nodes get
// distance -1. The src node itself gets 0. Returns nil if src is invalid.
func (g *Graph) BFS(src int) []int32 {
	if g.check(src) != nil {
		return nil
	}
	dist := make([]int32, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	g.bfsInto(src, dist, nil)
	return dist
}

// bfsInto runs BFS from src writing into dist (which must be pre-filled
// with -1 at least for reachable nodes). queue may be nil or a reusable
// scratch buffer. It returns the scratch queue for reuse.
func (g *Graph) bfsInto(src int, dist []int32, queue []int32) []int32 {
	queue = queue[:0]
	queue = append(queue, int32(src))
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// BFSWithin visits all nodes within maxDepth hops of src (including src at
// depth 0), calling visit(node, depth) once per node in breadth-first
// order. It is the engine behind DAPA's substrate horizon query
// (Appendix D) and flooding-search hit counting. visit returning false
// stops the traversal early.
func (g *Graph) BFSWithin(src, maxDepth int, visit func(node, depth int) bool) {
	if g.check(src) != nil || maxDepth < 0 {
		return
	}
	dist := make(map[int32]int32, 64)
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	dist[int32(src)] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if !visit(int(u), int(du)) {
			return
		}
		if int(du) == maxDepth {
			continue
		}
		for _, v := range g.adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
}

// ConnectedComponents returns the node sets of each connected component,
// largest first; members of each component are in ascending node order, so
// the result is independent of adjacency order.
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.adj)
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		members := []int{}
		queue = queue[:0]
		queue = append(queue, int32(s))
		comp[s] = id
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			members = append(members, int(u))
			for _, v := range g.adj[u] {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	// Selection-sort style ordering is fine: component count is small in
	// practice, but sort properly for adversarial inputs.
	sortBySizeDesc(comps)
	return comps
}

func sortBySizeDesc(comps [][]int) {
	// Insertion sort by length descending; component lists are few.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && len(comps[j]) > len(comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
}

// GiantComponent returns the node set of the largest connected component,
// or nil for an empty graph.
func (g *Graph) GiantComponent() []int {
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return nil
	}
	return comps[0]
}

// IsConnected reports whether the graph has exactly one connected component
// containing every node. The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	if len(g.adj) == 0 {
		return true
	}
	return len(g.GiantComponent()) == len(g.adj)
}

// PathStats summarizes sampled shortest-path structure.
type PathStats struct {
	// MeanDistance is the average shortest-path length over sampled
	// reachable pairs.
	MeanDistance float64
	// MaxDistance is the largest distance observed in the sample
	// (a lower bound on the true diameter).
	MaxDistance int
	// Pairs is the number of reachable pairs sampled.
	Pairs int
	// UnreachablePairs counts sampled pairs with no connecting path.
	UnreachablePairs int
}

// SamplePathStats estimates mean shortest-path length and diameter by
// running BFS from `sources` random source nodes and aggregating distances
// to all reachable nodes. For sources >= N it is exact (all-pairs).
// Scale-free diameter claims (Table I) are verified with this estimator.
func (g *Graph) SamplePathStats(sources int, rng randSource) PathStats {
	n := len(g.adj)
	var st PathStats
	if n == 0 || sources <= 0 {
		return st
	}
	exact := sources >= n
	dist := make([]int32, n)
	var queue []int32
	var sumDist float64
	for s := 0; s < sources && s < n; s++ {
		src := s
		if !exact {
			src = rng.Intn(n)
		}
		for i := range dist {
			dist[i] = -1
		}
		queue = g.bfsInto(src, dist, queue)
		for v, d := range dist {
			if v == src {
				continue
			}
			if d < 0 {
				st.UnreachablePairs++
				continue
			}
			sumDist += float64(d)
			st.Pairs++
			if int(d) > st.MaxDistance {
				st.MaxDistance = int(d)
			}
		}
	}
	if st.Pairs > 0 {
		st.MeanDistance = sumDist / float64(st.Pairs)
	}
	return st
}

// Eccentricity returns the greatest BFS distance from src to any reachable
// node, or 0 if src is invalid or isolated.
func (g *Graph) Eccentricity(src int) int {
	dist := g.BFS(src)
	ecc := 0
	for _, d := range dist {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// EstimateDiameter lower-bounds the diameter with the standard double-sweep
// heuristic repeated `sweeps` times: BFS from a random node, then BFS again
// from the farthest node found. On small-world graphs this is near-exact.
func (g *Graph) EstimateDiameter(sweeps int, rng randSource) int {
	n := len(g.adj)
	if n == 0 || sweeps <= 0 {
		return 0
	}
	best := 0
	dist := make([]int32, n)
	var queue []int32
	for s := 0; s < sweeps; s++ {
		src := rng.Intn(n)
		for i := range dist {
			dist[i] = -1
		}
		queue = g.bfsInto(src, dist, queue)
		far, fd := src, int32(0)
		for v, d := range dist {
			if d > fd {
				far, fd = v, d
			}
		}
		for i := range dist {
			dist[i] = -1
		}
		queue = g.bfsInto(far, dist, queue)
		for _, d := range dist {
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}

// InducedSubgraph returns the subgraph on the given node set with nodes
// renumbered 0..len(nodes)-1 in the given order, plus the mapping from new
// IDs back to original IDs. Edges with an endpoint outside the set are
// dropped. Parallel edges and self-loops inside the set are preserved.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	idx := make(map[int32]int32, len(nodes))
	orig := make([]int, len(nodes))
	for i, u := range nodes {
		idx[int32(u)] = int32(i)
		orig[i] = u
	}
	sub := New(len(nodes))
	for i, u := range nodes {
		if g.check(u) != nil {
			continue
		}
		for _, v := range g.adj[u] {
			j, ok := idx[v]
			if !ok {
				continue
			}
			// Add each undirected edge once: when u is the smaller new ID,
			// or for self-loops only once per two adjacency entries.
			if int32(i) < j {
				sub.adj[i] = append(sub.adj[i], j)
				sub.adj[j] = append(sub.adj[j], int32(i))
				sub.count[edgeKey(int32(i), j)]++
				sub.edges++
			} else if int32(i) == j {
				// Self-loop entries come in pairs; count each pair once.
				sub.count[edgeKey(int32(i), j)]++
			}
		}
	}
	// Materialize self-loop adjacency and edge totals from counts.
	for key, c := range sub.count {
		u := int32(key >> 32)
		v := int32(uint32(key))
		if u == v {
			// Each self-loop was counted twice (two adjacency entries).
			c /= 2
			if c == 0 {
				delete(sub.count, key)
				continue
			}
			sub.count[key] = c
			for i := int32(0); i < 2*c; i++ {
				sub.adj[u] = append(sub.adj[u], u)
			}
			sub.edges += int(c)
		}
	}
	return sub, orig
}
