package graph

import (
	"reflect"
	"testing"
)

// frozenArrays extracts a Frozen's full state for bit-for-bit comparison,
// forcing the sorted ranges to exist.
func frozenArrays(f *Frozen) ([]int32, []int32, []int32) {
	f.ensureSorted()
	return f.offsets, f.neighbors, f.sorted
}

// buildTestMultigraph returns a graph with hubs, self-loops, parallel
// edges, and isolated nodes — every layout case freezing must preserve.
func buildTestMultigraph(t *testing.T) *Graph {
	t.Helper()
	g := New(600)
	add := func(u, v int) {
		t.Helper()
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < 550; v++ {
		add(0, v) // hub with a long adjacency range (exercises the sort path)
		add(v, (v*7)%550+1)
	}
	add(3, 3) // self-loop
	add(4, 5)
	add(4, 5) // parallel edge
	return g
}

// TestFreezeParEquivalence pins the parallel CSR fill: FreezePar yields
// the identical snapshot as the serial Freeze for every worker count,
// including degenerate ones.
func TestFreezeParEquivalence(t *testing.T) {
	t.Parallel()
	g := buildTestMultigraph(t)
	wo, wn, ws := frozenArrays(g.Freeze())
	// 32 and 100 exceed √600: regression for the ceil-division range split,
	// which used to hand trailing workers lo > n and panic.
	for _, workers := range []int{-1, 0, 1, 2, 4, 16, 32, 100, 1000} {
		f := g.FreezePar(workers)
		o, n, s := frozenArrays(f)
		if !reflect.DeepEqual(wo, o) || !reflect.DeepEqual(wn, n) || !reflect.DeepEqual(ws, s) {
			t.Fatalf("FreezePar(%d) diverged from Freeze()", workers)
		}
		if f.M() != g.M() {
			t.Fatalf("FreezePar(%d).M() = %d, want %d", workers, f.M(), g.M())
		}
	}
}

// TestFreezeSortedEquivalence pins the eager sorted build: FreezeSorted
// produces exactly the arrays the lazy path would have built, for both
// the serial counting transpose and the parallel per-range sort, and the
// snapshot answers membership queries without further initialization.
func TestFreezeSortedEquivalence(t *testing.T) {
	t.Parallel()
	g := buildTestMultigraph(t)
	wo, wn, ws := frozenArrays(g.Freeze())
	for _, workers := range []int{1, 2, 4, 16, 64} {
		f := g.FreezeSorted(workers)
		if f.sorted == nil {
			t.Fatalf("FreezeSorted(%d) left sorted ranges lazy", workers)
		}
		o, n, s := frozenArrays(f)
		if !reflect.DeepEqual(wo, o) || !reflect.DeepEqual(wn, n) || !reflect.DeepEqual(ws, s) {
			t.Fatalf("FreezeSorted(%d) diverged from the lazy build", workers)
		}
		if !f.HasEdge(4, 5) || f.HasEdge(4, 6) {
			t.Fatalf("FreezeSorted(%d) membership wrong", workers)
		}
		if f.EdgeMultiplicity(4, 5) != 2 || f.EdgeMultiplicity(3, 3) != 1 {
			t.Fatalf("FreezeSorted(%d) multiplicity wrong", workers)
		}
	}
}

// TestFrozenPrefetchInBounds checks the prefetch hook never faults on
// boundary rows (last node, isolated nodes, empty trailing ranges).
func TestFrozenPrefetchInBounds(t *testing.T) {
	t.Parallel()
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	f := g.Freeze()
	var sink int32
	for u := int32(0); u < 4; u++ {
		sink += f.Prefetch(u)
	}
	_ = sink
	// Fully empty graph: every offset is 0, neighbors is empty.
	e := New(3).Freeze()
	for u := int32(0); u < 3; u++ {
		sink += e.Prefetch(u)
	}
}
