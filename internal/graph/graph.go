// Package graph implements the undirected-graph engine underlying every
// topology generator and search algorithm in this repository.
//
// Design goals, in order:
//
//  1. Predictable performance at paper scale (N = 10^5 nodes, ~3·10^5 edges):
//     O(1) edge insertion and membership tests, O(1) random-neighbor
//     selection, O(V+E) traversals.
//  2. Multigraph tolerance: the configuration model (Appendix B of the
//     paper) wires random stub pairs first and deletes self-loops and
//     multi-edges afterwards, so the structure must represent them
//     faithfully until Simplify is called.
//  3. Deterministic iteration: neighbor order is insertion order, so a
//     fixed RNG seed reproduces identical graphs and search traces.
//
// Nodes are dense integer IDs 0..N-1. Adjacency is stored as per-node
// neighbor slices (int32 to halve memory at paper scale) plus a global
// edge-multiplicity map for O(1) HasEdge. Once a topology stops mutating,
// Freeze snapshots it into the CSR Frozen form (frozen.go) — the flat
// read path every search kernel and structural metric runs on.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNodeRange is returned when an operation references a node ID outside
// [0, N).
var ErrNodeRange = errors.New("graph: node out of range")

// Graph is an undirected graph (optionally a multigraph) over dense node IDs
// 0..N-1. The zero value is an empty graph with no nodes; use New to
// pre-allocate. Graph is not safe for concurrent mutation; concurrent reads
// are safe.
type Graph struct {
	adj   [][]int32
	count map[uint64]int32 // edge multiplicity; self-loop keyed (u,u)
	edges int              // number of edges counting multiplicity
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	return &Graph{
		adj:   make([][]int32, n),
		count: make(map[uint64]int32, 4*n),
	}
}

// edgeKey packs an unordered node pair into a map key.
func edgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges, counting multiplicity. A self-loop counts
// as one edge.
func (g *Graph) M() int { return g.edges }

// AddNode appends an isolated node and returns its ID.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// check validates node IDs.
func (g *Graph) check(nodes ...int) error {
	for _, u := range nodes {
		if u < 0 || u >= len(g.adj) {
			return fmt.Errorf("%w: %d (n=%d)", ErrNodeRange, u, len(g.adj))
		}
	}
	return nil
}

// AddEdge inserts an undirected edge {u,v}. Parallel edges and self-loops
// are permitted (the configuration model needs them); use HasEdge to guard
// when building simple graphs. A self-loop appears twice in u's adjacency
// list, following the degree convention deg(u) += 2.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.check(u, v); err != nil {
		return err
	}
	ui, vi := int32(u), int32(v)
	g.adj[u] = append(g.adj[u], vi)
	if u == v {
		g.adj[u] = append(g.adj[u], vi)
	} else {
		g.adj[v] = append(g.adj[v], ui)
	}
	g.count[edgeKey(ui, vi)]++
	g.edges++
	return nil
}

// RemoveEdge deletes one copy of edge {u,v} if present, reporting whether an
// edge was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if g.check(u, v) != nil {
		return false
	}
	key := edgeKey(int32(u), int32(v))
	if g.count[key] == 0 {
		return false
	}
	g.count[key]--
	if g.count[key] == 0 {
		delete(g.count, key)
	}
	g.edges--
	g.removeOneFromAdj(u, int32(v))
	if u == v {
		g.removeOneFromAdj(u, int32(v))
	} else {
		g.removeOneFromAdj(v, int32(u))
	}
	return true
}

// removeOneFromAdj removes a single occurrence of w from u's adjacency via
// swap-with-last (order of remaining neighbors is perturbed deterministically).
func (g *Graph) removeOneFromAdj(u int, w int32) {
	a := g.adj[u]
	for i, x := range a {
		if x == w {
			a[i] = a[len(a)-1]
			g.adj[u] = a[:len(a)-1]
			return
		}
	}
}

// HasEdge reports whether at least one edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if g.check(u, v) != nil {
		return false
	}
	return g.count[edgeKey(int32(u), int32(v))] > 0
}

// EdgeMultiplicity returns the number of parallel edges between u and v.
func (g *Graph) EdgeMultiplicity(u, v int) int {
	if g.check(u, v) != nil {
		return 0
	}
	return int(g.count[edgeKey(int32(u), int32(v))])
}

// Degree returns the degree of u; self-loops count twice. Out-of-range
// nodes have degree 0.
func (g *Graph) Degree(u int) int {
	if g.check(u) != nil {
		return 0
	}
	return len(g.adj[u])
}

// Neighbors returns u's adjacency list. The returned slice is the internal
// storage: callers must not mutate it and must not hold it across
// mutations. Self-loops appear twice; parallel edges appear per copy.
func (g *Graph) Neighbors(u int) []int32 {
	if g.check(u) != nil {
		return nil
	}
	return g.adj[u]
}

// NeighborAt returns the i-th neighbor of u (insertion order). It is the
// O(1) primitive behind random-neighbor hops in HAPA and random walks.
func (g *Graph) NeighborAt(u, i int) int {
	return int(g.adj[u][i])
}

// TotalDegree returns the sum of all node degrees (2·M for a simple graph).
func (g *Graph) TotalDegree() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// MinDegree returns the smallest degree over all nodes, or 0 for an empty
// graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	minDeg := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < minDeg {
			minDeg = len(a)
		}
	}
	return minDeg
}

// MaxDegree returns the largest degree over all nodes, or 0 for an empty
// graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for _, a := range g.adj {
		if len(a) > maxDeg {
			maxDeg = len(a)
		}
	}
	return maxDeg
}

// DegreeSequence returns every node's degree, indexed by node ID.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, len(g.adj))
	for u, a := range g.adj {
		seq[u] = len(a)
	}
	return seq
}

// DegreeHistogram returns counts[k] = number of nodes with degree k.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for _, a := range g.adj {
		h[len(a)]++
	}
	return h
}

// Simplify removes all self-loops and collapses parallel edges to single
// edges, returning how many of each were deleted. This is the cleanup step
// of the configuration model (Appendix B): "after this procedure we simply
// delete the multiple connections and self-loops".
//
// Keys are processed in sorted order so the post-cleanup adjacency order —
// and therefore every downstream order-sensitive traversal — is identical
// across runs (the package's determinism guarantee).
func (g *Graph) Simplify() (selfLoops, multiEdges int) {
	keys := make([]uint64, 0, len(g.count))
	for key := range g.count {
		keys = append(keys, key)
	}
	sortUint64s(keys)
	for _, key := range keys {
		c := g.count[key]
		u := int(int32(key >> 32))
		v := int(int32(uint32(key)))
		if u == v {
			for i := int32(0); i < c; i++ {
				selfLoops++
				g.RemoveEdge(u, v)
			}
			continue
		}
		for c > 1 {
			multiEdges++
			g.RemoveEdge(u, v)
			c--
		}
	}
	return selfLoops, multiEdges
}

// sortUint64s sorts a uint64 slice ascending.
func sortUint64s(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:   make([][]int32, len(g.adj)),
		count: make(map[uint64]int32, len(g.count)),
		edges: g.edges,
	}
	for u, a := range g.adj {
		c.adj[u] = append([]int32(nil), a...)
	}
	for k, v := range g.count {
		c.count[k] = v
	}
	return c
}

// randSource is the subset of xrand.RNG the graph package needs. Declared
// locally to keep the dependency direction substrate→graph acyclic and the
// package testable with fakes.
type randSource interface {
	Intn(n int) int
}

// RandomNeighbor returns a uniformly random neighbor of u, or -1 if u has
// none. Parallel edges weight their endpoint proportionally, matching a
// uniform choice over adjacency entries (the behavior random walks expect).
func (g *Graph) RandomNeighbor(u int, rng randSource) int {
	if g.check(u) != nil || len(g.adj[u]) == 0 {
		return -1
	}
	return int(g.adj[u][rng.Intn(len(g.adj[u]))])
}

// RandomNeighborExcluding returns a uniformly random neighbor of u other
// than excl, or -1 if none exists. Random-walk search uses this to avoid
// immediately bouncing back to the forwarding node (paper §V-A3).
func (g *Graph) RandomNeighborExcluding(u, excl int, rng randSource) int {
	if g.check(u) != nil {
		return -1
	}
	a := g.adj[u]
	n := 0
	for _, v := range a {
		if int(v) != excl {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	pick := rng.Intn(n)
	for _, v := range a {
		if int(v) != excl {
			if pick == 0 {
				return int(v)
			}
			pick--
		}
	}
	return -1 // unreachable
}
