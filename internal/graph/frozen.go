package graph

import (
	"slices"
	"sync"
)

// Frozen is a compressed-sparse-row (CSR) snapshot of a Graph: the whole
// adjacency structure flattened into two int32 arrays (offsets, neighbors)
// plus a per-node-sorted copy of the neighbor array for binary-search edge
// membership. It exists because every headline experiment in this
// repository is read-heavy on a topology that never mutates after
// generation: floods, NF sweeps, random walks, and clustering/betweenness
// metrics hammer Degree/Neighbors/HasEdge millions of times per
// realization, and the slice-of-slices Graph pays a pointer chase per node
// and a map probe per HasEdge.
//
// Layout and guarantees:
//
//   - neighbors[offsets[u]:offsets[u+1]] is node u's adjacency list in
//     EXACTLY the order Graph.Neighbors(u) reports it (insertion order).
//     Every traversal, every candidate scan, and every random-neighbor
//     draw therefore consumes RNG values and visits nodes in the same
//     sequence as the Graph it was frozen from — results are bit-for-bit
//     identical, which the equivalence tests pin.
//   - sorted[offsets[u]:offsets[u+1]] is the same multiset ascending, so
//     HasEdge/EdgeMultiplicity are a binary search over the
//     smaller-degree endpoint instead of a global map probe. Freeze builds
//     it lazily on first use (search kernels, walkers, and BFS never touch
//     it, so one-shot freezes don't pay for it); FreezeSorted builds it
//     eagerly, which the experiment engine uses to move the O(E)
//     construction into the pipelined build stage, off the sweep's
//     critical path.
//   - Self-loops appear twice per adjacency list and parallel edges once
//     per copy, exactly as in Graph (multigraphs freeze faithfully).
//
// Memory: 4 bytes per adjacency entry plus 4·(N+1) bytes of offsets
// (another 4 bytes per entry once a membership query materializes the
// sorted ranges) — a fraction of the Graph's slice headers plus
// edge-multiplicity map at paper scale, in a handful of allocations
// instead of O(N). Freezing each realization and dropping the *Graph
// lets the generator's map and per-node slices be collected before the
// search sweep.
//
// A Frozen is immutable and safe for concurrent readers. Accessors do not
// re-validate node IDs beyond the slice bounds check; callers validate at
// API boundaries like the search kernels do.
type Frozen struct {
	// offsets has N+1 entries; node u's adjacency lives at
	// [offsets[u], offsets[u+1]) in both neighbors and sorted.
	offsets []int32
	// neighbors is the concatenated adjacency in insertion order.
	neighbors []int32
	// sorted is the concatenated adjacency with each node's range
	// ascending, for binary-search membership tests. Built on first use
	// under sortedOnce (concurrent readers stay safe); nil until then.
	sorted     []int32
	sortedOnce sync.Once
	// edges is the edge count (counting multiplicity), as Graph.M.
	edges int
}

// Freeze snapshots g into CSR form. The Frozen shares nothing with g:
// mutating g afterwards does not invalidate it. Typical use is once per
// generated topology, after Simplify, before the read-only sweep. The
// sorted membership ranges stay lazy; see FreezeSorted for the eager
// variant the experiment engine's build stage uses.
func (g *Graph) Freeze() *Frozen { return g.FreezePar(1) }

// FreezePar is Freeze with the neighbor-array fill fanned out across up to
// `workers` goroutines (<=1 runs serially). The snapshot is identical for
// every worker count — each worker copies a disjoint node range of the
// already-fixed layout.
func (g *Graph) FreezePar(workers int) *Frozen {
	n := len(g.adj)
	f := &Frozen{
		offsets: make([]int32, n+1),
		edges:   g.edges,
	}
	total := 0
	for u, a := range g.adj {
		f.offsets[u] = int32(total)
		total += len(a)
	}
	f.offsets[n] = int32(total)
	f.neighbors = make([]int32, total)
	parallelNodeRanges(n, workers, func(lo, hi int) {
		for i, a := range g.adj[lo:hi] {
			copy(f.neighbors[f.offsets[lo+i]:], a)
		}
	})
	return f
}

// FreezeSorted is FreezePar plus an eager build of the sorted HasEdge
// ranges, for snapshots that will serve membership queries from many
// goroutines: the O(E) sorted-range construction runs here, on the build
// side, instead of inside the first HasEdge call of the sweep, so the
// sweep's hot path never takes (or contends on) the lazy-init slow path.
func (g *Graph) FreezeSorted(workers int) *Frozen {
	f := g.FreezePar(workers)
	f.MaterializeSorted(workers)
	return f
}

// MaterializeSorted builds the sorted HasEdge ranges now, on the calling
// goroutine (fanning per-node sorts across up to `workers` goroutines),
// instead of lazily inside the first membership query. The experiment
// engine calls it in the pipelined build stage for snapshots headed into
// a sweep, so the sweep's hot path never takes (or contends on) the
// lazy-init slow path; snapshots that already carry sorted ranges (CM's
// FinalizeSimplified output) make this a no-op. The resulting array is
// identical to the lazy build's for every worker count.
func (f *Frozen) MaterializeSorted(workers int) {
	f.sortedOnce.Do(func() {
		if workers > 1 {
			f.sorted = sortedParallel(f.offsets, f.neighbors, workers)
		} else {
			f.sorted = sortedFromAdjacency(f.offsets, f.neighbors)
		}
	})
}

// parallelNodeRanges splits [0, n) into up to `workers` contiguous ranges
// and runs fn on each concurrently (serially when workers <= 1). fn must
// write only range-disjoint state. Iterating by range start (not worker
// index) guarantees every spawned range is non-empty: with ceil division
// a per-worker loop would hand trailing workers lo > n once workers
// exceeds ~√n.
func parallelNodeRanges(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sortedParallel builds the same per-node ascending neighbor array as
// sortedFromAdjacency by sorting each node's range independently, which
// parallelizes over node ranges (the counting transpose writes to
// arbitrary target buckets and cannot). The sorted multiset of a range is
// unique, so both constructions yield the identical array.
func sortedParallel(offsets, neighbors []int32, workers int) []int32 {
	sorted := make([]int32, len(neighbors))
	fillSortedParallel(sorted, offsets, neighbors, workers)
	return sorted
}

// fillSortedParallel is sortedParallel writing into caller-provided
// storage, so the CSR builder can stage intermediate sorted ranges in
// arena scratch instead of fresh allocations.
func fillSortedParallel(sorted, offsets, neighbors []int32, workers int) {
	n := len(offsets) - 1
	copy(sorted, neighbors)
	parallelNodeRanges(n, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			a := sorted[offsets[u]:offsets[u+1]]
			if len(a) <= 24 {
				// Insertion sort: most adjacency ranges are mean-degree
				// short, where this beats slices.Sort's overhead.
				for i := 1; i < len(a); i++ {
					v := a[i]
					j := i - 1
					for j >= 0 && a[j] > v {
						a[j+1] = a[j]
						j--
					}
					a[j+1] = v
				}
				continue
			}
			slices.Sort(a) // hubs: degree can reach O(N) without a cutoff
		}
	})
}

// ensureSorted builds the sorted ranges once, on the first membership
// query. sync.Once makes concurrent first readers safe and later reads a
// single atomic load.
func (f *Frozen) ensureSorted() {
	f.sortedOnce.Do(func() {
		f.sorted = sortedFromAdjacency(f.offsets, f.neighbors)
	})
}

// sortedFromAdjacency builds the ascending per-node neighbor array by a
// counting transpose: walking sources in ascending order and appending
// each u to its neighbors' buckets yields every bucket pre-sorted, because
// undirected adjacency is symmetric (v ∈ adj[u] with multiplicity c iff
// u ∈ adj[v] with multiplicity c, self-loops contributing two entries on
// both sides). O(V+E), no comparison sort.
func sortedFromAdjacency(offsets, neighbors []int32) []int32 {
	sorted := make([]int32, len(neighbors))
	next := make([]int32, len(offsets)-1)
	fillSortedTranspose(sorted, next, offsets, neighbors)
	return sorted
}

// fillSortedTranspose is sortedFromAdjacency writing into caller-provided
// storage (sorted for the result, next as n-entry scratch).
func fillSortedTranspose(sorted, next, offsets, neighbors []int32) {
	n := len(next)
	copy(next, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range neighbors[offsets[u]:offsets[u+1]] {
			sorted[next[v]] = int32(u)
			next[v]++
		}
	}
}

// N returns the number of nodes.
func (f *Frozen) N() int { return len(f.offsets) - 1 }

// M returns the number of edges, counting multiplicity, as Graph.M.
func (f *Frozen) M() int { return f.edges }

// Degree returns the degree of u; self-loops count twice.
func (f *Frozen) Degree(u int) int { return int(f.offsets[u+1] - f.offsets[u]) }

// Neighbors returns u's adjacency list in the original insertion order.
// The returned slice aliases the frozen storage: callers must not mutate
// it.
func (f *Frozen) Neighbors(u int) []int32 { return f.neighbors[f.offsets[u]:f.offsets[u+1]] }

// SortedNeighbors returns u's adjacency list ascending (duplicates
// adjacent), the range HasEdge binary-searches. Callers must not mutate
// it.
func (f *Frozen) SortedNeighbors(u int) []int32 {
	f.ensureSorted()
	return f.sorted[f.offsets[u]:f.offsets[u+1]]
}

// NeighborAt returns the i-th neighbor of u (insertion order).
func (f *Frozen) NeighborAt(u, i int) int { return int(f.neighbors[int(f.offsets[u])+i]) }

// Prefetch touches u's offsets entry — the first link of the dependent
// load chain offsets[u] → neighbors[offsets[u]] — and returns it. It is
// the software-prefetch hook for BFS kernels: called for the frontier
// node a few dequeue iterations ahead, it starts u's row-metadata load
// resolving behind the current iteration's neighbor chase. Deliberately a
// single bounds-checked load, issued at a short distance: both a deeper
// touch (following into the neighbors array) and an enqueue-time touch (a
// whole frontier level early, evicted again before use on large
// frontiers) measured slower than no prefetch at all. Callers must
// accumulate the return value into state that outlives the loop so the
// compiler cannot elide the touch.
func (f *Frozen) Prefetch(u int32) int32 {
	return f.offsets[u]
}

// TotalDegree returns the sum of all node degrees.
func (f *Frozen) TotalDegree() int { return len(f.neighbors) }

// HasEdge reports whether at least one edge {u,v} exists, by binary search
// over the smaller-degree endpoint's sorted range. Out-of-range IDs report
// false, as Graph.HasEdge does.
func (f *Frozen) HasEdge(u, v int) bool {
	n := f.N()
	if u < 0 || v < 0 || u >= n || v >= n {
		return false
	}
	if f.Degree(u) > f.Degree(v) {
		u, v = v, u
	}
	return sortedContains(f.SortedNeighbors(u), int32(v))
}

// EdgeMultiplicity returns the number of parallel edges between u and v
// (self-loops counted once each, as Graph.EdgeMultiplicity).
func (f *Frozen) EdgeMultiplicity(u, v int) int {
	n := f.N()
	if u < 0 || v < 0 || u >= n || v >= n {
		return 0
	}
	if u != v && f.Degree(u) > f.Degree(v) {
		u, v = v, u
	}
	c := sortedCount(f.SortedNeighbors(u), int32(v))
	if u == v {
		// A self-loop contributes two adjacency entries.
		c /= 2
	}
	return c
}

// sortedContains reports whether x occurs in ascending slice a.
func sortedContains(a []int32, x int32) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// sortedCount returns the number of occurrences of x in ascending slice a.
func sortedCount(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c := 0
	for i := lo; i < len(a) && a[i] == x; i++ {
		c++
	}
	return c
}

// MinDegree returns the smallest degree over all nodes, or 0 for an empty
// graph.
func (f *Frozen) MinDegree() int {
	n := f.N()
	if n == 0 {
		return 0
	}
	minDeg := f.Degree(0)
	for u := 1; u < n; u++ {
		if d := f.Degree(u); d < minDeg {
			minDeg = d
		}
	}
	return minDeg
}

// MaxDegree returns the largest degree over all nodes, or 0 for an empty
// graph.
func (f *Frozen) MaxDegree() int {
	maxDeg := 0
	for u, n := 0, f.N(); u < n; u++ {
		if d := f.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// DegreeSequence returns every node's degree, indexed by node ID.
func (f *Frozen) DegreeSequence() []int {
	seq := make([]int, f.N())
	for u := range seq {
		seq[u] = f.Degree(u)
	}
	return seq
}

// DegreeHistogram returns counts[k] = number of nodes with degree k.
func (f *Frozen) DegreeHistogram() []int {
	h := make([]int, f.MaxDegree()+1)
	for u, n := 0, f.N(); u < n; u++ {
		h[f.Degree(u)]++
	}
	return h
}

// RandomNeighbor returns a uniformly random neighbor of u, or -1 if u has
// none. Draw sequence and outcome match Graph.RandomNeighbor exactly. u
// must be a valid node ID.
func (f *Frozen) RandomNeighbor(u int, rng randSource) int {
	a := f.Neighbors(u)
	if len(a) == 0 {
		return -1
	}
	return int(a[rng.Intn(len(a))])
}

// RandomNeighborExcluding returns a uniformly random neighbor of u other
// than excl, or -1 if none exists, with the same RNG draw sequence as
// Graph.RandomNeighborExcluding. u must be a valid node ID.
func (f *Frozen) RandomNeighborExcluding(u, excl int, rng randSource) int {
	a := f.Neighbors(u)
	n := 0
	for _, v := range a {
		if int(v) != excl {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	pick := rng.Intn(n)
	for _, v := range a {
		if int(v) != excl {
			if pick == 0 {
				return int(v)
			}
			pick--
		}
	}
	return -1 // unreachable
}

// BFS computes hop distances from src to every node, as Graph.BFS
// (unreachable: -1; invalid src: nil). Queue order matches Graph.BFS
// because neighbor order is preserved.
func (f *Frozen) BFS(src int) []int32 {
	n := f.N()
	if src < 0 || src >= n {
		return nil
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range f.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
