package graph

import (
	"math"
	"testing"

	"scalefree/internal/xrand"
)

func TestBetweennessPath(t *testing.T) {
	t.Parallel()
	// Path 0-1-2-3-4: bc(2) covers pairs {0,1}x{3,4} plus {0,3},{0,4}...
	// Exact values for a path of 5: bc(0)=0, bc(1)=3, bc(2)=4, symmetric.
	g := path(t, 5)
	bc := g.Betweenness(0, nil)
	want := []float64{0, 3, 4, 3, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Fatalf("bc = %v, want %v", bc, want)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	t.Parallel()
	// Star on n nodes: hub carries all C(n-1, 2) pairs; leaves carry 0.
	g := New(6)
	for v := 1; v < 6; v++ {
		mustAdd(t, g, 0, v)
	}
	bc := g.Betweenness(0, nil)
	if math.Abs(bc[0]-10) > 1e-9 { // C(5,2)
		t.Fatalf("hub bc %v, want 10", bc[0])
	}
	for v := 1; v < 6; v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf bc %v", bc)
		}
	}
}

func TestBetweennessCycleUniform(t *testing.T) {
	t.Parallel()
	// Symmetric graph: all nodes equal.
	g := New(6)
	for u := 0; u < 6; u++ {
		mustAdd(t, g, u, (u+1)%6)
	}
	bc := g.Betweenness(0, nil)
	for v := 1; v < 6; v++ {
		if math.Abs(bc[v]-bc[0]) > 1e-9 {
			t.Fatalf("cycle bc not uniform: %v", bc)
		}
	}
}

func TestBetweennessEmpty(t *testing.T) {
	t.Parallel()
	if bc := New(0).Betweenness(0, nil); len(bc) != 0 {
		t.Fatalf("empty bc %v", bc)
	}
	bc := New(3).Betweenness(0, nil)
	for _, v := range bc {
		if v != 0 {
			t.Fatalf("edgeless bc %v", bc)
		}
	}
}

func TestBetweennessSampledApproximatesExact(t *testing.T) {
	t.Parallel()
	// On a moderately sized random graph, the pivot estimator should
	// rank the top node correctly and approximate magnitudes.
	rng := xrand.New(5)
	const n = 300
	g := New(n)
	for u := 1; u < n; u++ {
		mustAdd(t, g, u, rng.Intn(u))
		if u > 2 {
			v := rng.Intn(u)
			if v != u && !g.HasEdge(u, v) {
				mustAdd(t, g, u, v)
			}
		}
	}
	exact := g.Betweenness(0, nil)
	approx := g.Betweenness(100, xrand.New(7))
	// Compare at the exact top-centrality node.
	top := 0
	for v := range exact {
		if exact[v] > exact[top] {
			top = v
		}
	}
	if exact[top] == 0 {
		t.Fatal("degenerate test graph")
	}
	ratio := approx[top] / exact[top]
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("sampled bc at hub off by %vx", ratio)
	}
}

// Property: betweenness of degree-1 nodes is always 0 (no shortest path
// passes through a leaf).
func TestBetweennessLeafZeroProperty(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 10; seed++ {
		rng := xrand.New(seed)
		n := rng.IntRange(5, 60)
		g := New(n)
		for u := 1; u < n; u++ {
			mustAdd(t, g, u, rng.Intn(u))
		}
		bc := g.Betweenness(0, nil)
		for v := 0; v < n; v++ {
			if g.Degree(v) == 1 && bc[v] != 0 {
				t.Fatalf("seed %d: leaf %d has bc %v", seed, v, bc[v])
			}
		}
	}
}

func BenchmarkBetweennessExact1k(b *testing.B) {
	rng := xrand.New(1)
	const n = 1000
	g := New(n)
	for u := 1; u < n; u++ {
		_ = g.AddEdge(u, rng.Intn(u))
		_ = g.AddEdge(u, rng.Intn(u))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Betweenness(0, nil)
	}
}
