package graph

import (
	"sync"
	"testing"

	"scalefree/internal/xrand"
)

// randomMultigraph builds a random graph that exercises every structural
// case Freeze must preserve: isolated nodes, self-loops, parallel edges,
// and arbitrary insertion order.
func randomMultigraph(rng *xrand.RNG) *Graph {
	n := rng.IntRange(1, 60)
	g := New(n)
	edges := rng.Intn(4 * n)
	for i := 0; i < edges; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if rng.Float64() < 0.05 {
			v = u // deliberate self-loop
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

// checkFrozenEquivalence asserts every read accessor of the Frozen agrees
// with the Graph it came from, bit for bit.
func checkFrozenEquivalence(t *testing.T, g *Graph, f *Frozen) {
	t.Helper()
	if f.N() != g.N() {
		t.Fatalf("N: frozen %d, graph %d", f.N(), g.N())
	}
	if f.M() != g.M() {
		t.Fatalf("M: frozen %d, graph %d", f.M(), g.M())
	}
	if f.TotalDegree() != g.TotalDegree() {
		t.Fatalf("TotalDegree: frozen %d, graph %d", f.TotalDegree(), g.TotalDegree())
	}
	if f.MinDegree() != g.MinDegree() || f.MaxDegree() != g.MaxDegree() {
		t.Fatalf("min/max degree diverge: frozen %d/%d, graph %d/%d",
			f.MinDegree(), f.MaxDegree(), g.MinDegree(), g.MaxDegree())
	}
	gSeq, fSeq := g.DegreeSequence(), f.DegreeSequence()
	for u := range gSeq {
		if gSeq[u] != fSeq[u] {
			t.Fatalf("degree sequence diverges at %d: frozen %d, graph %d", u, fSeq[u], gSeq[u])
		}
	}
	gHist, fHist := g.DegreeHistogram(), f.DegreeHistogram()
	if len(gHist) != len(fHist) {
		t.Fatalf("histogram lengths diverge: frozen %d, graph %d", len(fHist), len(gHist))
	}
	for k := range gHist {
		if gHist[k] != fHist[k] {
			t.Fatalf("histogram diverges at k=%d", k)
		}
	}
	for u := 0; u < g.N(); u++ {
		if f.Degree(u) != g.Degree(u) {
			t.Fatalf("degree of %d: frozen %d, graph %d", u, f.Degree(u), g.Degree(u))
		}
		ga, fa := g.Neighbors(u), f.Neighbors(u)
		if len(ga) != len(fa) {
			t.Fatalf("neighbor count of %d diverges", u)
		}
		for i := range ga {
			// Insertion order must be preserved exactly: it is what makes
			// frozen search traces bit-identical.
			if ga[i] != fa[i] {
				t.Fatalf("neighbor order of %d diverges at %d: frozen %d, graph %d", u, i, fa[i], ga[i])
			}
			if f.NeighborAt(u, i) != g.NeighborAt(u, i) {
				t.Fatalf("NeighborAt(%d,%d) diverges", u, i)
			}
		}
		sa := f.SortedNeighbors(u)
		if len(sa) != len(ga) {
			t.Fatalf("sorted neighbor count of %d diverges", u)
		}
		for i := 1; i < len(sa); i++ {
			if sa[i-1] > sa[i] {
				t.Fatalf("SortedNeighbors(%d) not ascending at %d", u, i)
			}
		}
	}
	// Edge membership and multiplicity over every pair (n is small).
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if f.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d): frozen %v, graph %v", u, v, f.HasEdge(u, v), g.HasEdge(u, v))
			}
			if f.EdgeMultiplicity(u, v) != g.EdgeMultiplicity(u, v) {
				t.Fatalf("EdgeMultiplicity(%d,%d): frozen %d, graph %d",
					u, v, f.EdgeMultiplicity(u, v), g.EdgeMultiplicity(u, v))
			}
		}
	}
}

// TestFrozenMatchesGraphProperty is the core equivalence property: across
// many random multigraphs, every Frozen accessor agrees with the Graph.
func TestFrozenMatchesGraphProperty(t *testing.T) {
	t.Parallel()
	rng := xrand.New(1)
	for trial := 0; trial < 200; trial++ {
		g := randomMultigraph(rng)
		checkFrozenEquivalence(t, g, g.Freeze())
	}
}

// TestFrozenRandomNeighborDrawEquivalence pins the RNG contract: the
// frozen random-neighbor picks consume the same draws and return the same
// nodes as the Graph versions, across random graphs and many draws.
func TestFrozenRandomNeighborDrawEquivalence(t *testing.T) {
	t.Parallel()
	rng := xrand.New(2)
	for trial := 0; trial < 100; trial++ {
		g := randomMultigraph(rng)
		f := g.Freeze()
		seed := rng.Uint64()
		ra, rb := xrand.New(seed), xrand.New(seed)
		for i := 0; i < 200; i++ {
			u := rng.Intn(g.N())
			excl := rng.Intn(g.N()+1) - 1 // sometimes -1 (no exclusion)
			if i%2 == 0 {
				if got, want := f.RandomNeighbor(u, rb), g.RandomNeighbor(u, ra); got != want {
					t.Fatalf("RandomNeighbor(%d): frozen %d, graph %d", u, got, want)
				}
			} else {
				got := f.RandomNeighborExcluding(u, excl, rb)
				want := g.RandomNeighborExcluding(u, excl, ra)
				if got != want {
					t.Fatalf("RandomNeighborExcluding(%d,%d): frozen %d, graph %d", u, excl, got, want)
				}
			}
		}
	}
}

// TestFrozenBFSMatchesGraph pins distance equivalence, including
// unreachable nodes and invalid sources.
func TestFrozenBFSMatchesGraph(t *testing.T) {
	t.Parallel()
	rng := xrand.New(3)
	for trial := 0; trial < 50; trial++ {
		g := randomMultigraph(rng)
		f := g.Freeze()
		src := rng.Intn(g.N())
		gd, fd := g.BFS(src), f.BFS(src)
		for v := range gd {
			if gd[v] != fd[v] {
				t.Fatalf("BFS(%d) diverges at %d: frozen %d, graph %d", src, v, fd[v], gd[v])
			}
		}
	}
	g := New(3)
	if f := g.Freeze(); f.BFS(-1) != nil || f.BFS(3) != nil {
		t.Fatal("BFS with invalid source should return nil")
	}
}

// TestFrozenImmutableAfterGraphMutation pins the snapshot contract: the
// Frozen shares no storage with the Graph, so later mutations do not leak
// into it.
func TestFrozenImmutableAfterGraphMutation(t *testing.T) {
	t.Parallel()
	g := New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	f := g.Freeze()
	if err := g.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	g.RemoveEdge(1, 2)
	if f.M() != 3 || f.Degree(0) != 1 || !f.HasEdge(1, 2) || f.HasEdge(0, 3) {
		t.Fatal("frozen snapshot changed after graph mutation")
	}
}

// TestFrozenEmptyAndIsolated covers degenerate shapes.
func TestFrozenEmptyAndIsolated(t *testing.T) {
	t.Parallel()
	f := New(0).Freeze()
	if f.N() != 0 || f.M() != 0 || f.TotalDegree() != 0 || f.MinDegree() != 0 || f.MaxDegree() != 0 {
		t.Fatal("empty frozen graph misreports")
	}
	f = New(5).Freeze()
	if f.N() != 5 || f.Degree(2) != 0 || f.HasEdge(0, 1) || f.RandomNeighbor(3, xrand.New(1)) != -1 {
		t.Fatal("isolated frozen nodes misreport")
	}
	if f.RandomNeighborExcluding(3, -1, xrand.New(1)) != -1 {
		t.Fatal("RandomNeighborExcluding on isolated node should be -1")
	}
	if f.HasEdge(-1, 0) || f.HasEdge(0, 99) || f.EdgeMultiplicity(-1, 0) != 0 {
		t.Fatal("out-of-range HasEdge/EdgeMultiplicity should be false/0")
	}
}

// TestFrozenBetweennessAndCoresMatchGraph pins that the Graph delegates
// and the Frozen implementations agree (they share code, but the freeze
// path itself must not perturb anything).
func TestFrozenBetweennessAndCoresMatchGraph(t *testing.T) {
	t.Parallel()
	rng := xrand.New(4)
	for trial := 0; trial < 20; trial++ {
		g := randomMultigraph(rng)
		f := g.Freeze()
		gb := g.Betweenness(0, nil)
		fb := f.Betweenness(0, nil)
		for v := range gb {
			if gb[v] != fb[v] {
				t.Fatalf("betweenness diverges at %d", v)
			}
		}
		gc, fc := g.CoreNumbers(), f.CoreNumbers()
		for v := range gc {
			if gc[v] != fc[v] {
				t.Fatalf("core numbers diverge at %d", v)
			}
		}
	}
}

// FuzzFrozenEquivalence drives Freeze with fuzzer-chosen edge scripts: the
// bytes encode AddEdge/RemoveEdge operations, and the resulting Frozen
// must agree with the Graph on every accessor.
func FuzzFrozenEquivalence(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x13, 0x24, 0x11})
	f.Add([]byte{0xff, 0x00, 0x00, 0x80, 0x42, 0x42})
	f.Fuzz(func(t *testing.T, script []byte) {
		const n = 16
		g := New(n)
		for i := 0; i+1 < len(script); i += 2 {
			u := int(script[i]) % n
			v := int(script[i+1]) % n
			if script[i]&0x80 != 0 {
				g.RemoveEdge(u, v)
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		fz := g.Freeze()
		if fz.N() != g.N() || fz.M() != g.M() || fz.TotalDegree() != g.TotalDegree() {
			t.Fatalf("size accessors diverge: N %d/%d M %d/%d total %d/%d",
				fz.N(), g.N(), fz.M(), g.M(), fz.TotalDegree(), g.TotalDegree())
		}
		for u := 0; u < n; u++ {
			ga, fa := g.Neighbors(u), fz.Neighbors(u)
			if len(ga) != len(fa) {
				t.Fatalf("neighbor count of %d diverges", u)
			}
			for i := range ga {
				if ga[i] != fa[i] {
					t.Fatalf("neighbor order of %d diverges", u)
				}
			}
			for v := 0; v < n; v++ {
				if fz.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Fatalf("HasEdge(%d,%d) diverges", u, v)
				}
				if fz.EdgeMultiplicity(u, v) != g.EdgeMultiplicity(u, v) {
					t.Fatalf("EdgeMultiplicity(%d,%d) diverges", u, v)
				}
			}
		}
	})
}

// --- Benchmarks --------------------------------------------------------

// benchGraph is a PA-like random graph at a size where cache effects show.
func benchGraph(b *testing.B) *Graph {
	b.Helper()
	rng := xrand.New(7)
	const n = 200000
	g := New(n)
	for u := 1; u < n; u++ {
		// Two edges per node to earlier nodes: power-law-ish, connected.
		for k := 0; k < 2; k++ {
			if err := g.AddEdge(u, rng.Intn(u)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g
}

// BenchmarkHasEdgeMap measures the historical read path: the global
// edge-multiplicity map probe.
func BenchmarkHasEdgeMap(b *testing.B) {
	g := benchGraph(b)
	rng := xrand.New(8)
	n := g.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(rng.Intn(n), rng.Intn(n))
	}
}

// BenchmarkHasEdgeCSR measures the frozen read path: binary search over
// the smaller endpoint's sorted CSR range.
func BenchmarkHasEdgeCSR(b *testing.B) {
	f := benchGraph(b).Freeze()
	rng := xrand.New(8)
	n := f.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.HasEdge(rng.Intn(n), rng.Intn(n))
	}
}

// BenchmarkFreeze tracks the one-time snapshot cost itself.
func BenchmarkFreeze(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := g.Freeze(); f.N() != g.N() {
			b.Fatal("bad freeze")
		}
	}
}

// TestFrozenConcurrentMembership hammers the lazily-built sorted ranges
// from many goroutines at once: the sync.Once materialization must be
// safe for concurrent first readers (run under -race in CI).
func TestFrozenConcurrentMembership(t *testing.T) {
	t.Parallel()
	g := randomMultigraph(xrand.New(9))
	f := g.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := xrand.New(uint64(w))
			for i := 0; i < 500; i++ {
				u, v := rng.Intn(f.N()), rng.Intn(f.N())
				if f.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Errorf("concurrent HasEdge(%d,%d) diverges", u, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}
