package graph

import (
	"sort"
	"testing"

	"scalefree/internal/xrand"
)

// randomConnectedGraph grows a connected scale-free-ish test graph the same
// way the betweenness tests do: each new node attaches to a random earlier
// node plus occasionally a second.
func randomConnectedGraph(t *testing.T, n int, seed uint64) *Graph {
	t.Helper()
	rng := xrand.New(seed)
	g := New(n)
	for u := 1; u < n; u++ {
		mustAdd(t, g, u, rng.Intn(u))
		if u > 2 {
			v := rng.Intn(u)
			if v != u && !g.HasEdge(u, v) {
				mustAdd(t, g, u, v)
			}
		}
	}
	return g
}

// TestBetweennessSampledMatchesBetweenness pins that the SE-reporting
// variant consumes the identical pivot draws and reproduces Betweenness
// bit for bit, in both sampled and exact modes.
func TestBetweennessSampledMatchesBetweenness(t *testing.T) {
	t.Parallel()
	f := randomConnectedGraph(t, 200, 11).Freeze()
	want := f.Betweenness(40, xrand.New(9))
	got, se := f.BetweennessSampled(40, xrand.New(9))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d: sampled-with-SE bc %v != Betweenness %v", i, got[i], want[i])
		}
	}
	anySE := false
	for _, s := range se {
		if s < 0 {
			t.Fatal("negative standard error")
		}
		if s > 0 {
			anySE = true
		}
	}
	if !anySE {
		t.Fatal("sampled run reported zero uncertainty everywhere")
	}
	exactWant := f.Betweenness(0, nil)
	exactGot, exactSE := f.BetweennessSampled(0, nil)
	for i := range exactWant {
		if exactGot[i] != exactWant[i] {
			t.Fatalf("node %d: exact bc mismatch", i)
		}
		if exactSE[i] != 0 {
			t.Fatalf("node %d: exact run reported nonzero SE %v", i, exactSE[i])
		}
	}
}

// TestBetweennessSampledSECoversError checks the SE is a usable error bar
// where it matters: for the highest-centrality nodes — the ones the attack
// strategy actually removes — the sampled estimate should sit within a few
// standard errors of the exact value. (For near-zero-centrality nodes the
// empirical variance is built from rare nonzero contributions and is known
// to under-cover; the attack never consults those nodes.)
func TestBetweennessSampledSECoversError(t *testing.T) {
	t.Parallel()
	f := randomConnectedGraph(t, 400, 5).Freeze()
	exact := f.Betweenness(0, nil)
	bc, se := f.BetweennessSampled(128, xrand.New(7))
	ids := make([]int, len(exact))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return exact[ids[a]] > exact[ids[b]] })
	covered := 0
	const top = 50
	for _, i := range ids[:top] {
		if diff := bc[i] - exact[i]; diff <= 4*se[i] && -diff <= 4*se[i] {
			covered++
		}
	}
	if frac := float64(covered) / top; frac < 0.85 {
		t.Fatalf("only %.0f%% of the top-%d nodes within 4·SE of exact", frac*100, top)
	}
}

// TestLandmarkPathStatsBracketsExact re-derives the sampled pairs with a
// twin RNG and checks the per-pair triangle-inequality bracket against an
// exact BFS distance, plus the resulting mean bracket.
func TestLandmarkPathStatsBracketsExact(t *testing.T) {
	t.Parallel()
	f := randomConnectedGraph(t, 500, 21).Freeze()
	n := f.N()
	const landmarks, pairs = 8, 300
	st := f.LandmarkPathStats(landmarks, pairs, xrand.New(3))
	if st.Landmarks != landmarks {
		t.Fatalf("Landmarks = %d, want %d", st.Landmarks, landmarks)
	}
	if st.UnreachablePairs != 0 {
		t.Fatalf("connected graph reported %d unreachable pairs", st.UnreachablePairs)
	}

	// Twin RNG replays the identical pair draws (2 Intn per pair).
	twin := xrand.New(3)
	dist := make([]int32, n)
	var queue []int32
	var sumExact float64
	counted := 0
	for i := 0; i < pairs; i++ {
		u := twin.Intn(n)
		v := twin.Intn(n)
		if u == v {
			continue
		}
		for j := range dist {
			dist[j] = -1
		}
		queue = f.bfsInto(u, dist, queue)
		if dist[v] < 0 {
			t.Fatalf("pair (%d,%d) unreachable in connected graph", u, v)
		}
		sumExact += float64(dist[v])
		counted++
	}
	if counted != st.Pairs {
		t.Fatalf("pair accounting: twin counted %d, estimator %d", counted, st.Pairs)
	}
	exactMean := sumExact / float64(counted)
	if st.MeanLowerBound > exactMean || st.MeanDistance < exactMean {
		t.Fatalf("exact mean %v outside landmark bracket [%v, %v]",
			exactMean, st.MeanLowerBound, st.MeanDistance)
	}
	// Hub routing should be tight on this hub-heavy topology, not a
	// vacuous bound.
	if st.MeanDistance > exactMean*1.35 {
		t.Fatalf("landmark estimate %v too loose vs exact %v", st.MeanDistance, exactMean)
	}
}

// TestLandmarkPathStatsStarExact: on a star every leaf-leaf distance is 2
// and the hub landmark prices it exactly.
func TestLandmarkPathStatsStarExact(t *testing.T) {
	t.Parallel()
	const n = 64
	g := New(n)
	for v := 1; v < n; v++ {
		mustAdd(t, g, 0, v)
	}
	st := g.Freeze().LandmarkPathStats(1, 200, xrand.New(1))
	if st.Pairs == 0 {
		t.Fatal("no pairs sampled")
	}
	// Every sampled pair with the hub as endpoint has distance 1; the
	// rest 2. The single hub landmark prices both exactly.
	twin := xrand.New(1)
	var sum float64
	for i := 0; i < 200; i++ {
		u := twin.Intn(n)
		v := twin.Intn(n)
		if u == v {
			continue
		}
		if u == 0 || v == 0 {
			sum += 1
		} else {
			sum += 2
		}
	}
	want := sum / float64(st.Pairs)
	if st.MeanDistance != want {
		t.Fatalf("star mean estimate %v != exact %v", st.MeanDistance, want)
	}
}

// TestLandmarkPathStatsDeterministic: identical inputs give identical
// stats (landmark choice is RNG-free; pair draws come from the caller's
// stream).
func TestLandmarkPathStatsDeterministic(t *testing.T) {
	t.Parallel()
	f := randomConnectedGraph(t, 300, 33).Freeze()
	a := f.LandmarkPathStats(6, 500, xrand.New(4))
	b := f.LandmarkPathStats(6, 500, xrand.New(4))
	if a != b {
		t.Fatalf("landmark stats not deterministic: %+v != %+v", a, b)
	}
}

func BenchmarkLandmarkPathStats(b *testing.B) {
	rng := xrand.New(5)
	const n = 10000
	g := New(n)
	for u := 1; u < n; u++ {
		g.AddEdge(u, rng.Intn(u))
		if u > 2 {
			v := rng.Intn(u)
			if v != u && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
	f := g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.LandmarkPathStats(16, 2000, xrand.New(uint64(i)))
	}
}

func BenchmarkBetweennessSampledSE1k(b *testing.B) {
	rng := xrand.New(5)
	const n = 1000
	g := New(n)
	for u := 1; u < n; u++ {
		g.AddEdge(u, rng.Intn(u))
	}
	f := g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = f.BetweennessSampled(64, xrand.New(uint64(i)))
	}
}
