package graph

import "sort"

// Landmark-based path-length estimation. Exact mean-distance measurement
// (SamplePathStats) pays one full BFS per sampled source; at N=10⁶ the
// table1 spec cannot afford that per realization. The landmark estimator
// runs L BFS passes from the highest-degree hubs and prices every sampled
// pair (u,v) by triangle inequality through the landmark set:
//
//	max_l |d(l,u)-d(l,v)|  <=  d(u,v)  <=  min_l d(l,u)+d(l,v)
//
// In the paper's ultrasmall/small-world regimes nearly all shortest paths
// route through the top hubs, which is exactly what makes the upper bound
// tight — it IS the length of the best hub-routed path, and a pair whose
// shortest path touches a landmark is priced exactly. The estimator
// reports the hub-routed mean as its estimate plus the lower-bound mean,
// bracketing the true mean; the agreement gate against SamplePathStats at
// paper scale lives in internal/sim's estimator suite.

// LandmarkStats summarizes a landmark estimation pass.
type LandmarkStats struct {
	// MeanDistance is the hub-routing estimate of the mean shortest-path
	// distance: the mean over sampled pairs of the best upper bound
	// min_l d(l,u)+d(l,v). It is exact for pairs whose shortest path
	// passes through any landmark, and an overestimate otherwise — the
	// true sampled mean lies in [MeanLowerBound, MeanDistance].
	MeanDistance float64
	// MeanLowerBound is the mean over the same pairs of the triangle-
	// inequality floor max_l |d(l,u)-d(l,v)|.
	MeanLowerBound float64
	// Pairs counts the sampled pairs that entered the means.
	Pairs int
	// UnreachablePairs counts sampled pairs where no landmark reaches
	// both endpoints (endpoints outside the landmarks' component); they
	// are excluded from the means, mirroring SamplePathStats' treatment
	// of unreachable targets.
	UnreachablePairs int
	// Landmarks is the number of landmark BFS passes actually run.
	Landmarks int
}

// LandmarkPathStats estimates shortest-path statistics from `landmarks`
// BFS passes and `pairs` sampled node pairs. Landmarks are the
// highest-degree nodes (ties broken toward lower IDs) — a deterministic,
// RNG-free choice, so two runs with equal rng state and parameters are
// identical for any scheduling. RNG consumption is exactly 2·pairs Intn
// draws (self-pairs are skipped without replacement, as in delivery
// sampling). Cost: O(L·(V+E) + L·pairs) time and L·V int32 of distance
// memory.
func (f *Frozen) LandmarkPathStats(landmarks, pairs int, rng randSource) LandmarkStats {
	n := f.N()
	var st LandmarkStats
	if n == 0 || landmarks <= 0 || pairs <= 0 {
		return st
	}
	if landmarks > n {
		landmarks = n
	}
	st.Landmarks = landmarks

	// Top-degree landmark selection, ties toward lower IDs.
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := f.Degree(int(ids[a])), f.Degree(int(ids[b]))
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})

	dist := make([]int32, landmarks*n)
	queue := make([]int32, 0, n)
	for l := 0; l < landmarks; l++ {
		row := dist[l*n : (l+1)*n]
		for i := range row {
			row[i] = -1
		}
		queue = f.bfsInto(int(ids[l]), row, queue)
	}

	var sumUpper, sumLower int64
	for i := 0; i < pairs; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		upper, lower := int32(-1), int32(0)
		for l := 0; l < landmarks; l++ {
			du, dv := dist[l*n+u], dist[l*n+v]
			if du < 0 || dv < 0 {
				continue
			}
			if s := du + dv; upper < 0 || s < upper {
				upper = s
			}
			if d := du - dv; d >= 0 {
				if d > lower {
					lower = d
				}
			} else if -d > lower {
				lower = -d
			}
		}
		if upper < 0 {
			st.UnreachablePairs++
			continue
		}
		st.Pairs++
		sumUpper += int64(upper)
		sumLower += int64(lower)
	}
	if st.Pairs > 0 {
		st.MeanDistance = float64(sumUpper) / float64(st.Pairs)
		st.MeanLowerBound = float64(sumLower) / float64(st.Pairs)
	}
	return st
}
