package graph

// Direct-to-CSR construction: CSRBuilder accepts an edge stream into
// per-chunk append-only buffers and finalizes a *Frozen via a parallel
// two-pass count/scatter, skipping the mutable Graph entirely.
//
// The mutable Graph pays three costs per inserted edge that a read-only
// topology never recoups: per-node []int32 append churn (each adjacency
// list regrows O(log deg) times), a map[uint64]int32 multiplicity probe,
// and the final Freeze copy of everything into CSR form. Generators that
// never query the graph mid-build — CM wires precomputed stub pairs, GRN
// connects precomputed points — only need the CSR end state, so they emit
// raw (u,v) pairs here instead. Growth models (PA, HAPA, NLPA, DAPA,
// rewiring) genuinely need mid-build HasEdge/Degree and stay on Graph.
//
// Determinism contract (pinned by the equivalence and fuzz tests): the
// chunk index order IS the emission order. Finalizing chunks c0, c1, ...
// yields a Frozen byte-identical to calling Graph.AddEdge for every pair
// of c0 in order, then every pair of c1, ..., followed by Freeze — for
// every worker count. FinalizeSimplified additionally replays
// Graph.Simplify's deletion pass (ascending edge keys, swap-with-last
// adjacency removal) on the CSR arrays, so its output is byte-identical
// to Graph+Simplify+FreezeSorted on the same stream, multiplicity map
// and all.

// CSRArena recycles a builder's large transient buffers — the per-chunk
// edge buffers plus the count/scatter and dedup scratch arrays — across
// consecutive builds. The experiment pipeline gives each build worker one
// arena, so back-to-back realizations at xl scale (N=10⁶, ~10⁷ adjacency
// entries) reuse tens of megabytes instead of re-growing them from zero
// under the GC. An arena serves one build at a time and must not be
// shared between concurrent builders; a nil *CSRArena is valid everywhere
// and simply allocates fresh.
type CSRArena struct {
	// chunks retains the per-chunk edge buffers between builds. The
	// builder aliases this slice, so capacity grown during a build is
	// kept automatically.
	chunks [][]int32
	// free holds released scratch buffers, reused smallest-fit.
	free [][]int32
}

// NewCSRArena returns an empty arena.
func NewCSRArena() *CSRArena { return &CSRArena{} }

// chunkBuffers hands out `count` append-ready edge buffers (length 0,
// capacities retained from earlier builds).
func (a *CSRArena) chunkBuffers(count int) [][]int32 {
	if a == nil {
		return make([][]int32, count)
	}
	for len(a.chunks) < count {
		a.chunks = append(a.chunks, nil)
	}
	bufs := a.chunks[:count]
	for i := range bufs {
		bufs[i] = bufs[i][:0]
	}
	return bufs
}

// Grab returns an int32 scratch buffer of length n with unspecified
// contents, reusing the smallest retained buffer that fits. Generators
// use it for build-side scratch that dies with the build (stub lists,
// spatial-hash tables); buffers that escape into a Frozen must never come
// from an arena.
func (a *CSRArena) Grab(n int) []int32 {
	if a != nil {
		best := -1
		for i, b := range a.free {
			if cap(b) >= n && (best < 0 || cap(b) < cap(a.free[best])) {
				best = i
			}
		}
		if best >= 0 {
			b := a.free[best]
			last := len(a.free) - 1
			a.free[best] = a.free[last]
			a.free = a.free[:last]
			return b[:n]
		}
	}
	return make([]int32, n)
}

// Release returns a scratch buffer to the arena for reuse.
func (a *CSRArena) Release(b []int32) {
	if a == nil || cap(b) == 0 {
		return
	}
	a.free = append(a.free, b[:0])
}

// CSRBuilder accumulates an edge stream for one topology build. Edges go
// into per-chunk buffers — append-only, no membership map, no per-node
// slices — and Finalize/FinalizeSimplified turn the stream into a
// *Frozen. A builder is single-use: emit, finalize once, discard.
//
// Emitters append concurrently as long as each goroutine owns disjoint
// chunk indices (the gen package's fixed-boundary chunking); Edge does no
// validation, so callers must emit node IDs in [0, n).
type CSRBuilder struct {
	n      int
	chunks [][]int32
	arena  *CSRArena
}

// NewCSRBuilder returns a builder for a graph on n nodes whose edge
// stream arrives in chunkCount ordered chunks. arena may be nil.
func NewCSRBuilder(n, chunkCount int, arena *CSRArena) *CSRBuilder {
	return &CSRBuilder{n: n, chunks: arena.chunkBuffers(chunkCount), arena: arena}
}

// Reserve pre-sizes a chunk's buffer for `edges` edges, for emitters that
// know their chunk's volume up front (CM's stub pairing does).
func (b *CSRBuilder) Reserve(chunk, edges int) {
	if cap(b.chunks[chunk]) < 2*edges {
		grown := make([]int32, len(b.chunks[chunk]), 2*edges)
		copy(grown, b.chunks[chunk])
		b.chunks[chunk] = grown
	}
}

// Edge appends the undirected edge {u,v} to the given chunk. Self-loops
// and parallel edges are permitted, exactly as Graph.AddEdge.
func (b *CSRBuilder) Edge(chunk int, u, v int32) {
	b.chunks[chunk] = append(b.chunks[chunk], u, v)
}

// segmentChunks partitions the chunk list into at most ~workers
// contiguous segments of roughly equal edge volume. Segment boundaries
// affect only load balance, never the result: the scatter reserves
// per-row space segment by segment in segment order, so the concatenated
// layout is always the global emission order regardless of how many
// segments carve it up.
func segmentChunks(chunks [][]int32, workers int) [][2]int {
	if len(chunks) == 0 {
		return nil
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers < 1 {
		workers = 1
	}
	per := (total + workers - 1) / workers
	if per < 1 {
		// Empty stream: without the clamp every chunk would close its own
		// segment, costing one n-sized count array (and one goroutine)
		// per chunk for a graph with no edges at all.
		per = 1
	}
	segs := make([][2]int, 0, workers+1)
	start, acc := 0, 0
	for i := range chunks {
		acc += len(chunks[i])
		if acc >= per || i == len(chunks)-1 {
			segs = append(segs, [2]int{start, i + 1})
			start, acc = i+1, 0
		}
	}
	return segs
}

// forSegments runs fn(seg) for every segment index, fanning out across
// goroutines when there is more than one segment. fn must write only
// segment-disjoint state.
func forSegments(segs [][2]int, fn func(s int)) {
	if len(segs) <= 1 {
		if len(segs) == 1 {
			fn(0)
		}
		return
	}
	done := make(chan struct{})
	for s := range segs {
		go func(s int) {
			fn(s)
			done <- struct{}{}
		}(s)
	}
	for range segs {
		<-done
	}
}

// scatter is the two-pass core: count per-node degrees, prefix-sum
// offsets, then scatter neighbors in emission order. offsets must have
// n+1 entries; it receives the CSR offsets. The returned neighbor array
// is dst when it fits, so callers choose whether the multigraph adjacency
// lives in fresh memory (it escapes into the Frozen) or arena scratch (it
// is an intermediate the simplify pass compacts away). Returns the
// neighbor array and the edge count.
func (b *CSRBuilder) scatter(workers int, offsets []int32, grabDst func(n int) []int32) ([]int32, int) {
	n := b.n
	segs := segmentChunks(b.chunks, workers)
	ns := len(segs)
	counts := make([][]int32, ns)
	for s := range counts {
		counts[s] = b.arena.Grab(n)
		clear(counts[s])
	}
	total := 0
	for _, c := range b.chunks {
		total += len(c)
	}

	// Pass 1: per-segment degree histograms.
	forSegments(segs, func(s int) {
		cnt := counts[s]
		for _, ch := range b.chunks[segs[s][0]:segs[s][1]] {
			for i := 0; i+1 < len(ch); i += 2 {
				u, v := ch[i], ch[i+1]
				cnt[u]++
				if u == v {
					cnt[u]++ // a self-loop appears twice, as in Graph
				} else {
					cnt[v]++
				}
			}
		}
	})

	// Offsets: sum the segment histograms per node, then prefix-sum.
	parallelNodeRanges(n, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			d := int32(0)
			for s := 0; s < ns; s++ {
				d += counts[s][u]
			}
			offsets[u+1] = d
		}
	})
	offsets[0] = 0
	for u := 0; u < n; u++ {
		offsets[u+1] += offsets[u]
	}
	// Turn each segment's histogram into its absolute write positions:
	// segment s starts where segments 0..s-1 ended, preserving emission
	// order across the segment boundary.
	parallelNodeRanges(n, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			pos := offsets[u]
			for s := 0; s < ns; s++ {
				c := counts[s][u]
				counts[s][u] = pos
				pos += c
			}
		}
	})

	// Pass 2: scatter in emission order within each segment.
	neighbors := grabDst(total)
	forSegments(segs, func(s int) {
		pos := counts[s]
		for _, ch := range b.chunks[segs[s][0]:segs[s][1]] {
			for i := 0; i+1 < len(ch); i += 2 {
				u, v := ch[i], ch[i+1]
				neighbors[pos[u]] = v
				pos[u]++
				if u == v {
					neighbors[pos[u]] = u
					pos[u]++
				} else {
					neighbors[pos[v]] = u
					pos[v]++
				}
			}
		}
	})
	for s := range counts {
		b.arena.Release(counts[s])
	}
	return neighbors, total / 2
}

// Finalize builds the Frozen snapshot of the emitted stream as-is
// (multigraph faithful, like Graph+Freeze). With sorted true the
// binary-search membership ranges are built eagerly, as FreezeSorted
// does; otherwise they stay lazy, as Freeze leaves them. workers bounds
// internal parallelism; the snapshot is identical for every value.
func (b *CSRBuilder) Finalize(workers int, sorted bool) *Frozen {
	if workers < 1 {
		workers = 1
	}
	f := &Frozen{offsets: make([]int32, b.n+1)}
	var neighbors []int32
	neighbors, f.edges = b.scatter(workers, f.offsets, func(n int) []int32 { return make([]int32, n) })
	f.neighbors = neighbors
	if sorted {
		if workers > 1 {
			f.sorted = sortedParallel(f.offsets, f.neighbors, workers)
		} else {
			f.sorted = sortedFromAdjacency(f.offsets, f.neighbors)
		}
		f.sortedOnce.Do(func() {})
	}
	return f
}

// FinalizeSimplified builds the Frozen snapshot of the emitted stream
// after the configuration model's cleanup: all self-loops and all but one
// copy of each parallel edge deleted. It returns the snapshot plus the
// deletion counts, matching Graph.Simplify's (selfLoops, multiEdges)
// report exactly.
//
// Byte-for-byte equivalence with the legacy path is the whole point, so
// the deletions replay Graph.Simplify literally: duplicates are detected
// on the sorted CSR ranges (ascending (min,max) key order — the same
// order Simplify visits its multiplicity-map keys) and each deletion
// removes the first matching adjacency entry by swap-with-last, exactly
// as Graph.RemoveEdge perturbs surviving neighbor order. The sorted
// membership ranges of the result are built eagerly (they fall out of the
// dedup scan), so the snapshot is sweep-ready like FreezeSorted.
func (b *CSRBuilder) FinalizeSimplified(workers int) (*Frozen, int, int) {
	if workers < 1 {
		workers = 1
	}
	n := b.n
	offsets0 := b.arena.Grab(n + 1)
	neighbors0, edges0 := b.scatter(workers, offsets0, b.arena.Grab)
	sorted0 := b.arena.Grab(len(neighbors0))
	if workers > 1 {
		fillSortedParallel(sorted0, offsets0, neighbors0, workers)
	} else {
		next := b.arena.Grab(n)
		fillSortedTranspose(sorted0, next, offsets0, neighbors0)
		b.arena.Release(next)
	}

	// Replay Simplify: scan each node's sorted range ascending — node
	// order ascending, values ascending — which enumerates the edge keys
	// (u<=v pairs, via the v>=u half of each range) in exactly the sorted
	// key order Simplify uses. Deletions mutate only the live prefixes of
	// neighbors0, never sorted0, so the scan and the replay interleave
	// safely.
	lens := b.arena.Grab(n)
	for u := 0; u < n; u++ {
		lens[u] = offsets0[u+1] - offsets0[u]
	}
	removeFirst := func(u int, w int32) {
		row := neighbors0[offsets0[u] : offsets0[u]+lens[u]]
		for i, x := range row {
			if x == w {
				row[i] = row[len(row)-1]
				lens[u]--
				return
			}
		}
	}
	selfLoops, multiEdges := 0, 0
	for u := 0; u < n; u++ {
		row := sorted0[offsets0[u]:offsets0[u+1]]
		for i := 0; i < len(row); {
			v := row[i]
			j := i + 1
			for j < len(row) && row[j] == v {
				j++
			}
			c := j - i
			if int(v) == u {
				// c adjacency entries = c/2 self-loops; delete them all.
				// Each RemoveEdge(u,u) strips two entries from u's row.
				for k := 0; k < c/2; k++ {
					selfLoops++
					removeFirst(u, v)
					removeFirst(u, v)
				}
			} else if int(v) > u && c > 1 {
				// Parallel edges: keep one copy, delete c-1, each
				// RemoveEdge(u,v) stripping one entry from both rows.
				for k := 0; k < c-1; k++ {
					multiEdges++
					removeFirst(u, v)
					removeFirst(int(v), int32(u))
				}
			}
			i = j
		}
	}

	// Compact the survivors into exact-size final arrays. The final
	// sorted ranges need no re-sort: post-cleanup row u holds exactly the
	// distinct non-u values of the multigraph row, so compacting sorted0's
	// runs yields them ascending.
	f := &Frozen{
		offsets: make([]int32, n+1),
		edges:   edges0 - selfLoops - multiEdges,
	}
	for u := 0; u < n; u++ {
		f.offsets[u+1] = f.offsets[u] + lens[u]
	}
	f.neighbors = make([]int32, f.offsets[n])
	f.sorted = make([]int32, f.offsets[n])
	parallelNodeRanges(n, workers, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			copy(f.neighbors[f.offsets[u]:f.offsets[u+1]], neighbors0[offsets0[u]:offsets0[u]+lens[u]])
			p := f.offsets[u]
			row := sorted0[offsets0[u]:offsets0[u+1]]
			for i := 0; i < len(row); {
				v := row[i]
				j := i + 1
				for j < len(row) && row[j] == v {
					j++
				}
				if int(v) != u {
					f.sorted[p] = v
					p++
				}
				i = j
			}
		}
	})
	f.sortedOnce.Do(func() {})

	b.arena.Release(lens)
	b.arena.Release(sorted0)
	b.arena.Release(neighbors0)
	b.arena.Release(offsets0)
	return f, selfLoops, multiEdges
}
