package search

// Golden-seed regression tests. Every constant below was captured by
// running the pre-CSR (slice-of-slices + edge-map) implementation at the
// seed of this PR on the canonical test topology (PA N=2000 m=2 kc=40,
// RNG seed 11). The frozen kernels must reproduce them exactly — hits,
// messages, and RNG draw sequence — or the CSR migration has changed
// observable behavior.

import (
	"testing"

	"scalefree/internal/xrand"
)

func goldenEq(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

func TestGoldenFloodTrace(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(0)
	res, err := s.Flood(f, 17, 8)
	if err != nil {
		t.Fatal(err)
	}
	goldenEq(t, "flood.Hits", res.Hits, []int{1, 41, 282, 1179, 1935, 2000, 2000, 2000, 2000})
	goldenEq(t, "flood.Messages", res.Messages, []int{0, 40, 309, 1720, 4583, 5909, 5995, 5995, 5995})
}

func TestGoldenNormalizedFloodTrace(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(0)
	res, err := s.NormalizedFlood(f, 17, 8, 2, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	goldenEq(t, "nf.Hits", res.Hits, []int{1, 3, 6, 11, 18, 32, 55, 91, 149})
	goldenEq(t, "nf.Messages", res.Messages, []int{0, 2, 5, 10, 17, 31, 54, 91, 154})
}

func TestGoldenRandomWalkTrace(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(0)
	res, err := s.RandomWalk(f, 17, 64, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	goldenEq(t, "rw.Hits", res.Hits, []int{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
		21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38,
		39, 40, 41, 41, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54,
		55, 56, 57, 57, 58, 59, 60, 61, 62,
	})
}

func TestGoldenRandomWalkWithNFBudgetTrace(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(0)
	rw, nf, err := s.RandomWalkWithNFBudget(f, 17, 6, 2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	goldenEq(t, "rwb.Hits", rw.Hits, []int{1, 3, 7, 14, 24, 41, 68})
	goldenEq(t, "rwb.Messages", rw.Messages, []int{0, 2, 6, 13, 23, 41, 69})
	goldenEq(t, "rwb.nf.Hits", nf.Hits, []int{1, 3, 7, 14, 24, 41, 67})
}

func TestGoldenWalkersAndStrategies(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)

	kw, err := KRandomWalks(f, 17, 4, 50, xrand.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if kw.Hits[40] != 150 || kw.Hits[50] != 178 {
		t.Fatalf("kwalk hits@40/50 = %d/%d, want 150/178", kw.Hits[40], kw.Hits[50])
	}

	hd, err := HighDegreeWalk(f, 17, 100, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if hd.Hits[100] != 101 {
		t.Fatalf("hds hits@100 = %d, want 101", hd.Hits[100])
	}

	pf, err := ProbabilisticFlood(f, 17, 8, 0.5, xrand.New(25))
	if err != nil {
		t.Fatal(err)
	}
	goldenEq(t, "pf.Hits", pf.Hits, []int{1, 41, 186, 531, 994, 1324, 1461, 1519, 1540})
	goldenEq(t, "pf.Messages", pf.Messages, []int{0, 40, 194, 615, 1353, 2079, 2434, 2601, 2656})

	hy, err := HybridSearch(f, 17, 2, 4, 50, xrand.New(27))
	if err != nil {
		t.Fatal(err)
	}
	if len(hy.Hits) != 53 || hy.Hits[2] != 282 || hy.Hits[10] != 301 || hy.Hits[52] != 420 {
		t.Fatalf("hybrid hits len=%d [2]=%d [10]=%d [52]=%d, want 53/282/301/420",
			len(hy.Hits), hy.Hits[2], hy.Hits[10], hy.Hits[52])
	}

	fd, err := FloodDelivery(f, 17, 1234, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !fd.Found || fd.Time != 4 || fd.Messages != 4583 {
		t.Fatalf("flood delivery = %+v, want found at time 4 with 4583 messages", fd)
	}

	rd, err := RandomWalkDelivery(f, 17, 1234, 100000, xrand.New(29))
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Found || rd.Time != 1507 {
		t.Fatalf("rw delivery = %+v, want found at step 1507", rd)
	}

	ring, err := ExpandingRing(f, 17, func(n int) bool { return n == 1500 }, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !ring.Found || ring.TTL != 2 || ring.Rounds != 2 || ring.Messages != 349 {
		t.Fatalf("expanding ring = %+v, want {Found TTL:2 Rounds:2 Messages:349}", ring)
	}
}

func TestGoldenLoadProfiles(t *testing.T) {
	t.Parallel()
	f := scratchTestFrozen(t)
	s := NewScratch(f.N())
	ld := NewLoad(f.N())
	if err := s.FloodLoad(f, 17, 5, ld); err != nil {
		t.Fatal(err)
	}
	if err := s.NormalizedFloodLoad(f, 17, 5, 2, xrand.New(31), ld); err != nil {
		t.Fatal(err)
	}
	if err := RandomWalkLoad(f, 17, 500, xrand.New(33), ld); err != nil {
		t.Fatal(err)
	}
	// Position-weighted checksums over the accumulated per-node loads: any
	// reassignment of work between nodes changes them.
	var fsum, rsum int64
	for v := range ld.Forwards {
		fsum += ld.Forwards[v] * int64(v+1)
		rsum += ld.Receipts[v] * int64(v+1)
	}
	if ld.Total() != 6453 || fsum != 3607098 || rsum != 5036313 {
		t.Fatalf("load checksums total=%d fsum=%d rsum=%d, want 6453/3607098/5036313",
			ld.Total(), fsum, rsum)
	}
}
