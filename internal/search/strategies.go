package search

// Baseline search strategies from the paper's related work (§II, §V-A):
//
//   - HighDegreeWalk: the degree-seeking walk of Adamic, Lukose, Puniyani &
//     Huberman, "Search in power-law networks" (paper ref [62], the source
//     of Eq. 7). The walker always moves to its highest-degree unvisited
//     neighbor, exploiting hubs to cover power-law networks far faster than
//     a blind walk — and losing exactly that advantage when a hard cutoff
//     removes the hubs, which is the tradeoff this repository measures.
//   - ProbabilisticFlood: flooding where interior nodes forward each copy
//     independently with probability p (paper ref [29], "probabilistic
//     flooding techniques"). p=1 is exactly Flood; p<1 trades coverage for
//     messages.
//   - HybridSearch: the flood-then-walk hybrid of Gkantsidis, Mihail &
//     Saberi (paper ref [30], the same paper that introduced NF): a short
//     flood of depth floodTTL seeds the frontier, then k random walkers
//     continue from frontier nodes.
//
// All three report Result in the same Hits/Messages form as FL/NF/RW so
// internal/sim can sweep them with the same harness, and all three read
// the topology through the CSR *graph.Frozen.

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// ErrBadProb reports a forwarding probability outside [0,1].
var ErrBadProb = fmt.Errorf("search: forwarding probability must be in [0,1]")

// HighDegreeWalk runs the Adamic et al. degree-seeking walk for exactly
// `steps` hops. At each hop the walker moves to the highest-degree neighbor
// it has not yet visited (ties broken uniformly at random); when every
// neighbor has been visited it falls back to a uniformly random neighbor
// excluding the one it just came from, as in RandomWalk. Hits[t] counts
// distinct nodes seen within the first t steps; Messages[t] == t.
func HighDegreeWalk(f *graph.Frozen, src, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, steps); err != nil {
		return Result{}, err
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	res := Result{
		Hits:     make([]int, steps+1),
		Messages: make([]int, steps+1),
	}
	visited := make([]bool, f.N())
	visited[src] = true
	hits := 1
	res.Hits[0] = 1
	cur, prev := src, -1
	for t := 1; t <= steps; t++ {
		next := bestUnvisitedNeighbor(f, cur, visited, rng)
		if next < 0 {
			var ok bool
			next, ok = Step(f, cur, prev, rng)
			if !ok {
				// Stuck on an isolated node.
				res.Hits[t] = hits
				res.Messages[t] = res.Messages[t-1]
				continue
			}
		}
		prev, cur = cur, next
		if !visited[cur] {
			visited[cur] = true
			hits++
		}
		res.Hits[t] = hits
		res.Messages[t] = t
	}
	return res, nil
}

// bestUnvisitedNeighbor returns the highest-degree neighbor of u that has
// not been visited, breaking ties uniformly at random, or -1 when every
// neighbor is visited (or u has none).
func bestUnvisitedNeighbor(f *graph.Frozen, u int, visited []bool, rng *xrand.RNG) int {
	best, bestDeg, ties := -1, -1, 0
	for _, v := range f.Neighbors(u) {
		if visited[v] {
			continue
		}
		d := f.Degree(int(v))
		switch {
		case d > bestDeg:
			best, bestDeg, ties = int(v), d, 1
		case d == bestDeg:
			// Reservoir sampling over the tied candidates keeps the choice
			// uniform without collecting them.
			ties++
			if rng.Intn(ties) == 0 {
				best = int(v)
			}
		}
	}
	return best
}

// ProbabilisticFlood runs flooding in which the source forwards to all its
// neighbors and every interior node, on first receipt, forwards to each
// neighbor other than the sender independently with probability p. With
// p=1 the result is identical to Flood. Duplicate receipts are suppressed
// exactly as in Flood.
func ProbabilisticFlood(f *graph.Frozen, src, maxTTL int, p float64, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, maxTTL); err != nil {
		return Result{}, err
	}
	if p < 0 || p > 1 {
		return Result{}, fmt.Errorf("%w: %v", ErrBadProb, p)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	res := Result{
		Hits:     make([]int, maxTTL+1),
		Messages: make([]int, maxTTL+1),
	}
	type item struct {
		node int32
		from int32 // sender; -1 for the source
	}
	depth := make([]int32, f.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []item{{node: int32(src), from: -1}}
	hits, msgs := 0, 0
	prevDepth := 0
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		du := int(depth[it.node])
		if du > prevDepth {
			for t := prevDepth; t < du; t++ {
				res.Hits[t] = hits
				res.Messages[t+1] = msgs
			}
			prevDepth = du
		}
		hits++
		if du == maxTTL {
			continue
		}
		for _, v := range f.Neighbors(int(it.node)) {
			if v == it.from {
				continue
			}
			if du > 0 && !rng.Bool(p) {
				continue // interior node dropped this copy
			}
			msgs++
			if depth[v] < 0 {
				depth[v] = int32(du + 1)
				queue = append(queue, item{node: v, from: it.node})
			}
		}
	}
	for t := prevDepth; t <= maxTTL; t++ {
		res.Hits[t] = hits
		if t+1 <= maxTTL {
			res.Messages[t+1] = msgs
		}
	}
	res.Messages[0] = 0
	return res, nil
}

// HybridSearch runs the GMS flood-then-walk hybrid: a flood of depth
// floodTTL from src, then `walkers` independent non-backtracking random
// walks of `steps` hops each, started from uniformly chosen nodes of the
// flood's outermost frontier (falling back to the whole covered ball when
// the frontier is empty).
//
// Hits is indexed by a combined time axis of length floodTTL+steps+1:
// Hits[0..floodTTL] is the flood phase and Hits[floodTTL+s] adds the
// distinct nodes the walkers reached within their first s steps.
// Messages follows the same axis (flood transmissions, then walkers·s).
func HybridSearch(f *graph.Frozen, src, floodTTL, walkers, steps int, rng *xrand.RNG) (Result, error) {
	if err := validate(f, src, floodTTL); err != nil {
		return Result{}, err
	}
	if walkers < 1 {
		return Result{}, fmt.Errorf("search: walkers %d must be >= 1", walkers)
	}
	if steps < 0 {
		return Result{}, fmt.Errorf("%w: %d walk steps", ErrBadTTL, steps)
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	var scratch Scratch
	flood, err := scratch.Flood(f, src, floodTTL)
	if err != nil {
		return Result{}, err
	}
	// Recover the flood's coverage and outermost frontier from BFS depths.
	dist := f.BFS(src)
	covered := make([]bool, f.N())
	var frontier []int
	var ball []int
	for v, d := range dist {
		if d < 0 || int(d) > floodTTL {
			continue
		}
		covered[v] = true
		ball = append(ball, v)
		if int(d) == floodTTL {
			frontier = append(frontier, v)
		}
	}
	starts := frontier
	if len(starts) == 0 {
		starts = ball // flood already swept its component
	}

	total := floodTTL + steps
	res := Result{
		Hits:     make([]int, total+1),
		Messages: make([]int, total+1),
	}
	copy(res.Hits, flood.Hits)
	copy(res.Messages, flood.Messages)

	// firstSeen[v] is the earliest per-walker step at which any walker
	// reached an uncovered node v; -1 means never.
	firstSeen := make([]int32, f.N())
	for i := range firstSeen {
		firstSeen[i] = -1
	}
	for w := 0; w < walkers; w++ {
		cur, prev := starts[rng.Intn(len(starts))], -1
		for t := 1; t <= steps; t++ {
			next, ok := Step(f, cur, prev, rng)
			if !ok {
				break
			}
			prev, cur = cur, next
			if !covered[cur] && (firstSeen[cur] < 0 || int32(t) < firstSeen[cur]) {
				firstSeen[cur] = int32(t)
			}
		}
	}
	newHits := make([]int, steps+1)
	for _, t := range firstSeen {
		if t >= 0 {
			newHits[t]++
		}
	}
	base := flood.HitsAt(floodTTL)
	baseMsgs := flood.MessagesAt(floodTTL)
	cum := 0
	for s := 1; s <= steps; s++ {
		cum += newHits[s]
		res.Hits[floodTTL+s] = base + cum
		res.Messages[floodTTL+s] = baseMsgs + walkers*s
	}
	res.Hits[floodTTL] = base
	return res, nil
}
