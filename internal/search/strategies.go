package search

// Baseline search strategies from the paper's related work (§II, §V-A):
//
//   - HighDegreeWalk: the degree-seeking walk of Adamic, Lukose, Puniyani &
//     Huberman, "Search in power-law networks" (paper ref [62], the source
//     of Eq. 7). The walker always moves to its highest-degree unvisited
//     neighbor, exploiting hubs to cover power-law networks far faster than
//     a blind walk — and losing exactly that advantage when a hard cutoff
//     removes the hubs, which is the tradeoff this repository measures.
//   - ProbabilisticFlood: flooding where interior nodes forward each copy
//     independently with probability p (paper ref [29], "probabilistic
//     flooding techniques"). p=1 is exactly Flood; p<1 trades coverage for
//     messages.
//   - HybridSearch: the flood-then-walk hybrid of Gkantsidis, Mihail &
//     Saberi (paper ref [30], the same paper that introduced NF): a short
//     flood of depth floodTTL seeds the frontier, then k random walkers
//     continue from frontier nodes.
//
// All three report Result in the same Hits/Messages form as FL/NF/RW so
// internal/sim can sweep them with the same harness, and all three read
// the topology through the CSR *graph.Frozen. The implementations live on
// Scratch (see scratch_strategies.go) so query sweeps reuse buffers and
// allocate nothing; the functions here run each call on a fresh scratch.

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/xrand"
)

// ErrBadProb reports a forwarding probability outside [0,1].
var ErrBadProb = fmt.Errorf("search: forwarding probability must be in [0,1]")

// HighDegreeWalk runs the Adamic et al. degree-seeking walk for exactly
// `steps` hops. At each hop the walker moves to the highest-degree neighbor
// it has not yet visited (ties broken uniformly at random); when every
// neighbor has been visited it falls back to a uniformly random neighbor
// excluding the one it just came from, as in RandomWalk. Hits[t] counts
// distinct nodes seen within the first t steps; Messages[t] == t.
//
// It runs on a fresh Scratch per call; query sweeps should use
// Scratch.HighDegreeWalk with a reused scratch.
func HighDegreeWalk(f *graph.Frozen, src, steps int, rng *xrand.RNG) (Result, error) {
	var s Scratch
	return s.HighDegreeWalk(f, src, steps, rng)
}

// ProbabilisticFlood runs flooding in which the source forwards to all its
// neighbors and every interior node, on first receipt, forwards to each
// neighbor other than the sender independently with probability p. With
// p=1 the result is identical to Flood. Duplicate receipts are suppressed
// exactly as in Flood.
//
// It runs on a fresh Scratch per call; query sweeps should use
// Scratch.ProbabilisticFlood with a reused scratch.
func ProbabilisticFlood(f *graph.Frozen, src, maxTTL int, p float64, rng *xrand.RNG) (Result, error) {
	var s Scratch
	return s.ProbabilisticFlood(f, src, maxTTL, p, rng)
}

// HybridSearch runs the GMS flood-then-walk hybrid: a flood of depth
// floodTTL from src, then `walkers` independent non-backtracking random
// walks of `steps` hops each, started from uniformly chosen nodes of the
// flood's outermost frontier (falling back to the whole covered ball when
// the frontier is empty).
//
// Hits is indexed by a combined time axis of length floodTTL+steps+1:
// Hits[0..floodTTL] is the flood phase and Hits[floodTTL+s] adds the
// distinct nodes the walkers reached within their first s steps.
// Messages follows the same axis (flood transmissions, then walkers·s).
//
// It runs on a fresh Scratch per call; query sweeps should use
// Scratch.HybridSearch with a reused scratch.
func HybridSearch(f *graph.Frozen, src, floodTTL, walkers, steps int, rng *xrand.RNG) (Result, error) {
	var s Scratch
	return s.HybridSearch(f, src, floodTTL, walkers, steps, rng)
}
